# Convenience targets; everything is plain dune underneath.

.PHONY: all build test test-all check lint cost tsan chaos adaptive dial bench bench-native experiments examples clean doc

all: build

build:
	dune build @all

test:
	dune runtest

# includes the `Slow`-marked exhaustive suites
test-all:
	dune runtest --force

# tests + a quick pass over every experiment (sanity gate)
check: test
	dune exec bin/repro.exe -- all --quick

# concurrency-discipline linter (R1-R4 + cost rule C1 over the
# dune-produced .cmt files; OCaml 5.1 and 5.2 -- see lib/lint/dune)
lint:
	dune build @default
	dune exec bin/lint.exe

# step-complexity certifier only: check every budgeted operation and
# regenerate the committed COSTS.md table
cost:
	dune build @default
	dune exec bin/lint.exe -- --cost --costs-md COSTS.md

# run the raw-Atomic test surface under ThreadSanitizer; requires a
# tsan compiler switch, e.g.:
#   opam switch create 5.2.1+tsan ocaml-variants.5.2.1+options ocaml-option-tsan
tsan:
	dune build @default
	dune exec test/test_unboxed.exe
	dune exec test/test_obs.exe
	dune exec test/test_native.exe
	dune exec test/test_combining.exe
	dune exec test/test_adaptive.exe
	dune exec test/test_dial.exe
	dune exec bin/bench.exe -- --quick --max-domains 2 -o /tmp/tsan-bench.json

# adaptive-dispatch smoke: the policy/differential/parallel suite plus
# a quick bench pass over all four backends (adaptive column included)
adaptive:
	dune exec test/test_adaptive.exe
	dune exec bin/bench.exe -- --quick --max-domains 2 -o /tmp/adaptive-bench.json

# fault sweeps (exhaustive, simulator) + native chaos soak (~1 min)
chaos:
	dune exec bin/stress.exe -- --impl algorithm-a --procs 3 --readers 2 --fault-sweep
	dune exec bin/stress.exe -- --impl cas-loop --procs 3 --readers 1 --fault-sweep
	dune exec bin/stress.exe -- --chaos 42

# tradeoff-dial family: differential/parallel tests, per-dial cost
# certification, and the frontier sweep (steps + throughput)
dial:
	dune exec test/test_dial.exe
	dune exec test/test_cost.exe
	dune exec bin/bench.exe -- --dial --quick --max-domains 2 -o /tmp/dial-bench.json

bench:
	dune exec bench/main.exe

# add `-- --baseline OLD.json` to diff against a previous run (warn-only)
bench-native:
	dune exec bin/bench.exe -- -o BENCH_NATIVE.json

# regenerate every experiment table (~4 minutes; EXPERIMENTS.md material)
experiments:
	dune exec bin/repro.exe -- all

examples:
	dune exec examples/quickstart.exe
	dune exec examples/adversary_demo.exe -- 64
	dune exec examples/leader_election.exe
	dune exec examples/metrics_aggregation.exe
	dune exec examples/progress_tracker.exe

doc:  # requires odoc (not in this sealed container)
	dune build @doc

clean:
	dune clean
