(* Bechamel micro-benchmarks: wall-clock single-operation latency of every
   implementation on the native (Atomic) backend, one group per table of
   EXPERIMENTS.md.

   - E1/ReadMax + E1/WriteMax: max registers (Theorem 6's O(1) read vs the
     AAC register's O(log M) read, uncontended).
   - E2/CounterRead + E2/CounterIncrement: counters.
   - E3/Scan + E3/Update: single-writer snapshots.

   These complement the exact step counts of `repro e1..e3` (the paper's
   cost model) with machine time, and the multi-domain throughput of
   `repro e7` (contended).  The sigma-round and essential-set adversaries
   are driven by `repro e4`/`repro e5`, not benched here — they measure
   rounds, not time.

   Note: counters are restricted-use; a long benchmark saturates the AAC
   counter's bounded registers.  Past saturation an increment still walks
   its full path, so the timing stays representative of the worst case. *)

open Bechamel
open Toolkit

let n = 64

(* {1 Max registers} *)

let maxreg_read_tests =
  List.map
    (fun impl ->
      let reg = Harness.Instances.maxreg_native ~n ~bound:65536 impl in
      reg.write_max ~pid:0 1234;
      Test.make
        ~name:(Harness.Instances.maxreg_name impl)
        (Staged.stage (fun () -> ignore (reg.read_max ()))))
    [ Harness.Instances.Algorithm_a;
      Harness.Instances.Aac_maxreg;
      Harness.Instances.B1_maxreg;
      Harness.Instances.Cas_maxreg ]

let maxreg_write_tests =
  List.map
    (fun impl ->
      let reg = Harness.Instances.maxreg_native ~n ~bound:65536 impl in
      let v = ref 0 in
      Test.make
        ~name:(Harness.Instances.maxreg_name impl)
        (Staged.stage (fun () ->
             incr v;
             reg.write_max ~pid:0 !v)))
    [ Harness.Instances.Algorithm_a;
      Harness.Instances.Aac_maxreg;
      Harness.Instances.B1_maxreg;
      Harness.Instances.Cas_maxreg ]

(* {1 Counters} *)

let counter_impls =
  [ Harness.Instances.Farray_counter;
    Harness.Instances.Aac_counter;
    Harness.Instances.Naive_counter;
    Harness.Instances.Snapshot_counter Harness.Instances.Farray_snapshot ]

let counter_read_tests =
  List.map
    (fun impl ->
      let c = Harness.Instances.counter_native ~n ~bound:65536 impl in
      for pid = 0 to n - 1 do
        c.increment ~pid
      done;
      Test.make
        ~name:(Harness.Instances.counter_name impl)
        (Staged.stage (fun () -> ignore (c.read ()))))
    counter_impls

let counter_inc_tests =
  List.map
    (fun impl ->
      let c = Harness.Instances.counter_native ~n ~bound:65536 impl in
      Test.make
        ~name:(Harness.Instances.counter_name impl)
        (Staged.stage (fun () -> c.increment ~pid:0)))
    counter_impls

(* {1 Snapshots} *)

let snapshot_impls =
  [ Harness.Instances.Farray_snapshot;
    Harness.Instances.Double_collect;
    Harness.Instances.Afek ]

let snapshot_scan_tests =
  List.map
    (fun impl ->
      let s = Harness.Instances.snapshot_native ~n impl in
      for pid = 0 to n - 1 do
        s.update ~pid pid
      done;
      Test.make
        ~name:(Harness.Instances.snapshot_name impl)
        (Staged.stage (fun () -> ignore (s.scan ()))))
    snapshot_impls

let snapshot_update_tests =
  List.map
    (fun impl ->
      let s = Harness.Instances.snapshot_native ~n impl in
      let v = ref 0 in
      Test.make
        ~name:(Harness.Instances.snapshot_name impl)
        (Staged.stage (fun () ->
             incr v;
             s.update ~pid:0 !v)))
    snapshot_impls

(* {1 Max arrays} *)

let max_array_instances () =
  [ ( "from-registers",
      let module A = Maxarray.Max_array.From_registers (Smem.Atomic_memory) in
      Maxarray.Max_array.instantiate (module A) (A.create ~n) );
    ( "from-snapshot",
      let module A = Maxarray.Max_array.From_snapshot (Smem.Atomic_memory) in
      Maxarray.Max_array.instantiate (module A) (A.create ~n) );
    ( "from-farray",
      let module A = Maxarray.Max_array.From_farray (Smem.Atomic_memory) in
      Maxarray.Max_array.instantiate (module A) (A.create ~n) ) ]

let max_array_scan_tests =
  List.map
    (fun (name, (m : Maxarray.Max_array.instance)) ->
      m.update0 ~pid:0 5;
      m.update1 ~pid:1 9;
      Test.make ~name (Staged.stage (fun () -> ignore (m.scan ()))))
    (max_array_instances ())

let max_array_update_tests =
  List.map
    (fun (name, (m : Maxarray.Max_array.instance)) ->
      let v = ref 0 in
      Test.make ~name
        (Staged.stage (fun () ->
             incr v;
             m.update0 ~pid:0 !v)))
    (max_array_instances ())

let groups =
  [ ("E1/ReadMax", Test.make_grouped ~name:"E1/ReadMax" maxreg_read_tests);
    ("E1/WriteMax", Test.make_grouped ~name:"E1/WriteMax" maxreg_write_tests);
    ("E2/CounterRead", Test.make_grouped ~name:"E2/CounterRead" counter_read_tests);
    ("E2/CounterIncrement",
     Test.make_grouped ~name:"E2/CounterIncrement" counter_inc_tests);
    ("E3/Scan", Test.make_grouped ~name:"E3/Scan" snapshot_scan_tests);
    ("E3/Update", Test.make_grouped ~name:"E3/Update" snapshot_update_tests);
    ("MaxArray/Scan", Test.make_grouped ~name:"MaxArray/Scan" max_array_scan_tests);
    ("MaxArray/Update", Test.make_grouped ~name:"MaxArray/Update" max_array_update_tests) ]

(* {1 Driver} *)

let benchmark test =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances test in
  Analyze.all ols Instance.monotonic_clock raw

let print_group name results =
  Printf.printf "## %s (N = %d, uncontended, single domain)\n\n" name n;
  Printf.printf "| %-45s | %12s | %6s |\n" "implementation" "ns/op" "r^2";
  Printf.printf "|%s|%s|%s|\n" (String.make 47 '-') (String.make 14 '-')
    (String.make 8 '-');
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  List.iter
    (fun (test_name, ols_result) ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | Some [] | None -> nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
      in
      Printf.printf "| %-45s | %12.1f | %6.3f |\n" test_name ns r2)
    rows;
  print_newline ()

let () =
  Printf.printf
    "bechamel micro-benchmarks: restricted-use objects (PODC'14 \
     reproduction)\n\n%!";
  List.iter
    (fun (name, group) ->
      let results = benchmark group in
      print_group name results)
    groups
