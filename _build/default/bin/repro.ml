(* The experiment driver: regenerates every table of EXPERIMENTS.md.

     repro e1 | e2 | e3 | e4 | e5 | e6 | e7 | e8 | f4 | all

   Sizes are chosen so `repro all` completes in a couple of minutes; pass
   --quick for a fast smoke pass. *)

let experiments : (string * string * (quick:bool -> string)) list =
  [ ( "e1", "max-register step complexity (Theorem 6 vs AAC)",
      fun ~quick ->
        let ns = if quick then [ 16; 64 ] else [ 16; 64; 256; 1024; 4096 ] in
        Experiments.E1_maxreg_steps.run ~ns () );
    ( "e2", "counter step complexity envelopes",
      fun ~quick ->
        let ns = if quick then [ 4; 16 ] else [ 4; 16; 64; 256; 1024 ] in
        Experiments.E2_counter_steps.run ~ns () );
    ( "e3", "snapshot step complexity envelopes",
      fun ~quick ->
        let ns = if quick then [ 4; 16 ] else [ 4; 16; 64; 256; 1024 ] in
        Experiments.E3_snapshot_steps.run ~ns () );
    ( "e4", "Theorem 1 adversary: rounds vs log3(N/f(N))",
      fun ~quick ->
        let ns = if quick then [ 8; 16 ] else [ 8; 16; 32; 64; 128; 256 ] in
        Experiments.E4_theorem1.run ~ns () );
    ( "e5", "Theorem 3 adversary: essential-set iterations (Figs. 1-3)",
      fun ~quick ->
        let ks = if quick then [ 16; 64 ] else [ 16; 64; 256; 1024; 4096; 16384 ] in
        Experiments.E5_theorem3.run ~ks () );
    ( "e6", "linearizability sweep (Theorem 5 + the line-16 finding)",
      fun ~quick ->
        let schedules = if quick then 50 else 400 in
        Experiments.E6_linearizability.run ~schedules () );
    ( "e7", "native multi-domain throughput (the O(1)-read payoff)",
      fun ~quick ->
        let seconds = if quick then 0.1 else 0.5 in
        Experiments.E7_native.run ~seconds () );
    ( "e8", "Lemma 1 growth profile + the Definition 1 visibility finding",
      fun ~quick ->
        let n = if quick then 16 else 48 in
        Experiments.E8_lemma1.run ~n () );
    ( "e9", "liveness audit: wait-freedom vs interference",
      fun ~quick -> ignore quick; Experiments.E9_liveness.run () );
    ( "e10", "workload crossovers: where each side of the tradeoff wins",
      fun ~quick ->
        let seconds = if quick then 0.1 else 0.3 in
        Experiments.E10_crossover.run ~seconds () );
    ( "f4", "Figure 4 data-structure audit",
      fun ~quick ->
        let n = if quick then 64 else 1024 in
        Experiments.F4_structure.run ~n () );
    ( "a1", "ablation: B1 vs complete left subtree in Algorithm A",
      fun ~quick ->
        let ns = if quick then [ 64; 1024 ] else [ 64; 1024; 16384 ] in
        Experiments.A1_b1_ablation.run ~ns () );
    ( "a2", "ablation: double vs single refresh (exhaustive interleavings)",
      fun ~quick -> ignore quick; Experiments.A2_refresh_ablation.run () ) ]

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps, faster run.")

let setup_logs =
  let setup style_renderer level =
    Fmt_tty.setup_std_outputs ?style_renderer ();
    Logs.set_level level;
    Logs.set_reporter (Logs_fmt.reporter ())
  in
  Term.(const setup $ Fmt_cli.style_renderer () $ Logs_cli.level ())

let run_one name descr f =
  let action () q =
    print_string (f ~quick:q);
    print_newline ()
  in
  Cmd.v
    (Cmd.info name ~doc:descr)
    Term.(const action $ setup_logs $ quick)

let all_cmd =
  let action () q =
    List.iter
      (fun (name, _, f) ->
        Printf.printf "=== %s ===\n%!" name;
        print_string (f ~quick:q);
        print_newline ())
      experiments
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in sequence.")
    Term.(const action $ setup_logs $ quick)

let () =
  let cmds = List.map (fun (n, d, f) -> run_one n d f) experiments @ [ all_cmd ] in
  let info =
    Cmd.info "repro" ~version:"1.0"
      ~doc:
        "Regenerate the tables of the PODC'14 paper reproduction (Hendler & \
         Khait, Complexity Tradeoffs for Read and Update Operations)."
  in
  exit (Cmd.eval (Cmd.group info cmds))
