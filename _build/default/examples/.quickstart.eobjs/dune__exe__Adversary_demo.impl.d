examples/adversary_demo.ml: Array Harness List Lowerbound Printf String Sys
