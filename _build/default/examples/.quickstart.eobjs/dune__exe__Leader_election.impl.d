examples/leader_election.ml: Atomic Domain Harness List Printf Random
