examples/metrics_aggregation.ml: Atomic Domain Harness List Printf Random Unix
