examples/metrics_aggregation.mli:
