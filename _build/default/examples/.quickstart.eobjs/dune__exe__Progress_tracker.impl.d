examples/progress_tracker.ml: Array Domain Harness List Printf Random String Unix
