examples/progress_tracker.mli:
