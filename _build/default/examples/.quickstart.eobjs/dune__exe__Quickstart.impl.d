examples/quickstart.ml: Array Harness Memsim Printf String
