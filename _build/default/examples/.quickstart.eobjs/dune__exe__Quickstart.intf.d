examples/quickstart.mli:
