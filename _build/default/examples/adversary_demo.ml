(* A guided run of the Theorem 3 adversary (Figures 1-3 of the paper, in
   text): watch the essential-set construction drive WriteMax operations on
   Algorithm A, iteration by iteration, then verify the final execution
   still reads correctly.

     dune exec examples/adversary_demo.exe [K] *)

let () =
  let k = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 64 in
  Printf.printf
    "Theorem 3 essential-set construction against Algorithm A, K = %d\n\
     %d writer processes; process i performs WriteMax(i+1)\n\n%!"
    k (k - 1);
  let r =
    Lowerbound.Theorem3.run ~impl:"algorithm-a"
      ~make_maxreg:(fun session ~n ->
        Harness.Instances.maxreg_sim session ~n ~bound:(2 * n)
          Harness.Instances.Algorithm_a)
      ~k ~f_k:1 ()
  in
  List.iter
    (fun (it : Lowerbound.Theorem3.iteration) ->
      Printf.printf
        "iteration %d: %-10s %3d active essential, %2d finished -> kept %3d \
         (erased %3d%s)   invariants: hidden=%b supreme=%b\n"
        it.index
        (Lowerbound.Theorem3.case_name it.case)
        it.active it.completed it.next_essential it.erased
        (if it.halted then ", 1 halted" else "")
        it.hidden_ok it.supreme_ok)
    r.iterations;
  Printf.printf "\nstopped: %s after i* = %d iterations (theory ~ %.2f)\n"
    r.stop_reason r.i_star r.predicted_i_star;
  Printf.printf
    "each of the %d surviving essential processes has spent %d steps inside \
     ONE WriteMax —\nthe cost Theorem 3 says any read-optimal max register \
     must pay.\n"
    (List.length r.final_essential)
    r.i_star;
  Printf.printf "\nLemma 2 (erase-and-replay indistinguishability): %s\n"
    (if r.lemma2_ok then "verified on every replay" else "VIOLATED");
  Printf.printf
    "post-construction probe (run everyone to completion, then ReadMax): %s\n"
    (if r.final_read_ok then "correct" else "WRONG");
  (* Show the execution itself for small K. *)
  if k <= 20 then begin
    print_endline "\nThe construction schedules only these writers:";
    Printf.printf "  final essential: %s\n"
      (String.concat ", "
         (List.map (fun p -> Printf.sprintf "p%d(v=%d)" p (p + 1))
            r.final_essential));
    Printf.printf "  halted:          %s\n"
      (String.concat ", "
         (List.map (fun p -> Printf.sprintf "p%d(v=%d)" p (p + 1)) r.halted))
  end
