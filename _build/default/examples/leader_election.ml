(* Term-based leader election on a max register — the style of use the
   paper's introduction motivates (max registers power randomized consensus
   [5] and mutual exclusion [7]).

   Protocol: candidacy for term t by node i is the value t*K + i; writing
   it to a shared max register is a candidacy announcement, and the current
   leader is decoded from a single O(1) ReadMax.  A node that sees a higher
   term yields.  Leadership changes only move forward (the register is
   monotone), so followers can poll at arbitrary rates without locks.

     dune exec examples/leader_election.exe *)

let nodes = max 2 (min 4 (Domain.recommended_domain_count ()))
let rounds_per_node = 5

let () =
  Printf.printf "leader election: %d nodes, max-register terms\n%!" nodes;
  let reg =
    Harness.Instances.maxreg_native ~n:nodes ~bound:max_int
      Harness.Instances.Algorithm_a
  in
  let encode ~term ~id = (term * nodes) + id in
  let decode v = (v / nodes, v mod nodes) in
  let transitions = Atomic.make 0 in
  let domains =
    List.init nodes (fun id ->
        Domain.spawn (fun () ->
            let rng = Random.State.make [| id; 99 |] in
            for _ = 1 to rounds_per_node do
              (* observe the current leader with one atomic read *)
              let term, leader = decode (reg.read_max ()) in
              if leader <> id && Random.State.bool rng then begin
                (* mount a challenge for the next term *)
                reg.write_max ~pid:id (encode ~term:(term + 1) ~id);
                let term', leader' = decode (reg.read_max ()) in
                if leader' = id then begin
                  Atomic.incr transitions;
                  Printf.printf "  node %d takes term %d\n%!" id term'
                end
              end;
              (* simulate work while in (or out of) office *)
              for _ = 1 to 1000 + Random.State.int rng 1000 do
                Domain.cpu_relax ()
              done
            done))
  in
  List.iter Domain.join domains;
  let final_term, final_leader = decode (reg.read_max ()) in
  Printf.printf
    "final: node %d leads at term %d after %d observed transitions\n"
    final_leader final_term (Atomic.get transitions);
  (* Invariant: terms never regress, and every read costs one atomic load
     regardless of the number of nodes. *)
  assert (final_term >= 1);
  print_endline "terms are monotone by construction (max register): ok"
