(* Live metrics aggregation across domains — the workload the paper's
   read-optimized objects are built for: many writers, a hot reader.

   Worker domains process synthetic "requests", recording each into
   - an f-array counter (requests served: CounterRead is one atomic read),
   - Algorithm A max registers (worst latency, largest payload: ReadMax is
     one atomic read),
   while the main domain polls all gauges at high frequency.  The monitor's
   cost is independent of worker count — that is the tradeoff's payoff.

     dune exec examples/metrics_aggregation.exe *)

let workers = max 2 (min 4 (Domain.recommended_domain_count ()) - 1)
let duration = 1.0

let () =
  Printf.printf "metrics aggregation: %d workers, %.1fs run\n%!" workers
    duration;
  let requests =
    Harness.Instances.counter_native ~n:workers ~bound:max_int
      Harness.Instances.Farray_counter
  in
  let worst_latency_ns =
    Harness.Instances.maxreg_native ~n:workers ~bound:max_int
      Harness.Instances.Algorithm_a
  in
  let largest_payload =
    Harness.Instances.maxreg_native ~n:workers ~bound:max_int
      Harness.Instances.Algorithm_a
  in
  let stop = Atomic.make false in
  let domains =
    List.init workers (fun w ->
        Domain.spawn (fun () ->
            let rng = Random.State.make [| w; 42 |] in
            while not (Atomic.get stop) do
              (* synthetic request: latency ~ exponential-ish, payload ~
                 heavy-tailed *)
              let latency = 100 + Random.State.int rng 10_000 in
              let latency =
                if Random.State.int rng 1000 = 0 then latency * 100
                else latency
              in
              let payload = 1 lsl Random.State.int rng 20 in
              requests.increment ~pid:w;
              worst_latency_ns.write_max ~pid:w latency;
              largest_payload.write_max ~pid:w payload
            done))
  in
  (* the monitor: polls continuously; each poll is 3 atomic reads *)
  let t0 = Unix.gettimeofday () in
  let polls = ref 0 in
  let last_print = ref 0. in
  while Unix.gettimeofday () -. t0 < duration do
    let n = requests.read () in
    let lat = worst_latency_ns.read_max () in
    let pay = largest_payload.read_max () in
    incr polls;
    let now = Unix.gettimeofday () -. t0 in
    if now -. !last_print > 0.19 then begin
      last_print := now;
      Printf.printf
        "  t=%.1fs  requests=%-9d  worst-latency=%-8dns  largest-payload=%dB\n%!"
        now n lat pay
    end
  done;
  Atomic.set stop true;
  List.iter Domain.join domains;
  Printf.printf
    "monitor performed %d polls (%.2f Mpolls/s) while %d workers served %d \
     requests\n"
    !polls
    (float_of_int !polls /. duration /. 1e6)
    workers (requests.read ());
  print_endline
    "every poll cost 3 atomic reads, independent of the number of workers"
