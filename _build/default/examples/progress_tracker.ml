(* Consistent progress tracking with an atomic snapshot.

   Worker domains chew through partitioned work, publishing progress into
   their snapshot segment.  A coordinator scans: because Scan is atomic, it
   sees a *consistent* cut — total progress never appears to exceed the
   work actually done, and a "straggler detector" comparing segments inside
   one scan is meaningful (with per-worker reads it would race).

     dune exec examples/progress_tracker.exe *)

let workers = max 2 (min 4 (Domain.recommended_domain_count ()) - 1)
let items_per_worker = 400_000

let () =
  Printf.printf "progress tracker: %d workers x %d items\n%!" workers
    items_per_worker;
  let progress =
    Harness.Instances.snapshot_native ~n:workers
      Harness.Instances.Farray_snapshot
  in
  let domains =
    List.init workers (fun w ->
        Domain.spawn (fun () ->
            let rng = Random.State.make [| w; 7 |] in
            for item = 1 to items_per_worker do
              (* simulate uneven work *)
              if Random.State.int rng 100 < 2 then Domain.cpu_relax ();
              if item mod 1000 = 0 || item = items_per_worker then
                progress.update ~pid:w item
            done))
  in
  let total = workers * items_per_worker in
  let bar_width = 40 in
  let finished = ref false in
  let violations = ref 0 in
  while not !finished do
    let cut = progress.scan () in
    let done_ = Array.fold_left ( + ) 0 cut in
    (* consistency: an atomic cut can never show more than the total *)
    if done_ > total then incr violations;
    let slowest = Array.fold_left min max_int cut in
    let fastest = Array.fold_left max 0 cut in
    let filled = done_ * bar_width / total in
    Printf.printf "\r[%s%s] %3d%%  straggler gap: %d items   %!"
      (String.make filled '#')
      (String.make (bar_width - filled) '-')
      (done_ * 100 / total)
      (fastest - slowest);
    if done_ = total then finished := true else Unix.sleepf 0.05
  done;
  print_newline ();
  List.iter Domain.join domains;
  let final = progress.scan () in
  Printf.printf "final cut: [%s], consistency violations: %d\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int final)))
    !violations
