(* Quickstart: the three restricted-use objects on the native (Atomic)
   backend, through the public API.

     dune exec examples/quickstart.exe *)

let () =
  print_endline "== max register (Algorithm A: ReadMax is a single read) ==";
  (* 8 processes, values up to ~10^6 *)
  let reg =
    Harness.Instances.maxreg_native ~n:8 ~bound:1_000_000
      Harness.Instances.Algorithm_a
  in
  reg.write_max ~pid:0 41;
  reg.write_max ~pid:1 7;
  reg.write_max ~pid:2 312;
  Printf.printf "max after writes {41, 7, 312}: %d\n" (reg.read_max ());
  reg.write_max ~pid:3 99;
  Printf.printf "max after a smaller write 99:  %d\n" (reg.read_max ());

  print_endline "\n== counter (f-array: CounterRead is a single read) ==";
  let counter =
    Harness.Instances.counter_native ~n:4 ~bound:1_000
      Harness.Instances.Farray_counter
  in
  for i = 1 to 10 do
    counter.increment ~pid:(i mod 4)
  done;
  Printf.printf "count after 10 increments: %d\n" (counter.read ());

  print_endline "\n== single-writer snapshot (f-array tree) ==";
  let snap =
    Harness.Instances.snapshot_native ~n:4 Harness.Instances.Farray_snapshot
  in
  snap.update ~pid:0 100;
  snap.update ~pid:2 300;
  let view = snap.scan () in
  Printf.printf "scan: [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int view)));

  print_endline "\n== the same code on the simulator, with step counts ==";
  let session = Memsim.Session.create () in
  let reg =
    Harness.Instances.maxreg_sim session ~n:1024 ~bound:1_000_000
      Harness.Instances.Algorithm_a
  in
  let steps f =
    Memsim.Session.reset_steps session;
    f ();
    Memsim.Session.direct_steps session
  in
  let w_small = steps (fun () -> reg.write_max ~pid:0 3) in
  let w_large = steps (fun () -> reg.write_max ~pid:0 999_999) in
  let r = steps (fun () -> ignore (reg.read_max ())) in
  Printf.printf
    "N=1024: WriteMax(3) = %d steps, WriteMax(999999) = %d steps, ReadMax = \
     %d step(s)\n"
    w_small w_large r;
  print_endline
    "(WriteMax costs O(min(log N, log v)) shared-memory events; ReadMax is \
     one event — Theorem 6.)"
