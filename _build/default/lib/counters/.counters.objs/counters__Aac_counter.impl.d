lib/counters/aac_counter.ml: Array Maxreg Memsim Simval Smem Treeprim
