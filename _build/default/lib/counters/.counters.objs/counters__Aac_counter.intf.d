lib/counters/aac_counter.mli: Smem
