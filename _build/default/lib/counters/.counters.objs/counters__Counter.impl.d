lib/counters/counter.ml:
