lib/counters/counter.mli:
