lib/counters/farray_counter.ml: Farray Memsim Simval Smem
