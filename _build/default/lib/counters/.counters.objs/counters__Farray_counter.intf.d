lib/counters/farray_counter.mli: Smem
