lib/counters/naive_counter.ml: Array Memsim Printf Simval Smem
