lib/counters/naive_counter.mli: Smem
