(* The Aspnes-Attiya-Censor counter [2]: a complete binary tree over N
   single-writer leaves whose internal nodes are bounded max registers
   holding the subtree's increment count.

   CounterIncrement(i): bump leaf i, then rewrite each ancestor with the sum
   of its children's current values (a WriteMax — sums are monotone, so the
   max register keeps the freshest sum).  CounterRead: ReadMax of the root.

   With B-bounded max registers (B = max total increments, polynomial in N):
     CounterRead       O(log B)          = O(log N)
     CounterIncrement  O(log N * log B)  = O(log^2 N).

   Built from reads and writes only. *)

open Memsim

module Make (M : Smem.Memory_intf.MEMORY) = struct
  module A = Maxreg.Aac_maxreg.Make (M)

  type payload =
    | Plain of M.t  (* leaf: single-writer increment count of one process *)
    | Max of A.t    (* internal: bound-limited max register *)

  type t = {
    root : payload Treeprim.Tree_shape.node;
    leaves : payload Treeprim.Tree_shape.node array;
    n : int;
    bound : int;
  }

  let create ~n ~bound =
    if n <= 0 then invalid_arg "Aac_counter.create: n must be > 0";
    if bound <= 0 then invalid_arg "Aac_counter.create: bound must be > 0";
    let mk () = Max (A.create ~bound:(bound + 1)) in
    let mk_leaf () = Plain (M.make (Simval.Int 0)) in
    let root, leaves = Treeprim.Tree_shape.complete ~mk ~mk_leaf ~nleaves:n () in
    { root; leaves; n; bound }

  let value_of_node (node : payload Treeprim.Tree_shape.node) =
    match node.Treeprim.Tree_shape.data with
    | Plain reg -> Simval.int_or ~default:0 (M.read reg)
    | Max mr -> A.read_max mr

  let child_value = function
    | None -> 0
    | Some node -> value_of_node node

  let read t =
    match t.root.Treeprim.Tree_shape.data with
    | Max mr -> A.read_max mr
    | Plain reg -> Simval.int_or ~default:0 (M.read reg) (* n = 1 *)

  let increment t ~pid =
    if pid < 0 || pid >= t.n then invalid_arg "Aac_counter.increment: bad pid";
    let leaf = t.leaves.(pid) in
    (match leaf.Treeprim.Tree_shape.data with
     | Plain reg ->
       let c = Simval.int_or ~default:0 (M.read reg) in
       M.write reg (Simval.Int (c + 1))
     | Max _ -> assert false);
    let rec up (node : payload Treeprim.Tree_shape.node) =
      match node.Treeprim.Tree_shape.parent with
      | None -> ()
      | Some parent ->
        let sum =
          child_value parent.Treeprim.Tree_shape.left
          + child_value parent.Treeprim.Tree_shape.right
        in
        (match parent.Treeprim.Tree_shape.data with
         | Max mr -> A.write_max mr ~pid sum
         | Plain _ -> assert false);
        up parent
    in
    up leaf
end
