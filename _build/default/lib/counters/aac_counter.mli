(** The Aspnes–Attiya–Censor counter (JACM 2012), from reads and writes
    only: a complete tree over single-writer leaves whose internal nodes
    are bounded max registers holding subtree sums.

    With B-bounded registers (B = maximum total increments):
    CounterRead O(log B), CounterIncrement O(log N · log B) — i.e.
    O(log N) and O(log² N) for polynomially many increments, the point the
    paper's Theorem 1 trades against. *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  type t

  val create : n:int -> bound:int -> t
  (** [n] processes, at most [bound] total increments. *)

  val increment : t -> pid:int -> unit
  val read : t -> int
end
