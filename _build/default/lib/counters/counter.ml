(* Common interface of counter implementations.

   Sequential specification: [read] returns the number of [increment]
   instances that precede it.  All implementations here are restricted-use:
   they assume the total number of increments stays below a bound fixed at
   creation (polynomial in N in the paper's setting). *)

module type S = sig
  type t

  val increment : t -> pid:int -> unit
  val read : t -> int
end

(* A closed instance, for harnesses that treat implementations uniformly. *)
type instance = {
  increment : pid:int -> unit;
  read : unit -> int;
}

let instantiate (type a) (module I : S with type t = a) (c : a) =
  { increment = (fun ~pid -> I.increment c ~pid);
    read = (fun () -> I.read c) }
