(** Common interface of counter implementations.

    Sequential specification: [read] returns the number of [increment]
    instances preceding it.  All implementations are restricted-use: the
    total number of increments must stay below a bound fixed at creation
    (polynomial in N in the paper's setting). *)

module type S = sig
  type t

  val increment : t -> pid:int -> unit
  val read : t -> int
end

(** A closed instance, for harnesses that treat implementations
    uniformly. *)
type instance = {
  increment : pid:int -> unit;
  read : unit -> int;
}

val instantiate : (module S with type t = 'a) -> 'a -> instance
