(* Jayanti's counter from an f-array with f = sum [14]: CounterRead is a
   single read of the root (O(1)), CounterIncrement bumps the caller's leaf
   and propagates (O(log N)).  Theorem 1 of the paper shows this read/update
   point is optimal for read/write/CAS implementations. *)

open Memsim

module Make (M : Smem.Memory_intf.MEMORY) = struct
  module F = Farray.Make (M)

  type t = F.t

  let sum a b = Simval.Int (Simval.int_or ~default:0 a + Simval.int_or ~default:0 b)

  let create ~n = F.create ~n ~combine:sum ()

  let read t = Simval.int_or ~default:0 (F.read t)

  let increment t ~pid =
    let c = Simval.int_or ~default:0 (F.read_leaf t pid) in
    F.update t ~leaf:pid (Simval.Int (c + 1))
end
