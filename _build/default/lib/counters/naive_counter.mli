(** The opposite end of the tradeoff: one single-writer register per
    process.  CounterIncrement O(1), CounterRead O(N).  Wait-free, reads
    and writes only. *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  type t

  val create : n:int -> t
  val increment : t -> pid:int -> unit
  val read : t -> int
end
