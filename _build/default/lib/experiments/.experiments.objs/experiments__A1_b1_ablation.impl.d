lib/experiments/a1_b1_ablation.ml: Harness List Maxreg Memsim Session Smem
