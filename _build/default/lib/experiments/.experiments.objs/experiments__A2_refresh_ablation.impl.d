lib/experiments/a2_refresh_ablation.ml: Explore Farray Harness List Memsim Session Simval Smem
