lib/experiments/e10_crossover.ml: Array Atomic Domain Harness List Memsim Printf Random Session Unix
