lib/experiments/e1_maxreg_steps.ml: Harness List Memsim Session
