lib/experiments/e2_counter_steps.ml: Harness List Memsim Session
