lib/experiments/e3_snapshot_steps.ml: Harness List Memsim Session
