lib/experiments/e4_theorem1.ml: E2_counter_steps Harness List Lowerbound Printf
