lib/experiments/e5_theorem3.ml: Harness List Lowerbound Option Printf String
