lib/experiments/e6_linearizability.ml: Harness Linearize List Memsim Random Scheduler Session
