lib/experiments/e7_native.ml: Array Atomic Domain Harness List Printf Unix
