lib/experiments/e8_lemma1.ml: Fun Harness Infoflow List Lowerbound Memsim Printf Scheduler Session
