lib/experiments/e9_liveness.ml: Harness List Memsim Session
