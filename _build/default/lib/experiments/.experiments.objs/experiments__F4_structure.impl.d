lib/experiments/f4_structure.ml: Harness List Maxreg Memsim Printf Session Smem
