(* A1 — ablating the B1 left subtree of Algorithm A.

   Design choice under test: the paper uses a Bentley-Yao B1 tree for TL so
   that WriteMax(v) costs O(log v) rather than O(log N).  Replacing TL with
   a complete tree over the same leaves keeps correctness (and the O(1)
   read) but every small-value write pays the full O(log N) depth. *)

open Memsim

type row = {
  n : int;
  v : int;
  b1_steps : int;
  complete_steps : int;
}

let measure ~tl_shape ~n v =
  let session = Session.create () in
  let module M = (val Smem.Sim_memory.bind session) in
  let module A = Maxreg.Algorithm_a.Make (M) in
  let reg = A.create ~tl_shape ~n () in
  Session.reset_steps session;
  A.write_max reg ~pid:0 v;
  Session.direct_steps session

let sweep ?(ns = [ 64; 1024; 16384 ]) () =
  List.concat_map
    (fun n ->
      List.filter_map
        (fun v ->
          if v >= n - 1 then None
          else
            Some
              { n;
                v;
                b1_steps = measure ~tl_shape:`B1 ~n v;
                complete_steps = measure ~tl_shape:`Complete ~n v })
        [ 1; 3; 15; 255 ])
    ns

let table rows =
  Harness.Tables.render
    ~title:
      "A1: ablation — WriteMax(v) steps with the B1 left subtree vs a \
       complete left subtree (the B1 shape is what makes small writes \
       cheap)"
    ~header:[ "N"; "v"; "B1 (paper)"; "complete (ablated)" ]
    (List.map
       (fun r ->
         [ string_of_int r.n; string_of_int r.v; string_of_int r.b1_steps;
           string_of_int r.complete_steps ])
       rows)

let run ?ns () = table (sweep ?ns ())
