(* A2 — ablating the double refresh of Propagate.

   Design choice under test: the paper performs the child-combine + CAS
   *twice* per node ("This ensures that if the CAS failed, then a CAS by
   another process must have succeeded in updating the parent node based on
   the new value").  With a single refresh, a failed CAS can leave a
   concurrent update unpropagated forever.

   We verify by exhaustive search: every interleaving of two f-array
   counter increments is executed, and final counts are tallied.  With
   refreshes = 2 every interleaving ends at 2; with refreshes = 1 a
   measurable fraction of interleavings loses an increment. *)

open Memsim

type row = {
  refreshes : int;
  interleavings : int;
  lost_updates : int;
}

let count_lost ~refreshes =
  let session = Session.create () in
  let module M = (val Smem.Sim_memory.bind session) in
  let module F = Farray.Make (M) in
  let sum a b =
    Simval.Int (Simval.int_or ~default:0 a + Simval.int_or ~default:0 b)
  in
  let t = F.create ~refreshes ~n:2 ~combine:sum () in
  let make_body pid () =
    let c = Simval.int_or ~default:0 (F.read_leaf t pid) in
    F.update t ~leaf:pid (Simval.Int (c + 1))
  in
  let counts = Explore.solo_counts session ~n:2 ~make_body in
  let interleavings = ref 0 in
  let lost = ref 0 in
  let stats =
    Explore.run_interleavings session ~make_body ~counts
      ~on_complete:(fun _ ->
        incr interleavings;
        if Simval.int_or ~default:0 (F.read t) <> 2 then incr lost;
        true)
      ()
  in
  assert (not stats.Explore.truncated);
  { refreshes; interleavings = !interleavings; lost_updates = !lost }

let sweep () = [ count_lost ~refreshes:2; count_lost ~refreshes:1 ]

let table rows =
  Harness.Tables.render
    ~title:
      "A2: ablation — double vs single refresh in Propagate, exhaustive \
       over ALL interleavings of two concurrent f-array increments"
    ~header:[ "refreshes/node"; "interleavings"; "lost updates" ]
    (List.map
       (fun r ->
         [ string_of_int r.refreshes; string_of_int r.interleavings;
           string_of_int r.lost_updates ])
       rows)

let run () = table (sweep ())
