(* E1 — Theorem 6 / the max-register tradeoff point.

   Paper claims: Algorithm A has ReadMax O(1) and WriteMax(v)
   O(min(log N, log v)); the AAC register has both operations O(log M);
   the CAS-loop baseline has ReadMax O(1) and solo WriteMax O(1) (but is
   not wait-free).  Measured as exact event counts on the simulator. *)

open Memsim

type row = {
  impl : string;
  n : int;
  bound : int;
  read_steps : int;
  write_small : int;   (* WriteMax(3): worst over fresh registers *)
  write_mid : int;     (* WriteMax(~sqrt bound) *)
  write_large : int;   (* WriteMax(bound-1) *)
}

let measure impl ~n ~bound =
  let fresh () =
    let session = Session.create () in
    (session, Harness.Instances.maxreg_sim session ~n ~bound impl)
  in
  let write_steps v =
    let session, reg = fresh () in
    Session.reset_steps session;
    reg.write_max ~pid:(n - 1) v;
    Session.direct_steps session
  in
  let read_steps =
    let session, reg = fresh () in
    reg.write_max ~pid:0 (bound - 1);
    Session.reset_steps session;
    ignore (reg.read_max ());
    Session.direct_steps session
  in
  { impl = Harness.Instances.maxreg_name impl;
    n;
    bound;
    read_steps;
    write_small = write_steps 3;
    write_mid = write_steps (max 4 (int_of_float (sqrt (float_of_int bound))));
    write_large = write_steps (bound - 1) }

let sweep ?(ns = [ 16; 64; 256; 1024 ]) () =
  List.concat_map
    (fun n ->
      let bound = n * n in
      List.map
        (fun impl -> measure impl ~n ~bound)
        [ Harness.Instances.Algorithm_a;
          Harness.Instances.Aac_maxreg;
          Harness.Instances.B1_maxreg;
          Harness.Instances.Cas_maxreg ])
    ns

let table rows =
  Harness.Tables.render
    ~title:"E1: max-register step complexity (exact event counts, solo ops)"
    ~header:
      [ "impl"; "N"; "M"; "ReadMax"; "WriteMax(3)"; "WriteMax(sqrt M)";
        "WriteMax(M-1)" ]
    (List.map
       (fun r ->
         [ r.impl; string_of_int r.n; string_of_int r.bound;
           string_of_int r.read_steps; string_of_int r.write_small;
           string_of_int r.write_mid; string_of_int r.write_large ])
       rows)

let run ?ns () = table (sweep ?ns ())
