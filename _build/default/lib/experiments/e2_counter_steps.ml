(* E2 — counter step complexity envelopes.

   Paper (citing [2, 14]): AAC counter reads in O(log B) and increments in
   O(log N log B); the f-array counter reads in O(1) and increments in
   O(log N) (Theorem 1 shows that is optimal); the naive counter reads in
   O(N) and increments in O(1). *)

open Memsim

type row = {
  impl : string;
  n : int;
  read_steps : int;
  inc_steps : int;  (* worst over processes, after n warm-up increments *)
}

let measure impl ~n =
  let bound = 4 * n in
  let session = Session.create () in
  let c = Harness.Instances.counter_sim session ~n ~bound impl in
  (* warm up: one increment per process, so tree paths are populated *)
  for pid = 0 to n - 1 do
    c.increment ~pid
  done;
  let inc_steps =
    let worst = ref 0 in
    for pid = 0 to n - 1 do
      Session.reset_steps session;
      c.increment ~pid;
      worst := max !worst (Session.direct_steps session)
    done;
    !worst
  in
  Session.reset_steps session;
  ignore (c.read ());
  let read_steps = Session.direct_steps session in
  { impl = Harness.Instances.counter_name impl; n; read_steps; inc_steps }

let sweep ?(ns = [ 4; 16; 64; 256 ]) () =
  List.concat_map
    (fun n ->
      List.map
        (fun impl -> measure impl ~n)
        [ Harness.Instances.Farray_counter;
          Harness.Instances.Aac_counter;
          Harness.Instances.Naive_counter;
          Harness.Instances.Snapshot_counter Harness.Instances.Farray_snapshot ])
    ns

let table rows =
  Harness.Tables.render
    ~title:
      "E2: counter step complexity (exact event counts; B = 4N increments)"
    ~header:[ "impl"; "N"; "CounterRead"; "CounterIncrement (worst)" ]
    (List.map
       (fun r ->
         [ r.impl; string_of_int r.n; string_of_int r.read_steps;
           string_of_int r.inc_steps ])
       rows)

let run ?ns () = table (sweep ?ns ())
