(* E3 — snapshot step complexity envelopes.

   Paper (citing [3, 14]): the f-array snapshot scans in O(1) and updates
   in O(log N) (our CAS-based stand-in for the polylog restricted-use
   snapshot of [3]); double-collect updates in O(1) but scans in O(N) solo
   and is only obstruction-free; the Afek et al. snapshot is wait-free with
   O(N)-per-collect costs. *)

open Memsim

type row = {
  impl : string;
  n : int;
  scan_steps : int;
  update_steps : int;
  wait_free : bool;
}

let measure impl ~n =
  let session = Session.create () in
  let s = Harness.Instances.snapshot_sim session ~n impl in
  for pid = 0 to n - 1 do
    s.update ~pid (pid + 1)
  done;
  let update_steps =
    let worst = ref 0 in
    for pid = 0 to n - 1 do
      Session.reset_steps session;
      s.update ~pid (pid + 100);
      worst := max !worst (Session.direct_steps session)
    done;
    !worst
  in
  Session.reset_steps session;
  ignore (s.scan ());
  let scan_steps = Session.direct_steps session in
  { impl = Harness.Instances.snapshot_name impl;
    n;
    scan_steps;
    update_steps;
    wait_free = impl <> Harness.Instances.Double_collect }

let sweep ?(ns = [ 4; 16; 64; 256 ]) () =
  List.concat_map
    (fun n ->
      List.map
        (fun impl -> measure impl ~n)
        [ Harness.Instances.Farray_snapshot;
          Harness.Instances.Double_collect;
          Harness.Instances.Afek ])
    ns

let table rows =
  Harness.Tables.render
    ~title:"E3: snapshot step complexity (exact event counts, solo ops)"
    ~header:[ "impl"; "N"; "Scan"; "Update (worst)"; "wait-free" ]
    (List.map
       (fun r ->
         [ r.impl; string_of_int r.n; string_of_int r.scan_steps;
           string_of_int r.update_steps; string_of_bool r.wait_free ])
       rows)

let run ?ns () = table (sweep ?ns ())
