(* E5 — the Theorem 3 essential-set construction (Figures 1-3),
   empirically.

   Running the adversary against each max register measures how many
   iterations i* the essential set survives (each surviving process having
   spent i* steps inside one WriteMax), against the predicted
   Omega(log (log K / log f(K))).  Also verifies the Definition 5-7
   invariants, Lemma 2 replay indistinguishability, and a post-construction
   read on every run. *)

let sweep ?(ks = [ 16; 64; 256; 1024; 4096 ]) () =
  List.concat_map
    (fun k ->
      List.filter_map
        (fun (impl, f_k) ->
          (* the cas-loop register is not wait-free: the construction runs
             for Theta(K) iterations, so keep its K small *)
          if k < 8 || (impl = Harness.Instances.Cas_maxreg && k > 128) then
            None
          else
            Some
              (Lowerbound.Theorem3.run
                 ~impl:(Harness.Instances.maxreg_name impl)
                 ~make_maxreg:(fun session ~n ->
                   Harness.Instances.maxreg_sim session ~n ~bound:(2 * n) impl)
                 ~k ~f_k ()))
        [ (Harness.Instances.Algorithm_a, 1);
          (Harness.Instances.Cas_maxreg, 1);
          (Harness.Instances.Aac_maxreg,
           int_of_float (ceil (log (float_of_int (2 * k)) /. log 2.)));
          (Harness.Instances.B1_maxreg,
           int_of_float (ceil (log (float_of_int (2 * k)) /. log 2.))) ])
    ks

let invariants_ok (r : Lowerbound.Theorem3.result) =
  List.for_all
    (fun (it : Lowerbound.Theorem3.iteration) -> it.hidden_ok && it.supreme_ok)
    r.iterations

let table rows =
  Harness.Tables.render
    ~title:
      "E5: Theorem 3 adversary — essential-set iterations sustained inside \
       one WriteMax"
    ~header:
      [ "impl"; "K"; "f(K)"; "i*"; "theory ~"; "|E_i| trajectory";
        "stop"; "defs 5-7"; "lemma2"; "final read" ]
    (List.map
       (fun (r : Lowerbound.Theorem3.result) ->
         [ r.impl; string_of_int r.k; string_of_int r.f_k;
           string_of_int r.i_star;
           Printf.sprintf "%.2f" r.predicted_i_star;
           (let sizes = List.map string_of_int r.essential_sizes in
            let shown = List.filteri (fun i _ -> i < 8) sizes in
            String.concat ">" shown
            ^ if List.length sizes > 8 then ">..." else "");
           r.stop_reason;
           string_of_bool (invariants_ok r);
           string_of_bool r.lemma2_ok;
           string_of_bool r.final_read_ok ])
       rows)

(* E5b: the same adversary with the proof's sqrt-cap on the low-contention
   representative set lifted: the essential set now shrinks only through
   genuine contention and completions, and the adversary stretches every
   surviving WriteMax much further (the cap exists for the proof's
   counting, not for the adversary's power). *)
let sweep_uncapped ?(ks = [ 64; 256; 1024 ]) () =
  List.map
    (fun k ->
      Lowerbound.Theorem3.run ~sqrt_cap:false ~impl:"algorithm-a"
        ~make_maxreg:(fun session ~n ->
          Harness.Instances.maxreg_sim session ~n ~bound:(2 * n)
            Harness.Instances.Algorithm_a)
        ~k ~f_k:1 ())
    ks

let table_uncapped rows =
  Harness.Tables.render
    ~title:
      "E5b: Theorem 3 adversary without the sqrt-thinning (algorithm A): every survivor is stretched ~8 log2 K steps inside one WriteMax"
    ~header:
      [ "impl"; "K"; "i*"; "~8 log2 K"; "|E_i| (first 6)"; "stop"; "defs 5-7";
        "lemma2"; "final read" ]
    (List.map
       (fun (r : Lowerbound.Theorem3.result) ->
         [ r.impl; string_of_int r.k; string_of_int r.i_star;
           string_of_int
             (int_of_float (8. *. log (float_of_int r.k) /. log 2.));
           (let sizes = List.map string_of_int r.essential_sizes in
            String.concat ">" (List.filteri (fun i _ -> i < 6) sizes)
            ^ if List.length sizes > 6 then ">..." else "");
           r.stop_reason;
           string_of_bool (invariants_ok r);
           string_of_bool r.lemma2_ok;
           string_of_bool r.final_read_ok ])
       rows)

let run ?ks () =
  let uncapped_ks =
    Option.map (List.filter (fun k -> k <= 1024 && k >= 32)) ks
  in
  table (sweep ?ks ())
  ^ "\n"
  ^ table_uncapped (sweep_uncapped ?ks:uncapped_ks ())
