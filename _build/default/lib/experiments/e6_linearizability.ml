(* E6 — Theorem 5 (linearizability of Algorithm A) and its boundary.

   Every implementation is run under many random schedules, histories
   extracted, and checked with the Wing-Gong checker.  The literal
   Algorithm A (paper's line 16 early return) is included: random schedules
   over *duplicate* small values expose its non-linearizable executions,
   while the repaired version passes everything — the reproduction finding
   of test_paper_deviation.ml at statistical scale. *)

open Memsim

type row = {
  kind : string;
  impl : string;
  schedules : int;
  violations : int;
}

let maxreg_row ?(schedules = 400) ~dup_values impl =
  let violations = ref 0 in
  for seed = 1 to schedules do
    let n = 4 in
    let session = Session.create () in
    let reg =
      Harness.Annotate.max_register session
        (Harness.Instances.maxreg_sim session ~n ~bound:8 impl)
    in
    let rng = Random.State.make [| seed |] in
    let sched = Scheduler.create session in
    if dup_values then begin
      (* Two writers of the same small value plus a reader, with the first
         writer stalled right after its leaf write (the proof schedule of
         the line-16 deviation), the rest randomly interleaved. *)
      let v = 1 + Random.State.int rng 2 in
      let w0 = Scheduler.spawn sched (fun () -> reg.write_max ~pid:0 v) in
      let w1 = Scheduler.spawn sched (fun () -> reg.write_max ~pid:1 v) in
      let rd = Scheduler.spawn sched (fun () -> ignore (reg.read_max ())) in
      (* w0: leaf read + leaf write, then stalled *)
      ignore (Scheduler.step sched w0);
      ignore (Scheduler.step sched w0);
      (* w1 completes, then the reader, then w0 resumes *)
      Scheduler.run_solo sched w1;
      Scheduler.run_solo sched rd;
      Scheduler.run_solo sched w0
    end
    else begin
      for pid = 0 to n - 1 do
        let v = Random.State.int rng 8 in
        ignore
          (Scheduler.spawn sched (fun () ->
               if pid = n - 1 then ignore (reg.read_max ())
               else reg.write_max ~pid v))
      done;
      Scheduler.run_random ~seed ~max_events:100_000 sched
    end;
    let trace = Scheduler.finish sched in
    if
      not
        (Linearize.Checker.check_trace
           (module Linearize.Spec.Max_register)
           ~n trace)
    then incr violations
  done;
  { kind = "max-register";
    impl =
      Harness.Instances.maxreg_name impl
      ^ (if dup_values then " (stall schedule)" else "");
    schedules;
    violations = !violations }

let counter_row ?(schedules = 200) impl =
  let violations = ref 0 in
  for seed = 1 to schedules do
    let n = 4 in
    let session = Session.create () in
    let c =
      Harness.Annotate.counter session
        (Harness.Instances.counter_sim session ~n ~bound:16 impl)
    in
    let sched = Scheduler.create session in
    for pid = 0 to n - 1 do
      ignore
        (Scheduler.spawn sched (fun () ->
             if pid >= n - 2 then ignore (c.read ()) else c.increment ~pid))
    done;
    Scheduler.run_random ~seed ~max_events:200_000 sched;
    let trace = Scheduler.finish sched in
    if not (Linearize.Checker.check_trace (module Linearize.Spec.Counter) ~n trace)
    then incr violations
  done;
  { kind = "counter";
    impl = Harness.Instances.counter_name impl;
    schedules;
    violations = !violations }

let snapshot_row ?(schedules = 200) impl =
  let violations = ref 0 in
  for seed = 1 to schedules do
    let n = 4 in
    let session = Session.create () in
    let s =
      Harness.Annotate.snapshot session
        (Harness.Instances.snapshot_sim session ~n impl)
    in
    let rng = Random.State.make [| seed |] in
    let sched = Scheduler.create session in
    for pid = 0 to n - 1 do
      let v = 1 + Random.State.int rng 9 in
      ignore
        (Scheduler.spawn sched (fun () ->
             if pid >= n - 2 then ignore (s.scan ()) else s.update ~pid v))
    done;
    Scheduler.run_random ~seed ~max_events:500_000 sched;
    let trace = Scheduler.finish sched in
    if not (Linearize.Checker.check_trace (module Linearize.Spec.Snapshot) ~n trace)
    then incr violations
  done;
  { kind = "snapshot";
    impl = Harness.Instances.snapshot_name impl;
    schedules;
    violations = !violations }

let sweep ?schedules () =
  List.map
    (fun impl -> maxreg_row ?schedules ~dup_values:false impl)
    [ Harness.Instances.Algorithm_a;
      Harness.Instances.Algorithm_a_literal;
      Harness.Instances.Aac_maxreg;
      Harness.Instances.B1_maxreg;
      Harness.Instances.Cas_maxreg ]
  @ [ maxreg_row ?schedules ~dup_values:true Harness.Instances.Algorithm_a;
      maxreg_row ?schedules ~dup_values:true Harness.Instances.Algorithm_a_literal ]
  @ List.map (counter_row ?schedules)
      [ Harness.Instances.Farray_counter;
        Harness.Instances.Aac_counter;
        Harness.Instances.Naive_counter ]
  @ List.map (snapshot_row ?schedules)
      [ Harness.Instances.Farray_snapshot;
        Harness.Instances.Double_collect;
        Harness.Instances.Afek ]

let table rows =
  Harness.Tables.render
    ~title:
      "E6: linearizability under random schedules (violations expected ONLY \
       for the literal Algorithm A)"
    ~header:[ "object"; "impl"; "schedules"; "violations" ]
    (List.map
       (fun r ->
         [ r.kind; r.impl; string_of_int r.schedules; string_of_int r.violations ])
       rows)

let run ?schedules () = table (sweep ?schedules ())
