(* F4 — the data structure of Figure 4, audited.

   Leaf depths of the composite tree: the v-th leaf of the B1 left subtree
   sits at depth O(log v) (so cheap values are cheap to write), and every
   leaf of the complete right subtree sits at depth ~ log N. *)

open Memsim

let run ?(n = 1024) () =
  let session = Session.create () in
  let module M = (val Smem.Sim_memory.bind session) in
  let module A = Maxreg.Algorithm_a.Make (M) in
  let t = A.create ~n () in
  let ceil_log2 x =
    let rec go d v = if v >= x then d else go (d + 1) (2 * v) in
    go 0 1
  in
  let tl_rows =
    List.filter_map
      (fun v ->
        if v >= n - 1 then None
        else
          let d = A.tl_leaf_depth t v in
          Some
            [ Printf.sprintf "TL leaf %d" v; string_of_int d;
              string_of_int ((2 * ceil_log2 (v + 2)) + 3);
              string_of_bool (d <= (2 * ceil_log2 (v + 2)) + 3) ])
      [ 0; 1; 3; 7; 15; 63; 255; 1022 ]
  in
  let tr_rows =
    List.map
      (fun i ->
        let d = A.tr_leaf_depth t i in
        [ Printf.sprintf "TR leaf %d" i; string_of_int d;
          string_of_int (ceil_log2 n + 2);
          string_of_bool (d <= ceil_log2 n + 2) ])
      [ 0; n / 2; n - 1 ]
  in
  Harness.Tables.render
    ~title:
      (Printf.sprintf
         "F4: Algorithm A data structure, N=%d — leaf depths (B1 left \
          subtree: O(log v); complete right subtree: O(log N))"
         n)
    ~header:[ "leaf"; "depth"; "bound"; "ok" ]
    (tl_rows @ tr_rows)
