lib/harness/annotate.ml: Counters Maxreg Memsim Session Simval Snapshots
