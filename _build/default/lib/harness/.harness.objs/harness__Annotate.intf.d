lib/harness/annotate.mli: Counters Maxreg Memsim Snapshots
