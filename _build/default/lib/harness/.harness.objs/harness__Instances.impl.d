lib/harness/instances.ml: Counters Maxreg Smem Snapshots
