lib/harness/instances.mli: Counters Maxreg Memsim Smem Snapshots
