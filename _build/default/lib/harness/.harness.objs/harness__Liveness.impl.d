lib/harness/liveness.ml: Memsim Random Scheduler Session Store
