lib/harness/liveness.mli: Memsim
