lib/harness/measure.ml: List Memsim Session
