lib/harness/measure.mli: Memsim
