lib/harness/stats.ml: Float Fmt List
