lib/harness/stats.mli: Fmt
