lib/harness/tables.ml: Buffer List String
