lib/harness/tables.mli:
