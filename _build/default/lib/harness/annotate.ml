(* Wrap instances so each high-level operation records Invoke/Return
   annotations in the session's trace, from which {!Linearize.History}
   recovers the concurrent history.  Mutators record result Bot, matching
   the convention of {!Linearize.Spec}. *)

open Memsim

let max_register session (inst : Maxreg.Max_register.instance) :
    Maxreg.Max_register.instance =
  { read_max =
      (fun () ->
        Session.annotate_invoke session ~op:"read_max" ~arg:Simval.Bot;
        let r = inst.read_max () in
        Session.annotate_return session ~op:"read_max" ~result:(Simval.Int r);
        r);
    write_max =
      (fun ~pid v ->
        Session.annotate_invoke session ~op:"write_max" ~arg:(Simval.Int v);
        inst.write_max ~pid v;
        Session.annotate_return session ~op:"write_max" ~result:Simval.Bot) }

let counter session (inst : Counters.Counter.instance) :
    Counters.Counter.instance =
  { read =
      (fun () ->
        Session.annotate_invoke session ~op:"read" ~arg:Simval.Bot;
        let r = inst.read () in
        Session.annotate_return session ~op:"read" ~result:(Simval.Int r);
        r);
    increment =
      (fun ~pid ->
        Session.annotate_invoke session ~op:"increment" ~arg:Simval.Bot;
        inst.increment ~pid;
        Session.annotate_return session ~op:"increment" ~result:Simval.Bot) }

let snapshot session (inst : Snapshots.Snapshot.instance) :
    Snapshots.Snapshot.instance =
  { scan =
      (fun () ->
        Session.annotate_invoke session ~op:"scan" ~arg:Simval.Bot;
        let r = inst.scan () in
        Session.annotate_return session ~op:"scan"
          ~result:(Simval.of_int_array r);
        r);
    update =
      (fun ~pid v ->
        Session.annotate_invoke session ~op:"update" ~arg:(Simval.Int v);
        inst.update ~pid v;
        Session.annotate_return session ~op:"update" ~result:Simval.Bot) }
