(** Wrappers recording Invoke/Return annotations around every high-level
    operation, from which {!Linearize.History} recovers concurrent
    histories.  Mutators record result {!Memsim.Simval.Bot}, matching
    {!Linearize.Spec}'s convention.

    Note: a process's invocation is recorded when its body first runs,
    which the scheduler triggers at the first inspection of the process —
    peeking widens operation intervals (conservative for linearizability
    checking). *)

val max_register :
  Memsim.Session.t -> Maxreg.Max_register.instance ->
  Maxreg.Max_register.instance

val counter :
  Memsim.Session.t -> Counters.Counter.instance -> Counters.Counter.instance

val snapshot :
  Memsim.Session.t -> Snapshots.Snapshot.instance ->
  Snapshots.Snapshot.instance
