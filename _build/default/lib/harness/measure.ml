(* Step-complexity measurement.

   Step counts are taken on the simulator in direct mode: outside any
   scheduler run, every register operation is applied immediately and
   counted by the session, so [steps session f] is exactly the number of
   shared-memory events [f] issues — the paper's complexity measure,
   independent of machine speed. *)

open Memsim

let steps session f =
  Session.reset_steps session;
  f ();
  Session.direct_steps session

(* Worst case of [f i] over [0 <= i < trials]. *)
let max_steps session ~trials f =
  let worst = ref 0 in
  for i = 0 to trials - 1 do
    worst := max !worst (steps session (fun () -> f i))
  done;
  !worst

let log2 x = log (float_of_int x) /. log 2.

(* Geometric sweep [start, 2*start, ...] up to [stop] inclusive. *)
let powers ~start ~stop =
  let rec go v acc = if v > stop then List.rev acc else go (2 * v) (v :: acc) in
  go start []
