(** Step-complexity measurement on the simulator's direct mode: outside a
    scheduler run every register operation is applied immediately and
    counted, so measurements are exact event counts — the paper's cost
    model, independent of machine speed. *)

val steps : Memsim.Session.t -> (unit -> unit) -> int
(** Number of shared-memory events [f] issues. *)

val max_steps : Memsim.Session.t -> trials:int -> (int -> unit) -> int
(** Worst case of [f i] over [0 <= i < trials]. *)

val log2 : int -> float

val powers : start:int -> stop:int -> int list
(** Geometric sweep [start; 2*start; ...] up to [stop]. *)
