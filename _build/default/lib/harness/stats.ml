(* Small descriptive statistics over measurement samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let summarize = function
  | [] -> { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0. }
  | samples ->
    let count = List.length samples in
    let fcount = float_of_int count in
    let sum = List.fold_left ( +. ) 0. samples in
    let mean = sum /. fcount in
    let sq_diff = List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. samples in
    let stddev = sqrt (sq_diff /. fcount) in
    let min = List.fold_left Float.min Float.infinity samples in
    let max = List.fold_left Float.max Float.neg_infinity samples in
    { count; mean; stddev; min; max }

let summarize_ints samples = summarize (List.map float_of_int samples)

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.2f sd=%.2f min=%.0f max=%.0f" s.count s.mean s.stddev
    s.min s.max
