(** Small descriptive statistics over measurement samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float list -> summary
val summarize_ints : int list -> summary
val pp_summary : summary Fmt.t
