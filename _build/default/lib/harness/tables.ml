(* Plain-text table rendering for experiment reports (EXPERIMENTS.md rows
   are generated from these). *)

let render ~title ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with
        | Some cell -> max m (String.length cell)
        | None -> m)
      0 all
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render_row row =
    let cells =
      List.mapi
        (fun c w ->
          let cell = match List.nth_opt row c with Some s -> s | None -> "" in
          pad cell w)
        widths
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("## " ^ title ^ "\n\n");
  Buffer.add_string buf (render_row header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.contents buf

let print ~title ~header rows = print_string (render ~title ~header rows)
