(** Plain-text (markdown-compatible) table rendering for experiment
    reports; EXPERIMENTS.md is generated from these. *)

val render : title:string -> header:string list -> string list list -> string
val print : title:string -> header:string list -> string list list -> unit
