lib/infoflow/awareness.ml: Array Event Fmt Hashtbl Int List Memsim Set Trace Visibility
