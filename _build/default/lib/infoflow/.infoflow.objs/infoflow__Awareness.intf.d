lib/infoflow/awareness.mli: Fmt Memsim Set
