lib/infoflow/sigma.ml: Event List Memsim Scheduler Session Store
