lib/infoflow/sigma.mli: Memsim
