lib/infoflow/visibility.ml: Array Event Hashtbl Memsim
