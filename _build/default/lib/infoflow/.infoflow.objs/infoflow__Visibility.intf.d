lib/infoflow/visibility.mli: Memsim
