(* Awareness and familiarity sets (Definitions 2-4).

   Information flows through visible write/CAS events:

   - a read or CAS by [p] on [o] makes [p] aware of every process the
     object is familiar with (Def. 2 clause 1, closed transitively by
     clause 2);
   - a *visible* write or CAS by [r] on [o] makes [o] familiar with every
     process [r] is aware of at that point, including [r] itself (Def. 4);
     familiarity accumulates: later overwrites do not shrink F(o).

   A single forward pass computes AW(p) and F(o) after every prefix; since
   the sets only grow, M(E) = max(|AW|,|F|) is maintained as a running
   maximum.  Visibility is precomputed on the complete execution
   (Definition 1 looks ahead). *)

open Memsim
module Int_set = Set.Make (Int)

type t = {
  aw : (int, Int_set.t) Hashtbl.t;  (* pid -> awareness set *)
  fam : (int, Int_set.t) Hashtbl.t; (* obj -> familiarity set *)
  m_prefix : int array;             (* m_prefix.(k) = M after first k events *)
}

let aw_of t pid =
  match Hashtbl.find_opt t.aw pid with
  | Some s -> s
  | None -> Int_set.singleton pid (* a silent process is aware only of itself *)

let fam_of t obj =
  match Hashtbl.find_opt t.fam obj with Some s -> s | None -> Int_set.empty

let m_after t k = t.m_prefix.(k)
let m_final t = t.m_prefix.(Array.length t.m_prefix - 1)

let compute ?(literal = false) ?visible (events : Event.t array) : t =
  let visible =
    match visible with
    | Some v -> v
    | None -> Visibility.compute ~literal events
  in
  let n = Array.length events in
  let aw = Hashtbl.create 64 in
  let fam = Hashtbl.create 64 in
  let m_prefix = Array.make (n + 1) 1 in
  let get_aw pid =
    match Hashtbl.find_opt aw pid with
    | Some s -> s
    | None -> Int_set.singleton pid
  in
  let get_fam obj =
    match Hashtbl.find_opt fam obj with Some s -> s | None -> Int_set.empty
  in
  let m = ref 1 in
  for i = 0 to n - 1 do
    let e = events.(i) in
    let pid = e.Event.pid and obj = e.Event.obj in
    (* Awareness gain: reads and CAS observe the object (a CAS's boolean
       response reveals its value, so both branches count). *)
    (match e.Event.prim with
     | Event.Read | Event.Cas _ ->
       let aw' = Int_set.union (get_aw pid) (get_fam obj) in
       Hashtbl.replace aw pid aw';
       m := max !m (Int_set.cardinal aw')
     | Event.Write _ -> ());
    (* Familiarity gain: only visible writes/CAS contribute, with the
       issuer's awareness *after* this event (Def. 4 uses AW(r, E1 e)). *)
    (match e.Event.prim with
     | Event.Write _ | Event.Cas _ when visible.(i) ->
       let fam' = Int_set.union (get_fam obj) (get_aw pid) in
       Hashtbl.replace fam obj fam';
       m := max !m (Int_set.cardinal fam')
     | Event.Write _ | Event.Cas _ | Event.Read -> ());
    m_prefix.(i + 1) <- !m
  done;
  { aw; fam; m_prefix }

let of_trace ?literal ?visible trace =
  compute ?literal ?visible (Trace.events trace)

(* Def. 5: p is hidden after E iff no other process is aware of p. *)
let is_hidden t ~pids ~pid =
  List.for_all
    (fun q -> q = pid || not (Int_set.mem pid (aw_of t q)))
    pids

(* Def. 5 (second half): every object is familiar with at most one process
   of [set]. *)
let each_object_familiar_with_at_most_one t ~objs ~set =
  let set' = Int_set.of_list set in
  List.for_all
    (fun o -> Int_set.cardinal (Int_set.inter (fam_of t o) set') <= 1)
    objs

let pp_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (Int_set.elements s)
