(** Awareness sets AW(p,E) and familiarity sets F(o,E)
    (Definitions 2–4 of the paper), computed over a complete execution. *)

module Int_set : Set.S with type elt = int

type t

val compute : ?literal:bool -> ?visible:bool array -> Memsim.Event.t array -> t
(** Analyse an execution.  [visible] defaults to {!Visibility.compute} on
    the same events ([literal] selects the paper's verbatim Definition 1;
    see {!Visibility}). *)

val of_trace : ?literal:bool -> ?visible:bool array -> Memsim.Trace.t -> t

val aw_of : t -> int -> Int_set.t
(** AW(p, E): the processes [p] is aware of after the execution (always
    contains [p] itself). *)

val fam_of : t -> int -> Int_set.t
(** F(o, E): the processes object [o] is familiar with after the
    execution. *)

val m_after : t -> int -> int
(** M(E_k): the maximum cardinality over all awareness and familiarity sets
    after the first [k] events. *)

val m_final : t -> int

val is_hidden : t -> pids:int list -> pid:int -> bool
(** Is [pid] hidden (Definition 5): no process in [pids] other than [pid]
    is aware of it? *)

val each_object_familiar_with_at_most_one :
  t -> objs:int list -> set:int list -> bool
(** Second condition of Definition 5 for a hidden *set*: every listed object
    is familiar with at most one process of [set]. *)

val pp_set : Int_set.t Fmt.t
