(* The sigma-schedule of Lemma 1.

   Given the set S of enabled events of a group of active processes, apply
   them in the order: (1) all events that would not change any value — reads,
   trivial writes, trivial CAS; (2) all remaining writes; (3) all remaining
   CAS.  Lemma 1 shows this order lets the familiarity/awareness bound M
   grow by at most a factor of 3 per round; the Theorem 1 adversary is a
   loop of such rounds. *)

open Memsim

type classified = {
  quiet : int list;   (* reads + trivial writes + trivial CAS *)
  writes : int list;  (* non-trivial writes *)
  cas : int list;     (* non-trivial CAS *)
}

(* Classify against the current store contents.  Triviality is judged once,
   at round start, exactly as in the lemma's construction: events classified
   quiet change no value, so their classification cannot be invalidated by
   scheduling the other quiet events first. *)
let classify sched pids =
  let store = Session.store (Scheduler.session sched) in
  let quiet = ref [] and writes = ref [] and cas = ref [] in
  List.iter
    (fun pid ->
      match Scheduler.enabled sched pid with
      | None -> ()
      | Some (obj, prim) ->
        if not (Store.would_change store obj prim) then quiet := pid :: !quiet
        else (
          match prim with
          | Event.Write _ -> writes := pid :: !writes
          | Event.Cas _ -> cas := pid :: !cas
          | Event.Read -> assert false (* reads never change values *)))
    pids;
  { quiet = List.rev !quiet; writes = List.rev !writes; cas = List.rev !cas }

(* Apply one sigma round over the enabled events of [pids]; returns the
   number of events applied. *)
let round sched pids =
  let { quiet; writes; cas } = classify sched pids in
  let apply pid = ignore (Scheduler.step sched pid) in
  List.iter apply quiet;
  List.iter apply writes;
  List.iter apply cas;
  List.length quiet + List.length writes + List.length cas

(* Repeat sigma rounds over the processes of [pids] that are still active,
   until all complete or [max_rounds] is reached.  Returns the number of
   rounds executed. *)
let run ?(max_rounds = max_int) sched pids =
  let rec loop rounds =
    if rounds >= max_rounds then rounds
    else
      let live = List.filter (Scheduler.is_active sched) pids in
      if live = [] then rounds
      else begin
        ignore (round sched live);
        loop (rounds + 1)
      end
  in
  loop 0
