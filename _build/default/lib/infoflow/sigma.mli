(** The σ(E,S) schedule of Lemma 1: apply the enabled events of a set of
    processes in the order (reads + trivial events) → writes → CAS, which
    bounds the growth of awareness/familiarity sets to 3× per round. *)

type classified = {
  quiet : int list;   (** reads, trivial writes, trivial CAS *)
  writes : int list;  (** non-trivial writes *)
  cas : int list;     (** non-trivial CAS *)
}

val classify : Memsim.Scheduler.t -> int list -> classified
(** Classify the enabled events of the given processes against the current
    store contents. *)

val round : Memsim.Scheduler.t -> int list -> int
(** Apply one σ round over the enabled events of the given processes;
    returns the number of events applied. *)

val run : ?max_rounds:int -> Memsim.Scheduler.t -> int list -> int
(** Run σ rounds until all the given processes complete (or the round limit
    is hit); returns the number of rounds. *)
