(* Definition 1: an event [e] by process [p] on object [o] is invisible in
   execution [E] iff

   - [e] does not change the value of [o] ("trivial"); or
   - E = E1 e E' e' E'' where [e'] is a *write* to [o], no event of [E'] is
     applied to [o], and [p] takes no step in [E'] ("masked": [e'] is the
     first access to [o] after [e]).

   Reproduction finding — the literal definition is too strong.  When many
   processes write the *same* value to an object (e.g. the switch bits of
   the Aspnes-Attiya-Censor max register, all set to 1), the first
   (value-changing) write is masked by the second write, and every later
   write is trivial: no write to the switch is ever visible, familiarity
   stays empty, and a reader that decodes the object's (changed!) value is
   deemed aware of nobody.  Executions of the AAC counter then satisfy
   "CounterRead returns N-1 with |AW(reader)| = 1", contradicting Lemma 3
   as stated (see test_infoflow.ml and EXPERIMENTS.md).

   The repaired rule used by default: a *write* (or successful CAS) that
   leaves the value unchanged still re-asserts it and remains visible
   unless masked by clause 2.  Reads and failed CAS stay invisible.  Lemma
   1's proof is unaffected: within a sigma-round all but the last write to
   an object are still masked, so familiarity still gains at most one
   writer's awareness per object per round.  [~literal:true] computes the
   paper's original rule. *)

open Memsim

let compute ?(literal = false) (events : Event.t array) : bool array =
  let n = Array.length events in
  (* next_on_obj.(i): index of the first later event on the same object, or
     n if none.  next_of_pid.(i): likewise for the same process. *)
  let next_on_obj = Array.make n n in
  let next_of_pid = Array.make n n in
  let last_obj : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let last_pid : (int, int) Hashtbl.t = Hashtbl.create 64 in
  for i = n - 1 downto 0 do
    let e = events.(i) in
    (match Hashtbl.find_opt last_obj e.Event.obj with
     | Some j -> next_on_obj.(i) <- j
     | None -> ());
    (match Hashtbl.find_opt last_pid e.Event.pid with
     | Some j -> next_of_pid.(i) <- j
     | None -> ());
    Hashtbl.replace last_obj e.Event.obj i;
    Hashtbl.replace last_pid e.Event.pid i
  done;
  (* [e] is masked iff the next access to its object is a write issued
     before [e]'s process takes another step. *)
  let masked i =
    let j = next_on_obj.(i) in
    if j >= n then false
    else if not (Event.is_write events.(j)) then false
    else next_of_pid.(i) >= j
  in
  let successful_cas (e : Event.t) =
    match e.Event.prim, e.Event.response with
    | Event.Cas _, Event.RBool true -> true
    | (Event.Cas _ | Event.Read | Event.Write _), _ -> false
  in
  Array.mapi
    (fun i e ->
      if Event.changed_value e then not (masked i)
      else if literal then false
      else
        (* repaired rule: value-preserving writes / successful CAS still
           re-assert the value *)
        (Event.is_write e || successful_cas e) && not (masked i))
    events
