(** Visibility of events (Definition 1 of the paper).

    [compute] uses a repaired rule by default: writes (and successful CAS)
    that leave the value unchanged remain visible unless masked by a
    subsequent write.  This fixes an information leak in the literal
    definition that lets same-value writes (e.g. AAC switch bits) carry
    information without ever being "visible", contradicting Lemma 3 (see
    the implementation comment and EXPERIMENTS.md).  [~literal:true]
    computes the paper's rule verbatim. *)

val compute : ?literal:bool -> Memsim.Event.t array -> bool array
(** Per event: did it leave an observable trace in the execution (it
    changed — or, by default, re-asserted — its object's value, and was not
    silently masked by the next write before its issuer took another
    step)? *)
