lib/linearize/checker.ml: Array Hashtbl History Memsim Printf Simval Spec
