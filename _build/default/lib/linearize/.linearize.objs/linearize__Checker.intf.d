lib/linearize/checker.mli: History Memsim Spec
