lib/linearize/history.ml: Array Fmt Hashtbl Int Memsim Printf Simval Trace
