lib/linearize/history.mli: Fmt Memsim
