lib/linearize/spec.ml: Array List Memsim Simval
