lib/linearize/spec.mli: Memsim
