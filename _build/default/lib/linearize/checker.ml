(* Wing-Gong linearizability checker with memoization.

   Search over linearization orders: an operation may be linearized next if
   every operation that precedes it in real time (returned before it was
   invoked) has already been linearized.  Completed operations must all be
   linearized with matching results; pending operations may be linearized
   (with any result) or dropped.  States are memoized per (chosen-set,
   abstract state) to prune the exponential search — structural equality of
   states is required, which the specs in {!Spec} provide. *)

open Memsim

let find_linearization (type s) (module S : Spec.SPEC with type state = s) ~n
    (ops : History.op array) =
  let m = Array.length ops in
  if m > 62 then invalid_arg "Checker: more than 62 operations";
  (* completed ops must all be linearized *)
  let completed_mask = ref 0 in
  Array.iteri
    (fun i op -> if not (History.is_pending op) then completed_mask := !completed_mask lor (1 lsl i))
    ops;
  let completed_mask = !completed_mask in
  (* preds.(j): set of completed ops returning before op j was invoked *)
  let preds =
    Array.mapi
      (fun _j (opj : History.op) ->
        let mask = ref 0 in
        Array.iteri
          (fun i (opi : History.op) ->
            match opi.return with
            | Some r when r < opj.invoke -> mask := !mask lor (1 lsl i)
            | Some _ | None -> ())
          ops;
        !mask)
      ops
  in
  let visited : (int * s, unit) Hashtbl.t = Hashtbl.create 4096 in
  let rec dfs taken (state : s) =
    if taken land completed_mask = completed_mask then Some []
    else if Hashtbl.mem visited (taken, state) then None
    else begin
      Hashtbl.add visited (taken, state) ();
      let rec try_ops j =
        if j >= m then None
        else
          let bit = 1 lsl j in
          if
            taken land bit <> 0
            || preds.(j) land taken <> preds.(j)
          then try_ops (j + 1)
          else
            let op = ops.(j) in
            match S.apply state ~name:op.name ~pid:op.pid ~arg:op.arg with
            | None ->
              invalid_arg
                (Printf.sprintf "Checker: spec does not know operation %s"
                   op.name)
            | Some (state', result) ->
              let result_ok =
                match op.result with
                | None -> true (* pending: took effect with any result *)
                | Some r -> Simval.equal r result
              in
              let continue_here =
                if result_ok then
                  match dfs (taken lor bit) state' with
                  | Some order -> Some (j :: order)
                  | None -> None
                else None
              in
              (match continue_here with
               | Some _ as found -> found
               | None -> try_ops (j + 1))
      in
      try_ops 0
    end
  in
  dfs 0 (S.initial ~n)

let check spec ~n ops = find_linearization spec ~n ops <> None

let check_trace spec ~n trace = check spec ~n (History.of_trace trace)
