(** Wing–Gong linearizability checker with memoized state search.

    Completed operations must all be linearized with matching results;
    pending operations may take effect (with any result) or be dropped.
    Histories are limited to 62 operations (the chosen-set is a bitmask);
    keep test schedules small. *)

val find_linearization :
  (module Spec.SPEC with type state = 's) ->
  n:int ->
  History.op array ->
  int list option
(** A witness linearization order (indices into the history), or [None]
    if the history is not linearizable. *)

val check :
  (module Spec.SPEC with type state = 's) -> n:int -> History.op array -> bool

val check_trace :
  (module Spec.SPEC with type state = 's) -> n:int -> Memsim.Trace.t -> bool
(** Extract the history from a trace's annotations and check it. *)
