(* Histories of high-level operations, recovered from the Invoke/Return
   annotations of a trace.  Operations of one process are sequential and
   non-nested (annotate only top-level operations). *)

open Memsim

type op = {
  pid : int;
  name : string;
  arg : Simval.t;
  result : Simval.t option;  (* None: the operation is pending *)
  invoke : int;              (* entry index of the invocation *)
  return : int option;       (* entry index of the response *)
}

let of_trace trace =
  let open_ops : (int, string * Simval.t * int) Hashtbl.t = Hashtbl.create 16 in
  let ops = ref [] in
  Array.iteri
    (fun idx entry ->
      match entry with
      | Trace.Mem _ -> ()
      | Trace.Invoke { pid; op; arg } ->
        if Hashtbl.mem open_ops pid then
          invalid_arg
            (Printf.sprintf "History.of_trace: nested operation by p%d" pid);
        Hashtbl.replace open_ops pid (op, arg, idx)
      | Trace.Return { pid; op; result } -> (
        match Hashtbl.find_opt open_ops pid with
        | Some (name, arg, invoke) when name = op ->
          Hashtbl.remove open_ops pid;
          ops :=
            { pid; name; arg; result = Some result; invoke; return = Some idx }
            :: !ops
        | Some (name, _, _) ->
          invalid_arg
            (Printf.sprintf
               "History.of_trace: p%d returns from %s while %s is open" pid op
               name)
        | None ->
          invalid_arg
            (Printf.sprintf "History.of_trace: p%d returns without invoke" pid)))
    (Trace.entries trace);
  (* Operations that never returned are pending. *)
  Hashtbl.iter
    (fun pid (name, arg, invoke) ->
      ops := { pid; name; arg; result = None; invoke; return = None } :: !ops)
    open_ops;
  let arr = Array.of_list !ops in
  Array.sort (fun a b -> Int.compare a.invoke b.invoke) arr;
  arr

let is_pending op = op.result = None

let pp_op ppf op =
  Fmt.pf ppf "p%d %s(%a)%a" op.pid op.name Simval.pp op.arg
    (Fmt.option (fun ppf r -> Fmt.pf ppf " = %a" Simval.pp r))
    op.result
