(** Histories of high-level operations, recovered from the Invoke/Return
    annotations of a trace (see {!Harness.Annotate}). *)

type op = {
  pid : int;
  name : string;
  arg : Memsim.Simval.t;
  result : Memsim.Simval.t option;  (** [None]: the operation is pending *)
  invoke : int;                     (** entry index of the invocation *)
  return : int option;              (** entry index of the response *)
}

val of_trace : Memsim.Trace.t -> op array
(** Extract the history, sorted by invocation.  Operations of one process
    must be sequential and non-nested (annotate only top-level
    operations); raises [Invalid_argument] otherwise. *)

val is_pending : op -> bool

val pp_op : op Fmt.t
