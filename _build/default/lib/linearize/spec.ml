(* Sequential specifications for the linearizability checker.

   Convention shared with the harness wrappers: mutator operations
   (write_max, increment, update) record result Bot; readers record their
   returned value. *)

open Memsim

module type SPEC = sig
  type state

  val initial : n:int -> state

  val apply :
    state -> name:string -> pid:int -> arg:Simval.t -> (state * Simval.t) option
  (** Apply one operation to the abstract state; [None] if the operation
      name is unknown to this object type. *)
end

module Max_register : SPEC with type state = int = struct
  type state = int

  let initial ~n = ignore n; 0

  let apply s ~name ~pid ~arg =
    ignore pid;
    match name with
    | "write_max" -> Some (max s (Simval.int_exn arg), Simval.Bot)
    | "read_max" -> Some (s, Simval.Int s)
    | _ -> None
end

module Counter : SPEC with type state = int = struct
  type state = int

  let initial ~n = ignore n; 0

  let apply s ~name ~pid ~arg =
    ignore pid;
    ignore arg;
    match name with
    | "increment" -> Some (s + 1, Simval.Bot)
    | "read" -> Some (s, Simval.Int s)
    | _ -> None
end

module Max_array : SPEC with type state = int * int = struct
  (* two max registers readable atomically together *)
  type state = int * int

  let initial ~n = ignore n; (0, 0)

  let apply (a, b) ~name ~pid ~arg =
    ignore pid;
    match name with
    | "update0" -> Some ((max a (Simval.int_exn arg), b), Simval.Bot)
    | "update1" -> Some ((a, max b (Simval.int_exn arg)), Simval.Bot)
    | "scan" -> Some ((a, b), Simval.Vec [| Simval.Int a; Simval.Int b |])
    | _ -> None
end

module Max_vector : SPEC with type state = int list = struct
  (* m max registers readable atomically together *)
  type state = int list

  let initial ~n = ignore n; []
  (* state starts empty and adopts the width of the first operation: the
     checker passes n = process count, not component count, so width is
     carried in the operations themselves *)

  let widen s m = if List.length s >= m then s else s @ List.init (m - List.length s) (fun _ -> 0)

  let apply s ~name ~pid ~arg =
    ignore pid;
    match name with
    | "vupdate" -> (
      match arg with
      | Simval.Vec [| Simval.Int component; Simval.Int v |] ->
        let s = widen s (component + 1) in
        Some
          (List.mapi (fun i x -> if i = component then max x v else x) s,
           Simval.Bot)
      | _ -> None)
    | "vscan" -> (
      (* result width recorded by the implementation; compare on the
         common prefix by widening to the recorded width *)
      match arg with
      | Simval.Int m ->
        let s = widen s m in
        Some (s, Simval.of_int_array (Array.of_list s))
      | _ -> None)
    | _ -> None
end

module Snapshot : SPEC with type state = int list = struct
  (* int list rather than array: structural equality and hashing of states
     must be value-based for the checker's memoization *)
  type state = int list

  let initial ~n = List.init n (fun _ -> 0)

  let apply s ~name ~pid ~arg =
    match name with
    | "update" ->
      let v = Simval.int_exn arg in
      Some (List.mapi (fun i x -> if i = pid then v else x) s, Simval.Bot)
    | "scan" -> Some (s, Simval.of_int_array (Array.of_list s))
    | _ -> None
end
