(** Sequential specifications for the linearizability checker.

    Convention (shared with {!Harness.Annotate}): mutators record result
    {!Memsim.Simval.Bot}; readers record their returned value. *)

module type SPEC = sig
  type state

  val initial : n:int -> state

  val apply :
    state ->
    name:string ->
    pid:int ->
    arg:Memsim.Simval.t ->
    (state * Memsim.Simval.t) option
  (** Apply one operation; [None] if the operation name is unknown to this
      object type.  [state] must support structural equality and hashing
      (the checker memoizes on it). *)
end

module Max_register : SPEC with type state = int
(** Operations: ["write_max"] (arg = value), ["read_max"]. *)

module Counter : SPEC with type state = int
(** Operations: ["increment"], ["read"]. *)

module Max_array : SPEC with type state = int * int
(** Two max registers readable atomically together.
    Operations: ["update0"], ["update1"] (arg = value), ["scan"]
    (result = [Vec [|a; b|]]). *)

module Max_vector : SPEC with type state = int list
(** m max registers readable atomically.  Operations: ["vupdate"]
    (arg = [Vec [|component; value|]]), ["vscan"] (arg = the vector width
    m; result = the m maxima). *)

module Snapshot : SPEC with type state = int list
(** Operations: ["update"] (arg = value, segment = pid), ["scan"]. *)
