lib/lowerbound/theorem1.ml: Array Counters Fmt Fun Infoflow List Logs Memsim Scheduler Session Trace
