lib/lowerbound/theorem1.mli: Counters Fmt Memsim
