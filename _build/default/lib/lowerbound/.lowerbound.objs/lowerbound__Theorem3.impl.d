lib/lowerbound/theorem3.ml: Array Event Float Fmt Fun Hashtbl Infoflow Int List Logs Maxreg Memsim Option Printf Replay Scheduler Session Store Trace
