lib/lowerbound/theorem3.mli: Fmt Maxreg Memsim
