(* The Theorem 3 adversary: the essential-set construction for M-bounded
   max registers (Section 4, Figures 1-3).

   K-1 writer processes, p_i performing WriteMax(i+1), are driven so that
   after iteration i an "essential set" E_i survives with the invariants of
   Definition 7: every member has taken exactly i steps, is hidden (no other
   process is aware of it), no base object is familiar with two members, and
   members carry the highest ids among all processes in the execution.

   Each iteration inspects the enabled events of the still-active essential
   processes and either

   - (low contention, Fig. 1) keeps one process per distinct object, thinned
     to an independent set of the familiarity-conflict graph; or
   - (high contention, Fig. 2) zooms into one heavily-contended object and
     keeps the largest class among {value-changing CAS, writes,
     reads+trivial CAS}, sacrificing ("halting") one process whose event
     covers the others.

   Everyone else is *erased*: the whole execution is rebuilt without them by
   replaying the filtered schedule from the initial configuration (Lemma 2);
   the replay is checked to be indistinguishable for the survivors.

   The construction sustains Omega(log (log K / log f(K))) iterations before
   the essential set shrinks below f(K) or half of it manages to finish
   (Lemma 6 caps finishers at the ReadMax step complexity), so each survivor
   has spent that many steps inside a single WriteMax. *)

open Memsim
module A = Infoflow.Awareness

let src = Logs.Src.create "lowerbound.theorem3" ~doc:"Theorem 3 adversary"

module Log = (val Logs.src_log src : Logs.LOG)

type case_label =
  | Low_contention
  | High_cas
  | High_write
  | High_quiet

let case_name = function
  | Low_contention -> "low"
  | High_cas -> "high/cas"
  | High_write -> "high/write"
  | High_quiet -> "high/quiet"

type iteration = {
  index : int;                (* this is iteration i -> produces E_{i+1} *)
  case : case_label;
  active : int;               (* |Ee|: essential processes still active *)
  completed : int;            (* essential processes that finished in E_i *)
  next_essential : int;       (* |E_{i+1}| *)
  erased : int;               (* processes erased this iteration *)
  halted : bool;              (* did this iteration halt a process? *)
  (* Defs. 5-6 for E_{i+1}, verified on the *replayed* execution (after the
     erased processes' events are gone), hence amended one loop turn (or
     one final replay) later. *)
  mutable hidden_ok : bool;
  mutable supreme_ok : bool;
}

type result = {
  impl : string;
  k : int;
  f_k : int;
  i_star : int;               (* iterations sustained; essential processes
                                 each spent i_star steps in one WriteMax *)
  essential_sizes : int list; (* |E_1|, |E_2|, ... *)
  iterations : iteration list;
  stop_reason : string;
  final_essential : int list;
  halted : int list;
  lemma2_ok : bool;           (* all replays indistinguishable *)
  final_read_ok : bool;       (* post-construction linearizability probe *)
  predicted_i_star : float;   (* log2 (log2 K / max 1 (log2 f(K))) *)
}

let isqrt m = int_of_float (sqrt (float_of_int m))

(* Greedy independent set: repeatedly take a minimum-degree vertex and
   delete its neighbourhood.  Guarantees >= |V| / (d_avg + 1), which meets
   the paper's Turan bound (average degree <= 2 -> >= |V|/3). *)
let independent_set ~vertices ~edges =
  let neighbours = Hashtbl.create 16 in
  let add a b =
    let cur = Option.value ~default:[] (Hashtbl.find_opt neighbours a) in
    Hashtbl.replace neighbours a (b :: cur)
  in
  List.iter (fun (a, b) -> add a b; add b a) edges;
  let alive = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace alive v ()) vertices;
  let degree v =
    List.length
      (List.filter (Hashtbl.mem alive)
         (Option.value ~default:[] (Hashtbl.find_opt neighbours v)))
  in
  let rec go acc =
    let live = Hashtbl.fold (fun v () l -> v :: l) alive [] in
    match live with
    | [] -> acc
    | _ ->
      let v =
        List.fold_left
          (fun best v ->
            if degree v < degree best then v else best)
          (List.hd live) live
      in
      List.iter
        (fun u -> Hashtbl.remove alive u)
        (Option.value ~default:[] (Hashtbl.find_opt neighbours v));
      Hashtbl.remove alive v;
      go (v :: acc)
  in
  go []

let predicted ~k ~f_k =
  let log2 x = log x /. log 2. in
  let lk = log2 (float_of_int k) in
  let lf = Float.max 1. (log2 (float_of_int (max 2 f_k))) in
  Float.max 0. (log2 (lk /. lf))

let run ?(max_iterations = 1000) ?(min_active = 4) ?(sqrt_cap = true) ~impl
    ~make_maxreg ~k ~f_k () =
  if k < 3 then invalid_arg "Theorem3.run: k must be >= 3";
  let session = Session.create () in
  let reg : Maxreg.Max_register.instance = make_maxreg session ~n:k in
  let writers = k - 1 in
  let make_body pid () = reg.write_max ~pid (pid + 1) in
  let schedule = ref [] in
  let essential = ref (List.init writers Fun.id) in
  let halted = ref [] in
  let lemma2_ok = ref true in
  let prev_trace : Trace.t option ref = ref None in
  let iterations = ref [] in
  let sizes = ref [] in
  let stop_reason = ref "" in

  let rec iterate index =
    if index >= max_iterations then stop_reason := "max-iterations"
    else begin
      (* Rebuild the execution without last iteration's erased processes. *)
      let sched =
        try
          Some
            (Replay.replay session ~n:writers ~make_body ~schedule:!schedule ())
        with _ ->
          lemma2_ok := false;
          stop_reason := "replay-failed";
          None
      in
      match sched with
      | None -> ()
      | Some sched ->
        let trace = Scheduler.current_trace sched in
        (* Lemma 2 check: every process surviving the last erasure must
           re-issue exactly the events it had in E_i (its old events are a
           prefix of its new ones; the sigma step appended this round is
           new).  Swapped roles: indistinguishable_for validates that the
           smaller trace's events match the larger's prefix. *)
        (match !prev_trace with
         | Some old_trace ->
           let pids = Trace.pids trace in
           let survivors =
             List.filter
               (fun p -> Array.length (Trace.events_of old_trace p) > 0)
               pids
           in
           (match
              Replay.indistinguishable_for_all ~old_trace:trace
                ~new_trace:old_trace ~pids:survivors
            with
            | Ok () -> ()
            | Error _ -> lemma2_ok := false)
         | None -> ());
        let analysis = A.of_trace trace in
        (* Amend the previous iteration's invariant verdicts, now that the
           erased processes' events are really gone (Defs. 5-6 for E_i). *)
        (match !iterations with
         | last :: _ ->
           let pids = Trace.pids trace in
           let objs =
             List.sort_uniq Int.compare
               (Array.to_list
                  (Array.map (fun (e : Event.t) -> e.Event.obj) (Trace.events trace)))
           in
           last.hidden_ok <-
             List.for_all
               (fun p -> A.is_hidden analysis ~pids ~pid:p)
               !essential
             && A.each_object_familiar_with_at_most_one analysis ~objs
                  ~set:!essential;
           let min_essential = List.fold_left min max_int !essential in
           last.supreme_ok <-
             List.for_all
               (fun p -> List.mem p !essential || p < min_essential)
               pids
         | [] -> ());
        let active =
          List.filter (fun pid -> Scheduler.is_active sched pid) !essential
        in
        let completed =
          List.filter (fun pid -> Scheduler.is_finished sched pid) !essential
        in
        let m = List.length active in
        if 2 * List.length completed >= List.length !essential then begin
          stop_reason := "half-terminated";
          ignore (Scheduler.finish sched)
        end
        else if m < min_active then begin
          stop_reason := "too-few-active";
          ignore (Scheduler.finish sched)
        end
        else begin
          (* Group the enabled events of active essential processes. *)
          let store = Session.store session in
          let enabled =
            List.map
              (fun pid ->
                match Scheduler.enabled sched pid with
                | Some (obj, prim) -> (pid, obj, prim)
                | None -> assert false)
              active
          in
          let by_obj = Hashtbl.create 16 in
          List.iter
            (fun (pid, obj, prim) ->
              let cur =
                Option.value ~default:[] (Hashtbl.find_opt by_obj obj)
              in
              Hashtbl.replace by_obj obj ((pid, prim) :: cur))
            enabled;
          let groups =
            Hashtbl.fold (fun obj procs l -> (obj, procs) :: l) by_obj []
          in
          let sqrt_m = isqrt m in
          let biggest_obj, biggest_group =
            List.fold_left
              (fun ((_, bg) as best) ((_, g) as cand) ->
                if List.length g > List.length bg then cand else best)
              (List.hd groups) (List.tl groups)
          in
          let case, next_essential, erased_now, to_step, halt =
            if List.length biggest_group <= max 1 sqrt_m then begin
              (* Low contention: one representative per object, thinned to
                 an independent set of the familiarity conflict graph.  The
                 paper caps the representative set at sqrt m — needed only
                 for the proof's counting; [~sqrt_cap:false] keeps every
                 representative, letting the adversary stretch the
                 essential processes further (E5b). *)
              let cap = if sqrt_cap then max 1 sqrt_m else max_int in
              let reps =
                List.filteri (fun i _ -> i < cap)
                  (List.map
                     (fun (obj, procs) ->
                       let pid, _ = List.hd (List.rev procs) in
                       (pid, obj))
                     groups)
              in
              let vertices = List.map fst reps in
              let edges =
                (* edge (p, p') when p is about to access an object already
                   familiar with p' *)
                List.concat_map
                  (fun (pid, obj) ->
                    let fam = A.fam_of analysis obj in
                    List.filter_map
                      (fun (pid', _) ->
                        if pid' <> pid && A.Int_set.mem pid' fam then
                          Some (pid, pid')
                        else None)
                      reps)
                  reps
              in
              let chosen = independent_set ~vertices ~edges in
              let erased =
                List.filter (fun p -> not (List.mem p chosen)) !essential
              in
              (Low_contention, chosen, erased, chosen, None)
            end
            else begin
              (* High contention on [biggest_obj]. *)
              let fam = A.fam_of analysis biggest_obj in
              let classify (pid, prim) =
                match prim with
                | Event.Cas _ when Store.would_change store biggest_obj prim
                  ->
                  `Cas pid
                | Event.Cas _ | Event.Read -> `Quiet pid
                | Event.Write _ -> `Write pid
              in
              let classes = List.map classify biggest_group in
              let cas_c =
                List.filter_map (function `Cas p -> Some p | _ -> None) classes
              in
              let write_c =
                List.filter_map
                  (function `Write p -> Some p | _ -> None)
                  classes
              in
              let quiet_c =
                List.filter_map
                  (function `Quiet p -> Some p | _ -> None)
                  classes
              in
              let familiar_members pids =
                List.filter (fun p -> A.Int_set.mem p fam) pids
              in
              let largest =
                List.fold_left
                  (fun (bn, bl) (n', l') ->
                    if List.length l' > List.length bl then (n', l')
                    else (bn, bl))
                  (`Cas, cas_c)
                  [ (`Write, write_c); (`Quiet, quiet_c) ]
              in
              match largest with
              | `Cas, cls ->
                (* Erase processes the object is familiar with, then the
                   smallest-id member CASes first (and is halted); the rest
                   follow with CASes that are now trivial. *)
                let s = familiar_members cls in
                let cls' = List.filter (fun p -> not (List.mem p s)) cls in
                let pl = List.fold_left min (List.hd cls') cls' in
                let next = List.filter (fun p -> p <> pl) cls' in
                let erased =
                  List.filter
                    (fun p -> not (List.mem p cls) || List.mem p s)
                    !essential
                  |> List.filter (fun p -> p <> pl)
                in
                (High_cas, next, erased, pl :: next, Some pl)
              | `Write, cls ->
                (* All writes land; the smallest-id member writes last and
                   is halted — its value is the only visible one. *)
                let pl = List.fold_left min (List.hd cls) cls in
                let next = List.filter (fun p -> p <> pl) cls in
                let erased =
                  List.filter (fun p -> not (List.mem p cls)) !essential
                in
                (High_write, next, erased, next @ [ pl ], Some pl)
              | `Quiet, cls ->
                (* Reads and trivial CAS: all can go; only processes the
                   object is already familiar with must be erased. *)
                let s = familiar_members cls in
                let next = List.filter (fun p -> not (List.mem p s)) cls in
                let erased =
                  List.filter
                    (fun p -> not (List.mem p cls) || List.mem p s)
                    !essential
                in
                (High_quiet, next, erased, next, None)
            end
          in
          if List.length next_essential < max 1 f_k then begin
            stop_reason := "essential-below-f";
            ignore (Scheduler.finish sched)
          end
          else begin
            (* Erase, then queue the chosen steps: the next replay executes
               sigma in the erased context, exactly the paper's
               E_{i+1} = E_i^{-K} sigma. *)
            schedule :=
              Replay.erase_from_schedule !schedule ~erased:erased_now
              @ to_step;
            (match halt with Some pl -> halted := pl :: !halted | None -> ());
            iterations :=
              { index;
                case;
                active = m;
                completed = List.length completed;
                next_essential = List.length next_essential;
                erased = List.length erased_now;
                halted = halt <> None;
                hidden_ok = false;  (* amended at the next replay *)
                supreme_ok = false }
              :: !iterations;
            Log.debug (fun fmt ->
                fmt "%s K=%d iteration %d (%s): |Ee|=%d completed=%d -> |E_{i+1}|=%d erased=%d%s"
                  impl k index (case_name case) m (List.length completed)
                  (List.length next_essential)
                  (List.length erased_now)
                  (match halt with
                   | Some pl -> Printf.sprintf " halted=p%d" pl
                   | None -> ""));
            sizes := List.length next_essential :: !sizes;
            essential := next_essential;
            prev_trace := Some (Scheduler.current_trace sched);
            ignore (Scheduler.finish sched);
            iterate (index + 1)
          end
        end
    end
  in
  iterate 0;
  (* Post-construction probe: finish every surviving process, then a fresh
     reader must see the largest completed value. *)
  let final_read_ok =
    let sched =
      Replay.replay session ~n:writers ~make_body ~schedule:!schedule ()
    in
    let survivors =
      List.sort_uniq Int.compare (!essential @ !halted @ Trace.pids (Scheduler.current_trace sched))
    in
    List.iter
      (fun pid -> if not (Scheduler.is_finished sched pid) then Scheduler.run_solo sched pid)
      survivors;
    let result = ref (-1) in
    let reader = Scheduler.spawn sched (fun () -> result := reg.read_max ()) in
    Scheduler.run_solo sched reader;
    ignore (Scheduler.finish sched);
    let expected = List.fold_left (fun m pid -> max m (pid + 1)) 0 survivors in
    !result = expected
  in
  { impl;
    k;
    f_k;
    i_star = List.length !iterations;
    essential_sizes = List.rev !sizes;
    iterations = List.rev !iterations;
    stop_reason = !stop_reason;
    final_essential = List.sort Int.compare !essential;
    halted = List.sort Int.compare !halted;
    lemma2_ok = !lemma2_ok;
    final_read_ok;
    predicted_i_star = predicted ~k ~f_k }

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v>%s K=%d f=%d: i*=%d (predicted >= %.2f), sizes=[%a], stop=%s,@ \
     |final essential|=%d, halted=%d, lemma2=%b, final-read=%b@]"
    r.impl r.k r.f_k r.i_star r.predicted_i_star
    Fmt.(list ~sep:(any ",") int)
    r.essential_sizes r.stop_reason
    (List.length r.final_essential)
    (List.length r.halted) r.lemma2_ok r.final_read_ok
