(** The executable Theorem 3 adversary: the essential-set construction for
    max registers (Section 4, Figures 1–3).

    K-1 writers (p_i performs WriteMax(i+1)) are driven so that after
    iteration i a set E_i of processes survives with the invariants of
    Definition 7 (each member took exactly i steps, is hidden, no object
    knows two members, members have the highest ids).  Iterations apply
    the paper's low-/high-contention case analysis; erased processes are
    removed by replaying the filtered schedule from the initial
    configuration (Lemma 2, verified on every replay).  The number of
    iterations sustained is the per-WriteMax step cost the adversary
    forces — Omega(log (log K / log f(K))) by the theorem. *)

type case_label =
  | Low_contention   (** Fig. 1: distinct objects, independent-set thinning *)
  | High_cas         (** Fig. 2, sub-case 1: one value-changing CAS covers *)
  | High_write       (** Fig. 2, sub-case 2: last write covers *)
  | High_quiet       (** Fig. 2, sub-case 3: reads and trivial CAS *)

val case_name : case_label -> string

type iteration = {
  index : int;
  case : case_label;
  active : int;               (** |Ee|: essential processes still active *)
  completed : int;            (** essential processes finished in E_i *)
  next_essential : int;       (** |E_{i+1}| *)
  erased : int;
  halted : bool;
  mutable hidden_ok : bool;   (** Def. 5, verified after the next replay *)
  mutable supreme_ok : bool;  (** Def. 6, verified after the next replay *)
}

type result = {
  impl : string;
  k : int;
  f_k : int;
  i_star : int;               (** iterations sustained = steps spent by each
                                  surviving process inside one WriteMax *)
  essential_sizes : int list;
  iterations : iteration list;
  stop_reason : string;
  final_essential : int list;
  halted : int list;
  lemma2_ok : bool;           (** all replays indistinguishable *)
  final_read_ok : bool;       (** post-construction read probe *)
  predicted_i_star : float;   (** ~ log2 (log2 K / log2 f(K)) *)
}

val predicted : k:int -> f_k:int -> float

val run :
  ?max_iterations:int ->
  ?min_active:int ->
  ?sqrt_cap:bool ->
  impl:string ->
  make_maxreg:(Memsim.Session.t -> n:int -> Maxreg.Max_register.instance) ->
  k:int ->
  f_k:int ->
  unit ->
  result
(** Run the construction against a max-register implementation.  [f_k] is
    the ReadMax step complexity (the construction stops when the essential
    set drops below it, per Lemma 6).  [sqrt_cap] (default true, the
    paper's construction) caps the low-contention representative set at
    sqrt m; disabling it keeps every representative, which sustains more
    iterations at higher cost. *)

val pp_result : result Fmt.t
