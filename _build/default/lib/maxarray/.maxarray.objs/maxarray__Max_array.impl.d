lib/maxarray/max_array.ml: Array Farray Maxreg Memsim Simval Smem Snapshots
