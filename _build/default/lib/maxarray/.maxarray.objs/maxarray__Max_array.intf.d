lib/maxarray/max_array.mli: Smem
