lib/maxarray/max_vector.ml: Array Farray Memsim Simval Smem
