lib/maxarray/max_vector.mli: Smem
