(* 2-component max arrays: two max registers (a, b) whose MaxScan reads
   both ATOMICALLY — the building block of the restricted-use snapshot of
   Aspnes et al. [3].

   Two independent max registers do not work: concurrent scans can
   disagree on the order of updates to different components (a new-old
   inversion), and since max-register state is monotone every pair of
   scans must be comparable.  The object genuinely requires coordination.

   The polylogarithmic worst-case read/write-only construction of
   Aspnes-Attiya-Censor (JACM 2012) threads component b through the switch
   tree of component a with careful migration; reconstructing it
   faithfully is beyond this reproduction's scope — a naive "migrate b on
   switch flip" reconstruction is NOT linearizable: a slow scan on the
   abandoned half can observe a b-value that a later scan on the new half
   misses.  (We know, because our checker rejected it.)  Three
   correct-by-construction implementations bracket the complexity point:

   - {!From_registers}: two bounded max registers, with MaxScan
     double-collecting b around the a-read.  Reads and writes only; sound
     because max registers are MONOTONE: equal b-collects imply b was
     constant across the whole window, so the pair (a, b) is the object's
     exact state at the instant a was read.  Scans retry once per
     concurrent b-change — bounded by b's value bound, which is the
     restricted-use regime this whole object family lives in.  Solo costs
     are O(log bound) per operation; worst case amortizes over the bounded
     update budget rather than being polylog per scan like [2]'s.

   - {!From_snapshot}: from the Afek et al. wait-free snapshot, reads and
     writes only; O(N^2) steps per operation but worst-case wait-free.

   - {!From_farray}: from a Jayanti f-array with componentwise-max
     aggregation (read/write/CAS): MaxScan is a single read of the root,
     MaxUpdate is O(log N).

   All are validated against {!Linearize.Spec.Max_array} by exhaustive
   interleaving enumeration and random-schedule sweeps
   (test_max_array.ml). *)

open Memsim

module type S = sig
  type t

  val create : n:int -> t
  val max_update0 : t -> pid:int -> int -> unit
  val max_update1 : t -> pid:int -> int -> unit
  val max_scan : t -> int * int
end

(* A closed instance for harnesses. *)
type instance = {
  update0 : pid:int -> int -> unit;
  update1 : pid:int -> int -> unit;
  scan : unit -> int * int;
}

let instantiate (type a) (module I : S with type t = a) (m : a) =
  { update0 = (fun ~pid v -> I.max_update0 m ~pid v);
    update1 = (fun ~pid v -> I.max_update1 m ~pid v);
    scan = (fun () -> I.max_scan m) }

module From_registers (M : Smem.Memory_intf.MEMORY) = struct
  module R = Maxreg.Aac_maxreg.Make (M)

  type t = { a : R.t; b : R.t; max_collects : int }

  let create_bounded ?(max_collects = 1_000_000) ~bound0 ~bound1 () =
    { a = R.create ~bound:bound0; b = R.create ~bound:bound1; max_collects }

  (* [create ~n] exists for interface uniformity; restricted use means any
     polynomial bound works — pick one comfortably above the values the
     harnesses use. *)
  let create ~n =
    let bound = max 128 (4 * n * n) in
    create_bounded ~bound0:bound ~bound1:bound ()

  let max_update0 t ~pid v = R.write_max t.a ~pid v
  let max_update1 t ~pid w = R.write_max t.b ~pid w

  exception Starved

  (* Double-collect b around the a-read: b is monotone, so b1 = b2 means b
     held that value for the whole window and (a, b1) is the exact state
     at the moment a was read. *)
  let max_scan t =
    let rec loop b1 tries =
      if tries > t.max_collects then raise Starved;
      let a = R.read_max t.a in
      let b2 = R.read_max t.b in
      if b1 = b2 then (a, b1) else loop b2 (tries + 1)
    in
    loop (R.read_max t.b) 1
end

module From_snapshot (M : Smem.Memory_intf.MEMORY) = struct
  module S = Snapshots.Afek_snapshot.Make (M)

  (* snapshot over 2n segments: segment 2p announces p's a-maximum,
     segment 2p+1 its b-maximum; local.(i) caches the single-writer
     segment values (process-local state). *)
  type t = { snap : S.t; local : int array; n : int }

  let create ~n =
    if n <= 0 then invalid_arg "Max_array.create: n must be > 0";
    { snap = S.create ~n:(2 * n); local = Array.make (2 * n) 0; n }

  let announce t ~segment v =
    if v > t.local.(segment) then begin
      t.local.(segment) <- v;
      S.update t.snap ~pid:segment v
    end

  let max_update0 t ~pid v =
    if pid < 0 || pid >= t.n then invalid_arg "Max_array.max_update0: bad pid";
    if v < 0 then invalid_arg "Max_array.max_update0: negative value";
    announce t ~segment:(2 * pid) v

  let max_update1 t ~pid w =
    if pid < 0 || pid >= t.n then invalid_arg "Max_array.max_update1: bad pid";
    if w < 0 then invalid_arg "Max_array.max_update1: negative value";
    announce t ~segment:((2 * pid) + 1) w

  let max_scan t =
    let view = S.scan t.snap in
    let a = ref 0 and b = ref 0 in
    Array.iteri
      (fun i v -> if i mod 2 = 0 then a := max !a v else b := max !b v)
      view;
    (!a, !b)
end

module From_farray (M : Smem.Memory_intf.MEMORY) = struct
  module F = Farray.Make (M)

  type t = { farray : F.t; n : int }

  let pair_max x y =
    match x, y with
    | Simval.Bot, v | v, Simval.Bot -> v
    | Simval.Vec [| Simval.Int a; Simval.Int b |],
      Simval.Vec [| Simval.Int a'; Simval.Int b' |] ->
      Simval.Vec [| Simval.Int (max a a'); Simval.Int (max b b') |]
    | (Simval.Int _ | Simval.Vec _), _ -> invalid_arg "Max_array: bad node"

  let create ~n =
    if n <= 0 then invalid_arg "Max_array.create: n must be > 0";
    { farray = F.create ~n ~combine:pair_max (); n }

  let decode = function
    | Simval.Bot -> (0, 0)
    | Simval.Vec [| Simval.Int a; Simval.Int b |] -> (a, b)
    | Simval.Int _ | Simval.Vec _ -> invalid_arg "Max_array: bad leaf"

  let update t ~pid f =
    if pid < 0 || pid >= t.n then invalid_arg "Max_array: bad pid";
    let own = decode (F.read_leaf t.farray pid) in
    let a, b = f own in
    (* skip no-ops so leaf values never repeat (keeps CAS ABA-free) *)
    if (a, b) <> own then
      F.update t.farray ~leaf:pid (Simval.Vec [| Simval.Int a; Simval.Int b |])

  let max_update0 t ~pid v =
    if v < 0 then invalid_arg "Max_array.max_update0: negative value";
    update t ~pid (fun (a, b) -> (max a v, b))

  let max_update1 t ~pid w =
    if w < 0 then invalid_arg "Max_array.max_update1: negative value";
    update t ~pid (fun (a, b) -> (a, max b w))

  let max_scan t = decode (F.read t.farray)
end
