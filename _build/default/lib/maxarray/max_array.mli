(** 2-component max arrays — two max registers readable atomically
    together, the building block of the restricted-use snapshot of Aspnes
    et al. [3].  See the implementation header for why two plain max
    registers are not enough and why the polylog read/write-only
    construction of [2] is substituted by two correct-by-construction
    variants bracketing its complexity. *)

module type S = sig
  type t

  val create : n:int -> t
  (** Shared by [n] processes. *)

  val max_update0 : t -> pid:int -> int -> unit
  (** Raise component 0 to at least the given value. *)

  val max_update1 : t -> pid:int -> int -> unit
  (** Raise component 1 to at least the given value. *)

  val max_scan : t -> int * int
  (** Atomically read (max component 0, max component 1). *)
end

(** A closed instance for harnesses. *)
type instance = {
  update0 : pid:int -> int -> unit;
  update1 : pid:int -> int -> unit;
  scan : unit -> int * int;
}

val instantiate : (module S with type t = 'a) -> 'a -> instance

module From_registers (M : Smem.Memory_intf.MEMORY) : sig
  include S

  val create_bounded :
    ?max_collects:int -> bound0:int -> bound1:int -> unit -> t
  (** Explicit per-component value bounds. *)

  exception Starved
  (** A scan exceeded [max_collects] retries (only possible when component
      1 is updated more often than its restricted-use budget). *)
end
(** From two bounded max registers, reads and writes only: MaxScan
    double-collects the monotone component b around the a-read, so equal
    collects pin the joint state exactly.  Solo O(log bound) per
    operation; scans retry once per concurrent b-change (bounded by the
    restricted-use budget). *)

module From_snapshot (M : Smem.Memory_intf.MEMORY) : S
(** From the Afek et al. snapshot: reads and writes only, O(N²) steps per
    operation, worst-case wait-free. *)

module From_farray (M : Smem.Memory_intf.MEMORY) : S
(** From an f-array with componentwise max: read/write/CAS, MaxScan O(1),
    MaxUpdate O(log N). *)
