(* N-component max vectors: the generalization of {!Max_array} that [3]'s
   snapshot construction composes — m max registers readable atomically
   together.  Built from an f-array with componentwise-max aggregation
   (read/write/CAS): MaxScan is one read of the root, MaxUpdate O(log n).

   Each of the n processes owns a leaf announcing its per-component maxima;
   the root aggregates componentwise.  Leaf writes skip no-ops so values
   never repeat (ABA-free CAS propagation). *)

open Memsim

module Make (M : Smem.Memory_intf.MEMORY) = struct
  module F = Farray.Make (M)

  type t = { farray : F.t; n : int; m : int }

  let vec_max m x y =
    match x, y with
    | Simval.Bot, v | v, Simval.Bot -> v
    | Simval.Vec a, Simval.Vec b when Array.length a = m && Array.length b = m
      ->
      Simval.Vec
        (Array.init m (fun i ->
             Simval.Int
               (max (Simval.int_or ~default:0 a.(i))
                  (Simval.int_or ~default:0 b.(i)))))
    | (Simval.Int _ | Simval.Vec _), _ -> invalid_arg "Max_vector: bad node"

  let create ~n ~m =
    if n <= 0 then invalid_arg "Max_vector.create: n must be > 0";
    if m <= 0 then invalid_arg "Max_vector.create: m must be > 0";
    { farray = F.create ~n ~combine:(vec_max m) (); n; m }

  let components t = t.m

  let decode t = function
    | Simval.Bot -> Array.make t.m 0
    | Simval.Vec _ as v -> Simval.to_int_array v
    | Simval.Int _ -> invalid_arg "Max_vector: bad value"

  let max_update t ~pid ~component v =
    if pid < 0 || pid >= t.n then invalid_arg "Max_vector.max_update: bad pid";
    if component < 0 || component >= t.m then
      invalid_arg "Max_vector.max_update: bad component";
    if v < 0 then invalid_arg "Max_vector.max_update: negative value";
    let own = decode t (F.read_leaf t.farray pid) in
    if v > own.(component) then begin
      own.(component) <- v;
      F.update t.farray ~leaf:pid (Simval.of_int_array own)
    end

  (* One shared-memory event. *)
  let max_scan t = decode t (F.read t.farray)
end
