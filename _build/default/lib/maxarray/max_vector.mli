(** N-component max vectors: m max registers readable atomically together
    (the shape [3]'s snapshot composes out of 2-component max arrays).
    From read/write/CAS via an f-array with componentwise-max aggregation:
    MaxScan O(1), MaxUpdate O(log n). *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  type t

  val create : n:int -> m:int -> t
  (** [n] processes, [m] components, all initially 0. *)

  val components : t -> int

  val max_update : t -> pid:int -> component:int -> int -> unit
  (** Raise one component to at least the given value. *)

  val max_scan : t -> int array
  (** Atomically read all component maxima: one shared-memory event. *)
end
