lib/maxreg/aac_maxreg.ml: Memsim Simval Smem
