lib/maxreg/aac_maxreg.mli: Smem
