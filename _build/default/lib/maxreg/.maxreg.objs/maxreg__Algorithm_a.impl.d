lib/maxreg/algorithm_a.ml: Array Memsim Simval Smem Treeprim
