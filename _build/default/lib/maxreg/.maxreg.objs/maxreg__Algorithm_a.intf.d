lib/maxreg/algorithm_a.mli: Smem
