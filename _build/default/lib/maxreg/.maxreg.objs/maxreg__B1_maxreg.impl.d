lib/maxreg/b1_maxreg.ml: Atomic Memsim Option Simval Smem
