lib/maxreg/b1_maxreg.mli: Smem
