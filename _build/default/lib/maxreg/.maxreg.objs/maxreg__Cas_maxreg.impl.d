lib/maxreg/cas_maxreg.ml: Memsim Simval Smem
