lib/maxreg/cas_maxreg.mli: Smem
