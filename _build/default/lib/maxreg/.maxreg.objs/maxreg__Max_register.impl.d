lib/maxreg/max_register.ml:
