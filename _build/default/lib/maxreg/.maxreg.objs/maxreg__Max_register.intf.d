lib/maxreg/max_register.mli:
