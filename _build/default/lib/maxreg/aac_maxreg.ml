(* The Aspnes-Attiya-Censor bounded max register [2], built from reads and
   writes only: a tournament tree of "switch" bits over the value range.

   An M-bounded register (values 0..M-1) is a switch plus an (M/2)-bounded
   left half (values below the split) and an (M - M/2)-bounded right half
   (values at or above it).  WriteMax descends right and raises the switch,
   or descends left only while the switch is still unset; ReadMax follows
   switches down.  Both operations take O(log M) steps — the read-side
   contrast to Algorithm A's O(1). *)

open Memsim

module Make (M : Smem.Memory_intf.MEMORY) = struct
  type t =
    | Leaf  (* 1-bounded register: always holds 0 *)
    | Node of { switch : M.t; half : int; left : t; right : t }

  let rec make_tree bound =
    if bound <= 1 then Leaf
    else
      let half = (bound + 1) / 2 in
      Node
        { switch = M.make (Simval.Int 0);
          half;
          left = make_tree half;
          right = make_tree (bound - half) }

  let create ~bound =
    if bound <= 0 then invalid_arg "Aac_maxreg.create: bound must be > 0";
    make_tree bound

  let switch_set (m : M.t) = Simval.equal (M.read m) (Simval.Int 1)

  let rec read_max = function
    | Leaf -> 0
    | Node { switch; half; left; right } ->
      if switch_set switch then half + read_max right else read_max left

  let rec write t value =
    match t with
    | Leaf -> () (* value must be 0 here; nothing to store *)
    | Node { switch; half; left; right } ->
      if value >= half then begin
        write right (value - half);
        M.write switch (Simval.Int 1)
      end
      else if not (switch_set switch) then write left value

  let write_max t ~pid value =
    ignore pid;
    if value < 0 then invalid_arg "Aac_maxreg.write_max: negative value";
    write t value
end
