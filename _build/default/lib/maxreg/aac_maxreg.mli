(** The Aspnes–Attiya–Censor bounded max register (JACM 2012), from reads
    and writes only: a tournament tree of switch bits over the value range.
    Both ReadMax and WriteMax take O(log bound) steps — the read-side
    contrast to {!Algorithm_a}, and the paper's Theorem 4 shows the
    write side cannot be brought below Omega(log log min(N,M)) while
    keeping reads optimal. *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  type t

  val create : bound:int -> t
  (** A [bound]-bounded max register: correct for values in
      [0, bound). *)

  val read_max : t -> int
  (** O(log bound) steps. *)

  val write_max : t -> pid:int -> int -> unit
  (** O(log bound) steps; [pid] is ignored (kept for interface
      uniformity). *)
end
