(* Baseline: a max register as a single register updated with a CAS retry
   loop.  ReadMax is O(1); WriteMax is lock-free but not wait-free — its
   step complexity is bounded only by the number of concurrent successful
   writers (O(1) when run alone).  Included as the "obvious" CAS
   implementation against which Algorithm A's wait-freedom matters. *)

open Memsim

module Make (M : Smem.Memory_intf.MEMORY) = struct
  type t = M.t

  let create () = M.make (Simval.Int 0)

  let read_max t = Simval.int_or ~default:0 (M.read t)

  let write_max t ~pid value =
    ignore pid;
    if value < 0 then invalid_arg "Cas_maxreg.write_max: negative value";
    let rec loop () =
      let cur = M.read t in
      let cur_int = Simval.int_or ~default:0 cur in
      if value > cur_int then
        if not (M.cas t ~expected:cur ~desired:(Simval.Int value)) then loop ()
    in
    loop ()
end
