(* Common interface of max-register implementations.

   Semantics (sequential specification): the register holds the maximum
   value written so far, initially 0; values are non-negative integers.
   [write_max] takes the pid of the calling process because Algorithm A
   routes large values to a per-process leaf. *)

module type S = sig
  type t

  val read_max : t -> int
  (** The largest value written so far (0 if none). *)

  val write_max : t -> pid:int -> int -> unit
  (** Write a value [>= 0].  [pid] identifies the calling process,
      [0 <= pid < n]. *)
end

(* A closed instance, convenient for harnesses that treat implementations
   uniformly. *)
type instance = {
  read_max : unit -> int;
  write_max : pid:int -> int -> unit;
}

let instantiate (type a) (module I : S with type t = a) (reg : a) =
  { read_max = (fun () -> I.read_max reg);
    write_max = (fun ~pid v -> I.write_max reg ~pid v) }
