(** Common interface of max-register implementations.

    Sequential specification: the register holds the maximum value written
    so far (initially 0); values are non-negative integers. *)

module type S = sig
  type t

  val read_max : t -> int
  (** The largest value written so far (0 if none). *)

  val write_max : t -> pid:int -> int -> unit
  (** Write a value [>= 0].  [pid] identifies the calling process
      ([0 <= pid < n]); Algorithm A routes large values to a per-process
      leaf. *)
end

(** A closed instance, for harnesses that treat implementations
    uniformly. *)
type instance = {
  read_max : unit -> int;
  write_max : pid:int -> int -> unit;
}

val instantiate : (module S with type t = 'a) -> 'a -> instance
