lib/memsim/event.ml: Fmt Simval
