lib/memsim/event.mli: Fmt Simval
