lib/memsim/explore.ml: Array List Scheduler Session Store
