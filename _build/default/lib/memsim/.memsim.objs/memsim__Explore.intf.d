lib/memsim/explore.mli: Session Trace
