lib/memsim/replay.ml: Array Event Fmt List Printf Scheduler Session Store Trace
