lib/memsim/replay.mli: Scheduler Session Trace
