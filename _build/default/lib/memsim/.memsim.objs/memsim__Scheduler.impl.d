lib/memsim/scheduler.ml: Array Effect Event List Printf Random Session Store Trace
