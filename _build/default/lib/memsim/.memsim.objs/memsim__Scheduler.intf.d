lib/memsim/scheduler.mli: Event Session Trace
