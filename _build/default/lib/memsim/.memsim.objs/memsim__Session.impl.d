lib/memsim/session.ml: Effect Event Hashtbl List Option Simval Store Trace
