lib/memsim/session.mli: Effect Event Simval Store Trace
