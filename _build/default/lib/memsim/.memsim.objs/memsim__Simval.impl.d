lib/memsim/simval.ml: Array Fmt Int
