lib/memsim/simval.mli: Fmt
