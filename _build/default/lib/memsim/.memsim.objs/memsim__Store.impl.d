lib/memsim/store.ml: Array Event Simval
