lib/memsim/store.mli: Event Simval
