lib/memsim/trace.ml: Array Event Fmt Hashtbl Int List Simval
