lib/memsim/trace.mli: Event Fmt Simval
