(* Exhaustive schedule exploration (bounded model checking).

   Enumerate every interleaving of a small set of processes and hand each
   complete execution to a callback.  Continuations are one-shot, so a
   prefix cannot be forked; instead each schedule is re-executed from the
   initial configuration (processes are deterministic, so prefix work is
   identical).  Cost is O(#schedules * length) — affordable exactly in the
   regime where exhaustiveness is interesting (2-4 processes, a few steps
   each). *)

type stats = { explored : int; truncated : bool }

(* Replay [schedule] and return the active pids after it (or None when the
   schedule is not executable, which cannot happen for schedules built by
   [run] itself). *)
let active_after session ~n ~make_body schedule =
  Store.reset (Session.store session);
  let sched = Scheduler.create session in
  for pid = 0 to n - 1 do
    ignore (Scheduler.spawn sched (make_body pid))
  done;
  List.iter (fun pid -> ignore (Scheduler.step sched pid)) (List.rev schedule);
  let active = Scheduler.active_pids sched in
  (sched, active)

(* Depth-first over all maximal schedules.  [on_complete] receives the full
   trace of each complete execution; return [false] from it to abort the
   exploration early (e.g. a counterexample was found). *)
let run ?(max_schedules = 1_000_000) ?(max_events = 60) session ~n ~make_body
    ~on_complete () =
  let explored = ref 0 in
  let truncated = ref false in
  let continue = ref true in
  (* rev_prefix is the schedule so far, newest first *)
  let rec dfs rev_prefix len =
    if !continue then begin
      if !explored >= max_schedules || len > max_events then
        truncated := true
      else begin
        let sched, active = active_after session ~n ~make_body rev_prefix in
        match active with
        | [] ->
          let trace = Scheduler.finish sched in
          incr explored;
          if not (on_complete trace) then continue := false
        | pids ->
          ignore (Scheduler.finish sched);
          List.iter (fun pid -> dfs (pid :: rev_prefix) (len + 1)) pids
      end
    end
  in
  dfs [] 0;
  { explored = !explored; truncated = !truncated }

(* When every process issues a schedule-independent number of events (true
   of all write-once tree algorithms here — CAS failures do not change step
   counts), complete schedules are exactly the interleavings of the given
   per-process counts, and each needs to be executed only once: much
   cheaper than prefix-replaying DFS. *)
let run_interleavings ?(max_schedules = 1_000_000) session ~make_body ~counts
    ~on_complete () =
  let n = Array.length counts in
  let explored = ref 0 in
  let truncated = ref false in
  let continue = ref true in
  let remaining = Array.copy counts in
  let execute rev_schedule =
    let schedule = List.rev rev_schedule in
    Store.reset (Session.store session);
    let sched = Scheduler.create session in
    for pid = 0 to n - 1 do
      ignore (Scheduler.spawn sched (make_body pid))
    done;
    List.iter
      (fun pid ->
        if not (Scheduler.is_active sched pid) then begin
          ignore (Scheduler.finish sched);
          invalid_arg
            "Explore.run_interleavings: step counts are schedule-dependent"
        end;
        ignore (Scheduler.step sched pid))
      schedule;
    if Scheduler.active_pids sched <> [] then begin
      ignore (Scheduler.finish sched);
      invalid_arg
        "Explore.run_interleavings: step counts are schedule-dependent"
    end;
    let trace = Scheduler.finish sched in
    incr explored;
    if not (on_complete trace) then continue := false
  in
  let rec go rev_schedule left =
    if !continue then
      if !explored >= max_schedules then truncated := true
      else if left = 0 then execute rev_schedule
      else
        for pid = 0 to n - 1 do
          if !continue && remaining.(pid) > 0 then begin
            remaining.(pid) <- remaining.(pid) - 1;
            go (pid :: rev_schedule) (left - 1);
            remaining.(pid) <- remaining.(pid) + 1
          end
        done
  in
  go [] (Array.fold_left ( + ) 0 counts);
  { explored = !explored; truncated = !truncated }

(* Solo step counts, for run_interleavings. *)
let solo_counts session ~n ~make_body =
  Store.reset (Session.store session);
  let sched = Scheduler.create session in
  for pid = 0 to n - 1 do
    ignore (Scheduler.spawn sched (make_body pid))
  done;
  let counts =
    Array.init n (fun pid ->
        let before = Scheduler.steps_of sched pid in
        Scheduler.run_solo sched pid;
        Scheduler.steps_of sched pid - before)
  in
  ignore (Scheduler.finish sched);
  counts
