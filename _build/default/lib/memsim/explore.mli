(** Exhaustive schedule exploration (bounded model checking): enumerate
    {e every} interleaving of a small set of deterministic processes,
    re-executing each complete schedule from the initial configuration, and
    hand the resulting traces to a callback.  Affordable for 2–4 processes
    with a few steps each — the regime where exhaustiveness beats random
    testing. *)

type stats = {
  explored : int;      (** complete executions visited *)
  truncated : bool;    (** a limit stopped the enumeration *)
}

val run :
  ?max_schedules:int ->
  ?max_events:int ->
  Session.t ->
  n:int ->
  make_body:(int -> unit -> unit) ->
  on_complete:(Trace.t -> bool) ->
  unit ->
  stats
(** [run session ~n ~make_body ~on_complete ()] explores all maximal
    schedules of processes [0..n-1] (fresh bodies per re-execution, store
    reset each time).  [on_complete] returns [false] to abort early (e.g.
    when a counterexample is found).  Handles processes whose step count
    depends on the schedule (retry loops), at the cost of replaying every
    prefix. *)

val run_interleavings :
  ?max_schedules:int ->
  Session.t ->
  make_body:(int -> unit -> unit) ->
  counts:int array ->
  on_complete:(Trace.t -> bool) ->
  unit ->
  stats
(** Faster exhaustive exploration for processes whose event counts are
    schedule-independent (all the write-once tree algorithms here):
    enumerate exactly the interleavings of [counts] and execute each once.
    Raises [Invalid_argument] if a process deviates from its count. *)

val solo_counts :
  Session.t -> n:int -> make_body:(int -> unit -> unit) -> int array
(** Per-process event counts measured by running each process solo, in pid
    order (suitable as [counts] for {!run_interleavings} when counts are
    schedule-independent). *)
