(* Erase-and-replay.

   The paper's constructions repeatedly *remove* processes from an execution
   (Lemma 2, Claim 1) and continue from the resulting shorter execution.  We
   realize this honestly: reset the store to the initial configuration,
   re-spawn fresh process bodies, and replay the recorded schedule with the
   erased processes' entries filtered out.  Because processes are
   deterministic, the surviving processes re-issue the same events whenever
   the removal respects Lemma 2's awareness condition — and
   [indistinguishable_for] checks exactly that, turning the lemma into a
   runtime-verified statement. *)

let erase_from_schedule schedule ~erased =
  List.filter (fun pid -> not (List.mem pid erased)) schedule

(* Start a fresh run of [n] processes on [session] (store reset to the
   initial configuration) and replay [schedule].  The run is left open so
   the caller can inspect enabled events and keep extending it. *)
let replay session ~n ?names ~make_body ~schedule () =
  Store.reset (Session.store session);
  let sched = Scheduler.create session in
  for pid = 0 to n - 1 do
    let name = match names with Some f -> Some (f pid) | None -> None in
    let spawned = Scheduler.spawn sched ?name (make_body pid) in
    assert (spawned = pid)
  done;
  Scheduler.run_schedule sched schedule;
  sched

(* Do the events of [pid] in [new_] match its events in [old_]
   (same objects, primitives and responses), up to the length present in
   [new_]?  This is the indistinguishability guarantee of Lemma 2. *)
let indistinguishable_for ~old_trace ~new_trace ~pid =
  let evs_old = Trace.events_of old_trace pid in
  let evs_new = Trace.events_of new_trace pid in
  if Array.length evs_new > Array.length evs_old then
    Error
      (Printf.sprintf "p%d issued %d events after replay but only %d before"
         pid (Array.length evs_new) (Array.length evs_old))
  else begin
    let mismatch = ref None in
    Array.iteri
      (fun i (e_new : Event.t) ->
        if !mismatch = None then begin
          let e_old = evs_old.(i) in
          let same =
            e_old.Event.obj = e_new.Event.obj
            && e_old.Event.prim = e_new.Event.prim
            && e_old.Event.response = e_new.Event.response
          in
          if not same then
            mismatch :=
              Some
                (Fmt.str "p%d event %d differs: was %a, replayed as %a" pid i
                   Event.pp e_old Event.pp e_new)
        end)
      evs_new;
    match !mismatch with None -> Ok () | Some m -> Error m
  end

let indistinguishable_for_all ~old_trace ~new_trace ~pids =
  let rec go = function
    | [] -> Ok ()
    | pid :: rest -> (
      match indistinguishable_for ~old_trace ~new_trace ~pid with
      | Ok () -> go rest
      | Error _ as e -> e)
  in
  go pids
