(** Erase-and-replay: reconstruct an execution with some processes removed
    (Lemma 2 / Claim 1 of the paper), by resetting the store to the initial
    configuration and replaying the filtered schedule against fresh,
    deterministic process bodies. *)

val erase_from_schedule : int list -> erased:int list -> int list
(** Remove every entry of the erased pids from a schedule. *)

val replay :
  Session.t ->
  n:int ->
  ?names:(int -> string) ->
  make_body:(int -> unit -> unit) ->
  schedule:int list ->
  unit ->
  Scheduler.t
(** Reset the session's store, spawn [n] fresh processes (pid [i] runs
    [make_body i]) and replay [schedule].  The returned run is left open for
    further inspection and extension; the caller must eventually call
    {!Scheduler.finish}. *)

val indistinguishable_for :
  old_trace:Trace.t -> new_trace:Trace.t -> pid:int -> (unit, string) result
(** Check that [pid] issued the same events (object, primitive, response) in
    the replayed execution as in the original — the indistinguishability
    property Lemma 2 guarantees when erased processes were unknown to
    [pid]. *)

val indistinguishable_for_all :
  old_trace:Trace.t -> new_trace:Trace.t -> pids:int list -> (unit, string) result
