(* The execution engine.

   A process is an ordinary OCaml function over simulated registers; each
   register operation performs the [Session.Mem_op] effect.  The scheduler
   captures the one-shot continuation together with a full description of
   the enabled event (object id + primitive with operands), so a scheduling
   policy — in particular the paper's adversaries — can inspect every
   process's next event before deciding what to apply.  Applying an event
   (= [step]) is the unit of step complexity. *)

type pending = {
  obj : int;
  prim : Event.prim;
  k : (Event.response, unit) Effect.Deep.continuation;
}

type state =
  | Not_started of (unit -> unit)
  | Pending of pending
  | Finished
  | Erased

type entry = {
  pid : int;
  pname : string;
  mutable state : state;
  mutable steps : int;
}

type t = {
  session : Session.t;
  mutable entries : entry array;
  mutable n : int;
  trace : Trace.builder;
}

exception Process_failure of int * exn

let create session =
  if Session.trace_builder session <> None then
    invalid_arg "Scheduler.create: a run is already in progress on this session";
  let trace = Trace.builder () in
  Session.set_in_run session true;
  Session.set_trace session (Some trace);
  Session.clear_pending_invokes session;
  { session; entries = [||]; n = 0; trace }

let session t = t.session

let spawn t ?name body =
  let pid = t.n in
  let pname = match name with Some s -> s | None -> Printf.sprintf "p%d" pid in
  let entry = { pid; pname; state = Not_started body; steps = 0 } in
  if t.n = Array.length t.entries then begin
    let cap = max 8 (2 * t.n) in
    let entries = Array.make cap entry in
    Array.blit t.entries 0 entries 0 t.n;
    t.entries <- entries
  end;
  t.entries.(t.n) <- entry;
  t.n <- t.n + 1;
  pid

let get t pid =
  if pid < 0 || pid >= t.n then invalid_arg "Scheduler: bad pid";
  t.entries.(pid)

let handler entry : (unit, unit) Effect.Deep.handler =
  { retc = (fun () -> entry.state <- Finished);
    exnc = (fun e -> entry.state <- Finished; raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Session.Mem_op (obj, prim) ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              entry.state <- Pending { obj; prim; k })
        | _ -> None) }

(* Run a process body until its first shared-memory event is enabled (or it
   finishes without one).  Issues no event. *)
let ensure_started t entry =
  match entry.state with
  | Not_started body ->
    Session.set_current_pid t.session entry.pid;
    (try Effect.Deep.match_with body () (handler entry)
     with e ->
       Session.set_current_pid t.session (-1);
       raise (Process_failure (entry.pid, e)));
    Session.set_current_pid t.session (-1)
  | Pending _ | Finished | Erased -> ()

let enabled t pid =
  let entry = get t pid in
  ensure_started t entry;
  match entry.state with
  | Pending { obj; prim; _ } -> Some (obj, prim)
  | Not_started _ | Finished | Erased -> None

let is_active t pid =
  let entry = get t pid in
  ensure_started t entry;
  match entry.state with
  | Pending _ -> true
  | Not_started _ | Finished | Erased -> false

let active_pids t =
  let rec go pid acc =
    if pid < 0 then acc
    else go (pid - 1) (if is_active t pid then pid :: acc else acc)
  in
  go (t.n - 1) []

let enabled_would_change t pid =
  match enabled t pid with
  | None -> false
  | Some (obj, prim) -> Store.would_change (Session.store t.session) obj prim

let step t pid =
  let entry = get t pid in
  ensure_started t entry;
  match entry.state with
  | Pending { obj; prim; k } ->
    let store = Session.store t.session in
    (* buffered operation invocations land just before the first step *)
    Session.flush_invokes t.session pid;
    let before = Store.get store obj in
    let response = Store.apply store obj prim in
    let after = Store.get store obj in
    let ev =
      Trace.add_mem t.trace ~pid ~obj ~obj_name:(Store.name store obj) ~prim
        ~response ~before ~after
    in
    entry.steps <- entry.steps + 1;
    (* The continuation's own handler moves the state to [Pending] (next
       event) or leaves this [Finished] (normal return). *)
    entry.state <- Finished;
    Session.set_current_pid t.session pid;
    (try Effect.Deep.continue k response
     with e ->
       Session.set_current_pid t.session (-1);
       raise (Process_failure (pid, e)));
    Session.set_current_pid t.session (-1);
    ev
  | Not_started _ -> assert false
  | Finished -> invalid_arg "Scheduler.step: process has finished"
  | Erased -> invalid_arg "Scheduler.step: process was erased"

let erase t pid =
  let entry = get t pid in
  (match entry.state with
   | Pending { k; _ } ->
     (* Unwind the continuation so resources are not leaked; our process
        bodies do not intercept [Erased]. *)
     (try Effect.Deep.discontinue k Session.Erased with _ -> ())
   | Not_started _ | Finished | Erased -> ());
  entry.state <- Erased

let steps_of t pid = (get t pid).steps

let name_of t pid = (get t pid).pname

let is_finished t pid =
  match (get t pid).state with
  | Finished -> true
  | Not_started _ | Pending _ | Erased -> false

let n_processes t = t.n

let event_count t = Trace.event_count t.trace

(* A copy of the execution so far; the run remains in progress. *)
let current_trace t = Trace.finish t.trace

let finish t =
  for pid = 0 to t.n - 1 do
    let entry = t.entries.(pid) in
    match entry.state with
    | Pending { k; _ } ->
      (try Effect.Deep.discontinue k Session.Erased with _ -> ());
      entry.state <- Erased
    | Not_started _ | Finished | Erased -> ()
  done;
  Session.set_in_run t.session false;
  Session.set_trace t.session None;
  Session.clear_pending_invokes t.session;
  Trace.finish t.trace

(* {2 Canned policies} *)

let run_round_robin ?(max_events = max_int) t =
  let continue = ref true in
  while !continue && Trace.event_count t.trace < max_events do
    continue := false;
    for pid = 0 to t.n - 1 do
      if Trace.event_count t.trace < max_events && is_active t pid then begin
        ignore (step t pid);
        continue := true
      end
    done
  done

let run_solo ?(max_events = max_int) t pid =
  let budget = ref max_events in
  while is_active t pid && !budget > 0 do
    ignore (step t pid);
    decr budget
  done

let run_random ?(max_events = max_int) ~seed t =
  let rng = Random.State.make [| seed |] in
  let budget = ref max_events in
  let rec loop () =
    if !budget > 0 then
      match active_pids t with
      | [] -> ()
      | pids ->
        let pid = List.nth pids (Random.State.int rng (List.length pids)) in
        ignore (step t pid);
        decr budget;
        loop ()
  in
  loop ()

let run_schedule t schedule =
  List.iter (fun pid -> ignore (step t pid)) schedule

let run_policy ?(max_events = max_int) t policy =
  let budget = ref max_events in
  let rec loop () =
    if !budget > 0 then
      match policy t with
      | None -> ()
      | Some pid ->
        ignore (step t pid);
        decr budget;
        loop ()
  in
  loop ()
