(** The execution engine.

    Processes are plain OCaml functions whose shared-memory operations are
    intercepted through effects.  The scheduler exposes, for every active
    process, a full description of its enabled event — object and primitive
    with operands — before the event is applied, giving scheduling policies
    (round-robin, random, and the paper's adversaries) exactly the power of
    the adversary in the asynchronous shared-memory model. *)

type t

exception Process_failure of int * exn
(** An exception escaped a process body; carries the pid. *)

val create : Session.t -> t
(** Start a run.  At most one run may be in progress per session; shared
    data structures must be allocated before the run starts (they form the
    initial configuration). *)

val session : t -> Session.t

val spawn : t -> ?name:string -> (unit -> unit) -> int
(** Register a process; returns its pid (dense, in spawn order).  The body
    is not executed until the process is first inspected or stepped. *)

(** {1 Inspection} *)

val enabled : t -> int -> (int * Event.prim) option
(** The process's enabled event, as (object id, primitive); [None] if it has
    finished (or was erased).  Runs the body up to its first event if
    needed — this is local computation, not a step. *)

val enabled_would_change : t -> int -> bool
(** Would the enabled event change its object's value if applied now? *)

val is_active : t -> int -> bool
val is_finished : t -> int -> bool
val active_pids : t -> int list
val steps_of : t -> int -> int
val name_of : t -> int -> string
val n_processes : t -> int
val event_count : t -> int

val current_trace : t -> Trace.t
(** Copy of the execution so far; the run remains in progress. *)

(** {1 Advancing} *)

val step : t -> int -> Event.t
(** Apply the enabled event of the given process (one step), returning it.
    Raises [Invalid_argument] if the process is not active. *)

val erase : t -> int -> unit
(** Discard a process: its continuation is unwound and it takes no further
    steps.  (Erasing retroactively — removing events already issued — is
    done by replaying a filtered schedule; see {!Replay}.) *)

val finish : t -> Trace.t
(** End the run: unwind all still-active processes and return the
    execution. *)

(** {1 Canned policies} *)

val run_round_robin : ?max_events:int -> t -> unit
val run_solo : ?max_events:int -> t -> int -> unit
(** Run one process alone until it completes (obstruction-freedom). *)

val run_random : ?max_events:int -> seed:int -> t -> unit
val run_schedule : t -> int list -> unit
(** Apply steps in exactly the given pid order. *)

val run_policy : ?max_events:int -> t -> (t -> int option) -> unit
(** Repeatedly step the pid chosen by the policy until it returns [None]. *)
