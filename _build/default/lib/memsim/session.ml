(* A session ties together one store of base objects with the run context of
   the scheduler currently executing on it (if any).

   Shared-memory operations issued while a scheduler run is in progress are
   routed through effects so the scheduler controls their interleaving.
   Operations issued outside any run ("direct mode" — e.g. sequential tests,
   or inspecting final values) are applied immediately; they are still
   counted in [direct_steps] so that sequential step-complexity measurements
   need no scheduler. *)

type t = {
  store : Store.t;
  mutable in_run : bool;            (* a scheduler run is in progress *)
  mutable current_pid : int;        (* pid whose code is executing, -1 if none *)
  mutable trace : Trace.builder option;
  mutable direct_steps : int;       (* events applied in direct mode *)
  pending_invokes : (int, (string * Simval.t) list) Hashtbl.t;
      (* Invoke annotations buffered until the process's next *event*.  A
         process body starts running when the scheduler first inspects it,
         which may be long before its first step is scheduled; recording
         the invocation at the first step keeps operation intervals tight.
         This is sound: the adversary may delay a process arbitrarily
         between its invocation and its first step, so the tightened
         history corresponds to a legal execution. *)
}

type _ Effect.t +=
  | Mem_op : int * Event.prim -> Event.response Effect.t

exception Erased
(* Raised into a process continuation to discard it (live erasure). *)

let create () =
  { store = Store.create ();
    in_run = false;
    current_pid = -1;
    trace = None;
    direct_steps = 0;
    pending_invokes = Hashtbl.create 16 }

let store t = t.store

let alloc t ~name init = Store.alloc t.store ~name init

let current_pid t = t.current_pid

let reset_steps t = t.direct_steps <- 0
let direct_steps t = t.direct_steps

(* Entry point used by Smem.Sim_memory: one shared-memory event. *)
let mem_op t obj prim =
  if t.in_run then Effect.perform (Mem_op (obj, prim))
  else begin
    t.direct_steps <- t.direct_steps + 1;
    Store.apply t.store obj prim
  end

(* Operation-boundary annotations; recorded only while a run is in
   progress (histories are only needed for concurrent executions). *)
let flush_invokes t pid =
  match t.trace with
  | Some b -> (
    match Hashtbl.find_opt t.pending_invokes pid with
    | Some pending ->
      List.iter
        (fun (op, arg) -> Trace.add_invoke b ~pid ~op ~arg)
        (List.rev pending);
      Hashtbl.remove t.pending_invokes pid
    | None -> ())
  | None -> ()

let annotate_invoke t ~op ~arg =
  match t.trace with
  | Some _ when t.current_pid >= 0 ->
    let pid = t.current_pid in
    let pending =
      Option.value ~default:[] (Hashtbl.find_opt t.pending_invokes pid)
    in
    Hashtbl.replace t.pending_invokes pid ((op, arg) :: pending)
  | Some _ | None -> ()

let annotate_return t ~op ~result =
  match t.trace with
  | Some b when t.current_pid >= 0 ->
    (* an operation that issued no events still needs its invoke first *)
    flush_invokes t t.current_pid;
    Trace.add_return b ~pid:t.current_pid ~op ~result
  | Some _ | None -> ()

let clear_pending_invokes t = Hashtbl.reset t.pending_invokes

let set_in_run t b = t.in_run <- b
let set_current_pid t pid = t.current_pid <- pid
let set_trace t b = t.trace <- b
let trace_builder t = t.trace
