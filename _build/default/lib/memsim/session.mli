(** A session: one store of base objects plus the run context of the
    scheduler currently executing on it, if any.

    Operations performed while a scheduler run is active become effects that
    the scheduler intercepts (one scheduling point per shared-memory event).
    Operations performed outside a run are applied immediately ("direct
    mode") and counted in {!direct_steps} — this is how sequential
    step-complexity measurements are taken. *)

type t

type _ Effect.t +=
  | Mem_op : int * Event.prim -> Event.response Effect.t
        (** Performed by {!Smem.Sim_memory} operations during a run. *)

exception Erased
(** Raised into a process continuation to discard it. *)

val create : unit -> t
val store : t -> Store.t

val alloc : t -> name:string -> Simval.t -> int
(** Allocate a base object (initial configuration; not an event). *)

val current_pid : t -> int
(** Pid of the process whose code is currently executing, or [-1]. *)

val reset_steps : t -> unit
val direct_steps : t -> int
(** Number of events applied in direct mode since the last reset. *)

val mem_op : t -> int -> Event.prim -> Event.response
(** Apply one shared-memory event (routed through the scheduler when a run
    is in progress). *)

val annotate_invoke : t -> op:string -> arg:Simval.t -> unit
(** Record an operation invocation.  Buffered until the process's next
    event (or its return), so operation intervals start at the first step
    rather than when the body first runs — sound, because the adversary
    may delay a process between its invocation and its first step. *)

val annotate_return : t -> op:string -> result:Simval.t -> unit

(**/**)

(* Fields below are manipulated by {!Scheduler}; not for general use. *)

val clear_pending_invokes : t -> unit
(** Drop buffered invocations (called at run boundaries: an invocation
    whose process never took a step leaves no record). *)

val flush_invokes : t -> int -> unit
(** Move a process's buffered invocation annotations into the trace (the
    scheduler calls this just before recording one of its events). *)

val set_in_run : t -> bool -> unit
val set_current_pid : t -> int -> unit
val set_trace : t -> Trace.builder option -> unit
val trace_builder : t -> Trace.builder option
