(* Values storable in a simulated base object.

   The paper's model allows base objects to hold arbitrary values (e.g. the
   root of a Jayanti vector-tree holds a whole snapshot vector), so we use a
   small structured type rather than bare integers.  [Bot] plays the role of
   the initial value "-infinity" of max-register tree nodes. *)

type t =
  | Bot
  | Int of int
  | Vec of t array

let rec equal a b =
  match a, b with
  | Bot, Bot -> true
  | Int x, Int y -> x = y
  | Vec xs, Vec ys ->
    Array.length xs = Array.length ys
    && (let rec all i = i >= Array.length xs || (equal xs.(i) ys.(i) && all (i + 1)) in
        all 0)
  | (Bot | Int _ | Vec _), _ -> false

let rec compare_val a b =
  match a, b with
  | Bot, Bot -> 0
  | Bot, _ -> -1
  | _, Bot -> 1
  | Int x, Int y -> Int.compare x y
  | Int _, Vec _ -> -1
  | Vec _, Int _ -> 1
  | Vec xs, Vec ys ->
    let nx = Array.length xs and ny = Array.length ys in
    let rec go i =
      if i >= nx && i >= ny then 0
      else if i >= nx then -1
      else if i >= ny then 1
      else
        let c = compare_val xs.(i) ys.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

(* Maximum under the [Bot < Int _] order; used by max-register trees. *)
let max_val a b = if compare_val a b >= 0 then a else b

let int_exn = function
  | Int x -> x
  | Bot -> invalid_arg "Simval.int_exn: Bot"
  | Vec _ -> invalid_arg "Simval.int_exn: Vec"

(* [Bot] reads as "no value written yet"; mapping it to [d] keeps call sites
   free of option plumbing. *)
let int_or ~default:d = function Int x -> x | Bot -> d | Vec _ -> invalid_arg "Simval.int_or: Vec"

let vec_exn = function
  | Vec v -> v
  | Bot -> invalid_arg "Simval.vec_exn: Bot"
  | Int _ -> invalid_arg "Simval.vec_exn: Int"

let of_int_array a = Vec (Array.map (fun x -> Int x) a)

let to_int_array v = Array.map int_exn (vec_exn v)

let rec pp ppf = function
  | Bot -> Fmt.string ppf "⊥"
  | Int x -> Fmt.int ppf x
  | Vec xs -> Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any ";") pp) xs

let to_string v = Fmt.str "%a" pp v
