(** Values held by simulated base objects.

    The asynchronous shared-memory model of the paper places no bound on the
    size of a base-object value (a single register may hold a whole vector,
    as in Jayanti's f-arrays), so values are a small structured type.  [Bot]
    is the distinguished initial value, read as "-infinity" by max-register
    algorithms. *)

type t =
  | Bot            (** initial value, below every other value *)
  | Int of int
  | Vec of t array

val equal : t -> t -> bool
(** Structural equality; this is the equality used by simulated [CAS]. *)

val compare_val : t -> t -> int
(** Total order with [Bot] smallest; [Int]s ordered as integers. *)

val max_val : t -> t -> t
(** Maximum under {!compare_val}. *)

val int_exn : t -> int
(** Project an [Int]; raises [Invalid_argument] otherwise. *)

val int_or : default:int -> t -> int
(** Project an [Int], mapping [Bot] to [default]. *)

val vec_exn : t -> t array
(** Project a [Vec]; raises [Invalid_argument] otherwise. *)

val of_int_array : int array -> t
val to_int_array : t -> int array

val pp : t Fmt.t
val to_string : t -> string
