(* The set B of base objects of one implementation instance.

   Objects are allocated once, when the implementation builds its data
   structure (the paper's "initial configuration"); [reset] restores every
   object to its initial value so a store can be re-executed from scratch,
   which is how erase-and-replay (Lemma 2) is implemented. *)

type t = {
  mutable values : Simval.t array;
  mutable initial : Simval.t array;
  mutable names : string array;
  mutable len : int;
}

let create () =
  { values = Array.make 16 Simval.Bot;
    initial = Array.make 16 Simval.Bot;
    names = Array.make 16 "";
    len = 0 }

let grow t =
  let cap = Array.length t.values in
  let cap' = 2 * cap in
  let values = Array.make cap' Simval.Bot in
  let initial = Array.make cap' Simval.Bot in
  let names = Array.make cap' "" in
  Array.blit t.values 0 values 0 t.len;
  Array.blit t.initial 0 initial 0 t.len;
  Array.blit t.names 0 names 0 t.len;
  t.values <- values;
  t.initial <- initial;
  t.names <- names

let alloc t ~name init =
  if t.len = Array.length t.values then grow t;
  let id = t.len in
  t.values.(id) <- init;
  t.initial.(id) <- init;
  t.names.(id) <- name;
  t.len <- t.len + 1;
  id

let size t = t.len

let check t id =
  if id < 0 || id >= t.len then invalid_arg "Store: bad object id"

let get t id = check t id; t.values.(id)
let set t id v = check t id; t.values.(id) <- v
let name t id = check t id; t.names.(id)

let reset t = Array.blit t.initial 0 t.values 0 t.len

(* Atomically apply [prim] to object [id]; returns the response. *)
let apply t id (prim : Event.prim) : Event.response =
  check t id;
  match prim with
  | Read -> RVal t.values.(id)
  | Write v ->
    t.values.(id) <- v;
    RAck
  | Cas { expected; desired } ->
    if Simval.equal t.values.(id) expected then begin
      t.values.(id) <- desired;
      RBool true
    end else RBool false

(* Would applying [prim] right now change the object's value?  Used by the
   sigma-scheduler (Lemma 1) to classify enabled events as trivial or not. *)
let would_change t id (prim : Event.prim) =
  check t id;
  match prim with
  | Read -> false
  | Write v -> not (Simval.equal t.values.(id) v)
  | Cas { expected; desired } ->
    Simval.equal t.values.(id) expected
    && not (Simval.equal t.values.(id) desired)
