(** The set of base objects of one simulated implementation instance.

    A store remembers the initial value of every object, so that a complete
    execution can be re-run from the initial configuration ({!reset}) — the
    mechanism behind erase-and-replay (Lemma 2 of the paper). *)

type t

val create : unit -> t

val alloc : t -> name:string -> Simval.t -> int
(** Allocate a fresh base object with the given initial value, returning its
    id.  Allocation models the initial configuration and is not an event. *)

val size : t -> int
val get : t -> int -> Simval.t
val set : t -> int -> Simval.t -> unit
val name : t -> int -> string

val reset : t -> unit
(** Restore every object to its initial value. *)

val apply : t -> int -> Event.prim -> Event.response
(** Atomically apply a primitive, returning its response. *)

val would_change : t -> int -> Event.prim -> bool
(** Would applying this primitive now change the object's value?  (I.e. is
    the enabled event non-trivial in the sense of Definition 1?) *)
