(* Executions.

   A trace is the sequence of shared-memory events of one run, interleaved
   with operation-boundary annotations (invocations and responses of
   high-level operations).  Annotations are local computation: they are not
   events and do not count as steps; they exist so that linearizability
   checking can recover the history of high-level operations. *)

type entry =
  | Mem of Event.t
  | Invoke of { pid : int; op : string; arg : Simval.t }
  | Return of { pid : int; op : string; result : Simval.t }

type t = { entries : entry array }

(* Mutable builder used by a running scheduler. *)
type builder = {
  mutable buf : entry array;
  mutable len : int;
  mutable events : int;  (* number of Mem entries, = next event seq *)
}

let builder () = { buf = Array.make 64 (Invoke { pid = -1; op = ""; arg = Bot }); len = 0; events = 0 }

let push b entry =
  if b.len = Array.length b.buf then begin
    let buf = Array.make (2 * b.len) entry in
    Array.blit b.buf 0 buf 0 b.len;
    b.buf <- buf
  end;
  b.buf.(b.len) <- entry;
  b.len <- b.len + 1

let add_mem b ~pid ~obj ~obj_name ~prim ~response ~before ~after =
  let ev =
    { Event.seq = b.events; pid; obj; obj_name; prim; response; before; after }
  in
  push b (Mem ev);
  b.events <- b.events + 1;
  ev

let add_invoke b ~pid ~op ~arg = push b (Invoke { pid; op; arg })
let add_return b ~pid ~op ~result = push b (Return { pid; op; result })

let event_count b = b.events

let finish b = { entries = Array.sub b.buf 0 b.len }

let entries t = t.entries

let events t =
  Array.of_list
    (List.filter_map
       (function Mem e -> Some e | Invoke _ | Return _ -> None)
       (Array.to_list t.entries))

let events_of t pid =
  Array.of_list
    (List.filter_map
       (function Mem e when e.Event.pid = pid -> Some e | Mem _ | Invoke _ | Return _ -> None)
       (Array.to_list t.entries))

let step_count t pid = Array.length (events_of t pid)

(* The schedule of an execution: the sequence of pids of its events.  A
   deterministic process re-issues the same events when the same schedule is
   replayed, which is how executions are reconstructed after erasure. *)
let schedule t =
  Array.to_list (Array.map (fun (e : Event.t) -> e.pid) (events t))

let pids t =
  let tbl = Hashtbl.create 16 in
  Array.iter (fun (e : Event.t) -> Hashtbl.replace tbl e.pid ()) (events t);
  List.sort Int.compare (Hashtbl.fold (fun pid () acc -> pid :: acc) tbl [])

let pp_entry ppf = function
  | Mem e -> Event.pp ppf e
  | Invoke { pid; op; arg } -> Fmt.pf ppf "     p%d invokes %s(%a)" pid op Simval.pp arg
  | Return { pid; op; result } -> Fmt.pf ppf "     p%d returns %s = %a" pid op Simval.pp result

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(array ~sep:cut pp_entry) t.entries
