(** Executions: sequences of shared-memory events plus operation-boundary
    annotations (which are local computation, not steps). *)

type entry =
  | Mem of Event.t
  | Invoke of { pid : int; op : string; arg : Simval.t }
  | Return of { pid : int; op : string; result : Simval.t }

type t

(** {1 Building} *)

type builder

val builder : unit -> builder

val add_mem :
  builder ->
  pid:int ->
  obj:int ->
  obj_name:string ->
  prim:Event.prim ->
  response:Event.response ->
  before:Simval.t ->
  after:Simval.t ->
  Event.t

val add_invoke : builder -> pid:int -> op:string -> arg:Simval.t -> unit
val add_return : builder -> pid:int -> op:string -> result:Simval.t -> unit

val event_count : builder -> int
val finish : builder -> t

(** {1 Queries} *)

val entries : t -> entry array

val events : t -> Event.t array
(** The shared-memory events only, in execution order. *)

val events_of : t -> int -> Event.t array
(** Events issued by one process. *)

val step_count : t -> int -> int
(** Number of events issued by one process (its step count). *)

val schedule : t -> int list
(** The pid of each event, in order.  Replaying a schedule against fresh
    deterministic processes reconstructs the execution. *)

val pids : t -> int list
(** Processes that issued at least one event, ascending. *)

val pp_entry : entry Fmt.t
val pp : t Fmt.t
