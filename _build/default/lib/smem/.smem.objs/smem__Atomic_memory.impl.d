lib/smem/atomic_memory.ml: Atomic Memsim
