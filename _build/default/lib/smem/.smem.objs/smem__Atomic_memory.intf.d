lib/smem/atomic_memory.mli: Memory_intf
