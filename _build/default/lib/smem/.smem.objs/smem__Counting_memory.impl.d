lib/smem/counting_memory.ml: Memory_intf
