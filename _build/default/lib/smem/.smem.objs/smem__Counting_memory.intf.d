lib/smem/counting_memory.mli: Memory_intf
