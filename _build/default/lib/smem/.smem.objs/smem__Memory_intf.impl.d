lib/smem/memory_intf.ml: Memsim
