lib/smem/sim_memory.ml: Event Memory_intf Memsim Printf Session
