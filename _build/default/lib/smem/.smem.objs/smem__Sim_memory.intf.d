lib/smem/sim_memory.mli: Memory_intf Memsim
