(* Native MEMORY over OCaml 5 atomics, for Domain-parallel execution.

   CAS uses physical equality ([Atomic.compare_and_set]).  All algorithms in
   this repository only ever CAS with an [expected] value obtained from a
   prior read of the same object, for which physical CAS coincides with the
   model's value CAS (values are immutable and, being monotone, never
   recur, so ABA on structurally-equal-but-distinct boxes cannot arise). *)

type t = Memsim.Simval.t Atomic.t

let make ?name init =
  ignore name;
  Atomic.make init

let read = Atomic.get

let write = Atomic.set

let cas obj ~expected ~desired = Atomic.compare_and_set obj expected desired
