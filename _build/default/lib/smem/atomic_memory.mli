(** Native base objects over OCaml 5 [Atomic], for Domain-parallel runs.

    CAS compares physically; this matches the model for algorithms that only
    CAS values previously read from the same object (true of every algorithm
    in this repository). *)

include Memory_intf.MEMORY
