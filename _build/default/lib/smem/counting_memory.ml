(* Step-counting wrapper around any MEMORY.  Each functor instantiation (or
   [wrap] call) carries its own counters, so concurrent measurements do not
   interfere. *)

type counts = { mutable reads : int; mutable writes : int; mutable cas : int }

let total c = c.reads + c.writes + c.cas

let wrap (module M : Memory_intf.MEMORY) :
    (module Memory_intf.MEMORY) * counts =
  let counts = { reads = 0; writes = 0; cas = 0 } in
  let m : (module Memory_intf.MEMORY) =
    (module struct
      type t = M.t

      let make = M.make

      let read obj =
        counts.reads <- counts.reads + 1;
        M.read obj

      let write obj v =
        counts.writes <- counts.writes + 1;
        M.write obj v

      let cas obj ~expected ~desired =
        counts.cas <- counts.cas + 1;
        M.cas obj ~expected ~desired
    end)
  in
  (m, counts)

let reset c =
  c.reads <- 0;
  c.writes <- 0;
  c.cas <- 0
