(** Step-counting wrapper around any MEMORY. *)

type counts = { mutable reads : int; mutable writes : int; mutable cas : int }

val total : counts -> int

val wrap :
  (module Memory_intf.MEMORY) -> (module Memory_intf.MEMORY) * counts
(** A memory that forwards to the argument while counting each primitive.
    The counters are private to this wrapper instance. *)

val reset : counts -> unit
