(* The base-object interface all algorithms are written against.

   The paper's model: base objects support read, write and CAS, applied
   atomically.  Algorithms are functors over MEMORY so the same code runs on
   the deterministic simulator (step counting, adversarial scheduling,
   linearizability testing) and on OCaml 5 atomics (Domain-parallel
   benchmarks). *)

module type MEMORY = sig
  type t
  (** A base object holding a {!Memsim.Simval.t}. *)

  val make : ?name:string -> Memsim.Simval.t -> t
  (** Allocate a base object with an initial value.  Allocation happens when
      an implementation builds its data structure (the initial
      configuration); it is not a step. *)

  val read : t -> Memsim.Simval.t

  val write : t -> Memsim.Simval.t -> unit

  val cas : t -> expected:Memsim.Simval.t -> desired:Memsim.Simval.t -> bool
  (** Compare-and-swap: atomically, if the object's value equals [expected],
      set it to [desired] and return [true]; otherwise return [false]. *)
end
