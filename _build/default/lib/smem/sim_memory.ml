(* Simulator-backed MEMORY: every operation is one shared-memory event of
   the session, scheduled by whatever scheduler is running (or applied
   directly outside a run). *)

open Memsim

let bind (session : Session.t) : (module Memory_intf.MEMORY) =
  (module struct
    type t = int

    let counter = ref 0

    let make ?name init =
      let name =
        match name with
        | Some n -> n
        | None ->
          incr counter;
          Printf.sprintf "o%d" !counter
      in
      Session.alloc session ~name init

    let read obj =
      match Session.mem_op session obj Event.Read with
      | Event.RVal v -> v
      | Event.RAck | Event.RBool _ -> assert false

    let write obj v =
      match Session.mem_op session obj (Event.Write v) with
      | Event.RAck -> ()
      | Event.RVal _ | Event.RBool _ -> assert false

    let cas obj ~expected ~desired =
      match Session.mem_op session obj (Event.Cas { expected; desired }) with
      | Event.RBool b -> b
      | Event.RVal _ | Event.RAck -> assert false
  end)
