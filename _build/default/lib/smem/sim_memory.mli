(** Simulator-backed base objects. *)

val bind : Memsim.Session.t -> (module Memory_intf.MEMORY)
(** A MEMORY whose objects live in the given session's store.  Operations
    performed while a scheduler run is in progress become schedulable
    events; operations outside a run are applied directly (and counted by
    {!Memsim.Session.direct_steps}). *)
