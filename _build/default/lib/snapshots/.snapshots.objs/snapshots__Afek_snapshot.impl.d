lib/snapshots/afek_snapshot.ml: Array Memsim Printf Simval Smem
