lib/snapshots/afek_snapshot.mli: Smem
