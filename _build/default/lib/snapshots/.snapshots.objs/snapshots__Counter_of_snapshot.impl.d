lib/snapshots/counter_of_snapshot.ml: Array Snapshot
