lib/snapshots/counter_of_snapshot.mli: Snapshot
