lib/snapshots/double_collect.ml: Array Memsim Printf Simval Smem
