lib/snapshots/double_collect.mli: Smem
