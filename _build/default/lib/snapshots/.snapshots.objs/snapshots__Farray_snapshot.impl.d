lib/snapshots/farray_snapshot.ml: Array Farray Memsim Simval Smem
