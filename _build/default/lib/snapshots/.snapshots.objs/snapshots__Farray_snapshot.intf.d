lib/snapshots/farray_snapshot.mli: Smem
