lib/snapshots/snapshot.ml:
