lib/snapshots/snapshot.mli:
