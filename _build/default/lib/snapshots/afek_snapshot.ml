(* The classic wait-free single-writer snapshot of Afek, Attiya, Dolev,
   Gafni, Merritt and Shavit (1993), from reads and writes.

   Each segment register holds (sequence number, value, embedded scan); an
   update embeds a fresh scan alongside its value.  A scanner repeatedly
   collects: two identical consecutive collects give a direct scan; a
   process observed moving twice performed a whole update inside the scan's
   interval, so its embedded scan can be borrowed.  At most N+1 collects,
   hence O(N^2) steps per operation (updates include a scan). *)

open Memsim

module Make (M : Smem.Memory_intf.MEMORY) = struct
  type seg = { seq : int; value : int; embedded : int array }

  type t = { segs : M.t array; n : int }

  let decode n v =
    match v with
    | Simval.Bot -> { seq = 0; value = 0; embedded = Array.make n 0 }
    | Simval.Vec [| Simval.Int seq; Simval.Int value; emb |] ->
      { seq; value; embedded = Simval.to_int_array emb }
    | Simval.Int _ | Simval.Vec _ -> invalid_arg "Afek_snapshot: bad segment"

  let encode s =
    Simval.Vec
      [| Simval.Int s.seq; Simval.Int s.value; Simval.of_int_array s.embedded |]

  let create ~n =
    if n <= 0 then invalid_arg "Afek_snapshot.create: n must be > 0";
    { segs = Array.init n (fun i -> M.make ~name:(Printf.sprintf "seg%d" i) Simval.Bot);
      n }

  let collect t = Array.map (fun r -> decode t.n (M.read r)) t.segs

  let same_collect a b =
    let n = Array.length a in
    let rec go i = i >= n || (a.(i).seq = b.(i).seq && go (i + 1)) in
    go 0

  let scan t =
    let moved = Array.make t.n false in
    let rec loop previous =
      let current = collect t in
      if same_collect previous current then Array.map (fun s -> s.value) current
      else begin
        (* Find a process that moved; if it moved before during this scan,
           its latest update ran entirely inside our interval: borrow. *)
        let borrowed = ref None in
        for j = 0 to t.n - 1 do
          if !borrowed = None && previous.(j).seq <> current.(j).seq then
            if moved.(j) then borrowed := Some current.(j).embedded
            else moved.(j) <- true
        done;
        match !borrowed with
        | Some emb -> Array.copy emb
        | None -> loop current
      end
    in
    loop (collect t)

  let update t ~pid v =
    if pid < 0 || pid >= t.n then invalid_arg "Afek_snapshot.update: bad pid";
    let embedded = scan t in
    let { seq; _ } = decode t.n (M.read t.segs.(pid)) in
    M.write t.segs.(pid) (encode { seq = seq + 1; value = v; embedded })
end
