(** The classic wait-free single-writer snapshot of Afek, Attiya, Dolev,
    Gafni, Merritt and Shavit (JACM 1993), from reads and writes: updates
    embed a full scan; a scanner that sees some process move twice borrows
    that process's embedded scan.  O(N²) steps per operation — the
    wait-free baseline the restricted-use constructions improve on. *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  type t

  val create : n:int -> t
  val update : t -> pid:int -> int -> unit
  val scan : t -> int array
end
