(* Corollary 1's reduction: a counter from a single-writer snapshot.
   CounterIncrement(i) = one Update of segment i with the process's own
   increment count; CounterRead = one Scan, summed.  Theorem 1's counter
   tradeoff therefore transfers to snapshots. *)

module Make (S : Snapshot.S) = struct
  type t = { snap : S.t; local : int array; n : int }

  let create ~n snap = { snap; local = Array.make n 0; n }

  let increment t ~pid =
    if pid < 0 || pid >= t.n then
      invalid_arg "Counter_of_snapshot.increment: bad pid";
    (* local.(pid) is process-local: the count of the single writer pid *)
    t.local.(pid) <- t.local.(pid) + 1;
    S.update t.snap ~pid t.local.(pid)

  let read t = Array.fold_left ( + ) 0 (S.scan t.snap)
end
