(** Corollary 1's reduction: a counter from any single-writer snapshot
    (increment = one Update of the caller's segment with its private
    count; read = one Scan, summed).  Transfers Theorem 1's counter
    tradeoff to snapshots. *)

module Make (S : Snapshot.S) : sig
  type t

  val create : n:int -> S.t -> t
  val increment : t -> pid:int -> unit
  val read : t -> int
end
