(* The textbook double-collect snapshot: each segment is a register holding
   (sequence number, value); a scan repeatedly collects all segments and
   returns when two consecutive collects are identical.

   Obstruction-free but not wait-free: a scan concurrent with an unbounded
   stream of updates may never terminate (bounded here by [max_collects] to
   keep adversarial experiments finite).  Update is O(1); an uncontended
   scan is O(N). *)

open Memsim

module Make (M : Smem.Memory_intf.MEMORY) = struct
  type t = { segs : M.t array; n : int; max_collects : int }

  exception Starved

  let seg_value v =
    match v with
    | Simval.Bot -> (0, 0)
    | Simval.Vec [| Simval.Int seq; Simval.Int x |] -> (seq, x)
    | Simval.Int _ | Simval.Vec _ -> invalid_arg "Double_collect: bad segment"

  let create ?(max_collects = 1_000_000) ~n () =
    if n <= 0 then invalid_arg "Double_collect.create: n must be > 0";
    { segs = Array.init n (fun i -> M.make ~name:(Printf.sprintf "seg%d" i) Simval.Bot);
      n;
      max_collects }

  let update t ~pid v =
    if pid < 0 || pid >= t.n then invalid_arg "Double_collect.update: bad pid";
    let seq, _ = seg_value (M.read t.segs.(pid)) in
    M.write t.segs.(pid) (Simval.Vec [| Simval.Int (seq + 1); Simval.Int v |])

  let collect t = Array.map (fun seg -> seg_value (M.read seg)) t.segs

  let scan t =
    let rec loop previous tries =
      if tries > t.max_collects then raise Starved;
      let current = collect t in
      if current = previous then Array.map snd current
      else loop current (tries + 1)
    in
    let first = collect t in
    loop first 1
end
