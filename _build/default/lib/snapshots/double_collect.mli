(** The textbook double-collect snapshot: obstruction-free only — a scan
    terminates when two consecutive collects agree, which concurrent
    updates can prevent forever.  Update O(1); uncontended scan O(N).

    In the paper's restricted-use regime (at most B updates in total) the
    retries are bounded by B, so scans terminate within the budget — the
    same bounded-retry reasoning as {!Maxarray.Max_array.From_registers};
    the liveness experiments (E9) drive it outside that regime. *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  type t

  exception Starved
  (** Raised by {!scan} after [max_collects] collects without agreement
      (keeps adversarial experiments finite). *)

  val create : ?max_collects:int -> n:int -> unit -> t
  val update : t -> pid:int -> int -> unit
  val scan : t -> int array
end
