(* A Jayanti-style snapshot from an f-array whose aggregation is tuple
   concatenation: internal nodes hold the (pid, seq, value) triples of their
   subtree's segments, so the root holds the whole array and Scan is a
   single read — the optimal point of the paper's Theorem 1 tradeoff
   (Scan O(1), Update O(log N), using CAS).

   Sequence numbers make every leaf value unique, so node values never
   recur and the double-refresh CAS propagation is ABA-free.  This stands
   in for the restricted-use snapshot of Aspnes et al. [3] (see DESIGN.md:
   same polylog envelope, simpler construction, CAS allowed by Theorem 1). *)

open Memsim

module Make (M : Smem.Memory_intf.MEMORY) = struct
  module F = Farray.Make (M)

  type t = { farray : F.t; seqs : int array; n : int }

  let items = function
    | Simval.Bot -> [||]
    | Simval.Vec triples -> triples
    | Simval.Int _ -> invalid_arg "Farray_snapshot: bad node value"

  let concat a b = Simval.Vec (Array.append (items a) (items b))

  let create ~n =
    if n <= 0 then invalid_arg "Farray_snapshot.create: n must be > 0";
    { farray = F.create ~n ~combine:concat (); seqs = Array.make n 0; n }

  let update t ~pid v =
    if pid < 0 || pid >= t.n then invalid_arg "Farray_snapshot.update: bad pid";
    (* seqs.(pid) is process-local state of the single writer of leaf pid *)
    t.seqs.(pid) <- t.seqs.(pid) + 1;
    let triple =
      Simval.Vec [| Simval.Int pid; Simval.Int t.seqs.(pid); Simval.Int v |]
    in
    F.update t.farray ~leaf:pid (Simval.Vec [| triple |])

  let scan t =
    let out = Array.make t.n 0 in
    Array.iter
      (fun triple ->
        match triple with
        | Simval.Vec [| Simval.Int pid; Simval.Int _; Simval.Int v |] ->
          out.(pid) <- v
        | Simval.Bot | Simval.Int _ | Simval.Vec _ ->
          invalid_arg "Farray_snapshot: bad triple")
      (items (F.read t.farray));
    out
end
