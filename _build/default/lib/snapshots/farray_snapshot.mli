(** A snapshot from an f-array whose aggregate is tuple concatenation: the
    root holds the whole array, so Scan is a single read and Update is
    O(log N), from read/write/CAS — the optimal point of Theorem 1's
    tradeoff, standing in for the restricted-use snapshot of Aspnes et
    al. (PODC 2012); see DESIGN.md for the substitution argument.
    Sequence stamps keep node values unique, making the CAS propagation
    ABA-free. *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  type t

  val create : n:int -> t
  val update : t -> pid:int -> int -> unit

  val scan : t -> int array
  (** One shared-memory event. *)
end
