(* Common interface of single-writer atomic snapshot implementations.

   An N-component snapshot has one segment per process; [update] atomically
   sets the caller's segment, [scan] atomically reads all segments
   (sequential specification: a scan returns, per segment, the value of the
   last preceding update of that segment, or 0 if none). *)

module type S = sig
  type t

  val update : t -> pid:int -> int -> unit
  val scan : t -> int array
end

(* A closed instance, for harnesses that treat implementations uniformly. *)
type instance = {
  update : pid:int -> int -> unit;
  scan : unit -> int array;
}

let instantiate (type a) (module I : S with type t = a) (s : a) =
  { update = (fun ~pid v -> I.update s ~pid v);
    scan = (fun () -> I.scan s) }
