(** Common interface of single-writer atomic snapshot implementations.

    An N-component snapshot has one segment per process; [update]
    atomically sets the caller's segment, [scan] atomically reads all
    segments (each segment reads as the last preceding update, or 0). *)

module type S = sig
  type t

  val update : t -> pid:int -> int -> unit
  val scan : t -> int array
end

(** A closed instance, for harnesses that treat implementations
    uniformly. *)
type instance = {
  update : pid:int -> int -> unit;
  scan : unit -> int array;
}

val instantiate : (module S with type t = 'a) -> 'a -> instance
