lib/treeprim/propagate.ml: Memsim Smem Tree_shape
