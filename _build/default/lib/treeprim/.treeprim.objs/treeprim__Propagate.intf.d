lib/treeprim/propagate.mli: Memsim Smem Tree_shape
