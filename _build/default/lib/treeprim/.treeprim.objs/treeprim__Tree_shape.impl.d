lib/treeprim/tree_shape.ml: Array
