lib/treeprim/tree_shape.mli:
