(** Leaf-to-root propagation with double-refresh CAS (the paper's
    [Propagate], after Jayanti's tree algorithm): at each ancestor the
    combination of the two children is recomputed and CASed in, twice, so a
    failed CAS implies a concurrent refresh installed a value at least as
    fresh.

    Sound with CAS (rather than LL/SC) provided node values never recur —
    guaranteed for monotone aggregates (max, sums) and sequence-stamped
    tuples. *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  val refresh :
    combine:(Memsim.Simval.t -> Memsim.Simval.t -> Memsim.Simval.t) ->
    M.t Tree_shape.node ->
    unit
  (** One refresh of one node: 4 shared-memory events (read node, read both
      children, CAS). *)

  val propagate :
    ?refreshes:int ->
    combine:(Memsim.Simval.t -> Memsim.Simval.t -> Memsim.Simval.t) ->
    M.t Tree_shape.node ->
    unit
  (** Refresh every proper ancestor of the given leaf bottom-up, [refreshes]
      times each (default 2): O(depth) events.  [refreshes:1] is an ablation
      that admits lost updates (experiment A2); correctness requires 2. *)
end
