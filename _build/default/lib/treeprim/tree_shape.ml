(* Binary-tree shapes used by the register-tree algorithms:

   - complete binary trees with a given number of leaves;
   - Bentley-Yao B1 trees, where leaf [v] sits at depth O(log v) — a right
     spine whose g-th spine node hangs a complete subtree over leaves
     [2^g - 1, 2^(g+1) - 1);
   - the composite tree of Algorithm A (Figure 4): a root joining a B1 left
     subtree and a complete right subtree.

   Nodes carry an arbitrary payload (a shared register, for the algorithms
   here) and parent links, which is what leaf-to-root propagation needs. *)

type 'a node = {
  data : 'a;
  mutable parent : 'a node option;
  mutable left : 'a node option;
  mutable right : 'a node option;
}

let make_node data = { data; parent = None; left = None; right = None }

let attach parent ~left ~right =
  parent.left <- left;
  parent.right <- right;
  (match left with Some c -> c.parent <- Some parent | None -> ());
  match right with Some c -> c.parent <- Some parent | None -> ()

let join ~mk l r =
  let root = make_node (mk ()) in
  attach root ~left:(Some l) ~right:(Some r);
  root

(* Complete binary tree over [nleaves] leaves (leaf depth <= ceil(log2 n)).
   Returns the root and the leaves left to right.  [mk_leaf] (default [mk])
   builds leaf payloads, for trees whose leaves differ from internal nodes
   (e.g. the AAC counter: plain registers at leaves, max registers above). *)
let complete ?mk_leaf ~mk ~nleaves () =
  if nleaves <= 0 then invalid_arg "Tree_shape.complete: nleaves must be > 0";
  let mk_leaf = match mk_leaf with Some f -> f | None -> mk in
  let leaves = Array.init nleaves (fun _ -> make_node (mk_leaf ())) in
  let rec build lo hi =
    (* subtree over leaves.(lo .. hi-1) *)
    if hi - lo = 1 then leaves.(lo)
    else
      let mid = lo + ((hi - lo + 1) / 2) in
      let l = build lo mid and r = build mid hi in
      let node = make_node (mk ()) in
      attach node ~left:(Some l) ~right:(Some r);
      node
  in
  (build 0 nleaves, leaves)

(* B1 tree over [nleaves] leaves.  Leaf v belongs to group g = floor(log2
   (v+1)), of size 2^g; group g hangs off the g-th node of a right spine, so
   leaf v is at depth g + O(g) = O(log v). *)
let b1 ~mk ~nleaves =
  if nleaves <= 0 then invalid_arg "Tree_shape.b1: nleaves must be > 0";
  let leaves = ref [] in
  (* groups, root-most first: (group_start, group_size) *)
  let rec groups start =
    if start >= nleaves then []
    else
      let size = min (start + 1) (nleaves - start) in
      (start, size) :: groups (start + size)
  in
  let rec spine = function
    | [] -> None
    | (start, size) :: rest ->
      let sub_root, sub_leaves = complete ~mk ~nleaves:size () in
      ignore start;
      leaves := !leaves @ Array.to_list sub_leaves;
      let tail = spine rest in
      (match tail with
       | None ->
         (* last group: its subtree is the spine node itself *)
         Some sub_root
       | Some next ->
         let node = make_node (mk ()) in
         attach node ~left:(Some sub_root) ~right:(Some next);
         Some node)
  in
  match spine (groups 0) with
  | None -> assert false
  | Some root -> (root, Array.of_list !leaves)

let depth node =
  let rec up n acc = match n.parent with None -> acc | Some p -> up p (acc + 1) in
  up node 0

let rec root node = match node.parent with None -> node | Some p -> root p

(* All nodes of a subtree, preorder. *)
let rec nodes n =
  n
  :: (match n.left with Some l -> nodes l | None -> [])
  @ (match n.right with Some r -> nodes r | None -> [])
