(** Binary-tree shapes for register-tree algorithms: complete trees,
    Bentley–Yao B1 trees (leaf [v] at depth O(log v)), and helpers to
    compose them (Figure 4 of the paper). *)

type 'a node = {
  data : 'a;
  mutable parent : 'a node option;
  mutable left : 'a node option;
  mutable right : 'a node option;
}

val make_node : 'a -> 'a node

val attach : 'a node -> left:'a node option -> right:'a node option -> unit
(** Set the children of a node, fixing up parent links. *)

val join : mk:(unit -> 'a) -> 'a node -> 'a node -> 'a node
(** A fresh root with the two given subtrees as children. *)

val complete :
  ?mk_leaf:(unit -> 'a) -> mk:(unit -> 'a) -> nleaves:int -> unit ->
  'a node * 'a node array
(** Complete binary tree; leaves returned left to right, each at depth
    at most [ceil (log2 nleaves)].  [mk_leaf] (default [mk]) builds the
    leaf payloads. *)

val b1 : mk:(unit -> 'a) -> nleaves:int -> 'a node * 'a node array
(** Bentley–Yao B1 tree; leaf [v] is at depth O(log v). *)

val depth : 'a node -> int
(** Distance from the node to the root. *)

val root : 'a node -> 'a node
val nodes : 'a node -> 'a node list
