test/test_counters.ml: Alcotest Counters Harness Linearize List Memsim Printf QCheck QCheck_alcotest Scheduler Session
