test/test_exhaustive.ml: Alcotest Event Explore Farray Harness Linearize Memsim Printf QCheck QCheck_alcotest Session Simval Smem
