test/test_farray.ml: Alcotest Farray List Memsim Printf QCheck QCheck_alcotest Scheduler Session Simval Smem
