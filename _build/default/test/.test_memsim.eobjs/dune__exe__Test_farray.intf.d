test/test_farray.mli:
