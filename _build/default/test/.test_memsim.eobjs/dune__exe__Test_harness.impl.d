test/test_harness.ml: Alcotest Event Harness List Maxreg Memsim Session Simval Smem String
