test/test_infoflow.ml: Alcotest Array Event Fun Infoflow List Memsim Printf QCheck QCheck_alcotest Random Replay Scheduler Session Simval Trace
