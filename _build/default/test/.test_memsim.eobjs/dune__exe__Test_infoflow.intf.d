test/test_infoflow.mli:
