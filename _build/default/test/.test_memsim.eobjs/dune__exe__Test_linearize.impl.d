test/test_linearize.ml: Alcotest Array Fun Linearize List Memsim QCheck QCheck_alcotest Random Simval Trace
