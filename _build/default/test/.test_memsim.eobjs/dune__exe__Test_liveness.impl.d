test/test_liveness.ml: Alcotest Harness List Memsim Printf Session Smem Snapshots
