test/test_lowerbound.ml: Alcotest Harness List Lowerbound Printf
