test/test_max_array.ml: Alcotest Explore Linearize List Maxarray Maxreg Memsim Printf QCheck QCheck_alcotest Random Scheduler Session Simval Smem
