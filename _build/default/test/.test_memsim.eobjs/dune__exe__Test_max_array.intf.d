test/test_max_array.mli:
