test/test_max_vector.ml: Alcotest Array Atomic Domain Explore Linearize List Maxarray Memsim Printf QCheck QCheck_alcotest Random Scheduler Session Simval Smem
