test/test_max_vector.mli:
