test/test_maxreg.ml: Alcotest Harness Linearize List Maxreg Memsim Printf QCheck QCheck_alcotest Random Scheduler Session
