test/test_memsim.ml: Alcotest Array Event Fmt Fun Gen List Memsim QCheck QCheck_alcotest Replay Scheduler Session Simval Store String Trace
