test/test_native.ml: Alcotest Array Atomic Domain Harness List
