test/test_paper_deviation.ml: Alcotest Array Harness Int Linearize List Memsim Printf QCheck QCheck_alcotest Scheduler Session Trace
