test/test_paper_deviation.mli:
