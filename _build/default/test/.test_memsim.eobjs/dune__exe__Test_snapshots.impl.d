test/test_snapshots.ml: Alcotest Array Harness Linearize List Memsim Printf QCheck QCheck_alcotest Random Scheduler Session Smem Snapshots
