test/test_treeprim.ml: Alcotest Array Fun List Memsim Printf Propagate QCheck QCheck_alcotest Smem Tree_shape Treeprim
