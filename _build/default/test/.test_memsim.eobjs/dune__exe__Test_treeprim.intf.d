test/test_treeprim.mli:
