(* Tests for the counter implementations: sequential counting, step
   complexity envelopes (AAC: read O(log N)/inc O(log^2 N); f-array: read
   O(1)/inc O(log N); naive: read O(N)/inc O(1)), linearizability, and the
   Corollary 1 snapshot reduction. *)

open Memsim

let impls =
  [ Harness.Instances.Aac_counter;
    Harness.Instances.Farray_counter;
    Harness.Instances.Naive_counter;
    Harness.Instances.Snapshot_counter Harness.Instances.Farray_snapshot;
    Harness.Instances.Snapshot_counter Harness.Instances.Afek ]

let make ~n ~bound impl =
  let session = Session.create () in
  (session, Harness.Instances.counter_sim session ~n ~bound impl)

let test_sequential impl () =
  let _, (c : Counters.Counter.instance) = make ~n:4 ~bound:128 impl in
  Alcotest.(check int) "zero" 0 (c.read ());
  for i = 1 to 20 do
    c.increment ~pid:(i mod 4);
    Alcotest.(check int) (Printf.sprintf "count %d" i) i (c.read ())
  done

let prop_sequential impl =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: sequential counting" (Harness.Instances.counter_name impl))
    ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 0 30) (int_range 0 3))
    (fun pids ->
      let _, (c : Counters.Counter.instance) = make ~n:4 ~bound:64 impl in
      List.iteri (fun _ pid -> c.increment ~pid) pids;
      c.read () = List.length pids)

(* {1 Step complexity} *)

let ceil_log2 n =
  let rec go d v = if v >= n then d else go (d + 1) (2 * v) in
  go 0 1

let read_steps session (c : Counters.Counter.instance) =
  Session.reset_steps session;
  ignore (c.read ());
  Session.direct_steps session

let inc_steps session (c : Counters.Counter.instance) ~pid =
  Session.reset_steps session;
  c.increment ~pid;
  Session.direct_steps session

let test_farray_counter_steps () =
  List.iter
    (fun n ->
      let session, c = make ~n ~bound:(4 * n) Harness.Instances.Farray_counter in
      c.increment ~pid:0;
      Alcotest.(check int) (Printf.sprintf "n=%d read O(1)" n) 1 (read_steps session c);
      let inc = inc_steps session c ~pid:(n - 1) in
      let bound = 2 + (8 * ceil_log2 n) in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d inc %d <= %d" n inc bound)
        true (inc <= bound))
    [ 2; 4; 16; 64; 256 ]

let test_naive_counter_steps () =
  List.iter
    (fun n ->
      let session, c = make ~n ~bound:(4 * n) Harness.Instances.Naive_counter in
      Alcotest.(check int) (Printf.sprintf "n=%d inc O(1)" n) 2 (inc_steps session c ~pid:0);
      Alcotest.(check int) (Printf.sprintf "n=%d read O(N)" n) n (read_steps session c))
    [ 2; 4; 16; 64; 256 ]

let test_aac_counter_steps () =
  List.iter
    (fun n ->
      let bound = n * n in
      let session, c = make ~n ~bound Harness.Instances.Aac_counter in
      c.increment ~pid:0;
      let r = read_steps session c in
      let r_bound = ceil_log2 (bound + 2) + 2 in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d read %d <= %d (log B)" n r r_bound)
        true (r <= r_bound);
      let i = inc_steps session c ~pid:(n - 1) in
      (* log N levels, each a couple of max-register reads and one
         write_max, all O(log B) *)
      let i_bound = 2 + (ceil_log2 n + 1) * (3 * r_bound) in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d inc %d <= %d (log N log B)" n i i_bound)
        true (i <= i_bound))
    [ 2; 4; 16; 64 ]

(* The read-vs-update tradeoff is real: ordering of implementations by read
   cost is the reverse of their ordering by increment cost. *)
let test_tradeoff_ordering () =
  let n = 64 in
  let measure impl =
    let session, c = make ~n ~bound:(n * n) impl in
    c.increment ~pid:0;
    (read_steps session c, inc_steps session c ~pid:1)
  in
  let r_farray, i_farray = measure Harness.Instances.Farray_counter in
  let r_aac, i_aac = measure Harness.Instances.Aac_counter in
  let r_naive, i_naive = measure Harness.Instances.Naive_counter in
  Alcotest.(check bool) "reads: farray < aac < naive" true
    (r_farray < r_aac && r_aac < r_naive);
  Alcotest.(check bool) "increments: naive < farray < aac" true
    (i_naive < i_farray && i_farray < i_aac)

(* {1 Linearizability} *)

let check_linearizable impl ~seed ~n ~incs =
  let session = Session.create () in
  let c =
    Harness.Annotate.counter session
      (Harness.Instances.counter_sim session ~n ~bound:64 impl)
  in
  let sched = Scheduler.create session in
  for pid = 0 to n - 1 do
    ignore
      (Scheduler.spawn sched (fun () ->
           if pid < incs then c.increment ~pid else ignore (c.read ())))
  done;
  Scheduler.run_random ~seed ~max_events:200_000 sched;
  let trace = Scheduler.finish sched in
  Linearize.Checker.check_trace (module Linearize.Spec.Counter) ~n trace

let test_linearizable impl () =
  for seed = 1 to 60 do
    if not (check_linearizable impl ~seed ~n:4 ~incs:2) then
      Alcotest.failf "%s: non-linearizable at seed %d"
        (Harness.Instances.counter_name impl)
        seed
  done

(* {1 Concurrent increments all land} *)

let prop_no_lost_increments impl =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: no lost increments" (Harness.Instances.counter_name impl))
    ~count:50
    QCheck.(pair small_int (int_range 2 6))
    (fun (seed, n) ->
      let session = Session.create () in
      let c = Harness.Instances.counter_sim session ~n ~bound:64 impl in
      let sched = Scheduler.create session in
      for pid = 0 to n - 1 do
        ignore (Scheduler.spawn sched (fun () -> c.increment ~pid))
      done;
      Scheduler.run_random ~seed ~max_events:1_000_000 sched;
      ignore (Scheduler.finish sched);
      c.read () = n)

let per_impl name f =
  List.map
    (fun impl ->
      Alcotest.test_case
        (Printf.sprintf "%s %s" (Harness.Instances.counter_name impl) name)
        `Quick (f impl))
    impls

let () =
  Alcotest.run "counters"
    [ ( "sequential",
        per_impl "basic" test_sequential
        @ List.map (fun i -> QCheck_alcotest.to_alcotest (prop_sequential i)) impls );
      ( "steps",
        [ Alcotest.test_case "farray: read O(1), inc O(log N)" `Quick test_farray_counter_steps;
          Alcotest.test_case "naive: inc O(1), read O(N)" `Quick test_naive_counter_steps;
          Alcotest.test_case "aac: read O(log B), inc O(log N log B)" `Quick test_aac_counter_steps;
          Alcotest.test_case "tradeoff ordering" `Quick test_tradeoff_ordering ] );
      ( "linearizability",
        per_impl "random schedules" test_linearizable
        @ List.map (fun i -> QCheck_alcotest.to_alcotest (prop_no_lost_increments i)) impls ) ]
