(* Tests for the generic f-array: aggregation correctness, step counts
   (read O(1), update O(log N)), ABA-freedom under adversarial schedules. *)

open Memsim

let make_sum session ~n =
  let module M = (val Smem.Sim_memory.bind session) in
  let module F = Farray.Make (M) in
  let t =
    F.create ~n
      ~combine:(fun a b ->
        Simval.Int (Simval.int_or ~default:0 a + Simval.int_or ~default:0 b))
      ()
  in
  ( (fun i v -> F.update t ~leaf:i (Simval.Int v)),
    (fun () -> Simval.int_or ~default:0 (F.read t)),
    fun i -> Simval.int_or ~default:0 (F.read_leaf t i) )

let test_sum_sequential () =
  let session = Session.create () in
  let update, read, read_leaf = make_sum session ~n:8 in
  Alcotest.(check int) "empty sum" 0 (read ());
  update 0 5;
  update 3 7;
  update 7 1;
  Alcotest.(check int) "sum" 13 (read ());
  update 3 2;
  Alcotest.(check int) "overwrite leaf" 8 (read ());
  Alcotest.(check int) "leaf read" 2 (read_leaf 3)

let test_max_aggregate () =
  let session = Session.create () in
  let module M = (val Smem.Sim_memory.bind session) in
  let module F = Farray.Make (M) in
  let t = F.create ~n:5 ~combine:Simval.max_val () in
  F.update t ~leaf:1 (Simval.Int 9);
  F.update t ~leaf:4 (Simval.Int 3);
  Alcotest.(check bool) "max" true (Simval.equal (F.read t) (Simval.Int 9))

let test_read_is_one_step () =
  let session = Session.create () in
  let update, read, _ = make_sum session ~n:64 in
  update 5 10;
  Session.reset_steps session;
  ignore (read ());
  Alcotest.(check int) "read O(1)" 1 (Session.direct_steps session)

let ceil_log2 n =
  let rec go d v = if v >= n then d else go (d + 1) (2 * v) in
  go 0 1

let test_update_is_log_steps () =
  List.iter
    (fun n ->
      let session = Session.create () in
      let update, _, _ = make_sum session ~n in
      Session.reset_steps session;
      update (n - 1) 3;
      let steps = Session.direct_steps session in
      let bound = 1 + (8 * ceil_log2 n) in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: update %d <= %d" n steps bound)
        true (steps <= bound))
    [ 2; 4; 8; 64; 256; 1024 ]

(* Double-refresh correctness: even under an adversarial interleaving the
   root converges to the true sum once all updates complete. *)
let prop_concurrent_sum_correct =
  QCheck.Test.make ~name:"farray sum correct under random schedules" ~count:80
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 6) (int_range 1 100)))
    (fun (seed, values) ->
      let n = List.length values in
      let session = Session.create () in
      let update, read, _ = make_sum session ~n in
      let sched = Scheduler.create session in
      List.iteri
        (fun pid v -> ignore (Scheduler.spawn sched (fun () -> update pid v)))
        values;
      Scheduler.run_random ~seed ~max_events:1_000_000 sched;
      ignore (Scheduler.finish sched);
      read () = List.fold_left ( + ) 0 values)

(* The stalled-propagator scenario that double refresh exists for: a
   process stalls mid-propagation; a later update must still make the root
   reflect both leaves once it completes. *)
let test_stalled_propagator () =
  let session = Session.create () in
  let update, read, _ = make_sum session ~n:4 in
  let sched = Scheduler.create session in
  let p0 = Scheduler.spawn sched (fun () -> update 0 100) in
  let p1 = Scheduler.spawn sched (fun () -> update 1 10) in
  (* p0 writes its leaf then stalls before finishing propagation. *)
  ignore (Scheduler.step sched p0);
  ignore (Scheduler.step sched p0);
  (* p1 runs to completion: its double refresh must absorb p0's leaf. *)
  Scheduler.run_solo sched p1;
  ignore (Scheduler.finish sched);
  Alcotest.(check int) "root includes the stalled write" 110 (read ())

let () =
  Alcotest.run "farray"
    [ ( "sequential",
        [ Alcotest.test_case "sum" `Quick test_sum_sequential;
          Alcotest.test_case "max" `Quick test_max_aggregate ] );
      ( "steps",
        [ Alcotest.test_case "read O(1)" `Quick test_read_is_one_step;
          Alcotest.test_case "update O(log n)" `Quick test_update_is_log_steps ] );
      ( "concurrency",
        [ QCheck_alcotest.to_alcotest prop_concurrent_sum_correct;
          Alcotest.test_case "stalled propagator" `Quick test_stalled_propagator ] ) ]
