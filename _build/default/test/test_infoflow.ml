(* Tests for the information-flow analyses: visibility (Definition 1),
   awareness/familiarity (Definitions 2-4), and the sigma-schedule of
   Lemma 1 with its 3x growth bound. *)

open Memsim

(* Run scripted processes: process i performs the listed primitives on the
   listed objects, in order; the schedule interleaves by pid. *)
let run_script ~objects ~procs ~schedule =
  let session = Session.create () in
  let objs =
    Array.map (fun (name, init) -> Session.alloc session ~name init) objects
  in
  let sched = Scheduler.create session in
  List.iteri
    (fun i ops ->
      let body () =
        List.iter
          (fun (obj_idx, prim) ->
            ignore (Session.mem_op session objs.(obj_idx) prim))
          ops
      in
      let pid = Scheduler.spawn sched body in
      assert (pid = i))
    procs;
  Scheduler.run_schedule sched schedule;
  let trace = Scheduler.finish sched in
  (objs, trace)

let w v = Event.Write (Simval.Int v)
let cas a b = Event.Cas { expected = Simval.Int a; desired = Simval.Int b }

(* {1 Visibility} *)

let test_silent_overwrite_invisible () =
  (* p0 writes o, p1 overwrites before p0 moves again and before any read:
     p0's write is invisible. *)
  let _, trace =
    run_script
      ~objects:[| ("o", Simval.Int 0) |]
      ~procs:[ [ (0, w 1) ]; [ (0, w 2) ] ]
      ~schedule:[ 0; 1 ]
  in
  let vis = Infoflow.Visibility.compute (Trace.events trace) in
  Alcotest.(check (array bool)) "first hidden, second visible" [| false; true |] vis

let test_overwrite_after_writer_steps_is_visible () =
  (* p0 writes o then takes another step (on o2) before p1 overwrites:
     Definition 1's "p takes no steps" clause fails, so it is visible. *)
  let _, trace =
    run_script
      ~objects:[| ("o", Simval.Int 0); ("o2", Simval.Int 0) |]
      ~procs:[ [ (0, w 1); (1, w 5) ]; [ (0, w 2) ] ]
      ~schedule:[ 0; 0; 1 ]
  in
  let vis = Infoflow.Visibility.compute (Trace.events trace) in
  Alcotest.(check bool) "p0's write visible" true vis.(0)

let test_read_between_makes_visible () =
  (* p0 writes, p1 reads it, p2 overwrites: the read pins visibility. *)
  let _, trace =
    run_script
      ~objects:[| ("o", Simval.Int 0) |]
      ~procs:[ [ (0, w 1) ]; [ (0, Event.Read) ]; [ (0, w 2) ] ]
      ~schedule:[ 0; 1; 2 ]
  in
  let vis = Infoflow.Visibility.compute (Trace.events trace) in
  Alcotest.(check bool) "write visible" true vis.(0)

let test_trivial_events_invisible () =
  let _, trace =
    run_script
      ~objects:[| ("o", Simval.Int 3) |]
      ~procs:
        [ [ (0, Event.Read) ];      (* read: trivial *)
          [ (0, w 3) ];             (* write of current value: trivial *)
          [ (0, cas 9 5) ] ]        (* failing CAS: trivial *)
      ~schedule:[ 0; 1; 2 ]
  in
  let literal = Infoflow.Visibility.compute ~literal:true (Trace.events trace) in
  Alcotest.(check (array bool)) "literal: all invisible"
    [| false; false; false |] literal;
  (* Repaired rule: the value-preserving write re-asserts the value and
     stays visible; reads and failed CAS remain invisible. *)
  let repaired = Infoflow.Visibility.compute (Trace.events trace) in
  Alcotest.(check (array bool)) "repaired: trivial write visible"
    [| false; true; false |] repaired

(* The information leak of the literal Definition 1 (see Visibility): two
   processes write the same value; under the literal rule neither write is
   ever visible — the first is masked by the second, the second is trivial —
   yet a reader decodes the changed value.  The repaired rule keeps the
   last write visible, restoring the flow Lemma 3 depends on. *)
let test_same_value_masking_leak () =
  let _, trace =
    run_script
      ~objects:[| ("o", Simval.Int 0) |]
      ~procs:[ [ (0, w 1) ]; [ (0, w 1) ]; [ (0, Event.Read) ] ]
      ~schedule:[ 0; 1; 2 ]
  in
  let events = Trace.events trace in
  let literal = Infoflow.Visibility.compute ~literal:true events in
  Alcotest.(check (array bool)) "literal: both writes invisible"
    [| false; false; false |] literal;
  let a_lit = Infoflow.Awareness.of_trace ~literal:true trace in
  Alcotest.(check bool) "literal: reader aware of nobody" false
    (Infoflow.Awareness.Int_set.mem 0 (Infoflow.Awareness.aw_of a_lit 2)
     || Infoflow.Awareness.Int_set.mem 1 (Infoflow.Awareness.aw_of a_lit 2));
  let repaired = Infoflow.Visibility.compute events in
  Alcotest.(check (array bool)) "repaired: last write visible"
    [| false; true; false |] repaired;
  let a_rep = Infoflow.Awareness.of_trace trace in
  Alcotest.(check bool) "repaired: reader aware of last writer" true
    (Infoflow.Awareness.Int_set.mem 1 (Infoflow.Awareness.aw_of a_rep 2))

let test_successful_cas_visible () =
  let _, trace =
    run_script
      ~objects:[| ("o", Simval.Int 0) |]
      ~procs:[ [ (0, cas 0 7) ] ]
      ~schedule:[ 0 ]
  in
  let vis = Infoflow.Visibility.compute (Trace.events trace) in
  Alcotest.(check (array bool)) "cas visible" [| true |] vis

let test_cas_overwrite_does_not_hide () =
  (* Definition 1: only a *write* hides; an overwriting CAS leaves the
     earlier event visible. *)
  let _, trace =
    run_script
      ~objects:[| ("o", Simval.Int 0) |]
      ~procs:[ [ (0, w 1) ]; [ (0, cas 1 2) ] ]
      ~schedule:[ 0; 1 ]
  in
  let vis = Infoflow.Visibility.compute (Trace.events trace) in
  Alcotest.(check (array bool)) "write stays visible" [| true; true |] vis

(* {1 Awareness and familiarity} *)

let analysis trace = Infoflow.Awareness.of_trace trace

let aware a p q = Infoflow.Awareness.Int_set.mem q (Infoflow.Awareness.aw_of a p)

let test_reader_becomes_aware_of_writer () =
  let _, trace =
    run_script
      ~objects:[| ("o", Simval.Int 0) |]
      ~procs:[ [ (0, w 1) ]; [ (0, Event.Read) ] ]
      ~schedule:[ 0; 1 ]
  in
  let a = analysis trace in
  Alcotest.(check bool) "p1 aware of p0" true (aware a 1 0);
  Alcotest.(check bool) "p0 not aware of p1" false (aware a 0 1)

let test_writer_gains_no_awareness () =
  (* Writes return nothing: overwriting a visible value conveys no
     information to the overwriter. *)
  let _, trace =
    run_script
      ~objects:[| ("o", Simval.Int 0); ("x", Simval.Int 0) |]
      ~procs:[ [ (0, w 1); (1, w 9) ]; [ (0, w 2) ] ]
      ~schedule:[ 0; 0; 1 ]
  in
  let a = analysis trace in
  Alcotest.(check bool) "overwriter unaware" false (aware a 1 0)

let test_cas_gains_awareness_even_when_failing () =
  (* The boolean response of a CAS reveals the object's state. *)
  let _, trace =
    run_script
      ~objects:[| ("o", Simval.Int 0) |]
      ~procs:[ [ (0, w 1) ]; [ (0, cas 5 6) ] ]
      ~schedule:[ 0; 1 ]
  in
  let a = analysis trace in
  Alcotest.(check bool) "failed CAS still aware" true (aware a 1 0)

let test_transitive_awareness () =
  (* p0 -> o1 -> p1 -> o2 -> p2: p2 learns about p0 through p1. *)
  let _, trace =
    run_script
      ~objects:[| ("o1", Simval.Int 0); ("o2", Simval.Int 0) |]
      ~procs:
        [ [ (0, w 1) ];
          [ (0, Event.Read); (1, w 1) ];
          [ (1, Event.Read) ] ]
      ~schedule:[ 0; 1; 1; 2 ]
  in
  let a = analysis trace in
  Alcotest.(check bool) "p1 aware of p0" true (aware a 1 0);
  Alcotest.(check bool) "p2 aware of p1" true (aware a 2 1);
  Alcotest.(check bool) "p2 aware of p0 transitively" true (aware a 2 0)

let test_invisible_write_conveys_nothing () =
  (* p0's write is silently overwritten; a later reader learns only about
     the overwriter. *)
  let _, trace =
    run_script
      ~objects:[| ("o", Simval.Int 0) |]
      ~procs:[ [ (0, w 1) ]; [ (0, w 2) ]; [ (0, Event.Read) ] ]
      ~schedule:[ 0; 1; 2 ]
  in
  let a = analysis trace in
  Alcotest.(check bool) "reader unaware of hidden writer" false (aware a 2 0);
  Alcotest.(check bool) "reader aware of visible writer" true (aware a 2 1)

let test_familiarity_accumulates () =
  let objs, trace =
    run_script
      ~objects:[| ("o", Simval.Int 0) |]
      ~procs:
        [ [ (0, w 1); (0, Event.Read) ]; (* p0 writes, then reads again *)
          [ (0, w 2) ] ]
      ~schedule:[ 0; 0; 1 ]
  in
  let a = analysis trace in
  let fam = Infoflow.Awareness.fam_of a objs.(0) in
  (* both writes were visible (p0 stepped in between), so o is familiar
     with both writers *)
  Alcotest.(check bool) "familiar with p0" true
    (Infoflow.Awareness.Int_set.mem 0 fam);
  Alcotest.(check bool) "familiar with p1" true
    (Infoflow.Awareness.Int_set.mem 1 fam)

let test_hidden_set () =
  (* Two processes writing distinct objects are mutually hidden. *)
  let objs, trace =
    run_script
      ~objects:[| ("a", Simval.Int 0); ("b", Simval.Int 0) |]
      ~procs:[ [ (0, w 1) ]; [ (1, w 1) ] ]
      ~schedule:[ 0; 1 ]
  in
  let a = analysis trace in
  Alcotest.(check bool) "p0 hidden" true
    (Infoflow.Awareness.is_hidden a ~pids:[ 0; 1 ] ~pid:0);
  Alcotest.(check bool) "p1 hidden" true
    (Infoflow.Awareness.is_hidden a ~pids:[ 0; 1 ] ~pid:1);
  Alcotest.(check bool) "objects familiar with one each" true
    (Infoflow.Awareness.each_object_familiar_with_at_most_one a
       ~objs:(Array.to_list objs) ~set:[ 0; 1 ])

(* {1 Lemma 1: the sigma-schedule bounds M growth by 3x per round} *)

let random_ops rng ~nobjs ~len =
  List.init len (fun _ ->
      let obj = Random.State.int rng nobjs in
      match Random.State.int rng 3 with
      | 0 -> (obj, Event.Read)
      | 1 -> (obj, w (Random.State.int rng 4))
      | _ -> (obj, cas (Random.State.int rng 4) (Random.State.int rng 4)))

let prop_lemma1_growth =
  QCheck.Test.make ~name:"lemma 1: 3x growth (literal), 4x (repaired)" ~count:150
    QCheck.(small_int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nprocs = 2 + Random.State.int rng 8 in
      let nobjs = 1 + Random.State.int rng 4 in
      let session = Session.create () in
      let objs =
        Array.init nobjs (fun i ->
            Session.alloc session ~name:(Printf.sprintf "o%d" i) (Simval.Int 0))
      in
      let sched = Scheduler.create session in
      let pids =
        List.init nprocs (fun i ->
            let ops = random_ops rng ~nobjs ~len:(1 + Random.State.int rng 6) in
            Scheduler.spawn sched (fun () ->
                List.iter
                  (fun (obj_idx, prim) ->
                    ignore (Session.mem_op session objs.(obj_idx) prim))
                  ops)
            |> fun pid -> ignore i; pid)
      in
      (* run sigma rounds to completion, recording boundaries *)
      let boundaries = ref [ 0 ] in
      let rec loop () =
        let live = List.filter (Scheduler.is_active sched) pids in
        if live <> [] then begin
          ignore (Infoflow.Sigma.round sched live);
          boundaries := Scheduler.event_count sched :: !boundaries;
          loop ()
        end
      in
      loop ();
      let trace = Scheduler.finish sched in
      (* Lemma 1's 3x bound holds for the literal Definition 1; under the
         repaired rule (needed by Lemma 3) value-preserving events stay
         visible inside sigma_1 and the factor weakens to 4. *)
      let bound_ok ~literal ~factor =
        let a = Infoflow.Awareness.of_trace ~literal trace in
        let ms =
          List.rev_map (fun k -> Infoflow.Awareness.m_after a k) !boundaries
        in
        let rec ok = function
          | m1 :: (m2 :: _ as rest) -> m2 <= factor * max 1 m1 && ok rest
          | [ _ ] | [] -> true
        in
        ok ms
      in
      bound_ok ~literal:true ~factor:3 && bound_ok ~literal:false ~factor:4)

(* {1 Claim 1 / Lemma 2 as a property: erasing a *hidden* process from any
   execution leaves an execution that is indistinguishable to every other
   process.} *)

let prop_claim1_hidden_erasure =
  QCheck.Test.make ~name:"claim 1: erasing a hidden process is invisible"
    ~count:200
    QCheck.(small_int)
    (fun seed ->
      let rng = Random.State.make [| seed; 17 |] in
      let nprocs = 2 + Random.State.int rng 6 in
      let nobjs = 1 + Random.State.int rng 4 in
      let session = Session.create () in
      let objs =
        Array.init nobjs (fun i ->
            Session.alloc session ~name:(Printf.sprintf "o%d" i) (Simval.Int 0))
      in
      let scripts =
        Array.init nprocs (fun _ ->
            random_ops rng ~nobjs ~len:(1 + Random.State.int rng 5))
      in
      let make_body pid () =
        List.iter
          (fun (obj_idx, prim) ->
            ignore (Session.mem_op session objs.(obj_idx) prim))
          scripts.(pid)
      in
      (* random execution *)
      let sched = Scheduler.create session in
      for pid = 0 to nprocs - 1 do
        ignore (Scheduler.spawn sched (make_body pid))
      done;
      Scheduler.run_random ~seed ~max_events:1_000 sched;
      let trace = Scheduler.finish sched in
      let a = analysis trace in
      let pids = List.init nprocs Fun.id in
      (* every process hidden after E can be erased invisibly *)
      let hidden =
        List.filter
          (fun p ->
            Infoflow.Awareness.is_hidden a ~pids ~pid:p
            && Array.length (Trace.events_of trace p) > 0)
          pids
      in
      List.for_all
        (fun victim ->
          let schedule =
            Replay.erase_from_schedule (Trace.schedule trace) ~erased:[ victim ]
          in
          match
            Replay.replay session ~n:nprocs ~make_body ~schedule ()
          with
          | exception _ -> false
          | sched2 ->
            let replayed = Scheduler.current_trace sched2 in
            ignore (Scheduler.finish sched2);
            let survivors = List.filter (fun p -> p <> victim) pids in
            (match
               Replay.indistinguishable_for_all ~old_trace:trace
                 ~new_trace:replayed ~pids:survivors
             with
             | Ok () -> true
             | Error _ -> false))
        hidden)

(* Conversely: erasing a process someone IS aware of gets detected (on
   executions where awareness is real, i.e. the reader read a changed
   value). *)
let test_erasing_known_process_detected () =
  let session = Session.create () in
  let o = Session.alloc session ~name:"o" (Simval.Int 0) in
  let make_body pid () =
    if pid = 0 then ignore (Session.mem_op session o (w 1))
    else ignore (Session.mem_op session o Event.Read)
  in
  let sched = Scheduler.create session in
  ignore (Scheduler.spawn sched (make_body 0));
  ignore (Scheduler.spawn sched (make_body 1));
  Scheduler.run_schedule sched [ 0; 1 ];
  let trace = Scheduler.finish sched in
  let a = analysis trace in
  Alcotest.(check bool) "p1 aware of p0" true (aware a 1 0);
  let schedule =
    Replay.erase_from_schedule (Trace.schedule trace) ~erased:[ 0 ]
  in
  let sched2 = Replay.replay session ~n:2 ~make_body ~schedule () in
  let replayed = Scheduler.current_trace sched2 in
  ignore (Scheduler.finish sched2);
  (match
     Replay.indistinguishable_for ~old_trace:trace ~new_trace:replayed ~pid:1
   with
   | Ok () -> Alcotest.fail "erasure of a known process went undetected"
   | Error _ -> ())

(* The sigma-round orders events quiet -> writes -> cas. *)
let test_sigma_ordering () =
  let session = Session.create () in
  let o = Session.alloc session ~name:"o" (Simval.Int 0) in
  let x = Session.alloc session ~name:"x" (Simval.Int 0) in
  let sched = Scheduler.create session in
  let p_read = Scheduler.spawn sched (fun () -> ignore (Session.mem_op session o Event.Read)) in
  let p_write = Scheduler.spawn sched (fun () -> ignore (Session.mem_op session x (w 1))) in
  let p_cas = Scheduler.spawn sched (fun () -> ignore (Session.mem_op session o (cas 0 5))) in
  ignore (Infoflow.Sigma.round sched [ p_cas; p_write; p_read ]);
  let trace = Scheduler.finish sched in
  let order = Array.map (fun (e : Event.t) -> e.Event.pid) (Trace.events trace) in
  Alcotest.(check (array int)) "quiet, write, cas" [| p_read; p_write; p_cas |] order

(* In a sigma round, CAS events after the first successful one on the same
   object are trivial (the familiarity argument of Lemma 1, case 2). *)
let test_sigma_cas_once () =
  let session = Session.create () in
  let o = Session.alloc session ~name:"o" (Simval.Int 0) in
  let sched = Scheduler.create session in
  let oks = Array.make 4 false in
  let pids =
    List.init 4 (fun i ->
        Scheduler.spawn sched (fun () ->
            match Session.mem_op session o (cas 0 (i + 1)) with
            | Event.RBool b -> oks.(i) <- b
            | _ -> assert false))
  in
  ignore (Infoflow.Sigma.round sched pids);
  ignore (Scheduler.finish sched);
  let successes = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 oks in
  Alcotest.(check int) "exactly one CAS succeeds" 1 successes

let () =
  Alcotest.run "infoflow"
    [ ( "visibility",
        [ Alcotest.test_case "silent overwrite" `Quick test_silent_overwrite_invisible;
          Alcotest.test_case "writer stepped" `Quick test_overwrite_after_writer_steps_is_visible;
          Alcotest.test_case "read pins" `Quick test_read_between_makes_visible;
          Alcotest.test_case "trivial events" `Quick test_trivial_events_invisible;
          Alcotest.test_case "same-value masking leak" `Quick test_same_value_masking_leak;
          Alcotest.test_case "successful cas" `Quick test_successful_cas_visible;
          Alcotest.test_case "cas does not hide" `Quick test_cas_overwrite_does_not_hide ] );
      ( "awareness",
        [ Alcotest.test_case "reader learns writer" `Quick test_reader_becomes_aware_of_writer;
          Alcotest.test_case "writer learns nothing" `Quick test_writer_gains_no_awareness;
          Alcotest.test_case "failed cas learns" `Quick test_cas_gains_awareness_even_when_failing;
          Alcotest.test_case "transitive" `Quick test_transitive_awareness;
          Alcotest.test_case "invisible conveys nothing" `Quick test_invisible_write_conveys_nothing;
          Alcotest.test_case "familiarity accumulates" `Quick test_familiarity_accumulates;
          Alcotest.test_case "hidden set" `Quick test_hidden_set ] );
      ( "erasure",
        [ QCheck_alcotest.to_alcotest prop_claim1_hidden_erasure;
          Alcotest.test_case "known erasure detected" `Quick
            test_erasing_known_process_detected ] );
      ( "sigma",
        [ Alcotest.test_case "ordering" `Quick test_sigma_ordering;
          Alcotest.test_case "one cas wins" `Quick test_sigma_cas_once;
          QCheck_alcotest.to_alcotest prop_lemma1_growth ] ) ]
