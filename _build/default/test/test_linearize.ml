(* Tests for the history extraction and the Wing-Gong checker itself:
   hand-built histories with known verdicts, pending-operation handling,
   and the specs. *)

open Memsim

(* Build a trace containing only annotations, from a script of
   (pid, `Invoke (op, arg) | `Return (op, result)) entries. *)
let trace_of_script script =
  let b = Trace.builder () in
  List.iter
    (fun (pid, action) ->
      match action with
      | `Invoke (op, arg) -> Trace.add_invoke b ~pid ~op ~arg
      | `Return (op, result) -> Trace.add_return b ~pid ~op ~result)
    script;
  Trace.finish b

let check_max spec_n trace =
  Linearize.Checker.check_trace (module Linearize.Spec.Max_register) ~n:spec_n trace

let i v = Simval.Int v

(* {1 History extraction} *)

let test_history_extraction () =
  let trace =
    trace_of_script
      [ (0, `Invoke ("write_max", i 5));
        (1, `Invoke ("read_max", Simval.Bot));
        (0, `Return ("write_max", Simval.Bot));
        (1, `Return ("read_max", i 5)) ]
  in
  let ops = Linearize.History.of_trace trace in
  Alcotest.(check int) "two ops" 2 (Array.length ops);
  Alcotest.(check bool) "none pending" true
    (Array.for_all (fun o -> not (Linearize.History.is_pending o)) ops)

let test_history_pending () =
  let trace = trace_of_script [ (0, `Invoke ("write_max", i 5)) ] in
  let ops = Linearize.History.of_trace trace in
  Alcotest.(check int) "one op" 1 (Array.length ops);
  Alcotest.(check bool) "pending" true (Linearize.History.is_pending ops.(0))

(* {1 Checker verdicts on crafted histories} *)

let test_sequential_legal () =
  let trace =
    trace_of_script
      [ (0, `Invoke ("write_max", i 5));
        (0, `Return ("write_max", Simval.Bot));
        (0, `Invoke ("read_max", Simval.Bot));
        (0, `Return ("read_max", i 5)) ]
  in
  Alcotest.(check bool) "legal" true (check_max 2 trace)

let test_sequential_illegal () =
  let trace =
    trace_of_script
      [ (0, `Invoke ("write_max", i 5));
        (0, `Return ("write_max", Simval.Bot));
        (0, `Invoke ("read_max", Simval.Bot));
        (0, `Return ("read_max", i 3)) ]
  in
  Alcotest.(check bool) "illegal: stale read" false (check_max 2 trace)

(* Concurrent write may or may not be seen — both read results legal. *)
let test_concurrent_flexibility () =
  let with_read r =
    trace_of_script
      [ (0, `Invoke ("write_max", i 7));
        (1, `Invoke ("read_max", Simval.Bot));
        (1, `Return ("read_max", i r));
        (0, `Return ("write_max", Simval.Bot)) ]
  in
  Alcotest.(check bool) "read 0 legal" true (check_max 2 (with_read 0));
  Alcotest.(check bool) "read 7 legal" true (check_max 2 (with_read 7));
  Alcotest.(check bool) "read 3 illegal" false (check_max 2 (with_read 3))

(* Real-time order must be respected: a read that *follows* a completed
   write must see it. *)
let test_real_time_order () =
  let trace =
    trace_of_script
      [ (0, `Invoke ("write_max", i 7));
        (0, `Return ("write_max", Simval.Bot));
        (1, `Invoke ("read_max", Simval.Bot));
        (1, `Return ("read_max", i 0)) ]
  in
  Alcotest.(check bool) "missed completed write" false (check_max 2 trace)

(* A pending write may take effect... *)
let test_pending_write_may_apply () =
  let trace =
    trace_of_script
      [ (0, `Invoke ("write_max", i 9));
        (1, `Invoke ("read_max", Simval.Bot));
        (1, `Return ("read_max", i 9)) ]
  in
  Alcotest.(check bool) "pending effect visible" true (check_max 2 trace)

(* ...or not. *)
let test_pending_write_may_not_apply () =
  let trace =
    trace_of_script
      [ (0, `Invoke ("write_max", i 9));
        (1, `Invoke ("read_max", Simval.Bot));
        (1, `Return ("read_max", i 0)) ]
  in
  Alcotest.(check bool) "pending effect invisible" true (check_max 2 trace)

(* Non-monotone reads cannot be linearized. *)
let test_non_monotone_reads () =
  let trace =
    trace_of_script
      [ (0, `Invoke ("write_max", i 5));
        (0, `Return ("write_max", Simval.Bot));
        (1, `Invoke ("read_max", Simval.Bot));
        (1, `Return ("read_max", i 5));
        (1, `Invoke ("read_max", Simval.Bot));
        (1, `Return ("read_max", i 0)) ]
  in
  Alcotest.(check bool) "max register went backwards" false (check_max 2 trace)

(* {1 Counter spec} *)

let check_counter n trace =
  Linearize.Checker.check_trace (module Linearize.Spec.Counter) ~n trace

let test_counter_spec () =
  let good =
    trace_of_script
      [ (0, `Invoke ("increment", Simval.Bot));
        (1, `Invoke ("increment", Simval.Bot));
        (0, `Return ("increment", Simval.Bot));
        (1, `Return ("increment", Simval.Bot));
        (2, `Invoke ("read", Simval.Bot));
        (2, `Return ("read", i 2)) ]
  in
  Alcotest.(check bool) "two increments read 2" true (check_counter 3 good);
  let bad =
    trace_of_script
      [ (0, `Invoke ("increment", Simval.Bot));
        (0, `Return ("increment", Simval.Bot));
        (2, `Invoke ("read", Simval.Bot));
        (2, `Return ("read", i 0)) ]
  in
  Alcotest.(check bool) "lost increment" false (check_counter 3 bad)

(* {1 Snapshot spec} *)

let check_snapshot n trace =
  Linearize.Checker.check_trace (module Linearize.Spec.Snapshot) ~n trace

let test_snapshot_spec () =
  let scan_result l = Simval.of_int_array (Array.of_list l) in
  let good =
    trace_of_script
      [ (0, `Invoke ("update", i 4));
        (0, `Return ("update", Simval.Bot));
        (1, `Invoke ("scan", Simval.Bot));
        (1, `Return ("scan", scan_result [ 4; 0 ])) ]
  in
  Alcotest.(check bool) "scan sees update" true (check_snapshot 2 good);
  let bad =
    trace_of_script
      [ (0, `Invoke ("update", i 4));
        (0, `Return ("update", Simval.Bot));
        (1, `Invoke ("scan", Simval.Bot));
        (1, `Return ("scan", scan_result [ 0; 0 ])) ]
  in
  Alcotest.(check bool) "scan misses completed update" false (check_snapshot 2 bad)

(* The snapshot's new-old inversion: two scans disagreeing on the order of
   concurrent updates is not linearizable. *)
let test_snapshot_new_old_inversion () =
  let scan_result l = Simval.of_int_array (Array.of_list l) in
  let trace =
    trace_of_script
      [ (0, `Invoke ("update", i 1));
        (1, `Invoke ("update", i 2));
        (2, `Invoke ("scan", Simval.Bot));
        (2, `Return ("scan", scan_result [ 1; 0; 0 ]));
        (3, `Invoke ("scan", Simval.Bot));
        (3, `Return ("scan", scan_result [ 0; 2; 0 ]));
        (0, `Return ("update", Simval.Bot));
        (1, `Return ("update", Simval.Bot)) ]
  in
  (* scan2 saw u0 but not u1; the later scan3 saw u1 but NOT u0: inversion *)
  Alcotest.(check bool) "new-old inversion rejected" false
    (check_snapshot 4 trace)

(* {1 Checker vs brute force on random histories} *)

(* A tiny brute-force reference: try all permutations (histories are kept
   very small). *)
let brute_force_max n (ops : Linearize.History.op array) =
  let m = Array.length ops in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x ->
          List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
        l
  in
  let indices = List.init m Fun.id in
  let respects_real_time order =
    let pos = Array.make m 0 in
    List.iteri (fun idx j -> pos.(j) <- idx) order;
    Array.for_all Fun.id
      (Array.mapi
         (fun a opa ->
           Array.for_all Fun.id
             (Array.mapi
                (fun b opb ->
                  match opa.Linearize.History.return with
                  | Some r when r < opb.Linearize.History.invoke ->
                    pos.(a) < pos.(b)
                  | Some _ | None -> true)
                ops))
         ops)
  in
  let legal order =
    let state = ref 0 in
    List.for_all
      (fun j ->
        let op = ops.(j) in
        match op.Linearize.History.name with
        | "write_max" ->
          state := max !state (Simval.int_exn op.arg);
          true
        | "read_max" -> (
          match op.result with
          | None -> true
          | Some r -> Simval.equal r (Simval.Int !state))
        | _ -> false)
      order
  in
  ignore n;
  List.exists
    (fun order -> respects_real_time order && legal order)
    (permutations indices)

let prop_checker_matches_brute_force =
  QCheck.Test.make ~name:"checker = brute force on random max histories"
    ~count:300
    QCheck.(small_int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      (* random complete history of <= 5 ops over 2 processes *)
      let b = Trace.builder () in
      let per_pid_open = Array.make 2 None in
      let time = ref 0 in
      let actions = 4 + Random.State.int rng 4 in
      for _ = 1 to actions do
        incr time;
        let pid = Random.State.int rng 2 in
        match per_pid_open.(pid) with
        | None ->
          let is_write = Random.State.bool rng in
          let op = if is_write then "write_max" else "read_max" in
          let arg =
            if is_write then Simval.Int (Random.State.int rng 4) else Simval.Bot
          in
          Trace.add_invoke b ~pid ~op ~arg;
          per_pid_open.(pid) <- Some op
        | Some op ->
          let result =
            if op = "write_max" then Simval.Bot
            else Simval.Int (Random.State.int rng 4)
          in
          Trace.add_return b ~pid ~op ~result;
          per_pid_open.(pid) <- None
      done;
      (* close remaining ops so brute force stays simple *)
      Array.iteri
        (fun pid op ->
          match op with
          | Some op ->
            let result = if op = "write_max" then Simval.Bot else Simval.Int 0 in
            Trace.add_return b ~pid ~op ~result
          | None -> ())
        per_pid_open;
      let trace = Trace.finish b in
      let ops = Linearize.History.of_trace trace in
      let expected = brute_force_max 2 ops in
      let got =
        Linearize.Checker.check (module Linearize.Spec.Max_register) ~n:2 ops
      in
      expected = got)

(* Generic brute force over any spec: try all real-time-respecting
   permutations; used to cross-validate the memoized checker on counter and
   snapshot histories too. *)
let brute_force_spec (type s) (module S : Linearize.Spec.SPEC with type state = s)
    ~n (ops : Linearize.History.op array) =
  let m = Array.length ops in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x ->
          List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
        l
  in
  let respects_real_time order =
    let pos = Array.make m 0 in
    List.iteri (fun idx j -> pos.(j) <- idx) order;
    Array.for_all Fun.id
      (Array.mapi
         (fun a opa ->
           Array.for_all Fun.id
             (Array.mapi
                (fun b opb ->
                  match opa.Linearize.History.return with
                  | Some r when r < opb.Linearize.History.invoke ->
                    pos.(a) < pos.(b)
                  | Some _ | None -> true)
                ops))
         ops)
  in
  let legal order =
    let rec go state = function
      | [] -> true
      | j :: rest -> (
        let op = ops.(j) in
        match S.apply state ~name:op.Linearize.History.name ~pid:op.pid ~arg:op.arg with
        | None -> false
        | Some (state', result) -> (
          match op.result with
          | None -> go state' rest
          | Some r -> Simval.equal r result && go state' rest))
    in
    go (S.initial ~n) order
  in
  List.exists
    (fun order -> respects_real_time order && legal order)
    (permutations (List.init m Fun.id))

let random_history rng ~nprocs ~make_op ~actions =
  let b = Trace.builder () in
  let per_pid_open = Array.make nprocs None in
  for _ = 1 to actions do
    let pid = Random.State.int rng nprocs in
    match per_pid_open.(pid) with
    | None ->
      let op, arg = make_op `Invoke in
      Trace.add_invoke b ~pid ~op ~arg;
      per_pid_open.(pid) <- Some op
    | Some op ->
      let _, result = make_op (`Return op) in
      Trace.add_return b ~pid ~op ~result;
      per_pid_open.(pid) <- None
  done;
  Array.iteri
    (fun pid op ->
      match op with
      | Some op ->
        let _, result = make_op (`Return op) in
        Trace.add_return b ~pid ~op ~result
      | None -> ())
    per_pid_open;
  Linearize.History.of_trace (Trace.finish b)

let prop_counter_matches_brute_force =
  QCheck.Test.make ~name:"checker = brute force on random counter histories"
    ~count:200 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 3 |] in
      let make_op = function
        | `Invoke ->
          if Random.State.bool rng then ("increment", Simval.Bot)
          else ("read", Simval.Bot)
        | `Return op ->
          ( op,
            if op = "increment" then Simval.Bot
            else Simval.Int (Random.State.int rng 4) )
      in
      let ops =
        random_history rng ~nprocs:2 ~make_op
          ~actions:(4 + Random.State.int rng 4)
      in
      brute_force_spec (module Linearize.Spec.Counter) ~n:2 ops
      = Linearize.Checker.check (module Linearize.Spec.Counter) ~n:2 ops)

let prop_snapshot_matches_brute_force =
  QCheck.Test.make ~name:"checker = brute force on random snapshot histories"
    ~count:150 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 5 |] in
      let make_op = function
        | `Invoke ->
          if Random.State.bool rng then
            ("update", Simval.Int (Random.State.int rng 3))
          else ("scan", Simval.Bot)
        | `Return op ->
          ( op,
            if op = "update" then Simval.Bot
            else
              Simval.of_int_array
                (Array.init 2 (fun _ -> Random.State.int rng 3)) )
      in
      let ops =
        random_history rng ~nprocs:2 ~make_op
          ~actions:(4 + Random.State.int rng 3)
      in
      brute_force_spec (module Linearize.Spec.Snapshot) ~n:2 ops
      = Linearize.Checker.check (module Linearize.Spec.Snapshot) ~n:2 ops)

let () =
  Alcotest.run "linearize"
    [ ( "history",
        [ Alcotest.test_case "extraction" `Quick test_history_extraction;
          Alcotest.test_case "pending" `Quick test_history_pending ] );
      ( "max register",
        [ Alcotest.test_case "sequential legal" `Quick test_sequential_legal;
          Alcotest.test_case "sequential illegal" `Quick test_sequential_illegal;
          Alcotest.test_case "concurrent flexibility" `Quick test_concurrent_flexibility;
          Alcotest.test_case "real-time order" `Quick test_real_time_order;
          Alcotest.test_case "pending may apply" `Quick test_pending_write_may_apply;
          Alcotest.test_case "pending may not apply" `Quick test_pending_write_may_not_apply;
          Alcotest.test_case "non-monotone reads" `Quick test_non_monotone_reads ] );
      ( "other specs",
        [ Alcotest.test_case "counter" `Quick test_counter_spec;
          Alcotest.test_case "snapshot" `Quick test_snapshot_spec;
          Alcotest.test_case "new-old inversion" `Quick test_snapshot_new_old_inversion ] );
      ( "reference",
        [ QCheck_alcotest.to_alcotest prop_checker_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_counter_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_snapshot_matches_brute_force ] ) ]
