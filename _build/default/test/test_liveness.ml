(* Tests of the liveness audits (E9's machinery): wait-free implementations
   complete within their solo bounds under interference; the CAS-loop
   register and the double-collect scan do not. *)

open Memsim

let test_solo_completion_all_maxregs () =
  List.iter
    (fun impl ->
      let session = Session.create () in
      let reg = Harness.Instances.maxreg_sim session ~n:6 ~bound:512 impl in
      let make_body pid () = reg.write_max ~pid (pid * 17 mod 512) in
      let r =
        Harness.Liveness.solo_completion_bound ~scenarios:25 session ~n:6
          ~make_body ()
      in
      Alcotest.(check bool)
        (Harness.Instances.maxreg_name impl ^ " completes solo")
        true r.Harness.Liveness.all_completed)
    Harness.Instances.all_maxregs

let test_wait_free_register_bounded_under_interference () =
  (* Algorithm A's WriteMax costs the same with or without an adversarial
     interferer (wait-freedom), up to helping. *)
  let session = Session.create () in
  let reg =
    Harness.Instances.maxreg_sim session ~n:4 ~bound:4096
      Harness.Instances.Algorithm_a
  in
  let solo =
    Session.reset_steps session;
    reg.write_max ~pid:2 3_000;
    Session.direct_steps session
  in
  let interfered =
    Harness.Liveness.interference_bound ~victim_budget:1_000 session
      ~victim_body:(fun () -> reg.write_max ~pid:0 4_000)
      ~interferer_body:
        (let v = ref 0 in
         fun () -> incr v; reg.write_max ~pid:1 !v)
      ()
  in
  Alcotest.(check bool) "completed" true
    interfered.Harness.Liveness.victim_completed;
  Alcotest.(check bool)
    (Printf.sprintf "steps %d within 2x solo %d"
       interfered.Harness.Liveness.victim_steps solo)
    true
    (interfered.Harness.Liveness.victim_steps <= 2 * solo)

let test_cas_loop_not_wait_free () =
  let session = Session.create () in
  let reg =
    Harness.Instances.maxreg_sim session ~n:4 ~bound:1_000_000
      Harness.Instances.Cas_maxreg
  in
  let interfered =
    Harness.Liveness.interference_bound ~victim_budget:500 session
      ~victim_body:(fun () -> reg.write_max ~pid:0 999_999)
      ~interferer_body:
        (let v = ref 0 in
         fun () -> incr v; reg.write_max ~pid:1 !v)
      ()
  in
  (* the victim retries for as long as the interferer keeps winning CAS
     races: step count far exceeds the 2-step solo cost *)
  Alcotest.(check bool)
    (Printf.sprintf "victim burned %d steps (solo needs 2)"
       interfered.Harness.Liveness.victim_steps)
    true
    (interfered.Harness.Liveness.victim_steps >= 50)

let test_double_collect_scan_not_wait_free () =
  let session = Session.create () in
  let module M = (val Smem.Sim_memory.bind session) in
  let module S = Snapshots.Double_collect.Make (M) in
  let snap = S.create ~max_collects:1_000_000 ~n:2 () in
  let interfered =
    Harness.Liveness.interference_bound ~victim_budget:1_000 session
      ~victim_body:(fun () -> ignore (S.scan snap))
      ~interferer_body:
        (let v = ref 0 in
         fun () -> incr v; S.update snap ~pid:1 !v)
      ()
  in
  Alcotest.(check bool) "scan starved" false
    interfered.Harness.Liveness.victim_completed

let test_afek_scan_wait_free_under_interference () =
  let session = Session.create () in
  let s =
    Harness.Instances.snapshot_sim session ~n:2 Harness.Instances.Afek
  in
  let interfered =
    Harness.Liveness.interference_bound ~victim_budget:1_000 session
      ~victim_body:(fun () -> ignore (s.scan ()))
      ~interferer_body:
        (let v = ref 0 in
         fun () -> incr v; s.update ~pid:1 !v)
      ()
  in
  Alcotest.(check bool) "afek scan completes under interference" true
    interfered.Harness.Liveness.victim_completed

let () =
  Alcotest.run "liveness"
    [ ( "solo",
        [ Alcotest.test_case "all max registers complete" `Quick
            test_solo_completion_all_maxregs ] );
      ( "interference",
        [ Alcotest.test_case "algorithm A bounded" `Quick
            test_wait_free_register_bounded_under_interference;
          Alcotest.test_case "cas-loop unbounded" `Quick test_cas_loop_not_wait_free;
          Alcotest.test_case "double-collect starves" `Quick
            test_double_collect_scan_not_wait_free;
          Alcotest.test_case "afek completes" `Quick
            test_afek_scan_wait_free_under_interference ] ) ]
