(* Tests for 2-component max arrays: sequential semantics, step counts,
   linearizability (random + exhaustive), and a demonstration that two
   INDEPENDENT max registers are not a max array (the new-old inversion
   the object exists to prevent). *)

open Memsim

let impls :
    (string * (Session.t -> n:int -> Maxarray.Max_array.instance)) list =
  [ ( "from-registers",
      fun session ~n ->
        let module M = (val Smem.Sim_memory.bind session) in
        let module A = Maxarray.Max_array.From_registers (M) in
        Maxarray.Max_array.instantiate (module A) (A.create ~n) );
    ( "from-snapshot",
      fun session ~n ->
        let module M = (val Smem.Sim_memory.bind session) in
        let module A = Maxarray.Max_array.From_snapshot (M) in
        Maxarray.Max_array.instantiate (module A) (A.create ~n) );
    ( "from-farray",
      fun session ~n ->
        let module M = (val Smem.Sim_memory.bind session) in
        let module A = Maxarray.Max_array.From_farray (M) in
        Maxarray.Max_array.instantiate (module A) (A.create ~n) ) ]

(* {1 Sequential semantics} *)

let test_sequential (name, make) () =
  let session = Session.create () in
  let m : Maxarray.Max_array.instance = make session ~n:3 in
  Alcotest.(check (pair int int)) (name ^ " initial") (0, 0) (m.scan ());
  m.update0 ~pid:0 5;
  Alcotest.(check (pair int int)) (name ^ " a=5") (5, 0) (m.scan ());
  m.update1 ~pid:1 9;
  Alcotest.(check (pair int int)) (name ^ " b=9") (5, 9) (m.scan ());
  m.update0 ~pid:2 3;
  Alcotest.(check (pair int int)) (name ^ " smaller a ignored") (5, 9) (m.scan ());
  m.update1 ~pid:0 12;
  Alcotest.(check (pair int int)) (name ^ " b=12") (5, 12) (m.scan ())

let prop_sequential (name, make) =
  QCheck.Test.make
    ~name:(name ^ ": sequential = componentwise running max")
    ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 0 25)
              (pair bool (int_range 0 50)))
    (fun ops ->
      let session = Session.create () in
      let m : Maxarray.Max_array.instance = make session ~n:4 in
      let a = ref 0 and b = ref 0 in
      List.for_all
        (fun (first, v) ->
          let pid = v mod 4 in
          if first then begin
            m.update0 ~pid v;
            a := max !a v
          end
          else begin
            m.update1 ~pid v;
            b := max !b v
          end;
          m.scan () = (!a, !b))
        ops)

(* {1 Step complexity} *)

let test_farray_variant_steps () =
  List.iter
    (fun n ->
      let session = Session.create () in
      let m : Maxarray.Max_array.instance =
        (List.assoc "from-farray" impls) session ~n
      in
      m.update0 ~pid:0 1;
      Session.reset_steps session;
      ignore (m.scan ());
      Alcotest.(check int) (Printf.sprintf "n=%d scan O(1)" n) 1
        (Session.direct_steps session);
      Session.reset_steps session;
      m.update0 ~pid:(n - 1) 100;
      let u = Session.direct_steps session in
      let ceil_log2 x =
        let rec go d v = if v >= x then d else go (d + 1) (2 * v) in
        go 0 1
      in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d update %d <= %d" n u (2 + (8 * ceil_log2 n)))
        true
        (u <= 2 + (8 * ceil_log2 n)))
    [ 2; 8; 64; 256 ]

(* {1 Linearizability: random schedules} *)

let check_linearizable (name, make) ~seed ~n =
  let session = Session.create () in
  let m : Maxarray.Max_array.instance = make session ~n in
  let rng = Random.State.make [| seed |] in
  let wrapped_scan () =
    Session.annotate_invoke session ~op:"scan" ~arg:Simval.Bot;
    let a, b = m.scan () in
    Session.annotate_return session ~op:"scan"
      ~result:(Simval.Vec [| Simval.Int a; Simval.Int b |]);
    (a, b)
  in
  let wrapped_update which ~pid v =
    let op = if which = 0 then "update0" else "update1" in
    Session.annotate_invoke session ~op ~arg:(Simval.Int v);
    if which = 0 then m.update0 ~pid v else m.update1 ~pid v;
    Session.annotate_return session ~op ~result:Simval.Bot
  in
  let sched = Scheduler.create session in
  for pid = 0 to n - 1 do
    let v = 1 + Random.State.int rng 7 in
    let role = Random.State.int rng 3 in
    ignore
      (Scheduler.spawn sched (fun () ->
           match role with
           | 0 -> wrapped_update 0 ~pid v
           | 1 -> wrapped_update 1 ~pid v
           | _ -> ignore (wrapped_scan ())))
  done;
  Scheduler.run_random ~seed ~max_events:1_000_000 sched;
  let trace = Scheduler.finish sched in
  ignore name;
  Linearize.Checker.check_trace (module Linearize.Spec.Max_array) ~n trace

let test_linearizable_random ((name, _) as impl) () =
  (* the snapshot variant's operations are O(N^2): fewer seeds *)
  let seeds = if name = "from-snapshot" then 40 else 120 in
  for seed = 1 to seeds do
    if not (check_linearizable impl ~seed ~n:4) then
      Alcotest.failf "%s: non-linearizable at seed %d" name seed
  done

(* {1 Linearizability: exhaustive, via the farray variant}

   update0 + update1 + scanner, every interleaving. *)

(* (a) both components updated concurrently: every interleaving must leave
   the pair scanning as (5, 7) — cross-component atomicity of the tree. *)
let test_exhaustive_farray_updates () =
  let session = Session.create () in
  let m : Maxarray.Max_array.instance =
    (List.assoc "from-farray" impls) session ~n:2
  in
  let make_body pid () =
    if pid = 0 then m.update0 ~pid 5 else m.update1 ~pid 7
  in
  let counts = Explore.solo_counts session ~n:2 ~make_body in
  let explored = ref 0 in
  let failures = ref 0 in
  let stats =
    Explore.run_interleavings session ~make_body ~counts
      ~on_complete:(fun _ ->
        incr explored;
        if m.scan () <> (5, 7) then incr failures;
        true)
      ()
  in
  Alcotest.(check bool) "not truncated" false stats.Explore.truncated;
  Alcotest.(check bool)
    (Printf.sprintf "explored %d interleavings" !explored)
    true (!explored > 1_000);
  Alcotest.(check int) "every interleaving converges to (5,7)" 0 !failures

(* (b) one updater against a scanner: every interleaving linearizable. *)
let test_exhaustive_farray_scan () =
  let session = Session.create () in
  let m : Maxarray.Max_array.instance =
    (List.assoc "from-farray" impls) session ~n:2
  in
  let make_body pid () =
    if pid = 0 then begin
      Session.annotate_invoke session ~op:"update0" ~arg:(Simval.Int 5);
      m.update0 ~pid 5;
      Session.annotate_return session ~op:"update0" ~result:Simval.Bot
    end
    else begin
      Session.annotate_invoke session ~op:"scan" ~arg:Simval.Bot;
      let a, b = m.scan () in
      Session.annotate_return session ~op:"scan"
        ~result:(Simval.Vec [| Simval.Int a; Simval.Int b |])
    end
  in
  let explored = ref 0 in
  let failures = ref 0 in
  let stats =
    Explore.run session ~n:2 ~make_body
      ~on_complete:(fun trace ->
        incr explored;
        if
          not
            (Linearize.Checker.check_trace
               (module Linearize.Spec.Max_array)
               ~n:2 trace)
        then incr failures;
        true)
      ()
  in
  Alcotest.(check bool) "not truncated" false stats.Explore.truncated;
  Alcotest.(check bool)
    (Printf.sprintf "explored %d schedules" !explored)
    true (!explored >= 10);
  Alcotest.(check int) "no violations" 0 !failures

(* {1 From_registers, exhaustively: one updater per component + scanner}

   The double-collect construction's whole point is surviving exactly the
   interleavings that invert two independent registers; enumerate them
   all. *)

let test_exhaustive_from_registers () =
  let session = Session.create () in
  (* small bounds keep each operation a few events so the whole schedule
     space is enumerable *)
  let module M = (val Smem.Sim_memory.bind session) in
  let module A = Maxarray.Max_array.From_registers (M) in
  let t = A.create_bounded ~bound0:8 ~bound1:8 () in
  let make_body pid () =
    if pid = 0 then begin
      Session.annotate_invoke session ~op:"update0" ~arg:(Simval.Int 5);
      A.max_update0 t ~pid 5;
      Session.annotate_return session ~op:"update0" ~result:Simval.Bot
    end
    else begin
      Session.annotate_invoke session ~op:"scan" ~arg:Simval.Bot;
      let a, b = A.max_scan t in
      Session.annotate_return session ~op:"scan"
        ~result:(Simval.Vec [| Simval.Int a; Simval.Int b |])
    end
  in
  let explored = ref 0 in
  let failures = ref 0 in
  let stats =
    Explore.run session ~n:2 ~make_body
      ~on_complete:(fun trace ->
        incr explored;
        if
          not
            (Linearize.Checker.check_trace
               (module Linearize.Spec.Max_array)
               ~n:2 trace)
        then incr failures;
        true)
      ()
  in
  Alcotest.(check bool) "not truncated" false stats.Explore.truncated;
  Alcotest.(check bool) "explored some" true (!explored >= 10);
  Alcotest.(check int) "no violations" 0 !failures

(* ...and the cross-component race specifically: update0 + update1 +
   scanner, with tiny bounds (2-valued registers) so every one of the few
   thousand interleavings is enumerated. *)
let test_exhaustive_from_registers_cross () =
  let session = Session.create () in
  let module M = (val Smem.Sim_memory.bind session) in
  let module A = Maxarray.Max_array.From_registers (M) in
  let t = A.create_bounded ~bound0:2 ~bound1:2 () in
  let make_body pid () =
    match pid with
    | 0 ->
      Session.annotate_invoke session ~op:"update0" ~arg:(Simval.Int 1);
      A.max_update0 t ~pid 1;
      Session.annotate_return session ~op:"update0" ~result:Simval.Bot
    | 1 ->
      Session.annotate_invoke session ~op:"update1" ~arg:(Simval.Int 1);
      A.max_update1 t ~pid 1;
      Session.annotate_return session ~op:"update1" ~result:Simval.Bot
    | _ ->
      Session.annotate_invoke session ~op:"scan" ~arg:Simval.Bot;
      let a, b = A.max_scan t in
      Session.annotate_return session ~op:"scan"
        ~result:(Simval.Vec [| Simval.Int a; Simval.Int b |])
  in
  let explored = ref 0 in
  let failures = ref 0 in
  let stats =
    Explore.run session ~n:3 ~make_body
      ~on_complete:(fun trace ->
        incr explored;
        if
          not
            (Linearize.Checker.check_trace
               (module Linearize.Spec.Max_array)
               ~n:3 trace)
        then incr failures;
        true)
      ()
  in
  Alcotest.(check bool) "not truncated" false stats.Explore.truncated;
  Alcotest.(check bool)
    (Printf.sprintf "explored %d schedules" !explored)
    true
    (!explored >= 20);
  Alcotest.(check int) "no violations" 0 !failures

(* {1 Why the object is needed: two independent max registers admit
   new-old inversions} *)

let test_independent_registers_invert () =
  let session = Session.create () in
  let module M = (val Smem.Sim_memory.bind session) in
  let module R = Maxreg.Cas_maxreg.Make (M) in
  let ra = R.create () and rb = R.create () in
  let scan_result a b = Simval.Vec [| Simval.Int a; Simval.Int b |] in
  let scan pid () =
    Session.annotate_invoke session ~op:"scan" ~arg:Simval.Bot;
    let a = R.read_max ra in
    let b = R.read_max rb in
    ignore pid;
    Session.annotate_return session ~op:"scan" ~result:(scan_result a b)
  in
  let sched = Scheduler.create session in
  let s1 = Scheduler.spawn sched (scan 0) in
  let s2 = Scheduler.spawn sched (scan 1) in
  let u0 =
    Scheduler.spawn sched (fun () ->
        Session.annotate_invoke session ~op:"update0" ~arg:(Simval.Int 5);
        R.write_max ra ~pid:2 5;
        Session.annotate_return session ~op:"update0" ~result:Simval.Bot)
  in
  let u1 =
    Scheduler.spawn sched (fun () ->
        Session.annotate_invoke session ~op:"update1" ~arg:(Simval.Int 5);
        R.write_max rb ~pid:3 5;
        Session.annotate_return session ~op:"update1" ~result:Simval.Bot)
  in
  (* s2 reads a (0); u0 completes; s1 reads a (5) and b (0), completing with
     (5,0); u1 completes; s2 reads b (5), completing with (0,5): inversion *)
  ignore (Scheduler.step sched s2);
  Scheduler.run_solo sched u0;
  Scheduler.run_solo sched s1;
  Scheduler.run_solo sched u1;
  Scheduler.run_solo sched s2;
  let trace = Scheduler.finish sched in
  Alcotest.(check bool) "independent registers are NOT a max array" false
    (Linearize.Checker.check_trace (module Linearize.Spec.Max_array) ~n:4
       trace)

let () =
  Alcotest.run "max_array"
    [ ( "sequential",
        List.map
          (fun impl ->
            Alcotest.test_case (fst impl) `Quick (test_sequential impl))
          impls
        @ List.map (fun impl -> QCheck_alcotest.to_alcotest (prop_sequential impl)) impls );
      ("steps", [ Alcotest.test_case "farray variant" `Quick test_farray_variant_steps ]);
      ( "linearizability",
        List.map
          (fun impl ->
            Alcotest.test_case (fst impl ^ " random") `Quick
              (test_linearizable_random impl))
          impls
        @ [ Alcotest.test_case "farray exhaustive (u0 || u1)" `Quick
              test_exhaustive_farray_updates;
            Alcotest.test_case "farray exhaustive (u0 || scan)" `Quick
              test_exhaustive_farray_scan;
            Alcotest.test_case "from-registers exhaustive (u0 || scan)" `Quick
              test_exhaustive_from_registers;
            Alcotest.test_case "from-registers exhaustive (u0 || u1 || scan)"
              `Quick test_exhaustive_from_registers_cross ] );
      ( "motivation",
        [ Alcotest.test_case "independent registers invert" `Quick
            test_independent_registers_invert ] ) ]
