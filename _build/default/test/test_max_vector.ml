(* Tests for N-component max vectors: sequential semantics, step counts,
   linearizability under random schedules, exhaustive interleavings, and a
   cross-component atomicity stress on real domains. *)

open Memsim

let make session ~n ~m =
  let module M = (val Smem.Sim_memory.bind session) in
  let module V = Maxarray.Max_vector.Make (M) in
  let t = V.create ~n ~m in
  ( (fun ~pid ~component v -> V.max_update t ~pid ~component v),
    fun () -> V.max_scan t )

(* {1 Sequential} *)

let test_sequential () =
  let session = Session.create () in
  let update, scan = make session ~n:3 ~m:4 in
  Alcotest.(check (array int)) "initial" [| 0; 0; 0; 0 |] (scan ());
  update ~pid:0 ~component:2 9;
  update ~pid:1 ~component:0 4;
  Alcotest.(check (array int)) "two updates" [| 4; 0; 9; 0 |] (scan ());
  update ~pid:2 ~component:2 5;
  Alcotest.(check (array int)) "smaller ignored" [| 4; 0; 9; 0 |] (scan ());
  update ~pid:2 ~component:2 11;
  Alcotest.(check (array int)) "raised" [| 4; 0; 11; 0 |] (scan ())

let prop_sequential =
  QCheck.Test.make ~name:"max vector: componentwise running max" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 0 30)
              (pair (int_range 0 3) (int_range 0 40)))
    (fun ops ->
      let session = Session.create () in
      let update, scan = make session ~n:4 ~m:4 in
      let model = Array.make 4 0 in
      List.for_all
        (fun (component, v) ->
          update ~pid:(v mod 4) ~component v;
          model.(component) <- max model.(component) v;
          scan () = model)
        ops)

(* {1 Steps} *)

let test_steps () =
  List.iter
    (fun n ->
      let session = Session.create () in
      let update, scan = make session ~n ~m:3 in
      update ~pid:0 ~component:1 5;
      Session.reset_steps session;
      ignore (scan ());
      Alcotest.(check int) (Printf.sprintf "n=%d scan O(1)" n) 1
        (Session.direct_steps session);
      Session.reset_steps session;
      update ~pid:(n - 1) ~component:2 77;
      let u = Session.direct_steps session in
      let ceil_log2 x =
        let rec go d v = if v >= x then d else go (d + 1) (2 * v) in
        go 0 1
      in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d update %d steps" n u)
        true
        (u <= 2 + (8 * ceil_log2 n)))
    [ 2; 8; 64 ]

(* {1 Linearizability (annotated ops, random schedules)} *)

let annotated session ~n ~m =
  let update, scan = make session ~n ~m in
  let vupdate ~pid ~component v =
    Session.annotate_invoke session ~op:"vupdate"
      ~arg:(Simval.Vec [| Simval.Int component; Simval.Int v |]);
    update ~pid ~component v;
    Session.annotate_return session ~op:"vupdate" ~result:Simval.Bot
  in
  let vscan () =
    Session.annotate_invoke session ~op:"vscan" ~arg:(Simval.Int m);
    let r = scan () in
    Session.annotate_return session ~op:"vscan" ~result:(Simval.of_int_array r);
    r
  in
  (vupdate, vscan)

let test_linearizable_random () =
  for seed = 1 to 120 do
    let n = 4 and m = 3 in
    let session = Session.create () in
    let vupdate, vscan = annotated session ~n ~m in
    let rng = Random.State.make [| seed |] in
    let sched = Scheduler.create session in
    for pid = 0 to n - 1 do
      let component = Random.State.int rng m in
      let v = 1 + Random.State.int rng 7 in
      ignore
        (Scheduler.spawn sched (fun () ->
             if pid = n - 1 then ignore (vscan ())
             else vupdate ~pid ~component v))
    done;
    Scheduler.run_random ~seed ~max_events:1_000_000 sched;
    let trace = Scheduler.finish sched in
    if
      not
        (Linearize.Checker.check_trace (module Linearize.Spec.Max_vector) ~n
           trace)
    then Alcotest.failf "non-linearizable at seed %d" seed
  done

(* {1 Exhaustive: updates on two different components + a scanner} *)

let test_exhaustive () =
  let session = Session.create () in
  let vupdate, vscan = annotated session ~n:2 ~m:2 in
  let make_body pid () =
    if pid = 0 then vupdate ~pid ~component:0 5 else ignore (vscan ())
  in
  let explored = ref 0 in
  let failures = ref 0 in
  let stats =
    Explore.run session ~n:2 ~make_body
      ~on_complete:(fun trace ->
        incr explored;
        if
          not
            (Linearize.Checker.check_trace
               (module Linearize.Spec.Max_vector)
               ~n:2 trace)
        then incr failures;
        true)
      ()
  in
  Alcotest.(check bool) "not truncated" false stats.Explore.truncated;
  Alcotest.(check bool) "explored some" true (!explored >= 10);
  Alcotest.(check int) "no violations" 0 !failures

(* {1 Native domains: scans never regress in any component} *)

let test_native_monotone_scans () =
  let module V = Maxarray.Max_vector.Make (Smem.Atomic_memory) in
  let k = max 2 (min 4 (Domain.recommended_domain_count ())) in
  let m = 3 in
  let t = V.create ~n:k ~m in
  let ok = Atomic.make true in
  let domains =
    List.init k (fun d ->
        Domain.spawn (fun () ->
            if d = 0 then begin
              let last = Array.make m 0 in
              for _ = 1 to 3_000 do
                let s = V.max_scan t in
                Array.iteri
                  (fun i v ->
                    if v < last.(i) then Atomic.set ok false else last.(i) <- v)
                  s
              done
            end
            else
              for v = 1 to 800 do
                V.max_update t ~pid:d ~component:(v mod m) v
              done))
  in
  List.iter Domain.join domains;
  Alcotest.(check bool) "componentwise monotone" true (Atomic.get ok)

let () =
  Alcotest.run "max_vector"
    [ ( "sequential",
        [ Alcotest.test_case "basic" `Quick test_sequential;
          QCheck_alcotest.to_alcotest prop_sequential ] );
      ("steps", [ Alcotest.test_case "scan O(1), update O(log n)" `Quick test_steps ]);
      ( "linearizability",
        [ Alcotest.test_case "random schedules" `Quick test_linearizable_random;
          Alcotest.test_case "exhaustive (update || scan)" `Quick test_exhaustive ] );
      ( "native",
        [ Alcotest.test_case "monotone scans" `Quick test_native_monotone_scans ] ) ]
