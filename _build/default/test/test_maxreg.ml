(* Tests for the max-register implementations: sequential correctness,
   step-complexity bounds (Theorem 6 for Algorithm A, O(log M) for AAC),
   concurrent linearizability under random schedules, wait-freedom. *)

open Memsim

let impls =
  [ Harness.Instances.Algorithm_a;
    Harness.Instances.Aac_maxreg;
    Harness.Instances.B1_maxreg;
    Harness.Instances.Cas_maxreg ]

let make ~n ~bound impl =
  let session = Session.create () in
  (session, Harness.Instances.maxreg_sim session ~n ~bound impl)

(* {1 Sequential correctness} *)

let test_sequential_basic impl () =
  let _, (reg : Maxreg.Max_register.instance) = make ~n:4 ~bound:128 impl in
  Alcotest.(check int) "initially 0" 0 (reg.read_max ());
  reg.write_max ~pid:0 5;
  Alcotest.(check int) "after 5" 5 (reg.read_max ());
  reg.write_max ~pid:1 3;
  Alcotest.(check int) "3 ignored" 5 (reg.read_max ());
  reg.write_max ~pid:2 100;
  Alcotest.(check int) "after 100" 100 (reg.read_max ());
  reg.write_max ~pid:3 100;
  Alcotest.(check int) "repeat ignored" 100 (reg.read_max ())

let prop_sequential_matches_spec impl =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: sequential = running max" (Harness.Instances.maxreg_name impl))
    ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 40) (int_range 0 127))
    (fun values ->
      let _, (reg : Maxreg.Max_register.instance) = make ~n:4 ~bound:128 impl in
      let model = ref 0 in
      List.for_all
        (fun v ->
          reg.write_max ~pid:(v mod 4) v;
          model := max !model v;
          reg.read_max () = !model)
        values)

(* {1 Step complexity (the paper's Theorem 6 and the AAC bound)} *)

let steps_of_write session (reg : Maxreg.Max_register.instance) ~pid v =
  Session.reset_steps session;
  reg.write_max ~pid v;
  Session.direct_steps session

let steps_of_read session (reg : Maxreg.Max_register.instance) =
  Session.reset_steps session;
  ignore (reg.read_max ());
  Session.direct_steps session

let test_algorithm_a_read_constant () =
  List.iter
    (fun n ->
      let session, reg = make ~n ~bound:(n * n) Harness.Instances.Algorithm_a in
      reg.write_max ~pid:0 (n / 2);
      Alcotest.(check int)
        (Printf.sprintf "read is 1 step at n=%d" n)
        1
        (steps_of_read session reg))
    [ 2; 4; 16; 64; 256; 1024 ]

let ceil_log2 n =
  let rec go d v = if v >= n then d else go (d + 1) (2 * v) in
  go 0 1

(* WriteMax(v) of Algorithm A is O(min(log N, log v)): ~8 events per tree
   level plus the leaf read/write. *)
let test_algorithm_a_write_log_v () =
  let n = 1024 in
  let session, reg = make ~n ~bound:(n * n) Harness.Instances.Algorithm_a in
  List.iter
    (fun v ->
      let steps = steps_of_write session reg ~pid:1 v in
      let levels = (2 * ceil_log2 (v + 2)) + 3 in
      let bound = (8 * levels) + 2 in
      Alcotest.(check bool)
        (Printf.sprintf "write(%d): %d steps <= %d" v steps bound)
        true (steps <= bound))
    [ 1; 2; 3; 7; 15; 100; 500; 1022 ]

let test_algorithm_a_write_log_n_for_large_v () =
  (* values >= N go to the complete tree: O(log N) regardless of v *)
  List.iter
    (fun n ->
      let session, reg = make ~n ~bound:max_int Harness.Instances.Algorithm_a in
      let huge = 1_000_000_000 + n in
      let steps = steps_of_write session reg ~pid:(n - 1) huge in
      let bound = (8 * (ceil_log2 n + 2)) + 2 in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: write(huge) %d <= %d" n steps bound)
        true (steps <= bound))
    [ 2; 8; 64; 512 ]

let test_aac_ops_log_m () =
  List.iter
    (fun bound ->
      let session, reg = make ~n:4 ~bound Harness.Instances.Aac_maxreg in
      let wsteps = steps_of_write session reg ~pid:0 (bound - 1) in
      let rsteps = steps_of_read session reg in
      let lim = ceil_log2 bound + 2 in
      Alcotest.(check bool)
        (Printf.sprintf "M=%d: write %d <= %d" bound wsteps lim)
        true (wsteps <= lim);
      Alcotest.(check bool)
        (Printf.sprintf "M=%d: read %d <= %d" bound rsteps lim)
        true (rsteps <= lim))
    [ 2; 4; 16; 256; 4096; 65536 ]

(* AAC reads get *more* expensive as M grows while Algorithm A stays at 1:
   the tradeoff the paper studies. *)
let test_read_complexity_separation () =
  let bound = 65536 in
  let session_a, reg_a = make ~n:8 ~bound Harness.Instances.Algorithm_a in
  let session_b, reg_b = make ~n:8 ~bound Harness.Instances.Aac_maxreg in
  reg_a.write_max ~pid:0 (bound - 1);
  reg_b.write_max ~pid:0 (bound - 1);
  let ra = steps_of_read session_a reg_a in
  let rb = steps_of_read session_b reg_b in
  Alcotest.(check int) "algorithm A read" 1 ra;
  Alcotest.(check bool) "AAC read pays log M" true (rb >= ceil_log2 bound)

(* {1 Wait-freedom: solo completion within the step bound, from any
   reachable intermediate state} *)

let test_wait_free_completion impl () =
  let session = Session.create () in
  let reg = Harness.Instances.maxreg_sim session ~n:6 ~bound:256 impl in
  let sched = Scheduler.create session in
  for pid = 0 to 4 do
    ignore (Scheduler.spawn sched (fun () -> reg.write_max ~pid ((pid * 13) mod 256)))
  done;
  (* Random partial execution, then each process runs solo: must finish. *)
  Scheduler.run_random ~seed:42 ~max_events:30 sched;
  for pid = 0 to 4 do
    Scheduler.run_solo ~max_events:10_000 sched pid;
    Alcotest.(check bool)
      (Printf.sprintf "p%d finished" pid)
      true
      (Scheduler.is_finished sched pid)
  done;
  ignore (Scheduler.finish sched)

(* {1 Concurrent linearizability under many random schedules} *)

let check_linearizable impl ~seed ~n ~writes =
  let session = Session.create () in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n ~bound:64 impl)
  in
  let rng = Random.State.make [| seed |] in
  let sched = Scheduler.create session in
  for pid = 0 to n - 1 do
    let v = Random.State.int rng 64 in
    ignore
      (Scheduler.spawn sched (fun () ->
           if pid < writes then reg.write_max ~pid v
           else ignore (reg.read_max ())))
  done;
  Scheduler.run_random ~seed ~max_events:100_000 sched;
  let trace = Scheduler.finish sched in
  Linearize.Checker.check_trace (module Linearize.Spec.Max_register) ~n trace

let test_linearizable_random impl () =
  for seed = 1 to 150 do
    if not (check_linearizable impl ~seed ~n:4 ~writes:2) then
      Alcotest.failf "%s: non-linearizable at seed %d"
        (Harness.Instances.maxreg_name impl)
        seed
  done

let test_linearizable_heavy impl () =
  for seed = 1 to 40 do
    if not (check_linearizable impl ~seed ~n:5 ~writes:4) then
      Alcotest.failf "%s: non-linearizable at seed %d"
        (Harness.Instances.maxreg_name impl)
        seed
  done

(* {1 Concurrent writes then read: the maximum always survives} *)

let prop_concurrent_max_survives impl =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: max survives any schedule"
         (Harness.Instances.maxreg_name impl))
    ~count:60
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 5) (int_range 0 63)))
    (fun (seed, values) ->
      let n = List.length values in
      let session = Session.create () in
      let reg = Harness.Instances.maxreg_sim session ~n ~bound:64 impl in
      let sched = Scheduler.create session in
      List.iteri
        (fun pid v -> ignore (Scheduler.spawn sched (fun () -> reg.write_max ~pid v)))
        values;
      Scheduler.run_random ~seed ~max_events:1_000_000 sched;
      ignore (Scheduler.finish sched);
      reg.read_max () = List.fold_left max 0 values)

let per_impl name f = List.map (fun impl ->
    Alcotest.test_case
      (Printf.sprintf "%s %s" (Harness.Instances.maxreg_name impl) name)
      `Quick (f impl))
    impls

let () =
  Alcotest.run "maxreg"
    [ ("sequential",
       per_impl "basic" test_sequential_basic
       @ List.map (fun i -> QCheck_alcotest.to_alcotest (prop_sequential_matches_spec i)) impls);
      ( "steps",
        [ Alcotest.test_case "algorithm A: read O(1)" `Quick test_algorithm_a_read_constant;
          Alcotest.test_case "algorithm A: write O(log v)" `Quick test_algorithm_a_write_log_v;
          Alcotest.test_case "algorithm A: write O(log N) for big v" `Quick
            test_algorithm_a_write_log_n_for_large_v;
          Alcotest.test_case "AAC: both ops O(log M)" `Quick test_aac_ops_log_m;
          Alcotest.test_case "read separation" `Quick test_read_complexity_separation ] );
      ("wait-freedom", per_impl "solo completion" test_wait_free_completion);
      ( "linearizability",
        per_impl "random schedules" test_linearizable_random
        @ per_impl "write-heavy" test_linearizable_heavy
        @ List.map (fun i -> QCheck_alcotest.to_alcotest (prop_concurrent_max_survives i)) impls ) ]
