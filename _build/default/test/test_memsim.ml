(* Tests for the shared-memory simulator: store semantics, effect-based
   scheduling, traces, direct mode, replay. *)

open Memsim

let reg session name init = Session.alloc session ~name init

(* {1 Store} *)

let test_store_basic () =
  let store = Store.create () in
  let a = Store.alloc store ~name:"a" (Simval.Int 1) in
  let b = Store.alloc store ~name:"b" Simval.Bot in
  Alcotest.(check int) "two objects" 2 (Store.size store);
  Alcotest.(check bool) "get a" true (Simval.equal (Store.get store a) (Simval.Int 1));
  Alcotest.(check bool) "get b" true (Simval.equal (Store.get store b) Simval.Bot);
  Alcotest.(check string) "name" "b" (Store.name store b)

let test_store_apply () =
  let store = Store.create () in
  let a = Store.alloc store ~name:"a" (Simval.Int 0) in
  (match Store.apply store a Event.Read with
   | Event.RVal v -> Alcotest.(check bool) "read 0" true (Simval.equal v (Simval.Int 0))
   | _ -> Alcotest.fail "bad response");
  (match Store.apply store a (Event.Write (Simval.Int 7)) with
   | Event.RAck -> ()
   | _ -> Alcotest.fail "bad response");
  (match Store.apply store a (Event.Cas { expected = Simval.Int 7; desired = Simval.Int 9 }) with
   | Event.RBool b -> Alcotest.(check bool) "cas success" true b
   | _ -> Alcotest.fail "bad response");
  (match Store.apply store a (Event.Cas { expected = Simval.Int 7; desired = Simval.Int 11 }) with
   | Event.RBool b -> Alcotest.(check bool) "cas failure" false b
   | _ -> Alcotest.fail "bad response");
  Alcotest.(check bool) "final" true (Simval.equal (Store.get store a) (Simval.Int 9))

let test_store_would_change () =
  let store = Store.create () in
  let a = Store.alloc store ~name:"a" (Simval.Int 3) in
  Alcotest.(check bool) "read trivial" false (Store.would_change store a Event.Read);
  Alcotest.(check bool) "same write trivial" false
    (Store.would_change store a (Event.Write (Simval.Int 3)));
  Alcotest.(check bool) "new write changes" true
    (Store.would_change store a (Event.Write (Simval.Int 4)));
  Alcotest.(check bool) "failing cas trivial" false
    (Store.would_change store a (Event.Cas { expected = Simval.Int 9; desired = Simval.Int 4 }));
  Alcotest.(check bool) "identity cas trivial" false
    (Store.would_change store a (Event.Cas { expected = Simval.Int 3; desired = Simval.Int 3 }));
  Alcotest.(check bool) "real cas changes" true
    (Store.would_change store a (Event.Cas { expected = Simval.Int 3; desired = Simval.Int 4 }))

let test_store_reset () =
  let store = Store.create () in
  let a = Store.alloc store ~name:"a" (Simval.Int 1) in
  Store.set store a (Simval.Int 42);
  Store.reset store;
  Alcotest.(check bool) "reset to initial" true
    (Simval.equal (Store.get store a) (Simval.Int 1))

(* {1 Direct mode} *)

let test_direct_mode_counts_steps () =
  let session = Session.create () in
  let a = reg session "a" (Simval.Int 0) in
  Session.reset_steps session;
  ignore (Session.mem_op session a Event.Read);
  ignore (Session.mem_op session a (Event.Write (Simval.Int 5)));
  ignore (Session.mem_op session a (Event.Cas { expected = Simval.Int 5; desired = Simval.Int 6 }));
  Alcotest.(check int) "three steps" 3 (Session.direct_steps session)

(* {1 Scheduling} *)

let test_round_robin_interleaves () =
  let session = Session.create () in
  let a = reg session "a" (Simval.Int 0) in
  let sched = Scheduler.create session in
  let bump () =
    match Session.mem_op session a Event.Read with
    | Event.RVal v ->
      ignore (Session.mem_op session a (Event.Write (Simval.Int (Simval.int_exn v + 1))))
    | _ -> assert false
  in
  let p0 = Scheduler.spawn sched bump in
  let p1 = Scheduler.spawn sched bump in
  Scheduler.run_round_robin sched;
  let trace = Scheduler.finish sched in
  (* Round robin: p0 read, p1 read, p0 write, p1 write => lost update. *)
  Alcotest.(check int) "four events" 4 (Array.length (Trace.events trace));
  Alcotest.(check int) "p0 steps" 2 (Trace.step_count trace p0);
  Alcotest.(check int) "p1 steps" 2 (Trace.step_count trace p1);
  Alcotest.(check bool) "lost update" true
    (Simval.equal (Store.get (Session.store session) a) (Simval.Int 1))

let test_solo_runs_to_completion () =
  let session = Session.create () in
  let a = reg session "a" (Simval.Int 0) in
  let sched = Scheduler.create session in
  let body () =
    for _ = 1 to 10 do
      ignore (Session.mem_op session a (Event.Write (Simval.Int 1)))
    done
  in
  let p = Scheduler.spawn sched body in
  Alcotest.(check bool) "active before" true (Scheduler.is_active sched p);
  Scheduler.run_solo sched p;
  Alcotest.(check bool) "finished" true (Scheduler.is_finished sched p);
  Alcotest.(check int) "ten steps" 10 (Scheduler.steps_of sched p);
  ignore (Scheduler.finish sched)

let test_enabled_peek_is_not_a_step () =
  let session = Session.create () in
  let a = reg session "a" (Simval.Int 0) in
  let sched = Scheduler.create session in
  let p =
    Scheduler.spawn sched (fun () ->
        ignore (Session.mem_op session a (Event.Write (Simval.Int 1))))
  in
  (match Scheduler.enabled sched p with
   | Some (obj, Event.Write v) ->
     Alcotest.(check int) "object" a obj;
     Alcotest.(check bool) "operand" true (Simval.equal v (Simval.Int 1))
   | _ -> Alcotest.fail "expected enabled write");
  Alcotest.(check int) "no event applied" 0 (Scheduler.event_count sched);
  Alcotest.(check bool) "value unchanged" true
    (Simval.equal (Store.get (Session.store session) a) (Simval.Int 0));
  ignore (Scheduler.finish sched)

let test_scheduler_controls_cas_interleaving () =
  let session = Session.create () in
  let a = reg session "a" (Simval.Int 0) in
  let sched = Scheduler.create session in
  let outcomes = Array.make 2 true in
  let body i () =
    match Session.mem_op session a (Event.Cas { expected = Simval.Int 0; desired = Simval.Int (i + 1) }) with
    | Event.RBool b -> outcomes.(i) <- b
    | _ -> assert false
  in
  let p0 = Scheduler.spawn sched (body 0) in
  let p1 = Scheduler.spawn sched (body 1) in
  (* Schedule p1 first: its CAS wins, p0's fails. *)
  Scheduler.run_schedule sched [ p1; p0 ];
  ignore (Scheduler.finish sched);
  Alcotest.(check bool) "p1 won" true outcomes.(1);
  Alcotest.(check bool) "p0 lost" false outcomes.(0);
  Alcotest.(check bool) "value from p1" true
    (Simval.equal (Store.get (Session.store session) a) (Simval.Int 2))

let test_erase_live () =
  let session = Session.create () in
  let a = reg session "a" (Simval.Int 0) in
  let sched = Scheduler.create session in
  let p =
    Scheduler.spawn sched (fun () ->
        ignore (Session.mem_op session a (Event.Write (Simval.Int 1))))
  in
  Alcotest.(check bool) "active" true (Scheduler.is_active sched p);
  Scheduler.erase sched p;
  Alcotest.(check bool) "inactive after erase" false (Scheduler.is_active sched p);
  Alcotest.(check int) "no events" 0 (Scheduler.event_count sched);
  ignore (Scheduler.finish sched)

let test_annotations_recorded () =
  let session = Session.create () in
  let a = reg session "a" (Simval.Int 0) in
  let sched = Scheduler.create session in
  let p =
    Scheduler.spawn sched (fun () ->
        Session.annotate_invoke session ~op:"op" ~arg:(Simval.Int 7);
        ignore (Session.mem_op session a (Event.Write (Simval.Int 7)));
        Session.annotate_return session ~op:"op" ~result:Simval.Bot)
  in
  Scheduler.run_solo sched p;
  let trace = Scheduler.finish sched in
  let entries = Trace.entries trace in
  Alcotest.(check int) "three entries" 3 (Array.length entries);
  (match entries.(0), entries.(2) with
   | Trace.Invoke { op = "op"; _ }, Trace.Return { op = "op"; _ } -> ()
   | _ -> Alcotest.fail "expected invoke/return around the event")

(* {1 Process failures} *)

let test_process_exception_propagates () =
  let session = Session.create () in
  let a = reg session "a" (Simval.Int 0) in
  let sched = Scheduler.create session in
  let p =
    Scheduler.spawn sched (fun () ->
        ignore (Session.mem_op session a Event.Read);
        failwith "boom")
  in
  (* The exception surfaces when the step resumes the body past the read. *)
  Alcotest.check_raises "failure surfaces with pid"
    (Scheduler.Process_failure (p, Failure "boom"))
    (fun () -> ignore (Scheduler.step sched p));
  Alcotest.(check bool) "process is finished after failing" true
    (Scheduler.is_finished sched p);
  ignore (Scheduler.finish sched)

(* {1 Replay} *)

let test_replay_reproduces_execution () =
  let session = Session.create () in
  let a = reg session "a" (Simval.Int 0) in
  let make_body pid () =
    match Session.mem_op session a Event.Read with
    | Event.RVal v ->
      ignore
        (Session.mem_op session a
           (Event.Write (Simval.Int (Simval.int_exn v + 10 + pid))))
    | _ -> assert false
  in
  (* Original run: interleave 2 processes. *)
  let sched = Scheduler.create session in
  for pid = 0 to 1 do
    ignore (Scheduler.spawn sched (make_body pid))
  done;
  Scheduler.run_schedule sched [ 0; 1; 0; 1 ];
  let original = Scheduler.finish sched in
  (* Full replay matches. *)
  let sched2 =
    Replay.replay session ~n:2 ~make_body ~schedule:(Trace.schedule original) ()
  in
  let replayed = Scheduler.current_trace sched2 in
  ignore (Scheduler.finish sched2);
  (match
     Replay.indistinguishable_for_all ~old_trace:original ~new_trace:replayed
       ~pids:[ 0; 1 ]
   with
   | Ok () -> ()
   | Error m -> Alcotest.fail m)

let test_replay_with_erasure () =
  let session = Session.create () in
  (* Two processes on distinct objects: erasing one cannot affect the
     other (they are mutually hidden). *)
  let a = reg session "a" (Simval.Int 0) in
  let b = reg session "b" (Simval.Int 0) in
  let make_body pid () =
    let obj = if pid = 0 then a else b in
    match Session.mem_op session obj Event.Read with
    | Event.RVal v ->
      ignore
        (Session.mem_op session obj (Event.Write (Simval.Int (Simval.int_exn v + 1))))
    | _ -> assert false
  in
  let sched = Scheduler.create session in
  for pid = 0 to 1 do
    ignore (Scheduler.spawn sched (make_body pid))
  done;
  Scheduler.run_schedule sched [ 0; 1; 0; 1 ];
  let original = Scheduler.finish sched in
  let filtered =
    Replay.erase_from_schedule (Trace.schedule original) ~erased:[ 1 ]
  in
  Alcotest.(check (list int)) "filtered schedule" [ 0; 0 ] filtered;
  let sched2 = Replay.replay session ~n:2 ~make_body ~schedule:filtered () in
  let replayed = Scheduler.current_trace sched2 in
  ignore (Scheduler.finish sched2);
  (match
     Replay.indistinguishable_for ~old_trace:original ~new_trace:replayed
       ~pid:0
   with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  Alcotest.(check int) "p1 gone" 0 (Trace.step_count replayed 1)

let test_replay_detects_divergence () =
  let session = Session.create () in
  (* Both processes race on one object; erasing the winner changes the
     loser's view, which indistinguishability must detect. *)
  let a = reg session "a" (Simval.Int 0) in
  let make_body pid () =
    ignore (Session.mem_op session a (Event.Write (Simval.Int pid)));
    ignore (Session.mem_op session a Event.Read)
  in
  let sched = Scheduler.create session in
  for pid = 0 to 1 do
    ignore (Scheduler.spawn sched (make_body pid))
  done;
  Scheduler.run_schedule sched [ 0; 1; 0; 1 ];
  let original = Scheduler.finish sched in
  (* p0's read returned 1 (p1 overwrote).  Without p1 it returns 0. *)
  let filtered =
    Replay.erase_from_schedule (Trace.schedule original) ~erased:[ 1 ]
  in
  let sched2 = Replay.replay session ~n:2 ~make_body ~schedule:filtered () in
  let replayed = Scheduler.current_trace sched2 in
  ignore (Scheduler.finish sched2);
  (match
     Replay.indistinguishable_for ~old_trace:original ~new_trace:replayed
       ~pid:0
   with
   | Ok () -> Alcotest.fail "expected divergence to be detected"
   | Error _ -> ())

(* {1 Robustness / error paths} *)

let test_nested_run_rejected () =
  let session = Session.create () in
  let sched = Scheduler.create session in
  Alcotest.check_raises "second run rejected"
    (Invalid_argument
       "Scheduler.create: a run is already in progress on this session")
    (fun () -> ignore (Scheduler.create session));
  ignore (Scheduler.finish sched);
  (* after finish, a new run is fine *)
  let sched2 = Scheduler.create session in
  ignore (Scheduler.finish sched2)

let test_step_finished_process_rejected () =
  let session = Session.create () in
  let a = reg session "a" (Simval.Int 0) in
  let sched = Scheduler.create session in
  let p =
    Scheduler.spawn sched (fun () ->
        ignore (Session.mem_op session a Event.Read))
  in
  Scheduler.run_solo sched p;
  Alcotest.check_raises "stepping a finished process"
    (Invalid_argument "Scheduler.step: process has finished") (fun () ->
      ignore (Scheduler.step sched p));
  ignore (Scheduler.finish sched)

let test_bad_pid_rejected () =
  let session = Session.create () in
  let sched = Scheduler.create session in
  Alcotest.check_raises "bad pid" (Invalid_argument "Scheduler: bad pid")
    (fun () -> ignore (Scheduler.enabled sched 42));
  ignore (Scheduler.finish sched)

let test_bad_object_rejected () =
  let store = Store.create () in
  Alcotest.check_raises "bad object id"
    (Invalid_argument "Store: bad object id") (fun () ->
      ignore (Store.get store 7))

let test_finish_unwinds_active_processes () =
  let session = Session.create () in
  let a = reg session "a" (Simval.Int 0) in
  let sched = Scheduler.create session in
  let cleanup_ran = ref false in
  let p =
    Scheduler.spawn sched (fun () ->
        Fun.protect
          ~finally:(fun () -> cleanup_ran := true)
          (fun () ->
            ignore (Session.mem_op session a Event.Read);
            ignore (Session.mem_op session a Event.Read)))
  in
  ignore (Scheduler.step sched p);
  ignore (Scheduler.finish sched);
  (* the pending continuation was discontinued, running finalizers *)
  Alcotest.(check bool) "finalizer ran on unwind" true !cleanup_ran

let test_trace_pp_smoke () =
  let session = Session.create () in
  let a = reg session "a" (Simval.Int 0) in
  let sched = Scheduler.create session in
  let p =
    Scheduler.spawn sched (fun () ->
        Session.annotate_invoke session ~op:"op" ~arg:(Simval.Int 1);
        ignore (Session.mem_op session a (Event.Write (Simval.Vec [| Simval.Int 1; Simval.Bot |])));
        ignore (Session.mem_op session a (Event.Cas { expected = Simval.Bot; desired = Simval.Int 2 }));
        Session.annotate_return session ~op:"op" ~result:Simval.Bot)
  in
  Scheduler.run_solo sched p;
  let trace = Scheduler.finish sched in
  let rendered = Fmt.str "%a" Trace.pp trace in
  Alcotest.(check bool) "pretty-printer produces output" true
    (String.length rendered > 20)

(* {1 Simval} *)

let test_simval_order () =
  let open Simval in
  Alcotest.(check bool) "bot smallest" true (compare_val Bot (Int (-100)) < 0);
  Alcotest.(check bool) "ints ordered" true (compare_val (Int 1) (Int 2) < 0);
  Alcotest.(check bool) "max" true (equal (max_val (Int 3) (Int 5)) (Int 5));
  Alcotest.(check bool) "max with bot" true (equal (max_val Bot (Int 0)) (Int 0));
  Alcotest.(check bool) "vec equal" true
    (equal (Vec [| Int 1; Bot |]) (Vec [| Int 1; Bot |]));
  Alcotest.(check bool) "vec not equal" false
    (equal (Vec [| Int 1 |]) (Vec [| Int 1; Int 2 |]))

let simval_gen =
  let open QCheck in
  let leaf = Gen.oneof [ Gen.return Simval.Bot; Gen.map (fun i -> Simval.Int i) Gen.small_int ] in
  let rec tree depth =
    if depth = 0 then leaf
    else
      Gen.oneof
        [ leaf;
          Gen.map (fun l -> Simval.Vec (Array.of_list l))
            (Gen.list_size (Gen.int_range 0 3) (tree (depth - 1))) ]
  in
  make ~print:Simval.to_string (tree 3)

let prop_equal_reflexive =
  QCheck.Test.make ~name:"simval equal is reflexive" ~count:200 simval_gen
    (fun v -> Simval.equal v v)

let prop_compare_antisym =
  QCheck.Test.make ~name:"simval compare antisymmetric" ~count:200
    (QCheck.pair simval_gen simval_gen) (fun (a, b) ->
      Simval.compare_val a b = -Simval.compare_val b a)

let prop_max_is_upper_bound =
  QCheck.Test.make ~name:"max_val is an upper bound" ~count:200
    (QCheck.pair simval_gen simval_gen) (fun (a, b) ->
      let m = Simval.max_val a b in
      Simval.compare_val m a >= 0 && Simval.compare_val m b >= 0)

let () =
  Alcotest.run "memsim"
    [ ( "store",
        [ Alcotest.test_case "basic" `Quick test_store_basic;
          Alcotest.test_case "apply" `Quick test_store_apply;
          Alcotest.test_case "would_change" `Quick test_store_would_change;
          Alcotest.test_case "reset" `Quick test_store_reset ] );
      ( "direct",
        [ Alcotest.test_case "counts steps" `Quick test_direct_mode_counts_steps ] );
      ( "scheduler",
        [ Alcotest.test_case "round robin" `Quick test_round_robin_interleaves;
          Alcotest.test_case "solo" `Quick test_solo_runs_to_completion;
          Alcotest.test_case "peek is free" `Quick test_enabled_peek_is_not_a_step;
          Alcotest.test_case "cas interleaving" `Quick test_scheduler_controls_cas_interleaving;
          Alcotest.test_case "erase live" `Quick test_erase_live;
          Alcotest.test_case "annotations" `Quick test_annotations_recorded;
          Alcotest.test_case "process failure" `Quick test_process_exception_propagates ] );
      ( "replay",
        [ Alcotest.test_case "reproduces" `Quick test_replay_reproduces_execution;
          Alcotest.test_case "erasure" `Quick test_replay_with_erasure;
          Alcotest.test_case "detects divergence" `Quick test_replay_detects_divergence ] );
      ( "robustness",
        [ Alcotest.test_case "nested run" `Quick test_nested_run_rejected;
          Alcotest.test_case "step finished" `Quick test_step_finished_process_rejected;
          Alcotest.test_case "bad pid" `Quick test_bad_pid_rejected;
          Alcotest.test_case "bad object" `Quick test_bad_object_rejected;
          Alcotest.test_case "finish unwinds" `Quick test_finish_unwinds_active_processes;
          Alcotest.test_case "trace pp" `Quick test_trace_pp_smoke ] );
      ( "simval",
        Alcotest.test_case "order" `Quick test_simval_order
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_equal_reflexive; prop_compare_antisym; prop_max_is_upper_bound ] ) ]
