(* Tests of the native (OCaml 5 Atomic + Domain) backend: the same
   functorized algorithms running truly in parallel.  These are stress
   tests of safety properties that survive real parallelism: no lost
   increments, the maximum always wins, snapshots converge. *)

let domains_available = max 2 (min 4 (Domain.recommended_domain_count ()))

let in_domains k f =
  let ds = List.init k (fun i -> Domain.spawn (fun () -> f i)) in
  List.iter Domain.join ds

(* {1 Max registers} *)

let test_maxreg_parallel impl () =
  let k = domains_available in
  let per_domain = 2_000 in
  let reg =
    Harness.Instances.maxreg_native ~n:k ~bound:(k * per_domain * 2) impl
  in
  in_domains k (fun i ->
      for v = 1 to per_domain do
        reg.write_max ~pid:i ((v * k) + i)
      done);
  (* the global maximum is the largest value any domain wrote *)
  let expected = (per_domain * k) + (k - 1) in
  Alcotest.(check int)
    (Harness.Instances.maxreg_name impl)
    expected (reg.read_max ())

let test_maxreg_readers_and_writers impl () =
  let k = domains_available in
  let writers = max 1 (k - 1) in
  let bound = 100_000 in
  let reg = Harness.Instances.maxreg_native ~n:k ~bound impl in
  let monotone = Atomic.make true in
  in_domains k (fun i ->
      if i < writers then
        for v = 1 to 1_000 do
          reg.write_max ~pid:i ((v * writers) + i)
        done
      else begin
        (* reader: observed values must be non-decreasing *)
        let last = ref 0 in
        for _ = 1 to 5_000 do
          let v = reg.read_max () in
          if v < !last then Atomic.set monotone false;
          last := v
        done
      end);
  Alcotest.(check bool)
    (Harness.Instances.maxreg_name impl ^ " reads monotone")
    true (Atomic.get monotone)

(* {1 Counters} *)

let test_counter_parallel impl () =
  let k = domains_available in
  let per_domain = 1_000 in
  let c =
    Harness.Instances.counter_native ~n:k ~bound:(k * per_domain * 2) impl
  in
  in_domains k (fun i ->
      for _ = 1 to per_domain do
        c.increment ~pid:i
      done);
  Alcotest.(check int)
    (Harness.Instances.counter_name impl)
    (k * per_domain) (c.read ())

let test_counter_reads_bounded impl () =
  (* While increments are in flight, every read is between 0 and the total;
     after joining, the read is exact. *)
  let k = domains_available in
  let writers = max 1 (k - 1) in
  let per_domain = 500 in
  let c =
    Harness.Instances.counter_native ~n:k ~bound:(writers * per_domain * 2) impl
  in
  let in_range = Atomic.make true in
  in_domains k (fun i ->
      if i < writers then
        for _ = 1 to per_domain do
          c.increment ~pid:i
        done
      else
        for _ = 1 to 2_000 do
          let v = c.read () in
          if v < 0 || v > writers * per_domain then Atomic.set in_range false
        done);
  Alcotest.(check bool) "reads in range" true (Atomic.get in_range);
  Alcotest.(check int) "final exact" (writers * per_domain) (c.read ())

(* {1 Snapshots} *)

let test_snapshot_parallel impl () =
  let k = domains_available in
  let per_domain = 300 in
  let s = Harness.Instances.snapshot_native ~n:k impl in
  in_domains k (fun i ->
      for v = 1 to per_domain do
        s.update ~pid:i v
      done);
  Alcotest.(check (array int))
    (Harness.Instances.snapshot_name impl)
    (Array.make k per_domain) (s.scan ())

let test_snapshot_segments_monotone () =
  (* Writers publish increasing values; concurrent scans must never see a
     segment decrease (a scan regression would indicate torn propagation in
     the f-array tree). *)
  let k = domains_available in
  let writers = max 1 (k - 1) in
  let s = Harness.Instances.snapshot_native ~n:k Harness.Instances.Farray_snapshot in
  let ok = Atomic.make true in
  in_domains k (fun i ->
      if i < writers then
        for v = 1 to 500 do
          s.update ~pid:i v
        done
      else begin
        let last = Array.make k 0 in
        for _ = 1 to 2_000 do
          let snap = s.scan () in
          Array.iteri
            (fun j v -> if v < last.(j) then Atomic.set ok false else last.(j) <- v)
            snap
        done
      end);
  Alcotest.(check bool) "segments monotone across scans" true (Atomic.get ok)

let maxreg_impls =
  [ Harness.Instances.Algorithm_a;
    Harness.Instances.Aac_maxreg;
    Harness.Instances.B1_maxreg;
    Harness.Instances.Cas_maxreg ]

let counter_impls =
  [ Harness.Instances.Aac_counter;
    Harness.Instances.Farray_counter;
    Harness.Instances.Naive_counter ]

let snapshot_impls =
  [ Harness.Instances.Afek; Harness.Instances.Farray_snapshot ]

let () =
  Alcotest.run "native"
    [ ( "maxreg",
        List.map
          (fun i ->
            Alcotest.test_case (Harness.Instances.maxreg_name i) `Quick
              (test_maxreg_parallel i))
          maxreg_impls
        @ List.map
            (fun i ->
              Alcotest.test_case
                (Harness.Instances.maxreg_name i ^ " monotone reads")
                `Quick (test_maxreg_readers_and_writers i))
            maxreg_impls );
      ( "counter",
        List.map
          (fun i ->
            Alcotest.test_case (Harness.Instances.counter_name i) `Quick
              (test_counter_parallel i))
          counter_impls
        @ List.map
            (fun i ->
              Alcotest.test_case
                (Harness.Instances.counter_name i ^ " bounded reads")
                `Quick (test_counter_reads_bounded i))
            counter_impls );
      ( "snapshot",
        List.map
          (fun i ->
            Alcotest.test_case (Harness.Instances.snapshot_name i) `Quick
              (test_snapshot_parallel i))
          snapshot_impls
        @ [ Alcotest.test_case "segments monotone" `Quick
              test_snapshot_segments_monotone ] ) ]
