(* A reproduction finding.

   Algorithm A as printed (line 16) returns from WriteMax(v) as soon as the
   selected leaf already holds a value >= v.  On a TL leaf, that value can
   only have been written by a *concurrent* WriteMax(v) that may not have
   propagated it to the root yet — so the completed WriteMax can be
   invisible to a subsequent ReadMax, violating linearizability.  (The
   paper's own Invariant 1 silently assumes every completing WriteMax
   executed line 17.)

   This file exhibits the violating schedule against the literal algorithm,
   checks the linearizability checker flags it, and checks our repaired
   variant (help by propagating before returning) passes the same schedule
   and stays within the O(log v) write bound. *)

open Memsim

let scenario ~literal =
  let n = 4 in
  let session = Session.create () in
  let impl =
    if literal then Harness.Instances.Algorithm_a_literal
    else Harness.Instances.Algorithm_a
  in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n ~bound:16 impl)
  in
  let sched = Scheduler.create session in
  (* p0: WriteMax(2) — value 2 < N-1 lands in the B1 subtree.  Stalled
     right after writing the leaf, before any propagation. *)
  let p0 = Scheduler.spawn sched (fun () -> reg.write_max ~pid:0 2) in
  (* p1: WriteMax(2) — sees the leaf already at 2. *)
  let p1 = Scheduler.spawn sched (fun () -> reg.write_max ~pid:1 2) in
  (* p2: ReadMax after p1 completed. *)
  let result = ref (-1) in
  let p2 = Scheduler.spawn sched (fun () -> result := reg.read_max ()) in
  (* p0 takes exactly 2 steps: read leaf, write leaf.  Then stalls. *)
  ignore (Scheduler.step sched p0);
  ignore (Scheduler.step sched p0);
  (* p1 runs to completion. *)
  Scheduler.run_solo sched p1;
  Alcotest.(check bool) "p1 completed" true (Scheduler.is_finished sched p1);
  (* p2 reads. *)
  Scheduler.run_solo sched p2;
  let p1_steps = Scheduler.steps_of sched p1 in
  let trace = Scheduler.finish sched in
  ignore p0;
  (!result, p1_steps, trace)

let test_literal_version_violates () =
  let result, p1_steps, trace = scenario ~literal:true in
  (* The literal algorithm returns after a single leaf read... *)
  Alcotest.(check int) "p1 returned after one step" 1 p1_steps;
  (* ...so the completed WriteMax(2) is invisible to the reader. *)
  Alcotest.(check int) "reader misses the completed write" 0 result;
  Alcotest.(check bool) "history is NOT linearizable" false
    (Linearize.Checker.check_trace (module Linearize.Spec.Max_register) ~n:4
       trace)

let test_repaired_version_ok () =
  let result, p1_steps, trace = scenario ~literal:false in
  (* The repaired algorithm helps by propagating: O(log v) extra steps. *)
  Alcotest.(check bool) "p1 paid the propagation" true (p1_steps > 1);
  Alcotest.(check int) "reader sees the completed write" 2 result;
  Alcotest.(check bool) "history is linearizable" true
    (Linearize.Checker.check_trace (module Linearize.Spec.Max_register) ~n:4
       trace)

(* The repair preserves the complexity claim: the helping path costs no
   more than the writing path. *)
let test_repair_preserves_step_bound () =
  let n = 256 in
  let session = Session.create () in
  let reg = Harness.Instances.maxreg_sim session ~n ~bound:1024 Harness.Instances.Algorithm_a in
  List.iter
    (fun v ->
      (* First write pays leaf + propagation. *)
      Session.reset_steps session;
      reg.write_max ~pid:0 v;
      let first = Session.direct_steps session in
      (* Duplicate write triggers the helping path. *)
      Session.reset_steps session;
      reg.write_max ~pid:1 v;
      let help = Session.direct_steps session in
      Alcotest.(check bool)
        (Printf.sprintf "v=%d: help %d <= first %d" v help first)
        true (help <= first))
    [ 1; 3; 10; 50; 200; 254 ]

(* Under the *same* schedules, literal and repaired versions agree whenever
   no duplicate-value write occurs — regression that the repair changes
   nothing else. *)
let prop_no_duplicates_agree =
  QCheck.Test.make ~name:"literal = repaired without duplicate values"
    ~count:80
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 4) (int_range 0 15)))
    (fun (seed, values) ->
      let distinct = List.sort_uniq Int.compare values in
      let n = max 2 (List.length distinct) in
      let run impl =
        let session = Session.create () in
        let reg = Harness.Instances.maxreg_sim session ~n ~bound:16 impl in
        let sched = Scheduler.create session in
        List.iteri
          (fun pid v ->
            ignore (Scheduler.spawn sched (fun () -> reg.write_max ~pid v)))
          distinct;
        Scheduler.run_random ~seed ~max_events:100_000 sched;
        let trace = Scheduler.finish sched in
        (reg.read_max (), Array.length (Trace.events trace))
      in
      run Harness.Instances.Algorithm_a
      = run Harness.Instances.Algorithm_a_literal)

let () =
  Alcotest.run "paper_deviation"
    [ ( "algorithm A line 16",
        [ Alcotest.test_case "literal version violates linearizability" `Quick
            test_literal_version_violates;
          Alcotest.test_case "repaired version is linearizable" `Quick
            test_repaired_version_ok;
          Alcotest.test_case "repair preserves step bound" `Quick
            test_repair_preserves_step_bound;
          QCheck_alcotest.to_alcotest prop_no_duplicates_agree ] ) ]
