(* Tests for the snapshot implementations: sequential semantics, step
   complexity envelopes, linearizability under random schedules, the
   borrowed-scan path of Afek et al., and the Corollary 1 reduction. *)

open Memsim

let impls =
  [ Harness.Instances.Double_collect;
    Harness.Instances.Afek;
    Harness.Instances.Farray_snapshot ]

let make ~n impl =
  let session = Session.create () in
  (session, Harness.Instances.snapshot_sim session ~n impl)

let test_sequential impl () =
  let _, (s : Snapshots.Snapshot.instance) = make ~n:4 impl in
  Alcotest.(check (array int)) "initial zeros" [| 0; 0; 0; 0 |] (s.scan ());
  s.update ~pid:1 5;
  s.update ~pid:3 9;
  Alcotest.(check (array int)) "two updates" [| 0; 5; 0; 9 |] (s.scan ());
  s.update ~pid:1 2;
  Alcotest.(check (array int)) "segment overwritten" [| 0; 2; 0; 9 |] (s.scan ())

let prop_sequential impl =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: sequential = last write per segment"
             (Harness.Instances.snapshot_name impl))
    ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 0 25) (pair (int_range 0 3) (int_range 0 99)))
    (fun updates ->
      let _, (s : Snapshots.Snapshot.instance) = make ~n:4 impl in
      let model = Array.make 4 0 in
      List.for_all
        (fun (pid, v) ->
          s.update ~pid v;
          model.(pid) <- v;
          s.scan () = model)
        updates)

(* {1 Step complexity} *)

let scan_steps session (s : Snapshots.Snapshot.instance) =
  Session.reset_steps session;
  ignore (s.scan ());
  Session.direct_steps session

let update_steps session (s : Snapshots.Snapshot.instance) ~pid v =
  Session.reset_steps session;
  s.update ~pid v;
  Session.direct_steps session

let ceil_log2 n =
  let rec go d v = if v >= n then d else go (d + 1) (2 * v) in
  go 0 1

let test_farray_snapshot_steps () =
  List.iter
    (fun n ->
      let session, s = make ~n Harness.Instances.Farray_snapshot in
      s.update ~pid:0 1;
      Alcotest.(check int) (Printf.sprintf "n=%d scan O(1)" n) 1 (scan_steps session s);
      let u = update_steps session s ~pid:(n - 1) 7 in
      let bound = 1 + (8 * ceil_log2 n) in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d update %d <= %d" n u bound)
        true (u <= bound))
    [ 2; 4; 16; 64; 256 ]

let test_double_collect_steps () =
  List.iter
    (fun n ->
      let session, s = make ~n Harness.Instances.Double_collect in
      Alcotest.(check int) (Printf.sprintf "n=%d update O(1)" n) 2
        (update_steps session s ~pid:0 5);
      (* uncontended scan: two identical collects *)
      Alcotest.(check int) (Printf.sprintf "n=%d scan 2N" n) (2 * n) (scan_steps session s))
    [ 2; 4; 16; 64 ]

let test_afek_steps_quadratic_envelope () =
  List.iter
    (fun n ->
      let session, s = make ~n Harness.Instances.Afek in
      (* solo: scan = 2 collects = 2N reads; update = scan + read + write *)
      Alcotest.(check int) (Printf.sprintf "n=%d scan" n) (2 * n) (scan_steps session s);
      Alcotest.(check int)
        (Printf.sprintf "n=%d update" n)
        ((2 * n) + 2)
        (update_steps session s ~pid:0 5))
    [ 2; 4; 16; 64 ]

(* {1 Linearizability under random schedules} *)

let check_linearizable impl ~seed ~n ~updaters =
  let session = Session.create () in
  let s =
    Harness.Annotate.snapshot session
      (Harness.Instances.snapshot_sim session ~n impl)
  in
  let rng = Random.State.make [| seed |] in
  let sched = Scheduler.create session in
  for pid = 0 to n - 1 do
    let v = 1 + Random.State.int rng 9 in
    ignore
      (Scheduler.spawn sched (fun () ->
           if pid < updaters then s.update ~pid v else ignore (s.scan ())))
  done;
  Scheduler.run_random ~seed ~max_events:500_000 sched;
  let trace = Scheduler.finish sched in
  Linearize.Checker.check_trace (module Linearize.Spec.Snapshot) ~n trace

let test_linearizable impl () =
  for seed = 1 to 50 do
    if not (check_linearizable impl ~seed ~n:4 ~updaters:2) then
      Alcotest.failf "%s: non-linearizable at seed %d"
        (Harness.Instances.snapshot_name impl)
        seed
  done

(* {1 The borrowed-scan path of Afek et al.}

   A scanner is interleaved with one process updating repeatedly; after the
   updater moves twice the scanner must borrow its embedded scan and
   terminate — wait-freedom under interference, where double-collect
   starves. *)
let test_afek_borrowed_scan () =
  let n = 3 in
  let session = Session.create () in
  let s = Harness.Instances.snapshot_sim session ~n Harness.Instances.Afek in
  s.update ~pid:1 7;
  let sched = Scheduler.create session in
  let result = ref [||] in
  let scanner = Scheduler.spawn sched (fun () -> result := s.scan ()) in
  let updater =
    Scheduler.spawn sched (fun () ->
        for v = 1 to 50 do
          s.update ~pid:0 v
        done)
  in
  (* Interleave: one scanner step, then one whole update. *)
  let guard = ref 0 in
  while Scheduler.is_active sched scanner && !guard < 10_000 do
    incr guard;
    ignore (Scheduler.step sched scanner);
    if Scheduler.is_active sched updater then begin
      (* let the updater complete a whole update between scanner steps *)
      let before = Scheduler.steps_of sched updater in
      let per_update = (2 * n) + 2 in
      while
        Scheduler.is_active sched updater
        && Scheduler.steps_of sched updater < before + per_update
      do
        ignore (Scheduler.step sched updater)
      done
    end
  done;
  Alcotest.(check bool) "scanner finished despite interference" true
    (Scheduler.is_finished sched scanner);
  ignore (Scheduler.finish sched);
  Alcotest.(check int) "borrowed scan sees segment 1" 7 !result.(1)

(* Double-collect starves under the same interference (obstruction-freedom
   only) — the contrast motivating helping. *)
let test_double_collect_starves () =
  let n = 2 in
  let session = Session.create () in
  let module M = (val Smem.Sim_memory.bind session) in
  let module S = Snapshots.Double_collect.Make (M) in
  let snap = S.create ~max_collects:50 ~n () in
  let sched = Scheduler.create session in
  let starved = ref false in
  let scanner =
    Scheduler.spawn sched (fun () ->
        try ignore (S.scan snap) with S.Starved -> starved := true)
  in
  let updater =
    Scheduler.spawn sched (fun () ->
        for v = 1 to 10_000 do
          S.update snap ~pid:0 v
        done)
  in
  (* Adversary: let the updater write between every pair of collects. *)
  let guard = ref 0 in
  while Scheduler.is_active sched scanner && !guard < 500_000 do
    incr guard;
    ignore (Scheduler.step sched scanner);
    if Scheduler.is_active sched updater then begin
      ignore (Scheduler.step sched updater);
      if Scheduler.is_active sched updater then
        ignore (Scheduler.step sched updater)
    end
  done;
  ignore (Scheduler.finish sched);
  Alcotest.(check bool) "scan starved" true !starved

(* {1 Corollary 1: counter from snapshot} *)

let test_counter_reduction impl () =
  let session = Session.create () in
  let c =
    Harness.Instances.counter_sim session ~n:4 ~bound:64
      (Harness.Instances.Snapshot_counter impl)
  in
  for _ = 1 to 5 do
    c.increment ~pid:0
  done;
  c.increment ~pid:2;
  Alcotest.(check int) "six increments" 6 (c.read ())

let per_impl name f =
  List.map
    (fun impl ->
      Alcotest.test_case
        (Printf.sprintf "%s %s" (Harness.Instances.snapshot_name impl) name)
        `Quick (f impl))
    impls

let () =
  Alcotest.run "snapshots"
    [ ( "sequential",
        per_impl "basic" test_sequential
        @ List.map (fun i -> QCheck_alcotest.to_alcotest (prop_sequential i)) impls );
      ( "steps",
        [ Alcotest.test_case "farray: scan O(1), update O(log N)" `Quick
            test_farray_snapshot_steps;
          Alcotest.test_case "double-collect: update O(1), scan O(N)" `Quick
            test_double_collect_steps;
          Alcotest.test_case "afek solo costs" `Quick test_afek_steps_quadratic_envelope ] );
      ("linearizability", per_impl "random schedules" test_linearizable);
      ( "liveness",
        [ Alcotest.test_case "afek borrows and terminates" `Quick test_afek_borrowed_scan;
          Alcotest.test_case "double-collect starves" `Quick test_double_collect_starves ] );
      ( "corollary 1",
        List.map
          (fun impl ->
            Alcotest.test_case
              (Printf.sprintf "counter via %s" (Harness.Instances.snapshot_name impl))
              `Quick (test_counter_reduction impl))
          impls ) ]
