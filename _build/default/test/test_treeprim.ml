(* Tests for tree shapes: complete trees, B1 trees (Figure 4's components)
   and the propagate primitive. *)

open Treeprim

let mk_id =
  let c = ref 0 in
  fun () -> incr c; !c

let ceil_log2 n =
  let rec go d v = if v >= n then d else go (d + 1) (2 * v) in
  go 0 1

(* {1 Complete trees} *)

let test_complete_leaf_count () =
  List.iter
    (fun n ->
      let _, leaves = Tree_shape.complete ~mk:mk_id ~nleaves:n () in
      Alcotest.(check int) (Printf.sprintf "n=%d" n) n (Array.length leaves))
    [ 1; 2; 3; 4; 5; 7; 8; 9; 16; 33; 100 ]

let test_complete_depth_bound () =
  List.iter
    (fun n ->
      let root, leaves = Tree_shape.complete ~mk:mk_id ~nleaves:n () in
      Array.iter
        (fun leaf ->
          let d = Tree_shape.depth leaf in
          Alcotest.(check bool)
            (Printf.sprintf "depth %d <= ceil log2 %d" d n)
            true
            (d <= ceil_log2 n);
          Alcotest.(check bool) "root reachable" true (Tree_shape.root leaf == root))
        leaves)
    [ 1; 2; 3; 5; 8; 13; 64; 100 ]

let test_complete_parent_links () =
  let root, leaves = Tree_shape.complete ~mk:mk_id ~nleaves:8 () in
  Array.iter
    (fun leaf ->
      Alcotest.(check bool) "leaf has no children" true
        (leaf.Tree_shape.left = None && leaf.Tree_shape.right = None))
    leaves;
  let rec check (n : int Tree_shape.node) =
    (match n.Tree_shape.left with
     | Some c ->
       Alcotest.(check bool) "left child's parent" true
         (match c.Tree_shape.parent with Some p -> p == n | None -> false);
       check c
     | None -> ());
    match n.Tree_shape.right with
    | Some c ->
      Alcotest.(check bool) "right child's parent" true
        (match c.Tree_shape.parent with Some p -> p == n | None -> false);
      check c
    | None -> ()
  in
  check root

(* {1 B1 trees} *)

let test_b1_leaf_count () =
  List.iter
    (fun n ->
      let _, leaves = Tree_shape.b1 ~mk:mk_id ~nleaves:n in
      Alcotest.(check int) (Printf.sprintf "n=%d" n) n (Array.length leaves))
    [ 1; 2; 3; 4; 7; 8; 15; 16; 31; 100; 1000 ]

(* The defining property of the B1 tree: leaf v at depth O(log v). *)
let test_b1_depth_logarithmic () =
  let _, leaves = Tree_shape.b1 ~mk:mk_id ~nleaves:4096 in
  Array.iteri
    (fun v leaf ->
      let d = Tree_shape.depth leaf in
      let bound = (2 * ceil_log2 (v + 2)) + 2 in
      Alcotest.(check bool)
        (Printf.sprintf "leaf %d: depth %d <= %d" v d bound)
        true (d <= bound))
    leaves

let test_b1_early_leaves_shallow () =
  let _, leaves = Tree_shape.b1 ~mk:mk_id ~nleaves:65536 in
  (* leaf 0 must be very shallow regardless of tree size *)
  Alcotest.(check bool) "leaf 0 depth <= 2" true
    (Tree_shape.depth leaves.(0) <= 2);
  Alcotest.(check bool) "leaf 1 depth <= 4" true
    (Tree_shape.depth leaves.(1) <= 4);
  (* and the deepest leaf is still logarithmic *)
  let deepest = Tree_shape.depth leaves.(65535) in
  Alcotest.(check bool) "deepest still logarithmic" true (deepest <= 34)

let prop_b1_depth =
  QCheck.Test.make ~name:"b1: depth(leaf v) <= 2 log2(v+2) + 2" ~count:50
    QCheck.(int_range 1 2000)
    (fun n ->
      let _, leaves = Tree_shape.b1 ~mk:mk_id ~nleaves:n in
      Array.length leaves = n
      && Array.for_all Fun.id
           (Array.mapi
              (fun v leaf ->
                Tree_shape.depth leaf <= (2 * ceil_log2 (v + 2)) + 2)
              leaves))

(* {1 Propagate} *)

module M = Smem.Atomic_memory
module P = Propagate.Make (M)

let test_propagate_max_reaches_root () =
  let mk () = M.make Memsim.Simval.Bot in
  let root, leaves = Tree_shape.complete ~mk ~nleaves:8 () in
  M.write leaves.(5).Tree_shape.data (Memsim.Simval.Int 42);
  P.propagate ~combine:Memsim.Simval.max_val leaves.(5);
  Alcotest.(check bool) "root holds max" true
    (Memsim.Simval.equal (M.read root.Tree_shape.data) (Memsim.Simval.Int 42))

let test_propagate_keeps_maximum () =
  let mk () = M.make Memsim.Simval.Bot in
  let root, leaves = Tree_shape.complete ~mk ~nleaves:4 () in
  let write_and_propagate i v =
    M.write leaves.(i).Tree_shape.data (Memsim.Simval.Int v);
    P.propagate ~combine:Memsim.Simval.max_val leaves.(i)
  in
  write_and_propagate 0 10;
  write_and_propagate 3 7;
  write_and_propagate 2 9;
  Alcotest.(check bool) "root still 10" true
    (Memsim.Simval.equal (M.read root.Tree_shape.data) (Memsim.Simval.Int 10));
  write_and_propagate 1 99;
  Alcotest.(check bool) "root now 99" true
    (Memsim.Simval.equal (M.read root.Tree_shape.data) (Memsim.Simval.Int 99))

let () =
  Alcotest.run "treeprim"
    [ ( "complete",
        [ Alcotest.test_case "leaf count" `Quick test_complete_leaf_count;
          Alcotest.test_case "depth bound" `Quick test_complete_depth_bound;
          Alcotest.test_case "parent links" `Quick test_complete_parent_links ] );
      ( "b1",
        [ Alcotest.test_case "leaf count" `Quick test_b1_leaf_count;
          Alcotest.test_case "log depth" `Quick test_b1_depth_logarithmic;
          Alcotest.test_case "early leaves shallow" `Quick test_b1_early_leaves_shallow;
          QCheck_alcotest.to_alcotest prop_b1_depth ] );
      ( "propagate",
        [ Alcotest.test_case "reaches root" `Quick test_propagate_max_reaches_root;
          Alcotest.test_case "keeps maximum" `Quick test_propagate_keeps_maximum ] ) ]
