(* Baseline diffing for bench trajectories: match the rows of a fresh
   sweep against a committed BENCH_NATIVE.json by
   (structure, impl, backend, domains, read_pct) and report throughput
   ratios.  Deliberately warn-only — bench numbers from shared CI
   runners are too noisy to gate on (the per-row [rsd] field quantifies
   exactly how noisy), so the report flags suspects for a human.

   Works on parsed {!Json_out.t} documents rather than [Bench_native.row]
   so both sides go through the same schema accessors; v2/v3 baselines
   (no combining rows; no adaptive rows) still diff fine — unmatched
   rows are counted, not errors.

   Matching is keyed through a [Hashtbl] (one pass over the baseline,
   one over the current rows) rather than a per-row [List.find_opt]
   scan: the old O(rows²) polymorphic-equality walk also matched only
   the first of duplicated baseline keys {e silently} — duplicates now
   produce a warning (the first occurrence still wins, keeping the
   matching deterministic).  Everything downstream ({!report},
   {!regression_count}) is a view over ONE {!analyze} result, so the
   documents are parsed and diffed exactly once however many views a
   caller takes. *)

type entry = {
  structure : string;
  impl : string;
  backend : string;
  domains : int;
  read_pct : int;
  mops : float;
}

let entry_of_row j =
  let str k = Option.bind (Json_out.member k j) Json_out.as_string in
  let int k = Option.bind (Json_out.member k j) Json_out.as_int in
  let flt k = Option.bind (Json_out.member k j) Json_out.as_float in
  match
    (str "structure", str "impl", str "backend", int "domains",
     int "read_pct", flt "mops")
  with
  | Some structure, Some impl, Some backend, Some domains, Some read_pct,
    Some mops ->
    Some { structure; impl; backend; domains; read_pct; mops }
  | _ -> None

let entries_of_doc doc =
  match Option.bind (Json_out.member "rows" doc) Json_out.as_list with
  | None -> []
  | Some rows -> List.filter_map entry_of_row rows

let schema_of_doc doc =
  Option.bind (Json_out.member "schema" doc) Json_out.as_string

let key e = (e.structure, e.impl, e.backend, e.domains, e.read_pct)

let key_name e =
  Printf.sprintf "%s/%s %s d=%d r=%d%%" e.structure e.impl e.backend e.domains
    e.read_pct

type delta = {
  cur : entry;
  base_mops : float;
  ratio : float;  (* current / baseline *)
}

type diff_result = {
  matched : delta list;
  dup_keys : string list;
  baseline_only : string list;
  current_only : string list;
  bad_baseline : string list;
}

let diff ~baseline ~current =
  let tbl = Hashtbl.create (max 16 (2 * List.length baseline)) in
  let seen = Hashtbl.create 16 in
  let dups = ref [] in
  List.iter
    (fun b ->
      let k = key b in
      if Hashtbl.mem tbl k then dups := key_name b :: !dups
      else Hashtbl.add tbl k b)
    baseline;
  (* every row unmatched on either side is reported, not skipped: a
     baseline-only row means coverage silently shrank, a current-only
     row means the baseline predates the cell — both are exactly the
     cases a human diffing trajectories wants flagged *)
  let cur_only = ref [] in
  let bad = ref [] in
  let deltas =
    List.filter_map
      (fun c ->
        match Hashtbl.find_opt tbl (key c) with
        | Some b when Float.is_finite b.mops && b.mops > 0. ->
          Hashtbl.replace seen (key c) ();
          Some { cur = c; base_mops = b.mops; ratio = c.mops /. b.mops }
        | Some _ ->
          Hashtbl.replace seen (key c) ();
          bad := key_name c :: !bad;
          None
        | None ->
          cur_only := key_name c :: !cur_only;
          None)
      current
  in
  let base_only =
    Hashtbl.fold
      (fun k b acc -> if Hashtbl.mem seen k then acc else key_name b :: acc)
      tbl []
  in
  { matched = deltas;
    dup_keys = List.rev !dups;
    baseline_only = List.sort compare base_only;
    current_only = List.rev !cur_only;
    bad_baseline = List.rev !bad }

(* Flag threshold: a quarter off the baseline.  Of the same order as the
   rsd flag in {!Bench_native} — tighter than the noise floor would just
   cry wolf. *)
let default_threshold = 0.25

type analysis = {
  warnings : string list;  (* schema surprises + duplicate baseline keys *)
  baseline_rows : int;
  current_rows : int;
  deltas : delta list;
  regressions : delta list;
  improvements : delta list;
  threshold : float;
}

let analyze ?(threshold = default_threshold) ~baseline ~current () =
  let warnings = ref [] in
  let warn s = warnings := s :: !warnings in
  (match schema_of_doc baseline with
   | Some ("bench-native/v2" | "bench-native/v3" | "bench-native/v4") -> ()
   | Some s ->
     warn (Printf.sprintf "unrecognized schema %S; matching rows anyway" s)
   | None -> warn "no schema field; matching rows anyway");
  let base = entries_of_doc baseline in
  let cur = entries_of_doc current in
  let d = diff ~baseline:base ~current:cur in
  let deltas = d.matched in
  List.iter
    (fun k ->
      warn
        (Printf.sprintf "duplicate baseline key %s; first occurrence wins" k))
    d.dup_keys;
  (* asymmetric rows: visible, warn-only.  Summarized past a handful so
     a v3 baseline diffed against a v4 run (a whole backend column of
     new rows) stays readable. *)
  let warn_keys what keys =
    match keys with
    | [] -> ()
    | _ ->
      let n = List.length keys in
      let shown, rest =
        if n <= 6 then (keys, 0)
        else (List.filteri (fun i _ -> i < 6) keys, n - 6)
      in
      warn
        (Printf.sprintf "%d row(s) %s: %s%s" n what
           (String.concat ", " shown)
           (if rest = 0 then "" else Printf.sprintf " … and %d more" rest))
  in
  warn_keys "only in the baseline (cell no longer measured)" d.baseline_only;
  warn_keys "only in the current run (no baseline to diff against)"
    d.current_only;
  warn_keys "with unusable baseline mops (zero or non-finite)"
    d.bad_baseline;
  { warnings = List.rev !warnings;
    baseline_rows = List.length base;
    current_rows = List.length cur;
    deltas;
    regressions = List.filter (fun d -> d.ratio < 1. -. threshold) deltas;
    improvements = List.filter (fun d -> d.ratio > 1. +. threshold) deltas;
    threshold }

let render a =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter (fun w -> pf "baseline: %s\n" w) a.warnings;
  pf "baseline: %d/%d rows matched against %d baseline rows\n"
    (List.length a.deltas) a.current_rows a.baseline_rows;
  let line tag d =
    pf "  %s %s: %.2f -> %.2f Mops/s (%+.1f%%)\n" tag (key_name d.cur)
      d.base_mops d.cur.mops
      (100. *. (d.ratio -. 1.))
  in
  List.iter (line "REGRESSION") a.regressions;
  List.iter (line "improved  ") a.improvements;
  if a.regressions = [] then
    pf "baseline: no regressions beyond %.0f%% (warn-only check)\n"
      (100. *. a.threshold)
  else
    pf
      "baseline: %d row(s) regressed beyond %.0f%% — check rsd before \
       believing them (warn-only check)\n"
      (List.length a.regressions) (100. *. a.threshold);
  Buffer.contents buf

let report ?threshold ~baseline ~current () =
  render (analyze ?threshold ~baseline ~current ())

let regression_count (a : analysis) = List.length a.regressions
