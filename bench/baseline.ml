(* Baseline diffing for bench trajectories: match the rows of a fresh
   sweep against a committed BENCH_NATIVE.json by
   (structure, impl, backend, domains, read_pct) and report throughput
   ratios.  Deliberately warn-only — bench numbers from shared CI
   runners are too noisy to gate on (the per-row [rsd] field quantifies
   exactly how noisy), so the report flags suspects for a human.

   Works on parsed {!Json_out.t} documents rather than [Bench_native.row]
   so both sides go through the same schema accessors; v2 baselines
   (no combining rows, no [rsd]) still diff fine — unmatched rows are
   counted, not errors. *)

type entry = {
  structure : string;
  impl : string;
  backend : string;
  domains : int;
  read_pct : int;
  mops : float;
}

let entry_of_row j =
  let str k = Option.bind (Json_out.member k j) Json_out.as_string in
  let int k = Option.bind (Json_out.member k j) Json_out.as_int in
  let flt k = Option.bind (Json_out.member k j) Json_out.as_float in
  match
    (str "structure", str "impl", str "backend", int "domains",
     int "read_pct", flt "mops")
  with
  | Some structure, Some impl, Some backend, Some domains, Some read_pct,
    Some mops ->
    Some { structure; impl; backend; domains; read_pct; mops }
  | _ -> None

let entries_of_doc doc =
  match Option.bind (Json_out.member "rows" doc) Json_out.as_list with
  | None -> []
  | Some rows -> List.filter_map entry_of_row rows

let schema_of_doc doc =
  Option.bind (Json_out.member "schema" doc) Json_out.as_string

let key e = (e.structure, e.impl, e.backend, e.domains, e.read_pct)

type delta = {
  cur : entry;
  base_mops : float;
  ratio : float;  (* current / baseline *)
}

let diff ~baseline ~current =
  List.filter_map
    (fun c ->
      match List.find_opt (fun b -> key b = key c) baseline with
      | Some b when Float.is_finite b.mops && b.mops > 0. ->
        Some { cur = c; base_mops = b.mops; ratio = c.mops /. b.mops }
      | _ -> None)
    current

(* Flag threshold: a quarter off the baseline.  Of the same order as the
   rsd flag in {!Bench_native} — tighter than the noise floor would just
   cry wolf. *)
let default_threshold = 0.25

let report ?(threshold = default_threshold) ~baseline ~current () =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match schema_of_doc baseline with
   | Some ("bench-native/v2" | "bench-native/v3") -> ()
   | Some s -> pf "baseline: unrecognized schema %S; matching rows anyway\n" s
   | None -> pf "baseline: no schema field; matching rows anyway\n");
  let base = entries_of_doc baseline in
  let cur = entries_of_doc current in
  let deltas = diff ~baseline:base ~current:cur in
  let regressions =
    List.filter (fun d -> d.ratio < 1. -. threshold) deltas
  in
  let improvements =
    List.filter (fun d -> d.ratio > 1. +. threshold) deltas
  in
  pf "baseline: %d/%d rows matched against %d baseline rows\n"
    (List.length deltas) (List.length cur) (List.length base);
  let line tag d =
    pf "  %s %s/%s %s d=%d r=%d%%: %.2f -> %.2f Mops/s (%+.1f%%)\n" tag
      d.cur.structure d.cur.impl d.cur.backend d.cur.domains d.cur.read_pct
      d.base_mops d.cur.mops
      (100. *. (d.ratio -. 1.))
  in
  List.iter (line "REGRESSION") regressions;
  List.iter (line "improved  ") improvements;
  if regressions = [] then
    pf "baseline: no regressions beyond %.0f%% (warn-only check)\n"
      (100. *. threshold)
  else
    pf
      "baseline: %d row(s) regressed beyond %.0f%% — check rsd before \
       believing them (warn-only check)\n"
      (List.length regressions) (100. *. threshold);
  Buffer.contents buf

let regression_count ?(threshold = default_threshold) ~baseline ~current () =
  let deltas =
    diff ~baseline:(entries_of_doc baseline) ~current:(entries_of_doc current)
  in
  List.length (List.filter (fun d -> d.ratio < 1. -. threshold) deltas)
