(** Warn-only baseline diffing for bench-native trajectories: match a
    fresh sweep's JSON against a committed BENCH_NATIVE.json row-by-row
    on (structure, impl, backend, domains, read_pct) and report
    throughput ratios.  Accepts schema v2 or v3 baselines; unmatched
    rows (e.g. combining rows absent from a v2 baseline) are counted,
    never errors. *)

type entry = {
  structure : string;
  impl : string;
  backend : string;
  domains : int;
  read_pct : int;
  mops : float;
}

type delta = {
  cur : entry;
  base_mops : float;
  ratio : float;  (** current / baseline *)
}

val entries_of_doc : Json_out.t -> entry list
(** The well-formed members of a trajectory's ["rows"]; rows missing a
    key field are skipped. *)

val diff : baseline:entry list -> current:entry list -> delta list
(** Current entries that match a baseline entry with finite positive
    [mops]. *)

val default_threshold : float
(** 0.25 — the same order as the rsd flag; tighter would cry wolf. *)

val report :
  ?threshold:float -> baseline:Json_out.t -> current:Json_out.t -> unit ->
  string
(** Human-readable diff: matched-row count, per-row REGRESSION /
    improved lines beyond [threshold], and a warn-only summary line. *)

val regression_count :
  ?threshold:float -> baseline:Json_out.t -> current:Json_out.t -> unit -> int
(** Number of matched rows below [1 - threshold] of their baseline, for
    callers that want to branch (the CLI and CI never fail on it). *)
