(** Warn-only baseline diffing for bench-native trajectories: match a
    fresh sweep's JSON against a committed BENCH_NATIVE.json row-by-row
    on (structure, impl, backend, domains, read_pct) and report
    throughput ratios.  Accepts schema v2, v3 or v4 baselines; unmatched
    rows (e.g. adaptive rows absent from a v3 baseline) are counted,
    never errors.

    Matching goes through a [Hashtbl] built in one pass over the
    baseline — duplicated baseline keys are warned about (the first
    occurrence wins) instead of matched silently — and {!report} /
    {!regression_count} are both views over a single {!analyze} result,
    so the documents are parsed and diffed exactly once. *)

type entry = {
  structure : string;
  impl : string;
  backend : string;
  domains : int;
  read_pct : int;
  mops : float;
}

type delta = {
  cur : entry;
  base_mops : float;
  ratio : float;  (** current / baseline *)
}

val entries_of_doc : Json_out.t -> entry list
(** The well-formed members of a trajectory's ["rows"]; rows missing a
    key field are skipped. *)

type diff_result = {
  matched : delta list;
      (** current entries matching a baseline entry with finite
          positive [mops] *)
  dup_keys : string list;
      (** duplicated baseline keys (first occurrence wins) *)
  baseline_only : string list;
      (** baseline keys with no current row — coverage shrank *)
  current_only : string list;
      (** current keys with no baseline row — new cells *)
  bad_baseline : string list;
      (** matched keys whose baseline [mops] is zero or non-finite *)
}

val diff : baseline:entry list -> current:entry list -> diff_result
(** One pass over each side; every row unmatched on either side is
    reported in the result (and surfaced as an {!analysis} warning),
    never silently skipped. *)

val default_threshold : float
(** 0.25 — the same order as the rsd flag; tighter would cry wolf. *)

type analysis = {
  warnings : string list;
      (** schema surprises, duplicate baseline keys, and asymmetric
          rows (baseline-only / current-only / unusable-mops) *)
  baseline_rows : int;
  current_rows : int;
  deltas : delta list;  (** the matched rows *)
  regressions : delta list;  (** matched rows below [1 - threshold] *)
  improvements : delta list;  (** matched rows above [1 + threshold] *)
  threshold : float;
}

val analyze :
  ?threshold:float -> baseline:Json_out.t -> current:Json_out.t -> unit ->
  analysis
(** Parse and diff both documents once; every other entry point is a
    view over this result. *)

val render : analysis -> string
(** Human-readable diff: warnings, matched-row count, per-row
    REGRESSION / improved lines beyond the threshold, and a warn-only
    summary line. *)

val report :
  ?threshold:float -> baseline:Json_out.t -> current:Json_out.t -> unit ->
  string
(** [render (analyze ...)] — the one-shot convenience the CLI uses. *)

val regression_count : analysis -> int
(** Number of regressed rows in an existing analysis, for callers that
    want to branch (the CLI and CI never fail on it). *)
