(* The tradeoff-dial sweep behind bin/bench.exe --dial: the
   {!Counters.Dial_counter} family measured at every dial point, in two
   independent sections.

   Steps section (exact, deterministic): each dial's counter is built
   over a Memsim session and its solo shared-memory step counts are read
   off {!Memsim.Session.direct_steps} — a read costs Θ(f) block-root
   collections, an increment O(log(N/f)) in-block propagation.  These
   are the numbers Theorem 1 trades against each other; the table places
   them next to the C1-certified envelope so the measured frontier and
   the statically certified one can be compared line by line (the
   envelope columns are injected by the caller — the lint library knows
   the budgets, this module only measures).

   Throughput section (noisy, honest): the zero-alloc unboxed twin of
   each dial point swept over domain counts and read shares through the
   same batched-closure harness as {!Bench_native}.  All dial points go
   through the same indirect instance-record call path, so the ratios
   between dials are fair even though the absolute numbers sit below
   what a fused closure would show.  The expected picture is the paper's
   frontier: read-heavy mixes favour small f (cheap reads), update-heavy
   mixes favour large f (shallow propagation), with the crossover
   sliding monotonically in the read share. *)

type config = {
  n : int;              (* leaves; also the pid space of the boxed family *)
  domain_counts : int list;
  read_shares : int list;
  seconds : float;
  trials : int;
  quick : bool;
}

let config ?(quick = false) ?(n = 64) ?(max_domains = 4) ?seconds ?trials
    ?(read_shares = [ 0; 50; 90; 99 ]) () =
  let rec powers d = if d > max_domains then [] else d :: powers (2 * d) in
  { n;
    domain_counts = (match powers 1 with [] -> [ 1 ] | ds -> ds);
    read_shares;
    seconds =
      (match seconds with Some s -> s | None -> if quick then 0.05 else 0.2);
    trials = (match trials with Some t -> t | None -> if quick then 1 else 3);
    quick }

(* {1 Steps section} *)

type step_row = {
  dial : Treeprim.Dial.t;
  f : int;              (* block count at this n *)
  read_steps : int;
  inc_steps : int;      (* max over all pids (tail block may be shallower) *)
}

let steps_rows ~n =
  List.map
    (fun dial ->
      let session = Memsim.Session.create () in
      let c = Harness.Instances.counter_dial_sim session ~n dial in
      (* warm the structure so the steps measured are steady-state *)
      c.Counters.Counter.increment ~pid:0;
      Memsim.Session.reset_steps session;
      ignore (c.Counters.Counter.read () : int);
      let read_steps = Memsim.Session.direct_steps session in
      let inc_steps = ref 0 in
      for pid = 0 to n - 1 do
        Memsim.Session.reset_steps session;
        c.Counters.Counter.increment ~pid;
        inc_steps := max !inc_steps (Memsim.Session.direct_steps session)
      done;
      { dial; f = Treeprim.Dial.width ~n dial; read_steps;
        inc_steps = !inc_steps })
    Treeprim.Dial.all

(* [envelope dial] returns certified (read, increment) step ceilings to
   print alongside, when the caller has them (bin/bench.exe injects
   {!Lint.Budgets} + {!Lint.Summary.envelope}; benchkit itself stays
   free of the lint dependency). *)
let steps_table ?envelope ~n rows =
  let header =
    [ "dial"; "f"; "read steps"; "inc steps" ]
    @ (match envelope with
       | None -> []
       | Some _ -> [ "read env"; "inc env" ])
  in
  let body =
    List.map
      (fun r ->
        [ Treeprim.Dial.name r.dial;
          string_of_int r.f;
          string_of_int r.read_steps;
          string_of_int r.inc_steps ]
        @ (match envelope with
           | None -> []
           | Some env ->
             let re, ie = env r.dial in
             [ string_of_int re; string_of_int ie ]))
      rows
  in
  Harness.Tables.render
    ~title:(Printf.sprintf "solo steps, N = %d (Memsim, exact)" n)
    ~header body

(* {1 Throughput section} *)

type row = {
  t_dial : Treeprim.Dial.t;
  domains : int;
  read_pct : int;
  mops : float;
  trial_mops : float list;
  rsd : float;
}

let pattern_slots = 128
let bmask = pattern_slots - 1
let batch = 64

let read_pattern ~read_pct =
  let reads = ((read_pct * pattern_slots) + 50) / 100 in
  Array.init pattern_slots (fun i ->
      ((i + 1) * reads / pattern_slots) - (i * reads / pattern_slots) = 1)

let cell ~cfg ~dial ~domains ~read_pct =
  let c = Harness.Instances.counter_native_dial ~n:cfg.n dial in
  let read = c.Counters.Counter.read and increment = c.Counters.Counter.increment in
  let pat = read_pattern ~read_pct in
  let op d i =
    for j = i to i + batch - 1 do
      if pat.(j land bmask) then ignore (read () : int) else increment ~pid:d
    done
  in
  let trial () =
    Harness.Throughput.run_batched ~domains ~seconds:cfg.seconds ~batch ~op ()
    /. 1e6
  in
  ignore (trial () : float);  (* warmup, discarded *)
  let ms = List.init cfg.trials (fun _ -> trial ()) in
  let sorted = List.sort compare ms in
  let median = List.nth sorted (List.length sorted / 2) in
  let mean = List.fold_left ( +. ) 0. ms /. float_of_int (List.length ms) in
  let var =
    List.fold_left (fun a m -> a +. ((m -. mean) ** 2.)) 0. ms
    /. float_of_int (List.length ms)
  in
  let rsd = if mean > 0. then sqrt var /. mean else 0. in
  { t_dial = dial; domains; read_pct; mops = median; trial_mops = ms; rsd }

let sweep ?(progress = fun (_ : string) -> ()) cfg =
  List.concat_map
    (fun dial ->
      List.concat_map
        (fun domains ->
          List.map
            (fun read_pct ->
              progress
                (Printf.sprintf "dial=%s d=%d r=%d%%"
                   (Treeprim.Dial.name dial) domains read_pct);
              cell ~cfg ~dial ~domains ~read_pct)
            cfg.read_shares)
        cfg.domain_counts)
    Treeprim.Dial.all

let table rows =
  let body =
    List.map
      (fun r ->
        [ Treeprim.Dial.name r.t_dial;
          string_of_int r.domains;
          string_of_int r.read_pct;
          Printf.sprintf "%.2f" r.mops;
          Printf.sprintf "%.0f%%" (100. *. r.rsd) ])
      rows
  in
  Harness.Tables.render ~title:"dial sweep (Mops/s, median)"
    ~header:[ "dial"; "domains"; "read%"; "Mops/s"; "rsd" ]
    body

(* {1 JSON trajectory} *)

let to_json ~cfg ~steps rows =
  let open Json_out in
  Obj
    [ ("schema", Str "bench-dial/v1");
      ("n", Int cfg.n);
      ("quick", Bool cfg.quick);
      ( "steps",
        List
          (Stdlib.List.map
             (fun s ->
               Obj
                 [ ("dial", Str (Treeprim.Dial.name s.dial));
                   ("f", Int s.f);
                   ("read_steps", Int s.read_steps);
                   ("inc_steps", Int s.inc_steps) ])
             steps) );
      ( "rows",
        List
          (Stdlib.List.map
             (fun r ->
               Obj
                 [ ("dial", Str (Treeprim.Dial.name r.t_dial));
                   ("domains", Int r.domains);
                   ("read_pct", Int r.read_pct);
                   ("mops", Float r.mops);
                   ("rsd", Float r.rsd);
                   ( "trial_mops",
                     List (Stdlib.List.map (fun m -> Float m) r.trial_mops) ) ])
             rows) ) ]
