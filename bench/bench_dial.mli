(** The tradeoff-dial sweep (bin/bench.exe --dial): Theorem 1's
    read/update frontier measured, not just certified.

    Two independent sections: exact solo step counts per dial point over
    Memsim (read Θ(f) vs increment O(log(N/f))), and a noisy-but-honest
    throughput sweep of the unboxed twins over domains × read share —
    the crossover between dial points slides monotonically with the read
    share, which is the paper's tradeoff made operational. *)

type config = {
  n : int;
  domain_counts : int list;
  read_shares : int list;
  seconds : float;
  trials : int;
  quick : bool;
}

val config :
  ?quick:bool ->
  ?n:int ->
  ?max_domains:int ->
  ?seconds:float ->
  ?trials:int ->
  ?read_shares:int list ->
  unit ->
  config

(** {1 Exact solo steps (Memsim)} *)

type step_row = {
  dial : Treeprim.Dial.t;
  f : int;
  read_steps : int;
  inc_steps : int;  (** max over all pids *)
}

val steps_rows : n:int -> step_row list

val steps_table :
  ?envelope:(Treeprim.Dial.t -> int * int) ->
  n:int -> step_row list -> string
(** [envelope dial] supplies certified (read, increment) step ceilings
    as extra columns — injected by the caller so benchkit itself does
    not depend on the lint library. *)

(** {1 Throughput sweep (unboxed twins)} *)

type row = {
  t_dial : Treeprim.Dial.t;
  domains : int;
  read_pct : int;
  mops : float;  (** median over trials *)
  trial_mops : float list;
  rsd : float;
}

val sweep : ?progress:(string -> unit) -> config -> row list
val table : row list -> string

val to_json : cfg:config -> steps:step_row list -> row list -> Json_out.t
(** Schema ["bench-dial/v1"]: a ["steps"] section and a ["rows"]
    section. *)
