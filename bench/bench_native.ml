(* The domain-scaling benchmark behind bin/bench.exe: every int-specialized
   implementation, boxed (Simval Atomic) vs unboxed (padded int Atomic) vs
   flat-combining vs contention-adaptive backend, swept over domain counts
   and read shares, with shared warmup and interleaved trials.  This is
   where the constant-factor story of the paper's O(1)-read structures is
   measured honestly: same algorithms, same step counts, only the
   base-object representation (and, for the combining/adaptive backends,
   the update submission protocol) changes.

   Each cell runs three kinds of pass:

   - throughput trials over the plain fused closures (no clocks, no
     metrics in the loop — the numbers of record), timed by
     {!Harness.Throughput.run_batched}'s measured barrier->stop-ack
     window.  All cells are constructed up front and their trials run in
     interleaved rounds (round-major, not cell-major), so slow drift of
     the host — thermal state, background load — lands evenly across
     cells instead of correlating with sweep order, and every trial after
     the first inherits the previous rounds as extra warmup of the same
     closure and structure;
   - a latency pass clocking the same fused closures per batched call
     into per-domain log-bucketed histograms (all backends, so the
     percentiles compare like the throughput medians do);
   - on the unboxed and combining backends, a metrics pass running the
     workload through the instrumented instances of {!Harness.Instances}
     to collect contention counts (CAS attempts/failures, refresh rounds,
     helps, and for combining: batches, combined ops, eliminations,
     combiner-lock acquisitions).  All passes are separate so the
     observability layer can never bias the throughput rows.

   Results are emitted both as a table (stdout) and as machine-readable
   JSON (BENCH_NATIVE.json, schema "bench-native/v4") so future changes
   have a perf trajectory to regress against (see {!Baseline}). *)

type config = {
  domain_counts : int list;
  read_shares : int list;  (* percent of operations that are reads *)
  seconds : float;         (* per timed trial *)
  warmup_seconds : float;
  trials : int;
  quick : bool;
}

let config ?(quick = false) ?(max_domains = 4) ?seconds ?trials
    ?(read_shares = [ 0; 50; 90; 99 ]) () =
  let rec powers d = if d > max_domains then [] else d :: powers (2 * d) in
  let domain_counts = match powers 1 with [] -> [ 1 ] | ds -> ds in
  { domain_counts;
    read_shares;
    seconds = (match seconds with Some s -> s | None -> if quick then 0.05 else 0.3);
    warmup_seconds = (if quick then 0.02 else 0.15);
    trials = (match trials with Some t -> t | None -> if quick then 1 else 3);
    quick }

type row = {
  structure : string;
  impl : string;
  backend : string;  (* "boxed" | "unboxed" | "combining" | "adaptive" *)
  domains : int;
  read_pct : int;
  mops : float;        (* median over trials *)
  trial_mops : float list;
  rsd : float;         (* relative stddev of the trials: stddev/mean *)
  oversubscribed : bool;  (* domains > recommended_domains of this host *)
  (* adaptive dispatch (adaptive rows only; cumulative over the cell's
     warmup + trials + latency passes, which share one instance) *)
  epoch_flips : int option;
  time_in_combining_pct : float option;
  (* metered pass *)
  lat_p50 : float;     (* ns per op *)
  lat_p95 : float;
  lat_p99 : float;
  lat_max : float;
  lat_samples : int;   (* batched-call samples behind the percentiles *)
  metrics : Obs.Metrics.totals option;  (* None on the boxed backend *)
}

(* {1 Workload construction}

   Honest measurement of sub-10ns operations needs the loop body to be the
   operation itself, so each (implementation, backend) pair gets a fused,
   batched closure written out by hand:

   - the read/write mix is a precomputed 128-slot Bresenham pattern,
     decided per op by one array load and a mask (an integer division
     would cost as much as the unboxed operation being measured);
   - the implementation is called *directly* — the unboxed and combining
     modules are concrete, so those compile to static calls, while the
     boxed side's indirect functor call is part of the representation
     cost being measured.  Any generic wrapper (instance record,
     first-class module) would add an indirect call to both sides and
     dilute the ratio;
   - each closure performs [batch] operations per invocation, so the
     harness's stop-flag read and bookkeeping amortize to noise
     ({!Harness.Throughput.run_batched}).

   The modules measured are exactly the ones the registry
   ({!Harness.Instances.maxreg_native} / [_native_fast] /
   [_native_combining]) hands out; only the call path is flattened here.
   The metered pass, by contrast, goes through the registry's
   [_native_metered] / [_native_combining_metered] instances — indirect
   calls, which is fine: its numbers are distributions and counts, not
   the throughput of record. *)

let pattern_slots = 128
let mask = pattern_slots - 1
let batch = 64

(* Evenly interleaved deterministic mix: read share quantized to
   [reads]/128 (error at most 1/256: 99% -> 127/128 = 99.2%).  The same
   pattern drives both backends, so the schedules compared are
   identical. *)
let read_pattern ~read_pct =
  let reads = ((read_pct * pattern_slots) + 50) / 100 in
  Array.init pattern_slots (fun i ->
      ((i + 1) * reads / pattern_slots) - (i * reads / pattern_slots) = 1)

(* A batch covers exactly half the pattern ([i0] advances by [batch],
   [i0 land batch] picks slots 0..63 or 64..127), so its read count is
   one of two constants — from which the adaptive closures derive a
   whole flush window's read/update split as one constant, settling
   dispatch accounting in one {!Harness.Adaptive} [tick_many] call per
   window instead of paying bookkeeping per op. *)
let half_reads pattern =
  let count lo =
    let acc = ref 0 in
    for j = lo to lo + batch - 1 do
      if Array.unsafe_get pattern j then incr acc
    done;
    !acc
  in
  (count 0, count batch)

(* The adaptive closures pay neither [tick_many] (two seq_cst stores)
   nor the [combining_now] cross-module call per batch — both still
   show at sub-3ns/op.  Consecutive batches strictly alternate pattern
   halves (the drivers advance [i0] by [batch] from 0), so a
   [flush_batches] window's read/update split is a per-cell constant;
   each domain only counts batches in a plain accumulator slot and,
   every [flush_batches] batches, settles accounting with one
   [tick_many] and refreshes its cached mode.  Slots are one 64-byte
   line per domain (single-writer, so plain stores are race-free):
   [d * acc_stride] = batches since flush, [+1] = cached mode (1 =
   combining), [+2] = stale tally (algorithm-a).  The cached mode can
   lag a flip by up to [flush_batches * batch] ops — one epoch's worth,
   the dispatcher's own granularity — and either update path is
   linearizable in either mode (both mutate the same structure). *)
let acc_stride = 8
let flush_batches = 16

type kind =
  | Maxreg of Harness.Instances.maxreg_impl
  | Counter of Harness.Instances.counter_impl

type backend = [ `Boxed | `Unboxed | `Combining | `Adaptive ]

(* [mk] returns the fused closure plus, for a live adaptive instance,
   the report thunk ({!Harness.Adaptive.report}: current mode, epoch
   count, flips, combining-ops share) — [None] everywhere else,
   including the adaptive backend's create-time solo dispatch at
   [domains = 1], where the dispatcher is compiled away entirely. *)
type target = {
  structure : string;
  impl_name : string;
  kind : kind;
  has_combining : bool;  (* adaptive exists exactly where combining does *)
  mk :
    backend:backend ->
    n:int ->
    domains:int ->
    pattern:bool array ->
    (int -> int -> unit) * (unit -> Harness.Adaptive.report) option;
}

module AB = Maxreg.Algorithm_a.Make (Smem.Atomic_memory)
module BB = Maxreg.B1_maxreg.Make (Smem.Atomic_memory)
module CB = Maxreg.Cas_maxreg.Make (Smem.Atomic_memory)
module FB = Counters.Farray_counter.Make (Smem.Atomic_memory)
module NB = Counters.Naive_counter.Make (Smem.Atomic_memory)
module AU = Maxreg.Algorithm_a.Unboxed
module BU = Maxreg.B1_maxreg.Unboxed
module CU = Maxreg.Cas_maxreg.Unboxed
module FU = Counters.Farray_counter.Unboxed
module NU = Counters.Naive_counter.Unboxed
module AC = Harness.Combining.Alg_a
module CC = Harness.Combining.Cas
module FC = Harness.Combining.Farray_c
module NC = Harness.Combining.Naive_c
module AD = Harness.Adaptive.Alg_a
module CD = Harness.Adaptive.Cas
module FD = Harness.Adaptive.Farray_c
module ND = Harness.Adaptive.Naive_c

(* Max registers write strictly increasing, domain-disjoint values
   [i * domains + d]: every write really updates (monotone streams), and
   the CAS-based propagation paths stay ABA-free.  Note the combining
   backend sees the same stream, so its eliminations count races lost to
   other domains, not stale replays. *)

let alg_a_target =
  { structure = "max-register";
    impl_name = Harness.Instances.maxreg_name Harness.Instances.Algorithm_a;
    kind = Maxreg Harness.Instances.Algorithm_a;
    has_combining = true;
    mk =
      (fun ~backend ~n ~domains ~pattern ->
        (* One closure builder shared by the unboxed backend and the
           d=1 combining/adaptive cells (create-time solo dispatch, see
           Harness.Combining and Harness.Adaptive: one participating
           domain can never contend, so those backends at domains = 1
           *are* the plain unboxed structure).  Sharing the builder
           means those rows run the SAME compiled loop and differ only
           in data — a separate textual copy of an identical loop can
           land on different code alignment and skew sub-3ns cells by
           ~10%. *)
        let unboxed_cell () =
          let reg = AU.create ~n () in
          ( (fun d i0 ->
              for k = 0 to batch - 1 do
                let i = i0 + k in
                if Array.unsafe_get pattern (i land mask) then
                  ignore (AU.read_max reg : int)
                else AU.write_max reg ~pid:d ((i * domains) + d)
              done),
            None )
        in
        match backend with
        | `Boxed ->
          let reg = AB.create ~n () in
          ( (fun d i0 ->
              for k = 0 to batch - 1 do
                let i = i0 + k in
                if Array.unsafe_get pattern (i land mask) then
                  ignore (AB.read_max reg : int)
                else AB.write_max reg ~pid:d ((i * domains) + d)
              done),
            None )
        | `Unboxed -> unboxed_cell ()
        | (`Combining | `Adaptive) when domains = 1 -> unboxed_cell ()
        | `Combining ->
          let reg = AC.create ~n ~domains () in
          ( (fun d i0 ->
              for k = 0 to batch - 1 do
                let i = i0 + k in
                if Array.unsafe_get pattern (i land mask) then
                  ignore (AC.read_max reg : int)
                else AC.write_max reg ~pid:d ((i * domains) + d)
              done),
            None )
        | `Adaptive ->
          (* batch-granular dispatch: cached mode per batch, raw path
             in the inner loop, accounting settled per flush window
             (see [flush_batches] above).  The plain loop tallies stale
             writes (value already <= max: one root load) — the signal
             that flips this structure to combining where elimination
             wins. *)
          let reg = AD.create ~n ~domains () in
          let raw = AD.unboxed reg in
          let r0, r1 = half_reads pattern in
          let f_reads = flush_batches / 2 * (r0 + r1) in
          let f_updates = (flush_batches * batch) - f_reads in
          let acc = Array.make (domains * acc_stride) 0 in
          ( (fun d i0 ->
              let a = d * acc_stride in
              if Array.unsafe_get acc (a + 1) = 1 then
                for k = 0 to batch - 1 do
                  let i = i0 + k in
                  if Array.unsafe_get pattern (i land mask) then
                    ignore (AU.read_max raw : int)
                  else AD.write_combining reg ~pid:d ((i * domains) + d)
                done
              else begin
                let stale = ref 0 in
                for k = 0 to batch - 1 do
                  let i = i0 + k in
                  if Array.unsafe_get pattern (i land mask) then
                    ignore (AU.read_max raw : int)
                  else begin
                    let v = (i * domains) + d in
                    if v <= AU.read_max raw then incr stale;
                    AU.write_max raw ~pid:d v
                  end
                done;
                Array.unsafe_set acc (a + 2)
                  (Array.unsafe_get acc (a + 2) + !stale)
              end;
              let b = Array.unsafe_get acc a + 1 in
              if b = flush_batches then begin
                AD.tick_many reg ~pid:d ~reads:f_reads ~updates:f_updates
                  ~stale:(Array.unsafe_get acc (a + 2));
                Array.unsafe_set acc a 0;
                Array.unsafe_set acc (a + 2) 0;
                Array.unsafe_set acc (a + 1)
                  (if AD.combining_now reg then 1 else 0)
              end
              else Array.unsafe_set acc a b),
            Some (fun () -> AD.report reg) )) }

let b1_target =
  { structure = "max-register";
    impl_name = Harness.Instances.maxreg_name Harness.Instances.B1_maxreg;
    kind = Maxreg Harness.Instances.B1_maxreg;
    has_combining = false;  (* idempotent switch writes don't batch *)
    mk =
      (fun ~backend ~n ~domains ~pattern ->
        match backend with
        | `Boxed ->
          ignore n;
          let reg = BB.create () in
          ( (fun d i0 ->
              for k = 0 to batch - 1 do
                let i = i0 + k in
                if Array.unsafe_get pattern (i land mask) then
                  ignore (BB.read_max reg : int)
                else BB.write_max reg ~pid:d ((i * domains) + d)
              done),
            None )
        | `Unboxed ->
          let reg = BU.create () in
          ( (fun d i0 ->
              for k = 0 to batch - 1 do
                let i = i0 + k in
                if Array.unsafe_get pattern (i land mask) then
                  ignore (BU.read_max reg : int)
                else BU.write_max reg ~pid:d ((i * domains) + d)
              done),
            None )
        | `Combining | `Adaptive ->
          invalid_arg "b1-maxreg has no combining/adaptive backend") }

let cas_target =
  { structure = "max-register";
    impl_name = Harness.Instances.maxreg_name Harness.Instances.Cas_maxreg;
    kind = Maxreg Harness.Instances.Cas_maxreg;
    has_combining = true;
    mk =
      (fun ~backend ~n ~domains ~pattern ->
        ignore n;
        (* shared for the same code-placement reason as algorithm-a *)
        let unboxed_cell () =
          let reg = CU.create () in
          ( (fun d i0 ->
              for k = 0 to batch - 1 do
                let i = i0 + k in
                if Array.unsafe_get pattern (i land mask) then
                  ignore (CU.read_max reg : int)
                else CU.write_max reg ~pid:d ((i * domains) + d)
              done),
            None )
        in
        match backend with
        | `Boxed ->
          let reg = CB.create () in
          ( (fun d i0 ->
              for k = 0 to batch - 1 do
                let i = i0 + k in
                if Array.unsafe_get pattern (i land mask) then
                  ignore (CB.read_max reg : int)
                else CB.write_max reg ~pid:d ((i * domains) + d)
              done),
            None )
        | `Unboxed -> unboxed_cell ()
        | (`Combining | `Adaptive) when domains = 1 -> unboxed_cell ()
        | `Combining ->
          let reg = CC.create ~domains () in
          ( (fun d i0 ->
              for k = 0 to batch - 1 do
                let i = i0 + k in
                if Array.unsafe_get pattern (i land mask) then
                  ignore (CC.read_max reg : int)
                else CC.write_max reg ~pid:d ((i * domains) + d)
              done),
            None )
        | `Adaptive ->
          (* batch-granular dispatch, as for algorithm-a; no stale
             tally (default_cas disables that trigger — a stale plain
             cas write is already one cheap load) *)
          let reg = CD.create ~domains () in
          let raw = CD.unboxed reg in
          let r0, r1 = half_reads pattern in
          let f_reads = flush_batches / 2 * (r0 + r1) in
          let f_updates = (flush_batches * batch) - f_reads in
          let acc = Array.make (domains * acc_stride) 0 in
          ( (fun d i0 ->
              let a = d * acc_stride in
              if Array.unsafe_get acc (a + 1) = 1 then
                for k = 0 to batch - 1 do
                  let i = i0 + k in
                  if Array.unsafe_get pattern (i land mask) then
                    ignore (CU.read_max raw : int)
                  else CD.write_combining reg ~pid:d ((i * domains) + d)
                done
              else
                for k = 0 to batch - 1 do
                  let i = i0 + k in
                  if Array.unsafe_get pattern (i land mask) then
                    ignore (CU.read_max raw : int)
                  else CU.write_max raw ~pid:d ((i * domains) + d)
                done;
              let b = Array.unsafe_get acc a + 1 in
              if b = flush_batches then begin
                CD.tick_many reg ~pid:d ~reads:f_reads ~updates:f_updates
                  ~stale:0;
                Array.unsafe_set acc a 0;
                Array.unsafe_set acc (a + 1)
                  (if CD.combining_now reg then 1 else 0)
              end
              else Array.unsafe_set acc a b),
            Some (fun () -> CD.report reg) )) }

let farray_target =
  { structure = "counter";
    impl_name =
      Harness.Instances.counter_name Harness.Instances.Farray_counter;
    kind = Counter Harness.Instances.Farray_counter;
    has_combining = true;
    mk =
      (fun ~backend ~n ~domains ~pattern ->
        (* shared for the same code-placement reason as algorithm-a *)
        let unboxed_cell () =
          let c = FU.create ~n () in
          ( (fun d i0 ->
              for k = 0 to batch - 1 do
                if Array.unsafe_get pattern ((i0 + k) land mask) then
                  ignore (FU.read c : int)
                else FU.increment c ~pid:d
              done),
            None )
        in
        match backend with
        | `Boxed ->
          let c = FB.create ~n in
          ( (fun d i0 ->
              for k = 0 to batch - 1 do
                if Array.unsafe_get pattern ((i0 + k) land mask) then
                  ignore (FB.read c : int)
                else FB.increment c ~pid:d
              done),
            None )
        | `Unboxed -> unboxed_cell ()
        | (`Combining | `Adaptive) when domains = 1 -> unboxed_cell ()
        | `Combining ->
          let c = FC.create ~n ~domains () in
          ( (fun d i0 ->
              for k = 0 to batch - 1 do
                if Array.unsafe_get pattern ((i0 + k) land mask) then
                  ignore (FC.read c : int)
                else FC.increment c ~pid:d
              done),
            None )
        | `Adaptive ->
          (* batch-granular dispatch, as for algorithm-a; counter
             increments are never stale *)
          let c = FD.create ~n ~domains () in
          let raw = FD.unboxed c in
          let r0, r1 = half_reads pattern in
          let f_reads = flush_batches / 2 * (r0 + r1) in
          let f_updates = (flush_batches * batch) - f_reads in
          let acc = Array.make (domains * acc_stride) 0 in
          ( (fun d i0 ->
              let a = d * acc_stride in
              if Array.unsafe_get acc (a + 1) = 1 then
                for k = 0 to batch - 1 do
                  if Array.unsafe_get pattern ((i0 + k) land mask) then
                    ignore (FU.read raw : int)
                  else FD.increment_combining c ~pid:d
                done
              else
                for k = 0 to batch - 1 do
                  if Array.unsafe_get pattern ((i0 + k) land mask) then
                    ignore (FU.read raw : int)
                  else FU.increment raw ~pid:d
                done;
              let b = Array.unsafe_get acc a + 1 in
              if b = flush_batches then begin
                FD.tick_many c ~pid:d ~reads:f_reads ~updates:f_updates;
                Array.unsafe_set acc a 0;
                Array.unsafe_set acc (a + 1)
                  (if FD.combining_now c then 1 else 0)
              end
              else Array.unsafe_set acc a b),
            Some (fun () -> FD.report c) )) }

let naive_target =
  { structure = "counter";
    impl_name = Harness.Instances.counter_name Harness.Instances.Naive_counter;
    kind = Counter Harness.Instances.Naive_counter;
    has_combining = true;  (* the measured control: protocol cost, no win *)
    mk =
      (fun ~backend ~n ~domains ~pattern ->
        (* shared for the same code-placement reason as algorithm-a *)
        let unboxed_cell () =
          let c = NU.create ~n () in
          ( (fun d i0 ->
              for k = 0 to batch - 1 do
                if Array.unsafe_get pattern ((i0 + k) land mask) then
                  ignore (NU.read c : int)
                else NU.increment c ~pid:d
              done),
            None )
        in
        match backend with
        | `Boxed ->
          let c = NB.create ~n in
          ( (fun d i0 ->
              for k = 0 to batch - 1 do
                if Array.unsafe_get pattern ((i0 + k) land mask) then
                  ignore (NB.read c : int)
                else NB.increment c ~pid:d
              done),
            None )
        | `Unboxed -> unboxed_cell ()
        | (`Combining | `Adaptive) when domains = 1 -> unboxed_cell ()
        | `Combining ->
          let c = NC.create ~n ~domains () in
          ( (fun d i0 ->
              for k = 0 to batch - 1 do
                if Array.unsafe_get pattern ((i0 + k) land mask) then
                  ignore (NC.read c : int)
                else NC.increment c ~pid:d
              done),
            None )
        | `Adaptive ->
          (* batch-granular dispatch, as for algorithm-a *)
          let c = ND.create ~n ~domains () in
          let raw = ND.unboxed c in
          let r0, r1 = half_reads pattern in
          let f_reads = flush_batches / 2 * (r0 + r1) in
          let f_updates = (flush_batches * batch) - f_reads in
          let acc = Array.make (domains * acc_stride) 0 in
          ( (fun d i0 ->
              let a = d * acc_stride in
              if Array.unsafe_get acc (a + 1) = 1 then
                for k = 0 to batch - 1 do
                  if Array.unsafe_get pattern ((i0 + k) land mask) then
                    ignore (NU.read raw : int)
                  else ND.increment_combining c ~pid:d
                done
              else
                for k = 0 to batch - 1 do
                  if Array.unsafe_get pattern ((i0 + k) land mask) then
                    ignore (NU.read raw : int)
                  else NU.increment raw ~pid:d
                done;
              let b = Array.unsafe_get acc a + 1 in
              if b = flush_batches then begin
                ND.tick_many c ~pid:d ~reads:f_reads ~updates:f_updates;
                Array.unsafe_set acc a 0;
                Array.unsafe_set acc (a + 1)
                  (if ND.combining_now c then 1 else 0)
              end
              else Array.unsafe_set acc a b),
            Some (fun () -> ND.report c) )) }

let targets =
  [ alg_a_target; b1_target; cas_target; farray_target; naive_target ]

let backends_of (t : target) : backend list =
  if t.has_combining then [ `Boxed; `Unboxed; `Combining; `Adaptive ]
  else [ `Boxed; `Unboxed ]

(* The metered closure: the same workload through the instrumented
   registry instances, recording [Op_read] per read here (the instance
   wrappers record [Op_update]; reads carry no pid so the domain-correct
   shard is only known at this call site). *)
let metered_op ~metrics ~kind ~n ~domains ~pattern =
  let bound = 1 lsl 20 in
  match kind with
  | Maxreg impl ->
    let inst =
      Option.get (Harness.Instances.maxreg_native_metered ~metrics ~n ~bound impl)
    in
    fun d i0 ->
      for k = 0 to batch - 1 do
        let i = i0 + k in
        if Array.unsafe_get pattern (i land mask) then begin
          Obs.Metrics.incr metrics ~domain:d Obs.Metrics.Op_read;
          ignore (inst.Maxreg.Max_register.read_max () : int)
        end
        else inst.Maxreg.Max_register.write_max ~pid:d ((i * domains) + d)
      done
  | Counter impl ->
    let inst =
      Option.get (Harness.Instances.counter_native_metered ~metrics ~n ~bound impl)
    in
    fun d i0 ->
      for k = 0 to batch - 1 do
        if Array.unsafe_get pattern ((i0 + k) land mask) then begin
          Obs.Metrics.incr metrics ~domain:d Obs.Metrics.Op_read;
          ignore (inst.Counters.Counter.read () : int)
        end
        else inst.Counters.Counter.increment ~pid:d
      done

(* Same, over the combining registry: returns the arena alongside so the
   caller can flush {!Smem.Combine.stats} into [metrics] after the run
   ({!Obs.Metrics.record_combine_stats}). *)
let metered_combining_op ~metrics ~kind ~n ~domains ~pattern =
  let bound = 1 lsl 20 in
  match kind with
  | Maxreg impl ->
    let inst, arena =
      Option.get
        (Harness.Instances.maxreg_native_combining_metered ~metrics ~n ~domains
           ~bound impl)
    in
    let op d i0 =
      for k = 0 to batch - 1 do
        let i = i0 + k in
        if Array.unsafe_get pattern (i land mask) then begin
          Obs.Metrics.incr metrics ~domain:d Obs.Metrics.Op_read;
          ignore (inst.Maxreg.Max_register.read_max () : int)
        end
        else inst.Maxreg.Max_register.write_max ~pid:d ((i * domains) + d)
      done
    in
    (op, arena)
  | Counter impl ->
    let inst, arena =
      Option.get
        (Harness.Instances.counter_native_combining_metered ~metrics ~n ~domains
           ~bound impl)
    in
    let op d i0 =
      for k = 0 to batch - 1 do
        if Array.unsafe_get pattern ((i0 + k) land mask) then begin
          Obs.Metrics.incr metrics ~domain:d Obs.Metrics.Op_read;
          ignore (inst.Counters.Counter.read () : int)
        end
        else inst.Counters.Counter.increment ~pid:d
      done
    in
    (op, arena)

(* Same, over the adaptive registry: [Op_read] recorded here feeds both
   the emitted metrics and the dispatcher's read-share signal (the
   metered adaptive instance shares this handle).  Returns the arena for
   the combine-stats flush. *)
let metered_adaptive_op ~metrics ~kind ~n ~domains ~pattern =
  let bound = 1 lsl 20 in
  match kind with
  | Maxreg impl ->
    let inst, arena, _report =
      Option.get
        (Harness.Instances.maxreg_native_adaptive_metered ~metrics ~n ~domains
           ~bound impl)
    in
    let op d i0 =
      for k = 0 to batch - 1 do
        let i = i0 + k in
        if Array.unsafe_get pattern (i land mask) then begin
          Obs.Metrics.incr metrics ~domain:d Obs.Metrics.Op_read;
          ignore (inst.Maxreg.Max_register.read_max () : int)
        end
        else inst.Maxreg.Max_register.write_max ~pid:d ((i * domains) + d)
      done
    in
    (op, arena)
  | Counter impl ->
    let inst, arena, _report =
      Option.get
        (Harness.Instances.counter_native_adaptive_metered ~metrics ~n ~domains
           ~bound impl)
    in
    let op d i0 =
      for k = 0 to batch - 1 do
        if Array.unsafe_get pattern ((i0 + k) land mask) then begin
          Obs.Metrics.incr metrics ~domain:d Obs.Metrics.Op_read;
          ignore (inst.Counters.Counter.read () : int)
        end
        else inst.Counters.Counter.increment ~pid:d
      done
    in
    (op, arena)

(* Trials can in principle produce NaN (a degenerate measurement window);
   drop non-finite samples before sorting — NaN has no consistent order
   under [compare], so it can scramble the sort — and average the two
   middle elements on even length.  (Taking the upper-middle element
   alone, as before, biased every even-trial-count median high.) *)
let median xs =
  match List.sort Float.compare (List.filter Float.is_finite xs) with
  | [] -> nan
  | sorted ->
    let n = List.length sorted in
    if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

(* Relative standard deviation of the trials (sample stddev / mean): the
   per-row noise figure of merit.  0 for fewer than two finite samples or
   a non-positive mean — those rows are degenerate, and the median/NaN
   path already exposes them. *)
let rsd xs =
  let s = Harness.Stats.summarize xs in
  if s.Harness.Stats.count < 2 || s.Harness.Stats.mean <= 0. then 0.
  else s.Harness.Stats.stddev /. s.Harness.Stats.mean

(* Trials noisier than this (stddev over a quarter of the mean) get
   flagged in the table; treat such rows as unreliable. *)
let rsd_flag_threshold = 0.25

let backend_name : backend -> string = function
  | `Boxed -> "boxed"
  | `Unboxed -> "unboxed"
  | `Combining -> "combining"
  | `Adaptive -> "adaptive"

(* Structures are sized once for the sweep's largest domain count (the
   usual benchmark convention: a structure built for P processes, of which
   [domains] are active), so single-domain rows exercise the same tree
   depths as the scaled rows rather than a degenerate one-leaf instance. *)
let structure_n cfg = List.fold_left max 1 cfg.domain_counts

(* {1 The sweep}

   All cells are built before any timing: the fused closure and its
   structure persist for the cell's whole life, so the warmup pass and
   every earlier trial round warm exactly the code and memory that later
   rounds measure (satellite fix for trial-to-trial variance: previously
   each cell ran its trials back-to-back right after a cold-ish start,
   and sweep-order drift correlated with the cell grid). *)

type cell = {
  c_target : target;
  c_backend : backend;
  c_domains : int;
  c_read_pct : int;
  c_pattern : bool array;
  c_op : int -> int -> unit;
  c_report : (unit -> Harness.Adaptive.report) option;
      (* the timed adaptive instance's dispatch report; None elsewhere *)
  mutable c_trials : float list;  (* reverse trial order *)
}

let make_cells cfg =
  let n = structure_n cfg in
  List.concat_map
    (fun target ->
      List.concat_map
        (fun backend ->
          List.concat_map
            (fun domains ->
              List.map
                (fun read_pct ->
                  let pattern = read_pattern ~read_pct in
                  let op, report = target.mk ~backend ~n ~domains ~pattern in
                  { c_target = target;
                    c_backend = backend;
                    c_domains = domains;
                    c_read_pct = read_pct;
                    c_pattern = pattern;
                    c_op = op;
                    c_report = report;
                    c_trials = [] })
                cfg.read_shares)
            cfg.domain_counts)
        (backends_of target))
    targets

(* Latency + metrics epilogue for one cell, after all trial rounds. *)
let finish_cell ~cfg ~recommended (c : cell) =
  let n = structure_n cfg in
  let hists = Array.init c.c_domains (fun _ -> Obs.Histogram.create ()) in
  ignore
    (Harness.Throughput.run_batched_latency ~domains:c.c_domains
       ~seconds:cfg.seconds ~batch ~hist:hists ~op:c.c_op ()
      : float);
  (* Metrics pass (unboxed and combining): the same workload through the
     instrumented registry instances.  Separate from the latency pass so
     the record sites and the instances' indirect calls never sit inside
     the clocked window. *)
  let metrics =
    match c.c_backend with
    | `Boxed -> None
    | `Unboxed ->
      let metrics = Obs.Metrics.create ~domains:c.c_domains () in
      let op_m =
        metered_op ~metrics ~kind:c.c_target.kind ~n ~domains:c.c_domains
          ~pattern:c.c_pattern
      in
      ignore
        (Harness.Throughput.run_batched ~domains:c.c_domains
           ~seconds:cfg.seconds ~batch ~op:op_m ()
          : float);
      Some (Obs.Metrics.totals metrics)
    | `Combining ->
      let metrics = Obs.Metrics.create ~domains:c.c_domains () in
      let op_m, arena =
        metered_combining_op ~metrics ~kind:c.c_target.kind ~n
          ~domains:c.c_domains ~pattern:c.c_pattern
      in
      ignore
        (Harness.Throughput.run_batched ~domains:c.c_domains
           ~seconds:cfg.seconds ~batch ~op:op_m ()
          : float);
      Obs.Metrics.record_combine_stats metrics ~domain:0
        (Smem.Combine.stats arena);
      Some (Obs.Metrics.totals metrics)
    | `Adaptive ->
      let metrics = Obs.Metrics.create ~domains:c.c_domains () in
      let op_m, arena =
        metered_adaptive_op ~metrics ~kind:c.c_target.kind ~n
          ~domains:c.c_domains ~pattern:c.c_pattern
      in
      ignore
        (Harness.Throughput.run_batched ~domains:c.c_domains
           ~seconds:cfg.seconds ~batch ~op:op_m ()
          : float);
      Obs.Metrics.record_combine_stats metrics ~domain:0
        (Smem.Combine.stats arena);
      Some (Obs.Metrics.totals metrics)
  in
  let h =
    Array.fold_left
      (fun acc h -> Obs.Histogram.merge acc h)
      (Obs.Histogram.create ()) hists
  in
  (* Dispatch report of the TIMED adaptive instance (cumulative over
     warmup + trials + the latency pass, which share it).  A solo
     adaptive cell (domains = 1, create-time dispatch to the plain
     structure) reports zero flips and an all-plain ops share — true by
     construction. *)
  let epoch_flips, time_in_combining_pct =
    match c.c_report with
    | Some r ->
      let rep = r () in
      ( Some rep.Harness.Adaptive.epoch_flips,
        Some rep.Harness.Adaptive.combining_ops_pct )
    | None ->
      if c.c_backend = `Adaptive then (Some 0, Some 0.) else (None, None)
  in
  let trial_mops = List.rev c.c_trials in
  { structure = c.c_target.structure;
    impl = c.c_target.impl_name;
    backend = backend_name c.c_backend;
    domains = c.c_domains;
    read_pct = c.c_read_pct;
    mops = median trial_mops;
    trial_mops;
    rsd = rsd trial_mops;
    oversubscribed = c.c_domains > recommended;
    epoch_flips;
    time_in_combining_pct;
    lat_p50 = Obs.Histogram.percentile h 50.;
    lat_p95 = Obs.Histogram.percentile h 95.;
    lat_p99 = Obs.Histogram.percentile h 99.;
    lat_max = float_of_int (Obs.Histogram.max_value h);
    lat_samples = Obs.Histogram.count h;
    metrics }

let sweep ?(progress = fun _ -> ()) cfg =
  let recommended = Harness.Throughput.recommended_domains () in
  List.iter
    (fun d ->
      if d > recommended then
        progress
          (Printf.sprintf
             "WARNING: domains=%d exceeds this host's recommended_domains=%d; \
              those rows time scheduler multiplexing too and are marked \
              oversubscribed"
             d recommended))
    cfg.domain_counts;
  let cells = make_cells cfg in
  progress (Printf.sprintf "warmup: %d cells" (List.length cells));
  List.iter
    (fun c ->
      ignore
        (Harness.Throughput.run_batched ~domains:c.c_domains
           ~seconds:cfg.warmup_seconds ~batch ~op:c.c_op ()
          : float))
    cells;
  for round = 1 to cfg.trials do
    progress (Printf.sprintf "trial round %d/%d" round cfg.trials);
    List.iter
      (fun c ->
        let m =
          Harness.Throughput.run_batched ~domains:c.c_domains
            ~seconds:cfg.seconds ~batch ~op:c.c_op ()
          /. 1e6
        in
        c.c_trials <- m :: c.c_trials)
      cells
  done;
  let last_group = ref "" in
  List.map
    (fun c ->
      let group =
        Printf.sprintf "latency+metrics: %s/%s (%s)" c.c_target.structure
          c.c_target.impl_name
          (backend_name c.c_backend)
      in
      if group <> !last_group then begin
        last_group := group;
        progress group
      end;
      finish_cell ~cfg ~recommended c)
    cells

(* {1 Reporting} *)

let table rows =
  Harness.Tables.render
    ~title:
      "Native domain-scaling throughput: boxed (Simval Atomic) vs unboxed \
       (padded int Atomic) vs flat-combining vs adaptive backends (Mops/s, \
       median of interleaved trials; rsd = stddev/mean, '!' over 0.25; '*' \
       marks oversubscribed domain counts; latency percentiles and CAS \
       failure rate from the metered pass; flips/comb% = adaptive epoch \
       flips and combining-mode ops share of the timed instance)"
    ~header:
      [ "structure"; "impl"; "backend"; "domains"; "read%"; "Mops/s"; "rsd";
        "p50ns"; "p99ns"; "cas-fail%"; "flips"; "comb%" ]
    (List.map
       (fun (r : row) ->
         [ r.structure; r.impl; r.backend;
           string_of_int r.domains ^ (if r.oversubscribed then "*" else "");
           string_of_int r.read_pct; Printf.sprintf "%.2f" r.mops;
           Printf.sprintf "%.2f%s" r.rsd
             (if r.rsd > rsd_flag_threshold then "!" else "");
           Printf.sprintf "%.0f" r.lat_p50;
           Printf.sprintf "%.0f" r.lat_p99;
           (match r.metrics with
            | None -> "-"
            | Some m ->
              Printf.sprintf "%.1f" (100. *. Obs.Metrics.cas_failure_rate m));
           (match r.epoch_flips with
            | None -> "-"
            | Some f -> string_of_int f);
           (match r.time_in_combining_pct with
            | None -> "-"
            | Some p -> Printf.sprintf "%.0f" p) ])
       rows)

let schema_version = "bench-native/v4"

let metrics_json (m : Obs.Metrics.totals) =
  Obs.Json_out.Obj
    [ ("cas_attempts", Obs.Json_out.Int m.cas_attempts);
      ("cas_failures", Obs.Json_out.Int m.cas_failures);
      ("cas_failure_rate", Obs.Json_out.Float (Obs.Metrics.cas_failure_rate m));
      ("refresh_rounds", Obs.Json_out.Int m.refresh_rounds);
      ("helps", Obs.Json_out.Int m.helps);
      ("op_reads", Obs.Json_out.Int m.op_reads);
      ("op_updates", Obs.Json_out.Int m.op_updates);
      ("fault_yields", Obs.Json_out.Int m.fault_yields);
      ("fault_gcs", Obs.Json_out.Int m.fault_gcs);
      ("fault_stalls", Obs.Json_out.Int m.fault_stalls);
      ("combined_ops", Obs.Json_out.Int m.combined_ops);
      ("batches", Obs.Json_out.Int m.batches);
      ("batch_max", Obs.Json_out.Int m.batch_max);
      ("eliminations", Obs.Json_out.Int m.eliminations);
      ("combiner_locks", Obs.Json_out.Int m.combiner_locks) ]

let to_json ~cfg rows =
  Json_out.Obj
    [ ("schema", Json_out.Str schema_version);
      ( "host",
        Json_out.Obj
          [ ("ocaml", Json_out.Str Sys.ocaml_version);
            ("word_size", Json_out.Int Sys.word_size);
            ( "recommended_domains",
              Json_out.Int (Harness.Throughput.recommended_domains ()) ) ] );
      ( "config",
        Json_out.Obj
          [ ("quick", Json_out.Bool cfg.quick);
            ("structure_n", Json_out.Int (structure_n cfg));
            ( "domain_counts",
              Json_out.List (List.map (fun d -> Json_out.Int d) cfg.domain_counts) );
            ( "read_shares",
              Json_out.List (List.map (fun s -> Json_out.Int s) cfg.read_shares) );
            ("seconds_per_trial", Json_out.Float cfg.seconds);
            ("warmup_seconds", Json_out.Float cfg.warmup_seconds);
            ("trials", Json_out.Int cfg.trials);
            ("batch", Json_out.Int batch) ] );
      ( "rows",
        Json_out.List
          (List.map
             (fun (r : row) ->
               Json_out.Obj
                 [ ("structure", Json_out.Str r.structure);
                   ("impl", Json_out.Str r.impl);
                   ("backend", Json_out.Str r.backend);
                   ("domains", Json_out.Int r.domains);
                   ("read_pct", Json_out.Int r.read_pct);
                   ("mops", Json_out.Float r.mops);
                   ( "trial_mops",
                     Json_out.List
                       (List.map (fun m -> Json_out.Float m) r.trial_mops) );
                   ("rsd", Json_out.Float r.rsd);
                   ("oversubscribed", Json_out.Bool r.oversubscribed);
                   ( "epoch_flips",
                     match r.epoch_flips with
                     | None -> Json_out.Null
                     | Some f -> Json_out.Int f );
                   ( "time_in_combining_pct",
                     match r.time_in_combining_pct with
                     | None -> Json_out.Null
                     | Some p -> Json_out.Float p );
                   ( "latency_ns",
                     Json_out.Obj
                       [ ("p50", Json_out.Float r.lat_p50);
                         ("p95", Json_out.Float r.lat_p95);
                         ("p99", Json_out.Float r.lat_p99);
                         ("max", Json_out.Float r.lat_max);
                         ("samples", Json_out.Int r.lat_samples) ] );
                   ( "metrics",
                     match r.metrics with
                     | None -> Json_out.Null
                     | Some m -> metrics_json m ) ])
             rows) ) ]
