(* The domain-scaling benchmark behind bin/bench.exe: every int-specialized
   implementation, boxed (Simval Atomic) vs unboxed (padded int Atomic)
   backend, swept over domain counts and read shares, with warmup and
   repeated trials.  This is where the constant-factor story of the paper's
   O(1)-read structures is measured honestly: same algorithms, same step
   counts, only the base-object representation changes.

   Results are emitted both as a table (stdout) and as machine-readable
   JSON (BENCH_NATIVE.json, schema "bench-native/v1") so future changes
   have a perf trajectory to regress against. *)

type config = {
  domain_counts : int list;
  read_shares : int list;  (* percent of operations that are reads *)
  seconds : float;         (* per timed trial *)
  warmup_seconds : float;
  trials : int;
  quick : bool;
}

let config ?(quick = false) ?(max_domains = 4) ?seconds ?trials
    ?(read_shares = [ 0; 50; 90; 99 ]) () =
  let rec powers d = if d > max_domains then [] else d :: powers (2 * d) in
  let domain_counts = match powers 1 with [] -> [ 1 ] | ds -> ds in
  { domain_counts;
    read_shares;
    seconds = (match seconds with Some s -> s | None -> if quick then 0.05 else 0.3);
    warmup_seconds = (if quick then 0.02 else 0.1);
    trials = (match trials with Some t -> t | None -> if quick then 1 else 3);
    quick }

type row = {
  structure : string;
  impl : string;
  backend : string;  (* "boxed" | "unboxed" *)
  domains : int;
  read_pct : int;
  mops : float;        (* median over trials *)
  trial_mops : float list;
}

(* {1 Workload construction}

   Honest measurement of sub-10ns operations needs the loop body to be the
   operation itself, so each (implementation, backend) pair gets a fused,
   batched closure written out by hand:

   - the read/write mix is a precomputed 128-slot Bresenham pattern,
     decided per op by one array load and a mask (an integer division
     would cost as much as the unboxed operation being measured);
   - the implementation is called *directly* — the unboxed modules are
     concrete, so those compile to static calls, while the boxed side's
     indirect functor call is part of the representation cost being
     measured.  Any generic wrapper (instance record, first-class module)
     would add an indirect call to both sides and dilute the ratio;
   - each closure performs [batch] operations per invocation, so the
     harness's stop-flag read and bookkeeping amortize to noise
     ({!Harness.Throughput.run_batched}).

   The modules measured are exactly the ones the registry
   ({!Harness.Instances.maxreg_native} / [_native_fast]) hands out; only
   the call path is flattened here. *)

let pattern_slots = 128
let mask = pattern_slots - 1
let batch = 64

(* Evenly interleaved deterministic mix: read share quantized to
   [reads]/128 (error at most 1/256: 99% -> 127/128 = 99.2%).  The same
   pattern drives both backends, so the schedules compared are
   identical. *)
let read_pattern ~read_pct =
  let reads = ((read_pct * pattern_slots) + 50) / 100 in
  Array.init pattern_slots (fun i ->
      ((i + 1) * reads / pattern_slots) - (i * reads / pattern_slots) = 1)

type target = {
  structure : string;
  impl_name : string;
  mk :
    backend:[ `Boxed | `Unboxed ] ->
    n:int ->
    domains:int ->
    pattern:bool array ->
    (int -> int -> unit);
}

module AB = Maxreg.Algorithm_a.Make (Smem.Atomic_memory)
module BB = Maxreg.B1_maxreg.Make (Smem.Atomic_memory)
module CB = Maxreg.Cas_maxreg.Make (Smem.Atomic_memory)
module FB = Counters.Farray_counter.Make (Smem.Atomic_memory)
module NB = Counters.Naive_counter.Make (Smem.Atomic_memory)
module AU = Maxreg.Algorithm_a.Unboxed
module BU = Maxreg.B1_maxreg.Unboxed
module CU = Maxreg.Cas_maxreg.Unboxed
module FU = Counters.Farray_counter.Unboxed
module NU = Counters.Naive_counter.Unboxed

(* Max registers write strictly increasing, domain-disjoint values
   [i * domains + d]: every write really updates (monotone streams), and
   the CAS-based propagation paths stay ABA-free. *)

let alg_a_target =
  { structure = "max-register";
    impl_name = Harness.Instances.maxreg_name Harness.Instances.Algorithm_a;
    mk =
      (fun ~backend ~n ~domains ~pattern ->
        match backend with
        | `Boxed ->
          let reg = AB.create ~n () in
          fun d i0 ->
            for k = 0 to batch - 1 do
              let i = i0 + k in
              if Array.unsafe_get pattern (i land mask) then
                ignore (AB.read_max reg : int)
              else AB.write_max reg ~pid:d ((i * domains) + d)
            done
        | `Unboxed ->
          let reg = AU.create ~n () in
          fun d i0 ->
            for k = 0 to batch - 1 do
              let i = i0 + k in
              if Array.unsafe_get pattern (i land mask) then
                ignore (AU.read_max reg : int)
              else AU.write_max reg ~pid:d ((i * domains) + d)
            done) }

let b1_target =
  { structure = "max-register";
    impl_name = Harness.Instances.maxreg_name Harness.Instances.B1_maxreg;
    mk =
      (fun ~backend ~n ~domains ~pattern ->
        match backend with
        | `Boxed ->
          ignore n;
          let reg = BB.create () in
          fun d i0 ->
            for k = 0 to batch - 1 do
              let i = i0 + k in
              if Array.unsafe_get pattern (i land mask) then
                ignore (BB.read_max reg : int)
              else BB.write_max reg ~pid:d ((i * domains) + d)
            done
        | `Unboxed ->
          let reg = BU.create () in
          fun d i0 ->
            for k = 0 to batch - 1 do
              let i = i0 + k in
              if Array.unsafe_get pattern (i land mask) then
                ignore (BU.read_max reg : int)
              else BU.write_max reg ~pid:d ((i * domains) + d)
            done) }

let cas_target =
  { structure = "max-register";
    impl_name = Harness.Instances.maxreg_name Harness.Instances.Cas_maxreg;
    mk =
      (fun ~backend ~n ~domains ~pattern ->
        match backend with
        | `Boxed ->
          ignore n;
          let reg = CB.create () in
          fun d i0 ->
            for k = 0 to batch - 1 do
              let i = i0 + k in
              if Array.unsafe_get pattern (i land mask) then
                ignore (CB.read_max reg : int)
              else CB.write_max reg ~pid:d ((i * domains) + d)
            done
        | `Unboxed ->
          let reg = CU.create () in
          fun d i0 ->
            for k = 0 to batch - 1 do
              let i = i0 + k in
              if Array.unsafe_get pattern (i land mask) then
                ignore (CU.read_max reg : int)
              else CU.write_max reg ~pid:d ((i * domains) + d)
            done) }

let farray_target =
  { structure = "counter";
    impl_name =
      Harness.Instances.counter_name Harness.Instances.Farray_counter;
    mk =
      (fun ~backend ~n ~domains ~pattern ->
        ignore domains;
        match backend with
        | `Boxed ->
          let c = FB.create ~n in
          fun d i0 ->
            for k = 0 to batch - 1 do
              if Array.unsafe_get pattern ((i0 + k) land mask) then
                ignore (FB.read c : int)
              else FB.increment c ~pid:d
            done
        | `Unboxed ->
          let c = FU.create ~n () in
          fun d i0 ->
            for k = 0 to batch - 1 do
              if Array.unsafe_get pattern ((i0 + k) land mask) then
                ignore (FU.read c : int)
              else FU.increment c ~pid:d
            done) }

let naive_target =
  { structure = "counter";
    impl_name = Harness.Instances.counter_name Harness.Instances.Naive_counter;
    mk =
      (fun ~backend ~n ~domains ~pattern ->
        ignore domains;
        match backend with
        | `Boxed ->
          let c = NB.create ~n in
          fun d i0 ->
            for k = 0 to batch - 1 do
              if Array.unsafe_get pattern ((i0 + k) land mask) then
                ignore (NB.read c : int)
              else NB.increment c ~pid:d
            done
        | `Unboxed ->
          let c = NU.create ~n () in
          fun d i0 ->
            for k = 0 to batch - 1 do
              if Array.unsafe_get pattern ((i0 + k) land mask) then
                ignore (NU.read c : int)
              else NU.increment c ~pid:d
            done) }

let targets =
  [ alg_a_target; b1_target; cas_target; farray_target; naive_target ]

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
    let n = List.length sorted in
    List.nth sorted (n / 2)

let backend_name = function `Boxed -> "boxed" | `Unboxed -> "unboxed"

(* Structures are sized once for the sweep's largest domain count (the
   usual benchmark convention: a structure built for P processes, of which
   [domains] are active), so single-domain rows exercise the same tree
   depths as the scaled rows rather than a degenerate one-leaf instance. *)
let structure_n cfg = List.fold_left max 1 cfg.domain_counts

let cell ~cfg ~target ~backend ~domains ~read_pct =
  let pattern = read_pattern ~read_pct in
  let op = target.mk ~backend ~n:(structure_n cfg) ~domains ~pattern in
  ignore
    (Harness.Throughput.run_batched ~domains ~seconds:cfg.warmup_seconds
       ~batch ~op
      : float);
  let trial_mops =
    List.init cfg.trials (fun _ ->
        Harness.Throughput.run_batched ~domains ~seconds:cfg.seconds ~batch ~op
        /. 1e6)
  in
  { structure = target.structure;
    impl = target.impl_name;
    backend = backend_name backend;
    domains;
    read_pct;
    mops = median trial_mops;
    trial_mops }

let sweep ?(progress = fun _ -> ()) cfg =
  List.concat_map
    (fun target ->
      List.concat_map
        (fun backend ->
          progress
            (Printf.sprintf "%s/%s (%s)" target.structure target.impl_name
               (backend_name backend));
          List.concat_map
            (fun domains ->
              List.map
                (fun read_pct ->
                  cell ~cfg ~target ~backend ~domains ~read_pct)
                cfg.read_shares)
            cfg.domain_counts)
        [ `Boxed; `Unboxed ])
    targets

(* {1 Reporting} *)

let table rows =
  Harness.Tables.render
    ~title:
      "Native domain-scaling throughput: boxed (Simval Atomic) vs unboxed \
       (padded int Atomic) backends (Mops/s, median of trials)"
    ~header:
      [ "structure"; "impl"; "backend"; "domains"; "read%"; "Mops/s" ]
    (List.map
       (fun (r : row) ->
         [ r.structure; r.impl; r.backend; string_of_int r.domains;
           string_of_int r.read_pct; Printf.sprintf "%.2f" r.mops ])
       rows)

let schema_version = "bench-native/v1"

let to_json ~cfg rows =
  Json_out.Obj
    [ ("schema", Json_out.Str schema_version);
      ( "host",
        Json_out.Obj
          [ ("ocaml", Json_out.Str Sys.ocaml_version);
            ("word_size", Json_out.Int Sys.word_size);
            ( "recommended_domains",
              Json_out.Int (Domain.recommended_domain_count ()) ) ] );
      ( "config",
        Json_out.Obj
          [ ("quick", Json_out.Bool cfg.quick);
            ("structure_n", Json_out.Int (structure_n cfg));
            ( "domain_counts",
              Json_out.List (List.map (fun d -> Json_out.Int d) cfg.domain_counts) );
            ( "read_shares",
              Json_out.List (List.map (fun s -> Json_out.Int s) cfg.read_shares) );
            ("seconds_per_trial", Json_out.Float cfg.seconds);
            ("warmup_seconds", Json_out.Float cfg.warmup_seconds);
            ("trials", Json_out.Int cfg.trials) ] );
      ( "rows",
        Json_out.List
          (List.map
             (fun (r : row) ->
               Json_out.Obj
                 [ ("structure", Json_out.Str r.structure);
                   ("impl", Json_out.Str r.impl);
                   ("backend", Json_out.Str r.backend);
                   ("domains", Json_out.Int r.domains);
                   ("read_pct", Json_out.Int r.read_pct);
                   ("mops", Json_out.Float r.mops);
                   ( "trial_mops",
                     Json_out.List
                       (List.map (fun m -> Json_out.Float m) r.trial_mops) ) ])
             rows) ) ]
