(** The domain-scaling benchmark behind [bin/bench.exe]: max registers
    and counters over four backends — boxed (Simval Atomic), unboxed
    (padded int Atomic), flat-combining ({!Harness.Combining} over a
    {!Smem.Combine} arena), and contention-adaptive
    ({!Harness.Adaptive}, which flips between the plain and combining
    update paths at epoch boundaries) — swept over domain counts and
    read shares.
    All cells are built up front and their throughput trials run in
    interleaved rounds so host drift lands evenly; rows are medians with
    a relative-stddev noise figure.  Latency percentiles and contention
    metrics come from separate metered passes so the timed loops stay
    unperturbed. *)

type config

val config :
  ?quick:bool ->
  ?max_domains:int ->
  ?seconds:float ->
  ?trials:int ->
  ?read_shares:int list ->
  unit ->
  config
(** [quick] (default false) shrinks seconds/trials to CI-smoke values;
    [max_domains] (default 4) bounds the 1,2,4,.. domain sweep;
    [seconds]/[trials] override the per-trial duration and trial count;
    [read_shares] (default [[0; 50; 90; 99]]) is the read-percentage
    grid. *)

type row

val sweep : ?progress:(string -> unit) -> config -> row list
(** Run the full sweep; [progress] receives oversubscription warnings
    (domain counts beyond {!Harness.Throughput.recommended_domains}),
    one line per trial round, and a line per (target, backend) as the
    latency/metrics epilogue starts. *)

val median : float list -> float
(** Median of the finite members (NaN trials are dropped; the middle
    pair is averaged on even counts).  Exposed for the regression tests
    pinning exactly that behaviour. *)

val rsd : float list -> float
(** Relative standard deviation (sample stddev / mean) of the finite
    members; 0 for fewer than two samples or a non-positive mean.
    Rows above 0.25 are flagged in the table. *)

val table : row list -> string
(** Rendered throughput/latency table. *)

val to_json : cfg:config -> row list -> Json_out.t
(** The machine-readable trajectory (schema "bench-native/v4": adds the
    adaptive backend and its per-row [epoch_flips] /
    [time_in_combining_pct] fields to v3's combining backend, per-row
    [rsd]/[oversubscribed] and combiner metrics) consumed by
    EXPERIMENTS.md, the CI smoke job and {!Baseline}. *)
