(** The domain-scaling boxed-vs-unboxed benchmark behind [bin/bench.exe]:
    max registers and counters, boxed (Simval Atomic) vs unboxed (padded
    int Atomic) backends, swept over domain counts and read shares.
    Throughput rows are medians of unclocked trials; latency percentiles
    and contention metrics come from separate metered passes so the timed
    loops stay unperturbed. *)

type config

val config :
  ?quick:bool ->
  ?max_domains:int ->
  ?seconds:float ->
  ?trials:int ->
  ?read_shares:int list ->
  unit ->
  config
(** [quick] (default false) shrinks seconds/trials to CI-smoke values;
    [max_domains] (default 4) bounds the 1,2,4,.. domain sweep;
    [seconds]/[trials] override the per-trial duration and trial count;
    [read_shares] (default [[0; 50; 90; 99]]) is the read-percentage
    grid. *)

type row

val sweep : ?progress:(string -> unit) -> config -> row list
(** Run the full sweep; [progress] receives a line per (target, backend)
    as measurement starts. *)

val median : float list -> float
(** Median of the finite members (NaN trials are dropped; the middle
    pair is averaged on even counts).  Exposed for the regression tests
    pinning exactly that behaviour. *)

val table : row list -> string
(** Rendered throughput/latency table. *)

val to_json : cfg:config -> row list -> Json_out.t
(** The machine-readable trajectory (schema "bench-native/v2") consumed
    by EXPERIMENTS.md and the CI smoke job. *)
