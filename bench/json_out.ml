(* A minimal JSON value and printer — enough for BENCH_NATIVE.json without
   pulling a JSON dependency into the sealed container.  Strings are
   escaped per RFC 8259; non-finite floats become [null] (JSON has no
   representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf ~indent ~level v =
  let pad n = String.make (n * indent) ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
    else Buffer.add_string buf "null"
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (level + 1));
        write buf ~indent ~level:(level + 1) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad level);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (level + 1));
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        write buf ~indent ~level:(level + 1) item)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad level);
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  write buf ~indent:2 ~level:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string v))
