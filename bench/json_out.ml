(* The JSON value/printer/parser now lives in {!Obs.Json_out} (the trace
   exporter needs it below the bench layer); this alias keeps the
   historical [Benchkit.Json_out] path working for existing callers. *)

include Obs.Json_out
