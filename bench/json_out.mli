(** Alias of {!Obs.Json_out} (the JSON value, printer and parser moved
    below the bench layer when the trace exporter needed it); kept so the
    historical [Benchkit.Json_out] path and its type equalities keep
    working for existing callers. *)

include module type of struct
  include Obs.Json_out
end
