(* bin/bench.exe — the domain-scaling boxed-vs-unboxed benchmark.

     bench [--quick] [--out BENCH_NATIVE.json] [--max-domains P]
           [--seconds S] [--trials T] [--read-shares 0,50,90,99]

   Prints the throughput table and writes the machine-readable trajectory
   (schema "bench-native/v2": median throughput, latency percentiles from
   the metered pass, and contention metrics for the unboxed backend) used
   by EXPERIMENTS.md and the CI smoke job. *)

open Cmdliner

let run quick out max_domains seconds trials read_shares =
  let cfg =
    Benchkit.Bench_native.config ~quick ~max_domains ?seconds ?trials
      ~read_shares ()
  in
  let rows =
    Benchkit.Bench_native.sweep
      ~progress:(fun what -> Printf.eprintf "bench: %s\n%!" what)
      cfg
  in
  print_string (Benchkit.Bench_native.table rows);
  Benchkit.Json_out.to_file out (Benchkit.Bench_native.to_json ~cfg rows);
  Printf.printf "\nwrote %s (%d rows)\n" out (List.length rows)

let quick =
  Arg.(value & flag
       & info [ "quick" ] ~doc:"Single short trial per cell; CI smoke mode.")

let out =
  Arg.(value
       & opt string "BENCH_NATIVE.json"
       & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the JSON trajectory.")

let max_domains =
  Arg.(value & opt int 4
       & info [ "max-domains" ] ~docv:"P"
           ~doc:"Sweep domain counts 1,2,4,.. up to $(docv).")

let seconds =
  Arg.(value & opt (some float) None
       & info [ "seconds" ] ~docv:"S" ~doc:"Seconds per timed trial.")

let trials =
  Arg.(value & opt (some int) None
       & info [ "trials" ] ~docv:"T" ~doc:"Timed trials per cell.")

let read_shares =
  Arg.(value
       & opt (list int) [ 0; 50; 90; 99 ]
       & info [ "read-shares" ] ~docv:"PCTS"
           ~doc:"Comma-separated read percentages to sweep.")

let cmd =
  Cmd.v
    (Cmd.info "bench" ~version:"1.0"
       ~doc:
         "Domain-scaling throughput of the boxed vs unboxed native \
          backends (PODC'14 reproduction).")
    Term.(const run $ quick $ out $ max_domains $ seconds $ trials
          $ read_shares)

let () = exit (Cmd.eval cmd)
