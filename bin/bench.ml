(* bin/bench.exe — the domain-scaling native-backend benchmark.

     bench [--quick] [--out BENCH_NATIVE.json] [--baseline FILE]
           [--max-domains P] [--seconds S] [--trials T]
           [--read-shares 0,50,90,99]

   Prints the throughput table and writes the machine-readable trajectory
   (schema "bench-native/v4": median throughput with rsd noise figure,
   latency percentiles from the metered pass, contention metrics for the
   unboxed backend, combiner metrics for the flat-combining backend and
   epoch-flip/combining-share fields for the adaptive backend)
   used by EXPERIMENTS.md and the CI smoke job.  With [--baseline] the
   fresh rows are diffed against a previously written trajectory —
   warn-only: regressions are reported, never fatal. *)

open Cmdliner

(* --dial: the tradeoff-dial sweep instead of the backend sweep.  The
   certified step ceilings printed next to the measured solo steps come
   from the same budget functions the C1 certifier enforces, so the
   table is "measured frontier vs certified envelope" line by line. *)
let run_dial quick out max_domains seconds trials read_shares =
  let cfg =
    Benchkit.Bench_dial.config ~quick ~max_domains ?seconds ?trials
      ~read_shares ()
  in
  let steps = Benchkit.Bench_dial.steps_rows ~n:cfg.Benchkit.Bench_dial.n in
  let envelope dial =
    let n = cfg.Benchkit.Bench_dial.n in
    let f = Treeprim.Dial.width ~n dial in
    let env b =
      match Lint.Summary.envelope ~n b with Some e -> e | None -> max_int
    in
    ( env (Lint.Budgets.dial_read_budget ~f ~n),
      env (Lint.Budgets.dial_update_budget ~f ~n) )
  in
  print_string
    (Benchkit.Bench_dial.steps_table ~envelope ~n:cfg.Benchkit.Bench_dial.n
       steps);
  print_newline ();
  let rows =
    Benchkit.Bench_dial.sweep
      ~progress:(fun what -> Printf.eprintf "bench: %s\n%!" what)
      cfg
  in
  print_string (Benchkit.Bench_dial.table rows);
  let doc = Benchkit.Bench_dial.to_json ~cfg ~steps rows in
  let out = if out = "BENCH_NATIVE.json" then "BENCH_DIAL.json" else out in
  Benchkit.Json_out.to_file out doc;
  Printf.printf "\nwrote %s (%d rows)\n" out (List.length rows)

let run_backends quick out baseline max_domains seconds trials read_shares =
  let cfg =
    Benchkit.Bench_native.config ~quick ~max_domains ?seconds ?trials
      ~read_shares ()
  in
  let rows =
    Benchkit.Bench_native.sweep
      ~progress:(fun what -> Printf.eprintf "bench: %s\n%!" what)
      cfg
  in
  print_string (Benchkit.Bench_native.table rows);
  let doc = Benchkit.Bench_native.to_json ~cfg rows in
  Benchkit.Json_out.to_file out doc;
  Printf.printf "\nwrote %s (%d rows)\n" out (List.length rows);
  match baseline with
  | None -> ()
  | Some file ->
    (match
       let contents = In_channel.with_open_text file In_channel.input_all in
       Benchkit.Json_out.parse contents
     with
     | base ->
       print_newline ();
       print_string
         (Benchkit.Baseline.report ~baseline:base ~current:doc ())
     | exception Sys_error msg ->
       Printf.eprintf "bench: cannot read baseline: %s\n" msg
     | exception Benchkit.Json_out.Parse_error msg ->
       Printf.eprintf "bench: baseline %s does not parse: %s\n" file msg)

let run dial quick out baseline max_domains seconds trials read_shares =
  if dial then run_dial quick out max_domains seconds trials read_shares
  else run_backends quick out baseline max_domains seconds trials read_shares

let dial =
  Arg.(value & flag
       & info [ "dial" ]
           ~doc:
             "Run the tradeoff-dial sweep (Dial_counter at every dial \
              point: exact solo steps vs the certified envelope, then a \
              throughput sweep) instead of the backend sweep.  Writes \
              BENCH_DIAL.json unless --out is given.")

let quick =
  Arg.(value & flag
       & info [ "quick" ] ~doc:"Single short trial per cell; CI smoke mode.")

let out =
  Arg.(value
       & opt string "BENCH_NATIVE.json"
       & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the JSON trajectory.")

let baseline =
  Arg.(value
       & opt (some string) None
       & info [ "baseline" ] ~docv:"FILE"
           ~doc:
             "Diff the fresh rows against a previously written trajectory \
              (schema v2, v3 or v4); report regressions, warn-only.")

let max_domains =
  Arg.(value & opt int 4
       & info [ "max-domains" ] ~docv:"P"
           ~doc:"Sweep domain counts 1,2,4,.. up to $(docv).")

let seconds =
  Arg.(value & opt (some float) None
       & info [ "seconds" ] ~docv:"S" ~doc:"Seconds per timed trial.")

let trials =
  Arg.(value & opt (some int) None
       & info [ "trials" ] ~docv:"T" ~doc:"Timed trials per cell.")

let read_shares =
  Arg.(value
       & opt (list int) [ 0; 50; 90; 99 ]
       & info [ "read-shares" ] ~docv:"PCTS"
           ~doc:"Comma-separated read percentages to sweep.")

let cmd =
  Cmd.v
    (Cmd.info "bench" ~version:"1.0"
       ~doc:
         "Domain-scaling throughput of the boxed, unboxed, flat-combining \
          and contention-adaptive native backends (PODC'14 reproduction).")
    Term.(const run $ dial $ quick $ out $ baseline $ max_domains $ seconds
          $ trials $ read_shares)

let () = exit (Cmd.eval cmd)
