(* bin/lint.exe — the concurrency-discipline linter and step-complexity
   certifier.

     dune build @default && dune exec bin/lint.exe
     lint [--build-dir _build/default] [--root .]
          [--rules R1,R2,R3,R4,C1] [--format human|json]
          [--cost] [--costs-md FILE] [--list-rules]

   Walks the dune-produced .cmt files and enforces:
     R1  atomics containment   (raw Atomic/Obj/Domain only in the
                                memory layer and allowlisted Unboxed
                                submodules)
     R2  progress witness      (unbounded loops / CAS retries in the
                                algorithm libs must re-read shared
                                memory)
     R3  hot-path allocation   (the zero-allocation natives stay
                                allocation-free, syntactically)
     R4  interface hygiene     (every lib module has an .mli)
     C1  step certification    (every budgeted operation's certified
                                shared-access bound stays within
                                lib/lint/budgets.ml)

   [--cost] focuses the run on C1 and prints the per-operation
   certificate table (schema lint-cost/v1 under --format json);
   [--costs-md FILE] additionally writes the committed COSTS.md.

   Exit 0 when clean (warnings do not fail the run), 1 when there are
   error-severity violations, 2 on usage or missing-build errors. *)

open Cmdliner

let run build_dir root rules format cost_only costs_md list_rules =
  if list_rules then begin
    List.iter
      (fun (id, desc) -> Printf.printf "%-4s %s\n" id desc)
      Lint.Driver.rule_descriptions;
    exit 0
  end;
  if not (Sys.file_exists build_dir && Sys.is_directory build_dir) then begin
    Printf.eprintf
      "lint: build dir %s not found; run [dune build @default] first\n"
      build_dir;
    exit 2
  end;
  let unknown =
    List.filter (fun r -> not (List.mem r Lint.Driver.all_rules)) rules
  in
  if unknown <> [] then begin
    Printf.eprintf "lint: unknown rule(s) %s (try --list-rules)\n"
      (String.concat ", " unknown);
    exit 2
  end;
  let rules = if cost_only then [ "C1" ] else rules in
  let report = Lint.Driver.run ~rules ~build_dir ~root () in
  (match report.Lint.Driver.cost, costs_md with
   | Some c, Some path ->
     let oc = open_out path in
     output_string oc (Lint.Cost.to_costs_md c);
     close_out oc
   | None, Some _ ->
     Printf.eprintf "lint: --costs-md requires --cost or a C1 run\n";
     exit 2
   | _, None -> ());
  (match cost_only, report.Lint.Driver.cost with
   | true, Some c ->
     let units_scanned = report.Lint.Driver.units_scanned in
     (match format with
      | `Human -> print_string (Lint.Cost.to_human ~units_scanned c)
      | `Json ->
        print_string
          (Obs.Json_out.to_string (Lint.Cost.to_json ~units_scanned c));
        print_newline ())
   | _ ->
     (match format with
      | `Human -> print_string (Lint.Driver.to_human report)
      | `Json ->
        print_string (Obs.Json_out.to_string (Lint.Driver.to_json report));
        print_newline ()));
  if Lint.Driver.has_errors report then exit 1

let build_dir =
  Arg.(value
       & opt string "_build/default"
       & info [ "build-dir" ] ~docv:"DIR"
           ~doc:"Where dune put the .cmt files.")

let root =
  Arg.(value
       & opt string "."
       & info [ "root" ] ~docv:"DIR" ~doc:"Repository root to lint.")

let rules =
  Arg.(value
       & opt (list string) Lint.Driver.all_rules
       & info [ "rules" ] ~docv:"RULES"
           ~doc:"Comma-separated subset of R1,R2,R3,R4,C1.")

let format =
  Arg.(value
       & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
       & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: human (compiler-style) or json.")

let cost_only =
  Arg.(value
       & flag
       & info [ "cost" ]
           ~doc:"Run only the C1 step-complexity certifier and print \
                 the per-operation certificate table (schema \
                 lint-cost/v1 under --format json).")

let costs_md =
  Arg.(value
       & opt (some string) None
       & info [ "costs-md" ] ~docv:"FILE"
           ~doc:"Also write the certificate table as markdown (the \
                 committed COSTS.md).")

let list_rules =
  Arg.(value
       & flag
       & info [ "list-rules" ] ~doc:"List the rules and exit.")

let cmd =
  let doc =
    "concurrency-discipline linter and step-complexity certifier for \
     the repo's .cmt files"
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(const run $ build_dir $ root $ rules $ format $ cost_only
          $ costs_md $ list_rules)

let () = exit (Cmd.eval cmd)
