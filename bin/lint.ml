(* bin/lint.exe — the concurrency-discipline linter.

     dune build @default && dune exec bin/lint.exe
     lint [--build-dir _build/default] [--root .]
          [--rules R1,R2,R3,R4] [--format human|json]

   Walks the dune-produced .cmt files and enforces:
     R1  atomics containment   (raw Atomic/Obj/Domain only in the
                                memory layer and allowlisted Unboxed
                                submodules)
     R2  progress witness      (unbounded loops / CAS retries in the
                                algorithm libs must re-read shared
                                memory)
     R3  hot-path allocation   (the zero-allocation natives stay
                                allocation-free, syntactically)
     R4  interface hygiene     (every lib module has an .mli)

   Exit 0 when clean, 1 when there are violations, 2 on usage or
   missing-build errors. *)

open Cmdliner

let run build_dir root rules format =
  if not (Sys.file_exists build_dir && Sys.is_directory build_dir) then begin
    Printf.eprintf
      "lint: build dir %s not found; run [dune build @default] first\n"
      build_dir;
    exit 2
  end;
  let report = Lint.Driver.run ~rules ~build_dir ~root () in
  (match format with
   | `Human -> print_string (Lint.Driver.to_human report)
   | `Json ->
     print_string (Obs.Json_out.to_string (Lint.Driver.to_json report));
     print_newline ());
  if report.Lint.Driver.diagnostics <> [] then exit 1

let build_dir =
  Arg.(value
       & opt string "_build/default"
       & info [ "build-dir" ] ~docv:"DIR"
           ~doc:"Where dune put the .cmt files.")

let root =
  Arg.(value
       & opt string "."
       & info [ "root" ] ~docv:"DIR" ~doc:"Repository root to lint.")

let rules =
  Arg.(value
       & opt (list string) Lint.Driver.all_rules
       & info [ "rules" ] ~docv:"RULES"
           ~doc:"Comma-separated subset of R1,R2,R3,R4.")

let format =
  Arg.(value
       & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
       & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: human (compiler-style) or json.")

let cmd =
  let doc = "concurrency-discipline linter for the repo's .cmt files" in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(const run $ build_dir $ root $ rules $ format)

let () = exit (Cmd.eval cmd)
