(* The experiment driver: regenerates every table of EXPERIMENTS.md.

     repro e1 | e2 | e3 | e4 | e5 | e6 | e7 | e8 | f4 | all

   Sizes are chosen so `repro all` completes in a couple of minutes; pass
   --quick for a fast smoke pass.  `--trace out.json` additionally dumps a
   Chrome trace_event file of a simulated execution (currently emitted by
   e4's Theorem 1 adversary; load it in chrome://tracing or Perfetto). *)

(* Experiments that run in the simulator can export an execution trace;
   [trace_out] is the --trace destination (most experiments ignore it with
   a note to stderr). *)
let no_trace trace_out =
  Option.iter
    (fun _ ->
      Printf.eprintf
        "repro: --trace is only emitted by e4 (the Theorem 1 adversary); \
         ignoring\n\
         %!")
    trace_out

let experiments :
    (string * string * (quick:bool -> trace_out:string option -> string)) list =
  [ ( "e1", "max-register step complexity (Theorem 6 vs AAC)",
      fun ~quick ~trace_out ->
        no_trace trace_out;
        let ns = if quick then [ 16; 64 ] else [ 16; 64; 256; 1024; 4096 ] in
        Experiments.E1_maxreg_steps.run ~ns () );
    ( "e2", "counter step complexity envelopes",
      fun ~quick ~trace_out ->
        no_trace trace_out;
        let ns = if quick then [ 4; 16 ] else [ 4; 16; 64; 256; 1024 ] in
        Experiments.E2_counter_steps.run ~ns () );
    ( "e3", "snapshot step complexity envelopes",
      fun ~quick ~trace_out ->
        no_trace trace_out;
        let ns = if quick then [ 4; 16 ] else [ 4; 16; 64; 256; 1024 ] in
        Experiments.E3_snapshot_steps.run ~ns () );
    ( "e4", "Theorem 1 adversary: rounds vs log3(N/f(N))",
      fun ~quick ~trace_out ->
        let ns = if quick then [ 8; 16 ] else [ 8; 16; 32; 64; 128; 256 ] in
        match trace_out with
        | None -> Experiments.E4_theorem1.run ~ns ()
        | Some path ->
          (* keep the first (smallest-N, first-impl) execution: it is the
             one a human can still read in a trace viewer *)
          let saved = ref false in
          let on_trace trace =
            if not !saved then begin
              saved := true;
              Obs.Trace_export.to_file ~name:"theorem1-adversary" path trace
            end
          in
          let out = Experiments.E4_theorem1.run ~on_trace ~ns () in
          out ^ Printf.sprintf "\nwrote Chrome trace to %s\n" path );
    ( "e5", "Theorem 3 adversary: essential-set iterations (Figs. 1-3)",
      fun ~quick ~trace_out ->
        no_trace trace_out;
        let ks = if quick then [ 16; 64 ] else [ 16; 64; 256; 1024; 4096; 16384 ] in
        Experiments.E5_theorem3.run ~ks () );
    ( "e6", "linearizability sweep (Theorem 5 + the line-16 finding)",
      fun ~quick ~trace_out ->
        no_trace trace_out;
        let schedules = if quick then 50 else 400 in
        Experiments.E6_linearizability.run ~schedules () );
    ( "e7", "native multi-domain throughput (the O(1)-read payoff)",
      fun ~quick ~trace_out ->
        no_trace trace_out;
        let seconds = if quick then 0.1 else 0.5 in
        Experiments.E7_native.run ~seconds () );
    ( "e8", "Lemma 1 growth profile + the Definition 1 visibility finding",
      fun ~quick ~trace_out ->
        no_trace trace_out;
        let n = if quick then 16 else 48 in
        Experiments.E8_lemma1.run ~n () );
    ( "e9", "liveness audit: wait-freedom vs interference",
      fun ~quick ~trace_out ->
        ignore quick;
        no_trace trace_out;
        Experiments.E9_liveness.run () );
    ( "e10", "workload crossovers: where each side of the tradeoff wins",
      fun ~quick ~trace_out ->
        no_trace trace_out;
        let seconds = if quick then 0.1 else 0.3 in
        Experiments.E10_crossover.run ~seconds () );
    ( "f4", "Figure 4 data-structure audit",
      fun ~quick ~trace_out ->
        no_trace trace_out;
        let n = if quick then 64 else 1024 in
        Experiments.F4_structure.run ~n () );
    ( "a1", "ablation: B1 vs complete left subtree in Algorithm A",
      fun ~quick ~trace_out ->
        no_trace trace_out;
        let ns = if quick then [ 64; 1024 ] else [ 64; 1024; 16384 ] in
        Experiments.A1_b1_ablation.run ~ns () );
    ( "a2", "ablation: double vs single refresh (exhaustive interleavings)",
      fun ~quick ~trace_out ->
        ignore quick;
        no_trace trace_out;
        Experiments.A2_refresh_ablation.run () ) ]

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps, faster run.")

let trace_out =
  Arg.(value
       & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:
             "Write a Chrome trace_event JSON of a simulated execution to \
              $(docv) (open in chrome://tracing or ui.perfetto.dev).  \
              Currently emitted by e4; other experiments note and ignore it.")

let setup_logs =
  let setup style_renderer level =
    Fmt_tty.setup_std_outputs ?style_renderer ();
    Logs.set_level level;
    Logs.set_reporter (Logs_fmt.reporter ())
  in
  Term.(const setup $ Fmt_cli.style_renderer () $ Logs_cli.level ())

let run_one name descr f =
  let action () q t =
    print_string (f ~quick:q ~trace_out:t);
    print_newline ()
  in
  Cmd.v
    (Cmd.info name ~doc:descr)
    Term.(const action $ setup_logs $ quick $ trace_out)

let all_cmd =
  let action () q t =
    List.iter
      (fun (name, _, f) ->
        Printf.printf "=== %s ===\n%!" name;
        (* only e4 consumes --trace; silence the per-experiment note *)
        print_string (f ~quick:q ~trace_out:(if name = "e4" then t else None));
        print_newline ())
      experiments
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in sequence.")
    Term.(const action $ setup_logs $ quick $ trace_out)

let () =
  let cmds = List.map (fun (n, d, f) -> run_one n d f) experiments @ [ all_cmd ] in
  let info =
    Cmd.info "repro" ~version:"1.0"
      ~doc:
        "Regenerate the tables of the PODC'14 paper reproduction (Hendler & \
         Khait, Complexity Tradeoffs for Read and Update Operations)."
  in
  exit (Cmd.eval (Cmd.group info cmds))
