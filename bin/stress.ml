(* Randomized linearizability stress-testing tool.

     stress --object maxreg --impl algorithm-a --procs 4 --seeds 1000
     stress --object counter --impl farray --readers 2
     stress --object snapshot --impl afek

   Each seed builds a fresh instance, runs a random schedule over mixed
   operations, extracts the history and checks it with the Wing-Gong
   checker.  Violating seeds are printed (and the exit code is non-zero),
   making this usable for soak testing and for bisecting new
   implementations.  Keep --procs small: checking cost grows exponentially
   with concurrency. *)

open Memsim

(* A scenario bundles everything needed both to run a random schedule and
   to replay/shrink it afterwards: deterministic per-pid bodies over one
   session, plus the linearizability check. *)
type scenario = {
  session : Session.t;
  make_body : int -> unit -> unit;
  check : Trace.t -> bool;
}

let scenario_maxreg ~impl ~procs ~readers ~value_range ~seed =
  let session = Session.create () in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n:procs ~bound:value_range impl)
  in
  let rng = Random.State.make [| seed |] in
  let vals = Array.init procs (fun _ -> Random.State.int rng value_range) in
  { session;
    make_body =
      (fun pid () ->
        if pid < procs - readers then reg.write_max ~pid vals.(pid)
        else ignore (reg.read_max ()));
    check =
      Linearize.Checker.check_trace (module Linearize.Spec.Max_register)
        ~n:procs }

let scenario_counter ~impl ~procs ~readers ~seed:_ =
  let session = Session.create () in
  let c =
    Harness.Annotate.counter session
      (Harness.Instances.counter_sim session ~n:procs ~bound:64 impl)
  in
  { session;
    make_body =
      (fun pid () ->
        if pid < procs - readers then c.increment ~pid else ignore (c.read ()));
    check =
      Linearize.Checker.check_trace (module Linearize.Spec.Counter) ~n:procs }

let scenario_snapshot ~impl ~procs ~readers ~value_range ~seed =
  let session = Session.create () in
  let s =
    Harness.Annotate.snapshot session
      (Harness.Instances.snapshot_sim session ~n:procs impl)
  in
  let rng = Random.State.make [| seed |] in
  let vals = Array.init procs (fun _ -> 1 + Random.State.int rng value_range) in
  { session;
    make_body =
      (fun pid () ->
        if pid < procs - readers then s.update ~pid vals.(pid)
        else ignore (s.scan ()));
    check =
      Linearize.Checker.check_trace (module Linearize.Spec.Snapshot) ~n:procs }

(* Run one random schedule; on violation, delta-debug the schedule down to
   a locally-minimal repro and print it.  Returns whether the seed passed
   plus the trace worth keeping for --trace export: the minimized violating
   execution, or the full passing one. *)
let run_seed { session; make_body; check } ~procs ~seed =
  let sched = Scheduler.create session in
  for pid = 0 to procs - 1 do
    ignore (Scheduler.spawn sched (make_body pid))
  done;
  Scheduler.run_random ~seed ~max_events:1_000_000 sched;
  let trace = Scheduler.finish sched in
  if check trace then (true, trace)
  else begin
    let minimal, min_trace =
      Shrink.counterexample session ~n:procs ~make_body ~check
        (Trace.schedule trace)
    in
    Printf.printf
      "seed %d: VIOLATION; minimized to %d events (from %d).\n\
       replayable schedule: %s\n"
      seed
      (List.length minimal)
      (List.length (Trace.schedule trace))
      (String.concat " " (List.map string_of_int minimal));
    Fmt.pr "%a@." Trace.pp min_trace;
    (false, min_trace)
  end

let lookup_impl kind impl_name =
  let fail () =
    `Error
      (false,
       Printf.sprintf "unknown %s implementation %S" kind impl_name)
  in
  match kind with
  | "maxreg" -> (
    match
      List.find_opt
        (fun i -> Harness.Instances.maxreg_name i = impl_name)
        (Harness.Instances.Algorithm_a_literal :: Harness.Instances.all_maxregs)
    with
    | Some i -> `Maxreg i
    | None -> fail ())
  | "counter" -> (
    match
      List.find_opt
        (fun i -> Harness.Instances.counter_name i = impl_name)
        Harness.Instances.all_counters
    with
    | Some i -> `Counter i
    | None -> fail ())
  | "snapshot" -> (
    match
      List.find_opt
        (fun i -> Harness.Instances.snapshot_name i = impl_name)
        Harness.Instances.all_snapshots
    with
    | Some i -> `Snapshot i
    | None -> fail ())
  | _ -> `Error (false, Printf.sprintf "unknown object kind %S" kind)

let stress kind impl_name procs readers seeds value_range trace_file =
  match lookup_impl kind impl_name with
  | `Error _ as e -> e
  | (`Maxreg _ | `Counter _ | `Snapshot _) as target ->
    let violations = ref [] in
    (* For --trace: the first minimized violating execution wins (that is
       the one worth staring at in a viewer); otherwise the last passing
       seed's trace, so the flag always produces a file. *)
    let violation_trace = ref None in
    let last_trace = ref None in
    for seed = 1 to seeds do
      let scen =
        match target with
        | `Maxreg i -> scenario_maxreg ~impl:i ~procs ~readers ~value_range ~seed
        | `Counter i -> scenario_counter ~impl:i ~procs ~readers ~seed
        | `Snapshot i ->
          scenario_snapshot ~impl:i ~procs ~readers ~value_range ~seed
      in
      let ok, trace = run_seed scen ~procs ~seed in
      if ok then last_trace := Some trace
      else begin
        violations := seed :: !violations;
        if !violation_trace = None then violation_trace := Some trace
      end
    done;
    Printf.printf "%s/%s: %d seeds, %d processes (%d readers): %d violations%s\n"
      kind impl_name seeds procs readers
      (List.length !violations)
      (match !violations with
       | [] -> ""
       | vs ->
         " at seeds "
         ^ String.concat ", " (List.map string_of_int (List.rev vs)));
    (match trace_file with
     | None -> ()
     | Some path -> (
       match (!violation_trace, !last_trace) with
       | Some t, _ ->
         Obs.Trace_export.to_file
           ~name:(Printf.sprintf "%s/%s minimized violation" kind impl_name)
           path t;
         Printf.printf "wrote Chrome trace of the minimized violation to %s\n"
           path
       | None, Some t ->
         Obs.Trace_export.to_file
           ~name:(Printf.sprintf "%s/%s (no violation; last seed)" kind impl_name)
           path t;
         Printf.printf "wrote Chrome trace of the last (passing) seed to %s\n"
           path
       | None, None -> ()));
    if !violations = [] then `Ok () else `Error (false, "violations found")

open Cmdliner

let kind =
  Arg.(
    value
    & opt string "maxreg"
    & info [ "object" ] ~docv:"KIND" ~doc:"Object kind: maxreg, counter or snapshot.")

let impl_name =
  Arg.(
    value
    & opt string "algorithm-a"
    & info [ "impl" ] ~docv:"NAME"
        ~doc:
          "Implementation name, as printed by the experiment tables (e.g. \
           algorithm-a, algorithm-a-literal, aac, cas-loop, farray, naive, \
           afek, double-collect).")

let procs =
  Arg.(value & opt int 4 & info [ "procs" ] ~doc:"Concurrent processes (keep small).")

let readers =
  Arg.(value & opt int 1 & info [ "readers" ] ~doc:"How many processes read instead of writing.")

let seeds =
  Arg.(value & opt int 500 & info [ "seeds" ] ~doc:"Number of random schedules to try.")

let value_range =
  Arg.(value & opt int 8 & info [ "values" ] ~doc:"Operand range (small ranges provoke duplicate-value races).")

let trace_file =
  Arg.(value
       & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:
             "Write a Chrome trace_event JSON to $(docv): the minimized \
              violating execution if any seed fails, else the last seed's \
              execution.  Open in chrome://tracing or ui.perfetto.dev.")

let cmd =
  Cmd.v
    (Cmd.info "stress" ~version:"1.0"
       ~doc:
         "Randomized linearizability stress tests for the PODC'14 \
          restricted-use objects.")
    Term.(ret (const stress $ kind $ impl_name $ procs $ readers $ seeds
               $ value_range $ trace_file))

let () = exit (Cmd.eval cmd)
