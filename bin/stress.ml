(* Randomized linearizability stress-testing tool.

     stress --object maxreg --impl algorithm-a --procs 4 --seeds 1000
     stress --object counter --impl farray --readers 2
     stress --object snapshot --impl afek
     stress --impl algorithm-a --faults 'crash:0@2,stall:1@0+50'
     stress --impl cas-loop --procs 3 --fault-sweep
     stress --chaos 42

   Each seed builds a fresh instance, runs a random schedule over mixed
   operations, extracts the history and checks it with the Wing-Gong
   checker.  Violating seeds are printed (and the exit code is non-zero),
   making this usable for soak testing and for bisecting new
   implementations.  Keep --procs small: checking cost grows exponentially
   with concurrency.

   --faults runs every seed under a fault plan (crashes and spurious CAS
   failures instrument the bodies; stalls and halts gate the scheduler);
   surviving histories are checked as-is — a crashed operation is pending
   and may take effect or be dropped (crash-restricted linearizability).
   On violation both the plan and the schedule are minimized to a
   replayable repro.  --fault-sweep verifies every single-crash plan
   exhaustively under DPOR and every single-stall plan under the gated
   explorer.  --chaos leaves the simulator entirely: multi-domain runs on
   the native backend under deterministic preemption/GC injection. *)

open Memsim

(* A scenario bundles everything needed both to run a random schedule and
   to replay/shrink it afterwards: deterministic per-pid bodies over one
   session, plus the linearizability check. *)
type scenario = {
  session : Session.t;
  make_body : int -> unit -> unit;
  check : Trace.t -> bool;
}

let scenario_maxreg ~impl ~procs ~readers ~value_range ~seed =
  let session = Session.create () in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n:procs ~bound:value_range impl)
  in
  let rng = Random.State.make [| seed |] in
  let vals = Array.init procs (fun _ -> Random.State.int rng value_range) in
  { session;
    make_body =
      (fun pid () ->
        if pid < procs - readers then reg.write_max ~pid vals.(pid)
        else ignore (reg.read_max ()));
    check =
      Linearize.Checker.check_trace (module Linearize.Spec.Max_register)
        ~n:procs }

let scenario_counter ~impl ~procs ~readers ~seed:_ =
  let session = Session.create () in
  let c =
    Harness.Annotate.counter session
      (Harness.Instances.counter_sim session ~n:procs ~bound:64 impl)
  in
  { session;
    make_body =
      (fun pid () ->
        if pid < procs - readers then c.increment ~pid else ignore (c.read ()));
    check =
      Linearize.Checker.check_trace (module Linearize.Spec.Counter) ~n:procs }

let scenario_snapshot ~impl ~procs ~readers ~value_range ~seed =
  let session = Session.create () in
  let s =
    Harness.Annotate.snapshot session
      (Harness.Instances.snapshot_sim session ~n:procs impl)
  in
  let rng = Random.State.make [| seed |] in
  let vals = Array.init procs (fun _ -> 1 + Random.State.int rng value_range) in
  { session;
    make_body =
      (fun pid () ->
        if pid < procs - readers then s.update ~pid vals.(pid)
        else ignore (s.scan ()));
    check =
      Linearize.Checker.check_trace (module Linearize.Spec.Snapshot) ~n:procs }

(* One faulted (or unfaulted) random run: crashes/CAS-failures instrument
   the bodies, stalls/halts gate the scheduler.  Deterministic in
   (scenario, plan, seed), which is what plan minimization replays. *)
let run_once { session; make_body; check } ~plan ~procs ~seed =
  Store.reset (Session.store session);
  let sched = Scheduler.create session in
  let body = Faults.instrument plan make_body in
  for pid = 0 to procs - 1 do
    ignore (Scheduler.spawn sched (body pid))
  done;
  (if plan = [] then Scheduler.run_random ~seed ~max_events:1_000_000 sched
   else Faults.run_random ~seed ~max_events:1_000_000 sched (Faults.gate plan));
  let trace = Scheduler.finish sched in
  (check trace, trace)

(* Run one random schedule; on violation, minimize the fault plan (does
   the same seed still fail under a smaller plan?) and then delta-debug
   the schedule down to a locally-minimal repro and print both.  Returns
   whether the seed passed plus the trace worth keeping for --trace
   export: the minimized violating execution, or the full passing one. *)
let run_seed ({ session; make_body; check } as scen) ~plan ~procs ~seed =
  let ok, trace = run_once scen ~plan ~procs ~seed in
  if ok then (true, trace)
  else begin
    let min_plan =
      if plan = [] then []
      else
        Faults.minimize
          ~test:(fun p -> not (fst (run_once scen ~plan:p ~procs ~seed)))
          plan
    in
    let _, trace =
      if min_plan == plan then (false, trace)
      else run_once scen ~plan:min_plan ~procs ~seed
    in
    let body = Faults.instrument min_plan make_body in
    let minimal, min_trace =
      Shrink.counterexample session ~n:procs ~make_body:body ~check
        (Trace.schedule trace)
    in
    Printf.printf
      "seed %d: VIOLATION; minimized to %d events (from %d).\n\
       replayable schedule: %s\n"
      seed
      (List.length minimal)
      (List.length (Trace.schedule trace))
      (String.concat " " (List.map string_of_int minimal));
    if plan <> [] then
      Printf.printf "replayable fault plan: --faults '%s' (given: '%s')\n"
        (Faults.to_string min_plan) (Faults.to_string plan);
    Fmt.pr "%a@." Trace.pp min_trace;
    (false, min_trace)
  end

let lookup_impl kind impl_name =
  let fail () =
    `Error
      (false,
       Printf.sprintf "unknown %s implementation %S" kind impl_name)
  in
  match kind with
  | "maxreg" -> (
    match
      List.find_opt
        (fun i -> Harness.Instances.maxreg_name i = impl_name)
        (Harness.Instances.Algorithm_a_literal :: Harness.Instances.all_maxregs)
    with
    | Some i -> `Maxreg i
    | None -> fail ())
  | "counter" -> (
    match
      List.find_opt
        (fun i -> Harness.Instances.counter_name i = impl_name)
        Harness.Instances.all_counters
    with
    | Some i -> `Counter i
    | None -> fail ())
  | "snapshot" -> (
    match
      List.find_opt
        (fun i -> Harness.Instances.snapshot_name i = impl_name)
        Harness.Instances.all_snapshots
    with
    | Some i -> `Snapshot i
    | None -> fail ())
  | _ -> `Error (false, Printf.sprintf "unknown object kind %S" kind)

(* {1 Exhaustive single-fault sweeps}

   Every 1-crash plan under DPOR (a crash is a program transformation, so
   DPOR's pruning stays sound over the instrumented bodies) and every
   1-stall plan under the gated explorer.  Surviving histories must
   linearize in every execution.  Exhaustive: keep --procs small. *)

let fault_sweep target kind impl_name procs readers value_range =
  let scen =
    match target with
    | `Maxreg i -> scenario_maxreg ~impl:i ~procs ~readers ~value_range ~seed:1
    | `Counter i -> scenario_counter ~impl:i ~procs ~readers ~seed:1
    | `Snapshot i -> scenario_snapshot ~impl:i ~procs ~readers ~value_range ~seed:1
  in
  let counts = Explore.solo_counts scen.session ~n:procs ~make_body:scen.make_body in
  let crash_plans = Faults.single_crash_plans ~counts in
  (* stalls starting beyond the longest possible execution never bind *)
  let max_point = Array.fold_left ( + ) 0 counts in
  let stall_points = 5 in
  let stall_plans =
    Faults.single_stall_plans ~n:procs ~max_point ~points:stall_points
  in
  let bad = ref [] in
  let classes = ref 0 in
  let scheds = ref 0 in
  List.iter
    (fun plan ->
      let ok = ref true in
      let stats =
        Dpor.run scen.session ~n:procs
          ~make_body:(Faults.instrument plan scen.make_body)
          ~on_complete:(fun t -> if not (scen.check t) then ok := false; true)
          ()
      in
      classes := !classes + stats.Dpor.explored;
      if stats.Dpor.truncated || not !ok then bad := plan :: !bad)
    crash_plans;
  List.iter
    (fun plan ->
      let ok = ref true in
      let stats =
        Faults.explore scen.session ~n:procs ~make_body:scen.make_body ~plan
          ~max_events:(2 * (max_point + stall_points) + 64)
          ~on_complete:(fun t -> if not (scen.check t) then ok := false; true)
          ()
      in
      scheds := !scheds + stats.Explore.explored;
      if stats.Explore.truncated || not !ok then bad := plan :: !bad)
    stall_plans;
  Printf.printf
    "%s/%s fault sweep, %d processes (%d readers): %d crash plans (%d dpor \
     classes), %d stall plans (%d schedules): %d violating plans%s\n"
    kind impl_name procs readers
    (List.length crash_plans)
    !classes
    (List.length stall_plans)
    !scheds
    (List.length !bad)
    (match !bad with
     | [] -> ""
     | ps ->
       ": "
       ^ String.concat "; "
           (List.map (fun p -> "--faults '" ^ Faults.to_string p ^ "'")
              (List.rev ps)));
  if !bad = [] then `Ok () else `Error (false, "fault sweep found violations")

let stress kind impl_name procs readers seeds value_range trace_file faults_str =
  match (lookup_impl kind impl_name, Faults.parse faults_str) with
  | (`Error _ as e), _ -> e
  | _, Error msg -> `Error (false, "bad --faults plan: " ^ msg)
  | ((`Maxreg _ | `Counter _ | `Snapshot _) as target), Ok plan ->
    let violations = ref [] in
    (* For --trace: the first minimized violating execution wins (that is
       the one worth staring at in a viewer); otherwise the last passing
       seed's trace, so the flag always produces a file. *)
    let violation_trace = ref None in
    let last_trace = ref None in
    for seed = 1 to seeds do
      let scen =
        match target with
        | `Maxreg i -> scenario_maxreg ~impl:i ~procs ~readers ~value_range ~seed
        | `Counter i -> scenario_counter ~impl:i ~procs ~readers ~seed
        | `Snapshot i ->
          scenario_snapshot ~impl:i ~procs ~readers ~value_range ~seed
      in
      let ok, trace = run_seed scen ~plan ~procs ~seed in
      if ok then last_trace := Some trace
      else begin
        violations := seed :: !violations;
        if !violation_trace = None then violation_trace := Some trace
      end
    done;
    Printf.printf
      "%s/%s: %d seeds, %d processes (%d readers)%s: %d violations%s\n"
      kind impl_name seeds procs readers
      (if plan = [] then ""
       else Printf.sprintf " under faults '%s'" (Faults.to_string plan))
      (List.length !violations)
      (match !violations with
       | [] -> ""
       | vs ->
         " at seeds "
         ^ String.concat ", " (List.map string_of_int (List.rev vs)));
    (match trace_file with
     | None -> ()
     | Some path -> (
       match (!violation_trace, !last_trace) with
       | Some t, _ ->
         Obs.Trace_export.to_file
           ~name:(Printf.sprintf "%s/%s minimized violation" kind impl_name)
           path t;
         Printf.printf "wrote Chrome trace of the minimized violation to %s\n"
           path
       | None, Some t ->
         Obs.Trace_export.to_file
           ~name:(Printf.sprintf "%s/%s (no violation; last seed)" kind impl_name)
           path t;
         Printf.printf "wrote Chrome trace of the last (passing) seed to %s\n"
           path
       | None, None -> ()));
    if !violations = [] then `Ok () else `Error (false, "violations found")

(* {1 Native chaos mode}

   Leaves the simulator entirely: real domains over the boxed native
   backend, with deterministic preemption/GC injection at every memory-op
   boundary (Harness.Chaos).  Two layers: short stamped bursts whose full
   histories go through the Wing-Gong checker, then invariant runs at
   scale (exact counter totals, monotone max-register reads, per-segment
   monotone snapshot scans) where complete histories would be far beyond
   the checker's reach. *)

(* Flip-forcing adaptive policy for chaos runs: the combining bar is 0
   (every epoch wants in) and the benefit bar 10 (no epoch earns its
   keep), so the dispatcher oscillates — maximal stress on mixed-mode
   windows.  Bursts use it as-is (epoch every 2 updates); the scale
   runs stretch the epoch to 64 updates. *)
let thrash_policy =
  { Harness.Adaptive.Policy.epoch_ops = 2;
    hysteresis = 1;
    min_updates = 1;
    update_share_min = 0.;
    cas_fail_min = 0.;
    stale_min = 2.;
    benefit_min = 10. }

let chaos ~seed ~ops =
  let domains = 4 in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let metrics = Obs.Metrics.create ~domains () in
  (* aggressive rates for the short bursts, so every burst sees faults *)
  let burst_cfg s =
    Harness.Chaos.config ~yield_ppm:200_000 ~storm:32 ~gc_ppm:50_000
      ~gc_bytes:2048 ~metrics ~seed:s ()
  in
  let burst_seeds = List.init 8 (fun i -> seed + i) in
  List.iter
    (fun s ->
      let c = burst_cfg s in
      let reg =
        Harness.Chaos.maxreg c ~n:3 ~bound:64 Harness.Instances.Algorithm_a
      in
      let h = Harness.Chaos.burst_maxreg c ~domains:3 ~ops_per_domain:8 reg in
      if not (Linearize.Checker.check (module Linearize.Spec.Max_register) ~n:3 h)
      then fail "maxreg burst (seed %d) not linearizable" s;
      let cnt =
        Harness.Chaos.counter c ~n:3 ~bound:64 Harness.Instances.Farray_counter
      in
      let h = Harness.Chaos.burst_counter c ~domains:3 ~ops_per_domain:8 cnt in
      if not (Linearize.Checker.check (module Linearize.Spec.Counter) ~n:3 h)
      then fail "counter burst (seed %d) not linearizable" s;
      let sn =
        Harness.Chaos.snapshot c ~n:3 Harness.Instances.Farray_snapshot
      in
      let h = Harness.Chaos.burst_snapshot c ~domains:3 ~ops_per_domain:6 sn in
      if not (Linearize.Checker.check (module Linearize.Spec.Snapshot) ~n:3 h)
      then fail "snapshot burst (seed %d) not linearizable" s;
      (* the flat-combining backends, injection at op boundaries: storms
         can park a domain right after it published to its arena slot or
         released the combiner lock *)
      List.iter
        (fun impl ->
          let reg, _arena =
            Option.get (Harness.Chaos.maxreg_combining c ~n:3 ~domains:3 impl)
          in
          let h =
            Harness.Chaos.burst_maxreg c ~domains:3 ~ops_per_domain:8 reg
          in
          if
            not
              (Linearize.Checker.check
                 (module Linearize.Spec.Max_register)
                 ~n:3 h)
          then
            fail "combining %s burst (seed %d) not linearizable"
              (Harness.Instances.maxreg_name impl)
              s)
        [ Harness.Instances.Algorithm_a; Harness.Instances.Cas_maxreg ];
      let ccnt, _arena =
        Option.get
          (Harness.Chaos.counter_combining c ~n:3 ~domains:3
             Harness.Instances.Farray_counter)
      in
      let h = Harness.Chaos.burst_counter c ~domains:3 ~ops_per_domain:8 ccnt in
      if not (Linearize.Checker.check (module Linearize.Spec.Counter) ~n:3 h)
      then fail "combining counter burst (seed %d) not linearizable" s;
      (* the adaptive backends, same op-boundary seam: default policies
         first (dispatch live, flips rare at burst scale)... *)
      List.iter
        (fun impl ->
          let reg, _arena, _report =
            Option.get (Harness.Chaos.maxreg_adaptive c ~n:3 ~domains:3 impl)
          in
          let h =
            Harness.Chaos.burst_maxreg c ~domains:3 ~ops_per_domain:8 reg
          in
          if
            not
              (Linearize.Checker.check
                 (module Linearize.Spec.Max_register)
                 ~n:3 h)
          then
            fail "adaptive %s burst (seed %d) not linearizable"
              (Harness.Instances.maxreg_name impl)
              s)
        [ Harness.Instances.Algorithm_a; Harness.Instances.Cas_maxreg ];
      let acnt, _arena, _report =
        Option.get
          (Harness.Chaos.counter_adaptive c ~n:3 ~domains:3
             Harness.Instances.Farray_counter)
      in
      let h = Harness.Chaos.burst_counter c ~domains:3 ~ops_per_domain:8 acnt in
      if not (Linearize.Checker.check (module Linearize.Spec.Counter) ~n:3 h)
      then fail "adaptive counter burst (seed %d) not linearizable" s;
      (* ...then a thrashing policy (epoch every 2 updates, hysteresis 1,
         unreachable benefit bar) so the mode flips INSIDE the burst and
         storms land astride the epoch lock *)
      let treg, _handle =
        Harness.Instances.alg_a_native_adaptive ~policy:thrash_policy ~n:3
          ~domains:3 ()
      in
      let treg = Harness.Chaos.instrument_maxreg c treg in
      let h = Harness.Chaos.burst_maxreg c ~domains:3 ~ops_per_domain:8 treg in
      if not (Linearize.Checker.check (module Linearize.Spec.Max_register) ~n:3 h)
      then fail "adaptive thrashing burst (seed %d) not linearizable" s)
    burst_seeds;
  (* invariant runs at scale, production injection rates *)
  let c = Harness.Chaos.config ~metrics ~seed () in
  let per_domain = max 1 (ops / domains) in
  let cnt =
    Harness.Chaos.counter c ~n:domains ~bound:(1 lsl 30)
      Harness.Instances.Farray_counter
  in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains (fun pid ->
        for _ = 1 to per_domain do
          cnt.increment ~pid
        done)
  in
  if cnt.read () <> domains * per_domain then
    fail "counter total %d, expected %d" (cnt.read ()) (domains * per_domain);
  let reg =
    Harness.Chaos.maxreg c ~n:domains ~bound:(1 lsl 30)
      Harness.Instances.Algorithm_a
  in
  let reads_monotone = ref true in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains (fun pid ->
        if pid = 0 then begin
          let last = ref 0 in
          for _ = 1 to per_domain do
            let v = reg.read_max () in
            if v < !last then reads_monotone := false;
            last := v
          done
        end
        else
          for v = 1 to per_domain do
            reg.write_max ~pid ((v * domains) + pid)
          done)
  in
  if not !reads_monotone then fail "max-register reads went backwards";
  let expect = (per_domain * domains) + (domains - 1) in
  if reg.read_max () <> expect then
    fail "final maximum %d, expected %d" (reg.read_max ()) expect;
  let sn =
    Harness.Chaos.snapshot c ~n:domains Harness.Instances.Farray_snapshot
  in
  let scans_monotone = ref true in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains (fun pid ->
        if pid = 0 then begin
          (* single-writer segments written in increasing order: every
             component must be non-decreasing across successive scans *)
          let last = Array.make domains 0 in
          for _ = 1 to per_domain do
            let v = sn.scan () in
            Array.iteri
              (fun i x ->
                if x < last.(i) then scans_monotone := false;
                last.(i) <- x)
              v
          done
        end
        else
          for v = 1 to per_domain do
            sn.update ~pid v
          done)
  in
  if not !scans_monotone then fail "snapshot scans went backwards";
  (* combining invariant runs at scale: exact totals and monotone maxima
     must survive chaos through the arena protocol too *)
  let ccnt, cnt_arena =
    Option.get
      (Harness.Chaos.counter_combining c ~n:domains ~domains
         Harness.Instances.Farray_counter)
  in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains (fun pid ->
        for _ = 1 to per_domain do
          ccnt.increment ~pid
        done)
  in
  if ccnt.read () <> domains * per_domain then
    fail "combining counter total %d, expected %d" (ccnt.read ())
      (domains * per_domain);
  let creg, reg_arena =
    Option.get
      (Harness.Chaos.maxreg_combining c ~n:domains ~domains
         Harness.Instances.Algorithm_a)
  in
  let creads_monotone = ref true in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains (fun pid ->
        if pid = 0 then begin
          let last = ref 0 in
          for _ = 1 to per_domain do
            let v = creg.read_max () in
            if v < !last then creads_monotone := false;
            last := v
          done
        end
        else
          for v = 1 to per_domain do
            creg.write_max ~pid ((v * domains) + pid)
          done)
  in
  if not !creads_monotone then fail "combining max-register reads went backwards";
  let expect = (per_domain * domains) + (domains - 1) in
  if creg.read_max () <> expect then
    fail "combining final maximum %d, expected %d" (creg.read_max ()) expect;
  (* adaptive invariant runs at scale with a flip-forcing policy: exact
     totals and maxima must survive hundreds of mixed-mode windows *)
  let flip_policy =
    { thrash_policy with Harness.Adaptive.Policy.epoch_ops = 64 }
  in
  let acnt, achandle =
    Harness.Instances.farray_c_native_adaptive ~policy:flip_policy ~n:domains
      ~domains ()
  in
  let acnt = Harness.Chaos.instrument_counter c acnt in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains (fun pid ->
        for _ = 1 to per_domain do
          acnt.increment ~pid
        done)
  in
  if acnt.read () <> domains * per_domain then
    fail "adaptive counter total %d, expected %d" (acnt.read ())
      (domains * per_domain);
  let areg, ahandle =
    Harness.Instances.alg_a_native_adaptive ~policy:flip_policy ~n:domains
      ~domains ()
  in
  let areg = Harness.Chaos.instrument_maxreg c areg in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains (fun pid ->
        for v = 1 to per_domain do
          areg.write_max ~pid ((v * domains) + pid)
        done)
  in
  if areg.read_max () <> expect then
    fail "adaptive final maximum %d, expected %d" (areg.read_max ()) expect;
  let areport = Harness.Adaptive.Alg_a.report ahandle in
  let acreport = Harness.Adaptive.Farray_c.report achandle in
  if areport.Harness.Adaptive.epoch_flips = 0 then
    fail "adaptive maxreg never flipped under the flip-forcing policy";
  Obs.Metrics.record_combine_stats metrics ~domain:0
    (Smem.Combine.stats cnt_arena);
  Obs.Metrics.record_combine_stats metrics ~domain:0
    (Smem.Combine.stats reg_arena);
  let t = Obs.Metrics.totals metrics in
  Printf.printf
    "chaos seed %d: %d bursts checked, %d ops/structure over %d domains\n\
     injected: %d yield storms, %d gc pressure events, %d stalls\n\
     combining (scale runs): %d ops in %d batches (max %d), %d eliminations, \
     %d lock acquisitions\n\
     adaptive (scale runs): maxreg %d flips over %d epochs (%.1f%% combining), \
     counter %d flips over %d epochs (%.1f%% combining)\n"
    seed
    (10 * List.length burst_seeds)
    (domains * per_domain) domains t.Obs.Metrics.fault_yields
    t.Obs.Metrics.fault_gcs t.Obs.Metrics.fault_stalls
    t.Obs.Metrics.combined_ops t.Obs.Metrics.batches t.Obs.Metrics.batch_max
    t.Obs.Metrics.eliminations t.Obs.Metrics.combiner_locks
    areport.Harness.Adaptive.epoch_flips areport.Harness.Adaptive.epochs
    areport.Harness.Adaptive.combining_ops_pct
    acreport.Harness.Adaptive.epoch_flips acreport.Harness.Adaptive.epochs
    acreport.Harness.Adaptive.combining_ops_pct;
  match List.rev !failures with
  | [] ->
    print_endline "no violations";
    `Ok ()
  | fs ->
    List.iter (fun f -> Printf.printf "VIOLATION: %s\n" f) fs;
    `Error (false, "chaos run found violations")

let main kind impl_name procs readers seeds value_range trace_file faults_str
    sweep chaos_seed chaos_ops =
  match chaos_seed with
  | Some seed -> chaos ~seed ~ops:chaos_ops
  | None ->
    if sweep then
      match lookup_impl kind impl_name with
      | `Error _ as e -> e
      | (`Maxreg _ | `Counter _ | `Snapshot _) as target ->
        fault_sweep target kind impl_name procs readers value_range
    else
      stress kind impl_name procs readers seeds value_range trace_file
        faults_str

open Cmdliner

let kind =
  Arg.(
    value
    & opt string "maxreg"
    & info [ "object" ] ~docv:"KIND" ~doc:"Object kind: maxreg, counter or snapshot.")

let impl_name =
  Arg.(
    value
    & opt string "algorithm-a"
    & info [ "impl" ] ~docv:"NAME"
        ~doc:
          "Implementation name, as printed by the experiment tables (e.g. \
           algorithm-a, algorithm-a-literal, aac, cas-loop, farray, naive, \
           afek, double-collect).")

let procs =
  Arg.(value & opt int 4 & info [ "procs" ] ~doc:"Concurrent processes (keep small).")

let readers =
  Arg.(value & opt int 1 & info [ "readers" ] ~doc:"How many processes read instead of writing.")

let seeds =
  Arg.(value & opt int 500 & info [ "seeds" ] ~doc:"Number of random schedules to try.")

let value_range =
  Arg.(value & opt int 8 & info [ "values" ] ~doc:"Operand range (small ranges provoke duplicate-value races).")

let trace_file =
  Arg.(value
       & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:
             "Write a Chrome trace_event JSON to $(docv): the minimized \
              violating execution if any seed fails, else the last seed's \
              execution.  Open in chrome://tracing or ui.perfetto.dev.")

let faults_str =
  Arg.(
    value
    & opt string "none"
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Fault plan applied to every seed: comma-separated \
           crash:PID@AFTER, casfail:PID#NTH, stall:PID@AT+POINTS, \
           haltbut:PID@AT ('none' for no faults).  On violation the plan \
           is minimized alongside the schedule.")

let sweep =
  Arg.(
    value & flag
    & info [ "fault-sweep" ]
        ~doc:
          "Exhaustively verify every single-crash plan (under DPOR) and \
           every single-stall plan (under the gated explorer) for the \
           chosen object: all surviving histories must linearize.  \
           Exhaustive — keep --procs at 3, and prefer a single writer \
           (the stall sweep enumerates plain interleavings).")

let chaos_seed =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos" ] ~docv:"SEED"
        ~doc:
          "Native-backend chaos run: multi-domain linearizability bursts \
           and large invariant runs under deterministic preemption/GC \
           injection derived from $(docv).  Ignores the simulator options.")

let chaos_ops =
  Arg.(
    value
    & opt int 1_000_000
    & info [ "chaos-ops" ] ~docv:"N"
        ~doc:"Operations per structure for the --chaos invariant runs.")

let cmd =
  Cmd.v
    (Cmd.info "stress" ~version:"1.0"
       ~doc:
         "Randomized linearizability stress tests for the PODC'14 \
          restricted-use objects, with fault injection (--faults, \
          --fault-sweep) and native-backend chaos runs (--chaos).")
    Term.(ret (const main $ kind $ impl_name $ procs $ readers $ seeds
               $ value_range $ trace_file $ faults_str $ sweep $ chaos_seed
               $ chaos_ops))

let () = exit (Cmd.eval cmd)
