(* The tradeoff-dial counter: Theorem 1's frontier as one parameterized
   construction.  The N per-process leaves are grouped into f(N) blocks
   of ceil(N/f) leaves ({!Treeprim.Dial}); each block is a sum f-array,
   so CounterRead collects the f block roots in Theta(f) steps and
   CounterIncrement bumps the caller's leaf and propagates only to its
   own block root in O(log(N/f)) steps.

   The extreme dials coincide with the existing structures — F_one is
   Farray_counter (one block of N leaves), F_n is Naive_counter (N
   single-leaf blocks, where propagation is empty and an increment is a
   read + write of the own cell) — and F_log / F_sqrt realize the
   interior points the paper's tradeoff curve promises. *)

open Memsim

module Make (M : Smem.Memory_intf.MEMORY) = struct
  module F = Farray.Make (M)

  type t = { blocks : F.t array; bsize : int }

  let sum a b =
    Simval.Int (Simval.int_or ~default:0 a + Simval.int_or ~default:0 b)

  let create ~n ~dial =
    if n <= 0 then invalid_arg "Dial_counter.create: n must be > 0";
    let bsize = Treeprim.Dial.block_size ~n dial in
    let nblocks = (n + bsize - 1) / bsize in
    { blocks =
        Array.init nblocks (fun b ->
            F.create ~n:(min bsize (n - (b * bsize))) ~combine:sum ());
      bsize }

  let read t =
    let total = ref 0 in
    for b = 0 to Array.length t.blocks - 1 do
      total := !total + Simval.int_or ~default:0 (F.read t.blocks.(b))
    done;
    !total

  let increment t ~pid =
    let fa = t.blocks.(pid / t.bsize) in
    let leaf = pid mod t.bsize in
    let c = Simval.int_or ~default:0 (F.read_leaf fa leaf) in
    F.update fa ~leaf (Simval.Int (c + 1))
end

(* The zero-alloc native twin, over {!Farray.Unboxed} blocks: same block
   geometry and step counts, inline Atomic primitives, the [bot]
   sentinel contributing 0 to the sum.  [padded] (default true) gives
   every tree node its own cache line. *)
module Unboxed = struct
  module F = Farray.Unboxed

  type t = { blocks : F.t array; bsize : int }

  let bot = F.bot

  let sum a b = (if a = bot then 0 else a) + if b = bot then 0 else b

  let create ?(padded = true) ~n ~dial () =
    if n <= 0 then invalid_arg "Dial_counter.create: n must be > 0";
    let bsize = Treeprim.Dial.block_size ~n dial in
    let nblocks = (n + bsize - 1) / bsize in
    { blocks =
        Array.init nblocks (fun b ->
            F.create ~padded ~n:(min bsize (n - (b * bsize))) ~combine:sum ());
      bsize }

  let read t =
    let total = ref 0 in
    for b = 0 to Array.length t.blocks - 1 do
      let v = F.read t.blocks.(b) in
      total := !total + if v = bot then 0 else v
    done;
    !total

  let increment t ~pid =
    let fa = t.blocks.(pid / t.bsize) in
    let leaf = pid mod t.bsize in
    let c = F.read_leaf fa leaf in
    let c = if c = bot then 0 else c in
    F.update fa ~leaf (c + 1)

  (* Batched increment, mirroring {!Farray_counter.Unboxed.add}: absorb
     [k] at the caller's own leaf with one in-block propagation. *)
  let add t ~pid k =
    if k < 0 then invalid_arg "Dial_counter.add: negative k";
    let fa = t.blocks.(pid / t.bsize) in
    let leaf = pid mod t.bsize in
    let c = F.read_leaf fa leaf in
    let c = if c = bot then 0 else c in
    F.update fa ~leaf (c + k)

  let increment_metered t ~metrics ~pid =
    let fa = t.blocks.(pid / t.bsize) in
    let leaf = pid mod t.bsize in
    let c = F.read_leaf fa leaf in
    let c = if c = bot then 0 else c in
    F.update_metered fa ~metrics ~domain:pid ~leaf (c + 1)

  let add_metered t ~metrics ~pid k =
    if not metrics.Obs.Metrics.enabled then add t ~pid k
    else begin
      if k < 0 then invalid_arg "Dial_counter.add: negative k";
      let fa = t.blocks.(pid / t.bsize) in
      let leaf = pid mod t.bsize in
      let c = F.read_leaf fa leaf in
      let c = if c = bot then 0 else c in
      F.update_metered fa ~metrics ~domain:pid ~leaf (c + k)
    end
end
