(** The tradeoff-dial counter: Theorem 1's frontier as one block-
    structured construction.  A dial point f ({!Treeprim.Dial}) groups
    the N per-process leaves into f blocks of ceil(N/f) leaves, each a
    sum f-array: CounterRead collects the f block roots in Theta(f)
    steps, CounterIncrement propagates only inside its own block in
    O(log(N/f)) steps.  [F_one] coincides with {!Farray_counter},
    [F_n] with {!Naive_counter}. *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  type t

  val create : n:int -> dial:Treeprim.Dial.t -> t
  val increment : t -> pid:int -> unit
  (** Leaf bump + in-block propagation: O(log(N/f)) events. *)

  val read : t -> int
  (** Collect of the f block roots: Theta(f) events. *)
end

(** The zero-alloc native twin over {!Farray.Unboxed} blocks: identical
    geometry and step counts, no allocation per read/increment.
    [padded] (default true) puts each tree node on its own cache
    line. *)
module Unboxed : sig
  type t

  val create : ?padded:bool -> n:int -> dial:Treeprim.Dial.t -> unit -> t
  val increment : t -> pid:int -> unit

  val increment_metered : t -> metrics:Obs.Metrics.t -> pid:int -> unit
  (** [increment] with refresh rounds and CAS outcomes recorded under
      shard [pid]; free with {!Obs.Metrics.disabled}. *)

  val add : t -> pid:int -> int -> unit
  (** [add t ~pid k]: absorb a batch of [k] at the caller's own leaf
      with one in-block propagation (the combining layer's apply). *)

  val add_metered : t -> metrics:Obs.Metrics.t -> pid:int -> int -> unit
  val read : t -> int
end
