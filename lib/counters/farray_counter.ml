(* Jayanti's counter from an f-array with f = sum [14]: CounterRead is a
   single read of the root (O(1)), CounterIncrement bumps the caller's leaf
   and propagates (O(log N)).  Theorem 1 of the paper shows this read/update
   point is optimal for read/write/CAS implementations. *)

open Memsim

module Make (M : Smem.Memory_intf.MEMORY) = struct
  module F = Farray.Make (M)

  type t = F.t

  let sum a b = Simval.Int (Simval.int_or ~default:0 a + Simval.int_or ~default:0 b)

  let create ~n = F.create ~n ~combine:sum ()

  let read t = Simval.int_or ~default:0 (F.read t)

  let increment t ~pid =
    let c = Simval.int_or ~default:0 (F.read_leaf t pid) in
    F.update t ~leaf:pid (Simval.Int (c + 1))
end

(* The same counter over the unboxed f-array ({!Farray.Unboxed}): the
   [bot] sentinel contributes 0 to the sum, and read/increment allocate
   nothing.  [padded] (default true) puts each tree node on its own cache
   line — with one leaf per process this is the structure most exposed to
   false sharing between incrementing domains. *)
module Unboxed = struct
  module F = Farray.Unboxed

  type t = F.t

  let bot = F.bot

  let sum a b = (if a = bot then 0 else a) + if b = bot then 0 else b

  let create ?(padded = true) ~n () = F.create ~padded ~n ~combine:sum ()

  let read t =
    let v = F.read t in
    if v = bot then 0 else v

  let increment t ~pid =
    let c = F.read_leaf t pid in
    let c = if c = bot then 0 else c in
    F.update t ~leaf:pid (c + 1)

  (* Batched increment, for the flat-combining layer: add [k] to the
     caller's own leaf with ONE update (one propagation for the whole
     batch).  The counter's value is the sum over all leaves, so which
     leaf absorbs a combined batch is immaterial — the combiner uses its
     own, preserving the per-leaf single-writer discipline. *)
  let add t ~pid k =
    if k < 0 then invalid_arg "Farray_counter.add: negative k";
    let c = F.read_leaf t pid in
    let c = if c = bot then 0 else c in
    F.update t ~leaf:pid (c + k)

  (* [increment] through the metered f-array update: propagation refresh
     rounds and CAS outcomes recorded under shard [pid]. *)
  let increment_metered t ~metrics ~pid =
    let c = F.read_leaf t pid in
    let c = if c = bot then 0 else c in
    F.update_metered t ~metrics ~domain:pid ~leaf:pid (c + 1)

  let add_metered t ~metrics ~pid k =
    if not metrics.Obs.Metrics.enabled then add t ~pid k
    else begin
      if k < 0 then invalid_arg "Farray_counter.add: negative k";
      let c = F.read_leaf t pid in
      let c = if c = bot then 0 else c in
      F.update_metered t ~metrics ~domain:pid ~leaf:pid (c + k)
    end
end
