(** Jayanti's counter from an f-array with f = sum: CounterRead O(1),
    CounterIncrement O(log N), from read/write/CAS.  Theorem 1 of the
    paper shows this read/update point is optimal. *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  type t

  val create : n:int -> t
  val increment : t -> pid:int -> unit

  val read : t -> int
  (** One shared-memory event. *)
end

(** The same counter over the unboxed f-array ({!Farray.Unboxed}):
    identical step counts, zero allocation per read/increment.  [padded]
    (default true) puts each tree node on its own cache line. *)
module Unboxed : sig
  type t

  val create : ?padded:bool -> n:int -> unit -> t
  val increment : t -> pid:int -> unit

  val increment_metered : t -> metrics:Obs.Metrics.t -> pid:int -> unit
  (** [increment] with propagation refresh rounds and CAS outcomes
      recorded under shard [pid]; free with {!Obs.Metrics.disabled}. *)

  val add : t -> pid:int -> int -> unit
  (** [add t ~pid k] adds [k] to the caller's own leaf with one update
      (one propagation for the whole batch) — the combining layer's
      apply: the counter value is the sum over leaves, so the combiner
      absorbs a batch at its own leaf without breaking the single-writer
      discipline. *)

  val add_metered : t -> metrics:Obs.Metrics.t -> pid:int -> int -> unit

  val read : t -> int
end
