(* Baseline counter at the opposite end of the tradeoff: one single-writer
   register per process.  CounterIncrement is O(1) (read + write of the own
   register); CounterRead collects all N registers (O(N)).  Wait-free, from
   reads and writes only. *)

open Memsim

module Make (M : Smem.Memory_intf.MEMORY) = struct
  type t = { cells : M.t array; n : int }

  let create ~n =
    if n <= 0 then invalid_arg "Naive_counter.create: n must be > 0";
    { cells = Array.init n (fun i -> M.make ~name:(Printf.sprintf "cell%d" i) (Simval.Int 0)); n }

  let increment t ~pid =
    if pid < 0 || pid >= t.n then invalid_arg "Naive_counter.increment: bad pid";
    let c = Simval.int_or ~default:0 (M.read t.cells.(pid)) in
    M.write t.cells.(pid) (Simval.Int (c + 1))

  let read t =
    let total = ref 0 in
    for i = 0 to t.n - 1 do
      total := !total + Simval.int_or ~default:0 (M.read t.cells.(i))
    done;
    !total
end

(* The same counter on bare [int Atomic.t] cells, accessed by the Atomic
   primitives directly (inline).  An array of adjacent one-word atomics is
   the structure most exposed to false sharing — each domain's increments
   invalidate its neighbours' cache lines — so [padded] defaults to true,
   giving every cell its own line. *)
module Unboxed = struct
  type t = { cells : int Atomic.t array; n : int }

  let create ?(padded = true) ~n () =
    if n <= 0 then invalid_arg "Naive_counter.create: n must be > 0";
    let mk () =
      if padded then Smem.Unboxed_memory.Padded.make 0
      else Smem.Unboxed_memory.make 0
    in
    { cells = Array.init n (fun _ -> mk ()); n }

  let increment t ~pid =
    if pid < 0 || pid >= t.n then invalid_arg "Naive_counter.increment: bad pid";
    let cell = t.cells.(pid) in
    Atomic.set cell (Atomic.get cell + 1)

  (* Batched increment for the combining layer's control backend: the
     counter value is the sum over cells, so a combiner may absorb a
     whole batch into its own (still single-writer) cell.  For this
     structure combining is expected to LOSE — an increment is already
     one write to an owned line — which is exactly why the control
     exists (see EXPERIMENTS.md). *)
  let add t ~pid k =
    if pid < 0 || pid >= t.n then invalid_arg "Naive_counter.add: bad pid";
    if k < 0 then invalid_arg "Naive_counter.add: negative k";
    let cell = t.cells.(pid) in
    Atomic.set cell (Atomic.get cell + k)

  let read t =
    let total = ref 0 in
    for i = 0 to t.n - 1 do
      total := !total + Atomic.get t.cells.(i)
    done;
    !total
end
