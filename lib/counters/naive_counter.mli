(** The opposite end of the tradeoff: one single-writer register per
    process.  CounterIncrement O(1), CounterRead O(N).  Wait-free, reads
    and writes only. *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  type t

  val create : n:int -> t
  val increment : t -> pid:int -> unit
  val read : t -> int
end

(** The same counter on bare [int Atomic.t] cells (see
    {!Smem.Unboxed_memory}).  An array of adjacent one-word atomics is the
    structure most exposed to false sharing, so [padded] defaults to true:
    every per-process register gets its own cache line. *)
module Unboxed : sig
  type t

  val create : ?padded:bool -> n:int -> unit -> t
  val increment : t -> pid:int -> unit

  val add : t -> pid:int -> int -> unit
  (** [add t ~pid k] adds [k] to the caller's own cell — the combining
      layer's apply (the counter value is the sum over cells). *)

  val read : t -> int
end
