(** A1 — ablating the B1 left subtree of Algorithm A: WriteMax(v) step
    counts with the paper's B1 shape vs a complete left subtree (the B1
    shape is what makes small-value writes O(log v) instead of
    O(log N)). *)

val run : ?ns:int list -> unit -> string
(** Rendered table over register sizes [ns] (default 64, 1024, 16384). *)
