(** A2 — ablating the double refresh of Propagate, exhaustively: with
    [refreshes = 2] every interleaving of two concurrent f-array counter
    increments ends at count 2; with [refreshes = 1] a measurable
    fraction of interleavings loses an increment. *)

val run : unit -> string
(** Rendered table (refreshes/node, interleavings, lost updates). *)
