(* E10 — where the tradeoff's crossovers fall.

   The tradeoff only matters if workloads on both sides of it exist.  Two
   crossover sweeps:

   (a) Step-count crossover, counters: a workload of I increments and R
       reads costs (per the measured per-op step counts)

           naive    ~ 2*I + N*R
           f-array  ~ (8 log N)*I + R

       so the f-array wins once reads are more than ~ (8 log N)/N of the
       mix; the table reports the measured per-op costs and the resulting
       break-even read share for several N.

   (b) Wall-clock crossover, max registers: native throughput of
       Algorithm A vs the AAC register as the read share sweeps 0..99% —
       Algorithm A's O(1) reads win read-heavy mixes, AAC's cheaper
       logarithmic writes win write-heavy ones; the table shows the
       measured winner flipping. *)

open Memsim

(* {1 (a) counters, exact step counts} *)

type counter_row = {
  n : int;
  naive_read : int;
  naive_inc : int;
  farray_read : int;
  farray_inc : int;
  breakeven_read_share : float;
      (* read share r* where r*naive_read + (1-r)*naive_inc =
         r*farray_read + (1-r)*farray_inc *)
}

let counter_crossover ~n =
  let measure impl =
    let session = Session.create () in
    let c = Harness.Instances.counter_sim session ~n ~bound:(4 * n) impl in
    for pid = 0 to n - 1 do
      c.increment ~pid
    done;
    let inc =
      Session.reset_steps session;
      c.increment ~pid:0;
      Session.direct_steps session
    in
    let read =
      Session.reset_steps session;
      ignore (c.read ());
      Session.direct_steps session
    in
    (read, inc)
  in
  let naive_read, naive_inc = measure Harness.Instances.Naive_counter in
  let farray_read, farray_inc = measure Harness.Instances.Farray_counter in
  (* r * nr + (1-r) * ni = r * fr + (1-r) * fi *)
  let breakeven =
    let nr = float_of_int naive_read
    and ni = float_of_int naive_inc
    and fr = float_of_int farray_read
    and fi = float_of_int farray_inc in
    (fi -. ni) /. ((nr -. fr) +. (fi -. ni))
  in
  { n; naive_read; naive_inc; farray_read; farray_inc;
    breakeven_read_share = breakeven }

let counter_table rows =
  Harness.Tables.render
    ~title:
      "E10a: counter crossover — steps per op and the read share above \
       which the f-array counter beats the naive counter"
    ~header:
      [ "N"; "naive read"; "naive inc"; "farray read"; "farray inc";
        "break-even read share" ]
    (List.map
       (fun r ->
         [ string_of_int r.n; string_of_int r.naive_read;
           string_of_int r.naive_inc; string_of_int r.farray_read;
           string_of_int r.farray_inc;
           Printf.sprintf "%.1f%%" (100. *. r.breakeven_read_share) ])
       rows)

(* {1 (b) max registers, native throughput across read shares} *)

type throughput_row = {
  read_pct : int;
  alg_a : float;
  aac : float;
  winner : string;
}

let maxreg_crossover ~seconds =
  let domains = Harness.Throughput.recommended_domains ~floor:2 ~cap:4 () in
  (* A register sized for a large system (N = 4096 process slots) with a
     small value bound (M = 256): Algorithm A's writes pay O(log v) B1
     levels while AAC's pay only O(log M) switch levels — the regime where
     AAC's cheap writes can win write-heavy mixes. *)
  let n = 4096 and bound = 256 in
  (* Measured through {!Harness.Throughput} rather than a hand-rolled
     domain loop: the shared harness counts in domain-local refs with
     padded publish slots and divides by the measured barrier-to-ack
     window, where the previous ad-hoc loop paid an [Atomic.incr] per
     measured operation and divided by the requested seconds (both biases
     PR 2/3 removed from E7 and bin/bench.exe). *)
  let run impl ~read_pct =
    let reg = Harness.Instances.maxreg_native ~n ~bound impl in
    let rngs =
      Array.init domains (fun d -> Random.State.make [| d; read_pct |])
    in
    Harness.Throughput.run_mix ~domains ~seconds ~op:(fun d i ->
        if Random.State.int rngs.(d) 100 < read_pct then
          ignore (reg.read_max ())
        else reg.write_max ~pid:d (((i * domains) + d) mod bound))
  in
  List.map
    (fun read_pct ->
      let alg_a = run Harness.Instances.Algorithm_a ~read_pct in
      let aac = run Harness.Instances.Aac_maxreg ~read_pct in
      { read_pct;
        alg_a;
        aac;
        winner = (if alg_a >= aac then "algorithm-a" else "aac") })
    [ 0; 25; 50; 75; 90; 99 ]

let maxreg_table rows =
  Harness.Tables.render
    ~title:
      "E10b: max-register crossover — native throughput (Mops/s), N=4096 \
       slots, M=256, as the read share sweeps; AAC's cheap O(log M) writes \
       vs Algorithm A's O(1) reads"
    ~header:[ "read %"; "algorithm-a"; "aac"; "winner" ]
    (List.map
       (fun r ->
         [ string_of_int r.read_pct;
           Printf.sprintf "%.2f" (r.alg_a /. 1e6);
           Printf.sprintf "%.2f" (r.aac /. 1e6);
           r.winner ])
       rows)

let run ?(seconds = 0.25) () =
  counter_table (List.map (fun n -> counter_crossover ~n) [ 16; 64; 256; 1024 ])
  ^ "\n"
  ^ maxreg_table (maxreg_crossover ~seconds)
