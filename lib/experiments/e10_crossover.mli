(** E10 — where the tradeoff's crossovers fall: (a) the read share above
    which the f-array counter's O(1) reads beat the naive counter's O(1)
    increments (exact step counts), and (b) the native-throughput
    crossover between Algorithm A's O(1) reads and the AAC register's
    cheaper bounded-domain writes as the read share sweeps 0..99%. *)

val run : ?seconds:float -> unit -> string
(** Rendered tables; [seconds] per measured throughput cell (default
    0.25). *)
