(** E1 — max-register step complexity (Theorem 6 / the tradeoff point):
    exact solo event counts for ReadMax and WriteMax at small, mid and
    large values, across Algorithm A, the AAC register, the unbounded B1
    register and the CAS-loop baseline. *)

val run : ?ns:int list -> unit -> string
(** Rendered table over process counts [ns] (default 16..1024); the value
    bound is N² per row. *)
