(** E2 — counter step complexity envelopes: exact event counts for
    CounterRead and worst-case CounterIncrement across the AAC, f-array,
    naive and snapshot-based counters. *)

type row = {
  impl : string;
  n : int;
  read_steps : int;
  inc_steps : int;  (** worst over processes, after n warm-up increments *)
}

val measure : Harness.Instances.counter_impl -> n:int -> row
(** Exact step counts for one implementation at [n] processes (bound
    4N).  Exposed because E4 uses the measured [read_steps] as the f(N)
    in Theorem 1's predicted round bound. *)

val run : ?ns:int list -> unit -> string
(** Rendered table over process counts [ns] (default 4..256). *)
