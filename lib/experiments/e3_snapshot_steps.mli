(** E3 — snapshot step complexity envelopes: exact event counts for scan
    and worst-case update across the f-array, double-collect and Afek et
    al. snapshots, with their wait-freedom status. *)

val run : ?ns:int list -> unit -> string
(** Rendered table over process counts [ns]. *)
