(* E4 — the Theorem 1 tradeoff, empirically.

   Running the sigma-round adversary against each counter regenerates the
   tradeoff curve: with read complexity f(N), completing N-1 adversarially
   scheduled increments takes at least ~ log3(N / f(N)) rounds, each round
   costing every unfinished incrementer one step.  Also verifies Lemma 1
   (familiarity growth <= 3x per round) and Lemma 3 (the reader ends up
   aware of everybody) on every run. *)

let f_of impl n =
  (* the measured read step complexity, used as f(N) in the bound *)
  let r = E2_counter_steps.measure impl ~n in
  r.E2_counter_steps.read_steps

let sweep ?on_trace ?(ns = [ 8; 16; 32; 64; 128 ]) () =
  List.concat_map
    (fun n ->
      List.map
        (fun impl ->
          let f_n = f_of impl n in
          Lowerbound.Theorem1.run ?on_trace
            ~impl:(Harness.Instances.counter_name impl)
            ~make_counter:(fun session ~n ->
              Harness.Instances.counter_sim session ~n ~bound:(4 * n) impl)
            ~n ~f_n ())
        [ Harness.Instances.Farray_counter;
          Harness.Instances.Aac_counter;
          Harness.Instances.Naive_counter;
          Harness.Instances.Snapshot_counter Harness.Instances.Farray_snapshot ])
    ns

let table rows =
  Harness.Tables.render
    ~title:
      "E4: Theorem 1 adversary — sigma-rounds to complete N-1 increments \
       (>= log3(N/f(N)) predicted)"
    ~header:
      [ "impl"; "N"; "f(N) measured"; "rounds"; "predicted >="; "slowest inc";
        "read ok"; "lemma1"; "lemma3" ]
    (List.map
       (fun (r : Lowerbound.Theorem1.result) ->
         [ r.impl; string_of_int r.n;
           string_of_int r.reader_steps;
           string_of_int r.rounds;
           Printf.sprintf "%.2f" r.predicted_rounds;
           string_of_int r.max_inc_steps;
           string_of_bool (r.reader_result = r.n - 1);
           string_of_bool r.lemma1_ok;
           string_of_bool r.lemma3_ok ])
       rows)

let run ?on_trace ?ns () = table (sweep ?on_trace ?ns ())
