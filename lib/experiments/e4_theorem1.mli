(** E4 — the Theorem 1 tradeoff, empirically: the sigma-round adversary
    against each counter regenerates the lower-bound curve (completing
    N-1 adversarially scheduled increments takes >= ~log3(N / f(N))
    rounds), checking Lemma 1 and Lemma 3 on every run. *)

val run :
  ?on_trace:(Memsim.Trace.t -> unit) -> ?ns:int list -> unit -> string
(** Rendered table over process counts [ns].  [on_trace] receives each
    complete adversarial execution trace before analysis (hook for
    [repro --trace] feeding {!Obs.Trace_export}). *)
