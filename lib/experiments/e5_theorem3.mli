(** E5 — the Theorem 3 adversary against the CAS-loop max register:
    perpetually-failing CAS schedules drive a WriteMax to Theta(K) steps,
    with the essential-process invariants and Lemma 2 checked per round
    (both the capped and uncapped constructions). *)

val run : ?ks:int list -> unit -> string
(** Rendered tables over contention parameters [ks] (the uncapped sweep
    filters [ks] to 32..1024). *)
