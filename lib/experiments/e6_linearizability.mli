(** E6 — linearizability under random schedules, for every max-register,
    counter and snapshot implementation.  Violations are expected ONLY
    for the literal (paper line 16) Algorithm A early return, which this
    experiment exhibits. *)

val run : ?schedules:int -> unit -> string
(** Rendered table; [schedules] overrides the per-row schedule counts
    (default 400 for max registers, 200 otherwise). *)
