(* E7 — the practical payoff of O(1) reads (Section 5's positive result),
   on real parallel hardware: OCaml 5 domains over the Atomic backend.

   Wall-clock throughput of read-heavy and write-heavy mixes over the max
   registers, and counter read/increment mixes.  The paper's model counts
   steps; this experiment checks that the step-count ordering survives
   contact with real cache coherence.

   For the full domain-scaling sweep (1..P domains, read-share grid,
   boxed vs unboxed backends, JSON trajectory) see bin/bench.exe. *)

type row = {
  structure : string;
  impl : string;
  mix : string;
  domains : int;
  ops_per_sec : float;
}

(* Measurement harness shared with bin/bench.exe: domain-local op counts
   published once after the stop flag flips, through cache-line-padded
   slots — the timed loop no longer pays an atomic RMW (or a shared line)
   per measured operation. *)
let run_mix = Harness.Throughput.run_mix

let maxreg_rows ~domains ~seconds =
  List.concat_map
    (fun impl ->
      let name = Harness.Instances.maxreg_name impl in
      let make () =
        Harness.Instances.maxreg_native ~n:domains ~bound:10_000_000 impl
      in
      (* read-heavy: domain 0 writes, the rest read *)
      let reg = make () in
      let read_heavy =
        run_mix ~domains ~seconds ~op:(fun d i ->
            if d = 0 then reg.write_max ~pid:0 i else ignore (reg.read_max ()))
      in
      (* write-heavy: everyone writes increasing values *)
      let reg = make () in
      let write_heavy =
        run_mix ~domains ~seconds ~op:(fun d i ->
            reg.write_max ~pid:d ((i * domains) + d))
      in
      [ { structure = "max-register"; impl = name; mix = "read-heavy";
          domains; ops_per_sec = read_heavy };
        { structure = "max-register"; impl = name; mix = "write-heavy";
          domains; ops_per_sec = write_heavy } ])
    [ Harness.Instances.Algorithm_a;
      Harness.Instances.Aac_maxreg;
      Harness.Instances.Cas_maxreg ]

let counter_rows ~domains ~seconds =
  List.concat_map
    (fun impl ->
      let name = Harness.Instances.counter_name impl in
      let c =
        Harness.Instances.counter_native ~n:domains ~bound:1_000_000_000 impl
      in
      let read_heavy =
        run_mix ~domains ~seconds ~op:(fun d _ ->
            if d = 0 then c.increment ~pid:0 else ignore (c.read ()))
      in
      let c =
        Harness.Instances.counter_native ~n:domains ~bound:1_000_000_000 impl
      in
      let write_heavy =
        run_mix ~domains ~seconds ~op:(fun d _ -> c.increment ~pid:d)
      in
      [ { structure = "counter"; impl = name; mix = "read-heavy"; domains;
          ops_per_sec = read_heavy };
        { structure = "counter"; impl = name; mix = "inc-heavy"; domains;
          ops_per_sec = write_heavy } ])
    [ Harness.Instances.Farray_counter;
      Harness.Instances.Naive_counter ]

let sweep ?(seconds = 0.3) () =
  let domains = Harness.Throughput.recommended_domains ~floor:2 ~cap:4 () in
  maxreg_rows ~domains ~seconds @ counter_rows ~domains ~seconds

let table rows =
  Harness.Tables.render
    ~title:"E7: native throughput, OCaml 5 domains over Atomic (ops/sec)"
    ~header:[ "structure"; "impl"; "mix"; "domains"; "Mops/sec" ]
    (List.map
       (fun r ->
         [ r.structure; r.impl; r.mix; string_of_int r.domains;
           Printf.sprintf "%.2f" (r.ops_per_sec /. 1e6) ])
       rows)

let run ?seconds () = table (sweep ?seconds ())
