(** E7 — the practical payoff of O(1) reads on real parallel hardware:
    wall-clock throughput of read-heavy and write-heavy mixes over the
    native (OCaml 5 Atomic) max registers and counters, measured through
    {!Harness.Throughput}.  For the full domain-scaling sweep see
    [bin/bench.exe]. *)

val run : ?seconds:float -> unit -> string
(** Rendered table; [seconds] per measured mix (default 0.3). *)
