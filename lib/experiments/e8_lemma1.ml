(* E8 — Lemma 1's growth bound and the Definition 1 visibility finding.

   Lemma 1 is checked under the paper's literal Definition 1 (where it
   holds with factor 3); the repaired rule needed by Lemma 3 (part 2)
   weakens the factor to 4 — asymptotics unchanged.

   Part 1: M(E) after each sigma-round of the Theorem-1 adversary on the
   f-array counter, with the per-round growth factor (must be <= 3).

   Part 2: Lemma 3 under the literal Definition 1 vs the repaired rule.
   The AAC counter writes identical values (switch bits := 1) from many
   processes; under the literal definition no switch write is ever visible,
   so the reader's awareness stays trivial even though its read is correct —
   contradicting Lemma 3.  The repaired rule (value-preserving writes stay
   visible unless masked) restores the lemma.  See Infoflow.Visibility. *)

open Memsim

let growth_rows ~n =
  let r =
    Lowerbound.Theorem1.run ~impl:"farray"
      ~make_counter:(fun session ~n ->
        Harness.Instances.counter_sim session ~n ~bound:(4 * n)
          Harness.Instances.Farray_counter)
      ~n ~f_n:1 ()
  in
  let rec rows round prev = function
    | [] -> []
    | m :: rest ->
      [ string_of_int round; string_of_int m;
        Printf.sprintf "%.2f" (float_of_int m /. float_of_int (max 1 prev)) ]
      :: rows (round + 1) m rest
  in
  (r, rows 1 1 r.m_per_round)

(* Reader awareness for the AAC counter under both visibility rules. *)
let lemma3_comparison ~n =
  let session = Session.create () in
  let counter =
    Harness.Instances.counter_sim session ~n ~bound:(4 * n)
      Harness.Instances.Aac_counter
  in
  let sched = Scheduler.create session in
  let incrementers = List.init (n - 1) Fun.id in
  List.iter
    (fun pid -> ignore (Scheduler.spawn sched (fun () -> counter.increment ~pid)))
    incrementers;
  let rec loop () =
    let live = List.filter (Scheduler.is_active sched) incrementers in
    if live <> [] then begin
      ignore (Infoflow.Sigma.round sched live);
      loop ()
    end
  in
  loop ();
  let result = ref (-1) in
  let reader = Scheduler.spawn sched (fun () -> result := counter.read ()) in
  Scheduler.run_solo sched reader;
  let trace = Scheduler.finish sched in
  let aw_size literal =
    let a = Infoflow.Awareness.of_trace ~literal trace in
    Infoflow.Awareness.Int_set.cardinal (Infoflow.Awareness.aw_of a reader)
  in
  (!result, aw_size true, aw_size false)

let run ?(n = 32) () =
  let r, grows = growth_rows ~n in
  let t1 =
    Harness.Tables.render
      ~title:
        (Printf.sprintf
           "E8a: Lemma 1 — M(E) per sigma-round, f-array counter, N=%d \
            (growth factor must be <= 3)"
           n)
      ~header:[ "round"; "M(E)"; "growth" ]
      grows
  in
  let read, aw_literal, aw_repaired = lemma3_comparison ~n in
  let t2 =
    Harness.Tables.render
      ~title:
        (Printf.sprintf
           "E8b: Lemma 3 vs Definition 1 — AAC counter, N=%d (finding: the \
            literal definition loses the flow)"
           n)
      ~header:[ "visibility rule"; "read result"; "|AW(reader)|"; "lemma 3 (= N)" ]
      [ [ "literal (paper)"; string_of_int read; string_of_int aw_literal;
          string_of_bool (aw_literal = n) ];
        [ "repaired"; string_of_int read; string_of_int aw_repaired;
          string_of_bool (aw_repaired = n) ] ]
  in
  ignore r;
  t1 ^ "\n" ^ t2
