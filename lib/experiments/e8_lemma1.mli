(** E8 — the information-flow lemmas, directly: (a) Lemma 1's
    familiarity-set growth factor (<= 3 per sigma-round) measured on the
    f-array counter, and (b) Lemma 3 under the paper's literal
    Definition 1 vs the repaired visibility rule on the AAC counter (the
    literal definition loses the flow). *)

val run : ?n:int -> unit -> string
(** Rendered tables at [n] processes (default 32). *)
