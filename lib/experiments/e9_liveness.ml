(* E9 — liveness audit (the other half of Theorem 6).

   Wait-freedom claims per implementation, audited two ways:

   1. solo completion from many random intermediate states (every
      obstruction-free operation must finish; the residual step bound is
      reported);
   2. completion of one WriteMax/increment against an endless interferer —
      a wait-free operation finishes in its solo bound regardless of
      interference, the CAS-loop register does not (its step count under
      interference explodes, matching its Theta(K) behaviour under the
      Theorem 3 adversary). *)

open Memsim

type row = {
  structure : string;
  impl : string;
  solo_ok : bool;
  solo_bound : int;
  interfered_completed : bool;
  interfered_steps : int;
}

let maxreg_row impl =
  let n = 8 in
  let session = Session.create () in
  let reg = Harness.Instances.maxreg_sim session ~n ~bound:4096 impl in
  let make_body pid () = reg.write_max ~pid (16 + (pid * 31 mod 256)) in
  let solo =
    Harness.Liveness.solo_completion_bound session ~n ~make_body ()
  in
  let interfered =
    Harness.Liveness.interference_bound ~victim_budget:2_000 session
      ~victim_body:(fun () -> reg.write_max ~pid:0 4_000)
      ~interferer_body:
        (let v = ref 256 in
         fun () ->
           incr v;
           reg.write_max ~pid:1 !v)
      ()
  in
  { structure = "max-register";
    impl = Harness.Instances.maxreg_name impl;
    solo_ok = solo.Harness.Liveness.all_completed;
    solo_bound = solo.Harness.Liveness.max_solo_steps;
    interfered_completed = interfered.Harness.Liveness.victim_completed;
    interfered_steps = interfered.Harness.Liveness.victim_steps }

let counter_row impl =
  let n = 8 in
  let session = Session.create () in
  let c = Harness.Instances.counter_sim session ~n ~bound:100_000 impl in
  let make_body pid () = c.increment ~pid in
  let solo =
    Harness.Liveness.solo_completion_bound session ~n ~make_body ()
  in
  let interfered =
    Harness.Liveness.interference_bound ~victim_budget:2_000 session
      ~victim_body:(fun () -> c.increment ~pid:0)
      ~interferer_body:(fun () -> c.increment ~pid:1)
      ()
  in
  { structure = "counter";
    impl = Harness.Instances.counter_name impl;
    solo_ok = solo.Harness.Liveness.all_completed;
    solo_bound = solo.Harness.Liveness.max_solo_steps;
    interfered_completed = interfered.Harness.Liveness.victim_completed;
    interfered_steps = interfered.Harness.Liveness.victim_steps }

let snapshot_row impl =
  let n = 8 in
  let session = Session.create () in
  let s = Harness.Instances.snapshot_sim session ~n impl in
  let make_body pid () = s.update ~pid (pid + 1) in
  let solo =
    Harness.Liveness.solo_completion_bound session ~n ~make_body ()
  in
  (* the victim is a Scan, interfered with by endless updates: the
     double-collect scan starves here *)
  let interfered =
    Harness.Liveness.interference_bound ~victim_budget:2_000 session
      ~victim_body:(fun () -> try ignore (s.scan ()) with _ -> ())
      ~interferer_body:
        (let v = ref 0 in
         fun () ->
           incr v;
           s.update ~pid:1 !v)
      ()
  in
  { structure = "snapshot(scan)";
    impl = Harness.Instances.snapshot_name impl;
    solo_ok = solo.Harness.Liveness.all_completed;
    solo_bound = solo.Harness.Liveness.max_solo_steps;
    interfered_completed = interfered.Harness.Liveness.victim_completed;
    interfered_steps = interfered.Harness.Liveness.victim_steps }

let sweep () =
  List.map maxreg_row
    [ Harness.Instances.Algorithm_a;
      Harness.Instances.Aac_maxreg;
      Harness.Instances.B1_maxreg;
      Harness.Instances.Cas_maxreg ]
  @ List.map counter_row
      [ Harness.Instances.Farray_counter;
        Harness.Instances.Aac_counter;
        Harness.Instances.Naive_counter ]
  @ List.map snapshot_row
      [ Harness.Instances.Farray_snapshot;
        Harness.Instances.Afek;
        Harness.Instances.Double_collect ]

(* {1 Fault matrix}

   The audits above schedule processes adversarially but faultlessly.
   The fault matrix re-runs completion under every single-fault plan —
   each process crashed after each possible number of its own events, and
   each process stalled for 5 points at each scheduling point — and
   audits the SURVIVORS: whoever the plan neither crashes nor freezes
   must still finish within a bounded number of its own steps.
   Linearizability of the surviving histories is checked exhaustively in
   test/test_faults.ml and by bin/stress.exe --fault-sweep; this table
   reports the liveness half at a glance. *)

type fault_row = {
  f_structure : string;
  f_impl : string;
  f_plans : int;
  f_survivors_completed : bool;
  f_worst_steps : int;
}

let fault_row f_structure f_impl session ~n make_body =
  let counts = Explore.solo_counts session ~n ~make_body in
  let plans =
    Faults.single_crash_plans ~counts
    @ Faults.single_stall_plans ~n
        ~max_point:(Array.fold_left ( + ) 0 counts)
        ~points:5
  in
  let all = ref true in
  let worst = ref 0 in
  List.iter
    (fun plan ->
      let r =
        Harness.Liveness.completion_under_plan session ~n ~make_body ~plan ()
      in
      if not r.Harness.Liveness.survivors_completed then all := false;
      worst := max !worst r.Harness.Liveness.max_survivor_steps)
    plans;
  { f_structure;
    f_impl;
    f_plans = List.length plans;
    f_survivors_completed = !all;
    f_worst_steps = !worst }

let fault_sweep () =
  let n = 3 in
  let maxreg impl =
    let session = Session.create () in
    let reg = Harness.Instances.maxreg_sim session ~n ~bound:4096 impl in
    fault_row "max-register" (Harness.Instances.maxreg_name impl) session ~n
      (fun pid () ->
        if pid = 0 then reg.write_max ~pid 16 else ignore (reg.read_max ()))
  in
  let counter impl =
    let session = Session.create () in
    let c = Harness.Instances.counter_sim session ~n ~bound:4096 impl in
    fault_row "counter" (Harness.Instances.counter_name impl) session ~n
      (fun pid () -> if pid = 0 then c.increment ~pid else ignore (c.read ()))
  in
  let snapshot impl =
    let session = Session.create () in
    let s = Harness.Instances.snapshot_sim session ~n impl in
    fault_row "snapshot" (Harness.Instances.snapshot_name impl) session ~n
      (fun pid () -> if pid = 0 then s.update ~pid 7 else ignore (s.scan ()))
  in
  List.map maxreg
    [ Harness.Instances.Algorithm_a;
      Harness.Instances.Aac_maxreg;
      Harness.Instances.B1_maxreg;
      Harness.Instances.Cas_maxreg ]
  @ List.map counter
      [ Harness.Instances.Farray_counter;
        Harness.Instances.Aac_counter;
        Harness.Instances.Naive_counter ]
  @ List.map snapshot
      [ Harness.Instances.Farray_snapshot;
        Harness.Instances.Afek;
        Harness.Instances.Double_collect ]

let fault_table rows =
  Harness.Tables.render
    ~title:
      "E9b: fault matrix — survivor completion under every single-crash and \
       single-stall plan (1 writer + 2 readers; crashed/frozen processes \
       excluded, everyone else must finish)"
    ~header:
      [ "structure"; "impl"; "plans"; "survivors complete"; "worst steps" ]
    (List.map
       (fun r ->
         [ r.f_structure; r.f_impl; string_of_int r.f_plans;
           string_of_bool r.f_survivors_completed;
           string_of_int r.f_worst_steps ])
       rows)

let table rows =
  Harness.Tables.render
    ~title:
      "E9: liveness audit — solo completion (obstruction-freedom + residual \
       bound) and completion against an endless interferer (wait-freedom; \
       the CAS-loop register and the double-collect scan fail here)"
    ~header:
      [ "structure"; "impl"; "solo completes"; "solo bound";
        "completes under interference"; "steps under interference" ]
    (List.map
       (fun r ->
         [ r.structure; r.impl; string_of_bool r.solo_ok;
           string_of_int r.solo_bound;
           string_of_bool r.interfered_completed;
           string_of_int r.interfered_steps ])
       rows)

let run () = table (sweep ()) ^ "\n" ^ fault_table (fault_sweep ())
