(** E9 — liveness audit: solo completion (obstruction-freedom plus the
    residual step bound) and completion against an endless interferer
    (wait-freedom) for every implementation.  The CAS-loop register and
    the double-collect scan are expected to fail the interference test —
    they are lock-free/obstruction-free, not wait-free. *)

val run : unit -> string
(** Rendered table. *)
