(** F4 — the data structure of Figure 4, audited: leaf depths of the
    composite tree (the v-th B1 leaf at depth O(log v), every complete
    right-subtree leaf at ~log N). *)

val run : ?n:int -> unit -> string
(** Rendered table at register size [n] (default 1024). *)
