(* Jayanti-style f-arrays [14], from read/write/CAS.

   An f-array maintains an aggregate f(A[0..n-1]) of a single-writer array:
   a complete binary tree whose leaf i holds A[i] and whose internal nodes
   hold the combination of their children.  [update] writes a leaf and
   propagates with the double-refresh CAS of {!Treeprim.Propagate};
   [read] reads the root — a single step, the Theorem-1-optimal point
   (read O(1), update O(log N)).

   The CAS variant is sound as long as node values never recur (no ABA):
   guaranteed when leaf values are monotone (sums, maxima) or stamped with
   per-leaf sequence numbers (snapshot vectors). *)

open Memsim

module Make (M : Smem.Memory_intf.MEMORY) = struct
  module P = Treeprim.Propagate.Make (M)

  type t = {
    root : M.t Treeprim.Tree_shape.node;
    leaves : M.t Treeprim.Tree_shape.node array;
    combine : Simval.t -> Simval.t -> Simval.t;
    n : int;
    refreshes : int;  (* 2 for correctness; 1 only as an ablation *)
  }

  let create ?(refreshes = 2) ~n ~combine () =
    if n <= 0 then invalid_arg "Farray.create: n must be > 0";
    let mk () = M.make Simval.Bot in
    let root, leaves = Treeprim.Tree_shape.complete ~mk ~nleaves:n () in
    { root; leaves; combine; n; refreshes }

  let n t = t.n

  (* One step. *)
  let read t = M.read t.root.Treeprim.Tree_shape.data

  (* One step; leaves are single-writer, so the owner may use this to
     recover its own last value. *)
  let read_leaf t i =
    if i < 0 || i >= t.n then invalid_arg "Farray.read_leaf: bad index";
    M.read t.leaves.(i).Treeprim.Tree_shape.data

  (* O(log n) steps: write the leaf, double-refresh each ancestor. *)
  let update t ~leaf v =
    if leaf < 0 || leaf >= t.n then invalid_arg "Farray.update: bad index";
    let node = t.leaves.(leaf) in
    M.write node.Treeprim.Tree_shape.data v;
    P.propagate ~refreshes:t.refreshes ~combine:t.combine node

  let leaf_depth t i = Treeprim.Tree_shape.depth t.leaves.(i)
end

(* The same structure over the unboxed backend, specialized to
   [int Atomic.t] nodes (directly-applied Atomic primitives compile
   inline; a functor over MEMORY_INT would make every step an indirect
   call).  Leaves start at the [bot] sentinel instead of [Bot], [combine]
   works on raw ints, and read/update allocate nothing.  [padded] (the
   default) gives every node its own cache line, eliminating false sharing
   between domains updating adjacent leaves. *)
module Unboxed = struct
  let bot = Smem.Unboxed_memory.bot

  type t = {
    root : int Atomic.t Treeprim.Tree_shape.node;
    leaves : int Atomic.t Treeprim.Tree_shape.node array;
    combine : int -> int -> int;
    n : int;
    refreshes : int;
  }

  let create ?(refreshes = 2) ?(padded = true) ~n ~combine () =
    if n <= 0 then invalid_arg "Farray.create: n must be > 0";
    let mk () =
      if padded then Smem.Unboxed_memory.Padded.make bot
      else Smem.Unboxed_memory.make bot
    in
    let root, leaves = Treeprim.Tree_shape.complete ~mk ~nleaves:n () in
    { root; leaves; combine; n; refreshes }

  let n t = t.n

  let read t = Atomic.get t.root.Treeprim.Tree_shape.data

  let read_leaf t i =
    if i < 0 || i >= t.n then invalid_arg "Farray.read_leaf: bad index";
    Atomic.get t.leaves.(i).Treeprim.Tree_shape.data

  let update t ~leaf v =
    if leaf < 0 || leaf >= t.n then invalid_arg "Farray.update: bad index";
    let node = t.leaves.(leaf) in
    Atomic.set node.Treeprim.Tree_shape.data v;
    Treeprim.Propagate.Unboxed.propagate ~refreshes:t.refreshes
      ~combine:t.combine node

  (* [update] with the metered propagate: refresh rounds and CAS outcomes
     land in [metrics] under shard [domain] (the calling pid).  A disabled
     handle delegates to the plain [update] after one inlined field test. *)
  let update_metered t ~metrics ~domain ~leaf v =
    if not metrics.Obs.Metrics.enabled then update t ~leaf v
    else begin
      if leaf < 0 || leaf >= t.n then invalid_arg "Farray.update: bad index";
      let node = t.leaves.(leaf) in
      Atomic.set node.Treeprim.Tree_shape.data v;
      Treeprim.Propagate.Unboxed.propagate_metered ~metrics ~domain
        ~refreshes:t.refreshes ~combine:t.combine node
    end

  let leaf_depth t i = Treeprim.Tree_shape.depth t.leaves.(i)
end
