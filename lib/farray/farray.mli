(** Jayanti-style f-arrays (PODC 2002) from read/write/CAS: a complete
    binary tree maintaining an aggregate of a single-writer array, with
    O(1) reads of the aggregate at the root and O(log n) updates via
    double-refresh propagation.

    The CAS propagation is ABA-free as long as node values never recur:
    guaranteed for monotone aggregates (sums, maxima) or sequence-stamped
    leaf values. *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  type t

  val create :
    ?refreshes:int ->
    n:int ->
    combine:(Memsim.Simval.t -> Memsim.Simval.t -> Memsim.Simval.t) ->
    unit ->
    t
  (** An f-array over [n] single-writer leaves, all initially
      {!Memsim.Simval.Bot}; internal nodes hold
      [combine left right] (interpret [Bot] as "no contribution").
      [refreshes] (default 2) is the per-node refresh count during
      propagation; 1 is an ablation that loses updates (experiment A2). *)

  val n : t -> int

  val read : t -> Memsim.Simval.t
  (** The root aggregate: one shared-memory event. *)

  val read_leaf : t -> int -> Memsim.Simval.t
  (** One event; leaves are single-writer, so the owner can recover its
      last value. *)

  val update : t -> leaf:int -> Memsim.Simval.t -> unit
  (** Write leaf [i] and propagate: O(log n) events. *)

  val leaf_depth : t -> int -> int
end

(** The same structure over the unboxed backend ({!Smem.Unboxed_memory}),
    specialized to [int Atomic.t] nodes so the Atomic primitives compile
    inline: leaves start at the [bot] sentinel, [combine] works on raw
    ints (interpret [bot] as "no contribution"), and read/update perform
    no allocation.  [padded] (default true) gives every node its own cache
    line. *)
module Unboxed : sig
  type t

  val bot : int

  val create :
    ?refreshes:int ->
    ?padded:bool ->
    n:int ->
    combine:(int -> int -> int) ->
    unit ->
    t

  val n : t -> int
  val read : t -> int
  val read_leaf : t -> int -> int
  val update : t -> leaf:int -> int -> unit

  val update_metered :
    t -> metrics:Obs.Metrics.t -> domain:int -> leaf:int -> int -> unit
  (** [update] with refresh rounds and CAS outcomes recorded under shard
      [domain] (pass the calling pid); free with
      {!Obs.Metrics.disabled}. *)

  val leaf_depth : t -> int -> int
end
