(* Contention-adaptive backend dispatch: one structure, two update
   paths.  Each module here owns a SINGLE underlying unboxed structure
   plus a {!Smem.Combine} arena over it, and routes every update through
   whichever side of the paper's tradeoff the recent workload favors:

   - the *plain* path is the structure's own lock-free operation (the
     [_metered] entry point, so CAS attempt/failure signals accrue);
   - the *combining* path is exactly {!Combining}'s policy for that
     structure (elimination checks, [write_once] routing, arena submit).

   Both paths mutate the same structure, so a flip never copies state
   and mixed-mode windows are linearizable: an arena apply IS the plain
   operation executed by the combiner's domain, racing other plain
   operations exactly as two plain operations race.  Reads are always
   direct — the mode only selects an update path — so read-heavy mixes
   pay nothing for the adaptivity.

   The dispatcher samples per-epoch signals (an epoch is [epoch_ops]
   update operations on the triggering domain): read share and
   stale-write rate from its own per-domain cells, CAS failure rate
   from {!Obs.Metrics} deltas when a live handle is attached,
   elimination/batching benefit and combiner-lock pressure from
   {!Smem.Combine.stats} deltas.  The decision itself is the pure
   {!Policy} module — per-structure threshold parameters folded with
   hysteresis ([hysteresis] consecutive epochs wanting the other mode
   before a flip), so the dispatcher cannot thrash at a crossover where
   the signals sit on the fence.

   Cost discipline: unmetered instances ([create]) carry the shared
   {!Obs.Metrics.disabled} handle, so the settled plain path is the raw
   structure op plus one immediate-bool branch; and drivers that know
   their batch shape hoist the mode check out of the inner loop
   ([combining_now] + the raw [write_plain]/[write_combining] pair) and
   settle accounting in bulk with [tick_many] — at any granularity, the
   bench uses 16-batch flush windows with a cached mode — so the
   dispatch tax is amortized to ~nothing per op.  The per-op
   [write_max]/[increment] entry points remain for oblivious callers
   (qcheck drivers, chaos soaks, the metered registry instances).

   Concurrency discipline: every raw atomic lives in {!Ctl} (lint R1
   allowlists [Adaptive.Ctl] only).  The mode cell and the epoch lock
   are padded atomics; per-domain update ticks are single-writer padded
   cells bumped with plain load + store (the Obs.Metrics shard
   discipline — readable mid-run by the epoch advancer without a data
   race, unlike a plain int array).  Epoch bookkeeping (last-snapshot
   fields, hysteresis state, ops tallies) is plain mutable state guarded
   by the epoch lock's CAS; {!Ctl.report} reads it and is exact at
   quiescence, like {!Smem.Combine.stats} eliminations. *)

module AU = Maxreg.Algorithm_a.Unboxed
module CU = Maxreg.Cas_maxreg.Unboxed
module FU = Counters.Farray_counter.Unboxed
module NU = Counters.Naive_counter.Unboxed

let imax a b = if a >= b then a else b

(* {1 The pure decision kernel} *)

module Policy = struct
  type mode = Plain | Combining

  let mode_name = function Plain -> "plain" | Combining -> "combining"

  type signals = {
    reads : int;
    updates : int;
    stale : int;
    cas_attempts : int;
    cas_failures : int;
    eliminations : int;
    combined_ops : int;
    batches : int;
    locks : int;
  }

  let zero_signals =
    { reads = 0;
      updates = 0;
      stale = 0;
      cas_attempts = 0;
      cas_failures = 0;
      eliminations = 0;
      combined_ops = 0;
      batches = 0;
      locks = 0 }

  type params = {
    epoch_ops : int;
    hysteresis : int;
    min_updates : int;
    update_share_min : float;
    cas_fail_min : float;
    stale_min : float;
    benefit_min : float;
  }

  let validate p =
    if p.epoch_ops <= 0 || p.epoch_ops land (p.epoch_ops - 1) <> 0 then
      invalid_arg "Adaptive: epoch_ops must be a positive power of two";
    if p.hysteresis < 1 then invalid_arg "Adaptive: hysteresis must be >= 1";
    if p.min_updates < 0 then invalid_arg "Adaptive: negative min_updates";
    if not (p.update_share_min >= 0. && p.update_share_min <= 1.) then
      invalid_arg "Adaptive: update_share_min out of [0, 1]";
    if not (p.cas_fail_min >= 0.) then
      invalid_arg "Adaptive: negative cas_fail_min";
    if not (p.stale_min >= 0.) then invalid_arg "Adaptive: negative stale_min";
    if not (p.benefit_min >= 0.) then
      invalid_arg "Adaptive: negative benefit_min"

  (* Thresholds tuned against the PR 7 measurements (EXPERIMENTS.md):
     combining wins for algorithm-a exactly where elimination + batching
     engage (write-heavy multi-domain mixes), and measurably loses for
     cas-loop (whose plain path is one CAS) and for the counters on this
     host — so the maxreg policy is eager and the others demand strong
     evidence before leaving the plain path, with a benefit bar that
     sends them back when the arena stops earning its keep.

     Plain -> Combining needs a trigger OBSERVABLE from the plain path.
     CAS failure rate is the real-multicore one, but on a time-shared
     host CASes essentially never fail even where combining wins 2x, so
     the maxreg policy also watches the stale-write rate: the fraction
     of updates whose value was already at or below the structure's
     current max (one O(1) read to check).  Those are exactly the
     writes elimination would complete with zero shared writes, so the
     stale rate is the plain path's estimator of the arena's
     elimination benefit.  A >1 bar disables the trigger: for cas-loop
     a stale write is already a single cheap load on the plain path
     (nothing for the arena to save), and counter increments are never
     stale. *)

  let default_maxreg =
    { epoch_ops = 1024;
      hysteresis = 2;
      min_updates = 256;
      update_share_min = 0.05;
      cas_fail_min = 0.05;
      stale_min = 0.30;
      benefit_min = 0.10 }

  let default_cas =
    { default_maxreg with
      update_share_min = 0.10;
      cas_fail_min = 0.40;
      stale_min = 2.0;
      benefit_min = 0.60 }

  let default_counter =
    { default_maxreg with
      cas_fail_min = 0.35;
      stale_min = 2.0;
      benefit_min = 0.50 }

  (* The naive counter has no CAS at all, so a >1 failure-rate bar is
     unreachable: the control never flips unless a test hands it a
     custom policy. *)
  let default_control =
    { default_maxreg with cas_fail_min = 2.0; stale_min = 2.0;
      benefit_min = 1.0 }

  let ratio num den = if den <= 0 then 0. else float_of_int num /. float_of_int den

  (* One epoch's verdict, ignoring hysteresis.  An epoch with too few
     updates is no evidence either way (keep the current mode); a
     read-dominated epoch always wants the plain path (reads never
     benefit from the arena, and updates are too rare to contend);
     otherwise Plain -> Combining requires real CAS contention or a
     stale-write rate past the structure's bar (the plain-path
     estimator of elimination benefit), and Combining -> Plain triggers
     when the arena's earned benefit (eliminations + ops absorbed into
     batches, per update) drops below the structure's bar. *)
  let want p ~current s =
    if s.updates < p.min_updates then current
    else if
      ratio s.updates (s.reads + s.updates) < p.update_share_min
    then Plain
    else
      match current with
      | Plain ->
        if
          ratio s.cas_failures s.cas_attempts >= p.cas_fail_min
          || ratio s.stale s.updates >= p.stale_min
        then Combining
        else Plain
      | Combining ->
        if ratio (s.eliminations + s.combined_ops) s.updates < p.benefit_min
        then Plain
        else Combining

  (* Hysteresis as a pure fold: [pending]/[streak] track how many
     consecutive epochs wanted a mode different from the current one;
     the flip lands only when the streak reaches [p.hysteresis].  Any
     epoch agreeing with the current mode resets the streak. *)
  type hstate = {
    mode : mode;
    pending : mode;
    streak : int;
    flips : int;
  }

  let initial mode = { mode; pending = mode; streak = 0; flips = 0 }

  let step p h s =
    let w = want p ~current:h.mode s in
    if w = h.mode then { h with pending = h.mode; streak = 0 }
    else if h.pending = w && h.streak + 1 >= p.hysteresis then
      { mode = w; pending = w; streak = 0; flips = h.flips + 1 }
    else if h.pending = w then { h with streak = h.streak + 1 }
    else { h with pending = w; streak = 1 }
end

(* {1 Quiescent-read report} *)

type report = {
  mode : Policy.mode;
  epochs : int;
  epoch_flips : int;
  combining_ops_pct : float;
}

(* {1 The controller: every raw atomic lives here (lint R1)} *)

module Ctl = struct
  type t = {
    params : Policy.params;
    domains : int;
    metrics : Obs.Metrics.t;
    arena : Smem.Combine.t;
    mode : int Atomic.t;  (* padded; 0 plain, 1 combining *)
    epoch_lock : int Atomic.t;  (* padded; 0 free, 1 held *)
    ticks : int Atomic.t array;  (* padded single-writer update counts *)
    stales : int Atomic.t array;  (* padded single-writer stale-write counts *)
    reads_c : int Atomic.t array;  (* padded single-writer read counts
                                      (accrued only via [tick_many]) *)
    epoch_mask : int;  (* epoch_ops - 1; epoch_ops is a power of two *)
    epoch_shift : int;  (* log2 epoch_ops, for bulk boundary crossing *)
    (* epoch bookkeeping, mutated only with [epoch_lock] held *)
    mutable h : Policy.hstate;
    mutable epochs : int;
    mutable ops_total : int;  (* updates attributed to a finished epoch *)
    mutable ops_combining : int;  (* ... that ran in combining mode *)
    mutable last_updates : int;
    mutable last_stale : int;
    mutable last_reads : int;
    mutable last_cas_attempts : int;
    mutable last_cas_failures : int;
    mutable last_eliminations : int;
    mutable last_combined_ops : int;
    mutable last_batches : int;
    mutable last_locks : int;
  }

  let log2 n =
    let rec go acc k = if k <= 1 then acc else go (acc + 1) (k lsr 1) in
    go 0 n

  let create ~params ~domains ~metrics ~arena =
    Policy.validate params;
    { params;
      domains;
      metrics;
      arena;
      mode = Smem.Unboxed_memory.Padded.make 0;
      epoch_lock = Smem.Unboxed_memory.Padded.make 0;
      ticks =
        Array.init domains (fun _ -> Smem.Unboxed_memory.Padded.make 0);
      stales =
        Array.init domains (fun _ -> Smem.Unboxed_memory.Padded.make 0);
      reads_c =
        Array.init domains (fun _ -> Smem.Unboxed_memory.Padded.make 0);
      epoch_mask = params.Policy.epoch_ops - 1;
      epoch_shift = log2 params.Policy.epoch_ops;
      h = Policy.initial Policy.Plain;
      epochs = 0;
      ops_total = 0;
      ops_combining = 0;
      last_updates = 0;
      last_stale = 0;
      last_reads = 0;
      last_cas_attempts = 0;
      last_cas_failures = 0;
      last_eliminations = 0;
      last_combined_ops = 0;
      last_batches = 0;
      last_locks = 0 }

  let[@inline] combining t = Atomic.get t.mode = 1

  let sum_cells cells domains =
    let acc = ref 0 in
    for d = 0 to domains - 1 do
      acc := !acc + Atomic.get (Array.unsafe_get cells d)
    done;
    !acc

  let sum_ticks t = sum_cells t.ticks t.domains

  (* Epoch boundary (rare path, may allocate).  The CAS-guarded lock
     serializes advancers; a losing domain just skips — the winner is
     already folding this epoch's deltas.  Signals are deltas since the
     previous boundary: update counts from our own tick cells, CAS and
     read counts from the metrics handle, arena activity from the
     combine stats.  The epoch's updates are attributed to the mode
     they ran under (the mode BEFORE any flip this call applies). *)
  let advance t =
    if Atomic.compare_and_set t.epoch_lock 0 1 then begin
      let updates = sum_ticks t in
      let stale = sum_cells t.stales t.domains in
      let tot = Obs.Metrics.totals t.metrics in
      let st = Smem.Combine.stats t.arena in
      (* reads come from two mutually-exclusive accounting paths: the
         shared metrics handle (metered per-op drivers record [Op_read]
         there) and the dispatcher's own cells ([tick_many] callers) *)
      let reads = tot.Obs.Metrics.op_reads + sum_cells t.reads_c t.domains in
      let s =
        { Policy.reads = reads - t.last_reads;
          updates = updates - t.last_updates;
          stale = stale - t.last_stale;
          cas_attempts = tot.Obs.Metrics.cas_attempts - t.last_cas_attempts;
          cas_failures = tot.Obs.Metrics.cas_failures - t.last_cas_failures;
          eliminations =
            st.Smem.Combine.eliminations - t.last_eliminations;
          combined_ops = st.Smem.Combine.combined_ops - t.last_combined_ops;
          batches = st.Smem.Combine.batches - t.last_batches;
          locks = st.Smem.Combine.lock_acquisitions - t.last_locks }
      in
      let before = t.h.Policy.mode in
      let h' = Policy.step t.params t.h s in
      t.epochs <- t.epochs + 1;
      t.ops_total <- t.ops_total + s.Policy.updates;
      if before = Policy.Combining then
        t.ops_combining <- t.ops_combining + s.Policy.updates;
      t.h <- h';
      if h'.Policy.mode <> before then
        Atomic.set t.mode
          (match h'.Policy.mode with Policy.Combining -> 1 | Policy.Plain -> 0);
      t.last_updates <- updates;
      t.last_stale <- stale;
      t.last_reads <- reads;
      t.last_cas_attempts <- tot.Obs.Metrics.cas_attempts;
      t.last_cas_failures <- tot.Obs.Metrics.cas_failures;
      t.last_eliminations <- st.Smem.Combine.eliminations;
      t.last_combined_ops <- st.Smem.Combine.combined_ops;
      t.last_batches <- st.Smem.Combine.batches;
      t.last_locks <- st.Smem.Combine.lock_acquisitions;
      Atomic.set t.epoch_lock 0
    end

  (* Per-update tick: one plain load + store on the domain's own padded
     cell, a mask test, and (once per [epoch_ops] of this domain's
     updates) the epoch advance.  Safe indexing: [pid] outside
     [0 .. domains-1] raises rather than corrupting a neighbor cell. *)
  let[@inline] tick t ~pid =
    let c = Array.get t.ticks pid in
    let n = Atomic.get c + 1 in
    Atomic.set c n;
    if n land t.epoch_mask = 0 then advance t

  (* Plain-path stale-write tally (see [Policy.stale_min]): single-writer
     cell, same discipline as [tick]. *)
  let[@inline] note_stale t ~pid =
    let c = Array.get t.stales pid in
    Atomic.set c (Atomic.get c + 1)

  (* Bulk accounting for batch-granular drivers (the bench's timed
     loops): one call per batch folds the batch's read/update/stale
     counts into this domain's cells, advancing the epoch if the bulk
     update crossed an [epoch_ops] boundary.  Amortizes the dispatch
     bookkeeping to nothing per op — the per-op [tick] path costs two
     atomic accesses per update, which is real money next to a
     single-CAS structure op. *)
  let tick_many t ~pid ~reads ~updates ~stale =
    if reads > 0 then begin
      let c = Array.get t.reads_c pid in
      Atomic.set c (Atomic.get c + reads)
    end;
    if stale > 0 then begin
      let c = Array.get t.stales pid in
      Atomic.set c (Atomic.get c + stale)
    end;
    if updates > 0 then begin
      let c = Array.get t.ticks pid in
      let n = Atomic.get c in
      let n' = n + updates in
      Atomic.set c n';
      if n' lsr t.epoch_shift <> n lsr t.epoch_shift then advance t
    end

  let mode t = t.h.Policy.mode

  (* Exact at quiescence (writers joined); concurrent calls may observe
     a slightly stale picture, never a torn one worse than that. *)
  let report t =
    let residual = sum_ticks t - t.last_updates in
    let total = t.ops_total + residual in
    let combining_ops =
      t.ops_combining
      + (if t.h.Policy.mode = Policy.Combining then residual else 0)
    in
    { mode = t.h.Policy.mode;
      epochs = t.epochs;
      epoch_flips = t.h.Policy.flips;
      combining_ops_pct =
        (if total <= 0 then 0.
         else 100. *. float_of_int combining_ops /. float_of_int total) }
end

(* {1 Algorithm A max register} *)

module Alg_a = struct
  type t = {
    reg : AU.t;
    arena : Smem.Combine.t;
    apply : int -> int -> unit;
    ctl : Ctl.t;
    metrics : Obs.Metrics.t;
    solo : bool;
    track_stale : bool;  (* policy.stale_min is a reachable bar *)
  }

  let make ?(policy = Policy.default_maxreg) ?spin ~metrics ~solo ~n ~domains
      () =
    let reg = AU.create ~n () in
    let arena = Smem.Combine.create ?spin ~domains ~combine:imax () in
    { reg;
      arena;
      apply = (fun d v -> AU.write_max_metered reg ~metrics ~pid:d v);
      ctl = Ctl.create ~params:policy ~domains ~metrics ~arena;
      metrics;
      solo;
      track_stale = policy.Policy.stale_min <= 1.0 }

  (* Unmetered instances dispatch on the stale-rate and arena signals
     alone, with the shared disabled metrics handle: the plain path is
     then the RAW structure op plus one immediate-bool branch, not a
     live-metered one — the throughput-of-record deployment.  CAS-rate
     dispatch needs [create_metered]. *)
  let create ?policy ?spin ~n ~domains () =
    make ?policy ?spin ~metrics:Obs.Metrics.disabled ~solo:(domains = 1) ~n
      ~domains ()

  (* metered instances keep full dispatch at domains = 1, like the
     combining backends: the metrics pass measures counters, not time *)
  let create_metered ?policy ?spin ~metrics ~n ~domains () =
    make ?policy ?spin ~metrics ~solo:false ~n ~domains ()

  let arena t = t.arena
  let ctl t = t.ctl
  let report t = Ctl.report t.ctl

  (* The underlying structure, for batch drivers that run the raw op in
     their plain-mode inner loop (reads may always go direct).  Safe to
     operate even astride a flip — both update paths mutate this same
     structure — it only bypasses the dispatcher's accounting, which
     the driver settles itself via [tick_many]. *)
  let unboxed t = t.reg

  let[@inline] read_max t = AU.read_max t.reg
  let[@inline] combining_now t = (not t.solo) && Ctl.combining t.ctl

  (* The two update paths, exposed raw (no tick, no mode check) for
     batch-granular drivers that hoist dispatch out of their inner loop
     and settle accounts once per batch via [tick_many]. *)

  let[@inline] write_plain t ~pid value =
    AU.write_max_metered t.reg ~metrics:t.metrics ~pid value

  let[@inline] write_combining t ~pid value =
    (* Combining.Alg_a's policy: the root is monotone, so a stale
       write eliminates against it; otherwise batch via the arena. *)
    if value <= AU.read_max t.reg then
      Smem.Combine.record_elimination t.arena ~domain:pid
    else Smem.Combine.submit t.arena ~domain:pid ~apply:t.apply value

  let tick_many t ~pid ~reads ~updates ~stale =
    if not t.solo then Ctl.tick_many t.ctl ~pid ~reads ~updates ~stale

  let[@inline] write_max t ~pid value =
    if value < 0 then invalid_arg "Adaptive.Alg_a.write_max: negative value";
    if t.solo then AU.write_max t.reg ~pid value
    else begin
      if Ctl.combining t.ctl then write_combining t ~pid value
      else begin
        if t.track_stale && value <= AU.read_max t.reg then
          Ctl.note_stale t.ctl ~pid;
        AU.write_max_metered t.reg ~metrics:t.metrics ~pid value
      end;
      Ctl.tick t.ctl ~pid
    end
end

(* {1 CAS-loop max register} *)

module Cas = struct
  type t = {
    reg : CU.t;
    arena : Smem.Combine.t;
    apply : int -> int -> unit;
    ctl : Ctl.t;
    metrics : Obs.Metrics.t;
    solo : bool;
    track_stale : bool;  (* off under {!Policy.default_cas}: a stale
                            plain cas write is already one cheap load *)
  }

  let make ?(policy = Policy.default_cas) ?spin ~metrics ~solo ~domains () =
    let reg = CU.create () in
    let arena = Smem.Combine.create ?spin ~domains ~combine:imax () in
    { reg;
      arena;
      apply = (fun d v -> CU.write_max_metered reg ~metrics ~pid:d v);
      ctl = Ctl.create ~params:policy ~domains ~metrics ~arena;
      metrics;
      solo;
      track_stale = policy.Policy.stale_min <= 1.0 }

  let create ?policy ?spin ~domains () =
    make ?policy ?spin ~metrics:Obs.Metrics.disabled ~solo:(domains = 1)
      ~domains ()

  let create_metered ?policy ?spin ~metrics ~domains () =
    make ?policy ?spin ~metrics ~solo:false ~domains ()

  let arena t = t.arena
  let ctl t = t.ctl
  let report t = Ctl.report t.ctl
  let unboxed t = t.reg  (* as Alg_a.unboxed *)
  let[@inline] read_max t = CU.read_max t.reg
  let[@inline] combining_now t = (not t.solo) && Ctl.combining t.ctl

  let[@inline] write_plain t ~pid value =
    CU.write_max_metered t.reg ~metrics:t.metrics ~pid value

  let[@inline] write_combining t ~pid value =
    (* Combining.Cas's policy: one uncontended read + CAS attempt;
       only a lost race pays the arena. *)
    let r = CU.write_once t.reg value in
    if r = 0 then Smem.Combine.record_elimination t.arena ~domain:pid
    else if r = 2 then
      Smem.Combine.submit t.arena ~domain:pid ~apply:t.apply value

  let tick_many t ~pid ~reads ~updates ~stale =
    if not t.solo then Ctl.tick_many t.ctl ~pid ~reads ~updates ~stale

  let[@inline] write_max t ~pid value =
    if value < 0 then invalid_arg "Adaptive.Cas.write_max: negative value";
    if t.solo then CU.write_max t.reg ~pid value
    else begin
      if Ctl.combining t.ctl then write_combining t ~pid value
      else begin
        if t.track_stale && value <= CU.read_max t.reg then
          Ctl.note_stale t.ctl ~pid;
        CU.write_max_metered t.reg ~metrics:t.metrics ~pid value
      end;
      Ctl.tick t.ctl ~pid
    end
end

(* {1 F-array counter} *)

module Farray_c = struct
  type t = {
    c : FU.t;
    arena : Smem.Combine.t;
    apply : int -> int -> unit;
    ctl : Ctl.t;
    metrics : Obs.Metrics.t;
    solo : bool;
  }

  let make ?(policy = Policy.default_counter) ?spin ~metrics ~solo ~n ~domains
      () =
    let c = FU.create ~n () in
    let arena = Smem.Combine.create ?spin ~domains ~combine:( + ) () in
    { c;
      arena;
      apply = (fun d k -> FU.add_metered c ~metrics ~pid:d k);
      ctl = Ctl.create ~params:policy ~domains ~metrics ~arena;
      metrics;
      solo }

  let create ?policy ?spin ~n ~domains () =
    make ?policy ?spin ~metrics:Obs.Metrics.disabled ~solo:(domains = 1) ~n
      ~domains ()

  let create_metered ?policy ?spin ~metrics ~n ~domains () =
    make ?policy ?spin ~metrics ~solo:false ~n ~domains ()

  let arena t = t.arena
  let ctl t = t.ctl
  let report t = Ctl.report t.ctl
  let unboxed t = t.c  (* as Alg_a.unboxed *)
  let[@inline] read t = FU.read t.c
  let[@inline] combining_now t = (not t.solo) && Ctl.combining t.ctl

  let[@inline] increment_plain t ~pid =
    FU.increment_metered t.c ~metrics:t.metrics ~pid

  let[@inline] increment_combining t ~pid =
    Smem.Combine.submit t.arena ~domain:pid ~apply:t.apply 1

  let tick_many t ~pid ~reads ~updates =
    if not t.solo then Ctl.tick_many t.ctl ~pid ~reads ~updates ~stale:0

  let[@inline] increment t ~pid =
    if t.solo then FU.increment t.c ~pid
    else begin
      if Ctl.combining t.ctl then increment_combining t ~pid
      else FU.increment_metered t.c ~metrics:t.metrics ~pid;
      Ctl.tick t.ctl ~pid
    end
end

(* {1 Naive counter — the control} *)

module Naive_c = struct
  type t = {
    c : NU.t;
    arena : Smem.Combine.t;
    apply : int -> int -> unit;
    ctl : Ctl.t;
    solo : bool;
  }

  (* The naive counter records no CAS metrics (it has no CAS), so under
     the default control policy the dispatcher can never justify
     leaving the plain path — exactly right, since a naive increment is
     one write to an owned line.  Tests hand it permissive policies to
     exercise flip machinery deterministically. *)
  let make ?(policy = Policy.default_control) ?spin ~metrics ~solo ~n ~domains
      () =
    let c = NU.create ~n () in
    let arena = Smem.Combine.create ?spin ~domains ~combine:( + ) () in
    { c;
      arena;
      apply = (fun d k -> NU.add c ~pid:d k);
      ctl = Ctl.create ~params:policy ~domains ~metrics ~arena;
      solo }

  let create ?policy ?spin ~n ~domains () =
    make ?policy ?spin ~metrics:Obs.Metrics.disabled ~solo:(domains = 1) ~n
      ~domains ()

  let create_metered ?policy ?spin ~metrics ~n ~domains () =
    make ?policy ?spin ~metrics ~solo:false ~n ~domains ()

  let arena t = t.arena
  let ctl t = t.ctl
  let report t = Ctl.report t.ctl
  let unboxed t = t.c  (* as Alg_a.unboxed *)
  let[@inline] read t = NU.read t.c
  let[@inline] combining_now t = (not t.solo) && Ctl.combining t.ctl

  let[@inline] increment_plain t ~pid = NU.increment t.c ~pid

  let[@inline] increment_combining t ~pid =
    Smem.Combine.submit t.arena ~domain:pid ~apply:t.apply 1

  let tick_many t ~pid ~reads ~updates =
    if not t.solo then Ctl.tick_many t.ctl ~pid ~reads ~updates ~stale:0

  let[@inline] increment t ~pid =
    if t.solo then NU.increment t.c ~pid
    else begin
      if Ctl.combining t.ctl then increment_combining t ~pid
      else NU.increment t.c ~pid;
      Ctl.tick t.ctl ~pid
    end
end
