(** Contention-adaptive backend dispatch: each structure owns ONE
    underlying unboxed instance plus a {!Smem.Combine} arena over it,
    and routes every update through whichever side of the paper's
    read/update tradeoff the recent workload favors — the plain
    lock-free path, or the flat-combining path with {!Combining}'s
    structure-specific policy (elimination, [write_once] routing,
    batched arena submits).

    Reads are always direct: the mode selects an update path only, so
    read-heavy mixes pay nothing for the adaptivity.  Flips never copy
    state (both paths mutate the same structure), and mixed-mode
    windows are linearizable: an arena apply IS the plain operation,
    executed on the combiner's domain.

    Dispatch runs on epoch boundaries — every [epoch_ops] updates of
    the triggering domain — from per-epoch signal deltas: read share
    and stale-write rate out of the dispatcher's own per-domain cells,
    CAS failure rate out of the {!Obs.Metrics} handle when a live one
    is attached, elimination/batching benefit and combiner-lock
    pressure out of {!Smem.Combine.stats}.  The decision is the pure
    {!Policy} kernel with hysteresis: [hysteresis] consecutive epochs
    must want the other mode before a flip, so the dispatcher cannot
    thrash at a crossover.  Read share only accrues when the driver
    reports reads ([tick_many ~reads] or [Op_read] on a live metrics
    handle); without it the share gate is inert and the
    contention/benefit signals — which concern only the update path the
    mode actually selects — carry the decision.

    The unmetered [create]s carry the shared {!Obs.Metrics.disabled}
    handle, so the settled plain path is the raw structure op plus one
    immediate-bool branch — they dispatch on the stale-rate and arena
    signals, which is all this host can surface anyway (CAS failure
    needs true hardware parallelism).  [create_metered] shares the
    caller's live handle (it must be private to the instance for the
    deltas to be meaningful), adds CAS-rate dispatch, and keeps full
    dispatch at [domains = 1], while plain [create] short-circuits
    [domains = 1] to direct plain calls, matching the combining
    backends' solo policy.

    Batch-granular drivers (the bench's timed loops) run the raw
    [write_plain]/[write_combining] (or [increment_*]) path in their
    inner loop and settle accounting in bulk with [tick_many] — at
    whatever granularity they like: the bench flushes one [tick_many]
    per 16-batch window and re-reads [combining_now] into a cached
    per-domain mode slot only at the flush (a cached mode lags a flip
    by at most ~one epoch, and either path is linearizable in either
    mode).  Per-op [write_max]/[increment] stay for oblivious callers.
    Raw atomics stay inside {!Ctl} (lint R1). *)

(** The pure decision kernel: thresholds, verdicts, hysteresis. *)
module Policy : sig
  type mode = Plain | Combining

  val mode_name : mode -> string

  (** One epoch's signal deltas. *)
  type signals = {
    reads : int;
        (** read delta: [tick_many ~reads] cells + [Op_read] metrics
            (0 unless the driver reports reads one of those ways) *)
    updates : int;  (** update ops, from the dispatcher's own tick cells *)
    stale : int;
        (** plain-path updates whose value was already <= the current
            max — the plain path's estimator of elimination benefit *)
    cas_attempts : int;
    cas_failures : int;
    eliminations : int;
    combined_ops : int;
    batches : int;
    locks : int;  (** combiner-lock acquisitions *)
  }

  val zero_signals : signals

  type params = {
    epoch_ops : int;  (** epoch length in per-domain updates; power of two *)
    hysteresis : int;  (** consecutive dissenting epochs required to flip *)
    min_updates : int;  (** fewer updates = no evidence, keep current mode *)
    update_share_min : float;  (** below this update share, stay plain *)
    cas_fail_min : float;  (** CAS failure rate to enter combining *)
    stale_min : float;
        (** stale-write rate to enter combining; a bar > 1 disables the
            trigger (used where a stale plain write is already cheap) *)
    benefit_min : float;  (** (elims + combined) / updates to stay there *)
  }

  val validate : params -> unit
  (** Raises [Invalid_argument] on non-power-of-two [epoch_ops],
      [hysteresis < 1], negative thresholds, or an out-of-range share. *)

  val default_maxreg : params
  (** Algorithm A: eager — elimination + batching win exactly where CAS
      contention or a high stale-write rate shows (PR 7
      measurements). *)

  val default_cas : params
  (** cas-loop: conservative — its plain path is one CAS and combining
      measurably loses, so only pathological failure rates flip it. *)

  val default_counter : params
  (** f-array counter: conservative, like {!default_cas}. *)

  val default_control : params
  (** naive counter: the CAS bar is unreachable (it has no CAS) — the
      control never leaves the plain path under this policy. *)

  val want : params -> current:mode -> signals -> mode
  (** One epoch's verdict, ignoring hysteresis. *)

  (** Hysteresis as a pure fold over epoch verdicts. *)
  type hstate = {
    mode : mode;  (** the active mode *)
    pending : mode;  (** the mode recent dissenting epochs wanted *)
    streak : int;  (** how many consecutive epochs wanted [pending] *)
    flips : int;  (** flips applied so far *)
  }

  val initial : mode -> hstate

  val step : params -> hstate -> signals -> hstate
  (** Fold one epoch: {!want}'s verdict either resets the streak (it
      agrees with [mode]) or extends it, flipping [mode] once the
      streak reaches [params.hysteresis]. *)
end

type report = {
  mode : Policy.mode;  (** mode at report time *)
  epochs : int;  (** epoch evaluations *)
  epoch_flips : int;
  combining_ops_pct : float;
      (** % of update ops executed while in combining mode (0..100),
          ops-weighted, including the residual partial epoch *)
}

(** The dispatcher: mode cell, epoch lock, per-domain tick cells.
    Exposed so tests can drive epochs deterministically; constructed
    only by the structure modules below. *)
module Ctl : sig
  type t

  val combining : t -> bool
  (** The current mode cell — the one read dispatch takes per update. *)

  val mode : t -> Policy.mode
  val report : t -> report
  (** Exact at quiescence (writing domains joined); a concurrent call
      may observe a slightly stale picture. *)
end

(** Adaptive Algorithm A max register. *)
module Alg_a : sig
  type t

  val create :
    ?policy:Policy.params ->
    ?spin:int ->
    n:int ->
    domains:int ->
    unit ->
    t

  val create_metered :
    ?policy:Policy.params ->
    ?spin:int ->
    metrics:Obs.Metrics.t ->
    n:int ->
    domains:int ->
    unit ->
    t

  val read_max : t -> int
  val write_max : t -> pid:int -> int -> unit

  val unboxed : t -> Maxreg.Algorithm_a.Unboxed.t
  (** The underlying structure.  Batch drivers run the raw op on it in
      their plain-mode inner loop (and read it directly in either
      mode): both update paths mutate this same structure, so direct
      operation is linearizable even astride a flip — it only bypasses
      the dispatcher's accounting, which the driver settles itself via
      {!tick_many}. *)

  val combining_now : t -> bool
  (** Current mode (always false solo); batch drivers hoist this. *)

  val write_plain : t -> pid:int -> int -> unit
  (** The raw plain path: no mode check, no tick, no stale tally.
      Batch drivers pair it with {!tick_many}. *)

  val write_combining : t -> pid:int -> int -> unit
  (** The raw combining path (elimination check + arena submit). *)

  val tick_many :
    t -> pid:int -> reads:int -> updates:int -> stale:int -> unit
  (** Fold one batch's counts into this domain's cells, advancing the
      epoch if the bulk update crossed an [epoch_ops] boundary.  [stale]
      is the batch's count of plain writes with value <= the max read
      at dispatch time.  No-op solo. *)

  val arena : t -> Smem.Combine.t
  val ctl : t -> Ctl.t
  val report : t -> report
end

(** Adaptive CAS-loop max register. *)
module Cas : sig
  type t

  val create :
    ?policy:Policy.params -> ?spin:int -> domains:int -> unit -> t

  val create_metered :
    ?policy:Policy.params ->
    ?spin:int ->
    metrics:Obs.Metrics.t ->
    domains:int ->
    unit ->
    t

  val read_max : t -> int
  val write_max : t -> pid:int -> int -> unit

  val unboxed : t -> Maxreg.Cas_maxreg.Unboxed.t
  (** As {!Alg_a.unboxed}. *)

  val combining_now : t -> bool
  val write_plain : t -> pid:int -> int -> unit
  val write_combining : t -> pid:int -> int -> unit

  val tick_many :
    t -> pid:int -> reads:int -> updates:int -> stale:int -> unit

  val arena : t -> Smem.Combine.t
  val ctl : t -> Ctl.t
  val report : t -> report
end

(** Adaptive f-array counter. *)
module Farray_c : sig
  type t

  val create :
    ?policy:Policy.params ->
    ?spin:int ->
    n:int ->
    domains:int ->
    unit ->
    t

  val create_metered :
    ?policy:Policy.params ->
    ?spin:int ->
    metrics:Obs.Metrics.t ->
    n:int ->
    domains:int ->
    unit ->
    t

  val read : t -> int
  val increment : t -> pid:int -> unit

  val unboxed : t -> Counters.Farray_counter.Unboxed.t
  (** As {!Alg_a.unboxed}. *)

  val combining_now : t -> bool
  val increment_plain : t -> pid:int -> unit
  val increment_combining : t -> pid:int -> unit
  val tick_many : t -> pid:int -> reads:int -> updates:int -> unit
  val arena : t -> Smem.Combine.t
  val ctl : t -> Ctl.t
  val report : t -> report
end

(** Adaptive naive counter — the protocol-cost control. *)
module Naive_c : sig
  type t

  val create :
    ?policy:Policy.params ->
    ?spin:int ->
    n:int ->
    domains:int ->
    unit ->
    t

  val create_metered :
    ?policy:Policy.params ->
    ?spin:int ->
    metrics:Obs.Metrics.t ->
    n:int ->
    domains:int ->
    unit ->
    t

  val read : t -> int
  val increment : t -> pid:int -> unit

  val unboxed : t -> Counters.Naive_counter.Unboxed.t
  (** As {!Alg_a.unboxed}. *)

  val combining_now : t -> bool
  val increment_plain : t -> pid:int -> unit
  val increment_combining : t -> pid:int -> unit
  val tick_many : t -> pid:int -> reads:int -> updates:int -> unit
  val arena : t -> Smem.Combine.t
  val ctl : t -> Ctl.t
  val report : t -> report
end
