(* Native-backend chaos: deterministic preemption/GC injection at memory-op
   boundaries, stamped histories for the linearizability checker, and
   stall-one-domain progress runs.  All raw Domain/Atomic usage is confined
   to [Inject] (R1 allowlist, submodule-granular). *)

type config = {
  seed : int;
  yield_ppm : int;
  storm : int;
  gc_ppm : int;
  gc_bytes : int;
  metrics : Obs.Metrics.t;
}

let config ?(yield_ppm = 20_000) ?(storm = 64) ?(gc_ppm = 2_000)
    ?(gc_bytes = 4096) ?(metrics = Obs.Metrics.disabled) ~seed () =
  if yield_ppm < 0 || yield_ppm > 1_000_000 then
    invalid_arg "Chaos.config: yield_ppm out of [0, 1_000_000]";
  if gc_ppm < 0 || gc_ppm > 1_000_000 then
    invalid_arg "Chaos.config: gc_ppm out of [0, 1_000_000]";
  { seed; yield_ppm; storm; gc_ppm; gc_bytes; metrics }

module Inject = struct
  (* One boundary counter per domain; the decision at boundary [i] of
     domain [d] is a pure hash of (seed, d, i), so a run is replayable
     from its seed (modulo the true nondeterminism chaos is probing). *)
  let boundary_count : int ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref 0)

  (* splitmix-style finalizer, constants truncated to OCaml's int range;
     statistical quality is irrelevant, decorrelation is all we need *)
  let mix z =
    let z = (z lxor (z lsr 30)) * 0x1ce4e5b9bf58476d in
    let z = (z lxor (z lsr 27)) * 0x133111eb94d049bb in
    z lxor (z lsr 31)

  let gc_event_count : int ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref 0)

  let boundary cfg =
    if cfg.yield_ppm > 0 || cfg.gc_ppm > 0 then begin
      let d = (Domain.self () :> int) in
      let c = Domain.DLS.get boundary_count in
      Stdlib.incr c;
      let h = mix (cfg.seed lxor (d * 0x1e3779b9) lxor (!c * 0x85ebca6b)) in
      let roll = abs h mod 1_000_000 in
      if roll < cfg.yield_ppm then begin
        Obs.Metrics.incr cfg.metrics ~domain:d Obs.Metrics.Fault_yield;
        for _ = 1 to cfg.storm do
          Domain.cpu_relax ()
        done
      end
      else if roll < cfg.yield_ppm + cfg.gc_ppm then begin
        Obs.Metrics.incr cfg.metrics ~domain:d Obs.Metrics.Fault_gc;
        ignore (Sys.opaque_identity (Bytes.create cfg.gc_bytes) : Bytes.t);
        let g = Domain.DLS.get gc_event_count in
        Stdlib.incr g;
        (* every few pressure events, force a minor collection so the
           structure is exercised across GC safepoints, not just under
           allocation noise *)
        if !g land 7 = 0 then Gc.minor ()
      end
    end

  let stamper () =
    let clock = Atomic.make 0 in
    fun () -> Atomic.fetch_and_add clock 1

  let spawn_indexed k f =
    let ds = Array.init k (fun i -> Domain.spawn (fun () -> f i)) in
    Array.map Domain.join ds

  let stall cfg s =
    Obs.Metrics.incr cfg.metrics
      ~domain:((Domain.self () :> int))
      Obs.Metrics.Fault_stall;
    Unix.sleepf s
end

(* {1 Chaos-instrumented memory} *)

module Wrap_gen (C : sig val cfg : config end) (M : Smem.Memory_intf.MEMORY_GEN) =
struct
  type value = M.value
  type t = M.t

  let make = M.make
  let read o = Inject.boundary C.cfg; M.read o
  let write o v = Inject.boundary C.cfg; M.write o v

  let cas o ~expected ~desired =
    Inject.boundary C.cfg;
    M.cas o ~expected ~desired
end

let wrap cfg (module M : Smem.Memory_intf.MEMORY) :
    (module Smem.Memory_intf.MEMORY) =
  let module W =
    Wrap_gen
      (struct let cfg = cfg end)
      (struct
        type value = Memsim.Simval.t
        type t = M.t

        let make = M.make
        let read = M.read
        let write = M.write
        let cas = M.cas
      end)
  in
  (module W)

let wrap_int cfg (module M : Smem.Memory_intf.MEMORY_INT) :
    (module Smem.Memory_intf.MEMORY_INT) =
  let module W =
    Wrap_gen
      (struct let cfg = cfg end)
      (struct
        type value = int
        type t = M.t

        let make = M.make
        let read = M.read
        let write = M.write
        let cas = M.cas
      end)
  in
  (module struct
    let bot = M.bot

    include W
  end)

(* {1 Instances over chaos memory} *)

let maxreg cfg ~n ~bound impl =
  Instances.maxreg_over (wrap cfg Instances.native) ~n ~bound impl

let counter cfg ~n ~bound impl =
  Instances.counter_over (wrap cfg Instances.native) ~n ~bound impl

let snapshot cfg ~n impl =
  Instances.snapshot_over (wrap cfg Instances.native) ~n impl

(* {1 Op-boundary injection}

   The combining backends inline their Atomic primitives (arena slots,
   lock, the unboxed structures underneath), so the MEMORY wrapper above
   cannot reach them.  The available seam is the operation boundary:
   roll the injection dice before and after each high-level op.  Coarser
   than per-memory-op injection, but it is exactly the placement that
   stresses the combining protocol — a storm before the op perturbs who
   publishes vs who combines, a storm after it parks a domain that just
   held the combiner lock while others pile into the slots. *)

let instrument_maxreg cfg (i : Maxreg.Max_register.instance) :
    Maxreg.Max_register.instance =
  { read_max =
      (fun () ->
        Inject.boundary cfg;
        let v = i.read_max () in
        Inject.boundary cfg;
        v);
    write_max =
      (fun ~pid v ->
        Inject.boundary cfg;
        i.write_max ~pid v;
        Inject.boundary cfg) }

let instrument_counter cfg (i : Counters.Counter.instance) :
    Counters.Counter.instance =
  { increment =
      (fun ~pid ->
        Inject.boundary cfg;
        i.increment ~pid;
        Inject.boundary cfg);
    read =
      (fun () ->
        Inject.boundary cfg;
        let v = i.read () in
        Inject.boundary cfg;
        v) }

let maxreg_combining cfg ~n ~domains impl =
  Option.map
    (fun (inst, arena) -> (instrument_maxreg cfg inst, arena))
    (Instances.maxreg_native_combining ~n ~domains ~bound:(1 lsl 30) impl)

let counter_combining cfg ~n ~domains impl =
  Option.map
    (fun (inst, arena) -> (instrument_counter cfg inst, arena))
    (Instances.counter_native_combining ~n ~domains ~bound:(1 lsl 30) impl)

(* Adaptive backends get the same op-boundary seam; the injection also
   lands astride epoch boundaries, so storms can park a domain right as
   it flips the mode cell or while others race the epoch lock. *)

let maxreg_adaptive cfg ~n ~domains impl =
  Option.map
    (fun (inst, arena, report) -> (instrument_maxreg cfg inst, arena, report))
    (Instances.maxreg_native_adaptive ~n ~domains ~bound:(1 lsl 30) impl)

let counter_adaptive cfg ~n ~domains impl =
  Option.map
    (fun (inst, arena, report) ->
      (instrument_counter cfg inst, arena, report))
    (Instances.counter_native_adaptive ~n ~domains ~bound:(1 lsl 30) impl)

(* {1 Linearizability bursts} *)

let check_burst_size ~domains ~ops_per_domain =
  if domains <= 0 || ops_per_domain <= 0 then
    invalid_arg "Chaos.burst: domains and ops_per_domain must be positive";
  if domains * ops_per_domain > 62 then
    invalid_arg "Chaos.burst: more than 62 operations (checker limit)"

(* One burst skeleton for all structures: [run cfg ~pid ~i] performs one
   operation and returns (name, arg, result). *)
let burst ~domains ~ops_per_domain run =
  check_burst_size ~domains ~ops_per_domain;
  let stamp = Inject.stamper () in
  let per_domain =
    Inject.spawn_indexed domains (fun pid ->
        Array.init ops_per_domain (fun i ->
            let invoke = stamp () in
            let name, arg, result = run ~pid ~i in
            let return = stamp () in
            { Linearize.History.pid;
              name;
              arg;
              result = Some result;
              invoke;
              return = Some return }))
  in
  let ops = Array.concat (Array.to_list per_domain) in
  Array.sort
    (fun (a : Linearize.History.op) b -> compare a.invoke b.invoke)
    ops;
  ops

(* The op mix is a pure function of (seed, pid, i): every 3rd-ish op
   reads, the rest write distinct, growing values so linearizations are
   discriminating. *)
let decide cfg ~pid ~i =
  Inject.mix (cfg.seed lxor (pid * 0x9e3779b9) lxor ((i + 1) * 0x5bd1e995))

let burst_maxreg cfg ~domains ~ops_per_domain (reg : Maxreg.Max_register.instance)
    =
  burst ~domains ~ops_per_domain (fun ~pid ~i ->
      let h = decide cfg ~pid ~i in
      if abs h mod 3 = 0 then
        ("read_max", Memsim.Simval.Bot, Memsim.Simval.Int (reg.read_max ()))
      else begin
        let v = 1 + (abs h mod 50) in
        reg.write_max ~pid v;
        ("write_max", Memsim.Simval.Int v, Memsim.Simval.Bot)
      end)

let burst_counter cfg ~domains ~ops_per_domain (c : Counters.Counter.instance) =
  burst ~domains ~ops_per_domain (fun ~pid ~i ->
      let h = decide cfg ~pid ~i in
      if abs h mod 3 = 0 then
        ("read", Memsim.Simval.Bot, Memsim.Simval.Int (c.read ()))
      else begin
        c.increment ~pid;
        ("increment", Memsim.Simval.Bot, Memsim.Simval.Bot)
      end)

let burst_snapshot cfg ~domains ~ops_per_domain (s : Snapshots.Snapshot.instance)
    =
  burst ~domains ~ops_per_domain (fun ~pid ~i ->
      let h = decide cfg ~pid ~i in
      if abs h mod 3 = 0 then
        ("scan", Memsim.Simval.Bot, Memsim.Simval.of_int_array (s.scan ()))
      else begin
        let v = 1 + (abs h mod 50) in
        s.update ~pid v;
        ("update", Memsim.Simval.Int v, Memsim.Simval.Bot)
      end)

(* {1 Stall-one-domain runs} *)

type stall_report = {
  stalled : int;
  stall_s : float;
  completed : int array;
  elapsed : float array;
}

let run_stall_one cfg ~domains ~stalled ~stall_s ~ops ~op =
  if stalled < 0 || stalled >= domains then
    invalid_arg "Chaos.run_stall_one: stalled out of range";
  let results =
    Inject.spawn_indexed domains (fun pid ->
        let t0 = Unix.gettimeofday () in
        let done_ = ref 0 in
        for i = 1 to ops do
          op ~pid i;
          Stdlib.incr done_;
          if pid = stalled && i = 1 then Inject.stall cfg stall_s
        done;
        (!done_, Unix.gettimeofday () -. t0))
  in
  { stalled;
    stall_s;
    completed = Array.map fst results;
    elapsed = Array.map snd results }
