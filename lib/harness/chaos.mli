(** Chaos harness for the native (Domain-parallel) backend.

    The simulator's adversaries pick schedules; on real hardware the
    analogue is making the OS/GC scheduler hostile: preemption storms and
    GC pressure at memory-operation boundaries, and whole domains stalled
    mid-run.  This module injects those faults through a
    chaos-instrumented {!Smem.Memory_intf.MEMORY_GEN} wrapper — the same
    boundary the algorithms already use, so no algorithm code changes —
    and collects timestamped histories that feed
    {!Linearize.Checker.check} directly.

    Injection decisions are deterministic per (seed, domain, boundary
    index), so a violating run is replayable from its seed.  Every
    injected fault is counted in the config's {!Obs.Metrics.t} handle
    ([Fault_yield]/[Fault_gc]/[Fault_stall]), making chaos visible in
    bench-native/v3 output.

    The unboxed [_native_fast] instances inline their Atomic primitives
    precisely to admit no wrapper, so chaos instruments the boxed
    {!Instances.native} backend; the step counts are identical, which is
    what the linearizability and progress claims quantify over. *)

type config = private {
  seed : int;
  yield_ppm : int;   (** yield-storm probability per boundary, ppm *)
  storm : int;       (** cpu_relax iterations per storm *)
  gc_ppm : int;      (** GC-pressure probability per boundary, ppm *)
  gc_bytes : int;    (** junk bytes allocated per GC-pressure event *)
  metrics : Obs.Metrics.t;
}

val config :
  ?yield_ppm:int ->
  ?storm:int ->
  ?gc_ppm:int ->
  ?gc_bytes:int ->
  ?metrics:Obs.Metrics.t ->
  seed:int ->
  unit ->
  config
(** Defaults: [yield_ppm = 20_000] (2% of boundaries), [storm = 64],
    [gc_ppm = 2_000] (0.2%), [gc_bytes = 4096], metrics
    {!Obs.Metrics.disabled}. *)

(** The raw-primitive containment submodule: every use of [Domain],
    [Atomic] and allocation-pressure tricks lives here (see the R1
    allowlist in [Lint.Config.default]).  The rest of the chaos layer is
    written against these few entry points. *)
module Inject : sig
  val boundary : config -> unit
  (** Roll the per-domain deterministic dice once; maybe run a
      [Domain.cpu_relax] storm, maybe allocate GC garbage (with an
      occasional forced minor collection).  Records fault counters. *)

  val stamper : unit -> unit -> int
  (** A fresh shared monotonic stamp source (atomic fetch-add): the
      returned function yields strictly increasing ints consistent with
      real-time order across domains.  Used for history timestamps. *)

  val spawn_indexed : int -> (int -> 'a) -> 'a array
  (** [spawn_indexed k f] runs [f 0 .. f (k-1)] in [k] fresh domains and
      joins them all. *)

  val stall : config -> float -> unit
  (** Sleep for the given seconds and record one [Fault_stall]. *)
end

(** {1 Chaos-instrumented memory} *)

module Wrap_gen (_ : sig val cfg : config end) (M : Smem.Memory_intf.MEMORY_GEN) :
  Smem.Memory_intf.MEMORY_GEN with type value = M.value and type t = M.t
(** Every [read]/[write]/[cas] passes one injection boundary first;
    [make] is untouched (allocation is not a step). *)

val wrap :
  config -> (module Smem.Memory_intf.MEMORY) -> (module Smem.Memory_intf.MEMORY)

val wrap_int :
  config ->
  (module Smem.Memory_intf.MEMORY_INT) ->
  (module Smem.Memory_intf.MEMORY_INT)

(** {1 Instances over chaos memory} *)

val maxreg :
  config -> n:int -> bound:int -> Instances.maxreg_impl ->
  Maxreg.Max_register.instance

val counter :
  config -> n:int -> bound:int -> Instances.counter_impl ->
  Counters.Counter.instance

val snapshot :
  config -> n:int -> Instances.snapshot_impl -> Snapshots.Snapshot.instance

(** {1 Op-boundary injection (combining backends)}

    The combining backends inline their Atomic primitives (arena slots,
    combiner lock, unboxed trees), so the MEMORY wrapper cannot reach
    them; instead the injection dice are rolled at every operation
    boundary (before and after each high-level op).  Coarser than
    per-memory-op injection, but it is the placement that stresses the
    combining protocol: a storm can park a domain right after it
    published to a slot, or right after it released the combiner lock. *)

val instrument_maxreg :
  config -> Maxreg.Max_register.instance -> Maxreg.Max_register.instance

val instrument_counter :
  config -> Counters.Counter.instance -> Counters.Counter.instance

val maxreg_combining :
  config -> n:int -> domains:int -> Instances.maxreg_impl ->
  (Maxreg.Max_register.instance * Smem.Combine.t) option
(** {!Instances.maxreg_native_combining} with op-boundary injection;
    [None] exactly when the implementation has no combining layer. *)

val counter_combining :
  config -> n:int -> domains:int -> Instances.counter_impl ->
  (Counters.Counter.instance * Smem.Combine.t) option

val maxreg_adaptive :
  config -> n:int -> domains:int -> Instances.maxreg_impl ->
  (Maxreg.Max_register.instance * Smem.Combine.t *
   (unit -> Adaptive.report))
  option
(** {!Instances.maxreg_native_adaptive} with op-boundary injection —
    the dice also land astride epoch boundaries, stressing mode flips
    and the epoch lock; [None] exactly when the implementation has no
    combining layer. *)

val counter_adaptive :
  config -> n:int -> domains:int -> Instances.counter_impl ->
  (Counters.Counter.instance * Smem.Combine.t *
   (unit -> Adaptive.report))
  option

(** {1 Linearizability bursts}

    Run a small burst of operations (at most 62 in total — the checker's
    limit) from [domains] parallel domains against one instance,
    timestamping invocations and responses with a shared atomic stamp, and
    return the completed history for {!Linearize.Checker.check}.  The op
    mix is deterministic from [config.seed] (reads interleaved with
    writes/increments/updates of distinct values). *)

val burst_maxreg :
  config -> domains:int -> ops_per_domain:int ->
  Maxreg.Max_register.instance -> Linearize.History.op array

val burst_counter :
  config -> domains:int -> ops_per_domain:int ->
  Counters.Counter.instance -> Linearize.History.op array

val burst_snapshot :
  config -> domains:int -> ops_per_domain:int ->
  Snapshots.Snapshot.instance -> Linearize.History.op array

(** {1 Stall-one-domain runs} *)

type stall_report = {
  stalled : int;             (** which domain was stalled *)
  stall_s : float;           (** how long it slept mid-run *)
  completed : int array;     (** ops completed per domain (all of them) *)
  elapsed : float array;     (** per-domain wall-clock seconds *)
}

val run_stall_one :
  config ->
  domains:int ->
  stalled:int ->
  stall_s:float ->
  ops:int ->
  op:(pid:int -> int -> unit) ->
  stall_report
(** Every domain [pid] performs [op ~pid 1 .. op ~pid ops]; domain
    [stalled] additionally sleeps [stall_s] after its first op.  On a
    non-blocking structure the other domains' [elapsed] must not absorb
    the stall — that assertion (and per-op step ceilings via
    [config.metrics]) belongs to the caller. *)
