(* Flat-combining backends over the unboxed natives: each structure
   pairs its plain unboxed implementation with a {!Smem.Combine} arena
   sized for the participating domains, wiring the structure-specific
   pieces together:

   - the *combine* function (max for max registers, (+) for counters);
   - the *apply* closure, built ONCE at creation (a literal [fun] at the
     submit site would allocate per contended op) and receiving the
     combiner's domain id — the tree structures absorb a whole batch at
     the combiner's own leaf, one traversal per batch;
   - the *fast path*, which must keep uncontended ops at the plain
     backend's cost: cas-loop tries its single read + CAS before touching
     the arena; the tree structures (whose root CAS cannot be retried
     soundly outside propagate) try the combiner lock first and apply
     directly on success; the naive counter is the deliberate control —
     an increment is already one write to an owned line, so combining
     can only add overhead, and its rows quantify the protocol's cost;
   - the *solo* shortcut: [domains = 1] means no other domain can ever
     contend, so every unmetered op short-circuits to a DIRECT call of
     the plain unboxed operation — no elimination check, no stat tally,
     and no [apply]-closure indirection (at ~5 ns/op even an indirect
     call shows up).  The single-domain bench rows must sit within a
     branch of the plain backend, per the acceptance bar.  The metered
     constructors opt out ([solo = false]): the metrics pass measures
     counters rather than time, and should tell the same
     elimination/CAS story at every domain count;
   - the *elimination* shortcut for max registers: a WriteMax at or
     below the current root value linearizes at that root read and
     completes with zero shared writes (the root is monotone — once it
     shows m >= v, a WriteMax(v) is already subsumed).

   These modules are concrete (not functors) for the same reason the
   Unboxed natives are: without flambda the functor indirection would
   cost more than the fast-path operations being protected.  Raw
   atomics stay inside Smem.Combine and the Unboxed modules — nothing
   here touches Atomic/Domain directly, so lint R1 needs no new entry
   outside lib/smem. *)

module AU = Maxreg.Algorithm_a.Unboxed
module CU = Maxreg.Cas_maxreg.Unboxed
module FU = Counters.Farray_counter.Unboxed
module NU = Counters.Naive_counter.Unboxed

let imax a b = if a >= b then a else b

(* {1 Algorithm A max register} *)

module Alg_a = struct
  type t = {
    reg : AU.t;
    arena : Smem.Combine.t;
    apply : int -> int -> unit;
    solo : bool;
  }

  let create ?spin ~n ~domains () =
    let reg = AU.create ~n () in
    { reg;
      arena = Smem.Combine.create ?spin ~domains ~combine:imax ();
      apply = (fun d v -> AU.write_max reg ~pid:d v);
      solo = domains = 1 }

  let create_metered ?spin ~metrics ~n ~domains () =
    let reg = AU.create ~n () in
    { reg;
      arena = Smem.Combine.create ?spin ~domains ~combine:imax ();
      apply = (fun d v -> AU.write_max_metered reg ~metrics ~pid:d v);
      (* metered instances keep the full fast-path/arena policy even at
         domains = 1: the metrics pass measures counters, not time, and
         the elimination/CAS tallies should tell the same story at
         every domain count *)
      solo = false }

  let arena t = t.arena
  let[@inline] read_max t = AU.read_max t.reg

  let[@inline] write_max t ~pid value =
    if value < 0 then invalid_arg "Combining.Alg_a.write_max: negative value";
    if t.solo then AU.write_max t.reg ~pid value
    else if
      (* Elimination: the root is monotone, so root >= value means the
         write is already subsumed — it linearizes at this read. *)
      value <= AU.read_max t.reg
    then Smem.Combine.record_elimination t.arena ~domain:pid
    else Smem.Combine.submit t.arena ~domain:pid ~apply:t.apply value
end

(* {1 CAS-loop max register} *)

module Cas = struct
  type t = {
    reg : CU.t;
    arena : Smem.Combine.t;
    apply : int -> int -> unit;
    solo : bool;
  }

  (* The combiner replays the full retry loop for the combined value:
     still lock-free, but contended retries now cost one loop per batch
     instead of one per op. *)
  let create ?spin ~domains () =
    let reg = CU.create () in
    { reg;
      arena = Smem.Combine.create ?spin ~domains ~combine:imax ();
      apply = (fun d v -> CU.write_max reg ~pid:d v);
      solo = domains = 1 }

  let create_metered ?spin ~metrics ~domains () =
    let reg = CU.create () in
    { reg;
      arena = Smem.Combine.create ?spin ~domains ~combine:imax ();
      apply = (fun d v -> CU.write_max_metered reg ~metrics ~pid:d v);
      solo = false }

  let arena t = t.arena
  let[@inline] read_max t = CU.read_max t.reg

  (* Uncontended fast path: exactly the plain backend's read + CAS.
     Only a lost race (write_once = 2) pays the arena. *)
  let[@inline] write_max t ~pid value =
    if value < 0 then invalid_arg "Combining.Cas.write_max: negative value";
    if t.solo then CU.write_max t.reg ~pid value
    else
      let r = CU.write_once t.reg value in
      if r = 0 then Smem.Combine.record_elimination t.arena ~domain:pid
      else if r = 2 then
        Smem.Combine.submit t.arena ~domain:pid ~apply:t.apply value
end

(* {1 F-array counter} *)

module Farray_c = struct
  type t = {
    c : FU.t;
    arena : Smem.Combine.t;
    apply : int -> int -> unit;
    solo : bool;
  }

  let create ?spin ~n ~domains () =
    let c = FU.create ~n () in
    { c;
      arena = Smem.Combine.create ?spin ~domains ~combine:( + ) ();
      apply = (fun d k -> FU.add c ~pid:d k);
      solo = domains = 1 }

  let create_metered ?spin ~metrics ~n ~domains () =
    let c = FU.create ~n () in
    { c;
      arena = Smem.Combine.create ?spin ~domains ~combine:( + ) ();
      apply = (fun d k -> FU.add_metered c ~metrics ~pid:d k);
      solo = false }

  let arena t = t.arena
  let[@inline] read t = FU.read t.c

  (* No elimination for increments (nothing subsumes them for free);
     the win is the batch: k pending increments propagate as one
     Add k — one tree traversal instead of k. *)
  let[@inline] increment t ~pid =
    if t.solo then FU.increment t.c ~pid
    else Smem.Combine.submit t.arena ~domain:pid ~apply:t.apply 1
end

(* {1 Naive counter — the control} *)

module Naive_c = struct
  type t = {
    c : NU.t;
    arena : Smem.Combine.t;
    apply : int -> int -> unit;
    solo : bool;
  }

  let create ?spin ~n ~domains () =
    let c = NU.create ~n () in
    { c;
      arena = Smem.Combine.create ?spin ~domains ~combine:( + ) ();
      apply = (fun d k -> NU.add c ~pid:d k);
      solo = domains = 1 }

  let arena t = t.arena
  let[@inline] read t = NU.read t.c

  (* Routed through the full protocol on purpose (except solo — a
     domains = 1 control would only measure the wrapper): a naive
     increment is already a single write to an owned padded line, so
     the arena can only add cost — these rows are the measured control
     for what the protocol itself costs when there is no contention to
     save. *)
  let[@inline] increment t ~pid =
    if t.solo then NU.increment t.c ~pid
    else Smem.Combine.submit t.arena ~domain:pid ~apply:t.apply 1
end
