(** Flat-combining backends: the unboxed natives behind a
    {!Smem.Combine} arena, with structure-specific fast paths and
    elimination (see the implementation header and DESIGN.md §12).

    Concrete modules, like the Unboxed natives: a functor indirection
    would cost more than the fast paths being protected.  Constructors
    take [domains] — the number of {e participating} domains (slot
    count; ids are [0 .. domains-1] and every [pid] passed to an
    operation must be one) — which is distinct from the structure size
    [n] where both exist.  In the plain constructors, [domains = 1]
    short-circuits to a direct call of the plain unboxed operation
    before any arena or elimination bookkeeping — a single
    participating domain cannot contend, so the single-domain rows must
    cost within a branch of the plain backend; on that path no stats
    (eliminations included) are recorded.  The [create_metered]
    variants keep the full fast-path/arena policy at every domain
    count: the metrics pass measures counters, not time.

    The [create_metered] variants route the combiner's apply through the
    [_metered] entry points of the underlying structure, so CAS
    attempts/failures and refresh rounds land in [metrics] under the
    {e combiner's} shard; combining stats themselves live in the arena
    ({!Smem.Combine.stats}) and are flushed with
    {!Obs.Metrics.record_combine_stats} by the measurement driver. *)

module Alg_a : sig
  type t

  val create : ?spin:int -> n:int -> domains:int -> unit -> t

  val create_metered :
    ?spin:int -> metrics:Obs.Metrics.t -> n:int -> domains:int -> unit -> t

  val arena : t -> Smem.Combine.t
  val read_max : t -> int
  val write_max : t -> pid:int -> int -> unit
end

module Cas : sig
  type t

  val create : ?spin:int -> domains:int -> unit -> t

  val create_metered :
    ?spin:int -> metrics:Obs.Metrics.t -> domains:int -> unit -> t

  val arena : t -> Smem.Combine.t
  val read_max : t -> int
  val write_max : t -> pid:int -> int -> unit
end

module Farray_c : sig
  type t

  val create : ?spin:int -> n:int -> domains:int -> unit -> t

  val create_metered :
    ?spin:int -> metrics:Obs.Metrics.t -> n:int -> domains:int -> unit -> t

  val arena : t -> Smem.Combine.t
  val read : t -> int
  val increment : t -> pid:int -> unit
end

module Naive_c : sig
  type t

  val create : ?spin:int -> n:int -> domains:int -> unit -> t
  val arena : t -> Smem.Combine.t
  val read : t -> int
  val increment : t -> pid:int -> unit
end
