(* The implementation registry: build any implementation, bound to a
   simulator session or to native atomics, as a closed instance.  All
   experiment drivers (CLI, benches, adversaries, tests) go through this
   module so every surface exercises the same code. *)

type maxreg_impl =
  | Algorithm_a
  | Algorithm_a_literal
  | Aac_maxreg
  | B1_maxreg
  | Cas_maxreg
type counter_impl = Aac_counter | Farray_counter | Naive_counter | Snapshot_counter of snapshot_impl
and snapshot_impl = Double_collect | Afek | Farray_snapshot

let maxreg_name = function
  | Algorithm_a -> "algorithm-a"
  | Algorithm_a_literal -> "algorithm-a-literal"
  | Aac_maxreg -> "aac"
  | B1_maxreg -> "aac-unbounded-b1"
  | Cas_maxreg -> "cas-loop"

let rec counter_name = function
  | Aac_counter -> "aac"
  | Farray_counter -> "farray"
  | Naive_counter -> "naive"
  | Snapshot_counter s -> "snapshot-" ^ snapshot_name s

and snapshot_name = function
  | Double_collect -> "double-collect"
  | Afek -> "afek"
  | Farray_snapshot -> "farray"

let all_maxregs = [ Algorithm_a; Aac_maxreg; B1_maxreg; Cas_maxreg ]
let all_counters =
  [ Aac_counter; Farray_counter; Naive_counter;
    Snapshot_counter Farray_snapshot ]
let all_snapshots = [ Double_collect; Afek; Farray_snapshot ]

(* {1 Construction over an arbitrary MEMORY} *)

let maxreg_over (module M : Smem.Memory_intf.MEMORY) ~n ~bound impl :
    Maxreg.Max_register.instance =
  match impl with
  | Algorithm_a ->
    let module A = Maxreg.Algorithm_a.Make (M) in
    Maxreg.Max_register.instantiate (module A) (A.create ~n ())
  | Algorithm_a_literal ->
    let module A = Maxreg.Algorithm_a.Make (M) in
    Maxreg.Max_register.instantiate
      (module A)
      (A.create ~literal_early_return:true ~n ())
  | Aac_maxreg ->
    let module A = Maxreg.Aac_maxreg.Make (M) in
    Maxreg.Max_register.instantiate (module A) (A.create ~bound)
  | B1_maxreg ->
    let module A = Maxreg.B1_maxreg.Make (M) in
    let reg = A.create () in
    { read_max = (fun () -> A.read_max reg);
      write_max = (fun ~pid v -> A.write_max reg ~pid v) }
  | Cas_maxreg ->
    let module A = Maxreg.Cas_maxreg.Make (M) in
    Maxreg.Max_register.instantiate (module A) (A.create ())

let rec counter_over (module M : Smem.Memory_intf.MEMORY) ~n ~bound impl :
    Counters.Counter.instance =
  match impl with
  | Aac_counter ->
    let module C = Counters.Aac_counter.Make (M) in
    Counters.Counter.instantiate (module C) (C.create ~n ~bound)
  | Farray_counter ->
    let module C = Counters.Farray_counter.Make (M) in
    Counters.Counter.instantiate (module C) (C.create ~n)
  | Naive_counter ->
    let module C = Counters.Naive_counter.Make (M) in
    Counters.Counter.instantiate (module C) (C.create ~n)
  | Snapshot_counter s ->
    counter_of_snapshot_over (module M : Smem.Memory_intf.MEMORY) ~n s

and snapshot_over (module M : Smem.Memory_intf.MEMORY) ~n impl :
    Snapshots.Snapshot.instance =
  match impl with
  | Double_collect ->
    let module S = Snapshots.Double_collect.Make (M) in
    Snapshots.Snapshot.instantiate (module S) (S.create ~n ())
  | Afek ->
    let module S = Snapshots.Afek_snapshot.Make (M) in
    Snapshots.Snapshot.instantiate (module S) (S.create ~n)
  | Farray_snapshot ->
    let module S = Snapshots.Farray_snapshot.Make (M) in
    Snapshots.Snapshot.instantiate (module S) (S.create ~n)

and counter_of_snapshot_over (module M : Smem.Memory_intf.MEMORY) ~n impl :
    Counters.Counter.instance =
  let make (type st) (module S : Snapshots.Snapshot.S with type t = st)
      (s : st) =
    let module C = Snapshots.Counter_of_snapshot.Make (S) in
    let c = C.create ~n s in
    { Counters.Counter.increment = (fun ~pid -> C.increment c ~pid);
      read = (fun () -> C.read c) }
  in
  match impl with
  | Double_collect ->
    let module S = Snapshots.Double_collect.Make (M) in
    make (module S) (S.create ~n ())
  | Afek ->
    let module S = Snapshots.Afek_snapshot.Make (M) in
    make (module S) (S.create ~n)
  | Farray_snapshot ->
    let module S = Snapshots.Farray_snapshot.Make (M) in
    make (module S) (S.create ~n)

(* {1 Convenience constructors} *)

let maxreg_sim session ~n ~bound impl =
  maxreg_over (Smem.Sim_memory.bind session) ~n ~bound impl

let counter_sim session ~n ~bound impl =
  counter_over (Smem.Sim_memory.bind session) ~n ~bound impl

let snapshot_sim session ~n impl =
  snapshot_over (Smem.Sim_memory.bind session) ~n impl

let native : (module Smem.Memory_intf.MEMORY) = (module Smem.Atomic_memory)

let maxreg_native ~n ~bound impl = maxreg_over native ~n ~bound impl
let counter_native ~n ~bound impl = counter_over native ~n ~bound impl
let snapshot_native ~n impl = snapshot_over native ~n impl

(* {1 Unboxed snapshot construction over an arbitrary MEMORY_INT}

   The hybrid snapshot keeps its boxed vector inner nodes but is
   functorized over the leaf-register memory, so it still composes with
   any MEMORY_INT (including the counting instrumentation).  The maxreg
   and counter specializations are NOT functorized — they are the direct
   [Unboxed] modules below — because without flambda the functor
   indirection costs more than the memory operations themselves. *)

let snapshot_int_over (module M : Smem.Memory_intf.MEMORY_INT) ~n impl :
    Snapshots.Snapshot.instance option =
  match impl with
  | Farray_snapshot ->
    let module S = Snapshots.Hybrid_snapshot.Make (Smem.Atomic_memory) (M) in
    Some (Snapshots.Snapshot.instantiate (module S) (S.create ~n))
  | Double_collect | Afek -> None

(* {1 Native fast-path constructors}

   The direct unboxed implementations (padded cells, inline Atomic
   primitives): identical algorithms and step counts to the boxed
   [_native] constructors, zero allocation on the int-valued hot paths,
   one cache line per base object.  [bound] is accepted for call-site
   uniformity with the boxed constructors; the specialized implementations
   are all unbounded. *)

let native_unboxed : (module Smem.Memory_intf.MEMORY_INT) =
  (module Smem.Unboxed_memory.Padded)

let maxreg_native_fast ~n ~bound impl : Maxreg.Max_register.instance option =
  ignore bound;
  match impl with
  | Algorithm_a ->
    let module A = Maxreg.Algorithm_a.Unboxed in
    Some (Maxreg.Max_register.instantiate (module A) (A.create ~n ()))
  | Algorithm_a_literal ->
    let module A = Maxreg.Algorithm_a.Unboxed in
    Some
      (Maxreg.Max_register.instantiate
         (module A)
         (A.create ~literal_early_return:true ~n ()))
  | B1_maxreg ->
    let module A = Maxreg.B1_maxreg.Unboxed in
    Some (Maxreg.Max_register.instantiate (module A) (A.create ()))
  | Cas_maxreg ->
    let module A = Maxreg.Cas_maxreg.Unboxed in
    Some (Maxreg.Max_register.instantiate (module A) (A.create ()))
  | Aac_maxreg -> None

let counter_native_fast ~n ~bound impl : Counters.Counter.instance option =
  ignore bound;
  match impl with
  | Farray_counter ->
    let module C = Counters.Farray_counter.Unboxed in
    Some (Counters.Counter.instantiate (module C) (C.create ~n ()))
  | Naive_counter ->
    let module C = Counters.Naive_counter.Unboxed in
    Some (Counters.Counter.instantiate (module C) (C.create ~n ()))
  | Snapshot_counter Farray_snapshot ->
    let module S =
      Snapshots.Hybrid_snapshot.Make (Smem.Atomic_memory)
        (Smem.Unboxed_memory.Padded)
    in
    let module C = Snapshots.Counter_of_snapshot.Make (S) in
    let c = C.create ~n (S.create ~n) in
    Some
      { Counters.Counter.increment = (fun ~pid -> C.increment c ~pid);
        read = (fun () -> C.read c) }
  | Aac_counter | Snapshot_counter (Double_collect | Afek) -> None

let snapshot_native_fast ~n impl = snapshot_int_over native_unboxed ~n impl

(* {1 Metered (instrumented) native constructors}

   The same unboxed fast-path implementations, with contention
   observability wired in: every instance records [Op_update] per
   high-level update (sharded by the calling pid), and the
   implementations with interesting write contention (CAS retry loops,
   double-refresh propagation, helping) additionally record CAS
   attempts/failures, refresh rounds and helping events through their
   [_metered] entry points.  [Op_read] is NOT recorded here: the [read]
   closures carry no pid, and folding all readers onto one shard would
   both lose counts and create exactly the cross-domain cache-line
   traffic the shards exist to avoid — record it at the call site, where
   the domain is known (bin/bench.exe does).  Passing
   [Obs.Metrics.disabled] reduces every record site to an immediate-bool
   branch; the overhead guard in test_obs.ml pins that the disabled path
   allocates nothing and tracks the uninstrumented constructors. *)

let meter_maxreg ~metrics (i : Maxreg.Max_register.instance) :
    Maxreg.Max_register.instance =
  { i with
    write_max =
      (fun ~pid v ->
        Obs.Metrics.incr metrics ~domain:pid Obs.Metrics.Op_update;
        i.write_max ~pid v) }

let meter_counter ~metrics (i : Counters.Counter.instance) :
    Counters.Counter.instance =
  { i with
    increment =
      (fun ~pid ->
        Obs.Metrics.incr metrics ~domain:pid Obs.Metrics.Op_update;
        i.increment ~pid) }

let maxreg_native_metered ~metrics ~n ~bound impl :
    Maxreg.Max_register.instance option =
  (* a disabled handle means "no instrumentation": hand out the
     uninstrumented instance itself — zero overhead by construction *)
  if not (Obs.Metrics.enabled metrics) then maxreg_native_fast ~n ~bound impl
  else
  match impl with
  | Algorithm_a | Algorithm_a_literal ->
    let module A = Maxreg.Algorithm_a.Unboxed in
    let reg =
      A.create ~literal_early_return:(impl = Algorithm_a_literal) ~n ()
    in
    Some
      (meter_maxreg ~metrics
         { read_max = (fun () -> A.read_max reg);
           write_max = (fun ~pid v -> A.write_max_metered reg ~metrics ~pid v) })
  | Cas_maxreg ->
    let module A = Maxreg.Cas_maxreg.Unboxed in
    let reg = A.create () in
    Some
      (meter_maxreg ~metrics
         { read_max = (fun () -> A.read_max reg);
           write_max = (fun ~pid v -> A.write_max_metered reg ~metrics ~pid v) })
  | B1_maxreg ->
    (* switch writes are idempotent 0->1 stores, no CAS to meter: op
       counts only *)
    Option.map (meter_maxreg ~metrics) (maxreg_native_fast ~n ~bound impl)
  | Aac_maxreg -> None

let counter_native_metered ~metrics ~n ~bound impl :
    Counters.Counter.instance option =
  if not (Obs.Metrics.enabled metrics) then counter_native_fast ~n ~bound impl
  else
  match impl with
  | Farray_counter ->
    let module C = Counters.Farray_counter.Unboxed in
    let c = C.create ~n () in
    Some
      (meter_counter ~metrics
         { increment = (fun ~pid -> C.increment_metered c ~metrics ~pid);
           read = (fun () -> C.read c) })
  | Naive_counter | Snapshot_counter _ | Aac_counter ->
    (* naive has no CAS (single-writer registers); the snapshot/AAC
       constructions have no unboxed fast path or no int specialization —
       meter whatever fast path exists with op counts *)
    Option.map (meter_counter ~metrics) (counter_native_fast ~n ~bound impl)

(* {1 Flat-combining native constructors}

   The unboxed fast-path implementations behind a {!Smem.Combine} arena
   (see {!Combining}): contended updates are batched — one tree
   traversal per combined batch — and stale WriteMax calls are
   eliminated against the root.  Returns the arena alongside the
   instance so measurement drivers can read {!Smem.Combine.stats}
   (flushed into Obs metrics via [record_combine_stats]).  [domains] is
   the arena's slot count: every [pid] passed to an operation must be in
   [0 .. domains-1].  [None] exactly for the implementations with no
   combining layer: the AAC constructions (no unboxed specialization),
   B1 (idempotent switch writes — no per-op propagation to batch), and
   the literal-line-16 ablation (kept pure as the paper-faithful bug
   exhibit). *)

let maxreg_native_combining ~n ~domains ~bound impl :
    (Maxreg.Max_register.instance * Smem.Combine.t) option =
  ignore bound;
  match impl with
  | Algorithm_a ->
    let t = Combining.Alg_a.create ~n ~domains () in
    Some
      ( { Maxreg.Max_register.read_max = (fun () -> Combining.Alg_a.read_max t);
          write_max = (fun ~pid v -> Combining.Alg_a.write_max t ~pid v) },
        Combining.Alg_a.arena t )
  | Cas_maxreg ->
    let t = Combining.Cas.create ~domains () in
    Some
      ( { Maxreg.Max_register.read_max = (fun () -> Combining.Cas.read_max t);
          write_max = (fun ~pid v -> Combining.Cas.write_max t ~pid v) },
        Combining.Cas.arena t )
  | Algorithm_a_literal | B1_maxreg | Aac_maxreg -> None

let counter_native_combining ~n ~domains ~bound impl :
    (Counters.Counter.instance * Smem.Combine.t) option =
  ignore bound;
  match impl with
  | Farray_counter ->
    let t = Combining.Farray_c.create ~n ~domains () in
    Some
      ( { Counters.Counter.increment =
            (fun ~pid -> Combining.Farray_c.increment t ~pid);
          read = (fun () -> Combining.Farray_c.read t) },
        Combining.Farray_c.arena t )
  | Naive_counter ->
    let t = Combining.Naive_c.create ~n ~domains () in
    Some
      ( { Counters.Counter.increment =
            (fun ~pid -> Combining.Naive_c.increment t ~pid);
          read = (fun () -> Combining.Naive_c.read t) },
        Combining.Naive_c.arena t )
  | Aac_counter | Snapshot_counter _ -> None

(* Metered combining: [Op_update] per update via the usual wrapper, CAS
   and refresh counts recorded by the [_metered] apply under the
   combiner's shard.  A disabled handle returns the uninstrumented
   combining instance, mirroring the [_native_metered] constructors. *)

let maxreg_native_combining_metered ~metrics ~n ~domains ~bound impl :
    (Maxreg.Max_register.instance * Smem.Combine.t) option =
  if not (Obs.Metrics.enabled metrics) then
    maxreg_native_combining ~n ~domains ~bound impl
  else
    match impl with
    | Algorithm_a ->
      let t = Combining.Alg_a.create_metered ~metrics ~n ~domains () in
      Some
        ( meter_maxreg ~metrics
            { read_max = (fun () -> Combining.Alg_a.read_max t);
              write_max = (fun ~pid v -> Combining.Alg_a.write_max t ~pid v) },
          Combining.Alg_a.arena t )
    | Cas_maxreg ->
      let t = Combining.Cas.create_metered ~metrics ~domains () in
      Some
        ( meter_maxreg ~metrics
            { read_max = (fun () -> Combining.Cas.read_max t);
              write_max = (fun ~pid v -> Combining.Cas.write_max t ~pid v) },
          Combining.Cas.arena t )
    | Algorithm_a_literal | B1_maxreg | Aac_maxreg -> None

let counter_native_combining_metered ~metrics ~n ~domains ~bound impl :
    (Counters.Counter.instance * Smem.Combine.t) option =
  if not (Obs.Metrics.enabled metrics) then
    counter_native_combining ~n ~domains ~bound impl
  else
    match impl with
    | Farray_counter ->
      let t = Combining.Farray_c.create_metered ~metrics ~n ~domains () in
      Some
        ( meter_counter ~metrics
            { increment = (fun ~pid -> Combining.Farray_c.increment t ~pid);
              read = (fun () -> Combining.Farray_c.read t) },
          Combining.Farray_c.arena t )
    | Naive_counter ->
      (* the control has no CAS to meter: op counts only *)
      Option.map
        (fun (inst, arena) -> (meter_counter ~metrics inst, arena))
        (counter_native_combining ~n ~domains ~bound impl)
    | Aac_counter | Snapshot_counter _ -> None

(* {1 Contention-adaptive native constructors}

   One underlying unboxed structure behind {!Adaptive}'s epoch-driven
   dispatcher: updates run the plain lock-free path until the sampled
   signals (CAS failure rate, elimination/batching benefit, read share)
   say the flat-combining side of the tradeoff wins, and flip back when
   it stops earning its keep — with hysteresis, so the dispatcher can't
   thrash at a crossover.  Reads are always direct.  The per-structure
   constructors return the adaptive handle (arena, control, report);
   the impl-keyed ones mirror the combining constructors for the bench,
   returning the arena plus a report thunk.  [None] exactly where the
   combining constructors return [None]. *)

let alg_a_native_adaptive ?policy ~n ~domains () =
  let t = Adaptive.Alg_a.create ?policy ~n ~domains () in
  ( { Maxreg.Max_register.read_max = (fun () -> Adaptive.Alg_a.read_max t);
      write_max = (fun ~pid v -> Adaptive.Alg_a.write_max t ~pid v) },
    t )

let alg_a_native_adaptive_metered ?policy ~metrics ~n ~domains () =
  let t = Adaptive.Alg_a.create_metered ?policy ~metrics ~n ~domains () in
  ( meter_maxreg ~metrics
      { read_max = (fun () -> Adaptive.Alg_a.read_max t);
        write_max = (fun ~pid v -> Adaptive.Alg_a.write_max t ~pid v) },
    t )

let cas_native_adaptive ?policy ~domains () =
  let t = Adaptive.Cas.create ?policy ~domains () in
  ( { Maxreg.Max_register.read_max = (fun () -> Adaptive.Cas.read_max t);
      write_max = (fun ~pid v -> Adaptive.Cas.write_max t ~pid v) },
    t )

let cas_native_adaptive_metered ?policy ~metrics ~domains () =
  let t = Adaptive.Cas.create_metered ?policy ~metrics ~domains () in
  ( meter_maxreg ~metrics
      { read_max = (fun () -> Adaptive.Cas.read_max t);
        write_max = (fun ~pid v -> Adaptive.Cas.write_max t ~pid v) },
    t )

let farray_c_native_adaptive ?policy ~n ~domains () =
  let t = Adaptive.Farray_c.create ?policy ~n ~domains () in
  ( { Counters.Counter.increment =
        (fun ~pid -> Adaptive.Farray_c.increment t ~pid);
      read = (fun () -> Adaptive.Farray_c.read t) },
    t )

let farray_c_native_adaptive_metered ?policy ~metrics ~n ~domains () =
  let t = Adaptive.Farray_c.create_metered ?policy ~metrics ~n ~domains () in
  ( meter_counter ~metrics
      { increment = (fun ~pid -> Adaptive.Farray_c.increment t ~pid);
        read = (fun () -> Adaptive.Farray_c.read t) },
    t )

let naive_c_native_adaptive ?policy ~n ~domains () =
  let t = Adaptive.Naive_c.create ?policy ~n ~domains () in
  ( { Counters.Counter.increment =
        (fun ~pid -> Adaptive.Naive_c.increment t ~pid);
      read = (fun () -> Adaptive.Naive_c.read t) },
    t )

let naive_c_native_adaptive_metered ?policy ~metrics ~n ~domains () =
  let t = Adaptive.Naive_c.create_metered ?policy ~metrics ~n ~domains () in
  ( meter_counter ~metrics
      { increment = (fun ~pid -> Adaptive.Naive_c.increment t ~pid);
        read = (fun () -> Adaptive.Naive_c.read t) },
    t )

let maxreg_native_adaptive ~n ~domains ~bound impl :
    (Maxreg.Max_register.instance * Smem.Combine.t * (unit -> Adaptive.report))
    option =
  ignore bound;
  match impl with
  | Algorithm_a ->
    let inst, t = alg_a_native_adaptive ~n ~domains () in
    Some
      (inst, Adaptive.Alg_a.arena t, fun () -> Adaptive.Alg_a.report t)
  | Cas_maxreg ->
    let inst, t = cas_native_adaptive ~domains () in
    Some (inst, Adaptive.Cas.arena t, fun () -> Adaptive.Cas.report t)
  | Algorithm_a_literal | B1_maxreg | Aac_maxreg -> None

let counter_native_adaptive ~n ~domains ~bound impl :
    (Counters.Counter.instance * Smem.Combine.t * (unit -> Adaptive.report))
    option =
  ignore bound;
  match impl with
  | Farray_counter ->
    let inst, t = farray_c_native_adaptive ~n ~domains () in
    Some
      (inst, Adaptive.Farray_c.arena t, fun () -> Adaptive.Farray_c.report t)
  | Naive_counter ->
    let inst, t = naive_c_native_adaptive ~n ~domains () in
    Some
      (inst, Adaptive.Naive_c.arena t, fun () -> Adaptive.Naive_c.report t)
  | Aac_counter | Snapshot_counter _ -> None

(* A disabled handle falls back to the unmetered adaptive constructor —
   which builds its own private enabled handle for signal collection
   (the dispatcher cannot steer blind). *)

let maxreg_native_adaptive_metered ~metrics ~n ~domains ~bound impl :
    (Maxreg.Max_register.instance * Smem.Combine.t * (unit -> Adaptive.report))
    option =
  if not (Obs.Metrics.enabled metrics) then
    maxreg_native_adaptive ~n ~domains ~bound impl
  else
    match impl with
    | Algorithm_a ->
      let inst, t = alg_a_native_adaptive_metered ~metrics ~n ~domains () in
      Some
        (inst, Adaptive.Alg_a.arena t, fun () -> Adaptive.Alg_a.report t)
    | Cas_maxreg ->
      let inst, t = cas_native_adaptive_metered ~metrics ~domains () in
      Some (inst, Adaptive.Cas.arena t, fun () -> Adaptive.Cas.report t)
    | Algorithm_a_literal | B1_maxreg | Aac_maxreg -> None

let counter_native_adaptive_metered ~metrics ~n ~domains ~bound impl :
    (Counters.Counter.instance * Smem.Combine.t * (unit -> Adaptive.report))
    option =
  if not (Obs.Metrics.enabled metrics) then
    counter_native_adaptive ~n ~domains ~bound impl
  else
    match impl with
    | Farray_counter ->
      let inst, t =
        farray_c_native_adaptive_metered ~metrics ~n ~domains ()
      in
      Some
        ( inst,
          Adaptive.Farray_c.arena t,
          fun () -> Adaptive.Farray_c.report t )
    | Naive_counter ->
      let inst, t = naive_c_native_adaptive_metered ~metrics ~n ~domains () in
      Some
        ( inst,
          Adaptive.Naive_c.arena t,
          fun () -> Adaptive.Naive_c.report t )
    | Aac_counter | Snapshot_counter _ -> None

(* {1 Tradeoff-dial constructors}

   The Dial_counter / Dial_maxreg family (DESIGN.md §15) is keyed by a
   {!Treeprim.Dial.t} rather than a [counter_impl] case: a dial point is
   a parameter of one construction, not a new algorithm, and threading
   it through the impl enums would force every all_counters consumer
   (liveness matrices, DPOR sweeps, repro experiments) through four more
   rows.  The boxed [_over]/[_sim] constructors run the family under
   Memsim, DPOR and the fault layer; the [_native_dial] ones are the
   zero-alloc unboxed twins, with [_metered] variants mirroring the
   other native constructors (a disabled handle returns the
   uninstrumented instance). *)

let counter_dial_over (module M : Smem.Memory_intf.MEMORY) ~n dial :
    Counters.Counter.instance =
  let module C = Counters.Dial_counter.Make (M) in
  Counters.Counter.instantiate (module C) (C.create ~n ~dial)

let counter_dial_sim session ~n dial =
  counter_dial_over (Smem.Sim_memory.bind session) ~n dial

let maxreg_dial_over (module M : Smem.Memory_intf.MEMORY) ~n dial :
    Maxreg.Max_register.instance =
  let module A = Maxreg.Dial_maxreg.Make (M) in
  Maxreg.Max_register.instantiate (module A) (A.create ~n ~dial)

let maxreg_dial_sim session ~n dial =
  maxreg_dial_over (Smem.Sim_memory.bind session) ~n dial

let counter_native_dial ~n dial : Counters.Counter.instance =
  let module C = Counters.Dial_counter.Unboxed in
  Counters.Counter.instantiate (module C) (C.create ~n ~dial ())

let maxreg_native_dial ~n dial : Maxreg.Max_register.instance =
  let module A = Maxreg.Dial_maxreg.Unboxed in
  Maxreg.Max_register.instantiate (module A) (A.create ~n ~dial ())

let counter_native_dial_metered ~metrics ~n dial :
    Counters.Counter.instance =
  if not (Obs.Metrics.enabled metrics) then counter_native_dial ~n dial
  else
    let module C = Counters.Dial_counter.Unboxed in
    let c = C.create ~n ~dial () in
    meter_counter ~metrics
      { increment = (fun ~pid -> C.increment_metered c ~metrics ~pid);
        read = (fun () -> C.read c) }

let maxreg_native_dial_metered ~metrics ~n dial :
    Maxreg.Max_register.instance =
  if not (Obs.Metrics.enabled metrics) then maxreg_native_dial ~n dial
  else
    let module A = Maxreg.Dial_maxreg.Unboxed in
    let reg = A.create ~n ~dial () in
    meter_maxreg ~metrics
      { read_max = (fun () -> A.read_max reg);
        write_max = (fun ~pid v -> A.write_max_metered reg ~metrics ~pid v) }
