(** The implementation registry: build any implementation, bound to a
    simulator session or to native atomics, as a closed instance.  All
    experiment drivers (CLI, benches, adversaries, tests) construct
    implementations through this module. *)

type maxreg_impl =
  | Algorithm_a           (** the paper's contribution (repaired line 16) *)
  | Algorithm_a_literal   (** verbatim line 16 — not linearizable! *)
  | Aac_maxreg            (** Aspnes–Attiya–Censor bounded, reads/writes only *)
  | B1_maxreg             (** AAC unbounded over a lazy B1 switch tree *)
  | Cas_maxreg            (** CAS retry loop, not wait-free *)

type counter_impl =
  | Aac_counter
  | Farray_counter
  | Naive_counter
  | Snapshot_counter of snapshot_impl  (** via Corollary 1's reduction *)

and snapshot_impl = Double_collect | Afek | Farray_snapshot

val maxreg_name : maxreg_impl -> string
val counter_name : counter_impl -> string
val snapshot_name : snapshot_impl -> string

val all_maxregs : maxreg_impl list
val all_counters : counter_impl list
val all_snapshots : snapshot_impl list

(** {1 Construction over an arbitrary MEMORY} *)

val maxreg_over :
  (module Smem.Memory_intf.MEMORY) ->
  n:int -> bound:int -> maxreg_impl -> Maxreg.Max_register.instance

val counter_over :
  (module Smem.Memory_intf.MEMORY) ->
  n:int -> bound:int -> counter_impl -> Counters.Counter.instance

val snapshot_over :
  (module Smem.Memory_intf.MEMORY) ->
  n:int -> snapshot_impl -> Snapshots.Snapshot.instance

(** {1 Simulator-bound constructors}

    Objects are allocated into the session's store (the initial
    configuration); operations issued during a scheduler run become
    adversary-controllable events. *)

val maxreg_sim :
  Memsim.Session.t -> n:int -> bound:int -> maxreg_impl ->
  Maxreg.Max_register.instance

val counter_sim :
  Memsim.Session.t -> n:int -> bound:int -> counter_impl ->
  Counters.Counter.instance

val snapshot_sim :
  Memsim.Session.t -> n:int -> snapshot_impl -> Snapshots.Snapshot.instance

(** {1 Native (Atomic) constructors, for Domain-parallel runs} *)

val native : (module Smem.Memory_intf.MEMORY)

val maxreg_native :
  n:int -> bound:int -> maxreg_impl -> Maxreg.Max_register.instance

val counter_native :
  n:int -> bound:int -> counter_impl -> Counters.Counter.instance

val snapshot_native : n:int -> snapshot_impl -> Snapshots.Snapshot.instance

(** {1 Unboxed snapshot construction over an arbitrary MEMORY_INT}

    The hybrid snapshot keeps boxed vector inner nodes but is functorized
    over its leaf-register memory, so it composes with any MEMORY_INT.
    [None] when the snapshot has no int-leaf specialization (double-collect
    and Afek are vector-valued throughout).  The maxreg and counter
    specializations are deliberately not functorized — see
    {!Maxreg.Algorithm_a.Unboxed} etc. — so they have no [_int_over]
    constructor; use the [_native_fast] ones below. *)

val snapshot_int_over :
  (module Smem.Memory_intf.MEMORY_INT) ->
  n:int -> snapshot_impl -> Snapshots.Snapshot.instance option

(** {1 Native fast-path constructors}

    The direct unboxed implementations (padded cells, inline Atomic
    primitives): identical algorithms and step counts to the boxed
    [_native] constructors, but the int-valued hot paths allocate nothing
    and every base object owns its cache line.  [None] when the
    implementation has no specialization (the AAC constructions are
    value-recursive over Simval and stay boxed).  [bound] is accepted for
    call-site uniformity; the specialized implementations are all
    unbounded. *)

val native_unboxed : (module Smem.Memory_intf.MEMORY_INT)

val maxreg_native_fast :
  n:int -> bound:int -> maxreg_impl -> Maxreg.Max_register.instance option

val counter_native_fast :
  n:int -> bound:int -> counter_impl -> Counters.Counter.instance option

val snapshot_native_fast :
  n:int -> snapshot_impl -> Snapshots.Snapshot.instance option

(** {1 Metered (instrumented) native constructors}

    The unboxed fast-path implementations with contention observability:
    [Op_update] per high-level update for every instance, plus CAS
    attempts/failures, propagate refresh rounds and helping events for
    the implementations that have them (algorithm-a, cas-loop, farray).
    Record sites shard by calling pid; [Op_read] is deliberately not
    recorded (the [read] closures carry no pid — record it at the call
    site, where the domain is known).  With a disabled handle
    ({!Obs.Metrics.disabled}) these constructors return the
    uninstrumented [_native_fast] instance itself — the no-op mode has
    zero overhead by construction, and even the [_metered] entry points
    called directly degrade to one inlined field test (see the
    zero-allocation guard in test_obs.ml).  [None] exactly when
    [_native_fast] has no specialization. *)

val maxreg_native_metered :
  metrics:Obs.Metrics.t ->
  n:int -> bound:int -> maxreg_impl -> Maxreg.Max_register.instance option

val counter_native_metered :
  metrics:Obs.Metrics.t ->
  n:int -> bound:int -> counter_impl -> Counters.Counter.instance option

(** {1 Flat-combining native constructors}

    The unboxed fast-path implementations behind a {!Smem.Combine}
    flat-combining arena (see {!Combining} and DESIGN.md §12): the
    uncontended fast path stays the plain backend's cost, contended
    updates batch into one tree traversal per combined batch, and stale
    WriteMax calls eliminate against the monotone root.  The arena is
    returned alongside the instance so drivers can read
    {!Smem.Combine.stats}.  [domains] sizes the arena: every [pid]
    passed to an operation must be in [0 .. domains-1] (with
    [domains = 1] the arena is bypassed).  [None] for implementations
    with no combining layer (AAC, B1, the literal-line-16 ablation).

    The [_metered] variants add [Op_update] per update and route the
    combiner's apply through the [_metered] structure entry points (CAS
    and refresh counts under the combiner's shard); with a disabled
    handle they return the uninstrumented combining instance.  Combining
    stats always live in the arena — flush them with
    {!Obs.Metrics.record_combine_stats} once per run. *)

val maxreg_native_combining :
  n:int -> domains:int -> bound:int -> maxreg_impl ->
  (Maxreg.Max_register.instance * Smem.Combine.t) option

val counter_native_combining :
  n:int -> domains:int -> bound:int -> counter_impl ->
  (Counters.Counter.instance * Smem.Combine.t) option

val maxreg_native_combining_metered :
  metrics:Obs.Metrics.t ->
  n:int -> domains:int -> bound:int -> maxreg_impl ->
  (Maxreg.Max_register.instance * Smem.Combine.t) option

val counter_native_combining_metered :
  metrics:Obs.Metrics.t ->
  n:int -> domains:int -> bound:int -> counter_impl ->
  (Counters.Counter.instance * Smem.Combine.t) option

(** {1 Contention-adaptive native constructors}

    One underlying unboxed structure behind {!Adaptive}'s epoch-driven
    dispatcher (DESIGN.md §13): updates run the plain lock-free path
    until the sampled per-epoch signals (CAS failure rate,
    elimination/batching benefit, observed read share) favor the
    flat-combining side of the paper's tradeoff, and flip back when the
    arena stops earning its keep — with hysteresis, so the dispatcher
    cannot thrash at a crossover.  Reads are always direct.

    The per-structure constructors return the instance together with
    the {!Adaptive} handle (arena, control and {!Adaptive.report}
    access); the impl-keyed constructors mirror the combining ones for
    the bench, returning the arena plus a report thunk, and are [None]
    exactly where the combining constructors are.  The [_metered]
    variants share the caller's metrics handle for both signal
    collection and observability (it must be private to the instance),
    add [Op_update] per update, and keep full dispatch at
    [domains = 1]; a disabled handle falls back to the unmetered
    constructor, which builds a private enabled handle — the dispatcher
    cannot steer blind. *)

val alg_a_native_adaptive :
  ?policy:Adaptive.Policy.params ->
  n:int -> domains:int -> unit ->
  Maxreg.Max_register.instance * Adaptive.Alg_a.t

val alg_a_native_adaptive_metered :
  ?policy:Adaptive.Policy.params ->
  metrics:Obs.Metrics.t ->
  n:int -> domains:int -> unit ->
  Maxreg.Max_register.instance * Adaptive.Alg_a.t

val cas_native_adaptive :
  ?policy:Adaptive.Policy.params ->
  domains:int -> unit ->
  Maxreg.Max_register.instance * Adaptive.Cas.t

val cas_native_adaptive_metered :
  ?policy:Adaptive.Policy.params ->
  metrics:Obs.Metrics.t ->
  domains:int -> unit ->
  Maxreg.Max_register.instance * Adaptive.Cas.t

val farray_c_native_adaptive :
  ?policy:Adaptive.Policy.params ->
  n:int -> domains:int -> unit ->
  Counters.Counter.instance * Adaptive.Farray_c.t

val farray_c_native_adaptive_metered :
  ?policy:Adaptive.Policy.params ->
  metrics:Obs.Metrics.t ->
  n:int -> domains:int -> unit ->
  Counters.Counter.instance * Adaptive.Farray_c.t

val naive_c_native_adaptive :
  ?policy:Adaptive.Policy.params ->
  n:int -> domains:int -> unit ->
  Counters.Counter.instance * Adaptive.Naive_c.t

val naive_c_native_adaptive_metered :
  ?policy:Adaptive.Policy.params ->
  metrics:Obs.Metrics.t ->
  n:int -> domains:int -> unit ->
  Counters.Counter.instance * Adaptive.Naive_c.t

val maxreg_native_adaptive :
  n:int -> domains:int -> bound:int -> maxreg_impl ->
  (Maxreg.Max_register.instance * Smem.Combine.t * (unit -> Adaptive.report))
  option

val counter_native_adaptive :
  n:int -> domains:int -> bound:int -> counter_impl ->
  (Counters.Counter.instance * Smem.Combine.t * (unit -> Adaptive.report))
  option

val maxreg_native_adaptive_metered :
  metrics:Obs.Metrics.t ->
  n:int -> domains:int -> bound:int -> maxreg_impl ->
  (Maxreg.Max_register.instance * Smem.Combine.t * (unit -> Adaptive.report))
  option

val counter_native_adaptive_metered :
  metrics:Obs.Metrics.t ->
  n:int -> domains:int -> bound:int -> counter_impl ->
  (Counters.Counter.instance * Smem.Combine.t * (unit -> Adaptive.report))
  option

(** {1 Tradeoff-dial constructors}

    The {!Counters.Dial_counter} / {!Maxreg.Dial_maxreg} family, keyed
    by a {!Treeprim.Dial.t} dial point rather than an impl enum case (a
    dial is a parameter of one construction, not a new algorithm).  The
    boxed [_over]/[_sim] constructors run every dial point under Memsim,
    DPOR and the fault layer; [_native_dial] builds the zero-alloc
    unboxed twin, and [_metered] mirrors the other native constructors
    (a disabled handle returns the uninstrumented instance). *)

val counter_dial_over :
  (module Smem.Memory_intf.MEMORY) ->
  n:int -> Treeprim.Dial.t -> Counters.Counter.instance

val counter_dial_sim :
  Memsim.Session.t -> n:int -> Treeprim.Dial.t -> Counters.Counter.instance

val maxreg_dial_over :
  (module Smem.Memory_intf.MEMORY) ->
  n:int -> Treeprim.Dial.t -> Maxreg.Max_register.instance

val maxreg_dial_sim :
  Memsim.Session.t -> n:int -> Treeprim.Dial.t -> Maxreg.Max_register.instance

val counter_native_dial :
  n:int -> Treeprim.Dial.t -> Counters.Counter.instance

val maxreg_native_dial :
  n:int -> Treeprim.Dial.t -> Maxreg.Max_register.instance

val counter_native_dial_metered :
  metrics:Obs.Metrics.t ->
  n:int -> Treeprim.Dial.t -> Counters.Counter.instance

val maxreg_native_dial_metered :
  metrics:Obs.Metrics.t ->
  n:int -> Treeprim.Dial.t -> Maxreg.Max_register.instance
