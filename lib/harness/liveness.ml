(* Liveness audits.

   Wait-freedom (the paper's guarantee for Algorithm A, Theorem 6) says
   every process finishes its operation in a bounded number of its own
   steps regardless of scheduling.  Obstruction-freedom says it finishes if
   eventually run alone.  Neither can be proven by testing, but both can be
   audited sharply on the simulator:

   - [solo_completion_bound]: drive a group of processes into many random
     intermediate states, then run each process alone and record the
     maximum number of further steps it needed.  A wait-free operation
     shows a bound independent of the seed; a lock-free-only operation
     (e.g. the CAS-loop register) still completes solo (obstruction-free)
     but its TOTAL steps vary with the interference it suffered.

   - [interference_bound]: run one victim process against a perpetual
     interferer with a fixed step budget; a wait-free victim finishes
     within its solo bound regardless, a non-wait-free one exceeds any
     fixed budget as the interference grows. *)

open Memsim

type solo_report = {
  scenarios : int;          (* random intermediate states examined *)
  all_completed : bool;     (* every process finished when run alone *)
  max_solo_steps : int;     (* steps needed to finish from the worst state *)
}

(* [make_bodies session] returns the bodies of the process group; fresh
   bodies are requested per scenario so operations restart cleanly. *)
let solo_completion_bound ?(scenarios = 50) ?(max_prefix = 40)
    ?(step_budget = 100_000) session ~n ~make_body () =
  let all_completed = ref true in
  let worst = ref 0 in
  for seed = 1 to scenarios do
    Store.reset (Session.store session);
    let sched = Scheduler.create session in
    for pid = 0 to n - 1 do
      ignore (Scheduler.spawn sched (make_body pid))
    done;
    let rng = Random.State.make [| seed |] in
    Scheduler.run_random ~seed:(Random.State.bits rng)
      ~max_events:(Random.State.int rng max_prefix)
      sched;
    for pid = 0 to n - 1 do
      let before = Scheduler.steps_of sched pid in
      Scheduler.run_solo ~max_events:step_budget sched pid;
      if not (Scheduler.is_finished sched pid) then all_completed := false
      else worst := max !worst (Scheduler.steps_of sched pid - before)
    done;
    ignore (Scheduler.finish sched)
  done;
  { scenarios; all_completed = !all_completed; max_solo_steps = !worst }

type interference_report = {
  victim_completed : bool;  (* within the budget, despite interference *)
  victim_steps : int;
  interference_steps : int;
}

(* Alternate one victim step with [per_round] interferer steps; the
   interferer restarts its operation forever. *)
let interference_bound ?(per_round = 8) ?(victim_budget = 10_000) session
    ~victim_body ~interferer_body () =
  Store.reset (Session.store session);
  let sched = Scheduler.create session in
  let victim = Scheduler.spawn sched victim_body in
  let interferer =
    Scheduler.spawn sched (fun () ->
        (* an endless stream of operations *)
        while true do
          interferer_body ()
        done)
  in
  let interference = ref 0 in
  let budget = ref victim_budget in
  while Scheduler.is_active sched victim && !budget > 0 do
    ignore (Scheduler.step sched victim);
    decr budget;
    for _ = 1 to per_round do
      if Scheduler.is_active sched interferer then begin
        ignore (Scheduler.step sched interferer);
        incr interference
      end
    done
  done;
  let victim_steps = Scheduler.steps_of sched victim in
  let completed = Scheduler.is_finished sched victim in
  ignore (Scheduler.finish sched);
  { victim_completed = completed;
    victim_steps;
    interference_steps = !interference }

type plan_report = {
  survivors : int;
  survivors_completed : bool;
  max_survivor_steps : int;
}

(* Run the group under a fault plan (crashes/CAS-failures instrument the
   bodies, stalls/halts gate the scheduler) and audit the SURVIVORS: every
   process the plan neither crashes nor freezes forever must still finish,
   in a bounded number of its own steps.  This is the liveness half of the
   fault sweep; linearizability of the surviving history is checked by the
   test suites and bin/stress.exe. *)
let completion_under_plan ?(max_events = 100_000) session ~n ~make_body ~plan
    () =
  Store.reset (Session.store session);
  let sched = Scheduler.create session in
  let body = Faults.instrument plan make_body in
  for pid = 0 to n - 1 do
    ignore (Scheduler.spawn sched (body pid))
  done;
  let g = Faults.gate plan in
  Faults.run_round_robin ~max_events sched g;
  let crashed pid =
    List.exists
      (function Faults.Crash { pid = p; _ } -> p = pid | _ -> false)
      plan
  in
  let survivors =
    List.filter
      (fun pid -> (not (crashed pid)) && not (Faults.halted_forever g pid))
      (List.init n Fun.id)
  in
  let completed =
    List.for_all (fun pid -> Scheduler.is_finished sched pid) survivors
  in
  let worst =
    List.fold_left
      (fun acc pid -> max acc (Scheduler.steps_of sched pid))
      0 survivors
  in
  ignore (Scheduler.finish sched);
  { survivors = List.length survivors;
    survivors_completed = completed;
    max_survivor_steps = worst }
