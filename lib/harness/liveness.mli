(** Liveness audits on the simulator: solo completion from random
    intermediate states (obstruction-freedom, with a step bound that
    exposes wait-freedom) and completion under relentless interference
    (wait-freedom vs lock-freedom). *)

type solo_report = {
  scenarios : int;
  all_completed : bool;
  max_solo_steps : int;
}

val solo_completion_bound :
  ?scenarios:int ->
  ?max_prefix:int ->
  ?step_budget:int ->
  Memsim.Session.t ->
  n:int ->
  make_body:(int -> unit -> unit) ->
  unit ->
  solo_report
(** Drive [n] processes into random intermediate states, then run each
    alone: every obstruction-free operation must complete, and the worst
    residual step count is reported. *)

type interference_report = {
  victim_completed : bool;
  victim_steps : int;
  interference_steps : int;
}

val interference_bound :
  ?per_round:int ->
  ?victim_budget:int ->
  Memsim.Session.t ->
  victim_body:(unit -> unit) ->
  interferer_body:(unit -> unit) ->
  unit ->
  interference_report
(** Alternate one victim step with [per_round] steps of an endlessly
    retrying interferer.  A wait-free victim completes within its solo
    bound; a merely lock-free one burns steps proportional to the
    interference. *)

type plan_report = {
  survivors : int;          (** processes the plan neither crashes nor
                                freezes forever *)
  survivors_completed : bool;
  max_survivor_steps : int;
}

val completion_under_plan :
  ?max_events:int ->
  Memsim.Session.t ->
  n:int ->
  make_body:(int -> unit -> unit) ->
  plan:Memsim.Faults.plan ->
  unit ->
  plan_report
(** Run the group under a {!Memsim.Faults.plan} (gated round-robin over
    instrumented bodies) and audit the survivors: every process the plan
    neither crashes nor freezes forever must finish, in a bounded number
    of its own steps.  Used by E9's fault-matrix table and by the
    single-fault sweeps in test/test_faults.ml. *)
