(* Small descriptive statistics over measurement samples.

   [summarize] first drops non-finite samples (a NaN trial would otherwise
   poison mean, stddev AND the min/max folds — the fold identities
   [infinity]/[neg_infinity] then leak into the summary); an
   effectively-empty input yields the all-zero summary rather than
   infinite extremes.  Stddev is the SAMPLE standard deviation
   (Bessel-corrected, divide by n-1): these are trials drawn from a noisy
   process, not a full population; n < 2 yields 0. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let empty = { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0. }

let summarize samples =
  match List.filter Float.is_finite samples with
  | [] -> empty
  | samples ->
    let count = List.length samples in
    let fcount = float_of_int count in
    let sum = List.fold_left ( +. ) 0. samples in
    let mean = sum /. fcount in
    let sq_diff =
      List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. samples
    in
    let stddev =
      if count < 2 then 0. else sqrt (sq_diff /. (fcount -. 1.))
    in
    let min = List.fold_left Float.min Float.infinity samples in
    let max = List.fold_left Float.max Float.neg_infinity samples in
    { count; mean; stddev; min; max }

let summarize_ints samples = summarize (List.map float_of_int samples)

(* %.3g for the spread: a stddev of 0.04 on a mean of ~1 is real
   information and "%.2f"-style fixed precision rounded it to noise. *)
let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.2f sd=%.3g min=%.0f max=%.0f" s.count s.mean s.stddev
    s.min s.max
