(** Small descriptive statistics over measurement samples.

    Non-finite samples are dropped before summarizing; an
    effectively-empty input yields the all-zero summary (never
    [infinity]/[neg_infinity] extremes). *)

type summary = {
  count : int;      (** finite samples summarized *)
  mean : float;
  stddev : float;   (** {e sample} stddev (Bessel-corrected, n-1); 0 when n < 2 *)
  min : float;
  max : float;
}

val summarize : float list -> summary
val summarize_ints : int list -> summary
val pp_summary : summary Fmt.t
