(* Domain-parallel throughput measurement, shared by experiment E7 and
   bin/bench.exe.

   Two distortions the obvious loop suffers from, both fixed here:

   - counting through a shared [Atomic.incr] adds an atomic RMW to every
     measured operation — workers count in a local [int ref] and publish
     once, after [stop] flips, so the timed loop contains only the
     operation under test (plus one unavoidable [Atomic.get stop], a
     read-shared cache line);
   - per-domain slots that are adjacent fields of one array share cache
     lines, so even the final publishes (and any future per-op use) ping
     lines between domains — the publish slots are one padded unboxed
     register per domain.

   And two *timing* biases the multi-domain path used to have (both
   inflated the reported rate):

   - the denominator was the requested [seconds], but [Domain.spawn] cost
     and worker startup skew mean the true window differs from the request
     — the window is now measured, from a post-spawn start barrier (all
     workers ready, then released together) to stop-acknowledged;
   - workers kept operating between [Unix.sleepf] returning and their next
     [stop] check, and those operations were counted against the requested
     window — the clock now stops only after every worker has acknowledged
     [stop], so every counted operation lies inside the measured window.

   [?now]/[?sleep] exist so the window arithmetic is testable against a
   scripted clock (test_harness.ml pins the elapsed-time denominator). *)

(* Single-domain measurement runs on the *calling* domain, with a deadline
   check instead of a watcher domain flipping a stop flag.  This is not an
   optimization but a correctness point: the OCaml 5 runtime takes a
   domain-alone fast path for atomic RMWs, and spawning even one watcher
   domain switches the whole runtime into multi-domain mode, roughly
   doubling the cost of every CAS/set — the "1 domain" row would then
   measure runtime mode, not the structure.  The deadline read is amortized
   over ~1024 operations. *)
let run_alone ?(now = Unix.gettimeofday) ~seconds ~batch ~(op : int -> int -> unit) () =
  let chunk = max 1 (1024 / batch) in
  let deadline = now () +. seconds in
  let done_ops = ref 0 in
  let t0 = now () in
  while now () < deadline do
    for _ = 1 to chunk do
      op 0 !done_ops;
      done_ops := !done_ops + batch
    done
  done;
  let t1 = now () in
  float_of_int !done_ops /. (t1 -. t0)

let run_batched ?(now = Unix.gettimeofday) ?(sleep = Unix.sleepf) ~domains
    ~seconds ~batch ~(op : int -> int -> unit) () =
  if domains = 1 then run_alone ~now ~seconds ~batch ~op ()
  else begin
    let ready = Atomic.make 0 in
    let go = Atomic.make false in
    let stop = Atomic.make false in
    let acked = Atomic.make 0 in
    let counts =
      Array.init domains (fun d ->
          Smem.Unboxed_memory.Padded.make ~name:(string_of_int d) 0)
    in
    let workers =
      List.init domains (fun d ->
          Domain.spawn (fun () ->
              Atomic.incr ready;
              while not (Atomic.get go) do
                Domain.cpu_relax ()
              done;
              let done_ops = ref 0 in
              while not (Atomic.get stop) do
                op d !done_ops;
                done_ops := !done_ops + batch
              done;
              Smem.Unboxed_memory.Padded.write counts.(d) !done_ops;
              Atomic.incr acked))
    in
    (* Start barrier: every worker is spawned and spinning before the
       clock starts, so spawn cost and startup skew are outside the
       window.  [t0] is taken just before releasing them — conservative:
       no counted operation can precede it. *)
    while Atomic.get ready < domains do
      Domain.cpu_relax ()
    done;
    let t0 = now () in
    Atomic.set go true;
    sleep seconds;
    Atomic.set stop true;
    (* Stop-acknowledged: workers publish their count before acking, so
       once all have acked, every counted operation lies in [t0, t1]. *)
    while Atomic.get acked < domains do
      Domain.cpu_relax ()
    done;
    let t1 = now () in
    List.iter Domain.join workers;
    let total =
      Array.fold_left
        (fun acc c -> acc + Smem.Unboxed_memory.Padded.read c)
        0 counts
    in
    float_of_int total /. (t1 -. t0)
  end

let run_mix ~domains ~seconds ~op =
  run_batched ~domains ~seconds ~batch:1 ~op ()

(* Centralized so callers (experiments, bench drivers) need no direct
   [Domain] reference — rule R1 of bin/lint.exe confines the Domain API
   to this module. *)
let recommended_domains ?(floor = 1) ?(cap = max_int) () =
  max floor (min cap (Domain.recommended_domain_count ()))

(* {1 Latency-recording runner}

   Same protocol as [run_batched], but each worker additionally times
   every batched [op] call with the monotonic clock and records the
   per-operation latency (call duration / batch) into its own
   {!Obs.Histogram.t} — single-writer, merged by the caller after this
   function returns.  The clock read pair costs ~40ns per batch call
   (amortized to sub-ns per op at batch 64) plus one boxed int64 per
   call, which is why this runner is separate: throughput rows come from
   the unclocked loop above, percentiles from a dedicated metered pass. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let run_batched_latency ?(now = Unix.gettimeofday) ?(sleep = Unix.sleepf)
    ~domains ~seconds ~batch ~(hist : Obs.Histogram.t array)
    ~(op : int -> int -> unit) () =
  if Array.length hist < domains then
    invalid_arg "Throughput.run_batched_latency: need one histogram per domain";
  if domains = 1 then begin
    let h = hist.(0) in
    let deadline = now () +. seconds in
    let done_ops = ref 0 in
    let t0 = now () in
    while now () < deadline do
      let c0 = now_ns () in
      op 0 !done_ops;
      let c1 = now_ns () in
      Obs.Histogram.record h ((c1 - c0) / batch);
      done_ops := !done_ops + batch
    done;
    let t1 = now () in
    float_of_int !done_ops /. (t1 -. t0)
  end
  else begin
    let ready = Atomic.make 0 in
    let go = Atomic.make false in
    let stop = Atomic.make false in
    let acked = Atomic.make 0 in
    let counts =
      Array.init domains (fun d ->
          Smem.Unboxed_memory.Padded.make ~name:(string_of_int d) 0)
    in
    let workers =
      List.init domains (fun d ->
          Domain.spawn (fun () ->
              let h = hist.(d) in
              Atomic.incr ready;
              while not (Atomic.get go) do
                Domain.cpu_relax ()
              done;
              let done_ops = ref 0 in
              while not (Atomic.get stop) do
                let c0 = now_ns () in
                op d !done_ops;
                let c1 = now_ns () in
                Obs.Histogram.record h ((c1 - c0) / batch);
                done_ops := !done_ops + batch
              done;
              Smem.Unboxed_memory.Padded.write counts.(d) !done_ops;
              Atomic.incr acked))
    in
    while Atomic.get ready < domains do
      Domain.cpu_relax ()
    done;
    let t0 = now () in
    Atomic.set go true;
    sleep seconds;
    Atomic.set stop true;
    while Atomic.get acked < domains do
      Domain.cpu_relax ()
    done;
    let t1 = now () in
    List.iter Domain.join workers;
    let total =
      Array.fold_left
        (fun acc c -> acc + Smem.Unboxed_memory.Padded.read c)
        0 counts
    in
    float_of_int total /. (t1 -. t0)
  end
