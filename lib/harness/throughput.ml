(* Domain-parallel throughput measurement, shared by experiment E7 and
   bin/bench.exe.

   Two distortions the obvious loop suffers from, both fixed here:

   - counting through a shared [Atomic.incr] adds an atomic RMW to every
     measured operation — workers count in a local [int ref] and publish
     once, after [stop] flips, so the timed loop contains only the
     operation under test (plus one unavoidable [Atomic.get stop], a
     read-shared cache line);
   - per-domain slots that are adjacent fields of one array share cache
     lines, so even the final publishes (and any future per-op use) ping
     lines between domains — the publish slots are one padded unboxed
     register per domain. *)

(* Single-domain measurement runs on the *calling* domain, with a deadline
   check instead of a watcher domain flipping a stop flag.  This is not an
   optimization but a correctness point: the OCaml 5 runtime takes a
   domain-alone fast path for atomic RMWs, and spawning even one watcher
   domain switches the whole runtime into multi-domain mode, roughly
   doubling the cost of every CAS/set — the "1 domain" row would then
   measure runtime mode, not the structure.  The deadline read is amortized
   over ~1024 operations. *)
let run_alone ~seconds ~batch ~(op : int -> int -> unit) =
  let chunk = max 1 (1024 / batch) in
  let deadline = Unix.gettimeofday () +. seconds in
  let done_ops = ref 0 in
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () < deadline do
    for _ = 1 to chunk do
      op 0 !done_ops;
      done_ops := !done_ops + batch
    done
  done;
  let t1 = Unix.gettimeofday () in
  float_of_int !done_ops /. (t1 -. t0)

let run_batched ~domains ~seconds ~batch ~(op : int -> int -> unit) =
  if domains = 1 then run_alone ~seconds ~batch ~op
  else
  let stop = Atomic.make false in
  let counts =
    Array.init domains (fun d ->
        Smem.Unboxed_memory.Padded.make ~name:(string_of_int d) 0)
  in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let done_ops = ref 0 in
            while not (Atomic.get stop) do
              op d !done_ops;
              done_ops := !done_ops + batch
            done;
            Smem.Unboxed_memory.Padded.write counts.(d) !done_ops))
  in
  Unix.sleepf seconds;
  Atomic.set stop true;
  List.iter Domain.join workers;
  let total =
    Array.fold_left
      (fun acc c -> acc + Smem.Unboxed_memory.Padded.read c)
      0 counts
  in
  float_of_int total /. seconds

let run_mix ~domains ~seconds ~op = run_batched ~domains ~seconds ~batch:1 ~op
