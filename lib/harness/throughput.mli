(** Domain-parallel throughput measurement, shared by experiment E7 and
    [bin/bench.exe].  Workers count completed operations in a domain-local
    [int ref] and publish once after the stop flag flips, through padded
    per-domain slots — the timed loop performs no shared-memory traffic
    beyond the operation under test and the stop-flag read. *)

val run_mix : domains:int -> seconds:float -> op:(int -> int -> unit) -> float
(** Spawn [domains] domains, each calling [op d i] (domain index, local
    iteration counter) in a loop for [seconds]; return operations per
    second summed over domains. *)

val run_batched :
  domains:int -> seconds:float -> batch:int -> op:(int -> int -> unit) -> float
(** Like {!run_mix}, but [op d i] is expected to perform [batch]
    operations itself (indices [i .. i + batch - 1]) and the iteration
    counter advances by [batch] per call.  Amortizes the stop-flag read
    and loop bookkeeping across the batch, so sub-10ns operations can be
    measured without the harness dominating.

    When [domains = 1] the loop runs on the {e calling} domain against a
    deadline, with no domains spawned: the OCaml 5 runtime takes a
    domain-alone fast path for atomic RMWs, and a spawned watcher domain
    would switch the whole runtime into multi-domain mode, roughly
    doubling the cost of every CAS — the single-domain row would measure
    runtime mode rather than the structure. *)
