(** Domain-parallel throughput measurement, shared by experiment E7 and
    [bin/bench.exe].  Workers count completed operations in a domain-local
    [int ref] and publish once after the stop flag flips, through padded
    per-domain slots — the timed loop performs no shared-memory traffic
    beyond the operation under test and the stop-flag read.

    Multi-domain timing is honest: the window runs from a post-spawn start
    barrier (all workers spawned and spinning, then released together) to
    stop-acknowledged (every worker has published its count), and the
    measured elapsed time — not the requested duration — is the
    denominator.  The former [ops / requested-seconds] accounting
    inflated multi-domain rows: spawn cost and startup skew shrank the
    true window, and operations executed between [sleepf] returning and
    the workers' next stop check were counted outside it. *)

val recommended_domains : ?floor:int -> ?cap:int -> unit -> int
(** [Domain.recommended_domain_count] clamped to [[floor, cap]]
    (defaults: no clamping).  Call this rather than the [Domain] API —
    rule R1 of [bin/lint.exe] confines raw [Domain]/[Atomic] references
    to the memory layer, the observability layer and this harness. *)

val run_mix : domains:int -> seconds:float -> op:(int -> int -> unit) -> float
(** Spawn [domains] domains, each calling [op d i] (domain index, local
    iteration counter) in a loop for [seconds]; return operations per
    measured second summed over domains. *)

val run_batched :
  ?now:(unit -> float) ->
  ?sleep:(float -> unit) ->
  domains:int ->
  seconds:float ->
  batch:int ->
  op:(int -> int -> unit) ->
  unit ->
  float
(** Like {!run_mix}, but [op d i] is expected to perform [batch]
    operations itself (indices [i .. i + batch - 1]) and the iteration
    counter advances by [batch] per call.  Amortizes the stop-flag read
    and loop bookkeeping across the batch, so sub-10ns operations can be
    measured without the harness dominating.

    When [domains = 1] the loop runs on the {e calling} domain against a
    deadline, with no domains spawned: the OCaml 5 runtime takes a
    domain-alone fast path for atomic RMWs, and a spawned watcher domain
    would switch the whole runtime into multi-domain mode, roughly
    doubling the cost of every CAS — the single-domain row would measure
    runtime mode rather than the structure.

    [now]/[sleep] (defaults [Unix.gettimeofday]/[Unix.sleepf]) exist so
    tests can pin the window arithmetic against a scripted clock. *)

val run_alone :
  ?now:(unit -> float) ->
  seconds:float ->
  batch:int ->
  op:(int -> int -> unit) ->
  unit ->
  float
(** The [domains = 1] path of {!run_batched}, callable directly. *)

val run_batched_latency :
  ?now:(unit -> float) ->
  ?sleep:(float -> unit) ->
  domains:int ->
  seconds:float ->
  batch:int ->
  hist:Obs.Histogram.t array ->
  op:(int -> int -> unit) ->
  unit ->
  float
(** {!run_batched} with per-operation latency recording: worker [d] times
    every batched call with the monotonic clock and records
    [duration / batch] nanoseconds into [hist.(d)] (single-writer; merge
    after return).  The clock pair adds ~40ns per batched call, so use
    this as a separate metered pass and take throughput rows from
    {!run_batched}.  [now]/[sleep] script the *window* clock only (the
    throughput denominator); per-op latencies always come from the
    monotonic clock. *)
