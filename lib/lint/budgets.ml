(* The declared step-complexity budgets, as data — the static analogue of
   EXPERIMENTS.md's E1-E3 tables.  One row per (module, operation): the
   paper's bound for that operation, which lib/lint/cost.ml must certify
   the implementation stays within.  Growing or loosening a row is a
   reviewed change to this file, not an edit at the violation site.

   The auxiliary tables are the analysis's trusted annotations:

   - [recursion]: self-recursive functions whose iteration count is
     bounded by the data structure's geometry (a leaf-to-root walk is
     O(log n) deep, the Afek scan retries at most N+1 times).  The
     analysis multiplies the per-iteration cost by the declared class —
     but only if the iteration re-reads shared state (the semantic R2
     witness); a recursion that cannot observe other processes' steps is
     reported Unbounded regardless of its annotation.  Unannotated
     recursion with a nonzero per-iteration cost is Unbounded.

   - [const_bounds]: identifiers that appear as [for]-loop limits and are
     compile-time constants of known magnitude ([refreshes] is 2: the
     double-refresh).  Any other non-literal loop limit is classified as
     O(n) trips.

   - [memory_params]: functor-parameter names instantiated with MEMORY /
     MEMORY_GEN / MEMORY_INT; [<param>.read/write/cas] (and get/set/
     compare_and_set) through one of these names is one shared access.
     Calls through any OTHER functor parameter are Unbounded (the cost
     belongs to the instantiation, e.g. Counter_of_snapshot over S).

   - [instrumentation_roots]: call targets excluded from the model's
     accounting (single-writer observability shards; the paper's
     structures do not contain them). *)

type row = {
  op : string list;          (* qualified display path of the operation *)
  budget : Summary.bound;    (* declared bound on total shared accesses *)
  reason : string;           (* the paper/source of the bound, or why
                                Unbounded is acceptable *)
}

type t = {
  rows : row list;
  recursion : (string list * Summary.bound) list;
  const_bounds : (string * int) list;
  memory_params : string list;
  instrumentation_roots : string list;
}

let row op budget reason = { op; budget; reason }

let default =
  { rows =
      [ (* max registers (E1 / Theorem 6) *)
        row [ "Algorithm_a"; "Make"; "read_max" ] (Const 2)
          "Algorithm A ReadMax: a single read of the root (paper sec. 5)";
        row [ "Algorithm_a"; "Make"; "write_max" ] Log
          "Algorithm A WriteMax: leaf write + double-refresh propagation, \
           O(min(log N, log v))";
        row [ "Algorithm_a"; "Unboxed"; "read_max" ] (Const 2)
          "Algorithm A ReadMax (unboxed): one atomic load of the root";
        row [ "Algorithm_a"; "Unboxed"; "write_max" ] Log
          "Algorithm A WriteMax (unboxed): O(min(log N, log v))";
        row [ "Algorithm_a"; "Unboxed"; "write_max_metered" ] Log
          "metered WriteMax: same walk, instrumentation excluded from the \
           model's accounting";
        row [ "Aac_maxreg"; "Make"; "read_max" ] Log
          "AAC bounded max register: switch descent, O(log M)";
        row [ "Aac_maxreg"; "Make"; "write_max" ] Log
          "AAC bounded max register: switch descent, O(log M)";
        row [ "B1_maxreg"; "Make"; "read_max" ] Log
          "AAC-over-B1 unbounded register: O(log vmax) switch probes";
        row [ "B1_maxreg"; "Make"; "write_max" ] Log
          "AAC-over-B1 unbounded register: O(log v) switch probes";
        row [ "B1_maxreg"; "Unboxed"; "read_max" ] Log
          "unboxed B1 register: O(log vmax), incl. lazy-cell probes";
        row [ "B1_maxreg"; "Unboxed"; "write_max" ] Log
          "unboxed B1 register: O(log v), incl. lazy-cell probes";
        row [ "Cas_maxreg"; "Make"; "read_max" ] (Const 2)
          "CAS-loop register ReadMax: one read";
        row [ "Cas_maxreg"; "Make"; "write_max" ]
          (Unbounded "lock-free CAS retry loop")
          "deliberately not wait-free: retries bounded only by concurrent \
           successful writers (the Theorem 3 adversary drives this to \
           Theta(K)) — the baseline Algorithm A exists to beat";
        row [ "Cas_maxreg"; "Unboxed"; "read_max" ] (Const 1)
          "CAS-loop register ReadMax (unboxed): one atomic load";
        row [ "Cas_maxreg"; "Unboxed"; "write_max" ]
          (Unbounded "lock-free CAS retry loop")
          "deliberately not wait-free (see boxed write_max)";
        row [ "Cas_maxreg"; "Unboxed"; "write_max_metered" ]
          (Unbounded "lock-free CAS retry loop")
          "metered variant of the not-wait-free retry loop";
        row [ "Cas_maxreg"; "Unboxed"; "write_once" ] (Const 2)
          "single CAS attempt for the combining fast path: one load, one \
           CAS";
        (* counters (E2 / Theorem 1 & Corollary 2) *)
        row [ "Naive_counter"; "Make"; "increment" ] (Const 2)
          "single-writer cell bump: read own cell + write";
        row [ "Naive_counter"; "Make"; "read" ] Linear
          "collect of all N cells";
        row [ "Naive_counter"; "Unboxed"; "increment" ] (Const 2)
          "single-writer cell bump (unboxed)";
        row [ "Naive_counter"; "Unboxed"; "add" ] (Const 2)
          "batched bump: still one read + one write of the own cell";
        row [ "Naive_counter"; "Unboxed"; "read" ] Linear
          "collect of all N cells (unboxed)";
        row [ "Aac_counter"; "Make"; "increment" ] Polylog
          "AAC counter increment: O(log N) ancestors, each a O(log B) \
           WriteMax — O(log N * log B)";
        row [ "Aac_counter"; "Make"; "read" ] Log
          "AAC counter read: one ReadMax of the root, O(log B)";
        row [ "Farray_counter"; "Make"; "increment" ] Log
          "f-array counter increment: leaf bump + propagation, O(log N)";
        row [ "Farray_counter"; "Make"; "read" ] (Const 2)
          "f-array counter read: one read of the root";
        row [ "Farray_counter"; "Unboxed"; "increment" ] Log
          "f-array counter increment (unboxed), O(log N)";
        row [ "Farray_counter"; "Unboxed"; "add" ] Log
          "batched increment: one leaf update + one propagation";
        row [ "Farray_counter"; "Unboxed"; "increment_metered" ] Log
          "metered increment: instrumentation excluded from the model";
        row [ "Farray_counter"; "Unboxed"; "read" ] (Const 2)
          "f-array counter read (unboxed): one atomic load";
        (* the tradeoff-dial family (Theorem 1's frontier).  The static
           rows certify the worst case over the dial — read = Theta(f)
           <= N block-root reads, increment = O(log(N/f)) <= O(log N) —
           and the per-dial refinement (Const/Log/Sqrt/Linear as f
           moves) is [dial_read_budget]/[dial_update_budget] below,
           enforced dynamically by the test_cost differential. *)
        row [ "Dial_counter"; "Make"; "read" ] Linear
          "dial counter read: collect of the f <= N block roots";
        row [ "Dial_counter"; "Make"; "increment" ] Log
          "dial counter increment: in-block propagation, O(log(N/f)) \
           <= O(log N)";
        row [ "Dial_counter"; "Unboxed"; "read" ] Linear
          "dial counter read (unboxed): f <= N block-root loads";
        row [ "Dial_counter"; "Unboxed"; "increment" ] Log
          "dial counter increment (unboxed): O(log(N/f))";
        row [ "Dial_counter"; "Unboxed"; "add" ] Log
          "batched dial increment: one leaf update + one in-block \
           propagation";
        row [ "Dial_counter"; "Unboxed"; "increment_metered" ] Log
          "metered dial increment: instrumentation excluded from the \
           model";
        row [ "Dial_maxreg"; "Make"; "read_max" ] Linear
          "dial max register ReadMax: collect of the f <= N block roots";
        row [ "Dial_maxreg"; "Make"; "write_max" ] Log
          "dial max register WriteMax: in-block propagation, \
           O(log(N/f)) <= O(log N)";
        row [ "Dial_maxreg"; "Unboxed"; "read_max" ] Linear
          "dial max register ReadMax (unboxed): f <= N block-root loads";
        row [ "Dial_maxreg"; "Unboxed"; "write_max" ] Log
          "dial max register WriteMax (unboxed): O(log(N/f))";
        row [ "Dial_maxreg"; "Unboxed"; "write_max_metered" ] Log
          "metered dial WriteMax: instrumentation excluded from the \
           model";
        (* f-array (Theorem 1's optimal point) *)
        row [ "Farray"; "Make"; "read" ] (Const 1)
          "f-array read: a single read of the root";
        row [ "Farray"; "Make"; "read_leaf" ] (Const 1)
          "single-writer leaf read";
        row [ "Farray"; "Make"; "update" ] Log
          "f-array update: leaf write + double-refresh propagation, \
           O(log N)";
        row [ "Farray"; "Unboxed"; "read" ] (Const 1)
          "f-array read (unboxed): one atomic load";
        row [ "Farray"; "Unboxed"; "read_leaf" ] (Const 1)
          "single-writer leaf load (unboxed)";
        row [ "Farray"; "Unboxed"; "update" ] Log
          "f-array update (unboxed), O(log N)";
        row [ "Farray"; "Unboxed"; "update_metered" ] Log
          "metered update: instrumentation excluded from the model";
        (* tree propagation primitive *)
        row [ "Propagate"; "Make"; "refresh" ] (Const 4)
          "one refresh: read node + read both children + CAS = 4 events";
        row [ "Propagate"; "Make"; "propagate" ] Log
          "leaf-to-root walk, 2 refreshes per ancestor: O(depth)";
        row [ "Propagate"; "Unboxed"; "refresh" ] (Const 4)
          "one refresh (unboxed): 3 loads + 1 CAS";
        row [ "Propagate"; "Unboxed"; "propagate" ] Log
          "leaf-to-root walk (unboxed): O(depth)";
        row [ "Propagate"; "Unboxed"; "refresh_metered" ] (Const 4)
          "metered refresh: instrumentation excluded from the model";
        row [ "Propagate"; "Unboxed"; "propagate_metered" ] Log
          "metered walk: instrumentation excluded from the model";
        (* snapshots (E3) *)
        row [ "Double_collect"; "Make"; "update" ] (Const 2)
          "double-collect update: read own segment's seq + write";
        row [ "Double_collect"; "Make"; "collect" ] Linear
          "one collect: read all N segments";
        row [ "Double_collect"; "Make"; "scan" ]
          (Unbounded "collect-until-quiescent retry loop")
          "obstruction-free only: a scan concurrent with an unbounded \
           update stream never terminates (bounded in code by \
           max_collects purely to keep adversarial experiments finite)";
        row [ "Afek_snapshot"; "Make"; "collect" ] Linear
          "one collect: read all N segments";
        row [ "Afek_snapshot"; "Make"; "scan" ] Quadratic
          "at most N+1 collects of N segments before a double-clean or a \
           borrowed embedded scan: O(N^2)";
        row [ "Afek_snapshot"; "Make"; "update" ] Quadratic
          "update embeds a full scan: O(N^2)";
        row [ "Farray_snapshot"; "Make"; "update" ] Log
          "f-array snapshot update: leaf write + propagation, O(log N)";
        row [ "Farray_snapshot"; "Make"; "scan" ] (Const 1)
          "f-array snapshot scan: a single read of the root";
        row [ "Hybrid_snapshot"; "Make"; "update" ] Log
          "hybrid snapshot update: unboxed leaf write + boxed propagation";
        row [ "Hybrid_snapshot"; "Make"; "scan" ] (Const 1)
          "hybrid snapshot scan: a single read of the root" ];
    recursion =
      [ (* leaf-to-root walks: depth of a complete/B1 tree *)
        ([ "Propagate"; "Make"; "up" ], Summary.Log);
        ([ "Propagate"; "Unboxed"; "propagate" ], Summary.Log);
        ([ "Propagate"; "Unboxed"; "propagate_metered_live" ], Summary.Log);
        ([ "Aac_counter"; "Make"; "up" ], Summary.Log);
        ([ "Hybrid_snapshot"; "Make"; "propagate" ], Summary.Log);
        (* switch-tree descents: depth of the AAC / B1 partition tree *)
        ([ "Aac_maxreg"; "Make"; "read_max" ], Summary.Log);
        ([ "Aac_maxreg"; "Make"; "write" ], Summary.Log);
        ([ "B1_maxreg"; "Make"; "read" ], Summary.Log);
        ([ "B1_maxreg"; "Make"; "write" ], Summary.Log);
        ([ "B1_maxreg"; "Unboxed"; "read" ], Summary.Log);
        ([ "B1_maxreg"; "Unboxed"; "write" ], Summary.Log);
        (* the Afek scan: a process observed moving twice yields a borrowed
           embedded scan, so at most N+1 collects *)
        ([ "Afek_snapshot"; "Make"; "loop" ], Summary.Linear) ];
    const_bounds = [ ("refreshes", 2) ];
    memory_params = [ "M"; "B"; "U" ];
    instrumentation_roots = [ "Obs"; "Metrics" ] }

let find t op = List.find_opt (fun r -> r.op = op) t.rows

(* {1 Dial-parametric budgets}

   The static rows above certify the dial family's worst case over all
   dial points; these refine per point.  [f] and [n] are raw ints (the
   dial's width and the process count) so the lint library needs no
   dependency on the structure libraries — callers pass
   [Treeprim.Dial.width ~n dial].  The classes are exactly Theorem 1's
   frontier: read Theta(f), update O(log(N/f)); at the extremes they
   collapse to the Farray_counter / Naive_counter rows. *)

let dial_read_budget ~f ~n =
  if f >= n then Summary.Linear
  else if f <= 1 then Summary.Const 2
  else
    (* ceil_log2 n, locally: Log covers the F_log point, Sqrt the rest
       of the sublinear interior (f = ceil(sqrt n) in particular) *)
    let rec lg d v = if v >= n then d else lg (d + 1) (2 * v) in
    if f <= lg 0 1 then Summary.Log else Summary.Sqrt

let dial_update_budget ~f ~n =
  if f >= n then Summary.Const 2 (* single-leaf block: read + write *)
  else Summary.Log
