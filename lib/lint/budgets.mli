(** The declared step-complexity budgets (the static analogue of the
    E1-E3 tables) plus the cost analysis's trusted annotations.  Growing
    or loosening an entry is a reviewed change to budgets.ml. *)

type row = {
  op : string list;        (** qualified display path, e.g.
                               [["Farray"; "Make"; "update"]] *)
  budget : Summary.bound;  (** declared bound on total shared accesses *)
  reason : string;         (** source of the bound, or why [Unbounded]
                               is acceptable (the allowlist entry) *)
}

type t = {
  rows : row list;
  recursion : (string list * Summary.bound) list;
  (** self-recursive functions with a geometry-bounded iteration count;
      trusted only when each iteration re-reads shared state *)
  const_bounds : (string * int) list;
  (** identifiers usable as [for]-loop limits with a known constant
      magnitude (e.g. [refreshes] = 2) *)
  memory_params : string list;
  (** functor-parameter names instantiated with MEMORY/MEMORY_INT *)
  instrumentation_roots : string list;
  (** call roots excluded from the model's accounting *)
}

val default : t
val find : t -> string list -> row option

(** {1 Dial-parametric budgets}

    Per-dial refinement of the [Dial_counter]/[Dial_maxreg] static rows
    (which certify the worst case over the dial): read Theta(f), update
    O(log(N/f)).  [f] is the dial's width ({!Treeprim.Dial.width}) and
    [n] the process count — raw ints, so lint does not depend on the
    structure libraries.  Enforced dynamically by the test_cost
    differential and rendered as COSTS.md's dial table. *)

val dial_read_budget : f:int -> n:int -> Summary.bound
val dial_update_budget : f:int -> n:int -> Summary.bound
