type t = {
  source : string;
  modname : string;
  structure : Typedtree.structure;
}

(* dune wraps library modules as Lib__Module; the linter reasons about
   the display name a human writes in source.  Split on the last "__",
   not the last '_': "Maxreg__Cas_maxreg" -> "Cas_maxreg". *)
let display_name modname =
  let n = String.length modname in
  let rec last_sep i best =
    if i >= n - 1 then best
    else if modname.[i] = '_' && modname.[i + 1] = '_' then last_sep (i + 1) (Some i)
    else last_sep (i + 1) best
  in
  match last_sep 0 None with
  | Some i when i + 2 < n -> String.sub modname (i + 2) (n - i - 2)
  | _ -> modname

let load path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | cmt ->
    (match cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile with
     | Cmt_format.Implementation structure, Some source ->
       Some { source; modname = display_name cmt.Cmt_format.cmt_modname; structure }
     | _ -> None)

let scan ~build_dir =
  let units = ref [] in
  let seen = Hashtbl.create 64 in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
      Array.sort String.compare entries;
      Array.iter
        (fun entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk path
          else if Filename.check_suffix entry ".cmt" then
            match load path with
            | None -> ()
            | Some u ->
              (* dune can produce several cmts per source (e.g. an alias
                 module compiled for multiple stanzas); keep the first. *)
              if not (Hashtbl.mem seen u.source) then begin
                Hashtbl.add seen u.source ();
                units := u :: !units
              end)
        entries
  in
  walk build_dir;
  List.sort (fun a b -> String.compare a.source b.source) !units
