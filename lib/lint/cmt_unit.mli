(** Loading dune-produced [.cmt] files into lintable units.  The typed
    tree (not the parsetree) is what makes the rules reliable: paths are
    resolved, so [Atomic.get] and [Stdlib.Atomic.get] and an
    [open Atomic] all surface as the same resolved path. *)

type t = {
  source : string;
      (** repo-relative source path as recorded by dune
          (e.g. "lib/maxreg/algorithm_a.ml") *)
  modname : string;
      (** display module name: "Maxreg__Cas_maxreg" -> "Cas_maxreg" *)
  structure : Typedtree.structure;
}

val display_name : string -> string
(** Strip a dune wrapping prefix: ["Lib__Mod"] -> ["Mod"]. *)

val load : string -> t option
(** Read one [.cmt]; [None] for interfaces, partial cmts, or unreadable
    files (version skew) — the driver skips those silently. *)

val scan : build_dir:string -> t list
(** All implementation units under [build_dir] (recursive), deduplicated
    by source path, sorted by source path. *)
