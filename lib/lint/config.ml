type allow =
  | Dir of string
  | Module_path of string list

type r3_mode = Body | Loops

type r3_target = {
  qual : string list;
  mode : r3_mode;
}

type t = {
  scope_dirs : string list;
  r1_banned : string list;
  r1_allow : allow list;
  r2_dirs : string list;
  r2_reads : string list;
  r2_cas : string list;
  r3_targets : r3_target list;
  r4_dirs : string list;
  r4_allow : string list;
}

(* The repo's discipline, as data.  Growing the allowlists is a reviewed
   change to this file, not an edit at the violation site. *)

let default =
  { (* R1-R3 lint the library and executable trees; test/ (fixtures,
       qcheck harnesses) and examples/ (standalone native demos) are out
       of scope. *)
    scope_dirs = [ "lib"; "bin"; "bench" ];
    (* R1: the concurrency and representation escape hatches.  Everything
       outside the allowlist must reach shared memory through the
       MEMORY/MEMORY_GEN signatures (lib/smem), the observability layer,
       or the throughput harness. *)
    r1_banned = [ "Atomic"; "Obj"; "Domain"; "Mutex"; "Condition"; "Semaphore" ];
    r1_allow =
      [ (* the memory layer itself: boxed/unboxed/counting/sim backends,
           the Obj-built Padded blocks, Lazy_cell, and the
           flat-combining arena (Combine: publication slots, combiner
           lock, single-writer stat cells) *)
        Dir "lib/smem";
        (* single-writer metric shards and their padded cells *)
        Dir "lib/obs";
        (* domain spawning, stop flags and publish slots of the
           measurement harness *)
        Dir "lib/harness/throughput.ml";
        (* the unboxed natives: directly-applied Atomic primitives are
           the whole point of these submodules (a functor indirection
           would cost more than the operations) — allowlisted at
           submodule granularity, so raw atomics in the boxed functor
           halves of the same files still get flagged *)
        Module_path [ "Algorithm_a"; "Unboxed" ];
        Module_path [ "B1_maxreg"; "Unboxed" ];
        Module_path [ "Cas_maxreg"; "Unboxed" ];
        Module_path [ "Farray"; "Unboxed" ];
        Module_path [ "Naive_counter"; "Unboxed" ];
        Module_path [ "Farray_counter"; "Unboxed" ];
        Module_path [ "Dial_counter"; "Unboxed" ];
        Module_path [ "Dial_maxreg"; "Unboxed" ];
        Module_path [ "Propagate"; "Unboxed" ];
        (* chaos injection primitives: cpu_relax storms, DLS-keyed
           deterministic dice, domain spawning and the shared stamp
           clock — submodule-granular so raw atomics anywhere else in
           chaos.ml still get flagged *)
        Module_path [ "Chaos"; "Inject" ];
        (* the adaptive dispatcher's controller: padded mode cell and
           epoch lock, single-writer per-domain tick cells — submodule-
           granular so the structure modules in adaptive.ml must go
           through Ctl rather than touching atomics directly *)
        Module_path [ "Adaptive"; "Ctl" ] ];
    (* R2: the libraries holding the paper's algorithms.  An unbounded
       loop there that never re-reads shared memory can spin forever on
       stale state — the syntactic complement of E9's liveness audit. *)
    r2_dirs = [ "lib/maxreg"; "lib/counters"; "lib/treeprim"; "lib/farray" ];
    r2_reads =
      [ "read"; "get"; "read_max"; "read_leaf"; "child_value"; "scan";
        "collect"; "fetch_and_add" ];
    r2_cas = [ "cas"; "compare_and_set"; "compare_exchange"; "fetch_and_add" ];
    (* R3: the zero-allocation claims pinned statically.  [Body] checks a
       whole function body; [Loops] checks only while/for bodies inside
       the function (measurement epilogues may allocate, timed loops may
       not).  The latency runner is deliberately absent: its timed loop
       boxes one int64 per batch by design (see throughput.mli). *)
    r3_targets =
      [ { qual = [ "Metrics"; "add" ]; mode = Body };
        { qual = [ "Metrics"; "incr" ]; mode = Body };
        { qual = [ "Algorithm_a"; "Unboxed"; "read_max" ]; mode = Body };
        { qual = [ "Algorithm_a"; "Unboxed"; "write_max" ]; mode = Body };
        { qual = [ "Algorithm_a"; "Unboxed"; "write_max_metered" ]; mode = Body };
        { qual = [ "Cas_maxreg"; "Unboxed"; "read_max" ]; mode = Body };
        { qual = [ "Cas_maxreg"; "Unboxed"; "cas_loop" ]; mode = Body };
        { qual = [ "Cas_maxreg"; "Unboxed"; "cas_loop_metered" ]; mode = Body };
        { qual = [ "Cas_maxreg"; "Unboxed"; "write_max" ]; mode = Body };
        { qual = [ "Cas_maxreg"; "Unboxed"; "write_max_metered" ]; mode = Body };
        { qual = [ "B1_maxreg"; "Unboxed"; "switch_set" ]; mode = Body };
        { qual = [ "B1_maxreg"; "Unboxed"; "write" ]; mode = Body };
        { qual = [ "B1_maxreg"; "Unboxed"; "read" ]; mode = Body };
        { qual = [ "Farray"; "Unboxed"; "read" ]; mode = Body };
        { qual = [ "Farray"; "Unboxed"; "read_leaf" ]; mode = Body };
        { qual = [ "Farray"; "Unboxed"; "update" ]; mode = Body };
        { qual = [ "Farray"; "Unboxed"; "update_metered" ]; mode = Body };
        { qual = [ "Naive_counter"; "Unboxed"; "increment" ]; mode = Body };
        { qual = [ "Naive_counter"; "Unboxed"; "read" ]; mode = Body };
        { qual = [ "Farray_counter"; "Unboxed"; "increment" ]; mode = Body };
        { qual = [ "Farray_counter"; "Unboxed"; "increment_metered" ];
          mode = Body };
        { qual = [ "Farray_counter"; "Unboxed"; "read" ]; mode = Body };
        { qual = [ "Dial_counter"; "Unboxed"; "increment" ]; mode = Body };
        { qual = [ "Dial_counter"; "Unboxed"; "increment_metered" ];
          mode = Body };
        { qual = [ "Dial_counter"; "Unboxed"; "read" ]; mode = Body };
        { qual = [ "Dial_maxreg"; "Unboxed"; "read_max" ]; mode = Body };
        { qual = [ "Dial_maxreg"; "Unboxed"; "write_max" ]; mode = Body };
        { qual = [ "Dial_maxreg"; "Unboxed"; "write_max_metered" ];
          mode = Body };
        { qual = [ "Propagate"; "Unboxed"; "child_value" ]; mode = Body };
        { qual = [ "Propagate"; "Unboxed"; "refresh" ]; mode = Body };
        { qual = [ "Propagate"; "Unboxed"; "propagate" ]; mode = Body };
        { qual = [ "Propagate"; "Unboxed"; "refresh_metered" ]; mode = Body };
        { qual = [ "Propagate"; "Unboxed"; "propagate_metered_live" ];
          mode = Body };
        { qual = [ "Propagate"; "Unboxed"; "propagate_metered" ]; mode = Body };
        { qual = [ "Throughput"; "run_alone" ]; mode = Loops };
        { qual = [ "Throughput"; "run_batched" ]; mode = Loops };
        (* the flat-combining arena hot paths: submit (fast path and
           publish), the combiner's drain, and the stat recorders —
           every one must stay allocation-free or the arena taxes the
           very operations it batches *)
        { qual = [ "Combine"; "bump" ]; mode = Body };
        { qual = [ "Combine"; "bump_max" ]; mode = Body };
        { qual = [ "Combine"; "record_elimination" ]; mode = Body };
        { qual = [ "Combine"; "scan_mask" ]; mode = Body };
        { qual = [ "Combine"; "gather" ]; mode = Body };
        { qual = [ "Combine"; "clear_slots" ]; mode = Body };
        { qual = [ "Combine"; "popcount" ]; mode = Body };
        { qual = [ "Combine"; "apply_batch" ]; mode = Body };
        { qual = [ "Combine"; "wait_or_combine" ]; mode = Body };
        { qual = [ "Combine"; "submit" ]; mode = Body };
        (* the adaptive dispatcher's per-update path: the mode check,
           the tick, and the four structure fast paths — the epoch
           advance itself is the deliberately untargeted rare path
           (it folds stats records and may allocate) *)
        { qual = [ "Adaptive"; "Ctl"; "combining" ]; mode = Body };
        { qual = [ "Adaptive"; "Ctl"; "tick" ]; mode = Body };
        { qual = [ "Adaptive"; "Ctl"; "note_stale" ]; mode = Body };
        { qual = [ "Adaptive"; "Ctl"; "tick_many" ]; mode = Body };
        { qual = [ "Adaptive"; "Alg_a"; "read_max" ]; mode = Body };
        { qual = [ "Adaptive"; "Alg_a"; "write_max" ]; mode = Body };
        { qual = [ "Adaptive"; "Alg_a"; "combining_now" ]; mode = Body };
        { qual = [ "Adaptive"; "Alg_a"; "write_plain" ]; mode = Body };
        { qual = [ "Adaptive"; "Alg_a"; "write_combining" ]; mode = Body };
        { qual = [ "Adaptive"; "Alg_a"; "tick_many" ]; mode = Body };
        { qual = [ "Adaptive"; "Cas"; "read_max" ]; mode = Body };
        { qual = [ "Adaptive"; "Cas"; "write_max" ]; mode = Body };
        { qual = [ "Adaptive"; "Cas"; "combining_now" ]; mode = Body };
        { qual = [ "Adaptive"; "Cas"; "write_plain" ]; mode = Body };
        { qual = [ "Adaptive"; "Cas"; "write_combining" ]; mode = Body };
        { qual = [ "Adaptive"; "Cas"; "tick_many" ]; mode = Body };
        { qual = [ "Adaptive"; "Farray_c"; "read" ]; mode = Body };
        { qual = [ "Adaptive"; "Farray_c"; "increment" ]; mode = Body };
        { qual = [ "Adaptive"; "Farray_c"; "combining_now" ]; mode = Body };
        { qual = [ "Adaptive"; "Farray_c"; "increment_plain" ]; mode = Body };
        { qual = [ "Adaptive"; "Farray_c"; "increment_combining" ];
          mode = Body };
        { qual = [ "Adaptive"; "Farray_c"; "tick_many" ]; mode = Body };
        { qual = [ "Adaptive"; "Naive_c"; "read" ]; mode = Body };
        { qual = [ "Adaptive"; "Naive_c"; "increment" ]; mode = Body };
        { qual = [ "Adaptive"; "Naive_c"; "combining_now" ]; mode = Body };
        { qual = [ "Adaptive"; "Naive_c"; "increment_plain" ]; mode = Body };
        { qual = [ "Adaptive"; "Naive_c"; "increment_combining" ];
          mode = Body };
        { qual = [ "Adaptive"; "Naive_c"; "tick_many" ]; mode = Body } ];
    (* R4: every library module pins its public surface.  Allowlist:
       signature-only modules (nothing to hide) and executable entry
       modules living next to library code. *)
    r4_dirs = [ "lib"; "bench" ];
    r4_allow = [ "lib/smem/memory_intf.ml"; "bench/main.ml" ] }
