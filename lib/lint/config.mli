(** Lint configuration: which sources are in scope and the per-rule
    allowlists/targets.  {!default} encodes this repo's concurrency
    discipline; tests build their own values to point the rules at
    fixtures. *)

type allow =
  | Dir of string
      (** Source-path prefix ("lib/smem") or exact file
          ("lib/harness/throughput.ml"), repo-relative. *)
  | Module_path of string list
      (** Module-path prefix at submodule granularity:
          [["Cas_maxreg"; "Unboxed"]] allows the [Unboxed] submodule of
          compilation unit [Cas_maxreg] but not the rest of the file. *)

type r3_mode =
  | Body   (** the whole function body must not allocate *)
  | Loops  (** only while/for bodies within the function are checked *)

type r3_target = {
  qual : string list;
      (** qualified value name, unit-first: [["Throughput"; "run_alone"]],
          [["Algorithm_a"; "Unboxed"; "write_max"]] *)
  mode : r3_mode;
}

type t = {
  scope_dirs : string list;
      (** source dir prefixes linted by R1-R3 ("lib", "bin", "bench") *)
  r1_banned : string list;
      (** module roots whose direct use R1 confines ("Atomic", "Obj", ...) *)
  r1_allow : allow list;
  r2_dirs : string list;  (** dirs whose unbounded loops R2 audits *)
  r2_reads : string list;
      (** final identifier components counted as shared-memory reads *)
  r2_cas : string list;  (** ... and as CAS/RMW operations *)
  r3_targets : r3_target list;
  r4_dirs : string list;  (** dirs where every .ml needs an .mli *)
  r4_allow : string list;  (** exact repo-relative paths exempt from R4 *)
}

val default : t
(** The repo's discipline.  Widening an allowlist is a reviewed change
    here, not an edit at the violation site. *)
