(* Rule C1: the static step-complexity certifier.

   An abstract interpretation of the dune-produced typed trees in the
   paper's cost model: a *step* is one access to shared memory — a
   [read]/[write]/[cas] (or [get]/[set]/[compare_and_set]/...) through a
   MEMORY functor parameter, or a raw [Atomic] access in the allowlisted
   unboxed natives.  Everything else (local arithmetic, private arrays,
   allocation — [M.make]/[Atomic.make] are not steps) costs nothing,
   exactly as in the paper's complexity accounting.

   The analysis computes a per-function {!Summary.t} (reads/writes/cas,
   each a {!Summary.bound}) bottom-up over the call graph:

   - resolved calls add the callee's summary (interprocedural, via a
     global table keyed by display-qualified paths, iterated to a
     fixpoint across units so cross-library calls resolve);
   - branches join, sequences add, [for]-loops with literal or
     [Budgets.const_bounds] limits multiply by the trip count, other
     [for]-loops by O(n);
   - [while] loops and recursions are Unbounded unless the recursion
     carries a [Budgets.recursion] depth annotation AND its iteration
     re-reads shared state (the semantic R2 witness: without a re-read,
     no step of another process can bound the retries, so a depth
     annotation would certify a lie);
   - calls through a non-memory functor parameter are Unbounded (the
     cost belongs to the instantiation — e.g. Counter_of_snapshot over
     S);
   - calls into [Budgets.instrumentation_roots] cost nothing (the
     observability shards are outside the model);
   - unknown external calls cost nothing — sound *in this repo* because
     R1 confines raw atomics to the memory layer and the allowlisted
     natives, so code outside the analyzed units cannot touch shared
     memory — unless they receive a closure that does, which is
     Unbounded (the callee may invoke it any number of times).

   Each [Budgets.rows] entry is then checked: certified within budget,
   violation (error), allowed-Unbounded (the reviewed allowlist), or
   budget/certificate mismatch warnings. *)

open Typedtree

(* ------------------------------------------------------------------ *)
(* Path helpers (same normalization as rules.ml, kept local so the two
   analyses stay independently readable)                                *)

let rec path_components p acc =
  match p with
  | Path.Pident id -> Ident.name id :: acc
  | Path.Pdot (p, s) -> path_components p (s :: acc)
  | Path.Papply (p, _) -> path_components p acc
  | Path.Pextra_ty (p, _) -> path_components p acc

let normalize = function
  | "Stdlib" :: rest -> rest
  | head :: rest
    when String.length head > 8 && String.sub head 0 8 = "Stdlib__" ->
    String.sub head 8 (String.length head - 8) :: rest
  | comps -> comps

let components p =
  List.map Cmt_unit.display_name (normalize (path_components p []))

(* ------------------------------------------------------------------ *)
(* The memory primitives                                               *)

let read_fns = [ "read"; "get" ]
let write_fns = [ "write"; "set" ]

let cas_fns =
  [ "cas"; "compare_and_set"; "compare_exchange"; "exchange";
    "fetch_and_add"; "incr"; "decr" ]

(* Higher-order stdlib iteration: cost of the closure, O(n) times.      *)
let hof_roots = [ "Array"; "List" ]

let hof_fns =
  [ "map"; "mapi"; "map2"; "iter"; "iteri"; "iter2"; "init"; "fold_left";
    "fold_right"; "exists"; "for_all"; "filter"; "filter_map"; "concat_map";
    "find"; "find_opt"; "find_map" ]

(* ------------------------------------------------------------------ *)
(* Analysis state                                                      *)

type entry =
  | Known of Summary.t       (* per-call cost of a resolved local value *)
  | Rec_marker of bool ref   (* member of the let-rec group under
                                analysis; referencing it records that
                                the group really recurses *)

type env = (Ident.t * entry) list

type ctx = {
  budgets : Budgets.t;
  globals : (string list, Summary.t) Hashtbl.t;
  locs : (string list, string * int) Hashtbl.t;  (* op -> file, line *)
  changed : bool ref;            (* fixpoint progress flag *)
  source : string;               (* current unit's source path *)
  mods : string list;            (* display module path, outermost first *)
  fparams : string list;         (* functor parameters in scope *)
  aliases : (string * string list) list;
      (* local module name -> qualified target, e.g.
         F -> ["Farray"; "Make"] for [module F = Farray.Make (M)] *)
}

let bound_is_zero = function Summary.Const 0 -> true | _ -> false

(* Local module aliases can chain; rewrite the head until stable. *)
let rec dealias ~fuel aliases comps =
  match comps with
  | head :: rest when fuel > 0 -> (
    match List.assoc_opt head aliases with
    | Some target -> dealias ~fuel:(fuel - 1) aliases (target @ rest)
    | None -> comps)
  | _ -> comps

(* The path of an identifier as the budgets speak it: display-named,
   Stdlib-stripped, local module aliases resolved ([module A = Atomic]
   makes [A.get] a raw atomic access). *)
let resolved ctx p = dealias ~fuel:5 ctx.aliases (components p)

let lookup_global ctx comps =
  match Hashtbl.find_opt ctx.globals comps with
  | Some s -> Some s
  | None -> (
    (* a path reached through a wrapping alias module carries one extra
       leading component (Maxreg.Algorithm_a.Make.f vs the registration
       key Algorithm_a.Make.f) *)
    match comps with
    | _ :: (_ :: _ :: _ as tl) -> Hashtbl.find_opt ctx.globals tl
    | _ -> None)

(* One shared access through a memory functor parameter or raw Atomic;
   [Some Summary.zero] for their non-step operations (make, length, ...).
   [None] when the root is not a memory module at all. *)
let classify_memory ctx comps =
  match comps with
  | root :: (_ :: _ as rest)
    when List.mem root ctx.budgets.Budgets.memory_params
         || String.equal root "Atomic" ->
    let fn = List.nth rest (List.length rest - 1) in
    if List.mem fn read_fns then Some Summary.one_read
    else if List.mem fn write_fns then Some Summary.one_write
    else if List.mem fn cas_fns then Some Summary.one_cas
    else Some Summary.zero
  | _ -> None

let is_instrumentation ctx comps =
  match comps with
  | root :: _ -> List.mem root ctx.budgets.Budgets.instrumentation_roots
  | [] -> false

(* ------------------------------------------------------------------ *)
(* The evaluator                                                       *)

(* Per-call summary of an identifier used as a callable, if we can
   resolve it: local binding, memory primitive, instrumentation,
   interprocedural table, functor-parameter barrier. *)
let rec ident_call_summary ctx env p =
  let local =
    match p with
    | Path.Pident id -> (
      match
        List.find_opt (fun (id', _) -> Ident.same id id') env
      with
      | Some (_, Known s) -> Some s
      | Some (_, Rec_marker hit) ->
        hit := true;
        Some Summary.zero
      | None -> None)
    | _ -> None
  in
  match local with
  | Some _ -> local
  | None -> (
    let comps = resolved ctx p in
    match classify_memory ctx comps with
    | Some _ as s -> s
    | None ->
      if is_instrumentation ctx comps then Some Summary.zero
      else
        match lookup_global ctx comps with
        | Some _ as s -> s
        | None -> (
          match comps with
          | root :: _ :: _ when List.mem root ctx.fparams ->
            Some
              (Summary.unbounded
                 (Printf.sprintf "call through functor parameter %s" root))
          | _ -> None))

(* Per-call summary of an expression in argument position, when it is a
   function value we can see through. *)
and arg_callable_summary ctx env e =
  if Compat.is_function e then
    Some (closure_summary ctx env e)
  else
    match e.exp_desc with
    | Texp_ident (p, _, _) -> ident_call_summary ctx env p
    | _ -> None

(* Cost of one *full* application: strip the entire curried chain.
   Case bodies are alternatives of one call (join); a [let] between two
   [fun]s is the optional-argument default desugaring ([fun ?(x = d) ->
   let x = match ... in fun y -> ...]) and must not hide the inner
   chain, so descend through it with the bindings in scope. *)
and closure_summary ctx env e =
  if Compat.is_function e then
    match Compat.function_bodies e [] with
    | [] -> Summary.zero
    | b :: bs ->
      List.fold_left
        (fun acc b -> Summary.alt acc (closure_summary ctx env b))
        (closure_summary ctx env b) bs
  else
    match e.exp_desc with
    | Texp_let (rf, vbs, body) ->
      let env', site_cost, _ = bind_group ctx env rf vbs in
      Summary.sum site_cost (closure_summary ctx env' body)
    | _ -> eval ctx env e

and eval ctx env e =
  match e.exp_desc with
  | Texp_ident _ | Texp_constant _ | Texp_instvar _ | Texp_unreachable ->
    Summary.zero
  | Texp_function _ ->
    (* building the closure is allocation, not a step; the body is
       charged where the closure is applied *)
    Summary.zero
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
    eval_apply ctx env p args
  | Texp_apply (f, args) ->
    (* unknown function value: charge the operands; a memory-touching
       closure operand could run any number of times *)
    Summary.sum (eval ctx env f) (eval_args ctx env ~callee:"<expr>" args)
  | Texp_let (rf, vbs, body) ->
    let env', site_cost, _ = bind_group ctx env rf vbs in
    Summary.sum site_cost (eval ctx env' body)
  | Texp_sequence (a, b) -> Summary.sum (eval ctx env a) (eval ctx env b)
  | Texp_ifthenelse (c, t, eo) ->
    let arms =
      Summary.alt (eval ctx env t)
        (match eo with Some e -> eval ctx env e | None -> Summary.zero)
    in
    Summary.sum (eval ctx env c) arms
  | Texp_match (scrut, cases, _) ->
    Summary.sum (eval ctx env scrut) (eval_cases ctx env cases)
  | Texp_try (b, cases) ->
    Summary.sum (eval ctx env b) (eval_cases ctx env cases)
  | Texp_while (cond, body) ->
    let per_iter = Summary.sum (eval ctx env cond) (eval ctx env body) in
    if Summary.is_zero per_iter then Summary.zero
    else Summary.unbounded "while loop with shared accesses has no static trip bound"
  | Texp_for (_, _, lo, hi, _, body) ->
    let trips = for_trips ctx lo hi in
    Summary.sum
      (Summary.sum (eval ctx env lo) (eval ctx env hi))
      (Summary.repeat ~trips (eval ctx env body))
  | _ -> eval_children ctx env e

(* Trip count of [for i = lo to/downto hi]: exact for literal bounds,
   [Budgets.const_bounds] identifiers count as their declared constant,
   anything else is O(n) trips. *)
and for_trips ctx lo hi =
  let const_of e =
    match e.exp_desc with
    | Texp_constant (Asttypes.Const_int k) -> Some k
    | Texp_ident (p, _, _) -> (
      match List.rev (components p) with
      | last :: _ ->
        List.assoc_opt last ctx.budgets.Budgets.const_bounds
      | [] -> None)
    | _ -> None
  in
  match const_of lo, const_of hi with
  | Some a, Some b -> Summary.Const (max 0 (abs (b - a) + 1))
  | _ -> Summary.Linear

and eval_cases : 'k. ctx -> env -> 'k case list -> Summary.t =
  fun ctx env cases ->
  (* guards may all run before a branch is taken: add them; the selected
     right-hand sides are alternatives: join them *)
  List.fold_left
    (fun acc c ->
      let guard =
        match c.c_guard with Some g -> eval ctx env g | None -> Summary.zero
      in
      Summary.sum guard (Summary.alt acc (eval ctx env c.c_rhs)))
    Summary.zero cases

and eval_apply ctx env p args =
  let comps = resolved ctx p in
  if is_instrumentation ctx comps then
    (* excluded from the model; operands are still real code *)
    eval_plain_args ctx env args
  else
    match classify_memory ctx comps with
    | Some prim -> Summary.sum prim (eval_plain_args ctx env args)
    | None -> (
      match comps with
      | [ root; fn ] when List.mem root hof_roots && List.mem fn hof_fns ->
        (* stdlib iteration: operands once, the closure O(n) times *)
        let closure, operands =
          List.fold_left
            (fun (cl, ops) (_, argo) ->
              match argo with
              | None -> (cl, ops)
              | Some a -> (
                match arg_callable_summary ctx env a with
                | Some s -> (Summary.alt cl s, ops)
                | None -> (cl, Summary.sum ops (eval ctx env a))))
            (Summary.zero, Summary.zero)
            args
        in
        Summary.sum operands
          (Summary.repeat ~trips:Summary.Linear closure)
      | _ -> (
        match ident_call_summary ctx env p with
        | Some callee ->
          Summary.sum callee (eval_plain_args ctx env args)
        | None ->
          eval_args ctx env ~callee:(String.concat "." comps) args))

(* Operand cost of a call whose callee is understood. *)
and eval_plain_args ctx env args =
  List.fold_left
    (fun acc (_, argo) ->
      match argo with
      | Some a -> Summary.sum acc (eval ctx env a)
      | None -> acc)
    Summary.zero args

(* Operand cost of a call into unknown code: by the R1 containment
   argument the callee itself performs no steps, but a closure operand
   that does is out of our hands. *)
and eval_args ctx env ~callee args =
  List.fold_left
    (fun acc (_, argo) ->
      match argo with
      | None -> acc
      | Some a ->
        if Compat.is_function a then
          let s = closure_summary ctx env a in
          if Summary.is_zero s then acc
          else
            Summary.sum acc
              (Summary.unbounded
                 (Printf.sprintf
                    "closure with shared accesses passed to unknown %s"
                    callee))
        else Summary.sum acc (eval ctx env a))
    Summary.zero args

(* Fallback: sum the costs of the immediate sub-expressions (sound for
   every remaining form — tuples, records, constructors, field access,
   array literals, assertions...).  The default iterator enumerates the
   children; our override evaluates each child properly instead of
   descending blindly. *)
and eval_children ctx env e =
  let acc = ref Summary.zero in
  let dflt = Tast_iterator.default_iterator in
  let iter =
    { dflt with
      expr = (fun _self child -> acc := Summary.sum !acc (eval ctx env child));
      (* stay inside the expression language *)
      module_expr = (fun _ _ -> ());
      structure_item = (fun _ _ -> ()) }
  in
  dflt.expr iter e;
  !acc

(* Per-reference summary of a let-bound value: a function's per-call
   cost, an alias's resolved cost, zero for computed data (referencing
   an already-computed value is not a step). *)
and binding_ref_summary ctx env vb_expr =
  if Compat.is_function vb_expr then closure_summary ctx env vb_expr
  else
    match vb_expr.exp_desc with
    | Texp_ident (p, _, _) -> (
      match ident_call_summary ctx env p with
      | Some s -> s
      | None -> Summary.zero)
    | _ -> Summary.zero

(* Process one [let]/[let rec] group.  Returns the extended environment,
   the cost charged at the binding site (right-hand sides that run now),
   and the per-binding summaries for global registration. *)
and bind_group ctx env rf vbs =
  match rf with
  | Asttypes.Nonrecursive ->
    let site_cost = ref Summary.zero in
    let bindings =
      List.map
        (fun vb ->
          let s = binding_ref_summary ctx env vb.vb_expr in
          if not (Compat.is_function vb.vb_expr) then
            site_cost := Summary.sum !site_cost (eval ctx env vb.vb_expr);
          (Compat.pat_var_ident vb.vb_pat, s, vb.vb_loc))
        vbs
    in
    let env' =
      List.fold_left
        (fun env (ido, s, _) ->
          match ido with Some id -> (id, Known s) :: env | None -> env)
        env bindings
    in
    (env', !site_cost, bindings)
  | Asttypes.Recursive ->
    let hit = ref false in
    let ids = List.filter_map (fun vb -> Compat.pat_var_ident vb.vb_pat) vbs in
    let env_rec =
      List.fold_left (fun env id -> (id, Rec_marker hit) :: env) env ids
    in
    let bindings =
      List.map
        (fun vb ->
          hit := false;
          let per_iter = binding_ref_summary ctx env_rec vb.vb_expr in
          let recursed = !hit in
          let name =
            match Compat.pat_var_ident vb.vb_pat with
            | Some id -> Ident.name id
            | None -> "_"
          in
          let s =
            if not recursed then per_iter
            else
              match
                List.assoc_opt (ctx.mods @ [ name ])
                  ctx.budgets.Budgets.recursion
              with
              | Some trips ->
                if
                  bound_is_zero per_iter.Summary.reads
                  && bound_is_zero per_iter.Summary.cas
                then
                  Summary.unbounded
                    (Printf.sprintf
                       "recursion [%s] is depth-annotated but never \
                        re-reads shared state (no progress witness)"
                       name)
                else Summary.repeat ~trips per_iter
              | None ->
                if Summary.is_zero per_iter then per_iter
                else
                  Summary.unbounded
                    (Printf.sprintf
                       "recursion [%s] has no depth annotation in \
                        Lint.Budgets.recursion"
                       name)
          in
          (Compat.pat_var_ident vb.vb_pat, s, vb.vb_loc))
        vbs
    in
    let env' =
      List.fold_left
        (fun env (ido, s, _) ->
          match ido with Some id -> (id, Known s) :: env | None -> env)
        env bindings
    in
    (env', Summary.zero, bindings)

(* ------------------------------------------------------------------ *)
(* Structure walk: thread module path, functor parameters, aliases     *)

let register ctx key s loc =
  (match Hashtbl.find_opt ctx.globals key with
   | Some old when old = s -> ()
   | _ ->
     ctx.changed := true;
     Hashtbl.replace ctx.globals key s);
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  Hashtbl.replace ctx.locs key (ctx.source, line)

let rec walk_module ctx env me =
  match me.mod_desc with
  | Tmod_structure str -> walk_items ctx env str.str_items
  | Tmod_functor (param, body) ->
    let ctx =
      match param with
      | Named (Some id, _, _) ->
        { ctx with fparams = Ident.name id :: ctx.fparams }
      | _ -> ctx
    in
    walk_module ctx env body
  | Tmod_constraint (me, _, _, _) -> walk_module ctx env me
  | _ -> ()

and walk_items ctx env = function
  | [] -> ()
  | item :: rest ->
    let ctx, env =
      match item.str_desc with
      | Tstr_value (rf, vbs) ->
        let env', _site_cost, bindings = bind_group ctx env rf vbs in
        List.iter
          (fun (ido, s, loc) ->
            match ido with
            | Some id -> register ctx (ctx.mods @ [ Ident.name id ]) s loc
            | None -> ())
          bindings;
        (ctx, env')
      | Tstr_module mb -> (walk_binding ctx env mb, env)
      | Tstr_recmodule mbs ->
        (List.fold_left (fun ctx mb -> walk_binding ctx env mb) ctx mbs, env)
      | Tstr_include incl ->
        (* include of an inline structure contributes to this module *)
        walk_module ctx env incl.incl_mod;
        (ctx, env)
      | _ -> (ctx, env)
    in
    walk_items ctx env rest

and walk_binding ctx env mb =
  let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
  let rec shape me =
    match me.mod_desc with
    | Tmod_constraint (me, _, _, _) -> shape me
    | Tmod_ident (p, _) -> `Alias (components p)
    | Tmod_apply (f, _, _) -> (
      (* [module F = Farray.Make (M)]: calls through F resolve to the
         functor body's summaries, which are abstract in M *)
      match shape f with `Alias c -> `Alias c | _ -> `Opaque)
    | Tmod_structure _ | Tmod_functor _ -> `Descend
    | _ -> `Opaque
  in
  match shape mb.mb_expr with
  | `Alias target ->
    { ctx with aliases = (name, dealias ~fuel:5 ctx.aliases target)
                         :: ctx.aliases }
  | `Descend ->
    walk_module { ctx with mods = ctx.mods @ [ name ] } env mb.mb_expr;
    ctx
  | `Opaque -> ctx

(* ------------------------------------------------------------------ *)
(* Fixpoint over units and budget checking                             *)

let max_passes = 10

let compute ~budgets (units : Cmt_unit.t list) =
  let globals = Hashtbl.create 256 in
  let locs = Hashtbl.create 256 in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < max_passes do
    changed := false;
    incr passes;
    List.iter
      (fun (u : Cmt_unit.t) ->
        let ctx =
          { budgets; globals; locs; changed;
            source = u.source;
            mods = [ u.modname ];
            fparams = [];
            aliases = [] }
        in
        walk_items ctx [] u.structure.str_items)
      units
  done;
  (globals, locs)

type status =
  | Certified          (* within budget, same asymptotic class *)
  | Improvable         (* certified strictly below the budget class *)
  | Allowed_unbounded  (* Unbounded, with a reviewed Unbounded budget *)
  | Tightenable        (* bounded, but the budget still says Unbounded *)
  | Violation          (* certificate exceeds the budget *)
  | Missing            (* budgeted operation not found *)

let status_name = function
  | Certified -> "certified"
  | Improvable -> "improvable"
  | Allowed_unbounded -> "allowed-unbounded"
  | Tightenable -> "tightenable"
  | Violation -> "violation"
  | Missing -> "missing"

type op_report = {
  op : string list;
  file : string;             (* "" when the operation was not found *)
  line : int;
  summary : Summary.t option;
  budget : Summary.bound;
  reason : string;
  status : status;
}

type report = {
  ops : op_report list;
  diagnostics : Diagnostic.t list;
}

let check ~budgets globals locs =
  let diags = ref [] in
  let ops =
    List.map
      (fun (row : Budgets.row) ->
        let qual = String.concat "." row.op in
        match Hashtbl.find_opt globals row.op with
        | None ->
          diags :=
            Diagnostic.at ~rule:"C1" ~file:"lib/lint/budgets.ml" ~line:1
              ~col:1
              (Printf.sprintf
                 "budgeted operation %s was not found in any scanned unit"
                 qual)
            :: !diags;
          { op = row.op; file = ""; line = 0; summary = None;
            budget = row.budget; reason = row.reason; status = Missing }
        | Some s ->
          let file, line =
            match Hashtbl.find_opt locs row.op with
            | Some (f, l) -> (f, l)
            | None -> ("", 0)
          in
          let total = Summary.total s in
          let status =
            match row.budget, total with
            | Summary.Unbounded _, Summary.Unbounded _ -> Allowed_unbounded
            | Summary.Unbounded _, _ -> Tightenable
            | _, _ when Summary.le total row.budget ->
              if Summary.rank total < Summary.rank row.budget then Improvable
              else Certified
            | _, _ -> Violation
          in
          (match status with
           | Violation ->
             diags :=
               Diagnostic.at ~rule:"C1" ~file ~line ~col:1
                 (Printf.sprintf
                    "%s: certified cost %s exceeds its budget %s [%s] \
                     (breakdown: %s)"
                    qual
                    (Summary.bound_to_string total)
                    (Summary.bound_to_string row.budget)
                    row.reason (Summary.to_string s))
               :: !diags
           | Tightenable ->
             diags :=
               Diagnostic.at ~severity:Diagnostic.Warn ~rule:"C1" ~file
                 ~line ~col:1
                 (Printf.sprintf
                    "%s: certified %s but budgeted Unbounded — tighten \
                     the budget in Lint.Budgets"
                    qual
                    (Summary.bound_to_string total))
               :: !diags
           | Improvable ->
             diags :=
               Diagnostic.at ~severity:Diagnostic.Warn ~rule:"C1" ~file
                 ~line ~col:1
                 (Printf.sprintf
                    "%s: certified %s, strictly below its budget %s — \
                     tighten the budget in Lint.Budgets"
                    qual
                    (Summary.bound_to_string total)
                    (Summary.bound_to_string row.budget))
               :: !diags
           | Certified | Allowed_unbounded | Missing -> ());
          { op = row.op; file; line; summary = Some s;
            budget = row.budget; reason = row.reason; status })
      budgets.Budgets.rows
  in
  { ops; diagnostics = List.sort_uniq Diagnostic.compare !diags }

let analyze ~budgets units =
  let globals, locs = compute ~budgets units in
  check ~budgets globals locs

let summaries ~budgets units =
  let globals, _ = compute ~budgets units in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) globals []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let op_to_json (o : op_report) =
  let open Obs.Json_out in
  Obj
    ([ ("op", Str (String.concat "." o.op));
       ("file", Str o.file);
       ("line", Int o.line) ]
     @ (match o.summary with
        | None -> [ ("summary", Null) ]
        | Some s -> [ ("summary", Summary.to_json s);
                      ("total", Summary.bound_to_json (Summary.total s)) ])
     @ [ ("budget", Summary.bound_to_json o.budget);
         ("status", Str (status_name o.status));
         ("reason", Str o.reason) ])

let to_json ~units_scanned r =
  let open Obs.Json_out in
  let errors =
    List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error)
      r.diagnostics
  in
  Obj
    [ ("schema", Str "lint-cost/v1");
      ("units_scanned", Int units_scanned);
      ("ops", List (List.map op_to_json r.ops));
      ("violations", Int (List.length errors));
      ("warnings",
       Int (List.length r.diagnostics - List.length errors));
      ("diagnostics", List (List.map Diagnostic.to_json r.diagnostics)) ]

let to_human ~units_scanned r =
  let b = Buffer.create 1024 in
  List.iter
    (fun d ->
      Buffer.add_string b (Diagnostic.to_human d);
      Buffer.add_char b '\n')
    r.diagnostics;
  List.iter
    (fun o ->
      Buffer.add_string b
        (Printf.sprintf "cost: %-40s %-14s budget %-14s %s\n"
           (String.concat "." o.op)
           (match o.summary with
            | Some s -> Summary.bound_to_string (Summary.total s)
            | None -> "?")
           (Summary.bound_to_string o.budget)
           (status_name o.status)))
    r.ops;
  let bad =
    List.length
      (List.filter
         (fun o -> o.status = Violation || o.status = Missing)
         r.ops)
  in
  Buffer.add_string b
    (Printf.sprintf
       "cost: %d unit(s) scanned, %d operation(s) budgeted, %d problem(s)\n"
       units_scanned (List.length r.ops) bad);
  Buffer.contents b

let to_costs_md r =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "# COSTS — certified per-operation shared-access bounds\n\n\
     Generated by `dune exec bin/lint.exe -- --cost --costs-md COSTS.md` \
     (rule C1).\n\
     A step is one shared-memory access (MEMORY read/write/CAS or an \
     allowlisted raw atomic); allocation and private state are free, as \
     in the paper's model.  CI diffs this file: a class regression \
     fails the build.\n\n\
     | operation | reads | writes | cas | total | budget | status |\n\
     |---|---|---|---|---|---|---|\n";
  List.iter
    (fun o ->
      let cell f =
        match o.summary with
        | Some s -> Summary.bound_to_string (f s)
        | None -> "?"
      in
      Buffer.add_string b
        (Printf.sprintf "| `%s` | %s | %s | %s | %s | %s | %s |\n"
           (String.concat "." o.op)
           (cell (fun s -> s.Summary.reads))
           (cell (fun s -> s.Summary.writes))
           (cell (fun s -> s.Summary.cas))
           (cell (fun s -> Summary.total s))
           (Summary.bound_to_string o.budget)
           (status_name o.status)))
    r.ops;
  Buffer.add_string b
    "\nUnbounded budgets are the reviewed allowlist (deliberately \
     non-wait-free baselines); their reasons live in \
     `lib/lint/budgets.ml`.\n";
  (* The dial family's per-point refinement.  The static rows above
     certify the worst case over the dial (read Linear, update Log);
     the table below is Theorem 1's frontier point by point, generated
     from Budgets.dial_read_budget/dial_update_budget and enforced
     dynamically by the test_cost differential. *)
  Buffer.add_string b
    "\n## Dial family (Theorem 1's frontier, per dial point)\n\n\
     `Dial_counter`/`Dial_maxreg` group the N leaves into f blocks of \
     ceil(N/f); read collects the f block roots, an update propagates \
     only inside its own block.  Per-dial budgets (f values shown at \
     N = 64):\n\n\
     | dial | f(N) | f @ N=64 | read / read_max | increment / write_max \
     |\n|---|---|---|---|---|\n";
  let n = 64 in
  let rec lg d v = if v >= n then d else lg (d + 1) (2 * v) in
  let rec isqrt k = if k * k >= n then k else isqrt (k + 1) in
  List.iter
    (fun (dial, fsym, f) ->
      Buffer.add_string b
        (Printf.sprintf "| `%s` | %s | %d | %s | %s |\n" dial fsym f
           (Summary.bound_to_string (Budgets.dial_read_budget ~f ~n))
           (Summary.bound_to_string (Budgets.dial_update_budget ~f ~n))))
    [ ("f1", "1", 1);
      ("flog", "ceil(log2 N)", lg 0 1);
      ("fsqrt", "ceil(sqrt N)", isqrt 0);
      ("fn", "N", n) ];
  Buffer.add_string b
    "\nThe `f1` point coincides with `Farray_counter` (read O(1), \
     update O(log N)) and `fn` with `Naive_counter` (read O(N), update \
     O(1)); `flog` and `fsqrt` are the interior points the dial \
     exists to exercise.  The dynamic differential (test/test_cost.ml) \
     measures every point against these envelopes.\n";
  Buffer.contents b
