(** Rule C1: the static step-complexity certifier.

    Computes a per-function {!Summary.t} (shared reads / writes / CAS,
    each a {!Summary.bound}) for every binding in the scanned units by
    abstract interpretation over the typed trees — interprocedural via a
    fixpoint over a global summary table — and checks each operation
    declared in {!Budgets.rows} against its budget.  See cost.ml for
    the cost model and the soundness argument. *)

type status =
  | Certified          (** within budget, same asymptotic class *)
  | Improvable         (** certified strictly below the budget class *)
  | Allowed_unbounded  (** Unbounded, with a reviewed Unbounded budget *)
  | Tightenable        (** bounded, but the budget still says Unbounded *)
  | Violation          (** certificate exceeds the budget *)
  | Missing            (** budgeted operation not found *)

val status_name : status -> string

type op_report = {
  op : string list;            (** qualified display path *)
  file : string;               (** "" when the operation was not found *)
  line : int;
  summary : Summary.t option;  (** the certificate; [None] iff missing *)
  budget : Summary.bound;
  reason : string;
  status : status;
}

type report = {
  ops : op_report list;           (** one per {!Budgets.rows} entry *)
  diagnostics : Diagnostic.t list;
      (** violations and missing ops as errors; budget/certificate
          mismatches as warnings *)
}

val analyze : budgets:Budgets.t -> Cmt_unit.t list -> report

val summaries :
  budgets:Budgets.t -> Cmt_unit.t list -> (string list * Summary.t) list
(** Every computed summary, sorted by path — for tests and debugging. *)

val to_json : units_scanned:int -> report -> Obs.Json_out.t
(** Schema ["lint-cost/v1"]. *)

val to_human : units_scanned:int -> report -> string

val to_costs_md : report -> string
(** The committed COSTS.md: one markdown table row per budgeted op. *)
