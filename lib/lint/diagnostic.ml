type severity = Error | Warn

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

(* Columns are 1-based in both renderings, matching what editors expect
   of a file:line:col jump target (emacs/vim/vscode treat the first
   character of a line as column 1). *)
let v ?(severity = Error) ~rule ~loc message =
  let p = loc.Location.loc_start in
  { rule;
    severity;
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol + 1;
    message }

let at ?(severity = Error) ~rule ~file ~line ~col message =
  { rule; severity; file; line; col; message }

(* file, then position, then rule: output reads like compiler errors,
   grouped by file.  [compare] is also the dedup key (R3's loop scan can
   visit a nested loop's body twice). *)
let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let severity_name = function Error -> "error" | Warn -> "warn"

let to_human d =
  match d.severity with
  | Error ->
    Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message
  | Warn ->
    Printf.sprintf "%s:%d:%d: [%s] warning: %s" d.file d.line d.col d.rule
      d.message

let to_json d =
  Obs.Json_out.Obj
    [ ("rule", Obs.Json_out.Str d.rule);
      ("severity", Obs.Json_out.Str (severity_name d.severity));
      ("file", Obs.Json_out.Str d.file);
      ("line", Obs.Json_out.Int d.line);
      ("col", Obs.Json_out.Int d.col);
      ("message", Obs.Json_out.Str d.message) ]
