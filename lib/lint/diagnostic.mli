(** A lint finding: rule id, severity, source span, message.  Rendered
    either compiler-style ([file:line:col: [R1] message], clickable in
    editors and CI logs) or as a JSON object for machine consumers. *)

type severity =
  | Error  (** flips the exit code *)
  | Warn   (** reported, but never fails the run *)

type t = {
  rule : string;
  severity : severity;
  file : string;  (** repo-relative source path *)
  line : int;     (** 1-based *)
  col : int;      (** 1-based, consistent across human and JSON output
                      (editor jump-to-location convention) *)
  message : string;
}

val v : ?severity:severity -> rule:string -> loc:Location.t -> string -> t
(** Diagnostic at the start of a typedtree location.  Severity defaults
    to [Error]. *)

val at :
  ?severity:severity ->
  rule:string -> file:string -> line:int -> col:int -> string -> t

val compare : t -> t -> int
(** Orders by file, position, rule, message — the output order and the
    dedup key. *)

val severity_name : severity -> string
val to_human : t -> string
val to_json : t -> Obs.Json_out.t
