(** A lint finding: rule id, source span, message.  Rendered either
    compiler-style ([file:line:col: [R1] message], clickable in editors
    and CI logs) or as a JSON object for machine consumers. *)

type t = {
  rule : string;
  file : string;  (** repo-relative source path *)
  line : int;     (** 1-based *)
  col : int;      (** 0-based, as compilers print it *)
  message : string;
}

val v : rule:string -> loc:Location.t -> string -> t
(** Diagnostic at the start of a typedtree location. *)

val at : rule:string -> file:string -> line:int -> col:int -> string -> t

val compare : t -> t -> int
(** Orders by file, position, rule, message — the output order and the
    dedup key. *)

val to_human : t -> string
val to_json : t -> Obs.Json_out.t
