type report = {
  diagnostics : Diagnostic.t list;
  units_scanned : int;
}

let all_rules = [ "R1"; "R2"; "R3"; "R4" ]

let in_scope (config : Config.t) source =
  List.exists
    (fun d ->
      String.equal source d
      || (String.length source > String.length d
          && String.sub source 0 (String.length d) = d
          && source.[String.length d] = '/'))
    config.scope_dirs

let run ?(config = Config.default) ?(rules = all_rules) ~build_dir ~root () =
  let units =
    Cmt_unit.scan ~build_dir
    |> List.filter (fun (u : Cmt_unit.t) ->
           in_scope config u.source
           (* a cmt can outlive its source (file deleted or renamed
              without a clean); lint the tree as it is now *)
           && Sys.file_exists (Filename.concat root u.source))
  in
  let want r = List.mem r rules in
  let diags = ref [] in
  List.iter
    (fun u ->
      if want "R1" then diags := Rules.r1 ~config u @ !diags;
      if want "R2" then diags := Rules.r2 ~config u @ !diags;
      if want "R3" then diags := Rules.r3 ~config u @ !diags)
    units;
  if want "R4" then diags := Rules.r4 ~config ~root () @ !diags;
  { diagnostics = List.sort_uniq Diagnostic.compare !diags;
    units_scanned = List.length units }

let to_json { diagnostics; units_scanned } =
  Obs.Json_out.Obj
    [ ("schema", Obs.Json_out.Str "lint/v1");
      ("units_scanned", Obs.Json_out.Int units_scanned);
      ("violations", Obs.Json_out.Int (List.length diagnostics));
      ("diagnostics",
       Obs.Json_out.List (List.map Diagnostic.to_json diagnostics)) ]

let to_human { diagnostics; units_scanned } =
  let b = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string b (Diagnostic.to_human d);
      Buffer.add_char b '\n')
    diagnostics;
  Buffer.add_string b
    (Printf.sprintf "lint: %d unit(s) scanned, %d violation(s)\n"
       units_scanned (List.length diagnostics));
  Buffer.contents b
