type report = {
  diagnostics : Diagnostic.t list;
  units_scanned : int;
  cost : Cost.report option;
}

let all_rules = [ "R1"; "R2"; "R3"; "R4"; "C1" ]

let rule_descriptions =
  [ ("R1",
     "atomics containment: raw Atomic/Obj/Domain only in the memory \
      layer and allowlisted Unboxed submodules");
    ("R2",
     "progress witness: unbounded loops / CAS retries in the algorithm \
      libs must re-read shared memory");
    ("R3",
     "hot-path allocation: the zero-allocation natives stay \
      allocation-free, syntactically");
    ("R4", "interface hygiene: every lib module has an .mli");
    ("C1",
     "step-complexity certification: every budgeted operation's \
      certified shared-access bound stays within lib/lint/budgets.ml") ]

let in_scope (config : Config.t) source =
  List.exists
    (fun d ->
      String.equal source d
      || (String.length source > String.length d
          && String.sub source 0 (String.length d) = d
          && source.[String.length d] = '/'))
    config.scope_dirs

let run ?(config = Config.default) ?(budgets = Budgets.default)
    ?(rules = all_rules) ~build_dir ~root () =
  let units =
    Cmt_unit.scan ~build_dir
    |> List.filter (fun (u : Cmt_unit.t) ->
           in_scope config u.source
           (* a cmt can outlive its source (file deleted or renamed
              without a clean); lint the tree as it is now *)
           && Sys.file_exists (Filename.concat root u.source))
  in
  let want r = List.mem r rules in
  let diags = ref [] in
  List.iter
    (fun u ->
      if want "R1" then diags := Rules.r1 ~config u @ !diags;
      if want "R2" then diags := Rules.r2 ~config u @ !diags;
      if want "R3" then diags := Rules.r3 ~config u @ !diags)
    units;
  if want "R4" then diags := Rules.r4 ~config ~root () @ !diags;
  let cost =
    if want "C1" then begin
      let r = Cost.analyze ~budgets units in
      diags := r.Cost.diagnostics @ !diags;
      Some r
    end
    else None
  in
  { diagnostics = List.sort_uniq Diagnostic.compare !diags;
    units_scanned = List.length units;
    cost }

let errors r =
  List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error)
    r.diagnostics

let has_errors r = errors r <> []

let to_json r =
  let errs = List.length (errors r) in
  Obs.Json_out.Obj
    [ ("schema", Obs.Json_out.Str "lint/v1");
      ("units_scanned", Obs.Json_out.Int r.units_scanned);
      ("violations", Obs.Json_out.Int errs);
      ("warnings",
       Obs.Json_out.Int (List.length r.diagnostics - errs));
      ("diagnostics",
       Obs.Json_out.List (List.map Diagnostic.to_json r.diagnostics)) ]

let to_human r =
  let b = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string b (Diagnostic.to_human d);
      Buffer.add_char b '\n')
    r.diagnostics;
  let errs = List.length (errors r) in
  Buffer.add_string b
    (Printf.sprintf
       "lint: %d unit(s) scanned, %d violation(s), %d warning(s)\n"
       r.units_scanned errs
       (List.length r.diagnostics - errs));
  Buffer.contents b
