(** Orchestration: scan a dune build dir for [.cmt]s, filter to
    in-scope sources that still exist, run the requested rules, and
    render the report. *)

type report = {
  diagnostics : Diagnostic.t list;  (** sorted, deduplicated *)
  units_scanned : int;
}

val all_rules : string list
(** [["R1"; "R2"; "R3"; "R4"]] *)

val run :
  ?config:Config.t ->
  ?rules:string list ->
  build_dir:string ->
  root:string ->
  unit ->
  report
(** [run ~build_dir ~root ()] lints the tree rooted at [root] using the
    [.cmt]s under [build_dir] (typically [_build/default]).  [config]
    defaults to {!Config.default}; [rules] to {!all_rules}.  Unknown
    rule names are ignored. *)

val to_json : report -> Obs.Json_out.t
(** Schema ["lint/v1"]. *)

val to_human : report -> string
(** Compiler-style [file:line:col: [rule] message] lines plus a summary
    line. *)
