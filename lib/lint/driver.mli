(** Orchestration: scan a dune build dir for [.cmt]s, filter to
    in-scope sources that still exist, run the requested rules, and
    render the report. *)

type report = {
  diagnostics : Diagnostic.t list;  (** sorted, deduplicated *)
  units_scanned : int;
  cost : Cost.report option;        (** present when C1 ran *)
}

val all_rules : string list
(** [["R1"; "R2"; "R3"; "R4"; "C1"]] *)

val rule_descriptions : (string * string) list
(** One line per rule, in [all_rules] order — the [--list-rules]
    output. *)

val run :
  ?config:Config.t ->
  ?budgets:Budgets.t ->
  ?rules:string list ->
  build_dir:string ->
  root:string ->
  unit ->
  report
(** [run ~build_dir ~root ()] lints the tree rooted at [root] using the
    [.cmt]s under [build_dir] (typically [_build/default]).  [config]
    defaults to {!Config.default}, [budgets] to {!Budgets.default},
    [rules] to {!all_rules}.  Unknown rule names are ignored. *)

val errors : report -> Diagnostic.t list
(** The [Error]-severity diagnostics: what fails the run. *)

val has_errors : report -> bool

val to_json : report -> Obs.Json_out.t
(** Schema ["lint/v1"]; [violations] counts errors only. *)

val to_human : report -> string
(** Compiler-style [file:line:col: [rule] message] lines plus a summary
    line. *)
