open Typedtree

(* ------------------------------------------------------------------ *)
(* Path helpers                                                        *)

let rec path_components p acc =
  match p with
  | Path.Pident id -> Ident.name id :: acc
  | Path.Pdot (p, s) -> path_components p (s :: acc)
  | Path.Papply (p, _) -> path_components p acc
  | Path.Pextra_ty (p, _) -> path_components p acc

(* [Atomic.get] resolves to Stdlib.Atomic.get (or Stdlib__Atomic.get,
   depending on how the alias was reached); both normalize to root
   "Atomic" so the config speaks in source-level names. *)
let normalize = function
  | "Stdlib" :: rest -> rest
  | head :: rest
    when String.length head > 8 && String.sub head 0 8 = "Stdlib__" ->
    String.sub head 8 (String.length head - 8) :: rest
  | comps -> comps

let components p = normalize (path_components p [])

let last_component comps =
  match List.rev comps with [] -> "" | last :: _ -> last

let rec is_prefix pre l =
  match pre, l with
  | [], _ -> true
  | _, [] -> false
  | p :: pre, x :: l -> String.equal p x && is_prefix pre l

let under_dir dir source =
  String.equal source dir
  || (String.length source > String.length dir
      && String.sub source 0 (String.length dir) = dir
      && source.[String.length dir] = '/')

(* ------------------------------------------------------------------ *)
(* Shared iteration machinery: walk a structure keeping the display
   module path ("Cas_maxreg" :: "Unboxed" :: ...) current, calling
   [on_expr]/[on_vb]/[on_vbs]/[on_mexpr] at each node. *)

let walk_structure ~modname ?on_expr ?on_typ ?on_vb ?on_vbs ?on_mexpr str =
  let dflt = Tast_iterator.default_iterator in
  (* innermost first; callers see outermost first *)
  let stack = ref [ modname ] in
  let current () = List.rev !stack in
  let call f x = match f with None -> () | Some f -> f ~mods:(current ()) x in
  let iter =
    { dflt with
      module_binding =
        (fun self mb ->
          let name =
            match mb.mb_name.txt with Some n -> n | None -> "_"
          in
          stack := name :: !stack;
          dflt.module_binding self mb;
          stack := List.tl !stack);
      expr =
        (fun self e ->
          call on_expr e;
          dflt.expr self e);
      typ =
        (fun self t ->
          call on_typ t;
          dflt.typ self t);
      module_expr =
        (fun self me ->
          call on_mexpr me;
          dflt.module_expr self me);
      value_binding =
        (fun self vb ->
          call on_vb vb;
          dflt.value_binding self vb);
      value_bindings =
        (fun self (rf, vbs) ->
          call on_vbs (rf, vbs);
          dflt.value_bindings self (rf, vbs)) }
  in
  iter.structure iter str

(* Does [e] (or any subexpression) mention an identifier whose final
   component is in [names]?  Used by R2 to find the shared-memory
   read/CAS inside a loop. *)
let expr_mentions ~names e =
  let found = ref false in
  let dflt = Tast_iterator.default_iterator in
  let iter =
    { dflt with
      expr =
        (fun self e ->
          (match e.exp_desc with
           | Texp_ident (p, _, _)
             when List.mem (last_component (components p)) names ->
             found := true
           | _ -> ());
          if not !found then dflt.expr self e) }
  in
  iter.expr iter e;
  !found

(* ------------------------------------------------------------------ *)
(* R1: atomics containment                                             *)

let r1 ~(config : Config.t) (u : Cmt_unit.t) =
  let dir_allowed =
    List.exists
      (function
        | Config.Dir d -> under_dir d u.source
        | Config.Module_path _ -> false)
      config.r1_allow
  in
  if dir_allowed then []
  else begin
    let diags = ref [] in
    let mods_allowed mods =
      List.exists
        (function
          | Config.Dir _ -> false
          | Config.Module_path mp -> is_prefix mp mods)
        config.r1_allow
    in
    let flag ~mods ~loc what comps =
      if not (mods_allowed mods) then
        diags :=
          Diagnostic.v ~rule:"R1" ~loc
            (Printf.sprintf
               "direct use of %s %s outside the memory layer; go through \
                Smem (MEMORY/MEMORY_GEN) or add a reviewed entry to \
                Lint.Config.r1_allow"
               what
               (String.concat "." comps))
          :: !diags
    in
    let banned comps =
      match comps with
      | root :: _ -> List.mem root config.r1_banned
      | [] -> false
    in
    let on_expr ~mods e =
      match e.exp_desc with
      | Texp_ident (p, _, _) ->
        let comps = components p in
        if banned comps then flag ~mods ~loc:e.exp_loc "primitive" comps
      | _ -> ()
    in
    let on_typ ~mods (t : core_type) =
      match t.ctyp_desc with
      | Ttyp_constr (p, _, _) ->
        let comps = components p in
        if banned comps then flag ~mods ~loc:t.ctyp_loc "type" comps
      | _ -> ()
    in
    let on_mexpr ~mods me =
      match me.mod_desc with
      | Tmod_ident (p, _) ->
        let comps = components p in
        if banned comps then flag ~mods ~loc:me.mod_loc "module alias" comps
      | _ -> ()
    in
    walk_structure ~modname:u.modname ~on_expr ~on_typ ~on_mexpr u.structure;
    !diags
  end

(* ------------------------------------------------------------------ *)
(* R2: progress witness                                                *)

let r2 ~(config : Config.t) (u : Cmt_unit.t) =
  if not (List.exists (fun d -> under_dir d u.source) config.r2_dirs) then []
  else begin
    let diags = ref [] in
    let readish = config.r2_reads @ config.r2_cas in
    (* (a) [while true] whose condition+body never touch shared memory:
       nothing the loop observes can change, so it cannot terminate or
       make progress. *)
    let on_expr ~mods:_ e =
      match e.exp_desc with
      | Texp_while (cond, body) ->
        let const_true =
          match cond.exp_desc with
          | Texp_construct (_, { Types.cstr_name = "true"; _ }, []) -> true
          | _ -> false
        in
        if
          const_true
          && (not (expr_mentions ~names:readish cond))
          && not (expr_mentions ~names:readish body)
        then
          diags :=
            Diagnostic.v ~rule:"R2" ~loc:e.exp_loc
              "unbounded loop never re-reads shared memory: no step of \
               another process can make it exit (spin-without-reread)"
            :: !diags
      | _ -> ()
    in
    (* (b) recursive retry functions: a [let rec] that CASes and calls
       itself must also re-read shared state, otherwise every retry
       attempts the same stale exchange. *)
    let on_vbs ~mods:_ (rf, vbs) =
      match rf with
      | Asttypes.Nonrecursive -> ()
      | Asttypes.Recursive ->
        let bound =
          List.filter_map (fun vb -> Compat.pat_var_ident vb.vb_pat) vbs
        in
        let bound_names = List.map Ident.name bound in
        List.iter
          (fun vb ->
            match Compat.pat_var_ident vb.vb_pat with
            | Some id ->
              let self_call =
                expr_mentions ~names:bound_names vb.vb_expr
              in
              let has_cas =
                expr_mentions ~names:config.r2_cas vb.vb_expr
              in
              let has_read =
                expr_mentions ~names:config.r2_reads vb.vb_expr
              in
              if self_call && has_cas && not has_read then
                diags :=
                  Diagnostic.v ~rule:"R2" ~loc:vb.vb_loc
                    (Printf.sprintf
                       "recursive retry [%s] performs a CAS but never \
                        re-reads shared state before retrying"
                       (Ident.name id))
                  :: !diags
            | None -> ())
          vbs
    in
    walk_structure ~modname:u.modname ~on_expr ~on_vbs u.structure;
    !diags
  end

(* ------------------------------------------------------------------ *)
(* R3: hot-path allocation                                             *)

let alloc_roots =
  [ "Printf"; "Format"; "Fmt"; "Scanf"; "Buffer"; "Float"; "Int32"; "Int64";
    "Nativeint"; "Seq"; "Queue"; "Stack"; "Hashtbl" ]

(* Float arithmetic boxes its result (absent flambda and outside the
   local-unboxing window); string/list append always allocates. *)
let alloc_prims =
  [ "+."; "-."; "*."; "/."; "**"; "~-."; "float_of_int"; "float_of_string";
    "string_of_int"; "string_of_float"; "@"; "^"; "^^" ]

let alloc_collection_roots = [ "List"; "Array"; "String"; "Bytes" ]

let alloc_collection_fns =
  [ "make"; "create"; "init"; "copy"; "append"; "concat"; "map"; "mapi";
    "map2"; "filter"; "filter_map"; "of_list"; "to_list"; "of_seq"; "to_seq";
    "sub"; "split_on_char"; "rev"; "sort"; "cat" ]

let r3_scan_alloc ~qual ~push e0 =
  let flag loc what =
    push
      (Diagnostic.v ~rule:"R3" ~loc
         (Printf.sprintf "%s in zero-allocation hot path %s" what
            (String.concat "." qual)))
  in
  let dflt = Tast_iterator.default_iterator in
  let iter =
    { dflt with
      expr =
        (fun self e ->
          (match e.exp_desc with
           | Texp_function _ -> flag e.exp_loc "closure allocation"
           | Texp_tuple _ -> flag e.exp_loc "tuple allocation"
           | Texp_record _ -> flag e.exp_loc "record allocation"
           | Texp_array _ -> flag e.exp_loc "array allocation"
           | Texp_construct (lid, _, _ :: _) ->
             flag e.exp_loc
               (Printf.sprintf "allocating constructor %s"
                  (String.concat "." (Longident.flatten lid.txt)))
           | Texp_variant (_, Some _) -> flag e.exp_loc "variant allocation"
           | Texp_lazy _ -> flag e.exp_loc "lazy-block allocation"
           | Texp_pack _ -> flag e.exp_loc "first-class-module allocation"
           | Texp_object _ | Texp_new _ ->
             flag e.exp_loc "object allocation"
           | Texp_letop _ -> flag e.exp_loc "binding-operator allocation"
           | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
             (let comps = components p in
              match comps with
              | [ prim ] when List.mem prim alloc_prims ->
                flag e.exp_loc
                  (Printf.sprintf "call to allocating primitive (%s)" prim)
              | root :: _ when List.mem root alloc_roots ->
                flag e.exp_loc
                  (Printf.sprintf "call into allocating module %s"
                     (String.concat "." comps))
              | [ root; fn ]
                when List.mem root alloc_collection_roots
                     && List.mem fn alloc_collection_fns ->
                flag e.exp_loc
                  (Printf.sprintf "allocating call %s"
                     (String.concat "." comps))
              | _ -> ())
           | _ -> ());
          dflt.expr self e) }
  in
  iter.expr iter e0

let r3_check_target ~(target : Config.r3_target) ~push vb =
  match target.mode with
  | Config.Body ->
    (* the outer [fun a -> fun b -> ...] chain is the function's own
       closure, built once at definition time; only what runs per call
       is the hot path *)
    List.iter
      (r3_scan_alloc ~qual:target.qual ~push)
      (Compat.function_bodies vb.vb_expr [])
  | Config.Loops ->
    (* only the timed while/for bodies (and while conditions, which
       also run every iteration) must be allocation-free; setup and
       epilogue may build result records freely. *)
    let dflt = Tast_iterator.default_iterator in
    let iter =
      { dflt with
        expr =
          (fun self e ->
            (match e.exp_desc with
             | Texp_while (cond, body) ->
               r3_scan_alloc ~qual:target.qual ~push cond;
               r3_scan_alloc ~qual:target.qual ~push body
             | Texp_for (_, _, _, _, _, body) ->
               r3_scan_alloc ~qual:target.qual ~push body
             | _ -> ());
            dflt.expr self e) }
    in
    iter.expr iter vb.vb_expr

let r3 ~(config : Config.t) (u : Cmt_unit.t) =
  let diags = ref [] in
  let push d = diags := d :: !diags in
  let on_vb ~mods vb =
    match Compat.pat_var_ident vb.vb_pat with
    | Some id ->
      let qual = mods @ [ Ident.name id ] in
      (match
         List.find_opt
           (fun (t : Config.r3_target) -> t.qual = qual)
           config.r3_targets
       with
       | Some target -> r3_check_target ~target ~push vb
       | None -> ())
    | None -> ()
  in
  walk_structure ~modname:u.modname ~on_vb u.structure;
  !diags

(* ------------------------------------------------------------------ *)
(* R4: interface hygiene (filesystem, no cmt needed)                   *)

let r4 ~(config : Config.t) ~root () =
  let diags = ref [] in
  let rec walk rel =
    match Sys.readdir (Filename.concat root rel) with
    | exception Sys_error _ -> ()
    | entries ->
      Array.sort String.compare entries;
      Array.iter
        (fun entry ->
          let rel' = rel ^ "/" ^ entry in
          let abs' = Filename.concat root rel' in
          if Sys.is_directory abs' then walk rel'
          else if
            Filename.check_suffix entry ".ml"
            && (not (List.mem rel' config.r4_allow))
            && not (Sys.file_exists (abs' ^ "i"))
          then
            diags :=
              Diagnostic.at ~rule:"R4" ~file:rel' ~line:1 ~col:1
                (Printf.sprintf
                   "module %s has no interface: add %si or a reviewed \
                    entry to Lint.Config.r4_allow"
                   (String.capitalize_ascii
                      (Filename.remove_extension entry))
                   rel')
              :: !diags)
        entries
  in
  List.iter walk config.r4_dirs;
  !diags
