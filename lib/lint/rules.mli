(** The four concurrency-discipline rules, each a pure function from a
    loaded compilation unit (plus config) to diagnostics.

    - {b R1 atomics containment}: direct [Atomic]/[Obj]/[Domain]/[Mutex]
      (etc.) use is confined to the memory layer, the observability
      shards, the throughput harness, and the allowlisted [Unboxed]
      submodules; algorithm code must go through [MEMORY]/[MEMORY_GEN].
    - {b R2 progress witness}: unbounded loops and CASing recursive
      retries in the algorithm libraries must re-read shared memory —
      the syntactic face of the paper's progress arguments.
    - {b R3 hot-path allocation}: functions named in
      {!Config.t.r3_targets} must not contain syntactically allocating
      constructs ([Body] mode) or must keep their while/for bodies
      clean ([Loops] mode).
    - {b R4 interface hygiene}: every [.ml] under the configured dirs
      has a sibling [.mli]. *)

val r1 : config:Config.t -> Cmt_unit.t -> Diagnostic.t list
val r2 : config:Config.t -> Cmt_unit.t -> Diagnostic.t list
val r3 : config:Config.t -> Cmt_unit.t -> Diagnostic.t list

val r4 : config:Config.t -> root:string -> unit -> Diagnostic.t list
(** Filesystem-only; [root] is the repo root containing the configured
    [r4_dirs]. *)

(** {2 Exposed for tests} *)

val components : Path.t -> string list
(** Resolved path, normalized: the [Stdlib] head (or [Stdlib__] prefix)
    is stripped so ["Atomic.get"] names the same thing however it was
    reached. *)
