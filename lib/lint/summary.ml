(* The cost lattice of the step-complexity certifier (rule C1).

   A [bound] classifies how many shared-memory accesses (MEMORY /
   MEMORY_GEN read/write/cas, or the raw-atomic sites the R1 allowlist
   admits) an expression performs, as a function of the structure size n
   (number of processes, register bound, or tree width — whichever the
   paper's bound for that operation is stated in):

     Const k  <  Log  <  Polylog  <  Sqrt  <  Linear  <  Quadratic  <  Unbounded

   [Const k] is exact ("at most k accesses, always"); the asymptotic
   classes absorb constants.  [Polylog] covers O(log^c n) for any fixed c
   (the AAC counter's O(log N * log B) increment lands here); [Sqrt] is
   O(sqrt n) — the interior of Theorem 1's frontier, where the dial
   family's f = ceil(sqrt N) read lands (sqrt n dominates every polylog,
   hence its place above [Polylog]); [Unbounded]
   carries a witness string saying which loop or call defeated the
   analysis — a lock-free retry loop, an unannotated recursion, a closure
   escaping into unanalyzed code.

   The lattice is deliberately coarse: it must only be SOUND (never
   classify below the true cost) and must separate the paper's claims
   (O(1) reads vs O(log n) updates vs the not-wait-free baselines). *)

type bound =
  | Const of int
  | Log
  | Polylog
  | Sqrt
  | Linear
  | Quadratic
  | Unbounded of string

let rank = function
  | Const _ -> 0
  | Log -> 1
  | Polylog -> 2
  | Sqrt -> 3
  | Linear -> 4
  | Quadratic -> 5
  | Unbounded _ -> 6

let le a b =
  match a, b with
  | Const x, Const y -> x <= y
  | _ -> rank a <= rank b

(* Branch combination: the worst branch wins. *)
let join a b =
  match a, b with
  | Const x, Const y -> Const (max x y)
  | _ -> if rank a >= rank b then a else b

(* Sequential composition.  Constants add exactly; an asymptotic class
   absorbs anything of lower or equal rank (O(log n) + O(log n) is still
   O(log n)). *)
let add a b =
  match a, b with
  | Const x, Const y -> Const (x + y)
  | Unbounded w, _ | _, Unbounded w -> Unbounded w
  | _ -> if rank a >= rank b then a else b

(* Loop composition: [trips] iterations of a [body].  Zero-cost bodies
   stay zero whatever the trip count (a pure loop takes no shared steps).
   Products that would exceed the O(n^2) top of the bounded lattice fall
   off to [Unbounded] rather than silently rounding down. *)
let scale ~trips body =
  match trips, body with
  | _, Const 0 -> Const 0
  | Const 0, _ -> Const 0
  | Unbounded w, _ | _, Unbounded w -> Unbounded w
  | Const k, Const c -> Const (k * c)
  | Const _, b -> b
  | t, Const _ -> t
  | (Log | Polylog), (Log | Polylog) -> Polylog
  (* sqrt n * sqrt n = n; sqrt n * polylog n = o(n) — both Linear *)
  | Sqrt, (Log | Polylog | Sqrt) | (Log | Polylog), Sqrt -> Linear
  | (Log | Polylog), Linear | Linear, (Log | Polylog) -> Quadratic
  | Sqrt, Linear | Linear, Sqrt -> Quadratic
  | Linear, Linear -> Quadratic
  | Quadratic, _ | _, Quadratic ->
    Unbounded "product of bounds exceeds the O(n^2) lattice"

let bound_to_string = function
  | Const k -> Printf.sprintf "<= %d" k
  | Log -> "O(log n)"
  | Polylog -> "O(log^2 n)"
  | Sqrt -> "O(sqrt n)"
  | Linear -> "O(n)"
  | Quadratic -> "O(n^2)"
  | Unbounded w -> Printf.sprintf "unbounded (%s)" w

let class_name = function
  | Const _ -> "const"
  | Log -> "log"
  | Polylog -> "polylog"
  | Sqrt -> "sqrt"
  | Linear -> "linear"
  | Quadratic -> "quadratic"
  | Unbounded _ -> "unbounded"

let bound_to_json b =
  let base = [ ("class", Obs.Json_out.Str (class_name b)) ] in
  Obs.Json_out.Obj
    (match b with
     | Const k -> base @ [ ("k", Obs.Json_out.Int k) ]
     | Unbounded w -> base @ [ ("witness", Obs.Json_out.Str w) ]
     | _ -> base)

(* The concrete envelope behind each class, used by the static-vs-Memsim
   differential (test/test_cost.ml): a dynamic solo-operation step count
   observed on the simulator must never exceed [envelope ~n] of the
   statically certified class.  The constants are the certificate's
   explicit big-O constants: every per-level/per-segment cost in this
   repo is at most 16 events (a double refresh is 8), and the +2 absorbs
   roots and off-by-one leaf levels. *)
let envelope ~n b =
  let lg n =
    let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
    go 0 n
  in
  match b with
  | Const k -> Some k
  | Log -> Some (16 * (lg n + 2))
  | Polylog -> Some (16 * (lg n + 2) * (lg n + 2))
  | Sqrt ->
    let rec isqrt k = if k * k >= n then k else isqrt (k + 1) in
    Some (16 * (isqrt 0 + 2))
  | Linear -> Some (8 * (n + 2))
  | Quadratic -> Some (8 * (n + 2) * (n + 2))
  | Unbounded _ -> None

(* ------------------------------------------------------------------ *)
(* Per-function summaries: the three access kinds tracked separately so
   the report can say "O(log n) CAS, O(log n) reads, O(1) writes" for a
   propagating update. *)

type t = { reads : bound; writes : bound; cas : bound }

let zero = { reads = Const 0; writes = Const 0; cas = Const 0 }
let one_read = { zero with reads = Const 1 }
let one_write = { zero with writes = Const 1 }
let one_cas = { zero with cas = Const 1 }

let sum a b =
  { reads = add a.reads b.reads;
    writes = add a.writes b.writes;
    cas = add a.cas b.cas }

let alt a b =
  { reads = join a.reads b.reads;
    writes = join a.writes b.writes;
    cas = join a.cas b.cas }

let repeat ~trips s =
  { reads = scale ~trips s.reads;
    writes = scale ~trips s.writes;
    cas = scale ~trips s.cas }

let total s = add s.reads (add s.writes s.cas)

let is_zero s = total s = Const 0

(* An unbounded summary with every component carrying the witness, so
   [total] reports it whichever component is inspected. *)
let unbounded w = { reads = Unbounded w; writes = Unbounded w; cas = Unbounded w }

let to_string s =
  Printf.sprintf "reads %s, writes %s, cas %s"
    (bound_to_string s.reads) (bound_to_string s.writes)
    (bound_to_string s.cas)

let to_json s =
  Obs.Json_out.Obj
    [ ("reads", bound_to_json s.reads);
      ("writes", bound_to_json s.writes);
      ("cas", bound_to_json s.cas);
      ("total", bound_to_json (total s)) ]
