(** The cost lattice of the step-complexity certifier (rule C1).

    A {!bound} classifies the number of shared-memory accesses an
    expression performs as a function of the structure size n:

    {v Const k < Log < Polylog < Sqrt < Linear < Quadratic < Unbounded v}

    [Const k] is exact; the asymptotic classes absorb constants;
    [Unbounded] carries a witness naming the loop or call that defeated
    the analysis.  The lattice is sound (never below the true cost) and
    separates the paper's claims. *)

type bound =
  | Const of int        (** at most [k] accesses, always *)
  | Log                 (** O(log n) *)
  | Polylog             (** O(log^c n), c fixed — e.g. the AAC increment *)
  | Sqrt                (** O(sqrt n) — the dial family's interior read *)
  | Linear              (** O(n) *)
  | Quadratic           (** O(n^2) — the Afek et al. snapshot *)
  | Unbounded of string (** not boundable; the witness says why *)

val rank : bound -> int
val le : bound -> bound -> bool

val join : bound -> bound -> bound
(** Branch: worst wins. *)

val add : bound -> bound -> bound
(** Sequence: constants add exactly. *)

val scale : trips:bound -> bound -> bound
(** [scale ~trips body]: cost of [trips] iterations of [body].  Zero-cost
    bodies stay zero; products exceeding O(n^2) become [Unbounded]. *)

val bound_to_string : bound -> string
val class_name : bound -> string
val bound_to_json : bound -> Obs.Json_out.t

val envelope : n:int -> bound -> int option
(** Concrete per-class ceiling at size [n], with explicit constants; the
    static-vs-dynamic differential asserts observed solo step counts
    never exceed it.  [None] for [Unbounded]. *)

(** {1 Per-function summaries} *)

type t = { reads : bound; writes : bound; cas : bound }

val zero : t
val one_read : t
val one_write : t
val one_cas : t

val sum : t -> t -> t
(** Sequential composition. *)

val alt : t -> t -> t
(** Branch join. *)

val repeat : trips:bound -> t -> t
val total : t -> bound
val is_zero : t -> bool
val unbounded : string -> t

val to_string : t -> string
val to_json : t -> Obs.Json_out.t
