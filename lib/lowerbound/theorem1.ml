(* The Theorem 1 adversary.

   Construction (Section 3): let processes p_0..p_{N-2} each perform one
   CounterIncrement, scheduled in sigma-rounds (Lemma 1), so that the
   maximum awareness/familiarity cardinality M(E) grows by at most 3x per
   round.  A CounterRead by the last process must end up aware of all N-1
   incrementers (Lemma 3), and it can reach at most O(f(N)) objects, so
   completion cannot happen in fewer than ~ log3(N / f(N)) rounds — each
   round costs every unfinished incrementer one step, which is the
   Omega(log (N/f(N))) increment lower bound.

   Running the construction against a real implementation measures:
   - rounds until all increments complete (>= the predicted bound);
   - M(E) after every round (Lemma 1: growth factor <= 3);
   - the reader's awareness after reading (Lemma 3: = N if the read is
     correct). *)

open Memsim

type result = {
  impl : string;
  n : int;
  rounds : int;
  total_events : int;
  max_inc_steps : int;         (* steps of the slowest incrementer *)
  m_per_round : int list;      (* M(E) after each sigma-round *)
  lemma1_ok : bool;            (* M grew at most 3x per round *)
  reader_steps : int;
  reader_result : int;
  reader_awareness : int;      (* |AW(reader)| after its CounterRead *)
  lemma3_ok : bool;            (* reader aware of every process *)
  predicted_rounds : float;    (* log3 (N / f(N)) *)
}

let src = Logs.Src.create "lowerbound.theorem1" ~doc:"Theorem 1 adversary"

module Log = (val Logs.src_log src : Logs.LOG)

let log3 x = log x /. log 3.

let run ?on_trace ~impl ~make_counter ~n ~f_n () =
  if n < 2 then invalid_arg "Theorem1.run: n must be >= 2";
  let session = Session.create () in
  let counter : Counters.Counter.instance = make_counter session ~n in
  let sched = Scheduler.create session in
  let incrementers = List.init (n - 1) Fun.id in
  List.iter
    (fun pid ->
      let spawned = Scheduler.spawn sched (fun () -> counter.increment ~pid) in
      assert (spawned = pid))
    incrementers;
  (* Sigma rounds until every incrementer completes. *)
  let boundaries = ref [] in
  let rounds = ref 0 in
  let rec loop () =
    let live = List.filter (Scheduler.is_active sched) incrementers in
    if live <> [] then begin
      let applied = Infoflow.Sigma.round sched live in
      incr rounds;
      boundaries := Scheduler.event_count sched :: !boundaries;
      Log.debug (fun m ->
          m "%s N=%d round %d: %d live incrementers, %d events applied" impl n
            !rounds (List.length live) applied);
      loop ()
    end
  in
  loop ();
  let max_inc_steps =
    List.fold_left (fun m pid -> max m (Scheduler.steps_of sched pid)) 0
      incrementers
  in
  (* The reader runs solo after the increments (the extension E1). *)
  let read_result = ref (-1) in
  let reader = Scheduler.spawn sched (fun () -> read_result := counter.read ()) in
  let events_before_read = Scheduler.event_count sched in
  Scheduler.run_solo sched reader;
  let reader_steps = Scheduler.event_count sched - events_before_read in
  let trace = Scheduler.finish sched in
  Option.iter (fun f -> f trace) on_trace;
  (* Awareness analysis over the complete execution.  Lemma 1's 3x bound
     is a statement about the paper's literal Definition 1 (under the
     repaired visibility rule value-preserving events stay visible inside
     sigma_1 and the constant degrades to 4; see Infoflow.Visibility), so
     it is checked under the literal rule.  Lemma 3 requires the repaired
     rule (Finding 2), so the reader's awareness uses the default. *)
  let literal_analysis = Infoflow.Awareness.of_trace ~literal:true trace in
  let m_per_round =
    List.rev_map
      (fun k -> Infoflow.Awareness.m_after literal_analysis k)
      !boundaries
  in
  let lemma1_ok =
    let rec check prev = function
      | [] -> true
      | m :: rest -> m <= 3 * prev && check m rest
    in
    check 1 m_per_round
  in
  let analysis = Infoflow.Awareness.of_trace trace in
  let reader_awareness =
    Infoflow.Awareness.Int_set.cardinal
      (Infoflow.Awareness.aw_of analysis reader)
  in
  { impl;
    n;
    rounds = !rounds;
    total_events = Array.length (Trace.events trace);
    max_inc_steps;
    m_per_round;
    lemma1_ok;
    reader_steps;
    reader_result = !read_result;
    reader_awareness;
    lemma3_ok = reader_awareness = n;
    predicted_rounds = log3 (float_of_int n /. float_of_int (max 1 f_n)) }

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v>%s N=%d: rounds=%d (predicted >= %.2f), slowest increment=%d \
     steps,@ read=%d in %d steps, |AW(reader)|=%d, lemma1=%b lemma3=%b@]"
    r.impl r.n r.rounds r.predicted_rounds r.max_inc_steps r.reader_result
    r.reader_steps r.reader_awareness r.lemma1_ok r.lemma3_ok
