(** The executable Theorem 1 adversary: drive N-1 CounterIncrement
    operations with sigma-rounds (Lemma 1) so information spreads at most
    3x per round, then let a reader run; measure the rounds needed, the
    familiarity growth (Lemma 1's bound), and the reader's awareness
    (Lemma 3).  Rounds lower-bound the slowest increment's step count,
    regenerating the Omega(log (N / f(N))) tradeoff empirically. *)

type result = {
  impl : string;
  n : int;
  rounds : int;                (** sigma-rounds until all increments done *)
  total_events : int;
  max_inc_steps : int;         (** steps of the slowest incrementer *)
  m_per_round : int list;      (** M(E) after each sigma-round *)
  lemma1_ok : bool;            (** M grew at most 3x per round *)
  reader_steps : int;
  reader_result : int;
  reader_awareness : int;      (** |AW(reader)| after its CounterRead *)
  lemma3_ok : bool;            (** reader aware of every process *)
  predicted_rounds : float;    (** log3 (N / f(N)) *)
}

val run :
  ?on_trace:(Memsim.Trace.t -> unit) ->
  impl:string ->
  make_counter:(Memsim.Session.t -> n:int -> Counters.Counter.instance) ->
  n:int ->
  f_n:int ->
  unit ->
  result
(** Run the construction against a counter implementation.  [f_n] is the
    read step complexity used in the predicted bound (measure it with
    {!Harness.Measure}).  [on_trace] receives the complete adversarial
    execution trace before analysis — hook for exporters (e.g.
    [repro --trace] feeding {!Obs.Trace_export}). *)

val pp_result : result Fmt.t
