(* Algorithm A of the paper (Section 5): a wait-free linearizable max
   register from read/write/CAS with

     ReadMax        O(1)    (a single read of the root)
     WriteMax(v)    O(min(log N, log v))

   Data structure (Figure 4): a tree T whose left subtree TL is a B1 tree
   (leaf v at depth O(log v)) and whose right subtree TR is a complete
   binary tree with one leaf per process.  WriteMax(v) writes v to a leaf —
   the v-th leaf of TL when v is small, the caller's own leaf of TR
   otherwise — and propagates it to the root with double-refresh CAS.

   TL has N-1 leaves, serving values 0..N-2; values >= N-1 go to TR.  (The
   paper routes "v < N" to TL's v-th leaf; with N-1 leaves indexed from 0
   the largest TL-value is N-2.  The complexity claim is unaffected.)

   Deviation from the paper's line 16: when WriteMax(v) finds its TL leaf
   already holding v, the paper returns immediately.  That value may have
   been written by a concurrent process that has not yet propagated it, so
   returning without helping admits a non-linearizable execution (see
   test/test_paper_deviation.ml, which exhibits it).  We propagate before
   returning in that case — same O(log v) bound.  [create
   ~literal_early_return:true] reproduces the paper's literal behaviour. *)

open Memsim

module Make (M : Smem.Memory_intf.MEMORY) = struct
  module P = Treeprim.Propagate.Make (M)

  type t = {
    root : M.t Treeprim.Tree_shape.node;
    tl_leaves : M.t Treeprim.Tree_shape.node array;
    tr_leaves : M.t Treeprim.Tree_shape.node array;
    n : int;
    literal_early_return : bool;
    refreshes : int;
  }

  let create ?(literal_early_return = false) ?(tl_shape = `B1)
      ?(refreshes = 2) ~n () =
    if n <= 0 then invalid_arg "Algorithm_a.create: n must be > 0";
    let mk () = M.make Simval.Bot in
    let tl_root, tl_leaves =
      (* `Complete is the A1 ablation: without the B1 shape, small values
         lose their O(log v) leaves and every write costs O(log N) *)
      match tl_shape with
      | `B1 -> Treeprim.Tree_shape.b1 ~mk ~nleaves:(max 1 (n - 1))
      | `Complete -> Treeprim.Tree_shape.complete ~mk ~nleaves:(max 1 (n - 1)) ()
    in
    let tr_root, tr_leaves = Treeprim.Tree_shape.complete ~mk ~nleaves:n () in
    let root = Treeprim.Tree_shape.join ~mk tl_root tr_root in
    { root; tl_leaves; tr_leaves; n; literal_early_return; refreshes }

  (* ReadMax: one read of the root (lines 1-2 of Algorithm A). *)
  let read_max t =
    Simval.int_or ~default:0 (M.read t.root.Treeprim.Tree_shape.data)

  let combine = Simval.max_val

  (* WriteMax (lines 10-18): select the leaf, skip if the leaf already holds
     a value at least as large, otherwise write and propagate. *)
  let write_max t ~pid value =
    if value < 0 then invalid_arg "Algorithm_a.write_max: negative value";
    if pid < 0 || pid >= t.n then invalid_arg "Algorithm_a.write_max: bad pid";
    let in_tl = value < Array.length t.tl_leaves in
    let leaf = if in_tl then t.tl_leaves.(value) else t.tr_leaves.(pid) in
    let old_value =
      Simval.int_or ~default:(-1) (M.read leaf.Treeprim.Tree_shape.data)
    in
    if value > old_value then begin
      M.write leaf.Treeprim.Tree_shape.data (Simval.Int value);
      P.propagate ~refreshes:t.refreshes ~combine leaf
    end
    else if in_tl && not t.literal_early_return then
      (* The leaf already holds [value], but the process that wrote it may
         not have propagated yet; help it so our completed WriteMax is
         visible at the root (see deviation note above). *)
      P.propagate ~refreshes:t.refreshes ~combine leaf

  (* Structural introspection, used by shape tests and Figure-4 audits. *)
  let tl_leaf_depth t v = Treeprim.Tree_shape.depth t.tl_leaves.(v)
  let tr_leaf_depth t i = Treeprim.Tree_shape.depth t.tr_leaves.(i)
end

(* The same algorithm over the unboxed backend, specialized to
   [int Atomic.t] nodes (Atomic primitives compile inline; a functor would
   make every step an indirect call).  Nodes start at the [bot] sentinel
   ([min_int]), below every legal value, so [combine] is bare integer max
   and the whole ReadMax/WriteMax path — including propagation — moves
   immediate ints only: zero allocation.  [padded] (default true) gives
   every tree node its own cache line. *)
module Unboxed = struct
  let bot = Smem.Unboxed_memory.bot

  type t = {
    root : int Atomic.t Treeprim.Tree_shape.node;
    tl_leaves : int Atomic.t Treeprim.Tree_shape.node array;
    tr_leaves : int Atomic.t Treeprim.Tree_shape.node array;
    n : int;
    literal_early_return : bool;
    refreshes : int;
  }

  let create ?(literal_early_return = false) ?(tl_shape = `B1)
      ?(refreshes = 2) ?(padded = true) ~n () =
    if n <= 0 then invalid_arg "Algorithm_a.create: n must be > 0";
    let mk () =
      if padded then Smem.Unboxed_memory.Padded.make bot
      else Smem.Unboxed_memory.make bot
    in
    let tl_root, tl_leaves =
      match tl_shape with
      | `B1 -> Treeprim.Tree_shape.b1 ~mk ~nleaves:(max 1 (n - 1))
      | `Complete -> Treeprim.Tree_shape.complete ~mk ~nleaves:(max 1 (n - 1)) ()
    in
    let tr_root, tr_leaves = Treeprim.Tree_shape.complete ~mk ~nleaves:n () in
    let root = Treeprim.Tree_shape.join ~mk tl_root tr_root in
    { root; tl_leaves; tr_leaves; n; literal_early_return; refreshes }

  let read_max t =
    let v = Atomic.get t.root.Treeprim.Tree_shape.data in
    if v = bot then 0 else v

  let combine a b = if a >= b then a else b

  let write_max t ~pid value =
    if value < 0 then invalid_arg "Algorithm_a.write_max: negative value";
    if pid < 0 || pid >= t.n then invalid_arg "Algorithm_a.write_max: bad pid";
    let in_tl = value < Array.length t.tl_leaves in
    let leaf = if in_tl then t.tl_leaves.(value) else t.tr_leaves.(pid) in
    (* [bot] < 0 <= value, so the sentinel needs no special case here *)
    let old_value = Atomic.get leaf.Treeprim.Tree_shape.data in
    if value > old_value then begin
      Atomic.set leaf.Treeprim.Tree_shape.data value;
      Treeprim.Propagate.Unboxed.propagate ~refreshes:t.refreshes ~combine leaf
    end
    else if in_tl && not t.literal_early_return then
      Treeprim.Propagate.Unboxed.propagate ~refreshes:t.refreshes ~combine leaf

  (* Metered WriteMax: the same control flow, with refresh rounds and CAS
     outcomes recorded by the metered propagate, plus one [Help] event
     when the write takes the help-the-concurrent-writer branch (the
     repaired line 16).  Kept separate from [write_max] so the
     uninstrumented path carries no [enabled] test at all. *)
  let write_max_metered t ~metrics ~pid value =
    if not metrics.Obs.Metrics.enabled then write_max t ~pid value
    else begin
      if value < 0 then invalid_arg "Algorithm_a.write_max: negative value";
      if pid < 0 || pid >= t.n then
        invalid_arg "Algorithm_a.write_max: bad pid";
      let in_tl = value < Array.length t.tl_leaves in
      let leaf = if in_tl then t.tl_leaves.(value) else t.tr_leaves.(pid) in
      let old_value = Atomic.get leaf.Treeprim.Tree_shape.data in
      if value > old_value then begin
        Atomic.set leaf.Treeprim.Tree_shape.data value;
        Treeprim.Propagate.Unboxed.propagate_metered ~metrics ~domain:pid
          ~refreshes:t.refreshes ~combine leaf
      end
      else if in_tl && not t.literal_early_return then begin
        Obs.Metrics.incr metrics ~domain:pid Obs.Metrics.Help;
        Treeprim.Propagate.Unboxed.propagate_metered ~metrics ~domain:pid
          ~refreshes:t.refreshes ~combine leaf
      end
    end

  let tl_leaf_depth t v = Treeprim.Tree_shape.depth t.tl_leaves.(v)
  let tr_leaf_depth t i = Treeprim.Tree_shape.depth t.tr_leaves.(i)
end
