(** Algorithm A of the paper (Section 5): a wait-free linearizable max
    register from read/write/CAS with ReadMax O(1) and WriteMax(v)
    O(min(log N, log v)).

    The tree of Figure 4: a B1 left subtree (value leaves, leaf [v] at
    depth O(log v)) joined with a complete right subtree (one leaf per
    process), values propagated to the root with double-refresh CAS.

    Deviation: the paper's line-16 early return is unsound when the chosen
    B1 leaf was written by a concurrent, not-yet-propagated WriteMax of the
    same value; by default this implementation helps (propagates) before
    returning.  [~literal_early_return:true] reproduces the paper's literal
    behaviour (see test_paper_deviation.ml and EXPERIMENTS.md E6). *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  type t

  val create :
    ?literal_early_return:bool ->
    ?tl_shape:[ `B1 | `Complete ] ->
    ?refreshes:int ->
    n:int ->
    unit ->
    t
  (** A max register shared by [n] processes.  Unbounded: any non-negative
      value may be written; values below [n-1] use the cheap B1 leaves.

      Ablations (for the A1/A2 experiments; defaults are the correct,
      paper-faithful choices): [tl_shape:`Complete] replaces the B1 left
      subtree with a complete tree (losing O(log v) writes);
      [refreshes:1] performs single rather than double refresh during
      propagation (losing linearizability). *)

  val read_max : t -> int
  (** One shared-memory event (a read of the root). *)

  val write_max : t -> pid:int -> int -> unit
  (** O(min(log n, log v)) shared-memory events. *)

  (** {1 Structural introspection (Figure 4 audits)} *)

  val tl_leaf_depth : t -> int -> int
  (** Depth of the B1 leaf serving value [v]; O(log v). *)

  val tr_leaf_depth : t -> int -> int
  (** Depth of process [i]'s leaf in the complete subtree; O(log n). *)
end

(** The same algorithm over the unboxed backend ({!Smem.Unboxed_memory}),
    specialized to [int Atomic.t] nodes so the Atomic primitives compile
    inline: identical structure and step counts, but ReadMax and WriteMax
    allocate nothing (the [bot] sentinel plays [Bot] and [combine] is bare
    integer max).  [padded] (default true) gives every tree node its own
    cache line. *)
module Unboxed : sig
  type t

  val create :
    ?literal_early_return:bool ->
    ?tl_shape:[ `B1 | `Complete ] ->
    ?refreshes:int ->
    ?padded:bool ->
    n:int ->
    unit ->
    t

  val read_max : t -> int
  val write_max : t -> pid:int -> int -> unit

  val write_max_metered : t -> metrics:Obs.Metrics.t -> pid:int -> int -> unit
  (** [write_max] with contention observability: refresh rounds and CAS
      outcomes are recorded under shard [pid], plus one
      [Obs.Metrics.Help] when the write helps a concurrent same-value
      writer propagate (the repaired line 16).  With
      {!Obs.Metrics.disabled} each record site costs one immediate-bool
      branch and allocates nothing. *)

  val tl_leaf_depth : t -> int -> int
  val tr_leaf_depth : t -> int -> int
end
