(* The unbounded max register of Aspnes-Attiya-Censor [2, Section 6], from
   reads and writes only: the bounded construction's switch recursion works
   over ANY binary partition of the value domain, so shaping the tree as a
   Bentley-Yao B1 tree over the unbounded domain gives WriteMax(v) and
   ReadMax in O(log v) / O(log vmax) steps with no bound fixed in advance.

   Structure: a right spine; spine node g partitions values into group g
   (a complete subtree over [2^g - 1, 2^(g+1) - 1), on the left) and
   everything larger (the rest of the spine, on the right).  WriteMax
   recurses into the half holding its value, setting the switch when it
   went right; ReadMax follows set switches.  Nodes are materialized
   lazily, so memory is proportional to the values actually written — but
   note the registers themselves are allocated on first touch, which in
   the simulator's accounting happens during the operation (allocation is
   not a step, matching the model where the full infinite tree exists in
   the initial configuration). *)

open Memsim

module Make (M : Smem.Memory_intf.MEMORY) = struct
  type node =
    | Value                                  (* leaf: a single value *)
    | Split of { switch : M.t; lo : tree; hi : tree; pivot : int }
        (* values < pivot on [lo], >= pivot on [hi] *)

  and tree = node Smem.Lazy_cell.t

  (* Domain-safe memoization: concurrent forcing may build a duplicate
     node, but exactly one wins the cell's CAS and the loser's registers
     are never touched again. *)
  let lazy_tree = Smem.Lazy_cell.make
  let force = Smem.Lazy_cell.force

  (* Complete subtree over [lo, hi). *)
  let rec complete lo hi =
    lazy_tree (fun () ->
        if hi - lo <= 1 then Value
        else
          let mid = (lo + hi + 1) / 2 in
          Split
            { switch = M.make (Simval.Int 0);
              lo = complete lo mid;
              hi = complete mid hi;
              pivot = mid })

  (* Spine node g: group g = [2^g - 1, 2^(g+1) - 1) on the left, the rest
     of the spine on the right. *)
  let rec spine g =
    lazy_tree (fun () ->
        let start = (1 lsl g) - 1 in
        let stop = (1 lsl (g + 1)) - 1 in
        Split
          { switch = M.make (Simval.Int 0);
            lo = complete start stop;
            hi = spine (g + 1);
            pivot = stop })

  type t = { root : tree }

  let create () = { root = spine 0 }

  let switch_set switch = Simval.equal (M.read switch) (Simval.Int 1)

  (* The recursion of the bounded AAC register, over the lazy tree. *)
  let rec write tree ~base v =
    match force tree with
    | Value -> ()
    | Split { switch; lo; hi; pivot } ->
      if v >= pivot then begin
        write hi ~base:pivot v;
        M.write switch (Simval.Int 1)
      end
      else if not (switch_set switch) then write lo ~base v

  let rec read tree ~base =
    match force tree with
    | Value -> base
    | Split { switch; lo; hi; pivot } ->
      if switch_set switch then read hi ~base:pivot else read lo ~base

  let write_max t ~pid v =
    ignore pid;
    if v < 0 then invalid_arg "B1_maxreg.write_max: negative value";
    write t.root ~base:0 v

  let read_max t = read t.root ~base:0
end

(* The same register with raw 0/1 [int Atomic.t] switches, read and set by
   the Atomic primitives directly (inline; through a MEMORY_INT functor
   each switch probe would be an indirect call).  First touch of a subtree
   still allocates its nodes (the lazy materialization), but the
   steady-state read/write recursion over already-forced nodes moves
   immediate ints only.  [padded] pads each switch to its own cache line;
   it defaults to false here because a B1 register's hot switches are
   spread across lazily-allocated spine/group nodes already. *)
module Unboxed = struct
  type node =
    | Value
    | Split of { switch : int Atomic.t; lo : tree; hi : tree; pivot : int }

  and tree = { cell : node option Atomic.t; make : unit -> node }

  let lazy_tree make = { cell = Atomic.make None; make }

  let force t =
    match Atomic.get t.cell with
    | Some n -> n
    | None ->
      let n = t.make () in
      if Atomic.compare_and_set t.cell None (Some n) then n
      else Option.get (Atomic.get t.cell)

  let rec complete ~mk lo hi =
    lazy_tree (fun () ->
        if hi - lo <= 1 then Value
        else
          let mid = (lo + hi + 1) / 2 in
          Split
            { switch = mk ();
              lo = complete ~mk lo mid;
              hi = complete ~mk mid hi;
              pivot = mid })

  let rec spine ~mk g =
    lazy_tree (fun () ->
        let start = (1 lsl g) - 1 in
        let stop = (1 lsl (g + 1)) - 1 in
        Split
          { switch = mk ();
            lo = complete ~mk start stop;
            hi = spine ~mk (g + 1);
            pivot = stop })

  type t = { root : tree }

  let create ?(padded = false) () =
    let mk () =
      if padded then Smem.Unboxed_memory.Padded.make 0
      else Smem.Unboxed_memory.make 0
    in
    { root = spine ~mk 0 }

  let switch_set switch = Atomic.get switch = 1

  let rec write tree ~base v =
    match force tree with
    | Value -> ()
    | Split { switch; lo; hi; pivot } ->
      if v >= pivot then begin
        write hi ~base:pivot v;
        Atomic.set switch 1
      end
      else if not (switch_set switch) then write lo ~base v

  let rec read tree ~base =
    match force tree with
    | Value -> base
    | Split { switch; lo; hi; pivot } ->
      if switch_set switch then read hi ~base:pivot else read lo ~base

  let write_max t ~pid v =
    ignore pid;
    if v < 0 then invalid_arg "B1_maxreg.write_max: negative value";
    write t.root ~base:0 v

  let read_max t = read t.root ~base:0
end
