(** The unbounded Aspnes–Attiya–Censor max register from reads and writes
    only: the bounded switch recursion applied to a Bentley–Yao B1-shaped
    partition of the unbounded value domain, giving WriteMax(v) O(log v)
    and ReadMax O(log vmax) with no bound fixed in advance.  The tree is
    materialized lazily (memory proportional to values written);
    materialization is domain-safe. *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  type t

  val create : unit -> t

  val read_max : t -> int
  (** O(log vmax) steps, where vmax is the largest value written. *)

  val write_max : t -> pid:int -> int -> unit
  (** O(log v) steps; [pid] is ignored (kept for interface uniformity). *)
end

(** The same register with raw 0/1 [int Atomic.t] switches (see
    {!Smem.Unboxed_memory}).  First touch of a subtree still allocates
    (lazy materialization); the steady-state recursion over forced nodes
    allocates nothing.  [padded] (default false) pads each switch to its
    own cache line. *)
module Unboxed : sig
  type t

  val create : ?padded:bool -> unit -> t
  val read_max : t -> int
  val write_max : t -> pid:int -> int -> unit
end
