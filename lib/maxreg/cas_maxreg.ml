(* Baseline: a max register as a single register updated with a CAS retry
   loop.  ReadMax is O(1); WriteMax is lock-free but not wait-free — its
   step complexity is bounded only by the number of concurrent successful
   writers (O(1) when run alone).  Included as the "obvious" CAS
   implementation against which Algorithm A's wait-freedom matters. *)

open Memsim

module Make (M : Smem.Memory_intf.MEMORY) = struct
  type t = M.t

  let create () = M.make (Simval.Int 0)

  let read_max t = Simval.int_or ~default:0 (M.read t)

  let write_max t ~pid value =
    ignore pid;
    if value < 0 then invalid_arg "Cas_maxreg.write_max: negative value";
    let rec loop () =
      let cur = M.read t in
      let cur_int = Simval.int_or ~default:0 cur in
      if value > cur_int then
        if not (M.cas t ~expected:cur ~desired:(Simval.Int value)) then loop ()
    in
    loop ()
end

(* The same retry loop on a bare [int Atomic.t]: the whole operation is a
   read, an int compare and an immediate-int CAS — no box per attempt, so
   contended retries also stop hammering the allocator.  The Atomic
   primitives are applied directly (inline; through a MEMORY_INT functor
   each would be an indirect call) and the loop is a top-level
   self-recursive function: a local [let rec loop ()] would capture [t] and
   [value] in a fresh closure on every call (no flambda), defeating the
   zero-allocation guarantee.  [padded] (default true) gives the register
   its own cache line. *)
module Unboxed = struct
  type t = int Atomic.t

  let create ?(padded = true) () =
    if padded then Smem.Unboxed_memory.Padded.make 0
    else Smem.Unboxed_memory.make 0

  let read_max (t : t) = Atomic.get t

  let rec cas_loop (t : t) value =
    let cur = Atomic.get t in
    if value > cur then
      if not (Atomic.compare_and_set t cur value) then cas_loop t value

  let write_max t ~pid value =
    ignore pid;
    if value < 0 then invalid_arg "Cas_maxreg.write_max: negative value";
    cas_loop t value

  (* A single attempt of the retry loop, for the flat-combining fast
     path (Harness.Combining): the uncontended case must stay exactly
     one read + one CAS, with the failure routed to the arena instead of
     a local retry.  Encoded as an int so the caller's dispatch stays
     allocation-free: 0 = value at or below the current maximum (the
     elimination case — the write linearizes at the read), 1 = CAS
     installed the value, 2 = CAS lost a race (contention: combine). *)
  let write_once (t : t) value =
    let cur = Atomic.get t in
    if value <= cur then 0
    else if Atomic.compare_and_set t cur value then 1
    else 2

  (* Metered retry loop: the interesting observable for the non-wait-free
     baseline is precisely how many CAS attempts a WriteMax needed — the
     quantity the Theorem 3 adversary drives to Theta(K). *)
  let rec cas_loop_metered ~metrics ~domain (t : t) value =
    let cur = Atomic.get t in
    if value > cur then begin
      Obs.Metrics.incr metrics ~domain Obs.Metrics.Cas_attempt;
      if not (Atomic.compare_and_set t cur value) then begin
        Obs.Metrics.incr metrics ~domain Obs.Metrics.Cas_failure;
        cas_loop_metered ~metrics ~domain t value
      end
    end

  let write_max_metered t ~metrics ~pid value =
    if not metrics.Obs.Metrics.enabled then write_max t ~pid value
    else begin
      if value < 0 then invalid_arg "Cas_maxreg.write_max: negative value";
      cas_loop_metered ~metrics ~domain:pid t value
    end
end
