(** Baseline max register: one register updated by a CAS retry loop.
    ReadMax is O(1); WriteMax is lock-free but {e not} wait-free — under
    the Theorem 3 adversary a single WriteMax is stretched to Theta(K)
    steps (see EXPERIMENTS.md E5), which is what Algorithm A's tree
    structure avoids. *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  type t

  val create : unit -> t
  val read_max : t -> int
  val write_max : t -> pid:int -> int -> unit
end

(** The same retry loop on a bare [int Atomic.t] (see
    {!Smem.Unboxed_memory}): zero allocation per operation, including
    failed CAS attempts.  [padded] (default true) gives the register its
    own cache line. *)
module Unboxed : sig
  type t

  val create : ?padded:bool -> unit -> t
  val read_max : t -> int
  val write_max : t -> pid:int -> int -> unit

  val write_once : t -> int -> int
  (** One attempt of the retry loop, for the flat-combining fast path:
      [0] — value at or below the current maximum (eliminated; the
      write linearizes at the read), [1] — CAS installed the value,
      [2] — CAS lost a race (route to the combining arena).  Does not
      validate the value: callers on the hot path check once. *)

  val write_max_metered : t -> metrics:Obs.Metrics.t -> pid:int -> int -> unit
  (** [write_max] recording every CAS attempt and failure under shard
      [pid] — the retry count the Theorem 3 adversary stretches.  Free
      (one immediate-bool branch per site) with {!Obs.Metrics.disabled}. *)
end
