(* The tradeoff-dial max register: the Dial_counter geometry with a max
   aggregate.  f(N) blocks of ceil(N/f) single-writer leaves, each block
   a max f-array: ReadMax collects the f block roots in Theta(f) steps,
   WriteMax writes the caller's leaf and propagates only inside its own
   block in O(log(N/f)) steps.  The monotone aggregate keeps the CAS
   propagation ABA-free (values never recur at a node).

   A thin sibling of Dial_counter: it exists so the maxreg half of the
   paper's tradeoff (Theorem 6 territory) can be swept across the same
   frontier the counter traces. *)

open Memsim

module Make (M : Smem.Memory_intf.MEMORY) = struct
  module F = Farray.Make (M)

  type t = { blocks : F.t array; bsize : int }

  let create ~n ~dial =
    if n <= 0 then invalid_arg "Dial_maxreg.create: n must be > 0";
    let bsize = Treeprim.Dial.block_size ~n dial in
    let nblocks = (n + bsize - 1) / bsize in
    { blocks =
        Array.init nblocks (fun b ->
            F.create
              ~n:(min bsize (n - (b * bsize)))
              ~combine:Simval.max_val ());
      bsize }

  let read_max t =
    let best = ref 0 in
    for b = 0 to Array.length t.blocks - 1 do
      let v = Simval.int_or ~default:0 (F.read t.blocks.(b)) in
      if v > !best then best := v
    done;
    !best

  let write_max t ~pid v =
    if v < 0 then invalid_arg "Dial_maxreg.write_max: negative value";
    let fa = t.blocks.(pid / t.bsize) in
    let leaf = pid mod t.bsize in
    let cur = Simval.int_or ~default:0 (F.read_leaf fa leaf) in
    if v > cur then F.update fa ~leaf (Simval.Int v)
end

(* The zero-alloc native twin over {!Farray.Unboxed} blocks; the [bot]
   sentinel reads as 0 (the register's initial value — values are
   non-negative). *)
module Unboxed = struct
  module F = Farray.Unboxed

  type t = { blocks : F.t array; bsize : int }

  let bot = F.bot

  let mx a b = max (if a = bot then 0 else a) (if b = bot then 0 else b)

  let create ?(padded = true) ~n ~dial () =
    if n <= 0 then invalid_arg "Dial_maxreg.create: n must be > 0";
    let bsize = Treeprim.Dial.block_size ~n dial in
    let nblocks = (n + bsize - 1) / bsize in
    { blocks =
        Array.init nblocks (fun b ->
            F.create ~padded ~n:(min bsize (n - (b * bsize))) ~combine:mx ());
      bsize }

  let read_max t =
    let best = ref 0 in
    for b = 0 to Array.length t.blocks - 1 do
      let v = F.read t.blocks.(b) in
      let v = if v = bot then 0 else v in
      if v > !best then best := v
    done;
    !best

  let write_max t ~pid v =
    if v < 0 then invalid_arg "Dial_maxreg.write_max: negative value";
    let fa = t.blocks.(pid / t.bsize) in
    let leaf = pid mod t.bsize in
    let cur = F.read_leaf fa leaf in
    let cur = if cur = bot then 0 else cur in
    if v > cur then F.update fa ~leaf v

  let write_max_metered t ~metrics ~pid v =
    if v < 0 then invalid_arg "Dial_maxreg.write_max: negative value";
    let fa = t.blocks.(pid / t.bsize) in
    let leaf = pid mod t.bsize in
    let cur = F.read_leaf fa leaf in
    let cur = if cur = bot then 0 else cur in
    if v > cur then F.update_metered fa ~metrics ~domain:pid ~leaf v
end
