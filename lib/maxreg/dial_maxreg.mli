(** The tradeoff-dial max register: {!Dial_counter}'s block geometry
    with a max aggregate.  ReadMax collects the f block roots in
    Theta(f) steps; WriteMax propagates only inside its own block in
    O(log(N/f)) steps ({!Treeprim.Dial}). *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  type t

  val create : n:int -> dial:Treeprim.Dial.t -> t

  val read_max : t -> int
  (** Max over the f block roots: Theta(f) events; 0 if nothing was
      written. *)

  val write_max : t -> pid:int -> int -> unit
  (** Write a value [>= 0]: leaf write + in-block propagation,
      O(log(N/f)) events (skipped when the caller's leaf already holds
      a larger value). *)
end

(** The zero-alloc native twin over {!Farray.Unboxed} blocks. *)
module Unboxed : sig
  type t

  val create : ?padded:bool -> n:int -> dial:Treeprim.Dial.t -> unit -> t
  val read_max : t -> int
  val write_max : t -> pid:int -> int -> unit

  val write_max_metered : t -> metrics:Obs.Metrics.t -> pid:int -> int -> unit
  (** [write_max] with refresh rounds and CAS outcomes recorded under
      shard [pid]; free with {!Obs.Metrics.disabled}. *)
end
