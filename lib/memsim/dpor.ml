(* Dynamic partial-order reduction (Flanagan–Godefroid 2005) with
   persistent/backtrack sets and sleep sets.

   The naive explorer ([Explore.run]) enumerates every interleaving, which
   is hopeless beyond 2 processes with a handful of steps.  Most of those
   interleavings differ only by swapping adjacent independent events —
   events on different objects, or two reads of the same object — and so
   lead to indistinguishable executions.  DPOR explores at least one
   representative of every Mazurkiewicz trace (equivalence class modulo
   commuting independent events) and prunes the rest:

   - Two events are dependent iff they touch the same object and at least
     one of them writes or CASes ([dependent]).  This is the coarsest
     sound relation derivable from the static event descriptions the
     scheduler exposes ([Scheduler.enabled]): a failed CAS commutes with a
     read, but whether a CAS fails is only known after applying it, so CAS
     is conservatively write-like.

   - Happens-before is tracked with vector clocks ({!Vector_clock}): one
     clock per process (its causal past) and two per object (last
     write-like access; join of reads since).  An event and a later
     enabled transition are in *race* when they are dependent and the
     event is not in the transition's causal past — then reversing them
     may reach a different trace, so the pid (or, failing that, every
     enabled pid) is added to the backtrack set of the frame that executed
     the event (the persistent-set side).

   - Sleep sets prune the other direction: after a subtree for pid q is
     fully explored, q "sleeps" in the sibling subtrees until an event
     dependent with q's transition wakes it, so no trace is delivered
     twice.

   Continuations are one-shot (see [Explore]), so each visited node replays
   its prefix from the initial configuration; the per-node cost matches
   the naive explorer and the win is purely in how few nodes remain. *)

module IMap = Map.Make (Int)

type stats = {
  explored : int;
  sleep_blocked : int;
  truncated : bool;
}

let dependent (obj1, prim1) (obj2, prim2) =
  obj1 = obj2 && (Event.prim_writes prim1 || Event.prim_writes prim2)

(* A process's enabled transition, as exposed before it is applied. *)
type next_ev = { pid : int; obj : int; writes : bool; prim : Event.prim }

(* One executed event of the current stack (newest first). *)
type sev = {
  depth : int;    (* index of the frame that executed it *)
  spid : int;
  sobj : int;
  swrites : bool;
  slocal : int;   (* 1-based index among spid's events *)
}

(* The exploration frame at one stack depth.  [backtrack] is mutated by
   race detection in descendants. *)
type frame = {
  enabled : next_ev list;   (* ascending pid *)
  mutable backtrack : int;  (* pid bitmask *)
  mutable done_ : int;      (* pid bitmask *)
}

let bit pid = 1 lsl pid
let mem pid mask = mask land bit pid <> 0

let lowest_bit mask =
  if mask = 0 then None
  else begin
    let i = ref 0 in
    while not (mem !i mask) do incr i done;
    Some !i
  end

let run ?(max_schedules = 1_000_000) ?(max_events = 200) session ~n ~make_body
    ~on_complete () =
  if n > 62 then invalid_arg "Dpor.run: at most 62 processes";
  let explored = ref 0 in
  let sleep_blocked = ref 0 in
  let truncated = ref false in
  let continue = ref true in
  let dummy = { enabled = []; backtrack = 0; done_ = 0 } in
  let frames = Array.make (max_events + 1) dummy in
  let bottom = Vector_clock.bottom n in
  let obj_clock map obj =
    match IMap.find_opt obj map with Some c -> c | None -> bottom
  in
  (* Replay [rev_prefix] from the initial configuration; the run is left
     open so enabled transitions can be inspected. *)
  let replay rev_prefix =
    Store.reset (Session.store session);
    let sched = Scheduler.create session in
    for pid = 0 to n - 1 do
      ignore (Scheduler.spawn sched (make_body pid))
    done;
    List.iter (fun pid -> ignore (Scheduler.step sched pid)) (List.rev rev_prefix);
    sched
  in
  let enabled_of sched =
    let rec go pid acc =
      if pid < 0 then acc
      else
        go (pid - 1)
          (match Scheduler.enabled sched pid with
           | Some (obj, prim) ->
             { pid; obj; writes = Event.prim_writes prim; prim } :: acc
           | None -> acc)
    in
    go (n - 1) []
  in
  (* Race detection (the persistent-set side).  [ne] is enabled at the
     current node, whose stack is [sevs] (newest first) and whose
     per-process clocks are [cp].  Find the latest executed event that is
     dependent with [ne] and not in [ne.pid]'s causal past; reversing the
     pair may reach a new trace, so revive exploration at that frame. *)
  let detect_races sevs (cp : Vector_clock.t array) ne =
    let p = ne.pid in
    let race =
      List.find_opt
        (fun e ->
          e.spid <> p
          && e.sobj = ne.obj
          && (e.swrites || ne.writes)
          && not (Vector_clock.event_leq ~pid:e.spid ~local:e.slocal cp.(p)))
        sevs
    in
    match race with
    | None -> ()
    | Some e ->
      let fr = frames.(e.depth) in
      (* Processes whose transition at [fr] starts a causal chain into
         [ne]: scheduling one of them there suffices to reach the reversed
         trace. *)
      let candidates =
        List.filter
          (fun (cand : next_ev) ->
            cand.pid = p
            || List.exists
                 (fun j ->
                   j.depth > e.depth && j.spid = cand.pid
                   && Vector_clock.event_leq ~pid:j.spid ~local:j.slocal cp.(p))
                 sevs)
          fr.enabled
      in
      (match candidates with
       | [] ->
         (* No single pid provably reaches the reversal: fall back to the
            whole enabled set (still a persistent set). *)
         List.iter (fun (c : next_ev) -> fr.backtrack <- fr.backtrack lor bit c.pid)
           fr.enabled
       | cs ->
         let q =
           if List.exists (fun (c : next_ev) -> c.pid = p) cs then p
           else (List.hd cs).pid
         in
         fr.backtrack <- fr.backtrack lor bit q)
  in
  (* Depth-first exploration.  [cp] maps each pid to the clock of its last
     event; [ow] maps each object to the clock of its last write-like
     event, [ord] to the join of its reads since then; [sleep] is the pid
     bitmask of sleeping transitions. *)
  let rec explore rev_prefix depth sevs cp ow ord sleep =
    if !continue then begin
      if !explored >= max_schedules || depth > max_events then
        truncated := true
      else begin
        let sched = replay rev_prefix in
        match enabled_of sched with
        | [] ->
          let trace = Scheduler.finish sched in
          incr explored;
          if not (on_complete trace) then continue := false
        | enabled ->
          ignore (Scheduler.finish sched);
          List.iter (detect_races sevs cp) enabled;
          (match
             List.find_opt (fun ne -> not (mem ne.pid sleep)) enabled
           with
           | None ->
             (* Everything enabled sleeps: every continuation from here is
                a reordering of a trace delivered elsewhere. *)
             incr sleep_blocked
           | Some first ->
             let fr =
               { enabled; backtrack = bit first.pid; done_ = 0 }
             in
             frames.(depth) <- fr;
             let zs = ref sleep in
             let rec loop () =
               if !continue then
                 match lowest_bit (fr.backtrack land lnot fr.done_) with
                 | None -> ()
                 | Some q ->
                   fr.done_ <- fr.done_ lor bit q;
                   if not (mem q !zs) then begin
                     let ne = List.find (fun ne -> ne.pid = q) enabled in
                     let local = Vector_clock.get cp.(q) q + 1 in
                     let cv = Vector_clock.join cp.(q) (obj_clock ow ne.obj) in
                     let cv =
                       if ne.writes then
                         Vector_clock.join cv (obj_clock ord ne.obj)
                       else cv
                     in
                     let cv = Vector_clock.tick cv q ~local in
                     let cp' = Array.copy cp in
                     cp'.(q) <- cv;
                     let ow' = if ne.writes then IMap.add ne.obj cv ow else ow in
                     let ord' =
                       if ne.writes then IMap.remove ne.obj ord
                       else
                         IMap.add ne.obj
                           (Vector_clock.join cv (obj_clock ord ne.obj))
                           ord
                     in
                     let sev =
                       { depth; spid = q; sobj = ne.obj; swrites = ne.writes;
                         slocal = local }
                     in
                     (* Siblings keep sleeping only while independent of
                        the transition just taken. *)
                     let sleep' =
                       List.fold_left
                         (fun acc r ->
                           if
                             mem r.pid !zs
                             && not (dependent (r.obj, r.prim) (ne.obj, ne.prim))
                           then acc lor bit r.pid
                           else acc)
                         0 enabled
                     in
                     explore (q :: rev_prefix) (depth + 1) (sev :: sevs) cp'
                       ow' ord' sleep';
                     zs := !zs lor bit q
                   end;
                   loop ()
             in
             loop ())
      end
    end
  in
  explore [] 0 [] (Array.make n bottom) IMap.empty IMap.empty 0;
  { explored = !explored; sleep_blocked = !sleep_blocked;
    truncated = !truncated }
