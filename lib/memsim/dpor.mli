(** Dynamic partial-order reduction: exhaustive exploration up to
    commutation of independent events.

    Explores at least one representative interleaving of every Mazurkiewicz
    trace (equivalence class of executions modulo swapping adjacent
    independent events), instead of every interleaving like {!Explore.run}.
    Since independent events commute — they lead to the same store and the
    same per-process responses — any property of complete executions that
    is invariant under such swaps (final store state, linearizability of
    the extracted history, per-process step counts) is exhaustively
    verified, at a fraction of the schedules.

    The engine is Flanagan–Godefroid DPOR with persistent/backtrack sets
    (driven by vector-clock race detection, {!Vector_clock}) plus sleep
    sets.  It plugs into the same [Session]/[Scheduler]/[Trace] machinery
    and exposes the same [on_complete] callback as {!Explore.run}, so
    checkers consume it unchanged. *)

type stats = {
  explored : int;       (** complete executions delivered to [on_complete] *)
  sleep_blocked : int;  (** paths pruned by sleep sets before completion *)
  truncated : bool;     (** a limit stopped the exploration *)
}

val dependent : int * Event.prim -> int * Event.prim -> bool
(** The independence relation, on (object id, primitive) descriptions as
    exposed by {!Scheduler.enabled}: two events are dependent iff they
    touch the same object and at least one writes or CASes.  (A failed CAS
    actually commutes with reads, but success is only known after the
    event is applied, so CAS is conservatively write-like.) *)

val run :
  ?max_schedules:int ->
  ?max_events:int ->
  Session.t ->
  n:int ->
  make_body:(int -> unit -> unit) ->
  on_complete:(Trace.t -> bool) ->
  unit ->
  stats
(** [run session ~n ~make_body ~on_complete ()] explores all maximal
    schedules of processes [0..n-1] up to trace equivalence, re-executing
    each prefix from the initial configuration exactly like
    {!Explore.run} (fresh bodies, store reset).  [on_complete] returns
    [false] to abort early.  Handles processes whose step counts are
    schedule-dependent (retry loops).  At most 62 processes. *)
