(* Shared-memory events: the primitive applied, its operands, its response,
   and the object value before/after.  One event = one "step" in the paper's
   complexity measure. *)

type prim =
  | Read
  | Write of Simval.t
  | Cas of { expected : Simval.t; desired : Simval.t }

type response =
  | RVal of Simval.t   (* response to Read *)
  | RAck               (* response to Write *)
  | RBool of bool      (* response to Cas *)

type t = {
  seq : int;           (* position in the execution, 0-based *)
  pid : int;
  obj : int;
  obj_name : string;
  prim : prim;
  response : response;
  before : Simval.t;   (* object value just before the event *)
  after : Simval.t;    (* object value just after the event *)
}

(* An event is "trivial" (Def. 1, first clause) iff it leaves the object
   value unchanged.  Reads, failed CAS, and writes of the current value are
   all trivial. *)
let changed_value e = not (Simval.equal e.before e.after)

(* A primitive is write-like iff it may change the object's value.  Used as
   the static dependence test of the DPOR engine: whether a CAS succeeds is
   only known after it is applied, so CAS is conservatively write-like. *)
let prim_writes = function Read -> false | Write _ | Cas _ -> true

let is_read e = match e.prim with Read -> true | Write _ | Cas _ -> false
let is_write e = match e.prim with Write _ -> true | Read | Cas _ -> false
let is_cas e = match e.prim with Cas _ -> true | Read | Write _ -> false

let pp_prim ppf = function
  | Read -> Fmt.string ppf "read"
  | Write v -> Fmt.pf ppf "write(%a)" Simval.pp v
  | Cas { expected; desired } ->
    Fmt.pf ppf "cas(%a→%a)" Simval.pp expected Simval.pp desired

let pp_response ppf = function
  | RVal v -> Simval.pp ppf v
  | RAck -> Fmt.string ppf "ack"
  | RBool b -> Fmt.bool ppf b

let pp ppf e =
  Fmt.pf ppf "#%d p%d %s.%a = %a" e.seq e.pid e.obj_name pp_prim e.prim
    pp_response e.response
