(** Shared-memory events.

    An event records one atomic application of a primitive to a base object:
    the primitive and its operands, the response, and the value of the object
    before and after.  Events are the unit of step complexity in the paper's
    model. *)

type prim =
  | Read
  | Write of Simval.t
  | Cas of { expected : Simval.t; desired : Simval.t }

type response =
  | RVal of Simval.t
  | RAck
  | RBool of bool

type t = {
  seq : int;           (** position in the execution, 0-based *)
  pid : int;
  obj : int;
  obj_name : string;
  prim : prim;
  response : response;
  before : Simval.t;
  after : Simval.t;
}

val changed_value : t -> bool
(** [true] iff the event changed the value of the object it accessed
    (the negation of "trivial" in Definition 1, first clause). *)

val prim_writes : prim -> bool
(** [true] iff the primitive may change the object's value (write or CAS);
    the static write-like test used by {!Dpor}'s dependence relation. *)

val is_read : t -> bool
val is_write : t -> bool
val is_cas : t -> bool

val pp_prim : prim Fmt.t
val pp_response : response Fmt.t
val pp : t Fmt.t
