(* Fault plans: crash/stall adversaries as data.

   Program-level faults (crash, spurious CAS failure) are body
   transformations built on effect forwarding: the instrumented body
   installs an inner handler that intercepts [Session.Mem_op], counts the
   process's own events, and either re-performs the operation outward (so
   the scheduler's outer handler still controls interleaving), doctors it
   (a forced-fail CAS becomes a read answered [false]), or cuts the body
   short (crash = discontinue the inner continuation).  The instrumented
   program is an ordinary deterministic program, which is what makes these
   faults composable with Explore, Dpor and Shrink unchanged.

   Scheduler-level faults (stall, halt-all-but) are a gate over scheduling
   points, consulted by the gated runners and the gated explorer.  A gate
   is a pure function of the schedule prefix (points elapsed = steps +
   idle ticks, both deterministic), so prefix replay reproduces it. *)

type fault =
  | Crash of { pid : int; after : int }
  | Cas_fail of { pid : int; nth : int }
  | Stall of { pid : int; at : int; points : int }
  | Halt_all_but of { pid : int; at : int }

type plan = fault list

let pp_fault ppf = function
  | Crash { pid; after } -> Fmt.pf ppf "crash:%d@%d" pid after
  | Cas_fail { pid; nth } -> Fmt.pf ppf "casfail:%d#%d" pid nth
  | Stall { pid; at; points } -> Fmt.pf ppf "stall:%d@%d+%d" pid at points
  | Halt_all_but { pid; at } -> Fmt.pf ppf "haltbut:%d@%d"  pid at

let pp ppf = function
  | [] -> Fmt.string ppf "none"
  | plan -> Fmt.(list ~sep:(any ",") pp_fault) ppf plan

let to_string plan = Fmt.str "%a" pp plan

let parse_fault s =
  (* numbers and the kind tolerate surrounding whitespace, so a plan
     pretty-printed with spaces ("crash: 0 @ 2") round-trips — only the
     separators (':' '@' '#' '+' ',') carry structure *)
  let int_of s =
    match int_of_string_opt (String.trim s) with
    | Some v when v >= 0 -> Ok v
    | Some _ | None -> Error (Printf.sprintf "bad number %S in fault" s)
  in
  let ( let* ) = Result.bind in
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "fault %S: expected KIND:ARGS" s)
  | Some i -> (
    let kind = String.trim (String.sub s 0 i) in
    let args = String.sub s (i + 1) (String.length s - i - 1) in
    let split c =
      match String.index_opt args c with
      | None ->
        Error (Printf.sprintf "fault %S: expected PID%cN after %s:" s c kind)
      | Some j ->
        let* a = int_of (String.sub args 0 j) in
        Ok (a, String.sub args (j + 1) (String.length args - j - 1))
    in
    match kind with
    | "crash" ->
      let* pid, rest = split '@' in
      let* after = int_of rest in
      Ok (Crash { pid; after })
    | "casfail" ->
      let* pid, rest = split '#' in
      let* nth = int_of rest in
      if nth = 0 then Error "casfail: NTH is 1-based"
      else Ok (Cas_fail { pid; nth })
    | "haltbut" ->
      let* pid, rest = split '@' in
      let* at = int_of rest in
      Ok (Halt_all_but { pid; at })
    | "stall" ->
      let* pid, rest = split '@' in
      (match String.index_opt rest '+' with
       | None -> Error (Printf.sprintf "fault %S: expected AT+POINTS" s)
       | Some j ->
         let* at = int_of (String.sub rest 0 j) in
         let* points =
           int_of (String.sub rest (j + 1) (String.length rest - j - 1))
         in
         Ok (Stall { pid; at; points }))
    | k -> Error (Printf.sprintf "unknown fault kind %S" k))

let parse s =
  match String.trim s with
  | "" | "none" -> Ok []
  | s ->
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.fold_left
         (fun acc part ->
           Result.bind acc (fun plan ->
               Result.bind (parse_fault part) (fun f ->
                   (* a clause repeated verbatim is always a mistake (the
                      plan semantics would silently apply it once), so
                      reject it instead of deduplicating *)
                   if List.mem f plan then
                     Error
                       (Printf.sprintf "duplicate fault clause %s"
                          (to_string [ f ]))
                   else Ok (f :: plan))))
         (Ok [])
    |> Result.map List.rev

(* {1 Program-level composition} *)

let is_program_fault = function
  | Crash _ | Cas_fail _ -> true
  | Stall _ | Halt_all_but _ -> false

let has_program_faults plan = List.exists is_program_fault plan
let has_scheduler_faults plan =
  List.exists (fun f -> not (is_program_fault f)) plan

(* Earliest crash point for [pid], if any. *)
let crash_after plan pid =
  List.fold_left
    (fun acc f ->
      match f with
      | Crash { pid = p; after } when p = pid -> (
        match acc with Some a -> Some (min a after) | None -> Some after)
      | _ -> acc)
    None plan

let cas_fail_nths plan pid =
  List.filter_map
    (function Cas_fail { pid = p; nth } when p = pid -> Some nth | _ -> None)
    plan

let instrument plan make_body =
  if not (has_program_faults plan) then make_body
  else
    fun pid ->
      match (crash_after plan pid, cas_fail_nths plan pid) with
      | None, [] -> make_body pid
      | crash, failed_cas ->
        fun () ->
          let body = make_body pid in
          let events = ref 0 in
          let cases = ref 0 in
          let crashed = ref false in
          let crash_now () =
            match crash with Some a -> !events >= a | None -> false
          in
          Effect.Deep.match_with body ()
            { retc = (fun () -> ());
              exnc =
                (fun e ->
                  match e with
                  (* our own crash unwinding; the body returns normally so
                     the scheduler sees an ordinary (early) completion *)
                  | Session.Erased when !crashed -> ()
                  | e -> raise e);
              effc =
                (fun (type a) (eff : a Effect.t) ->
                  match eff with
                  | Session.Mem_op (obj, prim) ->
                    Some
                      (fun (k : (a, unit) Effect.Deep.continuation) ->
                        if crash_now () then begin
                          crashed := true;
                          Effect.Deep.discontinue k Session.Erased
                        end
                        else begin
                          incr events;
                          match prim with
                          | Event.Cas _
                            when (incr cases; List.mem !cases failed_cas) ->
                            (* spurious failure: the step happens (a read
                               of the same object — trivial, hence a legal
                               stand-in for a failed CAS) but the body is
                               told the CAS lost *)
                            let (_ : Event.response) =
                              Effect.perform (Session.Mem_op (obj, Event.Read))
                            in
                            Effect.Deep.continue k (Event.RBool false)
                          | Event.Read | Event.Write _ | Event.Cas _ ->
                            Effect.Deep.continue k
                              (Effect.perform (Session.Mem_op (obj, prim)))
                        end)
                  | _ -> None) }

(* {1 Scheduler-level composition} *)

type gate = { plan : plan; mutable point : int }

let gate plan = { plan; point = 0 }
let point g = g.point

let permits g pid =
  List.for_all
    (fun f ->
      match f with
      | Stall { pid = p; at; points } ->
        not (p = pid && g.point >= at && g.point < at + points)
      | Halt_all_but { pid = p; at } -> not (g.point >= at && p <> pid)
      | Crash _ | Cas_fail _ -> true)
    g.plan

let halted_forever g pid =
  List.exists
    (function
      | Halt_all_but { pid = p; at } -> g.point >= at && p <> pid
      | Crash _ | Cas_fail _ | Stall _ -> false)
    g.plan

let tick g = g.point <- g.point + 1

let step sched g pid =
  if not (permits g pid) then
    invalid_arg
      (Fmt.str "Faults.step: plan %a gates p%d at point %d" pp g.plan pid
         g.point);
  let ev = Scheduler.step sched pid in
  tick g;
  ev

let permitted_pids sched g =
  List.filter (permits g) (Scheduler.active_pids sched)

(* Tick through stalls until some active pid is schedulable.  [`Frozen]
   when the remaining active pids can never run again (a halt-all-but in
   effect names a process that is done): the execution is maximal even
   though processes remain.  Terminates: a non-halted stalled pid is
   released once every finite stall interval lies behind [g.point]. *)
let rec settle sched g =
  match Scheduler.active_pids sched with
  | [] -> `Done
  | active ->
    if List.for_all (halted_forever g) active then `Frozen
    else begin
      match List.filter (permits g) active with
      | [] -> tick g; settle sched g
      | pids -> `Ready pids
    end

let run_round_robin ?(max_events = max_int) sched g =
  let budget = ref max_events in
  let next = ref 0 in
  let rec loop () =
    if !budget > 0 then
      match settle sched g with
      | `Done | `Frozen -> ()
      | `Ready pids ->
        (* round-robin over permitted pids: first permitted >= !next *)
        let pid =
          match List.filter (fun p -> p >= !next) pids with
          | p :: _ -> p
          | [] -> List.hd pids
        in
        ignore (step sched g pid : Event.t);
        next := pid + 1;
        decr budget;
        loop ()
  in
  loop ()

let run_random ?(max_events = max_int) ~seed sched g =
  let rng = Random.State.make [| seed |] in
  let budget = ref max_events in
  let rec loop () =
    if !budget > 0 then
      match settle sched g with
      | `Done | `Frozen -> ()
      | `Ready pids ->
        let pid = List.nth pids (Random.State.int rng (List.length pids)) in
        ignore (step sched g pid : Event.t);
        decr budget;
        loop ()
  in
  loop ()

(* {1 Gated exhaustive exploration}

   The Explore.run DFS with the gate threaded through prefix replay.  A
   prefix pid was chosen from a post-[settle] permitted set, so during
   replay "tick until the chosen pid is permitted" reproduces exactly the
   decision point's ticks: had the pid been permitted at an earlier point,
   [settle] would have stopped ticking there (the pid was active), and it
   would have been chosen from that earlier set instead. *)

let explore ?(max_schedules = 1_000_000) ?(max_events = 60) session ~n
    ~make_body ~plan ~on_complete () =
  let make_body = instrument plan make_body in
  let explored = ref 0 in
  let truncated = ref false in
  let continue = ref true in
  let rec dfs rev_prefix len =
    if !continue then begin
      if !explored >= max_schedules || len > max_events then truncated := true
      else begin
        Store.reset (Session.store session);
        let sched = Scheduler.create session in
        for pid = 0 to n - 1 do
          ignore (Scheduler.spawn sched (make_body pid) : int)
        done;
        let g = gate plan in
        List.iter
          (fun pid ->
            while not (permits g pid) do tick g done;
            ignore (step sched g pid : Event.t))
          (List.rev rev_prefix);
        match settle sched g with
        | `Done | `Frozen ->
          let trace = Scheduler.finish sched in
          incr explored;
          if not (on_complete trace) then continue := false
        | `Ready pids ->
          ignore (Scheduler.finish sched : Trace.t);
          List.iter (fun pid -> dfs (pid :: rev_prefix) (len + 1)) pids
      end
    end
  in
  dfs [] 0;
  { Explore.explored = !explored; truncated = !truncated }

(* {1 Plan enumeration and minimization} *)

let single_crash_plans ~counts =
  let plans = ref [] in
  for pid = Array.length counts - 1 downto 0 do
    for after = counts.(pid) - 1 downto 0 do
      plans := [ Crash { pid; after } ] :: !plans
    done
  done;
  !plans

let single_stall_plans ~n ~max_point ~points =
  let plans = ref [] in
  for pid = n - 1 downto 0 do
    for at = max_point downto 0 do
      plans := [ Stall { pid; at; points } ] :: !plans
    done
  done;
  !plans

(* Candidate smaller plans, in decreasing order of ambition: drop each
   fault entirely, then shrink each numeric field (halve toward zero,
   then decrement). *)
let shrink_candidates plan =
  let drops =
    List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) plan) plan
  in
  let shrink_int v =
    if v <= 0 then [] else if v = 1 then [ 0 ] else [ v / 2; v - 1 ]
  in
  let numeric =
    List.concat
      (List.mapi
         (fun i f ->
           let replace f' = List.mapi (fun j g -> if j = i then f' else g) plan in
           match f with
           | Crash { pid; after } ->
             List.map (fun after -> replace (Crash { pid; after }))
               (shrink_int after)
           | Cas_fail { pid; nth } ->
             List.filter_map
               (fun nth ->
                 if nth >= 1 then Some (replace (Cas_fail { pid; nth }))
                 else None)
               (shrink_int nth)
           | Stall { pid; at; points } ->
             List.map (fun at -> replace (Stall { pid; at; points }))
               (shrink_int at)
             @ List.filter_map
                 (fun points ->
                   if points >= 1 then
                     Some (replace (Stall { pid; at; points }))
                   else None)
                 (shrink_int points)
           | Halt_all_but { pid; at } ->
             List.map (fun at -> replace (Halt_all_but { pid; at }))
               (shrink_int at))
         plan)
  in
  drops @ numeric

let minimize ?(rounds = 1000) ~test plan =
  if not (test plan) then
    invalid_arg "Faults.minimize: test does not hold of the initial plan";
  let budget = ref rounds in
  let rec go plan =
    if !budget <= 0 then plan
    else begin
      let next =
        List.find_opt
          (fun candidate -> decr budget; test candidate)
          (shrink_candidates plan)
      in
      match next with Some smaller -> go smaller | None -> plan
    end
  in
  go plan
