(** Fault injection: crash/stall adversaries as composable fault plans.

    The paper's headline properties are progress properties — Algorithm A
    is wait-free, the f-array structures are helped along by concurrent
    operations — and such properties only show their worth when processes
    misbehave: crash mid-operation, stall for long stretches, or suffer
    spurious CAS failures.  A {!plan} describes such misbehaviour as data,
    so the same plan can drive a random stress run, a deterministic
    liveness audit, or an exhaustive exploration, and can be printed,
    parsed and minimized when a violation is found.

    Faults come in two kinds, with different composition points:

    - {b Program-level} faults ({!Crash}, {!Cas_fail}) are transformations
      of the process bodies, applied by {!instrument}: a crash truncates a
      body after a fixed number of its own events, a CAS failure replaces
      the n-th CAS by a read answered [false] (the spurious-failure
      semantics of weak compare-exchange).  Both are keyed on the
      process's {e local} step counts, so they are schedule-independent:
      an instrumented program is an ordinary program, and every scheduler
      — {!Scheduler}'s canned policies, {!Explore.run}, {!Dpor.run},
      {!Shrink} — runs it unchanged.  In particular DPOR's trace-level
      pruning remains sound: it exhaustively explores the {e faulted}
      program.

    - {b Scheduler-level} faults ({!Stall}, {!Halt_all_but}) constrain
      which process may be scheduled at each global scheduling point.
      They are applied through a {!gate} consulted by the gated runners
      (or any custom policy).  A stall does not create new executions —
      every gated execution is an execution of the unfaulted program, so
      exhaustive no-fault verification covers stalled safety; what a
      stall plan adds is the ability to audit {e per-execution} progress
      properties (step ceilings with a helper frozen) and to bias random
      search toward hostile schedules.

    A crashed process's last operation has an Invoke and no Return, so it
    is pending in the extracted history; {!Linearize.Checker} permits a
    pending operation to take effect or be dropped — exactly
    crash-restricted linearizability of the surviving history (see
    DESIGN.md §11). *)

type fault =
  | Crash of { pid : int; after : int }
      (** [pid] executes exactly [after] further shared-memory events,
          then crashes permanently (its body is truncated; events beyond
          [after] are never issued).  [after = 0] crashes it before its
          first event. *)
  | Cas_fail of { pid : int; nth : int }
      (** [pid]'s [nth] CAS (1-based, counted over its whole body)
          spuriously fails: the event is replaced by a read of the same
          object — still one step — and the operation is answered
          [false]. *)
  | Stall of { pid : int; at : int; points : int }
      (** [pid] may not be scheduled while the global scheduling point
          lies in [\[at, at + points)]. *)
  | Halt_all_but of { pid : int; at : int }
      (** From global scheduling point [at] on, only [pid] may be
          scheduled (every other process is frozen forever). *)

type plan = fault list

val pp_fault : fault Fmt.t
val pp : plan Fmt.t

val to_string : plan -> string
(** Compact replayable syntax, the inverse of {!parse}:
    [crash:PID\@AFTER], [casfail:PID#NTH], [stall:PID\@AT+POINTS],
    [haltbut:PID\@AT], comma-separated. *)

val parse : string -> (plan, string) result
(** Inverse of {!to_string}: [parse (to_string plan) = Ok plan] for
    every duplicate-free plan, preserving clause order.  Whitespace
    around numbers, kinds and commas is tolerated; a clause repeated
    verbatim is rejected with a clear error (it would silently apply
    once). *)

(** {1 Program-level composition} *)

val instrument : plan -> (int -> unit -> unit) -> int -> unit -> unit
(** [instrument plan make_body] applies the plan's {!Crash} and
    {!Cas_fail} faults to the bodies; {!Stall}/{!Halt_all_but} entries
    are ignored (gate them at the scheduler, {!gate}).  The result is an
    ordinary [make_body], usable with any scheduler or explorer. *)

val has_program_faults : plan -> bool
val has_scheduler_faults : plan -> bool

(** {1 Scheduler-level composition} *)

type gate
(** Mutable per-run gating state: tracks the global scheduling point and
    answers, for each process, whether the plan permits scheduling it
    now.  Create a fresh gate per run (or per replayed prefix). *)

val gate : plan -> gate
val point : gate -> int
(** Scheduling points elapsed (steps plus idle ticks). *)

val permits : gate -> int -> bool
(** May [pid] be scheduled at the current point? *)

val halted_forever : gate -> int -> bool
(** Is [pid] frozen at every point from the current one on (a
    {!Halt_all_but} in effect names another process)? *)

val tick : gate -> unit
(** Advance one scheduling point without a step (an idle point: every
    runnable process is gated).  The gated runners tick through stalls
    so finite stalls always expire. *)

val step : Scheduler.t -> gate -> int -> Event.t
(** [step sched gate pid] applies one step of [pid] and advances the
    gate.  Raises [Invalid_argument] if the gate does not permit [pid]
    now. *)

val permitted_pids : Scheduler.t -> gate -> int list
(** Active pids the gate permits now, ascending. *)

(** {1 Gated runners}

    Both runners advance until no active process remains, stepping only
    permitted pids; when every active process is stalled they {!tick}
    until one is released, and they stop early if every active process
    is frozen forever (a {!Halt_all_but} whose chosen process has
    finished). *)

val run_round_robin : ?max_events:int -> Scheduler.t -> gate -> unit
val run_random : ?max_events:int -> seed:int -> Scheduler.t -> gate -> unit

(** {1 Exhaustive exploration under a plan}

    Enumerates every maximal gated schedule of the instrumented program
    (program-level faults applied, scheduler-level faults gating each
    depth).  The gate state is a function of the prefix alone, so
    prefix replay is deterministic, like {!Explore.run}.  Use
    {!Dpor.run} over [instrument plan make_body] instead when the plan
    has no scheduler-level faults — same coverage, far fewer
    schedules. *)

val explore :
  ?max_schedules:int ->
  ?max_events:int ->
  Session.t ->
  n:int ->
  make_body:(int -> unit -> unit) ->
  plan:plan ->
  on_complete:(Trace.t -> bool) ->
  unit ->
  Explore.stats

(** {1 Plan enumeration and minimization} *)

val single_crash_plans : counts:int array -> plan list
(** Every 1-fault crash plan for processes whose solo step counts are
    [counts]: [Crash {pid; after}] for each pid and each
    [0 <= after < counts.(pid)].  (Crashing at or beyond the solo count
    is the empty fault.) *)

val single_stall_plans :
  n:int -> max_point:int -> points:int -> plan list
(** Every 1-fault stall plan [Stall {pid; at; points}] with
    [0 <= at <= max_point]. *)

val minimize :
  ?rounds:int -> test:(plan -> bool) -> plan -> plan
(** Greedy plan shrinking: repeatedly drop whole faults and shrink
    numeric parameters ([after]/[at]/[points]/[nth]) while [test] keeps
    holding.  [test] must hold of the initial plan ([Invalid_argument]
    otherwise).  The result is locally minimal under these moves. *)
