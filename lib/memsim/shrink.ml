(* Delta-debugging of violating schedules.

   A stress run that finds a linearizability violation hands back a
   schedule of hundreds of events; almost all of them are irrelevant to
   the bug.  [minimize] shrinks the schedule with ddmin-style window
   removal — try dropping ever-smaller windows, keeping any candidate the
   caller still classifies as violating — down to a locally-minimal
   counterexample: no single event can be removed without losing the
   violation.  Because processes are deterministic, the minimized pid list
   is a complete, replayable repro. *)

(* Replay [schedule] leniently against fresh bodies: entries whose process
   is not active (already finished, or out of range) are skipped, so
   schedules mangled by shrinking still denote executions.  Returns the
   completed trace. *)
let replay session ~n ~make_body schedule =
  Store.reset (Session.store session);
  let sched = Scheduler.create session in
  for pid = 0 to n - 1 do
    ignore (Scheduler.spawn sched (make_body pid))
  done;
  List.iter
    (fun pid ->
      if pid >= 0 && pid < n && Scheduler.is_active sched pid then
        ignore (Scheduler.step sched pid))
    schedule;
  Scheduler.finish sched

(* The effective schedule: what [replay] would actually execute. *)
let effective session ~n ~make_body schedule =
  Trace.schedule (replay session ~n ~make_body schedule)

let remove_window l i size =
  List.filteri (fun j _ -> j < i || j >= i + size) l

let minimize ?(max_tests = 10_000) ~test schedule =
  if not (test schedule) then
    invalid_arg "Shrink.minimize: the initial schedule does not satisfy test";
  let budget = ref max_tests in
  let try_ cand =
    !budget > 0
    && begin
         decr budget;
         test cand
       end
  in
  (* One left-to-right sweep removing windows of [size] events where the
     violation survives.  Greedy: a successful removal re-tries the same
     position (the window now holds fresh content). *)
  let sweep cur size =
    let cur = ref cur and i = ref 0 and changed = ref false in
    while !i < List.length !cur do
      let cand = remove_window !cur !i size in
      if List.length cand < List.length !cur && try_ cand then begin
        cur := cand;
        changed := true
      end
      else i := !i + max 1 size
    done;
    (!cur, !changed)
  in
  let rec halving cur size =
    if size <= 1 then cur
    else
      let cur', _ = sweep cur size in
      halving cur' (size / 2)
  in
  (* Single-event sweeps to a fixpoint: the result is 1-minimal. *)
  let rec fixpoint cur =
    let cur', changed = sweep cur 1 in
    if changed && !budget > 0 then fixpoint cur' else cur'
  in
  fixpoint (halving schedule (max 1 (List.length schedule / 2)))

let counterexample ?max_tests session ~n ~make_body ~check schedule =
  let test cand = not (check (replay session ~n ~make_body cand)) in
  let minimal = minimize ?max_tests ~test schedule in
  (* Normalize to the steps actually executed, so the printed repro is
     exactly the trace's schedule. *)
  let minimal = effective session ~n ~make_body minimal in
  (minimal, replay session ~n ~make_body minimal)
