(** Delta-debugging of violating schedules: shrink a counterexample found
    by stress testing or exploration down to a locally-minimal replayable
    schedule (no single event can be dropped without losing the
    violation). *)

val replay :
  Session.t -> n:int -> make_body:(int -> unit -> unit) -> int list -> Trace.t
(** Replay a schedule from the initial configuration against fresh bodies,
    {e leniently}: entries whose process is inactive or out of range are
    skipped, so schedules mangled by shrinking still denote executions.
    Returns the completed trace. *)

val effective :
  Session.t ->
  n:int ->
  make_body:(int -> unit -> unit) ->
  int list ->
  int list
(** The steps {!replay} actually executes for a schedule (lenient skips
    removed). *)

val minimize : ?max_tests:int -> test:(int list -> bool) -> int list -> int list
(** [minimize ~test schedule] returns a locally-minimal sub-schedule still
    satisfying [test] (ddmin-style window removal, then single-event
    removal to a fixpoint).  [test] must hold of [schedule] itself
    ([Invalid_argument] otherwise).  At most [max_tests] (default 10_000)
    candidate evaluations; if the budget runs out the best schedule so far
    is returned (possibly not 1-minimal). *)

val counterexample :
  ?max_tests:int ->
  Session.t ->
  n:int ->
  make_body:(int -> unit -> unit) ->
  check:(Trace.t -> bool) ->
  int list ->
  int list * Trace.t
(** [counterexample session ~n ~make_body ~check schedule] minimizes a
    schedule whose replay fails [check], returning the minimized schedule
    (normalized to exactly the steps executed) and its trace. *)
