(* Vector clocks over a fixed set of processes.

   The DPOR engine tracks the happens-before relation of an execution with
   one clock per process and per base object.  Clocks are immutable int
   arrays indexed by pid: [c.(p)] is the number of p's events known to
   happen before the point the clock describes.  An event e of process p is
   therefore identified by the pair (p, local index of e), and
   "e happens-before point c" is exactly [local index <= c.(p)]. *)

type t = int array

let bottom n = Array.make n 0

let size = Array.length

let get (c : t) p = c.(p)

(* Pointwise max; total function on clocks of equal size. *)
let join (a : t) (b : t) : t =
  if Array.length a <> Array.length b then
    invalid_arg "Vector_clock.join: size mismatch";
  Array.init (Array.length a) (fun i -> max a.(i) b.(i))

(* The clock of the point just after process [p] issues its event number
   [local] (1-based), given clock [c] of the point just before. *)
let tick (c : t) p ~local : t =
  let c' = Array.copy c in
  c'.(p) <- local;
  c'

let leq (a : t) (b : t) =
  if Array.length a <> Array.length b then
    invalid_arg "Vector_clock.leq: size mismatch";
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
  !ok

(* Does event ([pid], [local]) happen before the point described by [c]? *)
let event_leq ~pid ~local (c : t) = local <= c.(pid)

let equal (a : t) (b : t) = a = b

let pp ppf (c : t) =
  Fmt.pf ppf "⟨%a⟩" Fmt.(array ~sep:(any ",") int) c
