(** Vector clocks over a fixed set of processes, used by {!Dpor} to track
    the happens-before relation of an execution.

    A clock is an immutable array indexed by pid; [c.(p)] counts the events
    of process [p] (1-based local indices) that happen before the point the
    clock describes.  Event [(p, local)] happens before point [c] iff
    [local <= c.(p)]. *)

type t = private int array

val bottom : int -> t
(** The all-zero clock over [n] processes (nothing happens before it). *)

val size : t -> int
val get : t -> int -> int

val join : t -> t -> t
(** Pointwise maximum.  Raises [Invalid_argument] on size mismatch. *)

val tick : t -> int -> local:int -> t
(** [tick c p ~local] is the clock just after process [p] issues its event
    number [local] (1-based), given clock [c] just before it. *)

val leq : t -> t -> bool
(** Pointwise order. *)

val event_leq : pid:int -> local:int -> t -> bool
(** Does event [(pid, local)] happen before the point described by the
    clock? *)

val equal : t -> t -> bool
val pp : t Fmt.t
