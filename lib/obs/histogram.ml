(* HDR-style log-bucketed latency histograms.

   Values (nanoseconds, non-negative ints) are binned exactly below
   [sub_count] and logarithmically above: each power-of-two octave is split
   into [sub_count] linear sub-buckets, so the relative quantization error
   is bounded by 1/sub_count (~3%) at every magnitude — constant memory
   (a few KB) over the whole int range, which is what makes per-worker
   recording and post-run merging cheap.

   A histogram is single-writer (one bench worker records into its own);
   [merge_into] combines them after the workers have been joined, so no
   field needs to be atomic.  Exact count/sum/min/max are tracked alongside
   the buckets; percentiles are interpolated from bucket midpoints and
   clamped to the exact [min, max]. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits  (* 32 sub-buckets per octave *)

(* Octaves for values with top bit 5 .. 62 (OCaml ints), plus the exact
   range [0, 32). *)
let n_buckets = sub_count + ((62 - sub_bits) * sub_count)

let msb v =
  let rec go v acc = if v < 2 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_of_value v =
  let v = if v < 0 then 0 else v in
  if v < sub_count then v
  else
    let o = msb v in
    let sub = (v lsr (o - sub_bits)) - sub_count in
    min (n_buckets - 1) (sub_count + (((o - sub_bits) * sub_count) + sub))

(* Inclusive lower bound of a bucket. *)
let value_of_bucket b =
  if b < sub_count then b
  else
    let o = sub_bits + ((b - sub_count) / sub_count) in
    let sub = (b - sub_count) mod sub_count in
    (sub_count + sub) lsl (o - sub_bits)

let bucket_width b =
  if b < sub_count then 1 else 1 lsl ((sub_bits + ((b - sub_count) / sub_count)) - sub_bits)

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { counts = Array.make n_buckets 0;
    count = 0;
    sum = 0;
    min_v = max_int;
    max_v = 0 }

let record t v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of_value v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count

let merge_into ~dst src =
  for b = 0 to n_buckets - 1 do
    dst.counts.(b) <- dst.counts.(b) + src.counts.(b)
  done;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum + src.sum;
  if src.min_v < dst.min_v then dst.min_v <- src.min_v;
  if src.max_v > dst.max_v then dst.max_v <- src.max_v

let merge a b =
  let t = create () in
  merge_into ~dst:t a;
  merge_into ~dst:t b;
  t

let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then nan else float_of_int t.sum /. float_of_int t.count

(* Value at the given percentile: the midpoint of the bucket containing
   the rank-[ceil (p/100 * count)] sample, clamped to the exact extremes
   (so percentile 0 is [min_value] and 100 is [max_value] exactly, and a
   single-sample histogram reports the sample itself at every p, never a
   bucket bound below it).  Empty histograms report 0 — the same
   degenerate value [min_value]/[max_value] report — rather than nan,
   which would poison downstream JSON rendering and comparisons.  A nan
   [p] clamps to 0 instead of propagating. *)
let percentile t p =
  if t.count = 0 then 0.
  else begin
    let p = if p >= 0. && p <= 100. then p else if p > 100. then 100. else 0. in
    let rank =
      Float.to_int (Float.round (p /. 100. *. float_of_int t.count)) |> max 1
    in
    let rec find b acc =
      if b >= n_buckets then t.max_v
      else
        let acc = acc + t.counts.(b) in
        if acc >= rank then
          value_of_bucket b + (bucket_width b / 2)
        else find (b + 1) acc
    in
    let v = find 0 0 in
    float_of_int (max t.min_v (min t.max_v v))
  end

let pp ppf t =
  if t.count = 0 then Fmt.string ppf "empty"
  else
    Fmt.pf ppf "n=%d p50=%.0f p95=%.0f p99=%.0f max=%d"
      t.count (percentile t 50.) (percentile t 95.) (percentile t 99.)
      t.max_v
