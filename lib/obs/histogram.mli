(** Mergeable HDR-style log-bucketed histograms (for per-op latencies in
    nanoseconds, or any non-negative int sample).

    Values below 32 are binned exactly; above, every power-of-two octave
    is split into 32 linear sub-buckets, bounding relative quantization
    error by ~3% at every magnitude with constant (few-KB) memory.

    A histogram is single-writer: each bench worker records into its own
    and the results are merged after the workers are joined — no field is
    atomic. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Record one sample (negative samples clamp to 0). *)

val count : t -> int

val merge_into : dst:t -> t -> unit
val merge : t -> t -> t
(** Pure merge; commutative and associative (qcheck-tested). *)

val min_value : t -> int
(** Exact; 0 when empty. *)

val max_value : t -> int
(** Exact; 0 when empty. *)

val mean : t -> float
(** Exact (from the tracked sum); nan when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0, 100]: midpoint of the bucket holding
    the rank-[p] sample, clamped to the exact extremes — so a
    single-sample histogram reports the sample itself at every [p], and
    [percentile t 0] / [percentile t 100] are exactly {!min_value} /
    {!max_value}.  0 when empty (the degenerate value the exact extremes
    report), never nan; out-of-range or nan [p] clamps.  Monotone in
    [p]. *)

val pp : t Fmt.t

(** {1 Bucket geometry (exposed for tests)} *)

val n_buckets : int
val bucket_of_value : int -> int

val value_of_bucket : int -> int
(** Inclusive lower bound of a bucket. *)

val bucket_width : int -> int
