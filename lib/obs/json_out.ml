(* A minimal JSON value, printer and parser — enough for BENCH_NATIVE.json
   and Chrome trace export without pulling a JSON dependency into the
   sealed container.  Strings are escaped per RFC 8259; non-finite floats
   become [null] (JSON has no representation for them).

   Floats print in shortest round-trip form: try successively wider %g
   conversions until [float_of_string] recovers the exact value (17
   significant digits always suffice for a binary64).  The previous fixed
   "%.6g" silently lost precision on large op counts and epoch-like
   values, so a parse -> reprint cycle did not preserve them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest representation that parses back to the same binary64. *)
let float_repr f =
  let s = Printf.sprintf "%.15g" f in
  if float_of_string s = f then s
  else
    let s = Printf.sprintf "%.16g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf ~indent ~level v =
  let pad n = String.make (n * indent) ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_repr f)
    else Buffer.add_string buf "null"
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (level + 1));
        write buf ~indent ~level:(level + 1) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad level);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (level + 1));
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        write buf ~indent ~level:(level + 1) item)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad level);
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  write buf ~indent:2 ~level:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string v))

(* {1 Parsing}

   A small recursive-descent parser, used by the round-trip tests and the
   schema validators; accepts exactly RFC 8259 JSON (with the usual
   permissive whitespace). *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (pos := !pos + l; v)
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code =
             try int_of_string ("0x" ^ hex)
             with _ -> fail "bad \\u escape"
           in
           (* Only the control-character escapes we emit need exactness;
              other code points round-trip as '?' placeholders. *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else Buffer.add_char buf '?'
         | _ -> fail "bad escape");
        go ()
      end
      else begin Buffer.add_char buf c; go () end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); List [])
      else
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* {1 Accessors (for validators and tests)} *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let as_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let as_list = function List l -> Some l | _ -> None
let as_string = function Str s -> Some s | _ -> None
let as_int = function Int i -> Some i | _ -> None
