(** Minimal JSON: a value type, a printer and a parser, with no external
    dependency.

    Floats print in shortest round-trip form (successively wider [%g]
    until [float_of_string] recovers the exact binary64), so emitted
    documents survive a parse -> reprint cycle without losing precision;
    non-finite floats become [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_file : string -> t -> unit

val float_repr : float -> string
(** Shortest decimal string that parses back to the same binary64. *)

val escape : string -> string
(** RFC 8259 string-content escaping (no surrounding quotes). *)

exception Parse_error of string

val parse : string -> t
(** Parse RFC 8259 JSON; raises {!Parse_error}.  Numbers parse as [Int]
    when they are exact OCaml ints, [Float] otherwise.  Non-ASCII [\u]
    escapes (which the printer never emits) decode as ['?']. *)

(** {1 Accessors} *)

val member : string -> t -> t option
val as_float : t -> float option
val as_list : t -> t list option
val as_string : t -> string option
val as_int : t -> int option
