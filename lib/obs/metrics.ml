(* Per-domain sharded contention counters.

   The paper's cost model is exact step counts; on hardware the analogous
   observables are how often the steps *fail or repeat*: CAS attempts vs
   failures, propagate refresh rounds, helping events.  Aggregate Mops/s
   hides all of that, which is exactly the write-contention behaviour the
   bounded-write-contention lower bounds reason about.

   Layout: one padded [int Atomic.t] cell per (domain, counter) pair, so a
   recording domain touches only lines it owns — instrumentation must not
   itself create the cache-line traffic it is trying to observe.  Each cell
   is single-writer (its domain), so recording is a plain read + write of
   the atomic, not an RMW; [merged] sums the shards with atomic reads
   (merge-on-read, no coordination with writers).

   The no-op mode is a handle with [enabled = false] and no shards: every
   record call is one immediate-bool test and branch, no allocation, no
   shared-memory traffic.  [test/test_obs.ml] pins the zero-allocation
   claim with a [Gc.minor_words] delta and CI runs an overhead guard. *)

type counter =
  | Cas_attempt
  | Cas_failure
  | Refresh_round
  | Help
  | Op_read
  | Op_update
  | Fault_yield
  | Fault_gc
  | Fault_stall
  | Combined_op
  | Batch
  | Batch_max
  | Elimination
  | Combiner_lock

let n_counters = 14

let counter_index = function
  | Cas_attempt -> 0
  | Cas_failure -> 1
  | Refresh_round -> 2
  | Help -> 3
  | Op_read -> 4
  | Op_update -> 5
  | Fault_yield -> 6
  | Fault_gc -> 7
  | Fault_stall -> 8
  | Combined_op -> 9
  | Batch -> 10
  | Batch_max -> 11
  | Elimination -> 12
  | Combiner_lock -> 13

let counter_name = function
  | Cas_attempt -> "cas_attempts"
  | Cas_failure -> "cas_failures"
  | Refresh_round -> "refresh_rounds"
  | Help -> "helps"
  | Op_read -> "op_reads"
  | Op_update -> "op_updates"
  | Fault_yield -> "fault_yields"
  | Fault_gc -> "fault_gcs"
  | Fault_stall -> "fault_stalls"
  | Combined_op -> "combined_ops"
  | Batch -> "batches"
  | Batch_max -> "batch_max"
  | Elimination -> "eliminations"
  | Combiner_lock -> "combiner_locks"

let all_counters =
  [ Cas_attempt; Cas_failure; Refresh_round; Help; Op_read; Op_update;
    Fault_yield; Fault_gc; Fault_stall; Combined_op; Batch; Batch_max;
    Elimination; Combiner_lock ]

type t = {
  enabled : bool;
  mask : int;  (* shard count - 1; shard count is a power of two *)
  shards : int Atomic.t array array;  (* shards.(domain).(counter) *)
}

let rec pow2_at_least k n = if k >= n then k else pow2_at_least (2 * k) n

let create ?(enabled = true) ~domains () =
  if domains <= 0 then invalid_arg "Metrics.create: domains must be > 0";
  let n = pow2_at_least 1 domains in
  { enabled;
    mask = n - 1;
    shards =
      Array.init n (fun _ ->
          Array.init n_counters (fun _ -> Smem.Unboxed_memory.Padded.make 0)) }

(* The shared no-op handle: no shards are ever touched because [enabled]
   is checked first.  Sharing one handle keeps "metrics off" free of even
   the construction cost. *)
let disabled = { enabled = false; mask = 0; shards = [||] }

let enabled t = t.enabled

(* Single-writer per shard: a plain load + store on the atomic, not an
   RMW.  [domain land mask] tolerates pids beyond the shard count (they
   fold onto existing shards; totals stay exact). *)
let add t ~domain c n =
  if t.enabled then begin
    let cell = t.shards.(domain land t.mask).(counter_index c) in
    Atomic.set cell (Atomic.get cell + n)
  end

let incr t ~domain c = add t ~domain c 1

(* Max-merge recording, for high-watermark counters ([Batch_max]): the
   shard keeps the largest value recorded by its domain, and [totals]
   takes the max (not the sum) across shards.  Same single-writer
   plain-load-plus-store discipline as [add]. *)
let set_max t ~domain c v =
  if t.enabled then begin
    let cell = t.shards.(domain land t.mask).(counter_index c) in
    if v > Atomic.get cell then Atomic.set cell v
  end

type totals = {
  cas_attempts : int;
  cas_failures : int;
  refresh_rounds : int;
  helps : int;
  op_reads : int;
  op_updates : int;
  fault_yields : int;
  fault_gcs : int;
  fault_stalls : int;
  combined_ops : int;
  batches : int;
  batch_max : int;
  eliminations : int;
  combiner_locks : int;
}

let zero_totals =
  { cas_attempts = 0; cas_failures = 0; refresh_rounds = 0; helps = 0;
    op_reads = 0; op_updates = 0; fault_yields = 0; fault_gcs = 0;
    fault_stalls = 0; combined_ops = 0; batches = 0; batch_max = 0;
    eliminations = 0; combiner_locks = 0 }

let sum t c =
  let i = counter_index c in
  Array.fold_left (fun acc row -> acc + Atomic.get row.(i)) 0 t.shards

(* [Batch_max] shards hold per-domain high watermarks ({!set_max}):
   merging is a max, not a sum. *)
let max_shard t c =
  let i = counter_index c in
  Array.fold_left (fun acc row -> max acc (Atomic.get row.(i))) 0 t.shards

let totals t =
  if not t.enabled then zero_totals
  else
    { cas_attempts = sum t Cas_attempt;
      cas_failures = sum t Cas_failure;
      refresh_rounds = sum t Refresh_round;
      helps = sum t Help;
      op_reads = sum t Op_read;
      op_updates = sum t Op_update;
      fault_yields = sum t Fault_yield;
      fault_gcs = sum t Fault_gc;
      fault_stalls = sum t Fault_stall;
      combined_ops = sum t Combined_op;
      batches = sum t Batch;
      batch_max = max_shard t Batch_max;
      eliminations = sum t Elimination;
      combiner_locks = sum t Combiner_lock }

let total_of totals = function
  | Cas_attempt -> totals.cas_attempts
  | Cas_failure -> totals.cas_failures
  | Refresh_round -> totals.refresh_rounds
  | Help -> totals.helps
  | Op_read -> totals.op_reads
  | Op_update -> totals.op_updates
  | Fault_yield -> totals.fault_yields
  | Fault_gc -> totals.fault_gcs
  | Fault_stall -> totals.fault_stalls
  | Combined_op -> totals.combined_ops
  | Batch -> totals.batches
  | Batch_max -> totals.batch_max
  | Elimination -> totals.eliminations
  | Combiner_lock -> totals.combiner_locks

let reset t =
  Array.iter (fun row -> Array.iter (fun c -> Atomic.set c 0) row) t.shards

let cas_failure_rate totals =
  if totals.cas_attempts = 0 then 0.
  else float_of_int totals.cas_failures /. float_of_int totals.cas_attempts

let pp_totals ppf t =
  Fmt.pf ppf "cas=%d/%d (%.1f%% failed) refreshes=%d helps=%d ops=%dr/%du"
    t.cas_failures t.cas_attempts
    (100. *. cas_failure_rate t)
    t.refresh_rounds t.helps t.op_reads t.op_updates;
  if t.fault_yields + t.fault_gcs + t.fault_stalls > 0 then
    Fmt.pf ppf " faults=%dy/%dg/%ds" t.fault_yields t.fault_gcs t.fault_stalls;
  if t.combiner_locks + t.eliminations > 0 then
    Fmt.pf ppf " combining=%d ops/%d batches (max %d) elims=%d locks=%d"
      t.combined_ops t.batches t.batch_max t.eliminations t.combiner_locks

(* Flush a combining arena's merged stats ({!Smem.Combine.stats}) into
   this handle under one shard.  The arena keeps its own per-domain
   cells because smem sits below obs in the dependency order; callers
   (bench metrics pass, chaos soak) bridge the two here, once per run —
   never per op. *)
let record_combine_stats t ~domain (s : Smem.Combine.stats) =
  add t ~domain Combined_op s.combined_ops;
  add t ~domain Batch s.batches;
  set_max t ~domain Batch_max s.batch_max;
  add t ~domain Elimination s.eliminations;
  add t ~domain Combiner_lock s.lock_acquisitions
