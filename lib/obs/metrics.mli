(** Per-domain sharded, cache-padded contention counters with a
    merge-on-read API and a free no-op mode.

    Recording writes only a padded cell owned by the recording domain (a
    plain load + store of a single-writer atomic, never an RMW), so the
    instrumentation does not create the cache-line contention it
    measures.  With the {!disabled} handle, every record call is one
    immediate-bool test: zero allocation, zero shared-memory traffic —
    pinned by a [Gc.minor_words] test and a CI overhead guard. *)

type counter =
  | Cas_attempt     (** CAS issued (refresh, retry loop, ...) *)
  | Cas_failure     (** CAS that returned [false] *)
  | Refresh_round   (** one refresh of one tree node during propagate *)
  | Help            (** operation completed by helping another's write *)
  | Op_read         (** high-level read operation *)
  | Op_update       (** high-level update operation *)
  | Fault_yield     (** injected preemption (yield/cpu_relax storm) *)
  | Fault_gc        (** injected GC pressure event *)
  | Fault_stall     (** injected domain stall *)
  | Combined_op     (** op applied as part of a combined batch (size >= 2) *)
  | Batch           (** combiner drain that applied >= 2 ops at once *)
  | Batch_max       (** largest single batch — max-merged, see {!set_max} *)
  | Elimination     (** op completed locally with zero shared writes *)
  | Combiner_lock   (** combiner-lock acquisition *)

val all_counters : counter list
val counter_name : counter -> string

type t = private {
  enabled : bool;
  mask : int;
  shards : int Atomic.t array array;
}
(** Exposed as [private] for one reason only: without flambda a
    cross-library call to {!incr} cannot be inlined, so even the
    disabled handle would pay a function call per record site.  Hot
    record sites guard with [if metrics.enabled then ...] — an inlined
    field load — and only pay the call when recording is live.  Treat
    every field as an implementation detail; construct via {!create} /
    {!disabled} only. *)

val create : ?enabled:bool -> domains:int -> unit -> t
(** A handle with one padded shard per domain (rounded up to a power of
    two; domain indices beyond that fold onto existing shards). *)

val disabled : t
(** The shared no-op handle: {!incr}/{!add} test one immediate bool and
    return.  Use it as the default metrics argument of instrumented
    operations. *)

val enabled : t -> bool

val incr : t -> domain:int -> counter -> unit
val add : t -> domain:int -> counter -> int -> unit

val set_max : t -> domain:int -> counter -> int -> unit
(** Max-merge recording for high-watermark counters ([Batch_max]): the
    domain's shard keeps the largest recorded value, and {!totals}
    merges those with max rather than sum.  Same single-writer plain
    load + store as {!add}. *)

val record_combine_stats : t -> domain:int -> Smem.Combine.stats -> unit
(** Flush a flat-combining arena's merged stats into this handle under
    shard [domain] ([combined_ops]/[batches]/[batch_max]/[eliminations]/
    [combiner_locks]).  Call once per measurement run, not per op: the
    arena keeps its own padded per-domain cells (smem sits below obs). *)

(** {1 Merge-on-read} *)

type totals = {
  cas_attempts : int;
  cas_failures : int;
  refresh_rounds : int;
  helps : int;
  op_reads : int;
  op_updates : int;
  fault_yields : int;
  fault_gcs : int;
  fault_stalls : int;
  combined_ops : int;
  batches : int;
  batch_max : int;   (** max across shards, not a sum *)
  eliminations : int;
  combiner_locks : int;
}

val zero_totals : totals

val totals : t -> totals
(** Sum over all shards, with atomic reads; safe concurrently with
    recording (a snapshot at least as fresh as every completed record). *)

val total_of : totals -> counter -> int
val cas_failure_rate : totals -> float
(** [cas_failures / cas_attempts], 0 when no attempts. *)

val reset : t -> unit

val pp_totals : totals Fmt.t
