(* Chrome trace_event export for simulator executions.

   A [Memsim.Trace.t] is logical time: an interleaved sequence of
   shared-memory events and operation boundaries.  Mapping it onto the
   Chrome trace_event JSON format (the one chrome://tracing and Perfetto
   load) makes adversarial constructions, DPOR counterexamples and
   minimized stress failures visually inspectable:

   - each simulated process becomes a named thread ([tid] = pid);
   - each shared-memory event becomes a complete ("ph":"X") slice of one
     logical microsecond at its position in the interleaving, carrying the
     primitive, operands, response and before/after object values as args;
   - each high-level operation becomes a "B"/"E" duration pair, so writes
     stretched by the adversary show as long slices over the individual
     steps they were forced to take.

   Timestamps are entry indices (logical time, microseconds in the trace
   format), hence strictly monotone — Perfetto needs nothing more. *)

open Memsim

let simval_json (v : Simval.t) : Json_out.t =
  match v with
  | Simval.Bot -> Json_out.Str "⊥"
  | Simval.Int i -> Json_out.Int i
  | Simval.Vec _ -> Json_out.Str (Simval.to_string v)

let prim_label (p : Event.prim) =
  match p with
  | Event.Read -> "read"
  | Event.Write _ -> "write"
  | Event.Cas _ -> "cas"

let response_json (r : Event.response) : Json_out.t =
  match r with
  | Event.RVal v -> simval_json v
  | Event.RAck -> Json_out.Str "ack"
  | Event.RBool b -> Json_out.Bool b

let process_id = 1

let mem_event ~ts (e : Event.t) : Json_out.t =
  let prim_args =
    match e.prim with
    | Event.Read -> []
    | Event.Write v -> [ ("value", simval_json v) ]
    | Event.Cas { expected; desired } ->
      [ ("expected", simval_json expected); ("desired", simval_json desired) ]
  in
  Json_out.Obj
    [ ("name", Json_out.Str (Printf.sprintf "%s.%s" e.obj_name (prim_label e.prim)));
      ("cat", Json_out.Str "mem");
      ("ph", Json_out.Str "X");
      ("ts", Json_out.Int ts);
      ("dur", Json_out.Int 1);
      ("pid", Json_out.Int process_id);
      ("tid", Json_out.Int e.pid);
      ( "args",
        Json_out.Obj
          (( "seq", Json_out.Int e.seq )
           :: ("obj", Json_out.Str e.obj_name)
           :: prim_args
           @ [ ("response", response_json e.response);
               ("before", simval_json e.before);
               ("after", simval_json e.after);
               ("changed_value", Json_out.Bool (Event.changed_value e)) ]) ) ]

let op_boundary ~ts ~ph ~pid ~op args : Json_out.t =
  Json_out.Obj
    [ ("name", Json_out.Str op);
      ("cat", Json_out.Str "op");
      ("ph", Json_out.Str ph);
      ("ts", Json_out.Int ts);
      ("pid", Json_out.Int process_id);
      ("tid", Json_out.Int pid);
      ("args", Json_out.Obj args) ]

let thread_name ~pid : Json_out.t =
  Json_out.Obj
    [ ("name", Json_out.Str "thread_name");
      ("ph", Json_out.Str "M");
      ("pid", Json_out.Int process_id);
      ("tid", Json_out.Int pid);
      ("args", Json_out.Obj [ ("name", Json_out.Str (Printf.sprintf "p%d" pid)) ]) ]

let chrome_json ?(name = "memsim") (trace : Trace.t) : Json_out.t =
  let entries = Trace.entries trace in
  (* Operations still open at the end of the execution (erased processes,
     truncated schedules) need their "E" closed or Perfetto reports
     unbalanced slices; close them all at the final timestamp. *)
  let open_ops = Hashtbl.create 8 in
  let events =
    List.concat
      (List.mapi
         (fun ts entry ->
           match entry with
           | Trace.Mem e -> [ mem_event ~ts e ]
           | Trace.Invoke { pid; op; arg } ->
             Hashtbl.replace open_ops pid
               (op :: (Option.value ~default:[] (Hashtbl.find_opt open_ops pid)));
             [ op_boundary ~ts ~ph:"B" ~pid ~op [ ("arg", simval_json arg) ] ]
           | Trace.Return { pid; op; result } ->
             (match Hashtbl.find_opt open_ops pid with
              | Some (_ :: rest) -> Hashtbl.replace open_ops pid rest
              | Some [] | None -> ());
             [ op_boundary ~ts ~ph:"E" ~pid ~op [ ("result", simval_json result) ] ])
         (Array.to_list entries))
  in
  let final_ts = Array.length entries in
  let closers =
    Hashtbl.fold
      (fun pid ops acc ->
        List.map
          (fun op -> op_boundary ~ts:final_ts ~ph:"E" ~pid ~op [])
          ops
        @ acc)
      open_ops []
  in
  let names =
    List.map (fun pid -> thread_name ~pid) (Trace.pids trace)
  in
  Json_out.Obj
    [ ("traceEvents", Json_out.List (names @ events @ closers));
      ("displayTimeUnit", Json_out.Str "ms");
      ( "otherData",
        Json_out.Obj
          [ ("source", Json_out.Str name);
            ("time_unit", Json_out.Str "logical (1 us = 1 trace entry)") ] ) ]

let to_string ?name trace = Json_out.to_string (chrome_json ?name trace)

let to_file ?name path trace = Json_out.to_file path (chrome_json ?name trace)
