(** Chrome [trace_event] JSON export of simulator executions, loadable in
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}.

    Each simulated process becomes a named thread; each shared-memory
    event a one-logical-microsecond complete slice carrying primitive,
    operands, response and before/after values; each high-level operation
    a "B"/"E" duration pair (operations left open by erasure or
    truncation are closed at the final timestamp, so the stream is always
    balanced).  Timestamps are entry indices — strictly monotone. *)

val chrome_json : ?name:string -> Memsim.Trace.t -> Json_out.t
(** The full [{"traceEvents": [...], ...}] document.  [name] labels the
    source in the document metadata. *)

val to_string : ?name:string -> Memsim.Trace.t -> string
val to_file : ?name:string -> string -> Memsim.Trace.t -> unit
