(* Native MEMORY over OCaml 5 atomics, for Domain-parallel execution.
   See the .mli for the physical-CAS/ABA argument. *)

type t = { cell : Memsim.Simval.t Atomic.t; label : string option }

let make ?name init = { cell = Atomic.make init; label = name }

let label t = t.label

let read t = Atomic.get t.cell

let write t v = Atomic.set t.cell v

let cas t ~expected ~desired = Atomic.compare_and_set t.cell expected desired
