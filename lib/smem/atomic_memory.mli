(** Native base objects over OCaml 5 [Atomic], for Domain-parallel runs.

    CAS uses physical equality ([Atomic.compare_and_set]) while the model's
    CAS compares values.  The two coincide for every algorithm in this
    repository because they only ever CAS with an [expected] value obtained
    from a prior read of the same object: Simval boxes are immutable, and
    node values are monotone (maxima, sums, sequence-stamped segments) so a
    structurally-equal-but-physically-distinct box can never reappear at
    the same object — the ABA case physical CAS would misjudge cannot
    arise.

    For int-valued hot paths prefer {!Unboxed_memory}, which skips the box
    entirely. *)

include Memory_intf.MEMORY

val label : t -> string option
(** The [?name] the object was allocated with, as a debug label (the
    simulator backend uses names to key its store; here they are carried
    for diagnostics only). *)
