(* Flat combining over semantically combinable operations.

   The paper's tradeoff makes updates the expensive side (Ω-log-ish cost
   so reads stay O(1)); but both WriteMax and Increment are *combinable*:
   n concurrent WriteMax(v_i) are equivalent to one WriteMax(max v_i),
   and n Increments to one Add n.  This module is the generic engine:

   - one cache-padded publication slot per domain (an op is an immediate
     int; [empty] = min_int is "no pending op");
   - a CAS-acquired combiner lock.  The acquirer applies its own op
     combined with every pending slot in ONE call of [apply] (for the
     tree structures: one leaf write + one propagation for the whole
     batch), then clears the drained slots and releases;
   - waiters spin on their own slot (an owned padded line) with a
     bounded cpu_relax budget, then fall back to [Unix.sleepf] — on an
     oversubscribed host a pure spin would burn the very timeslice the
     combiner needs to run;
   - [domains = 1] bypasses the arena entirely: a single participating
     domain cannot contend, so [submit] degenerates to one branch plus
     the [apply] call (the single-domain rows of bin/bench.exe must not
     pay for machinery they cannot use).

   The linearizability argument (DESIGN.md §12) hinges on one ordering:
   a slot is cleared only AFTER the combined op has been applied, and a
   waiter returns only once its slot reads [empty].  The waiter's op
   therefore linearizes at the combiner's apply point, where an op that
   subsumes it (max ≥ its value / sum including its increment) took
   effect.

   Stats are per-domain single-writer padded cells (same discipline as
   Obs.Metrics shards: plain load + store, never an RMW), merged on
   read.  The lock-held counters (locks, batches, combined, batch_max)
   are Atomic cells — their cost hides behind the lock CAS they follow.
   Elimination tallies are the one stat recorded on the LOCK-FREE fast
   path: an [Atomic.set] there is a seq_cst store whose fence would tax
   the very operations elimination exists to make free, so they live in
   a plain int array at cache-line stride (one single-writer cell per
   domain, no RMW, no fence).  Plain cells are exact at quiescence —
   [Domain.join] orders the writers' stores before the reader's loads —
   which is the only time this repo reads them (bench after workers
   join, tests and chaos soaks after runs complete); a concurrent
   [stats] call may observe a slightly stale elimination count, nothing
   worse. *)

type t = {
  domains : int;
  combine : int -> int -> int;
  spin : int;  (* cpu_relax rounds between lock attempts before sleeping *)
  sleep : float -> unit;  (* Unix.sleepf, or a scripted clock in tests *)
  backoff : float array;  (* park sleep schedule: yield_s doubling to the cap *)
  slots : int Atomic.t array;  (* padded; [empty] = no pending op *)
  lock : int Atomic.t;  (* padded; 0 free, 1 held *)
  (* per-domain single-writer stat cells, all padded *)
  s_locks : int Atomic.t array;
  s_batches : int Atomic.t array;
  s_combined : int Atomic.t array;
  s_batch_max : int Atomic.t array;
  s_elims : int array;  (* plain, strided: fast-path tally, see above *)
}

let empty = Unboxed_memory.bot

(* One publication slot per domain and a bitmask over them: 62 is the
   immediate-int bit budget (the checker's burst bound happens to agree). *)
let max_domains = 62

(* 16 immediates = 128 bytes between elimination cells: two full cache
   lines on common hardware, so adjacent domains' tallies never share
   a line. *)
let elim_stride = 16

(* Park sleeps double from [yield_s] up to [yield_s * 2^backoff_doublings]
   (default 50µs .. 3.2ms): a waiter parked across many combiner rounds
   stops hammering the scheduler, while the cap keeps wakeup latency
   bounded once the combiner finally runs.  Precomputed at create so the
   parked loop does no float arithmetic (R3 keeps it allocation-free). *)
let backoff_doublings = 6

let create ?(spin = 256) ?(yield_s = 0.00005) ?(sleep = Unix.sleepf) ~domains
    ~combine () =
  if domains <= 0 || domains > max_domains then
    invalid_arg "Combine.create: domains out of [1, 62]";
  if spin < 0 then invalid_arg "Combine.create: negative spin";
  if not (yield_s > 0.) then
    invalid_arg "Combine.create: non-positive yield_s";
  let cells n = Array.init n (fun _ -> Unboxed_memory.Padded.make 0) in
  { domains;
    combine;
    spin;
    sleep;
    backoff =
      Array.init (backoff_doublings + 1) (fun i ->
          yield_s *. float_of_int (1 lsl i));
    slots = Array.init domains (fun _ -> Unboxed_memory.Padded.make empty);
    lock = Unboxed_memory.Padded.make 0;
    s_locks = cells domains;
    s_batches = cells domains;
    s_combined = cells domains;
    s_batch_max = cells domains;
    s_elims = Array.make (domains * elim_stride) 0 }

let domains t = t.domains

(* Single-writer bumps: plain load + store on an owned padded cell. *)
let bump cell n = Atomic.set cell (Atomic.get cell + n)
let bump_max cell v = if v > Atomic.get cell then Atomic.set cell v

(* Fast-path tally: plain load + store on the domain's own strided
   cell — no fence, no RMW (see the header note on why not Atomic). *)
let record_elimination t ~domain =
  if domain < 0 || domain >= t.domains then
    invalid_arg "Combine.record_elimination: bad domain";
  let i = domain * elim_stride in
  Array.unsafe_set t.s_elims i (Array.unsafe_get t.s_elims i + 1)

(* The drain helpers are top-level self-recursive functions over int
   accumulators: a local [let rec] would close over [t]/[mask] in a fresh
   block per call (no flambda), and any tuple return would allocate —
   both would fail the Gc zero-allocation guard in test_combining.ml. *)

let rec scan_mask t i acc =
  if i >= t.domains then acc
  else
    scan_mask t (i + 1)
      (if Atomic.get (Array.unsafe_get t.slots i) <> empty then
         acc lor (1 lsl i)
       else acc)

(* Slots selected by [mask] are stable: their owners are parked until the
   combiner clears them, so reading them again here is race-free. *)
let rec gather t i mask acc =
  if i >= t.domains then acc
  else
    let acc =
      if mask land (1 lsl i) <> 0 then begin
        let v = Atomic.get (Array.unsafe_get t.slots i) in
        if acc = empty then v else t.combine acc v
      end
      else acc
    in
    gather t (i + 1) mask acc

let rec clear_slots t i mask =
  if i < t.domains then begin
    if mask land (1 lsl i) <> 0 then
      Atomic.set (Array.unsafe_get t.slots i) empty;
    clear_slots t (i + 1) mask
  end

let rec popcount m acc = if m = 0 then acc else popcount (m lsr 1) (acc + (m land 1))

(* Called with the lock held.  [own] is the combiner's not-yet-published
   op ([empty] when its op sits in the slots like everyone else's).  The
   clear MUST follow the apply: an empty slot is the waiters' completion
   signal. *)
let apply_batch t ~domain ~apply ~mask ~own =
  let combined = gather t 0 mask own in
  apply domain combined;
  clear_slots t 0 mask;
  let k = popcount mask 0 + if own <> empty then 1 else 0 in
  if k >= 2 then begin
    bump (Array.unsafe_get t.s_batches domain) 1;
    bump (Array.unsafe_get t.s_combined domain) k;
    bump_max (Array.unsafe_get t.s_batch_max domain) k
  end

(* Park on the own (published) slot: an empty read means a combiner
   applied us.  Between lock attempts, spin [t.spin] rounds once, then
   sleep with capped exponential backoff — on a 1-core host the sleep is
   what lets the combiner run at all.  [spins] is NOT reset after a
   sleep: the spin budget is a one-time grace before the first park, and
   a long-parked waiter re-burning it between every sleep would spend
   its whole timeslice in cpu_relax exactly when the host is most
   oversubscribed.  Each sleep re-checks the slot and the lock first, so
   backoff never delays a waiter whose op is already applied, nor one
   that can become the combiner itself. *)
let rec wait_or_combine t ~domain ~apply spins park =
  if Atomic.get (Array.unsafe_get t.slots domain) = empty then ()
  else if Atomic.get t.lock = 0 && Atomic.compare_and_set t.lock 0 1 then begin
    bump (Array.unsafe_get t.s_locks domain) 1;
    (* the emptiness check raced the acquire: a combiner may have
       applied us in between *)
    if Atomic.get (Array.unsafe_get t.slots domain) <> empty then
      apply_batch t ~domain ~apply ~mask:(scan_mask t 0 0) ~own:empty;
    Atomic.set t.lock 0
  end
  else if spins >= t.spin then begin
    t.sleep (Array.unsafe_get t.backoff park);
    wait_or_combine t ~domain ~apply spins
      (if park + 1 < Array.length t.backoff then park + 1 else park)
  end
  else begin
    Domain.cpu_relax ();
    wait_or_combine t ~domain ~apply (spins + 1) park
  end

let submit t ~domain ~apply op =
  if domain < 0 || domain >= t.domains then
    invalid_arg "Combine.submit: bad domain";
  if op = empty then invalid_arg "Combine.submit: op is the empty sentinel";
  if t.domains = 1 then apply domain op
  else if Atomic.get t.lock = 0 && Atomic.compare_and_set t.lock 0 1 then begin
    (* combiner path without publishing: the common uncontended case is
       one lock CAS, the [apply], a slot scan of owned lines, one
       release store *)
    bump (Array.unsafe_get t.s_locks domain) 1;
    apply_batch t ~domain ~apply ~mask:(scan_mask t 0 0) ~own:op;
    Atomic.set t.lock 0
  end
  else begin
    Atomic.set (Array.unsafe_get t.slots domain) op;
    wait_or_combine t ~domain ~apply 0 0
  end

(* {1 Merge-on-read stats} *)

type stats = {
  lock_acquisitions : int;
  batches : int;
  combined_ops : int;
  batch_max : int;
  eliminations : int;
}

let zero_stats =
  { lock_acquisitions = 0;
    batches = 0;
    combined_ops = 0;
    batch_max = 0;
    eliminations = 0 }

let sum_cells cells = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 cells

let max_cells cells =
  Array.fold_left (fun acc c -> max acc (Atomic.get c)) 0 cells

let sum_elims t =
  let acc = ref 0 in
  for d = 0 to t.domains - 1 do
    acc := !acc + t.s_elims.(d * elim_stride)
  done;
  !acc

let stats t =
  { lock_acquisitions = sum_cells t.s_locks;
    batches = sum_cells t.s_batches;
    combined_ops = sum_cells t.s_combined;
    batch_max = max_cells t.s_batch_max;
    eliminations = sum_elims t }

let reset_stats t =
  let zero cells = Array.iter (fun c -> Atomic.set c 0) cells in
  zero t.s_locks;
  zero t.s_batches;
  zero t.s_combined;
  zero t.s_batch_max;
  Array.fill t.s_elims 0 (Array.length t.s_elims) 0
