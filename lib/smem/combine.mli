(** A cache-padded flat-combining arena for semantically combinable
    operations.

    An op is an immediate [int] (a WriteMax value, an increment count);
    [combine] must be associative and idempotence-compatible with the
    structure's semantics: applying [combine a b] once must be
    observationally equivalent to applying [a] and [b] in either order
    (max for max registers, [(+)] for counters).

    Protocol ({!submit}): one publication slot per domain.  The caller
    first tries to acquire the combiner lock with a single CAS; on
    success it applies its own op combined with every pending slot in
    {e one} [apply] call, clears the drained slots, and releases.
    Otherwise it publishes its op to its slot and parks (bounded
    cpu_relax spin, then [Unix.sleepf] so an oversubscribed host can
    schedule the combiner), re-attempting the lock until its slot reads
    empty.  Slots are cleared only {e after} the combined op is applied,
    so a returned [submit] guarantees the op's effect is visible: the
    waiter's op linearizes at the combiner's apply point (DESIGN.md
    §12).

    [apply] must not raise: an exception would leave the lock held and
    parked waiters stranded.  Validate op values before submitting.

    With [domains = 1] the arena is bypassed entirely ([submit] is one
    branch plus the [apply] call): a single participating domain cannot
    contend, and the single-domain benchmark rows must not pay for
    machinery they cannot use.  No stats are recorded on that path.

    Stats are per-domain single-writer padded cells (plain load + store,
    never an RMW), merged on read — the same discipline as
    [Obs.Metrics] shards, kept separate because smem sits below obs in
    the dependency order.  Elimination tallies — the one stat recorded
    on the lock-free fast path — are plain (unfenced) cells: they are
    exact once the writing domains have been joined, which is when this
    repo reads them; a [stats] call concurrent with recording may see a
    slightly stale elimination count. *)

type t

val max_domains : int
(** 62: slots are tracked in one immediate-int bitmask. *)

val create :
  ?spin:int ->
  ?yield_s:float ->
  ?sleep:(float -> unit) ->
  domains:int ->
  combine:(int -> int -> int) ->
  unit ->
  t
(** An arena for domain ids [0 .. domains-1] ([1 <= domains <=
    {!max_domains}]).  [spin] (default 256) is the one-time cpu_relax
    budget a parked waiter burns before its first sleep; it is {e not}
    re-earned between sleeps.  [yield_s] (default 50µs, must be [> 0.])
    is the first park-sleep duration; successive sleeps double up to
    [yield_s * 64] (capped exponential backoff), and every sleep is
    preceded by a fresh slot/lock re-check so backoff never delays an
    already-applied or lock-winning waiter.  [sleep] (default
    [Unix.sleepf]) exists for scripted-clock tests.  Raises
    [Invalid_argument] on out-of-range [domains], negative [spin], or
    non-positive [yield_s]. *)

val domains : t -> int

val submit : t -> domain:int -> apply:(int -> int -> unit) -> int -> unit
(** [submit t ~domain ~apply op] completes [op], either by becoming the
    combiner (applying [apply d combined] where [d = domain] and
    [combined] folds every pending op with {!create}'s [combine]) or by
    having a concurrent combiner subsume it.  On return the op's effect
    is applied.  [apply] receives the {e combiner's} domain id — for
    structures with per-process slots (f-array leaves) the whole batch
    lands on the combiner's own leaf, preserving the single-writer
    discipline.  Pass a closure built once at structure creation: a
    literal [fun] here would allocate per call.  [op] must differ from
    the [min_int] sentinel. *)

val record_elimination : t -> domain:int -> unit
(** Count one locally-eliminated op (e.g. a WriteMax at or below the
    current root value, completed with zero shared writes).  The
    elimination itself is the caller's structure-specific check; the
    arena only keeps the tally. *)

(** {1 Merge-on-read stats} *)

type stats = {
  lock_acquisitions : int;  (** combiner-lock CAS successes *)
  batches : int;            (** drains that applied >= 2 ops at once *)
  combined_ops : int;       (** ops applied inside those batches *)
  batch_max : int;          (** largest single batch *)
  eliminations : int;       (** ops completed locally with zero shared writes *)
}

val zero_stats : stats

val stats : t -> stats
(** Sum (max for [batch_max]) over the per-domain cells; safe
    concurrently with recording, though [eliminations] is exact only at
    quiescence (its cells are unfenced — see the header). *)

val reset_stats : t -> unit
