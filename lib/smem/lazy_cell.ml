(* Domain-safe lazy memoization: the one concurrency idiom the MEMORY
   signatures cannot express (the memoized value is an arbitrary heap
   structure, not a register value, and forcing is initial-configuration
   construction — not a step in the paper's accounting).  Centralized here
   so data-structure code never touches [Atomic] directly: rule R1 of
   bin/lint.exe confines raw atomics to lib/smem, lib/obs, the throughput
   harness and the [Unboxed] natives.

   Racing forcers may build duplicate values; exactly one wins the CAS and
   the losers' results are dropped before anyone else can observe them, so
   [force] always returns the same physical value to every caller.  [make]
   must therefore tolerate being called more than once (all uses build
   fresh register trees, which is fine: the losing tree's registers are
   never touched again). *)

type 'a t = { cell : 'a option Atomic.t; build : unit -> 'a }

let make build = { cell = Atomic.make None; build }

let force t =
  match Atomic.get t.cell with
  | Some v -> v
  | None ->
    let v = t.build () in
    if Atomic.compare_and_set t.cell None (Some v) then v
    else Option.get (Atomic.get t.cell)
