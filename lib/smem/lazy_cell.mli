(** Domain-safe lazy memoization ([Stdlib.Lazy] is not safe under
    concurrent forcing).  Used for lazily-materialized register trees
    (the B1 max register's spine): racing forcers may each run the
    builder, but exactly one result wins the internal CAS and [force]
    returns the same physical value to every caller, forever.

    The builder must tolerate being invoked more than once under a race;
    losing results are dropped unobserved.  Keep raw [Atomic] out of
    algorithm code by going through this module — rule R1 of
    [bin/lint.exe] enforces it. *)

type 'a t

val make : (unit -> 'a) -> 'a t
(** [make build] is an unforced cell.  [build] runs on first {!force}
    (possibly more than once under a forcing race — exactly one result
    is kept). *)

val force : 'a t -> 'a
(** Memoized value; builds it on first call. *)
