(* The base-object interface all algorithms are written against.

   The paper's model: base objects support read, write and CAS, applied
   atomically.  Algorithms are functors over MEMORY so the same code runs on
   the deterministic simulator (step counting, adversarial scheduling,
   linearizability testing) and on OCaml 5 atomics (Domain-parallel
   benchmarks).

   MEMORY is the [Memsim.Simval.t]-valued instance of the general signature
   MEMORY_GEN; MEMORY_INT is the int-valued instance used by the unboxed
   native backend, where the paper's initial value "-infinity" ([Bot]) is
   encoded as a sentinel rather than a constructor so that the hot paths
   never allocate. *)

module type MEMORY_GEN = sig
  type value
  (** The values a base object holds. *)

  type t
  (** A base object. *)

  val make : ?name:string -> value -> t
  (** Allocate a base object with an initial value.  Allocation happens when
      an implementation builds its data structure (the initial
      configuration); it is not a step. *)

  val read : t -> value

  val write : t -> value -> unit

  val cas : t -> expected:value -> desired:value -> bool
  (** Compare-and-swap: atomically, if the object's value equals [expected],
      set it to [desired] and return [true]; otherwise return [false]. *)
end

module type MEMORY = sig
  (** Base objects holding a {!Memsim.Simval.t}. *)

  include MEMORY_GEN with type value := Memsim.Simval.t
end

module type MEMORY_INT = sig
  (** Base objects holding a bare [int] — the unboxed backend.

      [bot] is the sentinel standing in for {!Memsim.Simval.Bot} (the
      initial "-infinity" of max-register tree nodes).  It is chosen below
      every value algorithms store, so [max] over raw ints coincides with
      {!Memsim.Simval.max_val} over the encoded domain. *)

  val bot : int
  (** Sentinel for "no value written yet"; smaller than every stored
      value.  Implementations must never write [bot] as a real value. *)

  include MEMORY_GEN with type value := int
end
