(* The unboxed native backend: base objects are [int Atomic.t], so read,
   write and CAS move immediate ints only — no allocation, no structural
   comparison, no pointer chase through a Simval box.  [Bot] is encoded as
   the sentinel [min_int].

   [Padded] widens each atomic's heap block to two cache lines so that
   arrays of adjacent base objects (f-array leaves, Algorithm A tree nodes,
   per-domain counters) never share a line between domains.  An
   [int Atomic.t] is an ordinary one-field heap block and the Atomic
   primitives operate on field 0 whatever the block size, so a wider block
   with the value in field 0 behaves identically — this is the same trick
   as multicore-magic's [copy_as_padded], done locally to avoid the
   dependency.  The padding fields hold immediate ints, so the GC never
   scans garbage pointers. *)

type t = int Atomic.t

let bot = min_int

let make ?name init =
  ignore name;
  Atomic.make init

let read = Atomic.get
let write = Atomic.set
let cas obj ~expected ~desired = Atomic.compare_and_set obj expected desired

(* 64-byte lines, 8-byte words.  A [2*words_per_line - 1]-field block spans
   at least one full line past the header at any alignment, so no two
   padded atomics can fall on the same line. *)
let words_per_line = 8
let padded_words = (2 * words_per_line) - 1

module Padded = struct
  type t = int Atomic.t

  let bot = min_int

  let make ?name init =
    ignore name;
    let src = Obj.repr (Atomic.make init) in
    let blk = Obj.new_block (Obj.tag src) padded_words in
    Obj.set_field blk 0 (Obj.field src 0);
    for i = 1 to padded_words - 1 do
      Obj.set_field blk i (Obj.repr 0)
    done;
    (Obj.obj blk : int Atomic.t)

  let read = Atomic.get
  let write = Atomic.set
  let cas obj ~expected ~desired = Atomic.compare_and_set obj expected desired
end
