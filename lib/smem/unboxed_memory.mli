(** The unboxed native backend: base objects are [int Atomic.t].

    Read/write/CAS move immediate ints only — zero allocation per
    operation, value CAS for free (physical equality on immediates is value
    equality, so the boxed backend's no-recurrence proviso is not even
    needed).  {!Memsim.Simval.Bot} is encoded as the sentinel [bot]
    ([min_int]); algorithms must store values strictly above it. *)

include Memory_intf.MEMORY_INT with type t = int Atomic.t

val words_per_line : int
(** Assumed cache-line size in words (8 × 8 bytes = 64-byte lines). *)

val padded_words : int
(** Heap-block size (in fields) of a {!Padded} object:
    [2 * words_per_line - 1], enough to span a full line past the header at
    any alignment. *)

module Padded : sig
  (** Same backend, but each object's heap block is widened to
      {!padded_words} fields (the value stays in field 0, where the Atomic
      primitives operate), so adjacent base objects never share a cache
      line.  Use for arrays of objects written by different domains:
      f-array leaves, Algorithm A tree nodes, per-domain counters. *)

  include Memory_intf.MEMORY_INT with type t = int Atomic.t
end
