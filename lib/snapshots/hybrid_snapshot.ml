(* The f-array snapshot with unboxed leaves: internal nodes keep the boxed
   Simval vectors (the root must hold a whole segment array, which cannot
   be an immediate), but each single-writer leaf register is an unboxed int
   holding the writer's (seq, value) pair packed into one word.  An Update
   therefore touches its own leaf without allocating or false-sharing a
   cache line with neighbouring writers (instantiate [U] with
   {!Smem.Unboxed_memory.Padded}); only the propagation into the boxed
   inner tree allocates.

   Packing: 31 bits of sequence number above 31 bits of value, so packed
   words are unique per leaf (seq is monotone) and never equal [U.bot] —
   the no-recurrence/ABA argument of the boxed f-array carries over
   unchanged at the inner nodes. *)

open Memsim

module Make (B : Smem.Memory_intf.MEMORY) (U : Smem.Memory_intf.MEMORY_INT) =
struct
  type payload = Inner of B.t | Leaf of { reg : U.t; mutable pid : int }

  type t = {
    root : payload Treeprim.Tree_shape.node;
    leaves : payload Treeprim.Tree_shape.node array;
    seqs : int array;
    n : int;
  }

  let value_bits = 31
  let value_mask = (1 lsl value_bits) - 1
  let pack ~seq v = (seq lsl value_bits) lor v
  let unpack_seq p = p lsr value_bits
  let unpack_value p = p land value_mask

  let create ~n =
    if n <= 0 then invalid_arg "Hybrid_snapshot.create: n must be > 0";
    let mk () = Inner (B.make Simval.Bot) in
    let mk_leaf () = Leaf { reg = U.make U.bot; pid = -1 } in
    let root, leaves = Treeprim.Tree_shape.complete ~mk_leaf ~mk ~nleaves:n () in
    Array.iteri
      (fun i node ->
        match node.Treeprim.Tree_shape.data with
        | Leaf l -> l.pid <- i
        | Inner _ -> assert false)
      leaves;
    { root; leaves; seqs = Array.make n 0; n }

  let items = function
    | Simval.Bot -> [||]
    | Simval.Vec triples -> triples
    | Simval.Int _ -> invalid_arg "Hybrid_snapshot: bad node value"

  (* A child's contribution as a vector of (pid, seq, value) triples: inner
     nodes hold it directly; a leaf decodes its packed word. *)
  let child_value = function
    | None -> Simval.Bot
    | Some (child : payload Treeprim.Tree_shape.node) -> (
      match child.Treeprim.Tree_shape.data with
      | Inner reg -> B.read reg
      | Leaf { reg; pid } ->
        let p = U.read reg in
        if p = U.bot then Simval.Bot
        else
          Simval.Vec
            [| Simval.Vec
                 [| Simval.Int pid;
                    Simval.Int (unpack_seq p);
                    Simval.Int (unpack_value p) |] |])

  let refresh (node : payload Treeprim.Tree_shape.node) =
    match node.Treeprim.Tree_shape.data with
    | Leaf _ -> assert false
    | Inner reg ->
      let old_value = B.read reg in
      let l = child_value node.Treeprim.Tree_shape.left in
      let r = child_value node.Treeprim.Tree_shape.right in
      let new_value = Simval.Vec (Array.append (items l) (items r)) in
      ignore (B.cas reg ~expected:old_value ~desired:new_value)

  let rec propagate (node : payload Treeprim.Tree_shape.node) =
    match node.Treeprim.Tree_shape.parent with
    | None -> ()
    | Some parent ->
      refresh parent;
      refresh parent;
      propagate parent

  let update t ~pid v =
    if pid < 0 || pid >= t.n then invalid_arg "Hybrid_snapshot.update: bad pid";
    if v < 0 || v > value_mask then
      invalid_arg "Hybrid_snapshot.update: value out of 31-bit range";
    t.seqs.(pid) <- t.seqs.(pid) + 1;
    (match t.leaves.(pid).Treeprim.Tree_shape.data with
    | Leaf { reg; _ } -> U.write reg (pack ~seq:t.seqs.(pid) v)
    | Inner _ -> assert false);
    propagate t.leaves.(pid)

  let scan t =
    let out = Array.make t.n 0 in
    let root_value =
      match t.root.Treeprim.Tree_shape.data with
      | Inner reg -> B.read reg
      | Leaf { reg; pid } ->
        (* n = 1: the root is the single leaf *)
        let p = U.read reg in
        if p = U.bot then Simval.Bot
        else
          Simval.Vec
            [| Simval.Vec
                 [| Simval.Int pid;
                    Simval.Int (unpack_seq p);
                    Simval.Int (unpack_value p) |] |]
    in
    Array.iter
      (fun triple ->
        match triple with
        | Simval.Vec [| Simval.Int pid; Simval.Int _; Simval.Int v |] ->
          out.(pid) <- v
        | Simval.Bot | Simval.Int _ | Simval.Vec _ ->
          invalid_arg "Hybrid_snapshot: bad triple")
      (items root_value);
    out
end
