(** The f-array snapshot with unboxed leaves: internal nodes keep boxed
    Simval vectors (Scan stays one read of the root, returning the whole
    segment array), but each single-writer leaf is an unboxed int register
    holding (seq, value) packed into one word — an Update writes its leaf
    without allocating, and with {!Smem.Unboxed_memory.Padded} leaves,
    without sharing a cache line with neighbouring writers.

    Values are restricted to 31 bits (the rest of the word carries the
    sequence stamp that keeps the CAS propagation ABA-free). *)

module Make (B : Smem.Memory_intf.MEMORY) (U : Smem.Memory_intf.MEMORY_INT) : sig
  type t

  val create : n:int -> t
  val update : t -> pid:int -> int -> unit

  val scan : t -> int array
  (** One shared-memory event (a read of the root). *)
end
