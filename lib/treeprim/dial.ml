(* The read/update tradeoff dial of Theorem 1, as block geometry.

   Theorem 1 is a curve: an O(f(N)) CounterRead forces an
   Omega(log(N/f(N))) CounterIncrement.  A dial point picks f; the
   block-structured constructions (Dial_counter, Dial_maxreg) group the
   N per-process leaves into [width] blocks of [block_size] leaves, each
   block an f-array subtree of depth O(log(N/f)) — read collects the
   [width] block roots, an update propagates only inside its own block.

   The four points cover the frontier end to end: [F_one] coincides with
   the f-array structures (read O(1), update O(log N)), [F_n] with the
   naive ones (read O(N), update O(1)), [F_log] and [F_sqrt] are the
   interior points no prior structure in this repo exercised. *)

type t = F_one | F_log | F_sqrt | F_n

let all = [ F_one; F_log; F_sqrt; F_n ]

let name = function
  | F_one -> "f1"
  | F_log -> "flog"
  | F_sqrt -> "fsqrt"
  | F_n -> "fn"

let of_string = function
  | "f1" -> Some F_one
  | "flog" -> Some F_log
  | "fsqrt" -> Some F_sqrt
  | "fn" -> Some F_n
  | _ -> None

let ceil_log2 n =
  let rec go d v = if v >= n then d else go (d + 1) (2 * v) in
  go 0 1

(* Smallest k with k*k >= n. *)
let ceil_sqrt n =
  let rec go k = if k * k >= n then k else go (k + 1) in
  if n <= 0 then 0 else go 1

(* f(N): how many block roots a read collects.  Clamped into [1, n] so
   every dial is well-formed at every size (at n <= 2 the four points
   partially coincide, as they do asymptotically). *)
let width ~n t =
  if n <= 0 then invalid_arg "Dial.width: n must be > 0";
  let f =
    match t with
    | F_one -> 1
    | F_log -> ceil_log2 n
    | F_sqrt -> ceil_sqrt n
    | F_n -> n
  in
  min n (max 1 f)

(* Leaves per block: ceil(n / width).  An update pays
   O(log block_size) = O(log(N/f)) propagation steps. *)
let block_size ~n t =
  let f = width ~n t in
  (n + f - 1) / f
