(** The read/update tradeoff dial of Theorem 1, as block geometry: a
    dial point picks f(N), the number of block roots a read collects;
    the N per-process leaves are grouped into [width] blocks of
    [block_size] leaves, each an f-array subtree of depth O(log(N/f)).

    [F_one] coincides with the f-array structures (read O(1), update
    O(log N)), [F_n] with the naive ones (read O(N), update O(1));
    [F_log] and [F_sqrt] are the interior frontier points. *)

type t = F_one | F_log | F_sqrt | F_n

val all : t list
(** In increasing-f order: [F_one; F_log; F_sqrt; F_n]. *)

val name : t -> string
(** ["f1" | "flog" | "fsqrt" | "fn"] — CLI and JSON spelling. *)

val of_string : string -> t option

val width : n:int -> t -> int
(** f(N) clamped into [1, n]: 1, ceil(log2 n), ceil(sqrt n), or n. *)

val block_size : n:int -> t -> int
(** Leaves per block, [ceil (n / width)]. *)

val ceil_log2 : int -> int
val ceil_sqrt : int -> int
