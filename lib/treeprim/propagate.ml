(* Leaf-to-root propagation with the double-refresh trick (the paper's
   Propagate procedure, after Jayanti's tree algorithm).

   At each ancestor, a process recomputes the combination of the two
   children and CASes it into the node; the refresh is performed twice so
   that if a process's CAS fails, some concurrent CAS installed a value
   computed from a state at least as recent.  Sound with CAS (rather than
   LL/SC) provided node values never recur, which holds for all uses here:
   max of monotone values, sums of monotone counters, and concatenations of
   sequence-stamped segments. *)

module Make (M : Smem.Memory_intf.MEMORY) = struct
  let child_value = function
    | None -> Memsim.Simval.Bot
    | Some (child : M.t Tree_shape.node) -> M.read child.Tree_shape.data

  (* One refresh: 4 events (read node, read both children, CAS). *)
  let refresh ~combine (node : M.t Tree_shape.node) =
    let old_value = M.read node.Tree_shape.data in
    let l = child_value node.Tree_shape.left in
    let r = child_value node.Tree_shape.right in
    let new_value = combine l r in
    ignore (M.cas node.Tree_shape.data ~expected:old_value ~desired:new_value)

  (* Walk from [leaf] to the root, refreshing every proper ancestor
     [refreshes] times: O(depth) events.  [refreshes = 1] exists only as an
     ablation — it loses the covering guarantee and admits lost updates
     (see experiment A2); correct algorithms use the default 2. *)
  let propagate ?(refreshes = 2) ~combine (leaf : M.t Tree_shape.node) =
    let rec up node =
      match node.Tree_shape.parent with
      | None -> ()
      | Some parent ->
        for _ = 1 to refreshes do
          refresh ~combine parent
        done;
        up parent
    in
    up leaf
end

(* The same procedure over the unboxed backend, specialized rather than
   functorized: nodes are [int Atomic.t] and the memory operations are the
   Atomic primitives applied directly, which ocamlopt compiles to inline
   loads/CAS (through a functor they are indirect calls — without flambda
   that indirection costs more than the operations themselves).  A missing
   child reads as the [Smem.Unboxed_memory.bot] sentinel and [combine]
   works on raw ints, so a refresh allocates nothing.  The walk is a
   top-level self-recursive function (no closure capture) and [refreshes]
   is mandatory (an optional argument would box [Some refreshes] per
   call). *)
module Unboxed = struct
  let bot = Smem.Unboxed_memory.bot

  let child_value = function
    | None -> bot
    | Some (child : int Atomic.t Tree_shape.node) ->
      Atomic.get child.Tree_shape.data

  let refresh ~combine (node : int Atomic.t Tree_shape.node) =
    let old_value = Atomic.get node.Tree_shape.data in
    let l = child_value node.Tree_shape.left in
    let r = child_value node.Tree_shape.right in
    let new_value = combine l r in
    ignore (Atomic.compare_and_set node.Tree_shape.data old_value new_value)

  let rec propagate ~refreshes ~combine (leaf : int Atomic.t Tree_shape.node) =
    match leaf.Tree_shape.parent with
    | None -> ()
    | Some parent ->
      for _ = 1 to refreshes do
        refresh ~combine parent
      done;
      propagate ~refreshes ~combine parent

  (* {2 Metered variants}

     Same walk, but each refresh round and each CAS outcome is recorded
     into an {!Obs.Metrics.t} shard ([domain] should be the calling pid).
     Kept separate from the plain walk above so the uninstrumented hot
     path carries not even the [enabled] test.  A disabled handle
     delegates to the plain walk after one inlined field test at entry
     ([Obs.Metrics.t] is a private record precisely so this test is a
     load, not a cross-library call): the no-op mode costs one branch
     per *operation*, not one call per record site. *)

  let refresh_metered ~metrics ~domain ~combine
      (node : int Atomic.t Tree_shape.node) =
    if not metrics.Obs.Metrics.enabled then refresh ~combine node
    else begin
      let old_value = Atomic.get node.Tree_shape.data in
      let l = child_value node.Tree_shape.left in
      let r = child_value node.Tree_shape.right in
      let new_value = combine l r in
      Obs.Metrics.incr metrics ~domain Obs.Metrics.Cas_attempt;
      if not (Atomic.compare_and_set node.Tree_shape.data old_value new_value)
      then Obs.Metrics.incr metrics ~domain Obs.Metrics.Cas_failure
    end

  let rec propagate_metered_live ~metrics ~domain ~refreshes ~combine
      (leaf : int Atomic.t Tree_shape.node) =
    match leaf.Tree_shape.parent with
    | None -> ()
    | Some parent ->
      for _ = 1 to refreshes do
        Obs.Metrics.incr metrics ~domain Obs.Metrics.Refresh_round;
        refresh_metered ~metrics ~domain ~combine parent
      done;
      propagate_metered_live ~metrics ~domain ~refreshes ~combine parent

  let propagate_metered ~metrics ~domain ~refreshes ~combine
      (leaf : int Atomic.t Tree_shape.node) =
    if metrics.Obs.Metrics.enabled then
      propagate_metered_live ~metrics ~domain ~refreshes ~combine leaf
    else propagate ~refreshes ~combine leaf
end
