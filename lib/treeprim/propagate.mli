(** Leaf-to-root propagation with double-refresh CAS (the paper's
    [Propagate], after Jayanti's tree algorithm): at each ancestor the
    combination of the two children is recomputed and CASed in, twice, so a
    failed CAS implies a concurrent refresh installed a value at least as
    fresh.

    Sound with CAS (rather than LL/SC) provided node values never recur —
    guaranteed for monotone aggregates (max, sums) and sequence-stamped
    tuples. *)

module Make (M : Smem.Memory_intf.MEMORY) : sig
  val refresh :
    combine:(Memsim.Simval.t -> Memsim.Simval.t -> Memsim.Simval.t) ->
    M.t Tree_shape.node ->
    unit
  (** One refresh of one node: 4 shared-memory events (read node, read both
      children, CAS). *)

  val propagate :
    ?refreshes:int ->
    combine:(Memsim.Simval.t -> Memsim.Simval.t -> Memsim.Simval.t) ->
    M.t Tree_shape.node ->
    unit
  (** Refresh every proper ancestor of the given leaf bottom-up, [refreshes]
      times each (default 2): O(depth) events.  [refreshes:1] is an ablation
      that admits lost updates (experiment A2); correctness requires 2. *)
end

(** The same procedure over the unboxed backend ({!Smem.Unboxed_memory}),
    specialized to [int Atomic.t] nodes so the Atomic primitives compile
    inline (a functor would make every read/CAS an indirect call).  A
    missing child reads as the [bot] sentinel, [combine] works on raw
    ints, and a propagate performs no allocation — [refreshes] is
    mandatory (an optional argument would box [Some refreshes] at every
    call without flambda). *)
module Unboxed : sig
  val bot : int
  (** [Smem.Unboxed_memory.bot]. *)

  val refresh :
    combine:(int -> int -> int) -> int Atomic.t Tree_shape.node -> unit

  val propagate :
    refreshes:int ->
    combine:(int -> int -> int) ->
    int Atomic.t Tree_shape.node ->
    unit

  (** {1 Metered variants}

      Identical walk, recording one [Refresh_round] per node refresh and
      one [Cas_attempt] / [Cas_failure] per refresh CAS into the given
      {!Obs.Metrics.t} under shard [domain] (pass the calling pid).  With
      {!Obs.Metrics.disabled} each record site is a single immediate-bool
      branch and allocates nothing. *)

  val refresh_metered :
    metrics:Obs.Metrics.t ->
    domain:int ->
    combine:(int -> int -> int) ->
    int Atomic.t Tree_shape.node ->
    unit

  val propagate_metered :
    metrics:Obs.Metrics.t ->
    domain:int ->
    refreshes:int ->
    combine:(int -> int -> int) ->
    int Atomic.t Tree_shape.node ->
    unit
end
