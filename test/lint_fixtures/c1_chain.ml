(* C1 fixture: certificates flow through a helper chain -- [deep_read]
   is two loads reached via two helpers; [deep_wide] doubles that past
   its budget. *)

let a = Atomic.make 0
let b = Atomic.make 0

let helper1 () = Atomic.get a
let helper2 () = helper1 () + Atomic.get b
let deep_read () = helper2 ()
let deep_wide () = helper2 () + helper2 ()
