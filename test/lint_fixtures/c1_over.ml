(* C1 fixture: [over] performs three atomic loads against a fixture
   budget of two; [within] stays inside its (loose) budget. *)

let r1 = Atomic.make 0
let r2 = Atomic.make 0
let r3 = Atomic.make 0

let over () = Atomic.get r1 + Atomic.get r2 + Atomic.get r3

let within () = Atomic.get r1 + Atomic.get r2
