(* C1 fixture: recursion the certifier must refuse -- [chase] has no
   depth annotation; [blind_walk] is annotated but its iteration never
   re-reads shared state (no progress witness). *)

let cell = Atomic.make 0

let rec chase () =
  let v = Atomic.get cell in
  if v > 0 then chase () else v

let rec blind_walk n =
  if n = 0 then ()
  else begin
    Atomic.set cell n;
    blind_walk (n - 1)
  end
