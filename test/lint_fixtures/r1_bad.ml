(* R1 fixture: raw concurrency primitives outside any allowlist.
   Expected: one diagnostic per banned identifier/type/alias below. *)

let cell = Atomic.make 0

let bump () = Atomic.incr cell

type holder = { slot : int Atomic.t }

module A = Atomic

let self () = Domain.self ()
