(* R1 fixture for [Dir]-entry granularity: this whole file is
   allowlisted in the test config (Dir "test/lint_fixtures/r1_dir_ok.ml",
   the same shape the default config uses for lib/smem and
   lib/harness/throughput.ml), so its raw primitives — both at toplevel
   and inside a submodule — must produce no R1 diagnostics at all.
   Expected: zero diagnostics from this file under R1. *)

let cell = Atomic.make 0
let bump () = Atomic.incr cell

module Nested = struct
  let who () = (Domain.self () :> int)
end
