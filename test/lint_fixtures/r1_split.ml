(* R1 fixture for submodule granularity: the [Unboxed] submodule is
   allowlisted in the test config (Module_path ["R1_split"; "Unboxed"]),
   the toplevel use of Atomic is not.  Expected: exactly one diagnostic,
   on [stray]. *)

module Unboxed = struct
  let cell = Atomic.make 0
  let get () = Atomic.get cell
end

let stray = Atomic.make 1
