(* R2 fixtures: loops and retries that can never observe another
   process's step.

   [spin] busy-waits on nothing shared: no read, no CAS, no exit.
   [retry] CASes against a value it captured once and never re-reads,
   so every recursive attempt replays the same stale exchange.
   [ok_spin] re-reads shared memory each iteration and must NOT be
   flagged. *)

let spin () =
  while true do
    ignore (Sys.opaque_identity 0)
  done

let rec retry cell seen =
  if Atomic.compare_and_set cell seen (seen + 1) then ()
  else retry cell seen

let ok_spin cell =
  while true do
    if Atomic.get cell > 0 then raise Exit
  done
