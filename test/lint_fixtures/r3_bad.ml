(* R3 fixtures.  The test config names [hot] (Body mode) and [loops]
   (Loops mode); [unchecked] allocates identically but is not a target
   and must stay silent.

   [hot]: Some x is an allocating constructor -> flagged.
   [loops]: the while body calls List.length on a fresh list literal ->
   flagged; the [!acc] list built after the loops is epilogue and must
   NOT be flagged. *)

let hot x = Some x

let unchecked x = Some x

let loops n =
  let acc = ref 0 in
  for i = 0 to n do
    acc := !acc + i
  done;
  while !acc > 0 do
    acc := !acc - List.length [ 1; 2 ]
  done;
  [ !acc ]
