(* Tests of the contention-adaptive dispatch layer (Harness.Adaptive):
   the pure Policy kernel (threshold verdicts, hysteresis fold,
   parameter validation), differential equivalence of the adaptive
   structures against the plain unboxed natives on random sequences that
   force mode flips, multi-domain exactness across flips, report sanity,
   and zero-allocation guards on the solo and plain-mode update paths.
   Linearizability of adaptive histories under chaos lives in
   test_chaos.ml. *)

module P = Harness.Adaptive.Policy
module AD = Harness.Adaptive.Alg_a
module CD = Harness.Adaptive.Cas
module FD = Harness.Adaptive.Farray_c
module ND = Harness.Adaptive.Naive_c
module AU = Maxreg.Algorithm_a.Unboxed
module CU = Maxreg.Cas_maxreg.Unboxed
module FU = Counters.Farray_counter.Unboxed
module NU = Counters.Naive_counter.Unboxed

(* {1 The pure policy kernel} *)

let base_params =
  { P.epoch_ops = 1024;
    hysteresis = 2;
    min_updates = 100;
    update_share_min = 0.2;
    cas_fail_min = 0.5;
    stale_min = 2.;
    benefit_min = 0.5 }

let test_validate () =
  let check msg p =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () -> P.validate p)
  in
  check "Adaptive: epoch_ops must be a positive power of two"
    { base_params with P.epoch_ops = 0 };
  check "Adaptive: epoch_ops must be a positive power of two"
    { base_params with P.epoch_ops = 3 };
  check "Adaptive: hysteresis must be >= 1"
    { base_params with P.hysteresis = 0 };
  check "Adaptive: negative min_updates"
    { base_params with P.min_updates = -1 };
  check "Adaptive: update_share_min out of [0, 1]"
    { base_params with P.update_share_min = 1.5 };
  check "Adaptive: negative cas_fail_min"
    { base_params with P.cas_fail_min = -0.1 };
  check "Adaptive: negative stale_min"
    { base_params with P.stale_min = -0.5 };
  check "Adaptive: negative benefit_min"
    { base_params with P.benefit_min = -1. };
  P.validate base_params;
  List.iter P.validate
    [ P.default_maxreg; P.default_cas; P.default_counter; P.default_control ]

let test_want_thresholds () =
  let mode = Alcotest.testable (Fmt.of_to_string P.mode_name) ( = ) in
  let check msg expect ~current s =
    Alcotest.check mode msg expect (P.want base_params ~current s)
  in
  (* too few updates: no evidence, keep whatever mode is active *)
  check "sparse epoch keeps plain" P.Plain ~current:P.Plain
    { P.zero_signals with P.updates = 50; cas_failures = 50; cas_attempts = 50 };
  check "sparse epoch keeps combining" P.Combining ~current:P.Combining
    { P.zero_signals with P.updates = 50 };
  (* read-dominated epochs always want the plain path *)
  check "read-heavy wants plain" P.Plain ~current:P.Combining
    { P.zero_signals with P.updates = 1000; reads = 9000; eliminations = 1000 };
  (* plain -> combining needs real CAS contention *)
  check "contended CAS enters combining" P.Combining ~current:P.Plain
    { P.zero_signals with
      P.updates = 1000;
      cas_attempts = 1000;
      cas_failures = 600 };
  check "calm CAS stays plain" P.Plain ~current:P.Plain
    { P.zero_signals with
      P.updates = 1000;
      cas_attempts = 1000;
      cas_failures = 400 };
  check "no CAS at all stays plain" P.Plain ~current:P.Plain
    { P.zero_signals with P.updates = 1000 };
  (* combining -> plain when the arena stops earning its keep *)
  check "earning arena stays combining" P.Combining ~current:P.Combining
    { P.zero_signals with
      P.updates = 1000;
      eliminations = 400;
      combined_ops = 200 };
  check "idle arena leaves combining" P.Plain ~current:P.Combining
    { P.zero_signals with P.updates = 1000; eliminations = 100 }

let test_want_stale_trigger () =
  let mode = Alcotest.testable (Fmt.of_to_string P.mode_name) ( = ) in
  (* CAS bar out of reach: the stale-write rate carries the verdict, as
     it does for unmetered instances (disabled metrics = no CAS signal) *)
  let p = { base_params with P.cas_fail_min = 2.; stale_min = 0.3 } in
  let check msg expect ~current s =
    Alcotest.check mode msg expect (P.want p ~current s)
  in
  check "stale writes enter combining" P.Combining ~current:P.Plain
    { P.zero_signals with P.updates = 1000; stale = 400 };
  check "fresh writes stay plain" P.Plain ~current:P.Plain
    { P.zero_signals with P.updates = 1000; stale = 200 };
  Alcotest.check mode "a > 1 bar disables the trigger" P.Plain
    (P.want { p with P.stale_min = 2. } ~current:P.Plain
       { P.zero_signals with P.updates = 1000; stale = 1000 })

(* Signal fixtures whose verdict is unambiguous under [hys_params]:
   [s_comb] wants combining from either mode (contended CAS, earning
   arena), [s_plain] wants plain from either mode. *)
let hys_params h =
  { P.epoch_ops = 2;
    hysteresis = h;
    min_updates = 0;
    update_share_min = 0.;
    cas_fail_min = 0.5;
    stale_min = 2.;
    benefit_min = 0.5 }

let s_comb =
  { P.zero_signals with
    P.updates = 10;
    cas_attempts = 10;
    cas_failures = 10;
    eliminations = 10 }

let s_plain = { P.zero_signals with P.updates = 10 }

let test_hysteresis_flips_after_exactly_n () =
  let p = hys_params 3 in
  let h0 = P.initial P.Plain in
  let h1 = P.step p h0 s_comb in
  let h2 = P.step p h1 s_comb in
  Alcotest.(check bool) "two dissents: no flip yet" true
    (h2.P.mode = P.Plain && h2.P.streak = 2 && h2.P.flips = 0);
  let h3 = P.step p h2 s_comb in
  Alcotest.(check bool) "third dissent flips" true
    (h3.P.mode = P.Combining && h3.P.streak = 0 && h3.P.flips = 1);
  (* an agreeing epoch resets the streak *)
  let g2 = P.step p (P.step p h0 s_comb) s_plain in
  Alcotest.(check bool) "agreeing epoch resets streak" true
    (g2.P.mode = P.Plain && g2.P.streak = 0 && g2.P.flips = 0);
  let g5 = P.step p (P.step p (P.step p g2 s_comb) s_comb) s_comb in
  Alcotest.(check bool) "streak restarts from zero after the reset" true
    (g5.P.mode = P.Combining && g5.P.flips = 1)

(* Each flip consumes [h] consecutive dissenting epochs, so however
   adversarial the verdict sequence, flips <= epochs / h. *)
let qcheck_hysteresis_bounds_flips =
  QCheck.Test.make ~count:500 ~name:"flips bounded by epochs / hysteresis"
    QCheck.(pair (int_range 1 4) (list_of_size (QCheck.Gen.return 60) bool))
    (fun (h, verdicts) ->
      let p = hys_params h in
      let final =
        List.fold_left
          (fun st wants_comb ->
            P.step p st (if wants_comb then s_comb else s_plain))
          (P.initial P.Plain) verdicts
      in
      final.P.flips * h <= List.length verdicts)

(* {1 Differential: adaptive vs plain unboxed, across flip boundaries}

   The adaptive structures claim "same structure, mode only selects the
   update path"; on sequential random mixes they must be observationally
   identical to the plain unboxed natives.  The thrashing policy (epoch
   every 2 updates of a pid, hysteresis 1, combining bar 0, unreachable
   benefit bar) makes the dispatcher flip constantly, so the sequences
   cross many plain->combining and combining->plain boundaries. *)

let thrash_policy =
  { P.epoch_ops = 2;
    hysteresis = 1;
    min_updates = 1;
    update_share_min = 0.;
    cas_fail_min = 0.;
    stale_min = 2.;
    benefit_min = 10. }

(* op = (pid, value): value >= 0 is an update, -1 a read *)
let ops_gen ~n =
  QCheck.make
    ~print:QCheck.Print.(list (pair int int))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 1 120)
       (QCheck.Gen.pair (QCheck.Gen.int_range 0 (n - 1))
          (QCheck.Gen.int_range (-1) 40)))

let differential_maxreg_alg_a =
  QCheck.Test.make ~count:200 ~name:"algorithm-a: adaptive = plain"
    (ops_gen ~n:3)
    (fun ops ->
      let plain = AU.create ~n:3 () in
      let ad = AD.create ~policy:thrash_policy ~n:3 ~domains:3 () in
      List.for_all
        (fun (pid, v) ->
          if v < 0 then AU.read_max plain = AD.read_max ad
          else begin
            AU.write_max plain ~pid v;
            AD.write_max ad ~pid v;
            AU.read_max plain = AD.read_max ad
          end)
        ops)

let differential_maxreg_cas =
  QCheck.Test.make ~count:200 ~name:"cas-loop: adaptive = plain"
    (ops_gen ~n:3)
    (fun ops ->
      let plain = CU.create () in
      let ad = CD.create ~policy:thrash_policy ~domains:3 () in
      List.for_all
        (fun (pid, v) ->
          if v < 0 then CU.read_max plain = CD.read_max ad
          else begin
            CU.write_max plain ~pid v;
            CD.write_max ad ~pid v;
            CU.read_max plain = CD.read_max ad
          end)
        ops)

let differential_counter_farray =
  QCheck.Test.make ~count:200 ~name:"farray: adaptive = plain"
    (ops_gen ~n:3)
    (fun ops ->
      let plain = FU.create ~n:3 () in
      let ad = FD.create ~policy:thrash_policy ~n:3 ~domains:3 () in
      List.for_all
        (fun (pid, v) ->
          if v < 0 then FU.read plain = FD.read ad
          else begin
            FU.increment plain ~pid;
            FD.increment ad ~pid;
            FU.read plain = FD.read ad
          end)
        ops)

let differential_counter_naive =
  QCheck.Test.make ~count:200 ~name:"naive: adaptive = plain"
    (ops_gen ~n:3)
    (fun ops ->
      let plain = NU.create ~n:3 () in
      let ad = ND.create ~policy:thrash_policy ~n:3 ~domains:3 () in
      List.for_all
        (fun (pid, v) ->
          if v < 0 then NU.read plain = ND.read ad
          else begin
            NU.increment plain ~pid;
            ND.increment ad ~pid;
            NU.read plain = ND.read ad
          end)
        ops)

(* The differential property holds trivially if the dispatcher never
   leaves plain mode; pin that the thrashing policy really does flip on
   a deterministic all-update sequence. *)
let test_thrash_actually_flips () =
  let ad = AD.create ~policy:thrash_policy ~n:2 ~domains:2 () in
  for i = 1 to 64 do
    AD.write_max ad ~pid:(i land 1) i
  done;
  let r = AD.report ad in
  Alcotest.(check bool) "epochs evaluated" true (r.Harness.Adaptive.epochs > 0);
  Alcotest.(check bool) "flips happened" true
    (r.Harness.Adaptive.epoch_flips > 0);
  Alcotest.(check bool) "some ops ran in combining mode" true
    (r.Harness.Adaptive.combining_ops_pct > 0.)

(* {1 Reports} *)

let test_report_fresh () =
  let ad = AD.create ~n:2 ~domains:2 () in
  let r = AD.report ad in
  Alcotest.(check bool) "fresh: plain, no epochs, no flips, 0%" true
    (r.Harness.Adaptive.mode = P.Plain
    && r.Harness.Adaptive.epochs = 0
    && r.Harness.Adaptive.epoch_flips = 0
    && r.Harness.Adaptive.combining_ops_pct = 0.)

let test_report_counts_residual () =
  (* default maxreg policy, epoch_ops = 1024: 10 updates never reach an
     epoch boundary, yet the report's ops accounting must see them *)
  let ad = AD.create ~n:2 ~domains:2 () in
  for i = 1 to 10 do
    AD.write_max ad ~pid:0 i
  done;
  let r = AD.report ad in
  Alcotest.(check int) "no epoch yet" 0 r.Harness.Adaptive.epochs;
  Alcotest.(check (float 1e-9)) "all residual ops ran plain" 0.
    r.Harness.Adaptive.combining_ops_pct

let test_create_validates_policy () =
  Alcotest.check_raises "bad policy refused at create"
    (Invalid_argument "Adaptive: epoch_ops must be a positive power of two")
    (fun () ->
      ignore
        (AD.create ~policy:{ base_params with P.epoch_ops = 12 } ~n:2
           ~domains:2 ()
          : AD.t))

let test_tick_rejects_bad_pid () =
  let ad = FD.create ~policy:thrash_policy ~n:2 ~domains:2 () in
  Alcotest.(check bool) "out-of-range pid raises, never corrupts" true
    (match FD.increment ad ~pid:7 with
     | () -> false
     | exception Invalid_argument _ -> true)

(* {1 Batch-granular dispatch: the bench's idiom}

   The timed loops hoist [combining_now] per batch, run the raw
   [write_plain]/[write_combining] path, and settle accounting once via
   [tick_many].  Pin that this path (a) drives epochs and the
   stale-rate trigger, (b) respects the read-share gate, and (c) stays
   observationally identical to the plain unboxed structure across
   flips in both directions. *)

let test_batch_stale_flips () =
  let policy =
    { P.epoch_ops = 64;
      hysteresis = 1;
      min_updates = 1;
      update_share_min = 0.;
      cas_fail_min = 2.;
      stale_min = 0.25;
      benefit_min = 0. }
  in
  let ad = AD.create ~policy ~n:2 ~domains:2 () in
  AD.write_plain ad ~pid:0 1000;
  Alcotest.(check bool) "starts plain" false (AD.combining_now ad);
  (* two batches of 64 stale writes: rate 1.0 >= 0.25 at the boundary *)
  for _ = 1 to 2 do
    for v = 1 to 64 do
      AD.write_plain ad ~pid:0 v
    done;
    AD.tick_many ad ~pid:0 ~reads:0 ~updates:64 ~stale:64
  done;
  Alcotest.(check bool) "stale batches flipped to combining" true
    (AD.combining_now ad);
  let r = AD.report ad in
  Alcotest.(check bool) "report saw the flip" true
    (r.Harness.Adaptive.epoch_flips >= 1)

let test_batch_reads_gate_share () =
  let policy =
    { P.epoch_ops = 64;
      hysteresis = 1;
      min_updates = 1;
      update_share_min = 0.5;
      cas_fail_min = 2.;
      stale_min = 0.25;
      benefit_min = 0. }
  in
  let ad = AD.create ~policy ~n:2 ~domains:2 () in
  AD.write_plain ad ~pid:0 1000;
  (* every batch is fully stale but read-dominated: share 64/576 < 0.5,
     so the share gate wins and the mode never leaves plain *)
  for _ = 1 to 4 do
    AD.tick_many ad ~pid:0 ~reads:512 ~updates:64 ~stale:64
  done;
  Alcotest.(check bool) "read-dominated batches stay plain" false
    (AD.combining_now ad)

let test_batch_dispatch_differential () =
  (* benefit bar unreachable: stale batches pull the dispatcher into
     combining, the next epoch throws it back out — the batch API must
     track the plain structure across flips in both directions *)
  let policy =
    { P.epoch_ops = 16;
      hysteresis = 1;
      min_updates = 1;
      update_share_min = 0.;
      cas_fail_min = 2.;
      stale_min = 0.25;
      benefit_min = 10. }
  in
  let plain = AU.create ~n:2 () in
  let ad = AD.create ~policy ~n:2 ~domains:2 () in
  (* two fresh batches raise the max, then a long stale run: the stale
     rate pulls the mode to combining, where every write eliminates —
     benefit 1 < 10 throws it back to plain, and the cycle repeats *)
  let next = ref 0 in
  for b = 0 to 31 do
    let stale_batch = b >= 2 in
    let stale = ref 0 in
    let comb = AD.combining_now ad in
    for _ = 1 to 16 do
      let v = if stale_batch then 0 else (incr next; !next) in
      AU.write_max plain ~pid:0 v;
      if comb then AD.write_combining ad ~pid:0 v
      else begin
        if v <= AD.read_max ad then incr stale;
        AD.write_plain ad ~pid:0 v
      end;
      if AU.read_max plain <> AD.read_max ad then
        Alcotest.failf "diverged at batch %d" b
    done;
    AD.tick_many ad ~pid:0 ~reads:0 ~updates:16 ~stale:!stale
  done;
  let r = AD.report ad in
  Alcotest.(check bool) "batch dispatcher flipped both ways" true
    (r.Harness.Adaptive.epoch_flips >= 2)

(* {1 Multi-domain exactness across flips} *)

let domains_used = 4
let per_domain = 20_000

let flip_policy = { thrash_policy with P.epoch_ops = 64 }

let test_parallel_maxreg_exact () =
  let reg = AD.create ~policy:flip_policy ~n:domains_used ~domains:domains_used () in
  let monotone = Atomic.make true in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains_used (fun pid ->
        if pid = 0 then begin
          let last = ref 0 in
          for _ = 1 to per_domain do
            let v = AD.read_max reg in
            if v < !last then Atomic.set monotone false;
            last := v
          done
        end
        else
          for v = 1 to per_domain do
            AD.write_max reg ~pid ((v * domains_used) + pid)
          done)
  in
  Alcotest.(check bool) "adaptive reads monotone" true (Atomic.get monotone);
  Alcotest.(check int) "adaptive final maximum"
    ((per_domain * domains_used) + (domains_used - 1))
    (AD.read_max reg);
  let r = AD.report reg in
  Alcotest.(check bool) "dispatcher flipped during the run" true
    (r.Harness.Adaptive.epoch_flips > 0)

let test_parallel_counter_exact () =
  let cnt = FD.create ~policy:flip_policy ~n:domains_used ~domains:domains_used () in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains_used (fun pid ->
        for _ = 1 to per_domain do
          FD.increment cnt ~pid
        done)
  in
  Alcotest.(check int) "adaptive counter total exact"
    (domains_used * per_domain) (FD.read cnt);
  let ncnt = ND.create ~policy:flip_policy ~n:domains_used ~domains:domains_used () in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains_used (fun pid ->
        for _ = 1 to per_domain do
          ND.increment ncnt ~pid
        done)
  in
  Alcotest.(check int) "adaptive naive counter total exact"
    (domains_used * per_domain) (ND.read ncnt)

(* {1 Zero allocation on the dispatch fast paths}

   The per-op cost of adaptivity is a mode check and a tick; neither may
   allocate.  The epoch advance is the deliberately-allocating rare path
   (it folds stats records), so the plain-mode guard uses an epoch far
   beyond the op budget.  Same minor-heap-delta idiom as
   test_combining.ml. *)

let minor_delta f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let ops = 10_000
let slack = 256.0

let check_alloc_free name f =
  ignore (minor_delta f : float) (* warm up: force any one-time allocation *);
  let delta = minor_delta f in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d ops allocate <= %.0f words (got %.0f)" name ops
       slack delta)
    true (delta <= slack)

let test_alloc_free_solo () =
  let reg = AD.create ~n:1 ~domains:1 () in
  let v0 = ref 0 in
  check_alloc_free "adaptive alg-a write_max (solo)" (fun () ->
      let base = !v0 in
      for i = 1 to ops do
        AD.write_max reg ~pid:0 (base + i)
      done;
      v0 := base + ops);
  check_alloc_free "adaptive alg-a read_max" (fun () ->
      for _ = 1 to ops do
        ignore (AD.read_max reg : int)
      done);
  let cnt = FD.create ~n:1 ~domains:1 () in
  check_alloc_free "adaptive farray increment (solo)" (fun () ->
      for _ = 1 to ops do
        FD.increment cnt ~pid:0
      done)

let no_epoch_policy = { P.default_maxreg with P.epoch_ops = 1 lsl 20 }

let test_alloc_free_plain_mode () =
  (* domains = 2: full dispatch (mode check + tick) on the plain path,
     with the epoch boundary pushed beyond the op budget *)
  let reg = AD.create ~policy:no_epoch_policy ~n:2 ~domains:2 () in
  let v0 = ref 0 in
  check_alloc_free "adaptive alg-a write_max (plain dispatch)" (fun () ->
      let base = !v0 in
      for i = 1 to ops do
        AD.write_max reg ~pid:(i land 1) (base + i)
      done;
      v0 := base + ops);
  let cnt =
    FD.create
      ~policy:{ P.default_counter with P.epoch_ops = 1 lsl 20 }
      ~n:2 ~domains:2 ()
  in
  check_alloc_free "adaptive farray increment (plain dispatch)" (fun () ->
      for i = 1 to ops do
        FD.increment cnt ~pid:(i land 1)
      done)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "adaptive"
    [ ( "policy",
        Alcotest.test_case "params validated" `Quick test_validate
        :: Alcotest.test_case "want thresholds" `Quick test_want_thresholds
        :: Alcotest.test_case "stale-rate trigger" `Quick
             test_want_stale_trigger
        :: Alcotest.test_case "hysteresis flips after exactly N" `Quick
             test_hysteresis_flips_after_exactly_n
        :: qsuite [ qcheck_hysteresis_bounds_flips ] );
      ( "differential",
        qsuite
          [ differential_maxreg_alg_a;
            differential_maxreg_cas;
            differential_counter_farray;
            differential_counter_naive ]
        @ [ Alcotest.test_case "thrash policy actually flips" `Quick
              test_thrash_actually_flips ] );
      ( "reports",
        [ Alcotest.test_case "fresh report" `Quick test_report_fresh;
          Alcotest.test_case "residual partial epoch counted" `Quick
            test_report_counts_residual;
          Alcotest.test_case "create validates policy" `Quick
            test_create_validates_policy;
          Alcotest.test_case "bad pid raises" `Quick test_tick_rejects_bad_pid ] );
      ( "batch",
        [ Alcotest.test_case "stale batches flip to combining" `Quick
            test_batch_stale_flips;
          Alcotest.test_case "read-dominated batches stay plain" `Quick
            test_batch_reads_gate_share;
          Alcotest.test_case "batch dispatch differential" `Quick
            test_batch_dispatch_differential ] );
      ( "parallel",
        [ Alcotest.test_case "max register exact across flips" `Quick
            test_parallel_maxreg_exact;
          Alcotest.test_case "counters exact across flips" `Quick
            test_parallel_counter_exact ] );
      ( "allocation",
        [ Alcotest.test_case "solo path allocates nothing" `Quick
            test_alloc_free_solo;
          Alcotest.test_case "plain dispatch allocates nothing" `Quick
            test_alloc_free_plain_mode ] ) ]
