(* Native-backend chaos: linearizability of histories collected under
   preemption/GC injection, a deliberately broken fixture that the burst
   checker must catch, stall-one-domain progress, fault counters, and a
   large invariant run under sustained chaos. *)

let lin_maxreg ~n = Linearize.Checker.check (module Linearize.Spec.Max_register) ~n
let lin_counter ~n = Linearize.Checker.check (module Linearize.Spec.Counter) ~n
let lin_snapshot ~n = Linearize.Checker.check (module Linearize.Spec.Snapshot) ~n

(* Aggressive injection rates so short test runs still see plenty of
   faults; chaos decisions stay deterministic per (seed, domain, index). *)
let cfg ?metrics seed =
  Harness.Chaos.config ~yield_ppm:200_000 ~storm:32 ~gc_ppm:50_000
    ~gc_bytes:2048 ?metrics ~seed ()

let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* A deliberately thrashing adaptive policy: with the combining bar at 0
   (any epoch wants in) and the benefit bar at 10 (no epoch can earn its
   keep), the dispatcher oscillates every epoch — maximal stress on the
   flip machinery. *)
let thrash_policy =
  { Harness.Adaptive.Policy.epoch_ops = 2;
    hysteresis = 1;
    min_updates = 1;
    update_share_min = 0.;
    cas_fail_min = 0.;
    stale_min = 2.;
    benefit_min = 10. }

(* {1 Bursts under chaos linearize} *)

let test_burst_maxreg () =
  List.iter
    (fun seed ->
      let c = cfg seed in
      let reg = Harness.Chaos.maxreg c ~n:3 ~bound:64 Harness.Instances.Algorithm_a in
      let ops = Harness.Chaos.burst_maxreg c ~domains:3 ~ops_per_domain:8 reg in
      Alcotest.(check int) "burst size" 24 (Array.length ops);
      Alcotest.(check bool)
        (Printf.sprintf "algorithm A burst linearizes (seed %d)" seed)
        true
        (lin_maxreg ~n:3 ops))
    seeds

let test_burst_counter () =
  List.iter
    (fun seed ->
      let c = cfg seed in
      let cnt = Harness.Chaos.counter c ~n:3 ~bound:64 Harness.Instances.Farray_counter in
      let ops = Harness.Chaos.burst_counter c ~domains:3 ~ops_per_domain:8 cnt in
      Alcotest.(check bool)
        (Printf.sprintf "f-array counter burst linearizes (seed %d)" seed)
        true
        (lin_counter ~n:3 ops))
    seeds

let test_burst_snapshot () =
  List.iter
    (fun seed ->
      let c = cfg seed in
      let s = Harness.Chaos.snapshot c ~n:3 Harness.Instances.Farray_snapshot in
      let ops = Harness.Chaos.burst_snapshot c ~domains:3 ~ops_per_domain:6 s in
      Alcotest.(check bool)
        (Printf.sprintf "f-array snapshot burst linearizes (seed %d)" seed)
        true
        (lin_snapshot ~n:3 ops))
    seeds

(* Combining backends under the same aggressive chaos: injection happens
   at op boundaries (the arena's Atomics are inlined), so storms park
   domains right after publishing to a slot or releasing the combiner
   lock — the histories must still linearize. *)
let test_burst_combining () =
  List.iter
    (fun seed ->
      let c = cfg seed in
      List.iter
        (fun impl ->
          let reg, _arena =
            Option.get (Harness.Chaos.maxreg_combining c ~n:3 ~domains:3 impl)
          in
          let ops =
            Harness.Chaos.burst_maxreg c ~domains:3 ~ops_per_domain:8 reg
          in
          Alcotest.(check bool)
            (Printf.sprintf "combining %s burst linearizes (seed %d)"
               (Harness.Instances.maxreg_name impl)
               seed)
            true
            (lin_maxreg ~n:3 ops))
        [ Harness.Instances.Algorithm_a; Harness.Instances.Cas_maxreg ];
      let cnt, _arena =
        Option.get
          (Harness.Chaos.counter_combining c ~n:3 ~domains:3
             Harness.Instances.Farray_counter)
      in
      let ops = Harness.Chaos.burst_counter c ~domains:3 ~ops_per_domain:8 cnt in
      Alcotest.(check bool)
        (Printf.sprintf "combining f-array counter burst linearizes (seed %d)"
           seed)
        true
        (lin_counter ~n:3 ops))
    seeds

(* And a soak: exact totals and maxima through the arena protocol under
   sustained chaos, too many ops for full history checking. *)
let test_combining_invariants_under_chaos () =
  let c = cfg 97 in
  let domains = 4 in
  let per_domain = 5_000 in
  let cnt, _ =
    Option.get
      (Harness.Chaos.counter_combining c ~n:domains ~domains
         Harness.Instances.Farray_counter)
  in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains (fun pid ->
        for _ = 1 to per_domain do
          cnt.increment ~pid
        done)
  in
  Alcotest.(check int) "combining counter exact under chaos"
    (domains * per_domain) (cnt.read ());
  let reg, arena =
    Option.get
      (Harness.Chaos.maxreg_combining c ~n:domains ~domains
         Harness.Instances.Algorithm_a)
  in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains (fun pid ->
        for v = 1 to per_domain do
          reg.write_max ~pid ((v * domains) + pid)
        done)
  in
  Alcotest.(check int) "combining maximum exact under chaos"
    ((per_domain * domains) + (domains - 1))
    (reg.read_max ());
  (* every update is accounted for somewhere: lock-held drains,
     combined batches, or eliminations *)
  let s = Smem.Combine.stats arena in
  Alcotest.(check bool) "arena saw activity" true
    (s.Smem.Combine.lock_acquisitions + s.Smem.Combine.eliminations > 0)

(* The adaptive soak: exact totals and maxima through many forced mode
   flips under sustained chaos.  The flip-prone policy (epoch every 64
   updates, combining bar 0, benefit bar 10) keeps the dispatcher
   oscillating, so plain CAS updates race arena applies across hundreds
   of mixed-mode windows — the invariants must hold anyway, and the
   report must stay sane. *)
let test_adaptive_invariants_under_chaos () =
  let c = cfg 131 in
  let domains = 4 in
  let per_domain = 5_000 in
  let flip_policy =
    { thrash_policy with Harness.Adaptive.Policy.epoch_ops = 64 }
  in
  let cnt, chandle =
    Harness.Instances.farray_c_native_adaptive ~policy:flip_policy ~n:domains
      ~domains ()
  in
  let cnt = Harness.Chaos.instrument_counter c cnt in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains (fun pid ->
        for _ = 1 to per_domain do
          cnt.increment ~pid
        done)
  in
  Alcotest.(check int) "adaptive counter exact under chaos"
    (domains * per_domain) (cnt.read ());
  let cr = Harness.Adaptive.Farray_c.report chandle in
  Alcotest.(check bool) "counter flips bounded and present" true
    (cr.Harness.Adaptive.epoch_flips > 0
    && cr.Harness.Adaptive.epoch_flips <= cr.Harness.Adaptive.epochs);
  Alcotest.(check bool) "combining share within [0, 100]" true
    (cr.Harness.Adaptive.combining_ops_pct >= 0.
    && cr.Harness.Adaptive.combining_ops_pct <= 100.);
  let reg, handle =
    Harness.Instances.alg_a_native_adaptive ~policy:flip_policy ~n:domains
      ~domains ()
  in
  let reg = Harness.Chaos.instrument_maxreg c reg in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains (fun pid ->
        for v = 1 to per_domain do
          reg.write_max ~pid ((v * domains) + pid)
        done)
  in
  Alcotest.(check int) "adaptive maximum exact under chaos"
    ((per_domain * domains) + (domains - 1))
    (reg.read_max ());
  let r = Harness.Adaptive.Alg_a.report handle in
  Alcotest.(check bool) "maxreg flips present" true
    (r.Harness.Adaptive.epoch_flips > 0);
  (* with the benefit bar unreachable, combining windows are transient:
     some ops ran there, but the dispatcher always comes back *)
  Alcotest.(check bool) "combining share strictly inside (0, 100)" true
    (r.Harness.Adaptive.combining_ops_pct > 0.
    && r.Harness.Adaptive.combining_ops_pct < 100.)

(* Adaptive backends under chaos.  Two flavors per seed: the default
   policies (dispatch machinery live, flips rare at burst scale), and
   the deliberately thrashing policy above — epoch every 2 updates,
   hysteresis 1, a combining bar of 0 and a benefit bar of 10 — so the
   mode flips back and forth INSIDE the burst while storms land astride
   the epoch lock.  Histories must linearize either way. *)
let test_burst_adaptive () =
  List.iter
    (fun seed ->
      let c = cfg seed in
      List.iter
        (fun impl ->
          let reg, _arena, _report =
            Option.get (Harness.Chaos.maxreg_adaptive c ~n:3 ~domains:3 impl)
          in
          let ops =
            Harness.Chaos.burst_maxreg c ~domains:3 ~ops_per_domain:8 reg
          in
          Alcotest.(check bool)
            (Printf.sprintf "adaptive %s burst linearizes (seed %d)"
               (Harness.Instances.maxreg_name impl)
               seed)
            true
            (lin_maxreg ~n:3 ops))
        [ Harness.Instances.Algorithm_a; Harness.Instances.Cas_maxreg ];
      let cnt, _arena, _report =
        Option.get
          (Harness.Chaos.counter_adaptive c ~n:3 ~domains:3
             Harness.Instances.Farray_counter)
      in
      let ops = Harness.Chaos.burst_counter c ~domains:3 ~ops_per_domain:8 cnt in
      Alcotest.(check bool)
        (Printf.sprintf "adaptive f-array counter burst linearizes (seed %d)"
           seed)
        true
        (lin_counter ~n:3 ops))
    seeds

let test_burst_adaptive_thrashing () =
  List.iter
    (fun seed ->
      let c = cfg seed in
      let inst, handle =
        Harness.Instances.alg_a_native_adaptive ~policy:thrash_policy ~n:3
          ~domains:3 ()
      in
      let reg = Harness.Chaos.instrument_maxreg c inst in
      let ops = Harness.Chaos.burst_maxreg c ~domains:3 ~ops_per_domain:8 reg in
      Alcotest.(check bool)
        (Printf.sprintf
           "adaptive algorithm A burst linearizes across flips (seed %d)" seed)
        true
        (lin_maxreg ~n:3 ops);
      let r = Harness.Adaptive.Alg_a.report handle in
      Alcotest.(check bool)
        (Printf.sprintf "thrash policy actually flipped (seed %d)" seed)
        true
        (r.Harness.Adaptive.epoch_flips > 0);
      let cinst, chandle =
        Harness.Instances.farray_c_native_adaptive ~policy:thrash_policy ~n:3
          ~domains:3 ()
      in
      let cnt = Harness.Chaos.instrument_counter c cinst in
      let ops =
        Harness.Chaos.burst_counter c ~domains:3 ~ops_per_domain:8 cnt
      in
      Alcotest.(check bool)
        (Printf.sprintf
           "adaptive f-array burst linearizes across flips (seed %d)" seed)
        true
        (lin_counter ~n:3 ops);
      let cr = Harness.Adaptive.Farray_c.report chandle in
      Alcotest.(check bool)
        (Printf.sprintf "counter thrash policy flipped (seed %d)" seed)
        true
        (cr.Harness.Adaptive.epoch_flips > 0))
    seeds

let test_burst_rejects_oversize () =
  let c = cfg 1 in
  let reg = Harness.Chaos.maxreg c ~n:2 ~bound:64 Harness.Instances.Cas_maxreg in
  Alcotest.check_raises "over 62 ops refused"
    (Invalid_argument "Chaos.burst: more than 62 operations (checker limit)")
    (fun () ->
      ignore
        (Harness.Chaos.burst_maxreg c ~domains:7 ~ops_per_domain:9 reg
          : Linearize.History.op array))

(* {1 A deliberately broken fixture is caught}

   A max register whose write is read-then-write with a widened race
   window: two domains racing lose updates, and a subsequent read
   observes a value below an already-returned write — not linearizable.
   The burst checker must catch it within a few seeds. *)

let broken_maxreg () : Maxreg.Max_register.instance =
  let cell = Atomic.make 0 in
  { read_max = (fun () -> Atomic.get cell);
    write_max =
      (fun ~pid:_ v ->
        let cur = Atomic.get cell in
        if v > cur then begin
          (* widen the lost-update window *)
          for _ = 1 to 2_000 do
            Domain.cpu_relax ()
          done;
          Atomic.set cell v
        end) }

let test_broken_fixture_caught () =
  let caught = ref None in
  let seed = ref 0 in
  while !caught = None && !seed < 100 do
    incr seed;
    let c = cfg !seed in
    let reg = broken_maxreg () in
    let ops = Harness.Chaos.burst_maxreg c ~domains:4 ~ops_per_domain:8 reg in
    if not (lin_maxreg ~n:4 ops) then caught := Some !seed
  done;
  match !caught with
  | Some seed ->
    (* replayability: the op mix is deterministic from the seed, so the
       report "seed N violated" is an actionable repro line *)
    Alcotest.(check bool)
      (Printf.sprintf "lost-update register caught (seed %d)" seed)
      true true
  | None -> Alcotest.fail "lost-update register never caught in 100 bursts"

(* {1 Stall-one-domain: non-blocking progress} *)

let test_stall_one_domain_counter () =
  let metrics = Obs.Metrics.create ~domains:4 () in
  (* yield-only injection: forced minor collections are stop-the-world
     across domains, which on a single-core host adds multi-ms barrier
     costs to every domain and would drown the signal this test measures
     (who waits for whom at the algorithm level) *)
  let c =
    Harness.Chaos.config ~yield_ppm:50_000 ~storm:16 ~gc_ppm:0 ~metrics
      ~seed:7 ()
  in
  let cnt = Harness.Chaos.counter c ~n:4 ~bound:1024 Harness.Instances.Farray_counter in
  let ops = 200 in
  let stall_s = 0.4 in
  let report =
    Harness.Chaos.run_stall_one c ~domains:4 ~stalled:0 ~stall_s ~ops
      ~op:(fun ~pid _i -> cnt.increment ~pid)
  in
  Alcotest.(check (array int)) "every domain completed all its ops"
    [| ops; ops; ops; ops |] report.Harness.Chaos.completed;
  Alcotest.(check int) "counter total exact despite the stall" (4 * ops)
    (cnt.read ());
  (* wait-freedom on hardware: the running domains never wait for the
     stalled one, so their wall-clock must not absorb the stall *)
  Array.iteri
    (fun pid elapsed ->
      if pid <> report.Harness.Chaos.stalled then
        Alcotest.(check bool)
          (Printf.sprintf "domain %d did not absorb the stall (%.3fs)" pid
             elapsed)
          true
          (elapsed < stall_s /. 2.))
    report.Harness.Chaos.elapsed;
  Alcotest.(check bool) "stalled domain did absorb it" true
    (report.Harness.Chaos.elapsed.(0) >= stall_s);
  Alcotest.(check int) "stall recorded in metrics" 1
    (Obs.Metrics.totals metrics).Obs.Metrics.fault_stalls

(* {1 Fault counters} *)

let test_fault_counters_recorded () =
  let metrics = Obs.Metrics.create ~domains:2 () in
  let c =
    Harness.Chaos.config ~yield_ppm:500_000 ~storm:4 ~gc_ppm:400_000
      ~gc_bytes:256 ~metrics ~seed:11 ()
  in
  let reg = Harness.Chaos.maxreg c ~n:2 ~bound:64 Harness.Instances.Cas_maxreg in
  for v = 1 to 200 do
    reg.write_max ~pid:0 v
  done;
  let t = Obs.Metrics.totals metrics in
  Alcotest.(check bool)
    (Printf.sprintf "yield storms recorded (%d)" t.Obs.Metrics.fault_yields)
    true
    (t.Obs.Metrics.fault_yields > 0);
  Alcotest.(check bool)
    (Printf.sprintf "gc pressure recorded (%d)" t.Obs.Metrics.fault_gcs)
    true
    (t.Obs.Metrics.fault_gcs > 0);
  (* zero-rate config injects nothing *)
  let quiet = Obs.Metrics.create ~domains:2 () in
  let c0 =
    Harness.Chaos.config ~yield_ppm:0 ~gc_ppm:0 ~metrics:quiet ~seed:11 ()
  in
  let reg0 = Harness.Chaos.maxreg c0 ~n:2 ~bound:64 Harness.Instances.Cas_maxreg in
  for v = 1 to 50 do
    reg0.write_max ~pid:0 v
  done;
  let q = Obs.Metrics.totals quiet in
  Alcotest.(check int) "quiet config injects nothing" 0
    (q.Obs.Metrics.fault_yields + q.Obs.Metrics.fault_gcs)

(* {1 Large invariant run under sustained chaos}

   The acceptance-scale runs (>= 10^6 ops per structure) live in
   [stress.exe --chaos] and CI; this is the same machinery at test scale:
   parallel domains under injection, exact totals and monotone maxima. *)

let test_invariants_under_chaos () =
  let domains = 4 in
  let per_domain = 10_000 in
  (* production injection rates; the aggressive [cfg] rates are for the
     short bursts above (acceptance-scale runs live in stress --chaos) *)
  let c = Harness.Chaos.config ~seed:21 () in
  let cnt =
    Harness.Chaos.counter c ~n:domains ~bound:(1 lsl 30)
      Harness.Instances.Farray_counter
  in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains (fun pid ->
        for _ = 1 to per_domain do
          cnt.increment ~pid
        done)
  in
  Alcotest.(check int) "counter total exact under chaos"
    (domains * per_domain) (cnt.read ());
  let reg =
    Harness.Chaos.maxreg c ~n:domains ~bound:(1 lsl 30)
      Harness.Instances.Algorithm_a
  in
  let monotone = ref true in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains (fun pid ->
        if pid = 0 then begin
          let last = ref 0 in
          for _ = 1 to per_domain do
            let v = reg.read_max () in
            if v < !last then monotone := false;
            last := v
          done
        end
        else
          for v = 1 to per_domain do
            reg.write_max ~pid ((v * domains) + pid)
          done)
  in
  Alcotest.(check bool) "algorithm A reads monotone under chaos" true !monotone;
  Alcotest.(check int) "final maximum exact"
    ((per_domain * domains) + (domains - 1))
    (reg.read_max ())

let () =
  Alcotest.run "chaos"
    [ ( "bursts",
        [ Alcotest.test_case "algorithm A bursts linearize" `Quick
            test_burst_maxreg;
          Alcotest.test_case "f-array counter bursts linearize" `Quick
            test_burst_counter;
          Alcotest.test_case "f-array snapshot bursts linearize" `Quick
            test_burst_snapshot;
          Alcotest.test_case "combining bursts linearize" `Quick
            test_burst_combining;
          Alcotest.test_case "adaptive bursts linearize" `Quick
            test_burst_adaptive;
          Alcotest.test_case "adaptive bursts linearize across flips" `Quick
            test_burst_adaptive_thrashing;
          Alcotest.test_case "oversize burst refused" `Quick
            test_burst_rejects_oversize ] );
      ( "broken fixture",
        [ Alcotest.test_case "lost-update register caught" `Quick
            test_broken_fixture_caught ] );
      ( "stall one domain",
        [ Alcotest.test_case "counter progress unaffected" `Quick
            test_stall_one_domain_counter ] );
      ( "fault counters",
        [ Alcotest.test_case "yields and gc recorded, quiet mode silent"
            `Quick test_fault_counters_recorded ] );
      ( "invariants",
        [ Alcotest.test_case "totals exact, maxima monotone" `Slow
            test_invariants_under_chaos;
          Alcotest.test_case "combining totals and maxima exact" `Slow
            test_combining_invariants_under_chaos;
          Alcotest.test_case "adaptive totals and maxima exact across flips"
            `Slow test_adaptive_invariants_under_chaos ] ) ]
