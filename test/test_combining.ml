(* Tests of the flat-combining layer: Smem.Combine arena semantics,
   differential equivalence of the combining backends against the plain
   unboxed natives on random operation sequences, zero-allocation
   assertions on the uncontended fast paths, and multi-domain exactness.
   Linearizability of combining histories under chaos lives in
   test_chaos.ml; this file is about sequential semantics and the
   fast-path cost model. *)

module C = Smem.Combine
module AC = Harness.Combining.Alg_a
module CC = Harness.Combining.Cas
module FC = Harness.Combining.Farray_c
module NC = Harness.Combining.Naive_c
module AU = Maxreg.Algorithm_a.Unboxed
module CU = Maxreg.Cas_maxreg.Unboxed
module FU = Counters.Farray_counter.Unboxed
module NU = Counters.Naive_counter.Unboxed

(* {1 Arena semantics} *)

let test_create_validates () =
  Alcotest.check_raises "domains = 0 refused"
    (Invalid_argument "Combine.create: domains out of [1, 62]") (fun () ->
      ignore (C.create ~domains:0 ~combine:( + ) () : C.t));
  Alcotest.check_raises "domains = 63 refused"
    (Invalid_argument "Combine.create: domains out of [1, 62]") (fun () ->
      ignore (C.create ~domains:(C.max_domains + 1) ~combine:( + ) () : C.t));
  let t = C.create ~domains:C.max_domains ~combine:( + ) () in
  Alcotest.(check int) "domains accessor" C.max_domains (C.domains t)

let test_submit_validates () =
  let t = C.create ~domains:2 ~combine:( + ) () in
  let apply _ _ = () in
  Alcotest.check_raises "sentinel op refused"
    (Invalid_argument "Combine.submit: op is the empty sentinel") (fun () ->
      C.submit t ~domain:0 ~apply min_int);
  Alcotest.check_raises "domain out of range refused"
    (Invalid_argument "Combine.submit: bad domain") (fun () ->
      C.submit t ~domain:2 ~apply 1)

let test_single_domain_bypass () =
  let t = C.create ~domains:1 ~combine:max () in
  let applied = ref [] in
  let apply d op = applied := (d, op) :: !applied in
  C.submit t ~domain:0 ~apply 7;
  C.submit t ~domain:0 ~apply 9;
  Alcotest.(check (list (pair int int)))
    "ops applied directly, in order" [ (0, 7); (0, 9) ]
    (List.rev !applied);
  (* the bypass takes no lock and records nothing *)
  Alcotest.(check int) "no lock acquisitions" 0 (C.stats t).C.lock_acquisitions;
  Alcotest.(check int) "no batches" 0 (C.stats t).C.batches

let test_solo_submit_stats () =
  let t = C.create ~domains:2 ~combine:max () in
  let total = ref 0 in
  let apply _ op = total := !total + op in
  C.submit t ~domain:0 ~apply 5;
  C.submit t ~domain:1 ~apply 6;
  Alcotest.(check int) "both ops applied" 11 !total;
  let s = C.stats t in
  Alcotest.(check int) "one lock acquisition per solo submit" 2
    s.C.lock_acquisitions;
  (* a drain of one op is not a batch: batches/combined_ops count only
     genuine combining (>= 2 ops per drain) *)
  Alcotest.(check int) "no batches solo" 0 s.C.batches;
  Alcotest.(check int) "no combined ops solo" 0 s.C.combined_ops;
  Alcotest.(check int) "batch_max stays 0" 0 s.C.batch_max

let test_elimination_and_reset () =
  let t = C.create ~domains:2 ~combine:max () in
  C.record_elimination t ~domain:0;
  C.record_elimination t ~domain:1;
  Alcotest.(check int) "eliminations tallied" 2 (C.stats t).C.eliminations;
  C.reset_stats t;
  Alcotest.(check bool) "reset zeroes everything" true
    (C.stats t = C.zero_stats)

(* {1 Differential: combining vs plain unboxed}

   The combining backends claim "same structure, different submission
   protocol"; on sequential random mixes of reads and updates they must
   be observationally identical to the plain unboxed natives.  The
   arena is sized for 3 domains and driven from one thread with rotating
   pids, so the solo-combiner drain path (lock, publish-free apply) is
   exercised for every pid, not just the bypass. *)

(* op = (pid, value): value >= 0 is an update, -1 a read *)
let ops_gen ~n =
  QCheck.make
    ~print:QCheck.Print.(list (pair int int))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 1 120)
       (QCheck.Gen.pair (QCheck.Gen.int_range 0 (n - 1))
          (QCheck.Gen.int_range (-1) 40)))

let differential_maxreg_alg_a =
  QCheck.Test.make ~count:200 ~name:"algorithm-a: combining = plain"
    (ops_gen ~n:3)
    (fun ops ->
      let plain = AU.create ~n:3 () in
      let comb = AC.create ~n:3 ~domains:3 () in
      List.for_all
        (fun (pid, v) ->
          if v < 0 then AU.read_max plain = AC.read_max comb
          else begin
            AU.write_max plain ~pid v;
            AC.write_max comb ~pid v;
            AU.read_max plain = AC.read_max comb
          end)
        ops)

let differential_maxreg_cas =
  QCheck.Test.make ~count:200 ~name:"cas-loop: combining = plain"
    (ops_gen ~n:3)
    (fun ops ->
      let plain = CU.create () in
      let comb = CC.create ~domains:3 () in
      List.for_all
        (fun (pid, v) ->
          if v < 0 then CU.read_max plain = CC.read_max comb
          else begin
            CU.write_max plain ~pid v;
            CC.write_max comb ~pid v;
            CU.read_max plain = CC.read_max comb
          end)
        ops)

let differential_counter_farray =
  QCheck.Test.make ~count:200 ~name:"farray: combining = plain"
    (ops_gen ~n:3)
    (fun ops ->
      let plain = FU.create ~n:3 () in
      let comb = FC.create ~n:3 ~domains:3 () in
      List.for_all
        (fun (pid, v) ->
          if v < 0 then FU.read plain = FC.read comb
          else begin
            FU.increment plain ~pid;
            FC.increment comb ~pid;
            FU.read plain = FC.read comb
          end)
        ops)

let differential_counter_naive =
  QCheck.Test.make ~count:200 ~name:"naive: combining = plain"
    (ops_gen ~n:3)
    (fun ops ->
      let plain = NU.create ~n:3 () in
      let comb = NC.create ~n:3 ~domains:3 () in
      List.for_all
        (fun (pid, v) ->
          if v < 0 then NU.read plain = NC.read comb
          else begin
            NU.increment plain ~pid;
            NC.increment comb ~pid;
            NU.read plain = NC.read comb
          end)
        ops)

(* {1 Zero allocation on the fast paths}

   The uncontended paths must allocate nothing per op: the domains = 1
   arena bypass, the solo-combiner drain (lock held, no waiters), and
   algorithm A's elimination shortcut.  Same minor-heap-delta idiom as
   test_unboxed.ml. *)

let minor_delta f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let ops = 10_000
let slack = 256.0

let check_alloc_free name f =
  ignore (minor_delta f : float) (* warm up: force any one-time allocation *);
  let delta = minor_delta f in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d ops allocate <= %.0f words (got %.0f)" name ops
       slack delta)
    true (delta <= slack)

let test_alloc_free_bypass () =
  let reg = CC.create ~domains:1 () in
  let v0 = ref 0 in
  check_alloc_free "cas combining write_max (bypass)" (fun () ->
      let base = !v0 in
      for i = 1 to ops do
        CC.write_max reg ~pid:0 (base + i)
      done;
      v0 := base + ops);
  check_alloc_free "cas combining read_max" (fun () ->
      for _ = 1 to ops do
        ignore (CC.read_max reg : int)
      done);
  let cnt = FC.create ~n:1 ~domains:1 () in
  check_alloc_free "farray combining increment (bypass)" (fun () ->
      for _ = 1 to ops do
        FC.increment cnt ~pid:0
      done);
  check_alloc_free "farray combining read" (fun () ->
      for _ = 1 to ops do
        ignore (FC.read cnt : int)
      done)

let test_alloc_free_solo_combiner () =
  (* domains = 2, driven single-threaded: every submit takes the lock and
     drains alone — the whole arena protocol minus waiting *)
  let cnt = FC.create ~n:2 ~domains:2 () in
  check_alloc_free "farray combining increment (solo drain)" (fun () ->
      for i = 1 to ops do
        FC.increment cnt ~pid:(i land 1)
      done);
  let reg = AC.create ~n:2 ~domains:2 () in
  let a0 = ref 0 in
  check_alloc_free "algorithm-a combining write_max (solo drain)" (fun () ->
      let base = !a0 in
      for i = 1 to ops do
        AC.write_max reg ~pid:(i land 1) (base + i)
      done;
      a0 := base + ops)

let test_alloc_free_elimination () =
  let reg = AC.create ~n:2 ~domains:2 () in
  AC.write_max reg ~pid:0 1_000_000;
  check_alloc_free "algorithm-a combining elimination" (fun () ->
      for i = 1 to ops do
        AC.write_max reg ~pid:(i land 1) i
      done);
  Alcotest.(check bool) "eliminations actually counted" true
    ((C.stats (AC.arena reg)).C.eliminations >= ops)

(* {1 Multi-domain exactness}

   Real parallelism through the arena: counter totals must be exact and
   max registers must end at the true maximum, with the combiner stats
   accounting for every update (combined + solo drains + eliminations). *)

let domains_used = 4
let per_domain = 20_000

let test_parallel_counter_exact () =
  let cnt = FC.create ~n:domains_used ~domains:domains_used () in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains_used (fun pid ->
        for _ = 1 to per_domain do
          FC.increment cnt ~pid
        done)
  in
  Alcotest.(check int) "farray combining total exact"
    (domains_used * per_domain) (FC.read cnt);
  let ncnt = NC.create ~n:domains_used ~domains:domains_used () in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains_used (fun pid ->
        for _ = 1 to per_domain do
          NC.increment ncnt ~pid
        done)
  in
  Alcotest.(check int) "naive combining total exact"
    (domains_used * per_domain) (NC.read ncnt)

let test_parallel_maxreg_exact () =
  let reg = AC.create ~n:domains_used ~domains:domains_used () in
  let monotone = Atomic.make true in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains_used (fun pid ->
        if pid = 0 then begin
          let last = ref 0 in
          for _ = 1 to per_domain do
            let v = AC.read_max reg in
            if v < !last then Atomic.set monotone false;
            last := v
          done
        end
        else
          for v = 1 to per_domain do
            AC.write_max reg ~pid ((v * domains_used) + pid)
          done)
  in
  Alcotest.(check bool) "combining reads monotone" true (Atomic.get monotone);
  Alcotest.(check int) "combining final maximum"
    ((per_domain * domains_used) + (domains_used - 1))
    (AC.read_max reg);
  let creg = CC.create ~domains:domains_used () in
  let (_ : unit array) =
    Harness.Chaos.Inject.spawn_indexed domains_used (fun pid ->
        for v = 1 to per_domain do
          CC.write_max creg ~pid ((v * domains_used) + pid)
        done)
  in
  Alcotest.(check int) "cas combining final maximum"
    ((per_domain * domains_used) + (domains_used - 1))
    (CC.read_max creg)

(* {1 Parking backoff (scripted clock)}

   The park loop must sleep yield_s, 2*yield_s, 4*yield_s, ... capped at
   yield_s * 2^6, re-checking slot and lock before every sleep.  The old
   code slept a constant 50 µs and reset the spin budget after every
   sleep, so a long-parked domain reburned its whole spin allowance
   between naps.  A scripted [~sleep] records the exact durations the
   arena asks for — no wall clock involved. *)

let test_create_validates_yield () =
  Alcotest.check_raises "yield_s = 0 refused"
    (Invalid_argument "Combine.create: non-positive yield_s") (fun () ->
      ignore (C.create ~yield_s:0. ~domains:2 ~combine:( + ) () : C.t));
  Alcotest.check_raises "negative yield_s refused"
    (Invalid_argument "Combine.create: non-positive yield_s") (fun () ->
      ignore (C.create ~yield_s:(-1e-6) ~domains:2 ~combine:( + ) () : C.t))

let test_backoff_doubles_and_caps () =
  let y = 0.001 in
  (* written only by the parked domain (the main thread below) *)
  let sleeps = ref [] in
  let release = Atomic.make false in
  let in_apply = Atomic.make false in
  let sleep s =
    sleeps := s :: !sleeps;
    if List.length !sleeps >= 10 then Atomic.set release true
  in
  let t = C.create ~spin:16 ~yield_s:y ~sleep ~domains:2 ~combine:max () in
  let total = Atomic.make 0 in
  (* the apply runs while holding the combiner lock; gating it keeps the
     lock held until the parked domain has recorded enough sleeps *)
  let gate_apply _ op =
    Atomic.set in_apply true;
    while not (Atomic.get release) do
      Domain.cpu_relax ()
    done;
    ignore (Atomic.fetch_and_add total op : int)
  in
  let d = Domain.spawn (fun () -> C.submit t ~domain:0 ~apply:gate_apply 1) in
  while not (Atomic.get in_apply) do
    Domain.cpu_relax ()
  done;
  (* publishes while the lock is held inside the gated apply: must park *)
  C.submit t ~domain:1 ~apply:gate_apply 2;
  Domain.join d;
  let recorded = List.rev !sleeps in
  Alcotest.(check bool) "parked at least 10 times" true
    (List.length recorded >= 10);
  List.iteri
    (fun i s ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "sleep %d doubles then caps" i)
        (y *. float_of_int (1 lsl min i 6))
        s)
    recorded;
  Alcotest.(check int) "both ops applied" 3 (Atomic.get total)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "combining"
    [ ( "arena",
        [ Alcotest.test_case "create validates" `Quick test_create_validates;
          Alcotest.test_case "submit validates" `Quick test_submit_validates;
          Alcotest.test_case "single-domain bypass" `Quick
            test_single_domain_bypass;
          Alcotest.test_case "solo submit stats" `Quick test_solo_submit_stats;
          Alcotest.test_case "elimination tally and reset" `Quick
            test_elimination_and_reset;
          Alcotest.test_case "yield_s validated" `Quick
            test_create_validates_yield;
          Alcotest.test_case "parking backoff doubles then caps" `Quick
            test_backoff_doubles_and_caps ] );
      ( "differential",
        qsuite
          [ differential_maxreg_alg_a;
            differential_maxreg_cas;
            differential_counter_farray;
            differential_counter_naive ] );
      ( "allocation",
        [ Alcotest.test_case "arena bypass allocates nothing" `Quick
            test_alloc_free_bypass;
          Alcotest.test_case "solo combiner allocates nothing" `Quick
            test_alloc_free_solo_combiner;
          Alcotest.test_case "elimination allocates nothing" `Quick
            test_alloc_free_elimination ] );
      ( "parallel",
        [ Alcotest.test_case "counters exact under 4 domains" `Quick
            test_parallel_counter_exact;
          Alcotest.test_case "max registers exact under 4 domains" `Quick
            test_parallel_maxreg_exact ] ) ]
