(* The static-vs-dynamic differential for the step-complexity certifier
   (lib/lint/cost.ml, rule C1).

   For every budgeted boxed operation, drive the real implementation
   solo over the Memsim simulator (or explicit counting memories for the
   hybrid snapshot, whose unboxed half is native) and check that the
   observed shared-memory step count never exceeds
   [Lint.Summary.envelope] of the operation's budgeted class — the
   concrete ceiling the certificate promises.  A final coverage check
   pins that every budget row is either measured here or on an explicit
   skip list (Unbounded allowlist entries, the non-simulable unboxed
   native backend, internal helpers exercised inside a measured op), so
   a new budget row cannot silently dodge the differential. *)

let n = 8
let bound = 64

(* Worst observed solo step count over a list of operations. *)
let max_steps session thunks =
  List.fold_left
    (fun acc f ->
      Memsim.Session.reset_steps session;
      f ();
      max acc (Memsim.Session.direct_steps session))
    0 thunks

let values = [ 1; 3; 7; 20; 41; 63 ]

(* ------------------------------------------------------------------ *)
(* Measurements: (op path, envelope size, observed max steps).  The
   envelope size is the parameter the budget class ranges over: the
   value bound for max registers and counters, the process count for
   snapshots and the tree primitives. *)

let maxreg_measurements impl prefix ~with_write =
  let s = Memsim.Session.create () in
  let inst = Harness.Instances.maxreg_sim s ~n ~bound impl in
  let w =
    max_steps s
      (List.map
         (fun v () -> inst.Maxreg.Max_register.write_max ~pid:(v mod n) v)
         values)
  in
  let r =
    max_steps s
      (List.map
         (fun _ () -> ignore (inst.Maxreg.Max_register.read_max ()))
         values)
  in
  (prefix @ [ "read_max" ], bound, r)
  :: (if with_write then [ (prefix @ [ "write_max" ], bound, w) ] else [])

let counter_measurements impl prefix =
  let s = Memsim.Session.create () in
  let inst = Harness.Instances.counter_sim s ~n ~bound impl in
  let incr =
    max_steps s
      (List.map
         (fun i () -> inst.Counters.Counter.increment ~pid:(i mod n))
         [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])
  in
  let read =
    max_steps s
      (List.map (fun _ () -> ignore (inst.Counters.Counter.read ())) [ 1; 2 ])
  in
  [ (prefix @ [ "increment" ], bound, incr);
    (prefix @ [ "read" ], bound, read) ]

let snapshot_measurements impl prefix ~with_scan =
  let s = Memsim.Session.create () in
  let inst = Harness.Instances.snapshot_sim s ~n impl in
  let upd =
    max_steps s
      (List.map
         (fun v () -> inst.Snapshots.Snapshot.update ~pid:(v mod n) v)
         values)
  in
  let sc =
    max_steps s
      (List.map (fun _ () -> ignore (inst.Snapshots.Snapshot.scan ())) [ 1; 2 ])
  in
  (prefix @ [ "update" ], n, upd)
  :: (if with_scan then [ (prefix @ [ "scan" ], n, sc) ] else [])

let farray_measurements () =
  let s = Memsim.Session.create () in
  let module M = (val Smem.Sim_memory.bind s) in
  let module F = Farray.Make (M) in
  let fa = F.create ~n ~combine:Memsim.Simval.max_val () in
  let upd =
    max_steps s
      (List.map
         (fun v () -> F.update fa ~leaf:(v mod n) (Memsim.Simval.Int v))
         values)
  in
  let rd = max_steps s [ (fun () -> ignore (F.read fa)) ] in
  let rl = max_steps s [ (fun () -> ignore (F.read_leaf fa 0)) ] in
  [ ([ "Farray"; "Make"; "update" ], n, upd);
    ([ "Farray"; "Make"; "read" ], n, rd);
    ([ "Farray"; "Make"; "read_leaf" ], n, rl) ]

let propagate_measurements () =
  let s = Memsim.Session.create () in
  let module M = (val Smem.Sim_memory.bind s) in
  let module P = Treeprim.Propagate.Make (M) in
  let combine = Memsim.Simval.max_val in
  let _root, leaves =
    Treeprim.Tree_shape.complete
      ~mk:(fun () -> M.make Memsim.Simval.Bot)
      ~nleaves:n ()
  in
  let leaf = leaves.(0) in
  let parent =
    match leaf.Treeprim.Tree_shape.parent with
    | Some p -> p
    | None -> Alcotest.fail "complete tree of 8 leaves has no internal node"
  in
  M.write leaf.Treeprim.Tree_shape.data (Memsim.Simval.Int 5);
  let refr = max_steps s [ (fun () -> P.refresh ~combine parent) ] in
  let prop = max_steps s [ (fun () -> P.propagate ~combine leaf) ] in
  [ ([ "Propagate"; "Make"; "refresh" ], n, refr);
    ([ "Propagate"; "Make"; "propagate" ], n, prop) ]

(* The hybrid snapshot mixes a boxed and an int memory, so count both
   halves with explicit wrappers instead of a simulator session. *)
let hybrid_measurements () =
  let int_steps = ref 0 in
  let module U = struct
    let bot = Smem.Unboxed_memory.bot

    type t = int Atomic.t

    let make ?name v =
      ignore name;
      Atomic.make v

    let read r =
      incr int_steps;
      Atomic.get r

    let write r v =
      incr int_steps;
      Atomic.set r v

    let cas r ~expected ~desired =
      incr int_steps;
      Atomic.compare_and_set r expected desired
  end in
  let bmem, counts = Smem.Counting_memory.wrap (module Smem.Atomic_memory) in
  let module B = (val bmem) in
  let module H = Snapshots.Hybrid_snapshot.Make (B) (U) in
  let h = H.create ~n in
  let measure thunks =
    List.fold_left
      (fun acc f ->
        Smem.Counting_memory.reset counts;
        int_steps := 0;
        f ();
        max acc (Smem.Counting_memory.total counts + !int_steps))
      0 thunks
  in
  let upd =
    measure (List.map (fun v () -> H.update h ~pid:(v mod n) v) values)
  in
  let sc = measure [ (fun () -> ignore (H.scan h)) ] in
  [ ([ "Hybrid_snapshot"; "Make"; "update" ], n, upd);
    ([ "Hybrid_snapshot"; "Make"; "scan" ], n, sc) ]

(* The dial family instantiates one construction at four dial points;
   the static rows certify the worst case over the dial (read Linear,
   update Log), so the row measurement takes the max over every dial —
   and a separate test below holds each dial point to its own tighter
   parametric budget. *)
let dial_point_measurements dial =
  let s = Memsim.Session.create () in
  let c = Harness.Instances.counter_dial_sim s ~n dial in
  let r = Harness.Instances.maxreg_dial_sim s ~n dial in
  let c_inc =
    max_steps s
      (List.map
         (fun i () -> c.Counters.Counter.increment ~pid:(i mod n))
         [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])
  in
  let c_read =
    max_steps s
      (List.map (fun _ () -> ignore (c.Counters.Counter.read ())) [ 1; 2 ])
  in
  let m_write =
    max_steps s
      (List.map
         (fun v () -> r.Maxreg.Max_register.write_max ~pid:(v mod n) v)
         values)
  in
  let m_read =
    max_steps s
      (List.map (fun _ () -> ignore (r.Maxreg.Max_register.read_max ())) values)
  in
  (c_read, c_inc, m_read, m_write)

let dial_measurements () =
  let worst =
    List.map (fun d -> (d, dial_point_measurements d)) Treeprim.Dial.all
  in
  let max_of proj =
    List.fold_left (fun acc (_, m) -> max acc (proj m)) 0 worst
  in
  [ ([ "Dial_counter"; "Make"; "read" ], n, max_of (fun (r, _, _, _) -> r));
    ([ "Dial_counter"; "Make"; "increment" ], n,
     max_of (fun (_, i, _, _) -> i));
    ([ "Dial_maxreg"; "Make"; "read_max" ], n, max_of (fun (_, _, r, _) -> r));
    ([ "Dial_maxreg"; "Make"; "write_max" ], n,
     max_of (fun (_, _, _, w) -> w)) ]

let all_measurements () =
  List.concat
    [ maxreg_measurements Harness.Instances.Algorithm_a
        [ "Algorithm_a"; "Make" ] ~with_write:true;
      maxreg_measurements Harness.Instances.Aac_maxreg
        [ "Aac_maxreg"; "Make" ] ~with_write:true;
      maxreg_measurements Harness.Instances.B1_maxreg
        [ "B1_maxreg"; "Make" ] ~with_write:true;
      (* the CAS write retry loop is the Unbounded allowlist entry *)
      maxreg_measurements Harness.Instances.Cas_maxreg
        [ "Cas_maxreg"; "Make" ] ~with_write:false;
      counter_measurements Harness.Instances.Naive_counter
        [ "Naive_counter"; "Make" ];
      counter_measurements Harness.Instances.Aac_counter
        [ "Aac_counter"; "Make" ];
      counter_measurements Harness.Instances.Farray_counter
        [ "Farray_counter"; "Make" ];
      (* the double-collect scan is the Unbounded allowlist entry *)
      snapshot_measurements Harness.Instances.Double_collect
        [ "Double_collect"; "Make" ] ~with_scan:false;
      snapshot_measurements Harness.Instances.Afek
        [ "Afek_snapshot"; "Make" ] ~with_scan:true;
      snapshot_measurements Harness.Instances.Farray_snapshot
        [ "Farray_snapshot"; "Make" ] ~with_scan:true;
      farray_measurements ();
      propagate_measurements ();
      hybrid_measurements ();
      dial_measurements () ]

(* ------------------------------------------------------------------ *)

let qual op = String.concat "." op

let test_dynamic_within_envelope () =
  let measured = all_measurements () in
  Alcotest.(check bool) "measurements ran" true (List.length measured > 20);
  List.iter
    (fun (op, size, steps) ->
      match Lint.Budgets.find Lint.Budgets.default op with
      | None -> Alcotest.failf "measured op %s has no budget row" (qual op)
      | Some row -> (
          match Lint.Summary.envelope ~n:size row.Lint.Budgets.budget with
          | None ->
            Alcotest.failf "%s measured against an Unbounded budget" (qual op)
          | Some cap ->
            if steps > cap then
              Alcotest.failf
                "%s: %d dynamic steps exceed the static envelope %d (%s)"
                (qual op) steps cap
                (Lint.Summary.bound_to_string row.Lint.Budgets.budget)))
    measured

(* The per-dial refinement of the static worst-case rows: each dial
   point must sit inside the envelope of its OWN parametric budget
   (read: Const/Log/Sqrt/Linear as f grows; update: Log collapsing to
   Const at f = n), not just the family-wide one.  Quantifies over
   [Treeprim.Dial.all], so a new dial point is held to a budget the
   moment it exists. *)
let test_dial_parametric_envelope () =
  List.iter
    (fun dial ->
      let f = Treeprim.Dial.width ~n dial in
      let c_read, c_inc, m_read, m_write = dial_point_measurements dial in
      let check what steps budget =
        match Lint.Summary.envelope ~n budget with
        | None ->
          Alcotest.failf "dial %s %s: parametric budget is Unbounded"
            (Treeprim.Dial.name dial) what
        | Some cap ->
          if steps > cap then
            Alcotest.failf "dial %s %s: %d steps exceed parametric envelope %d (%s)"
              (Treeprim.Dial.name dial) what steps cap
              (Lint.Summary.bound_to_string budget)
      in
      let rb = Lint.Budgets.dial_read_budget ~f ~n in
      let ub = Lint.Budgets.dial_update_budget ~f ~n in
      check "counter read" c_read rb;
      check "counter increment" c_inc ub;
      check "maxreg read_max" m_read rb;
      check "maxreg write_max" m_write ub;
      (* the dial really dials: extreme points have the extreme classes *)
      match dial with
      | Treeprim.Dial.F_one ->
        Alcotest.(check string) "f1 read class" "const"
          (Lint.Summary.class_name rb)
      | Treeprim.Dial.F_n ->
        Alcotest.(check string) "fn update class" "const"
          (Lint.Summary.class_name ub)
      | _ -> ())
    Treeprim.Dial.all

(* The counting machinery itself: a naive-counter read really collects
   all n cells, so a differential observing 0 steps would be vacuous. *)
let test_counting_is_live () =
  let s = Memsim.Session.create () in
  let inst =
    Harness.Instances.counter_sim s ~n ~bound Harness.Instances.Naive_counter
  in
  List.iter
    (fun i -> inst.Counters.Counter.increment ~pid:(i mod n))
    [ 0; 1; 2 ];
  Memsim.Session.reset_steps s;
  ignore (inst.Counters.Counter.read ());
  Alcotest.(check bool) "naive read touches every cell" true
    (Memsim.Session.direct_steps s >= n)

(* Every budget row is either measured above or explicitly skip-listed,
   so a new row cannot silently dodge the differential. *)
let skip_reason op (row : Lint.Budgets.row) =
  if List.mem "Unboxed" op then
    Some "native backend (no simulator; same algorithm as the boxed twin)"
  else
    match row.budget with
    | Lint.Summary.Unbounded _ -> Some "reviewed Unbounded allowlist entry"
    | _ ->
      if
        op = [ "Double_collect"; "Make"; "collect" ]
        || op = [ "Afek_snapshot"; "Make"; "collect" ]
      then Some "internal helper, exercised inside the measured scan"
      else None

let test_coverage () =
  let measured = List.map (fun (op, _, _) -> op) (all_measurements ()) in
  List.iter
    (fun (row : Lint.Budgets.row) ->
      match skip_reason row.op row with
      | Some _ -> ()
      | None ->
        if not (List.mem row.op measured) then
          Alcotest.failf "budget row %s is neither measured nor skip-listed"
            (qual row.op))
    Lint.Budgets.default.rows

let () =
  Alcotest.run "cost-differential"
    [ ( "differential",
        [ Alcotest.test_case "dynamic <= static envelope" `Quick
            test_dynamic_within_envelope;
          Alcotest.test_case "every dial point within its parametric envelope"
            `Quick test_dial_parametric_envelope;
          Alcotest.test_case "counting is live" `Quick test_counting_is_live;
          Alcotest.test_case "every budget row covered" `Quick test_coverage
        ] ) ]
