(* The tradeoff-dial family (Dial_counter / Dial_maxreg): block geometry
   unit pins, differential equivalence against the naive baseline at
   every dial point (boxed, over Memsim), boxed-vs-unboxed parity,
   4-domain exactness of the unboxed twins, zero-allocation checks, and
   a fault-plan run with linearizability of the surviving history.

   The family's point is that f1 and fn are the two structures the repo
   already had (f-array counter, naive counter) and flog/fsqrt are the
   interior of Theorem 1's frontier — so the tests quantify over
   [Treeprim.Dial.all] everywhere rather than picking a favourite. *)

open Memsim
module D = Treeprim.Dial

(* {1 Geometry} *)

let test_dial_geometry () =
  (* widths at n = 64: the four dial points of the docs and COSTS.md *)
  List.iter
    (fun (dial, w) ->
      Alcotest.(check int) (D.name dial ^ " width @64") w (D.width ~n:64 dial))
    [ (D.F_one, 1); (D.F_log, 6); (D.F_sqrt, 8); (D.F_n, 64) ];
  (* block_size * width covers n, and never overshoots by a full block *)
  List.iter
    (fun n ->
      List.iter
        (fun dial ->
          let f = D.width ~n dial in
          let b = D.block_size ~n dial in
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d: f*b >= n" (D.name dial) n)
            true
            (f * b >= n);
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d: (f-1)*b < n" (D.name dial) n)
            true
            (((f - 1) * b) < n);
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d: 1 <= f <= n" (D.name dial) n)
            true
            (1 <= f && f <= n))
        D.all)
    [ 1; 2; 3; 7; 8; 64; 100 ];
  (* name/of_string round-trip *)
  List.iter
    (fun dial ->
      Alcotest.(check bool)
        (D.name dial ^ " round-trips") true
        (D.of_string (D.name dial) = Some dial))
    D.all;
  Alcotest.(check bool) "unknown name rejected" true (D.of_string "f2" = None);
  Alcotest.check_raises "n = 0 rejected"
    (Invalid_argument "Dial.width: n must be > 0") (fun () ->
      ignore (D.width ~n:0 D.F_log : int))

(* {1 Differential: dial counter = naive counter, at every dial}

   op = (pid, v): v < 0 is a read, otherwise an increment by pid. *)

let n_procs = 4
let bound = 1 lsl 20

let ops_gen =
  QCheck.make
    ~print:QCheck.Print.(list (pair int int))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 1 120)
       (QCheck.Gen.pair
          (QCheck.Gen.int_range 0 (n_procs - 1))
          (QCheck.Gen.int_range (-1) 40)))

let differential_counter_vs_naive dial =
  QCheck.Test.make ~count:200
    ~name:(Printf.sprintf "dial %s (sim) = naive counter" (D.name dial))
    ops_gen
    (fun ops ->
      let session = Session.create () in
      let d = Harness.Instances.counter_dial_sim session ~n:n_procs dial in
      let naive =
        Harness.Instances.counter_sim session ~n:n_procs ~bound
          Harness.Instances.Naive_counter
      in
      List.for_all
        (fun (pid, v) ->
          if v < 0 then d.Counters.Counter.read () = naive.Counters.Counter.read ()
          else begin
            d.Counters.Counter.increment ~pid;
            naive.Counters.Counter.increment ~pid;
            d.Counters.Counter.read () = naive.Counters.Counter.read ()
          end)
        ops)

let differential_boxed_vs_unboxed dial =
  QCheck.Test.make ~count:200
    ~name:(Printf.sprintf "dial %s: boxed = unboxed" (D.name dial))
    ops_gen
    (fun ops ->
      let boxed =
        Harness.Instances.counter_dial_over
          (module Smem.Atomic_memory)
          ~n:n_procs dial
      in
      let unboxed = Harness.Instances.counter_native_dial ~n:n_procs dial in
      List.for_all
        (fun (pid, v) ->
          if v < 0 then
            boxed.Counters.Counter.read () = unboxed.Counters.Counter.read ()
          else begin
            boxed.Counters.Counter.increment ~pid;
            unboxed.Counters.Counter.increment ~pid;
            boxed.Counters.Counter.read () = unboxed.Counters.Counter.read ()
          end)
        ops)

(* maxreg: dial register vs a pure running-max model, and boxed vs
   unboxed parity — v >= 0 is a write_max *)
let differential_maxreg dial =
  QCheck.Test.make ~count:200
    ~name:(Printf.sprintf "dial %s maxreg = running max" (D.name dial))
    ops_gen
    (fun ops ->
      let session = Session.create () in
      let r = Harness.Instances.maxreg_dial_sim session ~n:n_procs dial in
      let unboxed = Harness.Instances.maxreg_native_dial ~n:n_procs dial in
      let model = ref 0 in
      List.for_all
        (fun (pid, v) ->
          if v >= 0 then begin
            r.Maxreg.Max_register.write_max ~pid v;
            unboxed.Maxreg.Max_register.write_max ~pid v;
            model := max !model v
          end;
          r.Maxreg.Max_register.read_max () = !model
          && unboxed.Maxreg.Max_register.read_max () = !model)
        ops)

(* {1 Unboxed: 4-domain exactness and zero allocation} *)

let domains_used = 4

let in_domains k f =
  let ds = List.init k (fun i -> Domain.spawn (fun () -> f i)) in
  List.iter Domain.join ds

let test_parallel_dial_exact () =
  let per_domain = 5_000 in
  List.iter
    (fun dial ->
      let module C = Counters.Dial_counter.Unboxed in
      let c = C.create ~n:domains_used ~dial () in
      in_domains domains_used (fun i ->
          for _ = 1 to per_domain do
            C.increment c ~pid:i
          done);
      Alcotest.(check int)
        (D.name dial ^ " total exact")
        (domains_used * per_domain) (C.read c))
    D.all

let test_parallel_dial_maxreg_monotone () =
  let per_domain = 3_000 in
  List.iter
    (fun dial ->
      let module A = Maxreg.Dial_maxreg.Unboxed in
      let reg = A.create ~n:domains_used ~dial () in
      let monotone = Atomic.make true in
      in_domains domains_used (fun i ->
          if i = 0 then begin
            let last = ref 0 in
            for _ = 1 to per_domain do
              let v = A.read_max reg in
              if v < !last then Atomic.set monotone false;
              last := v
            done
          end
          else
            for v = 1 to per_domain do
              A.write_max reg ~pid:i v
            done);
      Alcotest.(check bool) (D.name dial ^ " reads monotone") true
        (Atomic.get monotone);
      Alcotest.(check int)
        (D.name dial ^ " final max")
        per_domain (A.read_max reg))
    D.all

let ops = 10_000

let minor_delta f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let slack = 256.0

let check_alloc_free name f =
  ignore (minor_delta f : float);
  let delta = minor_delta f in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d ops allocate <= %.0f words (got %.0f)" name ops
       slack delta)
    true (delta <= slack)

let test_alloc_free_dial () =
  List.iter
    (fun dial ->
      let module C = Counters.Dial_counter.Unboxed in
      let c = C.create ~n:8 ~dial () in
      check_alloc_free (D.name dial ^ " increment") (fun () ->
          for _ = 1 to ops do
            C.increment c ~pid:3
          done);
      check_alloc_free (D.name dial ^ " read") (fun () ->
          for _ = 1 to ops do
            ignore (C.read c : int)
          done))
    D.all

(* {1 Fault plans: surviving histories linearize at every dial} *)

let lin_counter ~n =
  Linearize.Checker.check_trace (module Linearize.Spec.Counter) ~n

let fault_plan_linearizable dial =
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "dial %s: faulted histories linearize" (D.name dial))
    (QCheck.pair
       (QCheck.make
          ~print:Faults.to_string
          QCheck.Gen.(
            map
              (fun (pid, after) -> [ Faults.Crash { pid; after } ])
              (pair (int_range 0 2) (int_range 0 20))))
       (QCheck.int_range 0 10_000))
    (fun (plan, seed) ->
      let session = Session.create () in
      let c =
        Harness.Annotate.counter session
          (Harness.Instances.counter_dial_sim session ~n:3 dial)
      in
      let make_body pid () =
        if pid < 2 then c.Counters.Counter.increment ~pid
        else ignore (c.Counters.Counter.read () : int)
      in
      Store.reset (Session.store session);
      let sched = Scheduler.create session in
      for pid = 0 to 2 do
        ignore
          (Scheduler.spawn sched (Faults.instrument plan make_body pid) : int)
      done;
      let g = Faults.gate plan in
      Faults.run_random ~max_events:400 ~seed sched g;
      lin_counter ~n:3 (Scheduler.finish sched))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "dial"
    [ ("geometry", [ Alcotest.test_case "widths and blocks" `Quick test_dial_geometry ]);
      ( "differential vs naive",
        qsuite (List.map differential_counter_vs_naive D.all) );
      ( "boxed vs unboxed",
        qsuite (List.map differential_boxed_vs_unboxed D.all) );
      ("maxreg", qsuite (List.map differential_maxreg D.all));
      ( "parallel",
        [ Alcotest.test_case "4-domain counter exact" `Quick
            test_parallel_dial_exact;
          Alcotest.test_case "4-domain maxreg monotone" `Quick
            test_parallel_dial_maxreg_monotone ] );
      ( "zero allocation",
        [ Alcotest.test_case "unboxed dial ops" `Quick test_alloc_free_dial ] );
      ("faults", qsuite (List.map fault_plan_linearizable D.all)) ]
